(* The gprof problem (PLDI'97 §4.1, [PF88]): gprof attributes a callee's
   cost to callers in proportion to call counts, which is wrong whenever
   cost depends on the caller.  The CCT records the truth.

   Here both light_user and heavy_user call work() equally often, but
   heavy_user asks for 64x more iterations.

     dune exec examples/gprof_problem.exe                                  *)

module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver
module Event = Pp_machine.Event
module Cct = Pp_core.Cct
module Runtime = Pp_vm.Runtime

let source =
  {|
int sink;

void work(int n) {
  int i; int s;
  s = 0;
  for (i = 0; i < n; i = i + 1) { s = s + i * 3 % 17; }
  sink = sink + s;
}

void light_user() { work(50); }
void heavy_user() { work(3200); }

void main() {
  int r;
  for (r = 0; r < 200; r = r + 1) {
    light_user();
    heavy_user();
  }
  print(sink);
}
|}

let () =
  let program = Pp_minic.Compile.program ~name:"gprof_problem" source in
  let session =
    Driver.prepare
      ~pics:(Event.Dcache_misses, Event.Instructions)
      ~mode:Instrument.Context_hw program
  in
  ignore (Driver.run session);
  let cct = Driver.cct session in

  (* Ground truth from the CCT: work()'s instruction deltas per context. *)
  let insts_via ctx =
    match Cct.find_context cct ctx with
    | Some node -> (Cct.data node).Runtime.metrics.(2)
    | None -> 0
  in
  let via_light = insts_via [ "main"; "light_user"; "work" ] in
  let via_heavy = insts_via [ "main"; "heavy_user"; "work" ] in
  Printf.printf "CCT ground truth for work() (instructions, inclusive):\n";
  Printf.printf "  main.light_user.work : %9d\n" via_light;
  Printf.printf "  main.heavy_user.work : %9d\n" via_heavy;

  (* What gprof's rule reports: it only sees call counts (equal here) and
     work()'s context-blind total, and splits the total in proportion. *)
  let gprof = Pp_core.Gprof.create () in
  Pp_core.Gprof.enter gprof ~proc:"main";
  for _ = 1 to 200 do
    Pp_core.Gprof.enter gprof ~proc:"light_user";
    Pp_core.Gprof.enter gprof ~proc:"work";
    Pp_core.Gprof.exit gprof ~cost:(via_light / 200);
    Pp_core.Gprof.exit gprof ~cost:0;
    Pp_core.Gprof.enter gprof ~proc:"heavy_user";
    Pp_core.Gprof.enter gprof ~proc:"work";
    Pp_core.Gprof.exit gprof ~cost:(via_heavy / 200);
    Pp_core.Gprof.exit gprof ~cost:0
  done;
  Pp_core.Gprof.exit gprof ~cost:0;
  let att caller = Pp_core.Gprof.attributed gprof ~caller ~callee:"work" in
  Printf.printf
    "\ngprof's frequency-proportional attribution of work()'s total:\n";
  Printf.printf "  to light_user : %12.0f  (true: %d)\n" (att "light_user")
    via_light;
  Printf.printf "  to heavy_user : %12.0f  (true: %d)\n" (att "heavy_user")
    via_heavy;
  Printf.printf
    "\ngprof overcharges the light caller by %.0fx; the CCT separates the \
     contexts exactly.\n"
    (att "light_user" /. float_of_int (max 1 via_light))
