examples/cache_conflict.ml: Format List Option Pp_core Pp_instrument Pp_machine Pp_minic Printf
