examples/quickstart.ml: Format List Pp_core Pp_instrument Pp_machine Pp_minic Pp_vm Printf
