examples/cache_conflict.mli:
