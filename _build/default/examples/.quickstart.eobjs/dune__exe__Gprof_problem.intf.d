examples/gprof_problem.mli:
