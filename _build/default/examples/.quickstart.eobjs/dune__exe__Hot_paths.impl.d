examples/hot_paths.ml: Array Format List Option Pp_core Pp_instrument Pp_machine Pp_vm Pp_workloads Printf String Sys
