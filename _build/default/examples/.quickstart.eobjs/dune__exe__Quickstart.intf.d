examples/quickstart.mli:
