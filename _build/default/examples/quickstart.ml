(* Quickstart: compile a MiniC program, instrument it for flow-sensitive
   profiling with hardware metrics, run it on the simulated UltraSPARC and
   print the hot paths.

     dune exec examples/quickstart.exe                                     *)

module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver
module Event = Pp_machine.Event
module Profile = Pp_core.Profile
module Ball_larus = Pp_core.Ball_larus

let source =
  {|
int data[65536];

// Two loops, hence two loop paths: a friendly sequential pass and a
// cache-hostile strided pass.  The path profile tells them apart even
// though both live in one procedure.
int scan() {
  int i; int s;
  s = 0;
  for (i = 0; i < 16384; i = i + 1) {
    s = s + data[i];
  }
  for (i = 0; i < 16384; i = i + 1) {
    s = s + data[i * 253 % 65536];
  }
  return s;
}

void main() {
  int i;
  for (i = 0; i < 65536; i = i + 1) { data[i] = i % 100; }
  print(scan());
}
|}

let () =
  (* 1. Compile. *)
  let program = Pp_minic.Compile.program ~name:"quickstart" source in

  (* 2. Instrument for flow-sensitive profiling, with the PICs watching
        L1 D-cache misses and instructions. *)
  let session =
    Driver.prepare
      ~pics:(Event.Dcache_misses, Event.Instructions)
      ~mode:Instrument.Flow_hw program
  in

  (* 3. Run on the simulated machine. *)
  let result = Driver.run session in
  print_endline "program output:";
  List.iter
    (function
      | Pp_vm.Interp.Oint n -> Printf.printf "  %d\n" n
      | Pp_vm.Interp.Ofloat x -> Printf.printf "  %g\n" x)
    result.Pp_vm.Interp.output;
  Printf.printf "\nsimulated: %d instructions, %d cycles\n"
    result.Pp_vm.Interp.instructions result.Pp_vm.Interp.cycles;

  (* 4. Extract the per-path profile and show each procedure's paths. *)
  let profile = Driver.path_profile session in
  print_endline "\nper-path profile (m0 = D-cache misses, m1 = insts):";
  List.iter
    (fun (p : Profile.proc_profile) ->
      if p.Profile.paths <> [] && p.Profile.proc <> "main" then begin
        Printf.printf "  %s:\n" p.Profile.proc;
        List.iter
          (fun (sum, (m : Profile.path_metrics)) ->
            Format.printf "    path %d: freq=%-5d misses=%-6d insts=%-7d %a@."
              sum m.Profile.freq m.Profile.m0 m.Profile.m1
              Ball_larus.pp_path
              (Profile.decode p sum))
          (Profile.ranked_paths p)
      end)
    profile.Profile.procs;

  (* 5. The headline: the strided loop's path carries almost all the
        misses, at a far higher miss rate, though both paths execute the
        same number of loads. *)
  let t = Pp_core.Hotpath.classify_paths profile in
  Printf.printf "\nhot-path summary: %d paths executed, %d dense hot paths \
                 carry %.0f%% of the misses\n"
    t.Pp_core.Hotpath.all.Pp_core.Hotpath.num
    t.Pp_core.Hotpath.dense.Pp_core.Hotpath.num
    (100.0
    *. float_of_int t.Pp_core.Hotpath.dense.Pp_core.Hotpath.misses
    /. float_of_int (max 1 t.Pp_core.Hotpath.all.Pp_core.Hotpath.misses))
