(* The paper's motivating example for flow sensitivity (1): "a flow
   insensitive measurement might find two statements in a procedure that
   have high cache miss rates, whereas a flow sensitive measurement could
   show that the misses occur when the statements execute along a common
   path, and thus are possibly due to a cache conflict."

   Two arrays are laid out exactly one D-cache image apart, so a[i] and
   b[i] map to the same set of the direct-mapped 16 KB cache.  The
   procedure has two paths: one touches only a, the other touches both.
   Statement-level counts blame both array accesses; the path profile shows
   the misses belong to the both-arrays path alone — the conflict.

     dune exec examples/cache_conflict.exe                                 *)

module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver
module Event = Pp_machine.Event
module Profile = Pp_core.Profile
module Ball_larus = Pp_core.Ball_larus

(* 16 KB cache / 8-byte words = 2048 words per cache image.  [a] and [b]
   are 2048 words each and consecutive in the data segment, so a[i] and
   b[i] collide in the direct-mapped cache. *)
let source =
  {|
float a[2048];
float b[2048];

float scan(int use_both, int n) {
  int i; float s;
  s = 0.0;
  for (i = 0; i < n; i = i + 1) {
    if (use_both) {
      s = s + a[i] + b[i];   // conflicting pair: a[i] evicts b[i]'s line
    } else {
      s = s + a[i] + a[i];   // same access count, no conflict
    }
  }
  return s;
}

void main() {
  int i;
  for (i = 0; i < 2048; i = i + 1) { a[i] = 1.0; b[i] = 2.0; }
  int round;
  float total;
  total = 0.0;
  for (round = 0; round < 40; round = round + 1) {
    total = total + scan(0, 2048);
    total = total + scan(1, 2048);
  }
  print(total);
}
|}

let () =
  let program = Pp_minic.Compile.program ~name:"cache_conflict" source in
  let session =
    Driver.prepare
      ~pics:(Event.Dcache_misses, Event.Instructions)
      ~mode:Instrument.Flow_hw program
  in
  ignore (Driver.run session);
  let profile = Driver.path_profile session in
  let scan = Option.get (Profile.find_proc profile "scan") in
  print_endline
    "per-path D-cache misses in scan() — both paths execute the same\n\
     number of loads; only the a[i]+b[i] path conflicts:\n";
  List.iter
    (fun (sum, (m : Profile.path_metrics)) ->
      let path = Profile.decode scan sum in
      let miss_rate =
        1000.0 *. float_of_int m.Profile.m0 /. float_of_int (max 1 m.Profile.m1)
      in
      Format.printf
        "  path %-3d freq=%-6d misses=%-8d insts=%-9d %5.1f misses/1k-insts\n\
        \           %a@."
        sum m.Profile.freq m.Profile.m0 m.Profile.m1 miss_rate
        Ball_larus.pp_path path)
    (Profile.ranked_paths scan);
  (* Aggregate (flow-insensitive) view for contrast. *)
  let total_m0 =
    List.fold_left (fun acc (_, m) -> acc + m.Profile.m0) 0
      scan.Profile.paths
  in
  let total_m1 =
    List.fold_left (fun acc (_, m) -> acc + m.Profile.m1) 0
      scan.Profile.paths
  in
  Printf.printf
    "\nflow-INsensitive view of scan(): %d misses over %d instructions \
     (%.1f/1k) — no clue which variant conflicts.\n"
    total_m0 total_m1
    (1000.0 *. float_of_int total_m0 /. float_of_int (max 1 total_m1))
