(* The paper's headline measurement (§6.4) on one of the SPEC95 analogues:
   a handful of hot paths carries almost all L1 D-cache misses, and path
   profiling pinpoints them where statement counts cannot.

     dune exec examples/hot_paths.exe                 (compress analogue)
     dune exec examples/hot_paths.exe -- go_like      (any workload name)  *)

module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver
module Event = Pp_machine.Event
module Profile = Pp_core.Profile
module Hotpath = Pp_core.Hotpath
module Ball_larus = Pp_core.Ball_larus
module Registry = Pp_workloads.Registry

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1)
    else "compress_like"
  in
  let workload =
    match Registry.find name with
    | Some w -> w
    | None ->
        Printf.eprintf "unknown workload %s; one of: %s\n" name
          (String.concat ", " (Registry.names ()));
        exit 1
  in
  Printf.printf "workload: %s (%s — %s)\n\n" workload.Pp_workloads.Workload.name
    workload.Pp_workloads.Workload.spec_name
    workload.Pp_workloads.Workload.description;
  let program = Pp_workloads.Workload.compile workload in
  let session =
    Driver.prepare ~max_instructions:400_000_000
      ~pics:(Event.Dcache_misses, Event.Instructions)
      ~mode:Instrument.Flow_hw program
  in
  let result = Driver.run session in
  Printf.printf "simulated %d instructions, %d cycles\n\n"
    result.Pp_vm.Interp.instructions result.Pp_vm.Interp.cycles;
  let profile = Driver.path_profile session in
  let classes = Hotpath.classify_paths profile in
  Format.printf "%a@." Hotpath.pp_path_classes classes;
  Format.printf "@.by procedure:@.%a@." Hotpath.pp_proc_classes
    (Hotpath.classify_procs profile);
  print_endline "\ntop ten hot paths:";
  List.iteri
    (fun i (proc, sum, (m : Profile.path_metrics)) ->
      if i < 10 then begin
        let p = Option.get (Profile.find_proc profile proc) in
        Format.printf "  %2d. %-16s misses=%-8d freq=%-7d %a@." (i + 1)
          (Printf.sprintf "%s#%d" proc sum)
          m.Profile.m0 m.Profile.freq Ball_larus.pp_path
          (Profile.decode p sum)
      end)
    (Hotpath.hot_paths profile)
