(* Tests of the VM layer below MiniC: memory faults, the profiling
   runtime's bookkeeping and its cost model. *)

module Memory = Pp_vm.Memory
module Runtime = Pp_vm.Runtime
module Machine = Pp_machine.Machine
module Counters = Pp_machine.Counters
module Event = Pp_machine.Event
module Cct = Pp_core.Cct

let check = Alcotest.check

let test_memory_rw () =
  let m = Memory.create [ ("data", 0x1000, 0x1000) ] in
  Memory.write_int m 0x1000 42;
  check Alcotest.int "int roundtrip" 42 (Memory.read_int m 0x1000);
  Memory.write_int m 0x1008 (-7);
  check Alcotest.int "negative" (-7) (Memory.read_int m 0x1008);
  Memory.write_float m 0x1010 3.25;
  Alcotest.(check (float 0.0)) "float exact" 3.25 (Memory.read_float m 0x1010);
  (* NaN and infinities round-trip bit-exactly. *)
  Memory.write_float m 0x1018 Float.infinity;
  Alcotest.(check bool) "inf" true
    (Memory.read_float m 0x1018 = Float.infinity);
  (* Fresh memory is zero. *)
  check Alcotest.int "zero fill" 0 (Memory.read_int m 0x1ff8)

let test_memory_faults () =
  let m = Memory.create [ ("data", 0x1000, 0x100) ] in
  let faults f = match f () with
    | exception Memory.Fault _ -> ()
    | _ -> Alcotest.fail "expected fault"
  in
  faults (fun () -> Memory.read_int m 0x0800);
  faults (fun () -> Memory.read_int m 0x1100);
  faults (fun () -> Memory.read_int m 0x1004);
  (* misaligned *)
  faults (fun () -> Memory.write_int m 0x2000 1);
  Alcotest.(check bool) "valid" true (Memory.valid m 0x1008);
  Alcotest.(check bool) "invalid" false (Memory.valid m 0x1001)

let test_memory_segments_disjoint () =
  match Memory.create [ ("a", 0x0, 0x100); ("b", 0x80, 0x100) ] with
  | exception Memory.Fault _ -> ()
  | _ -> Alcotest.fail "expected overlap rejection"

let make_runtime () =
  let machine = Machine.create Pp_machine.Config.default in
  let memory = Memory.create [ ("stack", 0x1000, 0x1000) ] in
  (machine, Runtime.create ~machine ~memory ~prof_base:0x800_0000 ())

let test_runtime_cct_protocol () =
  let _, rt = make_runtime () in
  (* main entered with no pending gCSP (root slot 0). *)
  Runtime.cct_enter rt ~proc_name:"main" ~nsites:2 ~op_addr:0x4000_0000
    ~fp:0x1800;
  Runtime.cct_call rt ~site:1 ~indirect:false ~op_addr:0x4000_0040;
  Runtime.cct_enter rt ~proc_name:"leaf" ~nsites:0 ~op_addr:0x4000_0080
    ~fp:0x1700;
  let cct = Runtime.cct rt in
  Alcotest.(check string) "current" "leaf" (Cct.proc (Cct.current cct));
  Runtime.cct_exit rt ~op_addr:0x4000_00c0 ~fp:0x1700;
  Alcotest.(check string) "back in main" "main" (Cct.proc (Cct.current cct));
  (* Re-entering the same site reuses the record. *)
  Runtime.cct_call rt ~site:1 ~indirect:false ~op_addr:0x4000_0040;
  Runtime.cct_enter rt ~proc_name:"leaf" ~nsites:0 ~op_addr:0x4000_0080
    ~fp:0x1700;
  check Alcotest.int "records: root, main, leaf" 3 (Cct.num_nodes cct);
  let leaf = Cct.current cct in
  check Alcotest.int "leaf entered twice" 2
    (Cct.data leaf).Runtime.metrics.(0)

let test_runtime_costs_charged () =
  let machine, rt = make_runtime () in
  let insts () =
    Counters.total (Machine.counters machine) Event.Instructions
  in
  let before = insts () in
  Runtime.cct_enter rt ~proc_name:"main" ~nsites:1 ~op_addr:0x4000_0000
    ~fp:0x1800;
  Alcotest.(check bool) "enter charges instructions" true (insts () > before);
  (* A slot hit is cheaper than the allocating first call. *)
  Runtime.cct_call rt ~site:0 ~indirect:false ~op_addr:0x4000_0040;
  let a = insts () in
  Runtime.cct_enter rt ~proc_name:"f" ~nsites:1 ~op_addr:0x4000_0080
    ~fp:0x1700;
  let first_cost = insts () - a in
  Runtime.cct_exit rt ~op_addr:0x4000_00c0 ~fp:0x1700;
  Runtime.cct_call rt ~site:0 ~indirect:false ~op_addr:0x4000_0040;
  let b = insts () in
  Runtime.cct_enter rt ~proc_name:"f" ~nsites:1 ~op_addr:0x4000_0080
    ~fp:0x1700;
  let second_cost = insts () - b in
  Alcotest.(check bool)
    (Printf.sprintf "slot hit (%d) cheaper than allocation (%d)" second_cost
       first_cost)
    true
    (second_cost < first_cost)

let test_runtime_hash_tables () =
  let _, rt = make_runtime () in
  Runtime.register_hash_table rt ~table:0 ~proc:"p";
  Runtime.path_commit_hash rt ~table:0 ~key:5 ~hw:false ~op_addr:0x4000_0000;
  Runtime.path_commit_hash rt ~table:0 ~key:5 ~hw:false ~op_addr:0x4000_0000;
  Runtime.path_commit_hash rt ~table:0 ~key:9 ~hw:false ~op_addr:0x4000_0000;
  let counts =
    Runtime.hash_table_counts rt ~table:0 |> List.sort compare
  in
  match counts with
  | [ (5, c5); (9, c9) ] ->
      check Alcotest.int "key 5" 2 c5.Runtime.freq;
      check Alcotest.int "key 9" 1 c9.Runtime.freq
  | _ -> Alcotest.fail "unexpected table contents"

let test_runtime_hash_hw_zeroes_pics () =
  let machine, rt = make_runtime () in
  let counters = Machine.counters machine in
  Counters.select counters ~pic0:Event.Instructions ~pic1:Event.Cycles;
  Runtime.register_hash_table rt ~table:0 ~proc:"p";
  (* Accrue some events, commit with hw, and check the PICs were re-armed
     (the commit itself then accrues a little). *)
  Runtime.path_commit_hash rt ~table:0 ~key:1 ~hw:true ~op_addr:0x4000_0000;
  let after_commit = Counters.read_pic counters 0 in
  Alcotest.(check bool) "pics re-zeroed by hw commit" true (after_commit = 0);
  match Runtime.hash_table_counts rt ~table:0 with
  | [ (1, c) ] ->
      Alcotest.(check bool) "metric captured" true (c.Runtime.m0 > 0)
  | _ -> Alcotest.fail "missing entry"

let test_runtime_prof_bytes_grow () =
  let _, rt = make_runtime () in
  let b0 = Runtime.prof_bytes_allocated rt in
  Runtime.cct_enter rt ~proc_name:"main" ~nsites:8 ~op_addr:0x4000_0000
    ~fp:0x1800;
  Alcotest.(check bool) "allocation accounted" true
    (Runtime.prof_bytes_allocated rt > b0)

(* The pseudo-op code footprints named in Instr.slots are what the runtime
   charges for the fixed part of each stub: an instrumented empty call
   costs at least those instructions. *)
let test_cost_model_consistency () =
  let machine, rt = make_runtime () in
  let insts () =
    Counters.total (Machine.counters machine) Event.Instructions
  in
  let before = insts () in
  Runtime.cct_call rt ~site:0 ~indirect:false ~op_addr:0x4000_0000;
  check Alcotest.int "cct_call charges its footprint"
    (Pp_ir.Instr.slots
       (Pp_ir.Instr.Prof
          (Pp_ir.Instr.Cct_call { site = 0; indirect = false })))
    (insts () - before)

let test_block_trace () =
  let src =
    {|
int f(int z) { return 10 / z; }
void main() {
  print(f(5));
  print(f(0));   // traps here
}
|}
  in
  let prog = Pp_minic.Compile.program ~name:"t" src in
  let vm = Pp_vm.Interp.create prog in
  Pp_vm.Interp.enable_block_trace vm ~capacity:8;
  (match Pp_vm.Interp.run vm with
  | exception Pp_vm.Interp.Trap _ -> ()
  | _ -> Alcotest.fail "expected trap");
  let recent = Pp_vm.Interp.recent_blocks vm in
  Alcotest.(check bool) "trace nonempty" true (recent <> []);
  (* The trap happened inside f. *)
  (match recent with
  | (proc, _) :: _ -> Alcotest.(check string) "trapping proc" "f" proc
  | [] -> ());
  Alcotest.(check bool) "bounded" true (List.length recent <= 8)

let suite =
  [
    Alcotest.test_case "memory read/write" `Quick test_memory_rw;
    Alcotest.test_case "block trace ring" `Quick test_block_trace;
    Alcotest.test_case "memory faults" `Quick test_memory_faults;
    Alcotest.test_case "segments must be disjoint" `Quick
      test_memory_segments_disjoint;
    Alcotest.test_case "runtime CCT protocol" `Quick test_runtime_cct_protocol;
    Alcotest.test_case "runtime charges costs" `Quick
      test_runtime_costs_charged;
    Alcotest.test_case "runtime hash tables" `Quick test_runtime_hash_tables;
    Alcotest.test_case "hw hash commit re-arms PICs" `Quick
      test_runtime_hash_hw_zeroes_pics;
    Alcotest.test_case "profiling bytes accounted" `Quick
      test_runtime_prof_bytes_grow;
    Alcotest.test_case "cost model matches footprints" `Quick
      test_cost_model_consistency;
  ]
