(* The Profile container and the paper-example fixtures. *)

module Profile = Pp_core.Profile
module Ball_larus = Pp_core.Ball_larus
module Ex = Pp_core.Paper_examples
module Event = Pp_machine.Event
module Driver = Pp_instrument.Driver
module Instrument = Pp_instrument.Instrument

let check = Alcotest.check

let sample () =
  let numbering =
    Ball_larus.build (Pp_ir.Cfg.of_proc (Ex.figure1_proc ()))
  in
  {
    Profile.pic0 = Event.Dcache_misses;
    pic1 = Event.Instructions;
    procs =
      [
        {
          Profile.proc = "fig1";
          numbering;
          paths =
            [
              (0, { Profile.freq = 5; m0 = 10; m1 = 100 });
              (3, { Profile.freq = 2; m0 = 30; m1 = 50 });
              (5, { Profile.freq = 9; m0 = 1; m1 = 900 });
            ];
        };
      ];
  }

let test_totals () =
  let p = sample () in
  check Alcotest.int "freq" 16 (Profile.total_freq p);
  check Alcotest.int "m0" 41 (Profile.total_m0 p);
  check Alcotest.int "m1" 1050 (Profile.total_m1 p)

let test_ranked () =
  let p = sample () in
  let proc = Option.get (Profile.find_proc p "fig1") in
  let order = List.map fst (Profile.ranked_paths proc) in
  check (Alcotest.list Alcotest.int) "by m0 desc" [ 3; 0; 5 ] order;
  Alcotest.(check bool) "missing proc" true
    (Profile.find_proc p "nope" = None)

let test_decode_through_profile () =
  let p = sample () in
  let proc = Option.get (Profile.find_proc p "fig1") in
  let path = Profile.decode proc 3 in
  (* Path 3 = ABCDEF. *)
  check (Alcotest.list Alcotest.int) "blocks" [ 0; 1; 2; 3; 4; 5 ]
    path.Ball_larus.blocks

let test_pp_top () =
  let p = sample () in
  let text = Format.asprintf "%a" (Profile.pp_top ~n:2) p in
  Alcotest.(check bool) "mentions proc and metric" true
    (let has sub =
       let n = String.length text and m = String.length sub in
       let rec go i =
         i + m <= n && (String.sub text i m = sub || go (i + 1))
       in
       go 0
     in
     has "fig1" && has "dc_miss")

(* Driving the Figure-1 program through all selector values exercises all
   six paths exactly as the figure enumerates them. *)
let test_figure1_program_covers_all_paths () =
  let prog = Ex.figure1_program () in
  let s = Driver.prepare ~mode:Instrument.Flow_freq prog in
  ignore (Driver.run s);
  let profile = Driver.path_profile s in
  let fig1 = Option.get (Profile.find_proc profile "fig1") in
  check Alcotest.int "six executed paths" 6 (List.length fig1.Profile.paths);
  (* Selectors 0..7 hit the v land 1 / v land 2 / v land 4 combinations:
     sums 0..5 with frequencies 1 or 2 and a total of 8. *)
  let total =
    List.fold_left (fun acc (_, m) -> acc + m.Profile.freq) 0
      fig1.Profile.paths
  in
  check Alcotest.int "eight calls" 8 total;
  List.iter
    (fun (sum, _) ->
      if sum < 0 || sum > 5 then Alcotest.failf "impossible path sum %d" sum)
    fig1.Profile.paths

let suite =
  [
    Alcotest.test_case "totals" `Quick test_totals;
    Alcotest.test_case "ranking and lookup" `Quick test_ranked;
    Alcotest.test_case "decode through profile" `Quick
      test_decode_through_profile;
    Alcotest.test_case "pp_top" `Quick test_pp_top;
    Alcotest.test_case "figure-1 program covers all paths" `Quick
      test_figure1_program_covers_all_paths;
  ]
