(* Dominator analysis. *)

module Digraph = Pp_graph.Digraph
module Dfs = Pp_graph.Dfs
module Dominators = Pp_graph.Dominators

let check = Alcotest.check

(* The classic CHK example-ish CFG:
     0 -> 1; 1 -> 2; 1 -> 3; 2 -> 4; 3 -> 4; 4 -> 1 (backedge); 4 -> 5 *)
let looped () =
  let g = Digraph.create () in
  ignore (Digraph.add_vertices g 6);
  List.iter
    (fun (a, b) -> ignore (Digraph.add_edge g a b))
    [ (0, 1); (1, 2); (1, 3); (2, 4); (3, 4); (4, 1); (4, 5) ];
  g

let test_idoms () =
  let g = looped () in
  let dom = Dominators.compute g ~root:0 in
  let idom v = Dominators.idom dom v in
  Alcotest.(check (option int)) "root" None (idom 0);
  Alcotest.(check (option int)) "1" (Some 0) (idom 1);
  Alcotest.(check (option int)) "2" (Some 1) (idom 2);
  Alcotest.(check (option int)) "3" (Some 1) (idom 3);
  Alcotest.(check (option int)) "4 (join)" (Some 1) (idom 4);
  Alcotest.(check (option int)) "5" (Some 4) (idom 5)

let test_dominates () =
  let g = looped () in
  let dom = Dominators.compute g ~root:0 in
  Alcotest.(check bool) "1 dominates 4" true (Dominators.dominates dom 1 4);
  Alcotest.(check bool) "2 not dominates 4" false
    (Dominators.dominates dom 2 4);
  Alcotest.(check bool) "self" true (Dominators.dominates dom 4 4);
  Alcotest.(check bool) "root dominates all" true
    (Dominators.dominates dom 0 5);
  check (Alcotest.list Alcotest.int) "chain to 5" [ 0; 1; 4; 5 ]
    (Dominators.dominator_chain dom 5)

let test_reducible_loop () =
  let g = looped () in
  let dom = Dominators.compute g ~root:0 in
  let dfs = Dfs.run g ~root:0 in
  Alcotest.(check bool) "reducible" true (Dominators.is_reducible dom dfs);
  check Alcotest.int "one natural backedge" 1
    (List.length (Dominators.natural_backedges dom dfs))

let test_irreducible () =
  (* The classic irreducible pair: 0 -> 1, 0 -> 2, 1 <-> 2, 1 -> 3. *)
  let g = Digraph.create () in
  ignore (Digraph.add_vertices g 4);
  List.iter
    (fun (a, b) -> ignore (Digraph.add_edge g a b))
    [ (0, 1); (0, 2); (1, 2); (2, 1); (1, 3) ];
  let dom = Dominators.compute g ~root:0 in
  let dfs = Dfs.run g ~root:0 in
  Alcotest.(check bool) "irreducible detected" false
    (Dominators.is_reducible dom dfs);
  check Alcotest.int "no natural backedges" 0
    (List.length (Dominators.natural_backedges dom dfs));
  (* Neither 1 nor 2 dominates the other; both are idom'd by 0. *)
  Alcotest.(check (option int)) "idom 1" (Some 0) (Dominators.idom dom 1);
  Alcotest.(check (option int)) "idom 2" (Some 0) (Dominators.idom dom 2)

let test_unreachable () =
  let g = Digraph.create () in
  ignore (Digraph.add_vertices g 3);
  ignore (Digraph.add_edge g 0 1);
  let dom = Dominators.compute g ~root:0 in
  Alcotest.(check (option int)) "unreachable idom" None
    (Dominators.idom dom 2);
  Alcotest.(check bool) "unreachable not dominated" false
    (Dominators.dominates dom 0 2)

let prop_dominates_matches_definition =
  (* Cross-check [dominates] against the definition: d dominates v iff v is
     unreachable once d is removed. *)
  QCheck.Test.make ~name:"dominates = removal makes v unreachable" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let proc = Fixtures.random_cyclic_proc ~seed ~n:8 in
      let cfg = Pp_ir.Cfg.of_proc proc in
      let g = cfg.Pp_ir.Cfg.graph in
      let root = cfg.Pp_ir.Cfg.entry in
      let dom = Dominators.compute g ~root in
      let n = Digraph.num_vertices g in
      let reachable_avoiding d =
        let seen = Array.make n false in
        let rec go v =
          if (not seen.(v)) && v <> d then begin
            seen.(v) <- true;
            List.iter go (Digraph.succs g v)
          end
        in
        if root <> d then go root;
        seen
      in
      let ok = ref true in
      for d = 0 to n - 1 do
        let seen = reachable_avoiding d in
        for v = 0 to n - 1 do
          if v <> d then begin
            let def = not seen.(v) in
            (* definition only meaningful for reachable v *)
            let v_reachable =
              Dominators.dominates dom root v || v = root
            in
            if v_reachable && Dominators.dominates dom d v <> def then
              ok := false
          end
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "immediate dominators" `Quick test_idoms;
    Alcotest.test_case "dominates and chains" `Quick test_dominates;
    Alcotest.test_case "reducible loop" `Quick test_reducible_loop;
    Alcotest.test_case "irreducible region" `Quick test_irreducible;
    Alcotest.test_case "unreachable vertices" `Quick test_unreachable;
    QCheck_alcotest.to_alcotest prop_dominates_matches_definition;
  ]
