(* The textual IR: emit/parse round trips and error handling. *)

module Ir_text = Pp_ir.Ir_text
module Program = Pp_ir.Program

let check = Alcotest.check

let roundtrip (p : Program.t) =
  let text = Ir_text.to_string p in
  let p' = Ir_text.parse text in
  let text' = Ir_text.to_string p' in
  if text <> text' then
    Alcotest.failf "round trip diverged:@.--- first@.%s@.--- second@.%s" text
      text'

let test_roundtrip_fig1 () =
  roundtrip (Pp_core.Paper_examples.figure1_program ())

let test_roundtrip_workloads () =
  (* Every workload (with floats, 2-D arrays, indirect calls, recursion)
     survives the round trip; instrumented versions add prof ops, hw ops,
     frameaddr and split blocks. *)
  List.iter
    (fun name ->
      let w = Option.get (Pp_workloads.Registry.find name) in
      let prog = Pp_workloads.Workload.compile w in
      roundtrip prog;
      List.iter
        (fun mode ->
          let instrumented, _ = Pp_instrument.Instrument.run ~mode prog in
          roundtrip instrumented)
        [
          Pp_instrument.Instrument.Edge_freq;
          Pp_instrument.Instrument.Flow_hw;
          Pp_instrument.Instrument.Context_flow;
        ])
    [ "m88k_like"; "tomcatv_like"; "li_like" ]

let test_parsed_program_runs () =
  (* Executing the reparsed program gives identical output and counters. *)
  let w = Option.get (Pp_workloads.Registry.find "compress_like") in
  let prog = Pp_workloads.Workload.compile w in
  let reparsed = Ir_text.parse (Ir_text.to_string prog) in
  let run p =
    Pp_vm.Interp.run (Pp_vm.Interp.create ~max_instructions:100_000_000 p)
  in
  let a = run prog and b = run reparsed in
  Alcotest.(check bool) "same output" true
    (a.Pp_vm.Interp.output = b.Pp_vm.Interp.output);
  Alcotest.(check int) "same cycles" a.Pp_vm.Interp.cycles
    b.Pp_vm.Interp.cycles

let test_float_exactness () =
  (* Hex float literals keep exact bits — including values that decimal
     printing would mangle. *)
  let b =
    Pp_ir.Builder.create ~name:"main" ~iparams:0 ~fparams:0
      ~returns:Pp_ir.Proc.Returns_void
  in
  ignore (Pp_ir.Builder.new_block b);
  let f = Pp_ir.Builder.new_freg b in
  Pp_ir.Builder.emit b (Pp_ir.Instr.Fconst (f, 0.1));
  Pp_ir.Builder.emit b (Pp_ir.Instr.Print_float f);
  Pp_ir.Builder.terminate b (Pp_ir.Block.Ret Pp_ir.Block.Ret_void);
  let prog =
    Program.make ~procs:[ Pp_ir.Builder.finish b ]
      ~globals:
        [
          { Program.gname = "g"; size_words = 2;
            init = Some (Program.Init_floats [| 0.1; 1e-300 |]) };
        ]
      ~main:"main"
  in
  let reparsed = Ir_text.parse (Ir_text.to_string prog) in
  match Program.find_global reparsed "g" with
  | Some { init = Some (Program.Init_floats [| a; b |]); _ } ->
      Alcotest.(check bool) "bits preserved" true (a = 0.1 && b = 1e-300)
  | _ -> Alcotest.fail "global lost"

let test_parse_errors () =
  let bad text =
    match Ir_text.parse text with
    | exception Ir_text.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted: %s" text
  in
  bad "";
  bad "program main=x\nproc x iparams=0 fparams=0 returns=void frame=0 \
       entry=0\nL0:\n  iconst r0 1\n";
  (* unterminated block *)
  bad "program main=x\n  iconst r0 1\n";
  (* instruction outside a procedure *)
  bad "program main=x\nproc x iparams=0 fparams=0 returns=void frame=0 \
       entry=0\nL0:\n  bogus r0\n  ret\n";
  bad "program main=missing\n"

let test_comments_and_blanks () =
  let text =
    "# a comment\n\
     program main=m\n\
     \n\
     proc m iparams=0 fparams=0 returns=void frame=0 entry=0\n\
     L0:\n\
     # inner comment\n\
     \  iconst r0 5\n\
     \  printi r0\n\
     \  ret\n"
  in
  let prog = Ir_text.parse text in
  let r = Pp_vm.Interp.run (Pp_vm.Interp.create prog) in
  Alcotest.(check bool) "prints 5" true
    (r.Pp_vm.Interp.output = [ Pp_vm.Interp.Oint 5 ])

let suite =
  [
    Alcotest.test_case "roundtrip figure-1 program" `Quick
      test_roundtrip_fig1;
    Alcotest.test_case "roundtrip workloads (+instrumented)" `Quick
      test_roundtrip_workloads;
    Alcotest.test_case "reparsed program runs identically" `Quick
      test_parsed_program_runs;
    Alcotest.test_case "float exactness" `Quick test_float_exactness;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "comments and blank lines" `Quick
      test_comments_and_blanks;
  ]
