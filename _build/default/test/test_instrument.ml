(* Instrumenter tests: semantic transparency (instrumented programs print
   exactly what uninstrumented ones print), profile invariants, and
   agreement between alternative instrumentation strategies. *)

open Pp_instrument
module Interp = Pp_vm.Interp
module Event = Pp_machine.Event
module Profile = Pp_core.Profile
module Cct = Pp_core.Cct

let compile = Pp_minic.Compile.program ~name:"test"

let fib_src =
  {|
int calls;
int fib(int n) {
  calls = calls + 1;
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
void main() {
  calls = 0;
  print(fib(12));
  print(calls);
}
|}

let loopy_src =
  {|
int data[8192];
int work(int n) {
  int i; int s;
  s = 0;
  for (i = 0; i < n; i = i + 1) {
    if (i % 3 == 0) { s = s + data[i]; }
    else { s = s - data[i]; }
  }
  return s;
}
void main() {
  int i;
  for (i = 0; i < 8192; i = i + 1) { data[i] = i; }
  print(work(8192));
  print(work(4096));
}
|}

let all_modes =
  [
    Instrument.Flow_freq;
    Instrument.Flow_hw;
    Instrument.Context_hw;
    Instrument.Context_flow;
  ]

let run_mode ?options mode prog =
  let s = Driver.prepare ?options ~mode prog in
  let r = Driver.run s in
  (s, r)

let output_ints (r : Interp.result) =
  List.filter_map
    (function Interp.Oint n -> Some n | Interp.Ofloat _ -> None)
    r.Interp.output

let test_transparency () =
  List.iter
    (fun src ->
      let prog = compile src in
      let base = Driver.run_baseline prog in
      List.iter
        (fun mode ->
          let _, r = run_mode mode prog in
          Alcotest.(check (list int))
            (Instrument.mode_name mode)
            (output_ints base) (output_ints r))
        all_modes)
    [ fib_src; loopy_src ]

let test_overhead_positive () =
  let prog = compile loopy_src in
  let base = Driver.run_baseline prog in
  List.iter
    (fun mode ->
      let _, r = run_mode mode prog in
      if r.Interp.cycles <= base.Interp.cycles then
        Alcotest.failf "%s: instrumented (%d cycles) not slower than base (%d)"
          (Instrument.mode_name mode) r.Interp.cycles base.Interp.cycles;
      (* Sanity ceiling: way under 20x for these programs. *)
      if r.Interp.cycles > 20 * base.Interp.cycles then
        Alcotest.failf "%s: unreasonable overhead" (Instrument.mode_name mode))
    all_modes

(* Path frequencies: every commit is a return or a backedge traversal; for
   the loop-free fib, the total frequency in fib equals its call count. *)
let test_freq_equals_calls () =
  let prog = compile fib_src in
  let s, r = run_mode Instrument.Flow_freq prog in
  let profile = Driver.path_profile s in
  let calls =
    match output_ints r with
    | [ _fib; calls ] -> calls
    | _ -> Alcotest.fail "unexpected output"
  in
  match Profile.find_proc profile "fib" with
  | None -> Alcotest.fail "no fib profile"
  | Some p ->
      let total =
        List.fold_left (fun acc (_, m) -> acc + m.Profile.freq) 0 p.paths
      in
      Alcotest.(check int) "fib path freq = calls" calls total

(* The instruction metric along paths must land between the baseline's
   total and the instrumented total. *)
let test_hw_metric_conservation () =
  let prog = compile loopy_src in
  let base = Driver.run_baseline prog in
  let s, r =
    run_mode Instrument.Flow_hw prog
  in
  let profile = Driver.path_profile s in
  let m1 = Profile.total_m1 profile in
  Alcotest.(check bool)
    (Printf.sprintf "paths cover most instructions (%d vs base %d, instr %d)"
       m1 base.Interp.instructions r.Interp.instructions)
    true
    (m1 > base.Interp.instructions / 2 && m1 <= r.Interp.instructions)

(* Alternative strategies agree exactly on (path sum -> frequency). *)
let profile_alist profile =
  List.concat_map
    (fun (p : Profile.proc_profile) ->
      List.map (fun (sum, m) -> (p.Profile.proc, sum, m.Profile.freq))
        p.Profile.paths)
    profile.Profile.procs
  |> List.sort compare

let test_strategies_agree () =
  List.iter
    (fun src ->
      let prog = compile src in
      let freq_of options mode =
        let s, _ = run_mode ?options mode prog in
        profile_alist (Driver.path_profile s)
      in
      let reference = freq_of None Instrument.Flow_freq in
      (* Hash tables instead of arrays. *)
      let hash_opts =
        Some { Instrument.default_options with Instrument.array_threshold = 0 }
      in
      Alcotest.(check (list (triple string int int)))
        "hash = array" reference
        (freq_of hash_opts Instrument.Flow_freq);
      (* Optimized (chord) placement. *)
      let opt_opts =
        Some
          { Instrument.default_options with Instrument.optimize_placement = true }
      in
      Alcotest.(check (list (triple string int int)))
        "optimized = simple" reference
        (freq_of opt_opts Instrument.Flow_freq);
      (* Spilled path register. *)
      let spill_opts =
        Some { Instrument.default_options with Instrument.spill_threshold = 0 }
      in
      Alcotest.(check (list (triple string int int)))
        "spilled = direct" reference
        (freq_of spill_opts Instrument.Flow_freq);
      (* Flow x context aggregated over contexts. *)
      Alcotest.(check (list (triple string int int)))
        "context_flow aggregation = flow" reference
        (freq_of None Instrument.Context_flow))
    [ fib_src; loopy_src ]

let test_flow_hw_freq_matches () =
  (* Flow_hw's frequencies equal Flow_freq's. *)
  let prog = compile loopy_src in
  let s1, _ = run_mode Instrument.Flow_freq prog in
  let s2, _ = run_mode Instrument.Flow_hw prog in
  Alcotest.(check (list (triple string int int)))
    "hw freq = freq"
    (profile_alist (Driver.path_profile s1))
    (profile_alist (Driver.path_profile s2))

let test_cct_structure () =
  let prog = compile fib_src in
  let s, r = run_mode Instrument.Context_hw prog in
  let cct = Driver.cct s in
  Cct.check_invariants cct;
  (* Records: root, main, fib (recursion reuses one record). *)
  Alcotest.(check int) "three records" 3 (Cct.num_nodes cct);
  let fib_node =
    match Cct.find_context cct [ "main"; "fib" ] with
    | Some n -> n
    | None -> Alcotest.fail "no main->fib context"
  in
  let calls =
    match output_ints r with [ _; c ] -> c | _ -> Alcotest.fail "output"
  in
  (* Entry count accumulated in metrics[0]. *)
  Alcotest.(check int) "fib entries = calls" calls
    (Cct.data fib_node).Pp_vm.Runtime.metrics.(0)

let test_cct_metrics_inclusive () =
  (* main's record accumulates (inclusively) nearly all instructions. *)
  let prog = compile loopy_src in
  let s, r =
    let s =
      Driver.prepare ~pics:(Event.Dcache_misses, Event.Instructions)
        ~mode:Instrument.Context_hw prog
    in
    (s, Driver.run s)
  in
  let cct = Driver.cct s in
  let main_node =
    match Cct.find_context cct [ "main" ] with
    | Some n -> n
    | None -> Alcotest.fail "no main record"
  in
  let m1 = (Cct.data main_node).Pp_vm.Runtime.metrics.(2) in
  Alcotest.(check bool)
    (Printf.sprintf "main inclusive insts %d ~ total %d" m1
       r.Interp.instructions)
    true
    (m1 > (r.Interp.instructions * 8 / 10) && m1 <= r.Interp.instructions)

let test_backedge_reads_agree () =
  (* A4: reading PICs on backedges must not change the accumulated sums
     (it only bounds the measured intervals). *)
  let prog = compile loopy_src in
  let totals options =
    let s =
      Driver.prepare ?options ~mode:Instrument.Context_hw prog
    in
    ignore (Driver.run s);
    let cct = Driver.cct s in
    Cct.fold
      (fun acc n -> acc + (Cct.data n).Pp_vm.Runtime.metrics.(1)) 0 cct
  in
  let plain = totals None in
  let with_reads =
    totals
      (Some
         { Instrument.default_options with
           Instrument.backedge_metric_reads = true })
  in
  (* The extra instrumentation itself perturbs the metric slightly; demand
     agreement within 25%. *)
  let ratio = float_of_int with_reads /. float_of_int (max plain 1) in
  Alcotest.(check bool)
    (Printf.sprintf "backedge reads ratio %.2f" ratio)
    true
    (ratio > 0.7 && ratio < 1.4)

let test_validate_instrumented () =
  (* Instrumented programs must be structurally valid in all modes and
     option combinations. *)
  let progs = List.map compile [ fib_src; loopy_src ] in
  List.iter
    (fun prog ->
      List.iter
        (fun mode ->
          List.iter
            (fun options ->
              let instrumented, _ = Instrument.run ~options ~mode prog in
              Pp_ir.Validate.run instrumented)
            [
              Instrument.default_options;
              { Instrument.default_options with
                Instrument.optimize_placement = true };
              { Instrument.default_options with
                Instrument.spill_threshold = 0 };
              { Instrument.default_options with
                Instrument.caller_saves = true };
              { Instrument.default_options with
                Instrument.merge_call_sites = true };
            ])
        all_modes)
    progs

let test_selective_instrumentation () =
  let prog = compile fib_src in
  let base = Driver.run_baseline prog in
  (* Instrumenting nothing: identical cycles, empty CCT below the root. *)
  let none =
    { Instrument.default_options with Instrument.only = Some [] }
  in
  let s = Driver.prepare ~options:none ~mode:Instrument.Context_hw prog in
  let r = Driver.run s in
  Alcotest.(check int) "no instrumentation, no overhead" base.Interp.cycles
    r.Interp.cycles;
  Alcotest.(check int) "empty CCT" 1 (Cct.num_nodes (Driver.cct s));
  (* Instrumenting only fib: fib hangs off the root (main is invisible),
     and entry counts still equal the call count. *)
  let only_fib =
    { Instrument.default_options with Instrument.only = Some [ "fib" ] }
  in
  let s = Driver.prepare ~options:only_fib ~mode:Instrument.Context_hw prog in
  let r = Driver.run s in
  Alcotest.(check (list int)) "transparent" (output_ints base)
    (output_ints r);
  let cct = Driver.cct s in
  Pp_core.Cct.check_invariants cct;
  Alcotest.(check int) "root + fib only" 2 (Cct.num_nodes cct);
  match Cct.find_context cct [ "fib" ] with
  | Some node ->
      let calls =
        match output_ints r with [ _; c ] -> c | _ -> Alcotest.fail "out"
      in
      Alcotest.(check int) "fib entries despite missing main" calls
        (Cct.data node).Pp_vm.Runtime.metrics.(0)
  | None -> Alcotest.fail "fib must attach to the root"

let test_caller_saves_transparency () =
  let prog = compile loopy_src in
  let base = Driver.run_baseline prog in
  let options =
    { Instrument.default_options with Instrument.caller_saves = true }
  in
  let _, r = run_mode ~options Instrument.Flow_hw prog in
  Alcotest.(check (list int)) "A3 transparent" (output_ints base)
    (output_ints r)

let suite =
  [
    Alcotest.test_case "semantic transparency (4 modes)" `Quick
      test_transparency;
    Alcotest.test_case "overhead positive and bounded" `Quick
      test_overhead_positive;
    Alcotest.test_case "path freq = call count (fib)" `Quick
      test_freq_equals_calls;
    Alcotest.test_case "hw metric conservation" `Quick
      test_hw_metric_conservation;
    Alcotest.test_case "strategies agree on frequencies" `Quick
      test_strategies_agree;
    Alcotest.test_case "flow-hw freq = flow-freq" `Quick
      test_flow_hw_freq_matches;
    Alcotest.test_case "cct structure and entry counts" `Quick
      test_cct_structure;
    Alcotest.test_case "cct metrics inclusive" `Quick
      test_cct_metrics_inclusive;
    Alcotest.test_case "backedge metric reads agree (A4)" `Quick
      test_backedge_reads_agree;
    Alcotest.test_case "instrumented programs validate" `Quick
      test_validate_instrumented;
    Alcotest.test_case "caller-saves transparency (A3)" `Quick
      test_caller_saves_transparency;
    Alcotest.test_case "selective instrumentation" `Quick
      test_selective_instrumentation;
  ]
