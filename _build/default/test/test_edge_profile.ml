(* Edge profiling (the BL94 baseline): optimal counter placement and flow
   reconstruction, cross-checked against path profiles. *)

module Digraph = Pp_graph.Digraph
module Cfg = Pp_ir.Cfg
module Edge_profile = Pp_core.Edge_profile
module Ball_larus = Pp_core.Ball_larus
module Profile = Pp_core.Profile
module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver

let check = Alcotest.check

let test_chord_count () =
  (* A spanning tree of a connected graph with V vertices and E edges
     (including the fictional one) leaves E - V + 1 chords. *)
  let p = Fixtures.figure1_proc () in
  let cfg = Cfg.of_proc p in
  let plan = Edge_profile.plan cfg in
  let v = Digraph.num_vertices cfg.Cfg.graph in
  let e = Digraph.num_edges cfg.Cfg.graph + 1 in
  check Alcotest.int "chords = E - V + 1" (e - v + 1)
    (Edge_profile.num_counters plan);
  (* Fewer counters than edges: the point of the optimization. *)
  Alcotest.(check bool) "fewer counters than edges" true
    (Edge_profile.num_counters plan < Digraph.num_edges cfg.Cfg.graph)

(* Derive per-edge counts from an executed path profile: every decoded path
   contributes its frequency to each edge it traverses. *)
let edge_counts_from_paths (p : Profile.proc_profile) cfg =
  let table = Hashtbl.create 32 in
  let bump (e : Digraph.edge) f =
    Hashtbl.replace table e.Digraph.id
      (f + Option.value ~default:0 (Hashtbl.find_opt table e.Digraph.id))
  in
  let backedges =
    List.map (fun (e : Digraph.edge) -> e.Digraph.id)
      (Ball_larus.backedges p.Profile.numbering)
  in
  let real_edge u w =
    List.find
      (fun (e : Digraph.edge) -> not (List.mem e.Digraph.id backedges))
      (Digraph.find_edges cfg.Cfg.graph u w)
  in
  List.iter
    (fun (sum, (m : Profile.path_metrics)) ->
      let f = m.Profile.freq in
      let path = Ball_larus.decode p.Profile.numbering sum in
      (match path.Ball_larus.source with
      | Ball_larus.From_entry ->
          bump
            (List.hd (Digraph.out_edges cfg.Cfg.graph cfg.Cfg.entry))
            f
      | Ball_larus.After_backedge _ -> ());
      let rec walk = function
        | u :: (w :: _ as rest) ->
            bump (real_edge u w) f;
            walk rest
        | [ _ ] | [] -> ()
      in
      walk path.Ball_larus.blocks;
      match path.Ball_larus.sink with
      | Ball_larus.To_exit ->
          let last =
            List.fold_left (fun _ b -> b) (-1) path.Ball_larus.blocks
          in
          bump
            (List.find
               (fun (e : Digraph.edge) -> e.Digraph.dst = cfg.Cfg.exit)
               (Digraph.out_edges cfg.Cfg.graph last))
            f
      | Ball_larus.Into_backedge b -> bump b f)
    p.Profile.paths;
  table

let workload_src =
  {|
int data[4096];
int classify(int v) {
  if (v < 100) { return 0; }
  if (v % 2 == 0) { return 1; }
  return 2;
}
void main() {
  int i; int c0; int c1; int c2;
  c0 = 0; c1 = 0; c2 = 0;
  for (i = 0; i < 4096; i = i + 1) { data[i] = i * 37 % 1000; }
  for (i = 0; i < 4096; i = i + 1) {
    int k;
    k = classify(data[i]);
    if (k == 0) { c0 = c0 + 1; }
    else { if (k == 1) { c1 = c1 + 1; } else { c2 = c2 + 1; } }
  }
  print(c0); print(c1); print(c2);
}
|}

let test_reconstruction_matches_paths () =
  let prog = Pp_minic.Compile.program ~name:"edges" workload_src in
  (* Run once with edge profiling, once with path profiling. *)
  let se = Driver.prepare ~mode:Instrument.Edge_freq prog in
  let re = Driver.run se in
  let sp = Driver.prepare ~mode:Instrument.Flow_freq prog in
  let rp = Driver.run sp in
  Alcotest.(check bool) "same program output" true
    (re.Pp_vm.Interp.output = rp.Pp_vm.Interp.output);
  let path_profile = Driver.path_profile sp in
  List.iter
    (fun (proc, plan, edge_counts) ->
      let pp = Option.get (Profile.find_proc path_profile proc) in
      let expected =
        edge_counts_from_paths pp (Edge_profile.cfg plan)
      in
      List.iter
        (fun ((e : Digraph.edge), count) ->
          let want =
            Option.value ~default:0
              (Hashtbl.find_opt expected e.Digraph.id)
          in
          if count <> want then
            Alcotest.failf "%s edge %d->%d: reconstructed %d, paths say %d"
              proc e.Digraph.src e.Digraph.dst count want)
        edge_counts)
    (Driver.edge_profile se)

let test_edge_cheaper_than_path () =
  (* The paper: path profiling costs roughly twice efficient edge
     profiling.  Check at least strict ordering on a branchy workload. *)
  let w = Option.get (Pp_workloads.Registry.find "gcc_like") in
  let prog = Pp_workloads.Workload.compile w in
  let base = Driver.run_baseline ~max_instructions:200_000_000 prog in
  let cycles mode =
    let s = Driver.prepare ~max_instructions:200_000_000 ~mode prog in
    (Driver.run s).Pp_vm.Interp.cycles
  in
  let edge = cycles Instrument.Edge_freq in
  let path = cycles Instrument.Flow_freq in
  let base = base.Pp_vm.Interp.cycles in
  Alcotest.(check bool)
    (Printf.sprintf "edge overhead (%.2f) < path overhead (%.2f)"
       (float_of_int edge /. float_of_int base)
       (float_of_int path /. float_of_int base))
    true
    (edge - base < path - base)

let prop_reconstruct_random_cfgs =
  (* On random cyclic CFGs: chords + conservation determine every edge.
     Synthesise consistent counts by simulating random walks. *)
  QCheck.Test.make ~name:"reconstruction solves random CFGs" ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 2 10))
    (fun (seed, n) ->
      let p = Fixtures.random_cyclic_proc ~seed ~n in
      let cfg = Cfg.of_proc p in
      let plan = Edge_profile.plan cfg in
      (* Simulate some random walks ENTRY -> EXIT, recording true counts. *)
      let rng = Random.State.make [| seed; 3 |] in
      let true_counts = Hashtbl.create 32 in
      let bump (e : Digraph.edge) =
        Hashtbl.replace true_counts e.Digraph.id
          (1 + Option.value ~default:0 (Hashtbl.find_opt true_counts e.Digraph.id))
      in
      for _ = 1 to 20 do
        let v = ref cfg.Cfg.entry in
        let steps = ref 0 in
        while !v <> cfg.Cfg.exit && !steps < 200 do
          let outs = Digraph.out_edges cfg.Cfg.graph !v in
          let e = List.nth outs (Random.State.int rng (List.length outs)) in
          bump e;
          v := e.Digraph.dst;
          incr steps
        done;
        (* Abandoned walks would break conservation: force completion by
           walking the remaining way via lowest-id edges. *)
        while !v <> cfg.Cfg.exit do
          (* Prefer an edge that makes progress (to a vertex with larger
             DFS finish = closer to exit); fall back to the first. *)
          let outs = Digraph.out_edges cfg.Cfg.graph !v in
          let e =
            match
              List.find_opt
                (fun (e : Digraph.edge) -> e.Digraph.dst > e.Digraph.src)
                outs
            with
            | Some e -> e
            | None -> List.hd outs
          in
          bump e;
          v := e.Digraph.dst;
          incr steps;
          if !steps > 10_000 then failwith "walk stuck"
        done
      done;
      let counts =
        Array.of_list
          (List.map
             (fun ((e : Digraph.edge), _) ->
               Option.value ~default:0
                 (Hashtbl.find_opt true_counts e.Digraph.id))
             (Edge_profile.chords plan))
      in
      List.for_all
        (fun ((e : Digraph.edge), c) ->
          c
          = Option.value ~default:0
              (Hashtbl.find_opt true_counts e.Digraph.id))
        (Edge_profile.reconstruct plan ~counts))

let suite =
  [
    Alcotest.test_case "chord counting" `Quick test_chord_count;
    Alcotest.test_case "reconstruction matches path profile" `Quick
      test_reconstruction_matches_paths;
    Alcotest.test_case "edge profiling cheaper than path" `Slow
      test_edge_cheaper_than_path;
    QCheck_alcotest.to_alcotest prop_reconstruct_random_cfgs;
  ]
