(* Tests of the Ball–Larus path-numbering core, anchored on the paper's
   Figure 1 example plus property tests over random CFGs. *)

open Pp_core
module Cfg = Pp_ir.Cfg
module Digraph = Pp_graph.Digraph

let check = Alcotest.check
let int = Alcotest.int

let build_fig1 () = Ball_larus.build (Cfg.of_proc (Fixtures.figure1_proc ()))

(* Figure 1(b): the six paths and their path sums. *)
let fig1_paths =
  [
    (0, [ 0; 2; 3; 5 ]);          (* ACDF *)
    (1, [ 0; 2; 3; 4; 5 ]);       (* ACDEF *)
    (2, [ 0; 1; 2; 3; 5 ]);       (* ABCDF *)
    (3, [ 0; 1; 2; 3; 4; 5 ]);    (* ABCDEF *)
    (4, [ 0; 1; 3; 5 ]);          (* ABDF *)
    (5, [ 0; 1; 3; 4; 5 ]);       (* ABDEF *)
  ]

let test_fig1_num_paths () =
  let t = build_fig1 () in
  check int "six paths" 6 (Ball_larus.num_paths t)

let test_fig1_decode () =
  let t = build_fig1 () in
  List.iter
    (fun (sum, blocks) ->
      let p = Ball_larus.decode t sum in
      check (Alcotest.list int)
        (Printf.sprintf "path %d blocks" sum)
        blocks p.Ball_larus.blocks;
      (match p.Ball_larus.source with
      | Ball_larus.From_entry -> ()
      | Ball_larus.After_backedge _ -> Alcotest.fail "acyclic: no backedge");
      match p.Ball_larus.sink with
      | Ball_larus.To_exit -> ()
      | Ball_larus.Into_backedge _ -> Alcotest.fail "acyclic: no backedge")
    fig1_paths

let test_fig1_encode () =
  let t = build_fig1 () in
  List.iter
    (fun (sum, blocks) ->
      let p =
        { Ball_larus.source = Ball_larus.From_entry; blocks;
          sink = Ball_larus.To_exit }
      in
      check int (Printf.sprintf "encode %d" sum) sum (Ball_larus.encode t p))
    fig1_paths

(* Figure 1(a)/(c): the published edge values.  Edge (A->B) = 2, (B->D) = 2,
   (D->E) = 1, all others 0. *)
let test_fig1_edge_vals () =
  let t = build_fig1 () in
  let cfg = Ball_larus.cfg t in
  let val_of src dst =
    match Digraph.find_edges cfg.Cfg.graph src dst with
    | [ e ] -> Ball_larus.edge_val t e
    | _ -> Alcotest.fail "expected exactly one edge"
  in
  check int "A->B" 2 (val_of 0 1);
  check int "A->C" 0 (val_of 0 2);
  check int "B->C" 0 (val_of 1 2);
  check int "B->D" 2 (val_of 1 3);
  check int "D->E" 1 (val_of 3 4);
  check int "D->F" 0 (val_of 3 5);
  check int "E->F" 0 (val_of 4 5)

let test_fig1_np () =
  let t = build_fig1 () in
  (* NP: F=1, E=1, D=2, C=2, B=4, A=6 *)
  List.iter
    (fun (v, expected) ->
      check int (Printf.sprintf "NP(%d)" v) expected (Ball_larus.np t v))
    [ (5, 1); (4, 1); (3, 2); (2, 2); (1, 4); (0, 6) ]

(* The simple loop: ENTRY L0 L1, backedge L2->L1.  Expected paths:
   - L0 L1 L3 EXIT          (skip the loop)
   - L0 L1 L2 (into backedge)
   - L1 L2 (after backedge, into backedge)
   - L1 L3 (after backedge, to exit)
   Total 4 paths, each in its own category of the paper's four. *)
let test_loop_paths () =
  let t = Ball_larus.build (Cfg.of_proc (Fixtures.loop_proc ())) in
  check int "loop backedges" 1 (List.length (Ball_larus.backedges t));
  check int "loop paths" 4 (Ball_larus.num_paths t);
  let cats = Array.make 4 0 in
  for sum = 0 to 3 do
    let p = Ball_larus.decode t sum in
    let cat =
      match (p.Ball_larus.source, p.Ball_larus.sink) with
      | Ball_larus.From_entry, Ball_larus.To_exit -> 0
      | Ball_larus.From_entry, Ball_larus.Into_backedge _ -> 1
      | Ball_larus.After_backedge _, Ball_larus.Into_backedge _ -> 2
      | Ball_larus.After_backedge _, Ball_larus.To_exit -> 3
    in
    cats.(cat) <- cats.(cat) + 1
  done;
  Array.iteri
    (fun i c -> check int (Printf.sprintf "category %d" i) 1 c)
    cats

let test_self_loop () =
  let t = Ball_larus.build (Cfg.of_proc (Fixtures.self_loop_proc ())) in
  check int "self-loop backedges" 1 (List.length (Ball_larus.backedges t));
  (* Paths: L0 L1 L2; L0 L1 into-b; after-b L1 L2; after-b L1 into-b. *)
  check int "self-loop paths" 4 (Ball_larus.num_paths t)

let test_two_backedges () =
  let t = Ball_larus.build (Cfg.of_proc (Fixtures.two_backedges_proc ())) in
  check int "backedges" 2 (List.length (Ball_larus.backedges t));
  (* All sums decode without assertion failure and re-encode. *)
  for sum = 0 to Ball_larus.num_paths t - 1 do
    let p = Ball_larus.decode t sum in
    check int (Printf.sprintf "roundtrip %d" sum) sum (Ball_larus.encode t p)
  done

(* Walk a placement over a decoded path and return the committed value.
   This simulates exactly what instrumented code computes. *)
let committed_sum t placement (path : Ball_larus.path) =
  let cfg = Ball_larus.cfg t in
  let increments = placement.Ball_larus.increments in
  let inc_of e =
    match
      List.find_opt (fun ((e' : Digraph.edge), _) -> e'.id = e.Digraph.id)
        increments
    with
    | Some (_, v) -> v
    | None -> 0
  in
  (* Rebuild the DAG-edge walk: start value depends on the source. *)
  let r = ref 0 in
  (match path.Ball_larus.source with
  | Ball_larus.From_entry ->
      (* The ENTRY edge may itself carry an increment. *)
      let first = List.hd path.Ball_larus.blocks in
      List.iter
        (fun (e : Digraph.edge) ->
          if e.dst = first && Cfg.role cfg e = Cfg.Entry then r := !r + inc_of e)
        (Digraph.out_edges cfg.Cfg.graph cfg.Cfg.entry)
  | Ball_larus.After_backedge b ->
      let op =
        List.find
          (fun (op : Ball_larus.backedge_op) ->
            op.backedge.Digraph.id = b.Digraph.id)
          placement.Ball_larus.backedge_ops
      in
      r := op.Ball_larus.reset_to);
  let rec walk = function
    | [] | [ _ ] -> ()
    | u :: (w :: _ as rest) ->
        (* Take the first CFG edge u->w that is not a backedge. *)
        let e =
          List.find
            (fun (e : Digraph.edge) ->
              not
                (List.exists
                   (fun (b : Digraph.edge) -> b.id = e.id)
                   (Ball_larus.backedges t)))
            (Digraph.find_edges cfg.Cfg.graph u w)
        in
        r := !r + inc_of e;
        walk rest
  in
  walk path.Ball_larus.blocks;
  match path.Ball_larus.sink with
  | Ball_larus.To_exit ->
      (* Increments on the Return edge are placed in the Ret block, before
         the commit. *)
      let last = List.fold_left (fun _ b -> b) (-1) path.Ball_larus.blocks in
      List.iter
        (fun (e : Digraph.edge) ->
          if e.dst = cfg.Cfg.exit then r := !r + inc_of e)
        (Digraph.out_edges cfg.Cfg.graph last);
      !r
  | Ball_larus.Into_backedge b ->
      let op =
        List.find
          (fun (op : Ball_larus.backedge_op) ->
            op.backedge.Digraph.id = b.Digraph.id)
          placement.Ball_larus.backedge_ops
      in
      !r + op.Ball_larus.end_add

let placement_is_faithful t placement =
  let ok = ref true in
  for sum = 0 to min (Ball_larus.num_paths t) 256 - 1 do
    let p = Ball_larus.decode t sum in
    if committed_sum t placement p <> sum then ok := false
  done;
  !ok

let test_simple_placement_fig1 () =
  let t = build_fig1 () in
  let pl = Ball_larus.simple_placement t in
  Alcotest.(check bool) "faithful" true (placement_is_faithful t pl)

let test_optimized_placement_fig1 () =
  let t = build_fig1 () in
  let pl = Ball_larus.optimized_placement t in
  Alcotest.(check bool) "faithful" true (placement_is_faithful t pl);
  (* Weight the A-C-D-F spine heavily: the optimization must keep those hot
     edges free of increments (they become spanning-tree edges). *)
  let cfg = Ball_larus.cfg t in
  let hot (e : Digraph.edge) =
    match (e.src, e.dst) with
    | 6, 0 (* ENTRY->A *) | 0, 2 | 2, 3 | 3, 5 -> true
    | 5, 7 (* F->EXIT *) -> true
    | _ -> false
  in
  let weights e = if hot e then 100 else 1 in
  let pl = Ball_larus.optimized_placement ~weights t in
  Alcotest.(check bool) "faithful with weights" true
    (placement_is_faithful t pl);
  List.iter
    (fun ((e : Digraph.edge), v) ->
      if hot e && v <> 0 then
        Alcotest.failf "hot edge %d->%d carries increment %d" e.src e.dst v)
    pl.Ball_larus.increments;
  ignore cfg

(* Property tests over random CFGs. *)

let prop_bijection =
  QCheck.Test.make ~name:"path sums decode and re-encode (random DAGs)"
    ~count:60
    QCheck.(pair (int_range 0 10_000) (int_range 2 12))
    (fun (seed, n) ->
      let t =
        Ball_larus.build (Cfg.of_proc (Fixtures.random_dag_proc ~seed ~n))
      in
      let np = Ball_larus.num_paths t in
      let stride = max 1 (np / 50) in
      let ok = ref true in
      let sum = ref 0 in
      while !sum < np do
        let p = Ball_larus.decode t !sum in
        if Ball_larus.encode t p <> !sum then ok := false;
        sum := !sum + stride
      done;
      !ok)

let prop_cyclic_roundtrip =
  QCheck.Test.make ~name:"decode/encode on cyclic CFGs" ~count:60
    QCheck.(pair (int_range 0 10_000) (int_range 2 12))
    (fun (seed, n) ->
      let t =
        Ball_larus.build (Cfg.of_proc (Fixtures.random_cyclic_proc ~seed ~n))
      in
      let np = Ball_larus.num_paths t in
      let stride = max 1 (np / 50) in
      let ok = ref true in
      let sum = ref 0 in
      while !sum < np do
        let p = Ball_larus.decode t !sum in
        if Ball_larus.encode t p <> !sum then ok := false;
        sum := !sum + stride
      done;
      !ok)

let prop_placements_agree =
  QCheck.Test.make
    ~name:"simple and optimized placements commit identical sums" ~count:40
    QCheck.(pair (int_range 0 10_000) (int_range 2 10))
    (fun (seed, n) ->
      let t =
        Ball_larus.build (Cfg.of_proc (Fixtures.random_cyclic_proc ~seed ~n))
      in
      placement_is_faithful t (Ball_larus.simple_placement t)
      && placement_is_faithful t (Ball_larus.optimized_placement t))

let prop_distinct_paths =
  QCheck.Test.make ~name:"distinct sums decode to distinct paths" ~count:30
    QCheck.(pair (int_range 0 10_000) (int_range 2 9))
    (fun (seed, n) ->
      let t =
        Ball_larus.build (Cfg.of_proc (Fixtures.random_cyclic_proc ~seed ~n))
      in
      let np = min (Ball_larus.num_paths t) 128 in
      let seen = Hashtbl.create 64 in
      let ok = ref true in
      for sum = 0 to np - 1 do
        let p = Ball_larus.decode t sum in
        let key =
          (p.Ball_larus.source, p.Ball_larus.blocks, p.Ball_larus.sink)
        in
        if Hashtbl.mem seen key then ok := false;
        Hashtbl.add seen key ()
      done;
      !ok)

(* A chain of k independent diamonds multiplies path counts: 2^k. *)
let diamond_chain k =
  let open Pp_ir in
  let b = Builder.create ~name:(Printf.sprintf "dia%d" k) ~iparams:1
      ~fparams:0 ~returns:Proc.Returns_void in
  (* blocks: for each diamond: head, left, right; plus final ret *)
  let heads = Array.init k (fun _ -> Builder.new_block b) in
  let lefts = Array.init k (fun _ -> Builder.new_block b) in
  let rights = Array.init k (fun _ -> Builder.new_block b) in
  let ret = Builder.new_block b in
  for i = 0 to k - 1 do
    if i > 0 then Builder.switch_to b heads.(i);
    Builder.terminate b (Block.Br (0, lefts.(i), rights.(i)));
    let next = if i = k - 1 then ret else heads.(i + 1) in
    Builder.switch_to b lefts.(i);
    Builder.terminate b (Block.Jmp next);
    Builder.switch_to b rights.(i);
    Builder.terminate b (Block.Jmp next)
  done;
  Builder.switch_to b ret;
  Builder.terminate b (Block.Ret Block.Ret_void);
  Builder.finish b

let test_path_count_formula () =
  List.iter
    (fun k ->
      let t = Ball_larus.build (Cfg.of_proc (diamond_chain k)) in
      check int (Printf.sprintf "2^%d paths" k) (1 lsl k)
        (Ball_larus.num_paths t))
    [ 1; 4; 10; 20 ]

let test_path_count_overflow_guard () =
  (* 2^63 paths cannot be represented in a 63-bit int: the builder must
     refuse rather than silently wrap. *)
  match Ball_larus.build (Cfg.of_proc (diamond_chain 63)) with
  | exception Ball_larus.Unsupported _ -> ()
  | t ->
      Alcotest.failf "expected overflow, got %d paths"
        (Ball_larus.num_paths t)

let test_infinite_loop_still_numbered () =
  (* A block that spins forever never reaches EXIT in the original CFG,
     yet the pseudo-edge transform still numbers it: the spin block reaches
     EXIT through its backedge's pseudo edge, and at run time every
     traversal of the backedge commits a path.  (This is why the paper's
     instrumentation keeps working for non-terminating regions.) *)
  let open Pp_ir in
  let blocks =
    [|
      { Block.label = 0; instrs = []; term = Block.Br (0, 1, 2) };
      { Block.label = 1; instrs = []; term = Block.Jmp 1 };
      { Block.label = 2; instrs = []; term = Block.Ret Block.Ret_void };
    |]
  in
  let p =
    Proc.make ~frame_words:0 ~name:"spin" ~iparams:1 ~fparams:0
      ~returns:Proc.Returns_void ~blocks ~entry:0
  in
  let t = Ball_larus.build (Cfg.of_proc p) in
  check int "one backedge" 1 (List.length (Ball_larus.backedges t));
  (* Paths: L0 L2 exit; L0 L1 into-b; after-b L1 into-b.  The spin block
     appears only on backedge-committed paths. *)
  check int "three paths" 3 (Ball_larus.num_paths t);
  for sum = 0 to 2 do
    let path = Ball_larus.decode t sum in
    if List.mem 1 path.Ball_larus.blocks then
      match path.Ball_larus.sink with
      | Ball_larus.Into_backedge _ -> ()
      | Ball_larus.To_exit ->
          Alcotest.fail "the spin block cannot be on a path to EXIT"
  done

let suite =
  [
    Alcotest.test_case "fig1 has six paths" `Quick test_fig1_num_paths;
    Alcotest.test_case "path count formula (diamond chains)" `Quick
      test_path_count_formula;
    Alcotest.test_case "path count overflow guard" `Quick
      test_path_count_overflow_guard;
    Alcotest.test_case "infinite loops still get numbered" `Quick
      test_infinite_loop_still_numbered;
    Alcotest.test_case "fig1 decode" `Quick test_fig1_decode;
    Alcotest.test_case "fig1 encode" `Quick test_fig1_encode;
    Alcotest.test_case "fig1 edge values" `Quick test_fig1_edge_vals;
    Alcotest.test_case "fig1 NP values" `Quick test_fig1_np;
    Alcotest.test_case "loop path categories" `Quick test_loop_paths;
    Alcotest.test_case "self-loop" `Quick test_self_loop;
    Alcotest.test_case "two backedges roundtrip" `Quick test_two_backedges;
    Alcotest.test_case "simple placement faithful (fig1)" `Quick
      test_simple_placement_fig1;
    Alcotest.test_case "optimized placement faithful (fig1)" `Quick
      test_optimized_placement_fig1;
    QCheck_alcotest.to_alcotest prop_bijection;
    QCheck_alcotest.to_alcotest prop_cyclic_roundtrip;
    QCheck_alcotest.to_alcotest prop_placements_agree;
    QCheck_alcotest.to_alcotest prop_distinct_paths;
  ]
