(* Workload sanity: all eighteen compile, run deterministically, and show
   the qualitative signatures the benchmarks rely on (go/gcc execute many
   paths, fpppp almost none; vortex builds the deepest CCT; mgrid's strides
   conflict in the direct-mapped cache). *)

module W = Pp_workloads.Workload
module Registry = Pp_workloads.Registry
module Interp = Pp_vm.Interp
module Event = Pp_machine.Event

let budget = 100_000_000

let run_workload (w : W.t) =
  let prog = W.compile w in
  Interp.run (Interp.create ~max_instructions:budget prog)

let test_all_run () =
  Alcotest.(check int) "eighteen workloads" 18 (List.length Registry.all);
  List.iter
    (fun (w : W.t) ->
      match run_workload w with
      | r ->
          if r.Interp.instructions < 500_000 then
            Alcotest.failf "%s too small: %d instructions" w.W.name
              r.Interp.instructions;
          if r.Interp.output = [] then
            Alcotest.failf "%s produced no output" w.W.name
      | exception Interp.Trap m -> Alcotest.failf "%s trapped: %s" w.W.name m)
    Registry.all

let test_deterministic () =
  List.iter
    (fun name ->
      let w = Option.get (Registry.find name) in
      let r1 = run_workload w and r2 = run_workload w in
      Alcotest.(check int)
        (name ^ " cycles deterministic")
        r1.Interp.cycles r2.Interp.cycles;
      Alcotest.(check bool)
        (name ^ " output deterministic")
        true
        (r1.Interp.output = r2.Interp.output))
    [ "go_like"; "tomcatv_like"; "vortex_like" ]

let executed_paths name =
  let w = Option.get (Registry.find name) in
  let prog = W.compile w in
  let s =
    Pp_instrument.Driver.prepare ~max_instructions:(2 * budget)
      ~mode:Pp_instrument.Instrument.Flow_freq prog
  in
  ignore (Pp_instrument.Driver.run s);
  let profile = Pp_instrument.Driver.path_profile s in
  List.fold_left
    (fun acc (p : Pp_core.Profile.proc_profile) ->
      acc + List.length p.Pp_core.Profile.paths)
    0 profile.Pp_core.Profile.procs

let test_path_count_signatures () =
  let go = executed_paths "go_like" in
  let fpppp = executed_paths "fpppp_like" in
  let compress = executed_paths "compress_like" in
  (* go executes roughly an order of magnitude more paths. *)
  Alcotest.(check bool)
    (Printf.sprintf "go (%d) >> fpppp (%d)" go fpppp)
    true
    (go > 5 * fpppp);
  Alcotest.(check bool)
    (Printf.sprintf "go (%d) > compress (%d)" go compress)
    true (go > compress)

let test_mgrid_conflicts () =
  (* mgrid's power-of-two strides must show a much higher miss *ratio* than
     tomcatv's unit-stride sweeps. *)
  let ratio name =
    let w = Option.get (Registry.find name) in
    let r = run_workload w in
    let miss = List.assoc Event.Dcache_misses r.Interp.counters in
    let refs =
      List.assoc Event.Dcache_reads r.Interp.counters
      + List.assoc Event.Dcache_writes r.Interp.counters
    in
    float_of_int miss /. float_of_int (max refs 1)
  in
  let m = ratio "mgrid_like" and t = ratio "tomcatv_like" in
  Alcotest.(check bool)
    (Printf.sprintf "mgrid ratio %.3f > tomcatv %.3f" m t)
    true (m > t)

let test_fpppp_stalls () =
  (* fpppp is the FP-stall outlier. *)
  let stalls name =
    let w = Option.get (Registry.find name) in
    let r = run_workload w in
    float_of_int (List.assoc Event.Fp_stalls r.Interp.counters)
    /. float_of_int r.Interp.instructions
  in
  Alcotest.(check bool) "fpppp stalls heavily" true
    (stalls "fpppp_like" > stalls "compress_like")

let test_vortex_cct () =
  let cct_nodes name =
    let w = Option.get (Registry.find name) in
    let prog = W.compile w in
    let s =
      Pp_instrument.Driver.prepare ~max_instructions:(2 * budget)
        ~mode:Pp_instrument.Instrument.Context_hw prog
    in
    ignore (Pp_instrument.Driver.run s);
    Pp_core.Cct.num_nodes (Pp_instrument.Driver.cct s)
  in
  let vortex = cct_nodes "vortex_like" in
  let tomcatv = cct_nodes "tomcatv_like" in
  Alcotest.(check bool)
    (Printf.sprintf "vortex CCT (%d) > tomcatv CCT (%d)" vortex tomcatv)
    true
    (vortex > tomcatv)

let suite =
  [
    Alcotest.test_case "all compile and run" `Slow test_all_run;
    Alcotest.test_case "deterministic" `Slow test_deterministic;
    Alcotest.test_case "path-count signatures" `Slow
      test_path_count_signatures;
    Alcotest.test_case "mgrid conflict misses" `Slow test_mgrid_conflicts;
    Alcotest.test_case "fpppp FP stalls" `Slow test_fpppp_stalls;
    Alcotest.test_case "vortex largest CCT" `Slow test_vortex_cct;
  ]
