(* Loop-depth based frequency estimation. *)

module Static_weights = Pp_core.Static_weights
module Digraph = Pp_graph.Digraph
module Cfg = Pp_ir.Cfg

let check = Alcotest.check

let test_single_loop () =
  let cfg = Cfg.of_proc (Fixtures.loop_proc ()) in
  let depths = Static_weights.loop_depths cfg in
  (* L0 entry chain and L3 return are outside; head L1 and body L2 are in
     the loop. *)
  check Alcotest.int "L0 outside" 0 depths.(0);
  check Alcotest.int "head inside" 1 depths.(1);
  check Alcotest.int "body inside" 1 depths.(2);
  check Alcotest.int "exit block outside" 0 depths.(3);
  check Alcotest.int "ENTRY outside" 0 depths.(cfg.Cfg.entry)

let test_nested_loops () =
  (* Compile a doubly nested MiniC loop and find a depth-2 vertex. *)
  let src =
    {|
int sink;
void main() {
  int i; int j;
  for (i = 0; i < 3; i = i + 1) {
    for (j = 0; j < 3; j = j + 1) {
      sink = sink + 1;
    }
  }
}
|}
  in
  let prog = Pp_minic.Compile.program ~name:"nest" src in
  let main = Pp_ir.Program.proc_exn prog "main" in
  let cfg = Cfg.of_proc main in
  let depths = Static_weights.loop_depths cfg in
  let max_depth = Array.fold_left max 0 depths in
  check Alcotest.int "inner body at depth 2" 2 max_depth;
  (* Weight grows 8x per level. *)
  let weight = Static_weights.edge_weight cfg in
  let weights_seen =
    Digraph.fold_edges (fun e acc -> weight e :: acc) cfg.Cfg.graph []
    |> List.sort_uniq compare
  in
  Alcotest.(check (Alcotest.list Alcotest.int))
    "weights are 1, 8, 64" [ 1; 8; 64 ] weights_seen

let test_weighted_tree_minimises_chord_mass () =
  (* A maximum-weight spanning tree minimises the total weight of the
     chords — the instrumented edges.  Compare the loop-aware choice with
     the uniform one on several CFGs. *)
  List.iter
    (fun proc ->
      let cfg = Cfg.of_proc proc in
      let weight = Static_weights.edge_weight cfg in
      let mass plan =
        List.fold_left
          (fun acc (e, _) -> acc + weight e)
          0
          (Pp_core.Edge_profile.chords plan)
      in
      let uniform = Pp_core.Edge_profile.plan cfg in
      let weighted = Pp_core.Edge_profile.plan ~weights:weight cfg in
      if mass weighted > mass uniform then
        Alcotest.failf "%s: weighted chord mass %d > uniform %d"
          proc.Pp_ir.Proc.name (mass weighted) (mass uniform))
    [
      Fixtures.loop_proc ();
      Fixtures.two_backedges_proc ();
      Fixtures.figure1_proc ();
      Fixtures.random_cyclic_proc ~seed:5 ~n:9;
      Fixtures.random_cyclic_proc ~seed:6 ~n:12;
    ]

let suite =
  [
    Alcotest.test_case "single loop depths" `Quick test_single_loop;
    Alcotest.test_case "nested loop depths" `Quick test_nested_loops;
    Alcotest.test_case "weighted tree minimises chord mass" `Quick
      test_weighted_tree_minimises_chord_mass;
  ]
