(* The VM's stack sampler (the 7.2 comparison profiler). *)

module Interp = Pp_vm.Interp

let src =
  {|
int sink;
void inner(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) { sink = sink + i; }
}
void outer() { inner(2000); }
void main() {
  int r;
  for (r = 0; r < 20; r = r + 1) { outer(); inner(500); }
  print(sink);
}
|}

let run ~interval =
  let prog = Pp_minic.Compile.program ~name:"sampled" src in
  let vm = Interp.create prog in
  (match interval with
  | Some i -> Interp.enable_sampling vm ~interval:i
  | None -> ());
  let r = Interp.run vm in
  (vm, r)

let test_sample_counts () =
  let vm, r = run ~interval:(Some 1000) in
  let samples = Interp.samples vm in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 samples in
  let expected = r.Interp.cycles / 1000 in
  Alcotest.(check bool)
    (Printf.sprintf "total samples %d ~ cycles/interval %d" total expected)
    true
    (abs (total - expected) <= 1)

let test_sampling_transparent () =
  (* Sampling must not perturb execution at all (it is outside the machine
     model, like an external interrupt-based profiler). *)
  let _, r1 = run ~interval:(Some 500) in
  let _, r2 = run ~interval:None in
  Alcotest.(check int) "same cycles" r2.Interp.cycles r1.Interp.cycles;
  Alcotest.(check bool) "same output" true
    (r1.Interp.output = r2.Interp.output)

let test_sampling_shape () =
  let vm, _ = run ~interval:(Some 200) in
  let samples = Interp.samples vm in
  (* Stacks are rooted at main. *)
  List.iter
    (fun (stack, _) ->
      match stack with
      | "main" :: _ -> ()
      | s ->
          Alcotest.failf "stack not rooted at main: %s"
            (String.concat "." s))
    samples;
  (* inner-under-outer dominates inner-under-main 4:1 in work; sampling
     should agree within a factor of two. *)
  let hits ctx =
    Option.value ~default:0 (List.assoc_opt ctx samples)
  in
  let via_outer = hits [ "main"; "outer"; "inner" ] in
  let direct = hits [ "main"; "inner" ] in
  Alcotest.(check bool)
    (Printf.sprintf "outer-inner (%d) >> direct inner (%d)" via_outer direct)
    true
    (via_outer > 2 * direct)

let suite =
  [
    Alcotest.test_case "sample counts track cycles" `Quick test_sample_counts;
    Alcotest.test_case "sampling does not perturb" `Quick
      test_sampling_transparent;
    Alcotest.test_case "sampled stacks are sensible" `Quick
      test_sampling_shape;
  ]
