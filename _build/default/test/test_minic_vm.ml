(* End-to-end tests: MiniC source -> IR -> VM execution, checking program
   semantics via the output stream and basic counter sanity. *)

let compile src = Pp_minic.Compile.program ~name:"test" src

let run ?(max_instructions = 50_000_000) src =
  let prog = compile src in
  let vm = Pp_vm.Interp.create ~max_instructions prog in
  Pp_vm.Interp.run vm

let ints result =
  List.map
    (function
      | Pp_vm.Interp.Oint n -> n
      | Pp_vm.Interp.Ofloat _ -> Alcotest.fail "unexpected float output")
    result.Pp_vm.Interp.output

let floats result =
  List.map
    (function
      | Pp_vm.Interp.Ofloat x -> x
      | Pp_vm.Interp.Oint _ -> Alcotest.fail "unexpected int output")
    result.Pp_vm.Interp.output

let check_ints name expected src =
  Alcotest.(check (list int)) name expected (ints (run src))

let test_arith () =
  check_ints "arithmetic" [ 7; 1; 12; 2; 1; 0; 1; -5 ]
    {|
void main() {
  print(3 + 4);
  print(10 % 3);
  print(3 * 4);
  print(5 / 2);
  print(3 < 4);
  print(4 < 3);
  print(3 <= 3);
  print(-5);
}
|}

let test_loops () =
  check_ints "loops" [ 55; 10; 3; 25 ]
    {|
void main() {
  int s; int i;
  s = 0;
  for (i = 1; i <= 10; i = i + 1) { s = s + i; }
  print(s);
  i = 0;
  while (1) { i = i + 1; if (i >= 10) { break; } }
  print(i);
  // continue: count odd numbers below 7
  s = 0;
  for (i = 0; i < 7; i = i + 1) {
    if (i % 2 == 0) { continue; }
    s = s + 1;
  }
  print(s);
  // nested
  s = 0;
  for (i = 0; i < 5; i = i + 1) {
    int j;
    for (j = 0; j < 5; j = j + 1) { s = s + 1; }
  }
  print(s);
}
|}

let test_recursion () =
  check_ints "fib" [ 55; 3628800 ]
    {|
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int fact(int n) {
  if (n <= 1) { return 1; }
  return n * fact(n - 1);
}
void main() { print(fib(10)); print(fact(10)); }
|}

let test_arrays () =
  check_ints "arrays" [ 285; 18; 4; 9 ]
    {|
int a[10];
int m[3][3];
void main() {
  int i; int j;
  for (i = 0; i < 10; i = i + 1) { a[i] = i * i; }
  int s;
  s = 0;
  for (i = 0; i < 10; i = i + 1) { s = s + a[i]; }
  print(s);
  // 2-D
  for (i = 0; i < 3; i = i + 1) {
    for (j = 0; j < 3; j = j + 1) { m[i][j] = i + j; }
  }
  s = 0;
  for (i = 0; i < 3; i = i + 1) {
    for (j = 0; j < 3; j = j + 1) { s = s + m[i][j]; }
  }
  print(s);
  print(m[2][2]);
  // local array
  int buf[5];
  for (i = 0; i < 5; i = i + 1) { buf[i] = i * i; }
  print(buf[3]);
}
|}

let test_global_init () =
  check_ints "global init" [ 42; 6; 0 ]
    {|
int g = 42;
int tab[4] = {1, 2, 3};
void main() {
  print(g);
  print(tab[0] + tab[1] + tab[2]);
  print(tab[3]); // zero-filled
}
|}

let test_floats () =
  let r =
    run
      {|
float acc;
void main() {
  float x; float y;
  x = 1.5; y = 2.25;
  print(x + y);
  print(x * y);
  print(float(7) / 2.0);
  print(int(3.99));
  acc = 0.0;
  int i;
  for (i = 0; i < 4; i = i + 1) { acc = acc + 0.25; }
  print(acc);
}
|}
  in
  match r.Pp_vm.Interp.output with
  | [ Ofloat a; Ofloat b; Ofloat c; Oint d; Ofloat e ] ->
      Alcotest.(check (float 1e-9)) "add" 3.75 a;
      Alcotest.(check (float 1e-9)) "mul" 3.375 b;
      Alcotest.(check (float 1e-9)) "div" 3.5 c;
      Alcotest.(check int) "trunc" 3 d;
      Alcotest.(check (float 1e-9)) "acc" 1.0 e
  | _ -> Alcotest.fail "unexpected output shape"

let test_funptr () =
  check_ints "function pointers" [ 7; 12; 7 ]
    {|
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
funptr table_choice(int which) {
  funptr f;
  if (which == 0) { f = &add; } else { f = &mul; }
  return f;
}
void main() {
  funptr f;
  f = &add;
  print(f(3, 4));
  f = &mul;
  print(f(3, 4));
  f = table_choice(0);
  print(f(3, 4));
}
|}

let test_short_circuit () =
  check_ints "short circuit" [ 0; 1; 1; 0; 1; 2 ]
    {|
int calls;
int bump() { calls = calls + 1; return 1; }
void main() {
  calls = 0;
  print(0 && bump());   // rhs not evaluated
  print(1 || bump());   // rhs not evaluated
  print(calls == 0);
  print(1 && 0);
  print(0 || 1);
  int x;
  x = (1 && bump()) + (0 || bump());
  print(calls);
}
|}

let test_div_by_zero () =
  match run {|
void main() {
  int z; z = 0;
  print(1 / z);
}
|} with
  | exception Pp_vm.Interp.Trap _ -> ()
  | _ -> Alcotest.fail "expected a trap"

let test_out_of_bounds () =
  (* Access far outside any segment must fault, not corrupt. *)
  match
    run {|
int a[4];
void main() {
  a[100000000] = 1;
}
|}
  with
  | exception Pp_vm.Interp.Trap _ -> ()
  | _ -> Alcotest.fail "expected a trap"

let test_budget () =
  match
    run ~max_instructions:1000
      {|
void main() {
  int i;
  for (i = 0; i < 1000000; i = i + 1) { }
}
|}
  with
  | exception Pp_vm.Interp.Trap msg ->
      Alcotest.(check bool) "budget message" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected budget trap"

let test_deterministic_counters () =
  let src =
    {|
float v[2048];
void main() {
  int i;
  for (i = 0; i < 2048; i = i + 1) { v[i] = float(i); }
  float s; s = 0.0;
  for (i = 0; i < 2048; i = i + 1) { s = s + v[i]; }
  print(s);
}
|}
  in
  let r1 = run src and r2 = run src in
  Alcotest.(check (list (pair string int)))
    "identical counters"
    (List.map (fun (e, v) -> (Pp_machine.Event.name e, v))
       r1.Pp_vm.Interp.counters)
    (List.map (fun (e, v) -> (Pp_machine.Event.name e, v))
       r2.Pp_vm.Interp.counters)

let test_counters_sane () =
  let r =
    run
      {|
int big[65536];
void main() {
  int i;
  // Stride through 512 KB: guaranteed D-cache misses on a 16 KB cache.
  for (i = 0; i < 65536; i = i + 1) { big[i] = i; }
  int s; s = 0;
  for (i = 0; i < 65536; i = i + 1) { s = s + big[i]; }
  print(s);
}
|}
  in
  let total e = List.assoc e r.Pp_vm.Interp.counters in
  Alcotest.(check bool) "instructions > 0" true
    (total Pp_machine.Event.Instructions > 0);
  Alcotest.(check bool) "cycles >= instructions" true
    (total Pp_machine.Event.Cycles >= total Pp_machine.Event.Instructions);
  (* 65536 words = 16384 lines of read misses expected (4 words/line). *)
  let read_misses = total Pp_machine.Event.Dcache_read_misses in
  Alcotest.(check bool) "read misses near 16384" true
    (read_misses > 15_000 && read_misses < 20_000);
  Alcotest.(check int) "combined = read + write misses"
    (total Pp_machine.Event.Dcache_read_misses
     + total Pp_machine.Event.Dcache_write_misses)
    (total Pp_machine.Event.Dcache_misses)

let test_stack_overflow () =
  match
    run
      {|
int down(int n) { return down(n + 1); }
void main() { print(down(0)); }
|}
  with
  | exception Pp_vm.Interp.Trap _ -> ()
  | _ -> Alcotest.fail "expected stack overflow or budget trap"

let test_mixed_args () =
  (* Mixed int/float parameters exercise the split calling convention:
     ints arrive in r0.. in declaration order among ints, floats in f0..
     among floats. *)
  let r =
    run
      {|
float mix(int a, float x, int b, float y) {
  return float(a * 1000 + b) + x * 10.0 + y;
}
void main() {
  print(mix(1, 2.0, 3, 4.5));
  print(mix(7, 0.25, 9, 0.5));
}
|}
  in
  match floats r with
  | [ a; b ] ->
      Alcotest.(check (float 1e-9)) "mix1" 1027.5 a;
      Alcotest.(check (float 1e-9)) "mix2" 7012.0 b
  | _ -> Alcotest.fail "unexpected output"

let test_funptr_equality () =
  check_ints "funptr equality" [ 1; 0; 1 ]
    {|
int f(int x) { return x; }
int g(int x) { return x + 1; }
void main() {
  funptr a; funptr b;
  a = &f; b = &f;
  print(a == b);
  b = &g;
  print(a == b);
  print(a != b);
}
|}

let test_negative_modulo () =
  (* OCaml-style truncated division: the remainder takes the dividend's
     sign. *)
  check_ints "negative modulo" [ -1; 1; -2; -2 ]
    {|
void main() {
  print(-7 % 3);
  print(7 % -3);
  print(-7 / 3);
  print(7 / -3);
}
|}

let test_float_compare_branching () =
  check_ints "float comparisons" [ 1; 0; 1; 1 ]
    {|
void main() {
  float a; float b;
  a = 1.5; b = 2.5;
  print(a < b);
  print(a >= b);
  if (a != b) { print(1); } else { print(0); }
  print(a == 1.5);
}
|}

let test_deep_expression () =
  (* Deeply nested expressions stress register allocation in lowering. *)
  check_ints "deep nesting" [ 768 ]
    {|
void main() {
  int x;
  x = ((((((((((1 + 1) * (1 + 1)) + ((1 + 1) * (1 + 1))) * ((1 + 1) + (1 + 1)))
       + (((1 + 1) * (1 + 1)) * ((1 + 1) + (1 + 1)))) * (1 + 1)) * (1 + 1))
       * (1 + 1)) * (1 + 1)) * 2) / 2;
  print(x);
}
|}

let test_type_errors () =
  let expect_error src =
    match compile src with
    | exception Pp_minic.Errors.Error _ -> ()
    | _ -> Alcotest.fail "expected a compile error"
  in
  expect_error {| void main() { int x; x = 1.5; } |};
  expect_error {| void main() { float y; y = 1; } |};
  expect_error {| void main() { print(missing()); } |};
  expect_error {| int f(int a) { return a; } void main() { print(f()); } |};
  expect_error {| void main() { break; } |};
  expect_error {| void main() { int x; int x; } |};
  expect_error {| int a[4]; void main() { print(a[1][2]); } |};
  expect_error {| void main() { return 3; } |};
  expect_error {| float g(float x) { return x; } void main() { funptr f; f = &g; } |}

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "loops/break/continue" `Quick test_loops;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "arrays (1-D, 2-D, local)" `Quick test_arrays;
    Alcotest.test_case "global initialisers" `Quick test_global_init;
    Alcotest.test_case "floats and casts" `Quick test_floats;
    Alcotest.test_case "function pointers" `Quick test_funptr;
    Alcotest.test_case "short-circuit evaluation" `Quick test_short_circuit;
    Alcotest.test_case "division by zero traps" `Quick test_div_by_zero;
    Alcotest.test_case "out-of-bounds traps" `Quick test_out_of_bounds;
    Alcotest.test_case "instruction budget traps" `Quick test_budget;
    Alcotest.test_case "counters are deterministic" `Quick
      test_deterministic_counters;
    Alcotest.test_case "counters are sane" `Quick test_counters_sane;
    Alcotest.test_case "stack overflow traps" `Quick test_stack_overflow;
    Alcotest.test_case "type errors rejected" `Quick test_type_errors;
    Alcotest.test_case "mixed int/float arguments" `Quick test_mixed_args;
    Alcotest.test_case "funptr equality" `Quick test_funptr_equality;
    Alcotest.test_case "negative division/modulo" `Quick test_negative_modulo;
    Alcotest.test_case "float comparisons" `Quick
      test_float_compare_branching;
    Alcotest.test_case "deep expressions" `Quick test_deep_expression;
  ]
