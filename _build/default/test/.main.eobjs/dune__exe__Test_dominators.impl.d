test/test_dominators.ml: Alcotest Array Fixtures List Pp_graph Pp_ir QCheck QCheck_alcotest
