test/fixtures.ml: Array Block Builder Pp_ir Printf Proc Random
