test/test_random_programs.ml: Buffer List Pp_core Pp_instrument Pp_minic Pp_vm Printf QCheck QCheck_alcotest Random
