test/main.mli:
