test/test_machine.ml: Alcotest Array Branch_pred Cache Config Counters Event Fp_unit List Machine Pp_machine Printf QCheck QCheck_alcotest Random Store_buffer
