test/test_editor.ml: Alcotest Fixtures List Pp_graph Pp_instrument Pp_ir Pp_minic Pp_vm
