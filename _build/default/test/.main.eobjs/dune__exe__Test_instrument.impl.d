test/test_instrument.ml: Alcotest Array Driver Instrument List Pp_core Pp_instrument Pp_ir Pp_machine Pp_minic Pp_vm Printf
