test/test_edge_profile.ml: Alcotest Array Fixtures Hashtbl List Option Pp_core Pp_graph Pp_instrument Pp_ir Pp_minic Pp_vm Pp_workloads Printf QCheck QCheck_alcotest Random
