test/test_minic_parse.ml: Alcotest Ast Compile Errors Lexer List Pp_minic Pp_vm Printf Token
