test/test_ir_text.ml: Alcotest List Option Pp_core Pp_instrument Pp_ir Pp_vm Pp_workloads
