test/test_profile.ml: Alcotest Format List Option Pp_core Pp_instrument Pp_ir Pp_machine String
