test/test_ball_larus.ml: Alcotest Array Ball_larus Block Builder Fixtures Hashtbl List Pp_core Pp_graph Pp_ir Printf Proc QCheck QCheck_alcotest
