test/test_graph.ml: Alcotest Array Dfs Digraph Dot List Pp_graph Printf QCheck QCheck_alcotest Random Scc Spanning_tree String Topo Union_find
