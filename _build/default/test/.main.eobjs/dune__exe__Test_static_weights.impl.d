test/test_static_weights.ml: Alcotest Array Fixtures List Pp_core Pp_graph Pp_ir Pp_minic
