test/test_cct_io.ml: Alcotest Array Filename Fun Hashtbl List Pp_core Pp_instrument Pp_vm String Sys
