test/test_vm.ml: Alcotest Array Float List Pp_core Pp_ir Pp_machine Pp_minic Pp_vm Printf
