test/test_sampling.ml: Alcotest List Option Pp_minic Pp_vm Printf String
