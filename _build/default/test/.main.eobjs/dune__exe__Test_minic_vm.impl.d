test/test_minic_vm.ml: Alcotest List Pp_machine Pp_minic Pp_vm String
