test/test_ir.ml: Alcotest Block Builder Cfg Fixtures Instr Layout List Pp_graph Pp_ir Proc Program Validate
