test/test_cct.ml: Alcotest Cct Cct_stats Dcg Dct Gprof List Option Pp_core Printf QCheck QCheck_alcotest Random
