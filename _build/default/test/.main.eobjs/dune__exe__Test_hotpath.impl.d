test/test_hotpath.ml: Alcotest Fixtures Lazy List Pp_core Pp_ir Pp_machine String
