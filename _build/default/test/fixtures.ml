(* Shared CFG and program fixtures for the test suites. *)

open Pp_ir

(* The CFG of PLDI'97 Figure 1: six A-to-F paths with path sums
   ACDF=0, ACDEF=1, ABCDF=2, ABCDEF=3, ABDF=4, ABDEF=5.
   Block labels: A=0, B=1, C=2, D=3, E=4, F=5.
   Successor order matters: A branches (C, B); D branches (F, E). *)
let figure1_proc () =
  let b = Builder.create ~name:"fig1" ~iparams:1 ~fparams:0
      ~returns:Proc.Returns_void in
  let a = Builder.new_block b in
  let bb = Builder.new_block b in
  let c = Builder.new_block b in
  let d = Builder.new_block b in
  let e = Builder.new_block b in
  let f = Builder.new_block b in
  assert (a = 0 && bb = 1 && c = 2 && d = 3 && e = 4 && f = 5);
  (* block A is current: the first block created becomes the entry *)
  Builder.terminate b (Block.Br (0, c, bb));
  Builder.switch_to b bb;
  Builder.terminate b (Block.Br (0, c, d));
  Builder.switch_to b c;
  Builder.terminate b (Block.Jmp d);
  Builder.switch_to b d;
  Builder.terminate b (Block.Br (0, f, e));
  Builder.switch_to b e;
  Builder.terminate b (Block.Jmp f);
  Builder.switch_to b f;
  Builder.terminate b (Block.Ret Block.Ret_void);
  Builder.finish b

(* A simple loop:
     L0: entry -> L1
     L1: loop head, branches (L2 body, L3 exit)
     L2: body -> L1 (backedge)
     L3: return *)
let loop_proc () =
  let b = Builder.create ~name:"loop" ~iparams:1 ~fparams:0
      ~returns:Proc.Returns_void in
  let l0 = Builder.new_block b in
  let l1 = Builder.new_block b in
  let l2 = Builder.new_block b in
  let l3 = Builder.new_block b in
  assert (l0 = 0);
  Builder.terminate b (Block.Jmp l1);
  Builder.switch_to b l1;
  Builder.terminate b (Block.Br (0, l2, l3));
  Builder.switch_to b l2;
  Builder.terminate b (Block.Jmp l1);
  Builder.switch_to b l3;
  Builder.terminate b (Block.Ret Block.Ret_void);
  Builder.finish b

(* A diamond nested in a loop, with a second backedge (continue-style):
     L0 -> L1(head); L1 -> (L2 | L5=ret)
     L2 -> (L3 | L4); L3 -> L1 (backedge); L4 -> L1 (backedge) *)
let two_backedges_proc () =
  let b = Builder.create ~name:"twoback" ~iparams:1 ~fparams:0
      ~returns:Proc.Returns_void in
  let l0 = Builder.new_block b in
  let l1 = Builder.new_block b in
  let l2 = Builder.new_block b in
  let l3 = Builder.new_block b in
  let l4 = Builder.new_block b in
  let l5 = Builder.new_block b in
  assert (l0 = 0);
  Builder.terminate b (Block.Jmp l1);
  Builder.switch_to b l1;
  Builder.terminate b (Block.Br (0, l2, l5));
  Builder.switch_to b l2;
  Builder.terminate b (Block.Br (0, l3, l4));
  Builder.switch_to b l3;
  Builder.terminate b (Block.Jmp l1);
  Builder.switch_to b l4;
  Builder.terminate b (Block.Jmp l1);
  Builder.switch_to b l5;
  Builder.terminate b (Block.Ret Block.Ret_void);
  Builder.finish b

(* Self-loop: L0 -> L1; L1 -> (L1 | L2); L2: ret *)
let self_loop_proc () =
  let b = Builder.create ~name:"selfloop" ~iparams:1 ~fparams:0
      ~returns:Proc.Returns_void in
  let l0 = Builder.new_block b in
  let l1 = Builder.new_block b in
  let l2 = Builder.new_block b in
  assert (l0 = 0);
  Builder.terminate b (Block.Jmp l1);
  Builder.switch_to b l1;
  Builder.terminate b (Block.Br (0, l1, l2));
  Builder.switch_to b l2;
  Builder.terminate b (Block.Ret Block.Ret_void);
  Builder.finish b

(* Random DAG procedures for property tests: [n] diamond-ish blocks where
   block i branches to two random later blocks (or returns). Deterministic
   in [seed]. *)
let random_dag_proc ~seed ~n =
  let rng = Random.State.make [| seed |] in
  let b = Builder.create ~name:(Printf.sprintf "dag%d" seed) ~iparams:1
      ~fparams:0 ~returns:Proc.Returns_void in
  let labels = Array.init n (fun _ -> Builder.new_block b) in
  let ret = Builder.new_block b in
  Array.iteri
    (fun i l ->
      if i > 0 then Builder.switch_to b l;
      (* One arm always falls through to the next block so that every block
         stays reachable and reaches the return. *)
      let forward = if i = n - 1 then ret else labels.(i + 1) in
      let other =
        if i = n - 1 then ret
        else begin
          let j = i + 1 + Random.State.int rng (n - i - 1) in
          if Random.State.int rng 4 = 0 then ret else labels.(j)
        end
      in
      (* Avoid parallel edges (other = forward): two CFG edges between the
         same blocks denote distinct paths with identical block lists, which
         would make block-list-based test oracles ambiguous. *)
      match Random.State.int rng 3 with
      | 0 -> Builder.terminate b (Block.Jmp forward)
      | _ when other = forward -> Builder.terminate b (Block.Jmp forward)
      | _ -> Builder.terminate b (Block.Br (0, other, forward)))
    labels;
  Builder.switch_to b ret;
  Builder.terminate b (Block.Ret Block.Ret_void);
  Builder.finish b

(* Random reducible-ish cyclic procedure: like [random_dag_proc] but some
   branches target earlier blocks, creating backedges. Every block can still
   reach the return because the fall-through chain i -> i+1 ... is kept as
   one arm. *)
let random_cyclic_proc ~seed ~n =
  let rng = Random.State.make [| seed; 17 |] in
  let b = Builder.create ~name:(Printf.sprintf "cyc%d" seed) ~iparams:1
      ~fparams:0 ~returns:Proc.Returns_void in
  let labels = Array.init n (fun _ -> Builder.new_block b) in
  let ret = Builder.new_block b in
  Array.iteri
    (fun i l ->
      if i > 0 then Builder.switch_to b l;
      let forward = if i = n - 1 then ret else labels.(i + 1) in
      let other =
        if i > 0 && Random.State.int rng 3 = 0 then
          labels.(Random.State.int rng (i + 1)) (* a back target *)
        else if i = n - 1 then ret
        else labels.(i + 1 + Random.State.int rng (n - i - 1))
      in
      if Random.State.int rng 4 = 0 || other = forward then
        Builder.terminate b (Block.Jmp forward)
      else Builder.terminate b (Block.Br (0, other, forward)))
    labels;
  Builder.switch_to b ret;
  Builder.terminate b (Block.Ret Block.Ret_void);
  Builder.finish b
