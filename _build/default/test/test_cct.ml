(* Tests of the calling context tree, its comparison structures (DCT, DCG)
   and the gprof approximation, anchored on the scenarios of Figures 4/5. *)

open Pp_core

let check = Alcotest.check

(* Drive a CCT with unit data through a call trace.  Procedures here have a
   generous fixed site count; site numbers pick which slot each call uses. *)
let make_cct ?merge_call_sites () =
  Cct.create ?merge_call_sites ~make_data:(fun ~proc:_ ~nsites:_ -> ()) ()

let enter t ?(site = 0) ?(kind = Cct.Direct) proc =
  ignore (Cct.enter t ~proc ~nsites:4 ~site ~kind)

(* The Figure 4 scenario: contexts M.A.B.C and M.D.C both exist; the chain
   M.D.A.B.C is edge-wise present in the DCG but never occurred. *)
let fig4_trace cct_enter cct_exit =
  cct_enter "M" 0;
  cct_enter "A" 0;
  cct_enter "B" 0;
  cct_enter "C" 0;
  cct_exit ();
  cct_exit ();
  cct_exit ();
  cct_enter "D" 1;
  cct_enter "C" 0;
  cct_exit ();
  cct_enter "A" 1;
  cct_exit ();
  cct_exit ();
  cct_exit ()

let test_fig4_contexts () =
  let t = make_cct () in
  fig4_trace (fun p site -> enter t ~site p) (fun () -> Cct.exit t);
  Cct.check_invariants t;
  (* Records: M, A(M), B, C(M.A.B), D, C(M.D), A(M.D) -> 7 + root. *)
  check Alcotest.int "nodes" 8 (Cct.num_nodes t);
  let c1 = Cct.find_context t [ "M"; "A"; "B"; "C" ] in
  let c2 = Cct.find_context t [ "M"; "D"; "C" ] in
  Alcotest.(check bool) "context M.A.B.C exists" true (c1 <> None);
  Alcotest.(check bool) "context M.D.C exists" true (c2 <> None);
  (match (c1, c2) with
  | Some n1, Some n2 ->
      Alcotest.(check bool) "two distinct C records" true (n1 != n2)
  | _ -> ());
  Alcotest.(check bool) "no context M.D.A.B" true
    (Cct.find_context t [ "M"; "D"; "A"; "B" ] = None)

let test_fig4_dcg_infeasible () =
  let g = Dcg.create () in
  fig4_trace (fun p _site -> Dcg.enter g ~proc:p) (fun () -> Dcg.exit g);
  (* Every consecutive pair exists, yet the chain was never a context. *)
  Alcotest.(check bool) "edge-wise feasible" true
    (Dcg.path_exists g [ "M"; "D"; "A"; "B"; "C" ])

let test_fig4_dct () =
  let d = Dct.create ~make_data:(fun ~proc:_ -> ()) () in
  fig4_trace (fun p _ -> ignore (Dct.enter d ~proc:p)) (fun () -> Dct.exit d);
  check Alcotest.int "activations (root incl.)" 8 (Dct.num_nodes d);
  let ctxs = List.map fst (Dct.contexts d) in
  Alcotest.(check bool) "DCT has M.A.B.C" true
    (List.mem [ "M"; "A"; "B"; "C" ] ctxs);
  Alcotest.(check bool) "DCT lacks M.D.A.B" true
    (not (List.mem [ "M"; "D"; "A"; "B" ] ctxs))

(* Figure 5: recursion.  M -> A -> B -> A(recursive).  The recursive A
   reuses the original record via a backedge; depth stays bounded. *)
let test_fig5_recursion () =
  let t = make_cct () in
  enter t "M";
  enter t "A";
  enter t "B";
  enter t "A";
  (* recursive: backedge *)
  Cct.check_invariants t;
  (* Records: root, M, A, B — the recursive A allocates nothing. *)
  check Alcotest.int "nodes" 4 (Cct.num_nodes t);
  let a = Cct.find_context t [ "M"; "A" ] in
  Alcotest.(check bool) "A record exists" true (a <> None);
  (* The current record is the original A. *)
  (match a with
  | Some a -> Alcotest.(check bool) "reused" true (Cct.current t == a)
  | None -> ());
  (* The backedge hangs off B. *)
  let b = Option.get (Cct.find_context t [ "M"; "A"; "B" ]) in
  let backs = List.filter (fun e -> e.Cct.is_backedge) (Cct.edges b) in
  check Alcotest.int "one backedge" 1 (List.length backs);
  (* Unwind out of the recursion: stack depth is 4 (M A B A). *)
  check Alcotest.int "depth" 4 (Cct.depth t);
  Cct.exit t;
  Alcotest.(check bool) "back in B" true (Cct.current t == b);
  Cct.exit t;
  Cct.exit t;
  Cct.exit t;
  check Alcotest.int "depth 0" 0 (Cct.depth t)

(* Deep mutual recursion must keep the node count bounded by the number of
   procedures even for thousands of activations. *)
let test_recursion_bounded () =
  let t = make_cct () in
  enter t "even";
  for _ = 1 to 2000 do
    enter t "odd";
    enter t "even"
  done;
  Cct.check_invariants t;
  check Alcotest.int "nodes bounded" 3 (Cct.num_nodes t);
  check Alcotest.int "depth tracks stack" 4001 (Cct.depth t);
  Cct.unwind_to_depth t 0;
  check Alcotest.int "unwound" 0 (Cct.depth t)

let test_merge_call_sites () =
  (* Same callee from two different sites: distinguished mode makes two
     records; merged mode makes one. *)
  let trace t =
    enter t "M";
    enter t ~site:0 "X";
    Cct.exit t;
    enter t ~site:1 "X";
    Cct.exit t;
    Cct.exit t
  in
  let distinct = make_cct () in
  trace distinct;
  let merged = make_cct ~merge_call_sites:true () in
  trace merged;
  check Alcotest.int "distinct sites -> 2 X records" 4
    (Cct.num_nodes distinct);
  check Alcotest.int "merged sites -> 1 X record" 3 (Cct.num_nodes merged)

let test_calls_counted () =
  let t = make_cct () in
  enter t "M";
  for _ = 1 to 5 do
    enter t "X";
    Cct.exit t
  done;
  let m = Option.get (Cct.find_context t [ "M" ]) in
  match Cct.edges m with
  | [ e ] -> check Alcotest.int "edge call count" 5 e.Cct.calls
  | _ -> Alcotest.fail "expected one edge"

let test_unwind_nonlocal () =
  (* Simulates a longjmp past two frames. *)
  let t = make_cct () in
  enter t "M";
  enter t "A";
  enter t "B";
  enter t "C";
  Cct.unwind_to_depth t 1;
  Alcotest.(check string) "back in M" "M" (Cct.proc (Cct.current t));
  enter t "D";
  Cct.check_invariants t;
  Alcotest.(check bool) "D under M" true
    (Cct.find_context t [ "M"; "D" ] <> None)

let test_stats_fig4 () =
  let t = make_cct () in
  fig4_trace (fun p site -> enter t ~site p) (fun () -> Cct.exit t);
  let st = Cct_stats.compute ~metrics_per_node:2 t in
  check Alcotest.int "nodes" 7 st.Cct_stats.nodes;
  check Alcotest.int "height max" 4 st.Cct_stats.height_max;
  check Alcotest.int "max replication (A and C both 2)" 2
    st.Cct_stats.max_replication;
  (* Record size: (2 + 2 metrics + 4 sites) * 4 = 32 bytes, no lists. *)
  check Alcotest.int "size" (7 * 32) st.Cct_stats.size_bytes;
  check Alcotest.int "call sites total" 28 st.Cct_stats.call_sites_total;
  (* Used: M uses 2 (A@0, D@1); A(M) uses 1 (B); B uses 1 (C); D uses 2;
     others 0. *)
  check Alcotest.int "call sites used" 6 st.Cct_stats.call_sites_used

let test_stats_indirect_lists () =
  let t = make_cct () in
  enter t "M";
  enter t ~site:0 ~kind:Cct.Indirect "F1";
  Cct.exit t;
  enter t ~site:0 ~kind:Cct.Indirect "F2";
  Cct.exit t;
  Cct.exit t;
  let st = Cct_stats.compute ~metrics_per_node:0 t in
  (* M's slot 0 holds an indirect list of 2 callees: 3 list elements of 8
     bytes (two entries + terminal) on top of the records. *)
  let record_bytes = 4 * (2 + 0 + 4) in
  check Alcotest.int "size with lists" ((3 * record_bytes) + 24)
    st.Cct_stats.size_bytes

(* gprof problem: procedure "work" is cheap when called by "light" and
   expensive when called by "heavy", with equal call counts.  gprof assigns
   both callers the same cost; the CCT separates them. *)
let test_gprof_problem () =
  let g = Gprof.create () in
  Gprof.enter g ~proc:"main";
  Gprof.enter g ~proc:"light";
  Gprof.enter g ~proc:"work";
  Gprof.exit g ~cost:10;
  Gprof.exit g ~cost:0;
  Gprof.enter g ~proc:"heavy";
  Gprof.enter g ~proc:"work";
  Gprof.exit g ~cost:990;
  Gprof.exit g ~cost:0;
  Gprof.exit g ~cost:0;
  let att_light = Gprof.attributed g ~caller:"light" ~callee:"work" in
  let att_heavy = Gprof.attributed g ~caller:"heavy" ~callee:"work" in
  (* gprof splits 1000 evenly: 500 each — wrong by 49x for light. *)
  Alcotest.(check (float 0.001)) "light attributed" 500.0 att_light;
  Alcotest.(check (float 0.001)) "heavy attributed" 500.0 att_heavy;
  (* CCT ground truth keeps them apart. *)
  let t = Cct.create ~make_data:(fun ~proc:_ ~nsites:_ -> ref 0) () in
  let run caller cost =
    ignore (Cct.enter t ~proc:caller ~nsites:4 ~site:0 ~kind:Cct.Direct);
    let n = Cct.enter t ~proc:"work" ~nsites:4 ~site:0 ~kind:Cct.Direct in
    Cct.data n := !(Cct.data n) + cost;
    Cct.exit t;
    Cct.exit t
  in
  ignore (Cct.enter t ~proc:"main" ~nsites:4 ~site:0 ~kind:Cct.Direct);
  run "light" 10;
  run "heavy" 990;
  let via ctx = !(Cct.data (Option.get (Cct.find_context t ctx))) in
  check Alcotest.int "cct light" 10 (via [ "main"; "light"; "work" ]);
  check Alcotest.int "cct heavy" 990 (via [ "main"; "heavy"; "work" ])

(* Random traces: a recursive generator that drives CCT + DCT together. *)
let random_trace ~seed ~nprocs ~max_depth ~fanout cct dct =
  let rng = Random.State.make [| seed; 42 |] in
  let rec go depth =
    if depth < max_depth then begin
      let n = Random.State.int rng fanout in
      for _ = 1 to n do
        let p = Printf.sprintf "p%d" (Random.State.int rng nprocs) in
        let site = Random.State.int rng 4 in
        ignore (Cct.enter cct ~proc:p ~nsites:4 ~site ~kind:Cct.Direct);
        ignore (Dct.enter dct ~proc:p);
        go (depth + 1);
        Cct.exit cct;
        Dct.exit dct
      done
    end
  in
  ignore (Cct.enter cct ~proc:"main" ~nsites:4 ~site:0 ~kind:Cct.Direct);
  ignore (Dct.enter dct ~proc:"main");
  go 0;
  Cct.exit cct;
  Dct.exit dct

let prop_invariants =
  QCheck.Test.make ~name:"CCT invariants hold on random traces" ~count:50
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let cct = make_cct () in
      let dct = Dct.create ~make_data:(fun ~proc:_ -> ()) () in
      random_trace ~seed ~nprocs:6 ~max_depth:5 ~fanout:4 cct dct;
      Cct.check_invariants cct;
      true)

(* With call sites merged and no recursion, CCT vertices are exactly the
   distinct DCT contexts (paper §4.1: "a CCT contains a unique vertex for
   each unique call chain in its underlying DCT").  nprocs > max_depth
   cannot prevent recursion, so we detect and skip traces that recursed. *)
let prop_dct_cct_contexts =
  QCheck.Test.make
    ~name:"CCT vertices = distinct DCT contexts (no recursion, merged sites)"
    ~count:50
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let cct = make_cct ~merge_call_sites:true () in
      let dct = Dct.create ~make_data:(fun ~proc:_ -> ()) () in
      random_trace ~seed ~nprocs:12 ~max_depth:4 ~fanout:3 cct dct;
      let dct_contexts = List.map fst (Dct.contexts dct) in
      let recursed =
        List.exists
          (fun ctx ->
            List.length ctx <> List.length (List.sort_uniq compare ctx))
          dct_contexts
      in
      QCheck.assume (not recursed);
      let cct_contexts =
        Cct.fold
          (fun acc n -> if Cct.parent n = None then acc else Cct.context n :: acc)
          [] cct
        |> List.sort compare
      in
      List.sort compare dct_contexts = cct_contexts)

let suite =
  [
    Alcotest.test_case "fig4: contexts preserved" `Quick test_fig4_contexts;
    Alcotest.test_case "fig4: DCG infeasible path" `Quick
      test_fig4_dcg_infeasible;
    Alcotest.test_case "fig4: DCT activations" `Quick test_fig4_dct;
    Alcotest.test_case "fig5: recursion backedge" `Quick test_fig5_recursion;
    Alcotest.test_case "recursion keeps CCT bounded" `Quick
      test_recursion_bounded;
    Alcotest.test_case "call-site merging trade-off" `Quick
      test_merge_call_sites;
    Alcotest.test_case "edge call counts" `Quick test_calls_counted;
    Alcotest.test_case "non-local unwind" `Quick test_unwind_nonlocal;
    Alcotest.test_case "stats on fig4" `Quick test_stats_fig4;
    Alcotest.test_case "stats count indirect lists" `Quick
      test_stats_indirect_lists;
    Alcotest.test_case "the gprof problem" `Quick test_gprof_problem;
    QCheck_alcotest.to_alcotest prop_invariants;
    QCheck_alcotest.to_alcotest prop_dct_cct_contexts;
  ]
