(* Unit and property tests of the graph substrate. *)

open Pp_graph

let check = Alcotest.check

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  let g = Digraph.create () in
  let vs = Digraph.add_vertices g 4 in
  (match vs with
  | [ 0; 1; 2; 3 ] -> ()
  | _ -> Alcotest.fail "vertex allocation order");
  ignore (Digraph.add_edge g 0 1);
  ignore (Digraph.add_edge g 0 2);
  ignore (Digraph.add_edge g 1 3);
  ignore (Digraph.add_edge g 2 3);
  g

let test_digraph_basics () =
  let g = diamond () in
  check Alcotest.int "vertices" 4 (Digraph.num_vertices g);
  check Alcotest.int "edges" 4 (Digraph.num_edges g);
  check (Alcotest.list Alcotest.int) "succs in insertion order" [ 1; 2 ]
    (Digraph.succs g 0);
  check (Alcotest.list Alcotest.int) "preds" [ 1; 2 ] (Digraph.preds g 3);
  check Alcotest.int "out degree" 2 (Digraph.out_degree g 0);
  check Alcotest.int "in degree" 2 (Digraph.in_degree g 3);
  (* parallel edges allowed and distinct *)
  let e1 = Digraph.add_edge g 0 1 in
  let e2 = Digraph.add_edge g 0 1 in
  Alcotest.(check bool) "distinct ids" true (e1.Digraph.id <> e2.Digraph.id);
  check Alcotest.int "find_edges" 3 (List.length (Digraph.find_edges g 0 1))

let test_digraph_copy_isolated () =
  let g = diamond () in
  let g' = Digraph.copy g in
  ignore (Digraph.add_edge g' 3 0);
  check Alcotest.int "original unchanged" 4 (Digraph.num_edges g);
  check Alcotest.int "copy grew" 5 (Digraph.num_edges g')

let test_digraph_bad_vertex () =
  let g = diamond () in
  (match Digraph.add_edge g 0 9 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected invalid_arg");
  match Digraph.out_edges g 17 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected invalid_arg"

let test_dfs_classification () =
  (* 0 -> 1 -> 2 -> 0 (cycle), 0 -> 2 (forward-ish), 1 -> 1 (self). *)
  let g = Digraph.create () in
  ignore (Digraph.add_vertices g 3);
  let _t1 = Digraph.add_edge g 0 1 in
  let t2 = Digraph.add_edge g 1 2 in
  let back = Digraph.add_edge g 2 0 in
  let fwd = Digraph.add_edge g 0 2 in
  let self = Digraph.add_edge g 1 1 in
  let dfs = Dfs.run g ~root:0 in
  check Alcotest.bool "tree" true (Dfs.classify dfs t2 = Dfs.Tree);
  check Alcotest.bool "back" true (Dfs.classify dfs back = Dfs.Back);
  check Alcotest.bool "self is back" true (Dfs.classify dfs self = Dfs.Back);
  check Alcotest.bool "forward" true (Dfs.classify dfs fwd = Dfs.Forward);
  check Alcotest.int "two backedges" 2 (List.length (Dfs.back_edges dfs))

let test_dfs_unreachable () =
  let g = Digraph.create () in
  ignore (Digraph.add_vertices g 3);
  ignore (Digraph.add_edge g 0 1);
  let dfs = Dfs.run g ~root:0 in
  Alcotest.(check bool) "2 unreachable" false (Dfs.reachable dfs 2);
  check Alcotest.int "discovery -1" (-1) (Dfs.discovery dfs 2)

let test_dfs_deep_no_overflow () =
  (* A 200k-deep chain must not blow the OCaml stack. *)
  let g = Digraph.create () in
  let n = 200_000 in
  ignore (Digraph.add_vertices g n);
  for i = 0 to n - 2 do
    ignore (Digraph.add_edge g i (i + 1))
  done;
  let dfs = Dfs.run g ~root:0 in
  Alcotest.(check bool) "end reachable" true (Dfs.reachable dfs (n - 1))

let test_topo () =
  let g = diamond () in
  let order = Topo.sort g in
  let pos = Array.make 4 0 in
  List.iteri (fun i v -> pos.(v) <- i) order;
  Digraph.iter_edges
    (fun e ->
      if pos.(e.Digraph.src) >= pos.(e.Digraph.dst) then
        Alcotest.fail "edge violates topological order")
    g;
  Alcotest.(check bool) "acyclic" true (Topo.is_acyclic g);
  ignore (Digraph.add_edge g 3 0);
  Alcotest.(check bool) "cyclic detected" false (Topo.is_acyclic g);
  match Topo.sort g with
  | exception Topo.Cycle _ -> ()
  | _ -> Alcotest.fail "expected Cycle"

let test_scc () =
  (* Two 2-cycles and an isolated vertex. *)
  let g = Digraph.create () in
  ignore (Digraph.add_vertices g 5);
  ignore (Digraph.add_edge g 0 1);
  ignore (Digraph.add_edge g 1 0);
  ignore (Digraph.add_edge g 2 3);
  ignore (Digraph.add_edge g 3 2);
  ignore (Digraph.add_edge g 1 2);
  let comps = Scc.components g in
  check Alcotest.int "three components" 3 (List.length comps);
  check Alcotest.int "two nontrivial" 2 (List.length (Scc.nontrivial g));
  let ids = Scc.component_of g in
  Alcotest.(check bool) "0 and 1 together" true (ids.(0) = ids.(1));
  Alcotest.(check bool) "1 and 2 apart" true (ids.(1) <> ids.(2))

let test_union_find () =
  let uf = Union_find.create 5 in
  Alcotest.(check bool) "fresh union" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "repeat union" false (Union_find.union uf 1 0);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 3);
  Alcotest.(check bool) "transitively same" true (Union_find.same uf 0 2);
  Alcotest.(check bool) "4 isolated" false (Union_find.same uf 0 4)

let test_spanning_tree () =
  let g = diamond () in
  let tree = Spanning_tree.maximum g ~weight:(fun e -> e.Digraph.id) in
  check Alcotest.int "tree edges = v - 1" 3 (List.length tree);
  let chords = Spanning_tree.chords g ~tree in
  check Alcotest.int "one chord" 1 (List.length chords);
  (* Path between any two vertices exists and is simple. *)
  let forest = Spanning_tree.of_edges g tree in
  let path = Spanning_tree.path forest ~src:1 ~dst:2 in
  Alcotest.(check bool) "nonempty path" true (path <> []);
  check (Alcotest.list Alcotest.int) "path to self" []
    (List.map (fun (s : Spanning_tree.step) -> s.Spanning_tree.edge.Digraph.id)
       (Spanning_tree.path forest ~src:1 ~dst:1))

let prop_spanning_tree_connects =
  QCheck.Test.make ~name:"max spanning tree spans reachable graphs"
    ~count:50
    QCheck.(int_range 2 40)
    (fun n ->
      let rng = Random.State.make [| n; 5 |] in
      let g = Digraph.create () in
      ignore (Digraph.add_vertices g n);
      (* A random connected graph: chain + random extras. *)
      for i = 0 to n - 2 do
        ignore (Digraph.add_edge g i (i + 1))
      done;
      for _ = 1 to n do
        ignore
          (Digraph.add_edge g
             (Random.State.int rng n)
             (Random.State.int rng n))
      done;
      let tree =
        Spanning_tree.maximum g ~weight:(fun e -> e.Digraph.id mod 7)
      in
      List.length tree = n - 1
      &&
      let forest = Spanning_tree.of_edges g tree in
      (* Every vertex connects to vertex 0. *)
      List.for_all
        (fun v -> v = 0 || Spanning_tree.path forest ~src:0 ~dst:v <> [])
        (List.init n (fun i -> i)))

let test_dot_output () =
  let g = diamond () in
  let dot =
    Dot.to_string g ~name:"d"
      ~vertex_label:(fun v -> Printf.sprintf "v%d" v)
      ~edge_label:(fun e -> if e.Digraph.id = 0 then "x\"y" else "")
  in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "escapes quotes" true
    (let rec contains i =
       i + 4 <= String.length dot
       && (String.sub dot i 4 = "x\\\"y" || contains (i + 1))
     in
     contains 0)

let suite =
  [
    Alcotest.test_case "digraph basics" `Quick test_digraph_basics;
    Alcotest.test_case "digraph copy isolation" `Quick
      test_digraph_copy_isolated;
    Alcotest.test_case "digraph rejects bad vertices" `Quick
      test_digraph_bad_vertex;
    Alcotest.test_case "dfs edge classification" `Quick
      test_dfs_classification;
    Alcotest.test_case "dfs unreachable vertices" `Quick test_dfs_unreachable;
    Alcotest.test_case "dfs survives deep graphs" `Quick
      test_dfs_deep_no_overflow;
    Alcotest.test_case "topological sort" `Quick test_topo;
    Alcotest.test_case "strongly connected components" `Quick test_scc;
    Alcotest.test_case "union-find" `Quick test_union_find;
    Alcotest.test_case "spanning tree and chords" `Quick test_spanning_tree;
    QCheck_alcotest.to_alcotest prop_spanning_tree_connects;
    Alcotest.test_case "dot output" `Quick test_dot_output;
  ]
