(* Differential property testing over randomly generated MiniC programs:
   every instrumentation mode must preserve the observable output, and the
   alternative counter strategies must agree on path frequencies.

   The generator emits source text from a bounded grammar, so every program
   type-checks and terminates by construction (loops are counted, recursion
   is depth-bounded through an explicit argument). *)

module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver
module Interp = Pp_vm.Interp

type gen_state = {
  rng : Random.State.t;
  buf : Buffer.t;
  mutable depth : int;
  mutable uid : int;  (* locals are function-scoped: names must be unique *)
}

let emit st fmt = Printf.ksprintf (Buffer.add_string st.buf) fmt

let pick st xs = List.nth xs (Random.State.int st.rng (List.length xs))

let gen_expr st ~vars =
  (* Small arithmetic over locals, constants, array cells and helper
     calls. *)
  let rec go fuel =
    if fuel = 0 then
      pick st
        [
          (fun () -> emit st "%d" (Random.State.int st.rng 100));
          (fun () -> emit st "%s" (pick st vars));
        ]
        ()
    else
      pick st
        [
          (fun () -> emit st "%d" (Random.State.int st.rng 100));
          (fun () -> emit st "%s" (pick st vars));
          (fun () ->
            emit st "(";
            go (fuel - 1);
            emit st " %s " (pick st [ "+"; "-"; "*" ]);
            go (fuel - 1);
            emit st ")");
          (fun () ->
            (* OCaml-style rem is negative for negative operands: fold
               into range twice so any generated value indexes safely. *)
            emit st "arr[((";
            go (fuel - 1);
            emit st ") %% 64 + 64) %% 64]");
          (fun () ->
            emit st "helper(";
            go (fuel - 1);
            emit st ", %d)" (Random.State.int st.rng 6));
        ]
        ()
  in
  go 2

let gen_cond st ~vars =
  emit st "%s %s " (pick st vars) (pick st [ "<"; ">"; "=="; "!=" ]);
  emit st "%d" (Random.State.int st.rng 50)

(* [vars] are readable; [mut] are assignable.  Loop counters are readable
   only — otherwise a body could reset its own counter and never finish. *)
let rec gen_stmt st ~vars ~mut =
  if st.depth > 3 then gen_assign st ~vars ~mut
  else
    pick st
      [
        (fun () -> gen_assign st ~vars ~mut);
        (fun () -> gen_assign st ~vars ~mut);
        (fun () ->
          (* bounded for loop over a dedicated, uniquely named counter *)
          st.depth <- st.depth + 1;
          st.uid <- st.uid + 1;
          let i = Printf.sprintf "i%d" st.uid in
          emit st "int %s;\nfor (%s = 0; %s < %d; %s = %s + 1) {\n" i i i
            (1 + Random.State.int st.rng 4)
            i i;
          gen_block st ~vars:(i :: vars) ~mut;
          emit st "}\n";
          st.depth <- st.depth - 1);
        (fun () ->
          st.depth <- st.depth + 1;
          emit st "if (";
          gen_cond st ~vars;
          emit st ") {\n";
          gen_block st ~vars ~mut;
          emit st "}";
          if Random.State.bool st.rng then begin
            emit st " else {\n";
            gen_block st ~vars ~mut;
            emit st "}"
          end;
          emit st "\n";
          st.depth <- st.depth - 1);
      ]
      ()

and gen_assign st ~vars ~mut =
  let lhs =
    pick st
      (List.map (fun v -> `Var v) mut
      @ [ `Cell (Random.State.int st.rng 64) ])
  in
  (match lhs with
  | `Var v -> emit st "%s = " v
  | `Cell i -> emit st "arr[%d] = " i);
  gen_expr st ~vars;
  emit st ";\n"

and gen_block st ~vars ~mut =
  let n = 1 + Random.State.int st.rng 3 in
  for _ = 1 to n do
    gen_stmt st ~vars ~mut
  done

let gen_program seed =
  let st =
    { rng = Random.State.make [| seed; 77 |]; buf = Buffer.create 1024;
      depth = 0; uid = 0 }
  in
  emit st "int arr[64];\n";
  emit st
    "int helper(int a, int d) {\n\
    \  if (d <= 0) { return a %% 97; }\n\
    \  return helper(a + d, d - 1) %% 1000;\n\
     }\n";
  emit st "void work(int x, int y) {\n";
  gen_block st ~vars:[ "x"; "y" ] ~mut:[ "x"; "y" ];
  emit st "}\n";
  emit st "void main() {\n  int k;\n";
  emit st "  for (k = 0; k < %d; k = k + 1) { work(k, %d - k); }\n"
    (2 + Random.State.int st.rng 2)
    (Random.State.int st.rng 20);
  emit st "  int j;\n  for (j = 0; j < 64; j = j + 1) { print(arr[j]); }\n";
  emit st "}\n";
  Buffer.contents st.buf

let outputs (r : Interp.result) = r.Interp.output

let prop_modes_transparent =
  QCheck.Test.make ~name:"random programs: all modes preserve output"
    ~count:15
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = gen_program seed in
      match Pp_minic.Compile.program ~name:"gen" src with
      | exception Pp_minic.Errors.Error (pos, msg) ->
          QCheck.Test.fail_reportf "generator produced invalid MiniC:@.%s@.%d:%d %s"
            src pos.Pp_minic.Ast.line pos.Pp_minic.Ast.col msg
      | prog ->
          let base =
            Driver.run_baseline ~max_instructions:100_000_000 prog
          in
          List.for_all
            (fun mode ->
              let s =
                Driver.prepare ~max_instructions:400_000_000 ~mode prog
              in
              outputs (Driver.run s) = outputs base)
            [
              Instrument.Edge_freq;
              Instrument.Flow_freq;
              Instrument.Flow_hw;
              Instrument.Context_hw;
              Instrument.Context_flow;
            ])

let prop_strategies_agree =
  QCheck.Test.make
    ~name:"random programs: hash/spill/chord strategies agree" ~count:10
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let src = gen_program seed in
      let prog = Pp_minic.Compile.program ~name:"gen" src in
      let freqs options =
        let s =
          Driver.prepare ?options ~max_instructions:400_000_000
            ~mode:Instrument.Flow_freq prog
        in
        ignore (Driver.run s);
        List.concat_map
          (fun (p : Pp_core.Profile.proc_profile) ->
            List.map
              (fun (sum, m) ->
                (p.Pp_core.Profile.proc, sum, m.Pp_core.Profile.freq))
              p.Pp_core.Profile.paths)
          (Driver.path_profile s).Pp_core.Profile.procs
        |> List.sort compare
      in
      let reference = freqs None in
      List.for_all
        (fun options -> freqs (Some options) = reference)
        [
          { Instrument.default_options with Instrument.array_threshold = 0 };
          { Instrument.default_options with Instrument.spill_threshold = 0 };
          { Instrument.default_options with
            Instrument.optimize_placement = true };
        ])

let suite =
  [
    QCheck_alcotest.to_alcotest prop_modes_transparent;
    QCheck_alcotest.to_alcotest prop_strategies_agree;
  ]
