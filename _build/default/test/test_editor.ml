(* The EEL-analogue editor: placement decisions, splitting, call wrapping,
   and semantic neutrality of the edits. *)

module Editor = Pp_instrument.Editor
module Digraph = Pp_graph.Digraph
module Cfg = Pp_ir.Cfg
module I = Pp_ir.Instr
module Block = Pp_ir.Block
module Proc = Pp_ir.Proc

let check = Alcotest.check

let marker n = I.Iconst (63, n)  (* a recognisable no-op-ish instruction *)

let find_marker (p : Proc.t) n =
  let hits = ref [] in
  Proc.iter_instrs
    (fun label instr -> if instr = marker n then hits := label :: !hits)
    p;
  List.rev !hits

let test_entry_preamble () =
  (* Entry code goes to a fresh preamble block, so a loop back to the old
     entry block never re-executes it. *)
  let p = Fixtures.loop_proc () in
  let ed = Editor.create p in
  Editor.at_entry ed [ marker 1 ];
  let p' = Editor.finish ed in
  Alcotest.(check bool) "entry moved" true (p'.Proc.entry >= Proc.num_blocks p);
  check (Alcotest.list Alcotest.int) "marker in preamble" [ p'.Proc.entry ]
    (find_marker p' 1);
  (* The preamble jumps to the original entry. *)
  match (Proc.block p' p'.Proc.entry).Block.term with
  | Block.Jmp l -> check Alcotest.int "jumps to old entry" p.Proc.entry l
  | _ -> Alcotest.fail "preamble must end in a jump"

let test_jump_edge_appended () =
  let p = Fixtures.figure1_proc () in
  let ed = Editor.create p in
  let cfg = Editor.cfg ed in
  (* C -> D is a Jump edge: code lands at the end of C. *)
  let e =
    List.find
      (fun (e : Digraph.edge) -> e.src = 2 && e.dst = 3)
      (Digraph.out_edges cfg.Cfg.graph 2)
  in
  Editor.on_edge ed e [ marker 2 ];
  let p' = Editor.finish ed in
  check (Alcotest.list Alcotest.int) "in block C" [ 2 ] (find_marker p' 2);
  check Alcotest.int "no new blocks beyond preamble"
    (Proc.num_blocks p + 1) (Proc.num_blocks p')

let test_branch_edge_prepended_or_split () =
  let p = Fixtures.figure1_proc () in
  let ed = Editor.create p in
  let cfg = Editor.cfg ed in
  (* A -> B: B has in-degree 1, so the code is prepended to B. *)
  let a_b =
    List.find (fun (e : Digraph.edge) -> e.dst = 1)
      (Digraph.out_edges cfg.Cfg.graph 0)
  in
  Editor.on_edge ed a_b [ marker 3 ];
  (* A -> C: C has in-degree 2 (from A and B), so the edge is split. *)
  let a_c =
    List.find (fun (e : Digraph.edge) -> e.dst = 2)
      (Digraph.out_edges cfg.Cfg.graph 0)
  in
  Editor.on_edge ed a_c [ marker 4 ];
  let p' = Editor.finish ed in
  check (Alcotest.list Alcotest.int) "prepended to B" [ 1 ] (find_marker p' 3);
  (match find_marker p' 4 with
  | [ l ] ->
      Alcotest.(check bool) "in a fresh block" true (l >= Proc.num_blocks p);
      (* The fresh block jumps to C, and A's true arm was redirected. *)
      (match (Proc.block p' l).Block.term with
      | Block.Jmp 2 -> ()
      | _ -> Alcotest.fail "trampoline must jump to C");
      (match (Proc.block p' 0).Block.term with
      | Block.Br (_, t, _) -> check Alcotest.int "arm redirected" l t
      | _ -> Alcotest.fail "A must still branch")
  | _ -> Alcotest.fail "marker 4 must appear exactly once");
  (* Both arms of A with same destination stay distinguishable: the false
     arm was untouched. *)
  match (Proc.block p' 0).Block.term with
  | Block.Br (_, _, f) -> check Alcotest.int "false arm intact" 1 f
  | _ -> assert false

let test_return_edge_and_order () =
  let p = Fixtures.figure1_proc () in
  let ed = Editor.create p in
  let cfg = Editor.cfg ed in
  let ret_edge =
    List.find
      (fun (e : Digraph.edge) -> Cfg.role cfg e = Cfg.Return)
      (Digraph.out_edges cfg.Cfg.graph 5)
  in
  Editor.on_edge ed ret_edge [ marker 5 ];
  Editor.before_returns ed [ marker 6 ];
  let p' = Editor.finish ed in
  (* Both in block F, return-edge code before the return code. *)
  let instrs = (Proc.block p' 5).Block.instrs in
  let pos n =
    let rec go i = function
      | [] -> -1
      | x :: rest -> if x = marker n then i else go (i + 1) rest
    in
    go 0 instrs
  in
  Alcotest.(check bool) "edge code before return code" true
    (pos 5 >= 0 && pos 6 > pos 5)

let test_around_calls () =
  let b =
    Pp_ir.Builder.create ~name:"caller" ~iparams:0 ~fparams:0
      ~returns:Proc.Returns_void
  in
  ignore (Pp_ir.Builder.new_block b);
  Pp_ir.Builder.emit_call b ~callee:"x" ~args:[] ~fargs:[] ~ret:I.Rnone;
  Pp_ir.Builder.emit_call b ~callee:"y" ~args:[] ~fargs:[] ~ret:I.Rnone;
  Pp_ir.Builder.terminate b (Block.Ret Block.Ret_void);
  let p = Pp_ir.Builder.finish b in
  let ed = Editor.create p in
  Editor.around_calls ed (fun ~site ~indirect:_ ->
      ([ marker (100 + site) ], [ marker (200 + site) ]));
  let p' = Editor.finish ed in
  let instrs = (Proc.block p' 0).Block.instrs in
  let expected =
    [
      marker 100;
      I.Call { callee = "x"; args = []; fargs = []; ret = I.Rnone; site = 0 };
      marker 200;
      marker 101;
      I.Call { callee = "y"; args = []; fargs = []; ret = I.Rnone; site = 1 };
      marker 201;
    ]
  in
  Alcotest.(check bool) "wrapped in order" true (instrs = expected)

let test_spill_slot_extends_frame () =
  let p = Fixtures.figure1_proc () in
  let ed = Editor.create p in
  let off1 = Editor.alloc_spill_slot ed in
  let off2 = Editor.alloc_spill_slot ed in
  let p' = Editor.finish ed in
  check Alcotest.int "offsets distinct" 8 (off2 - off1);
  check Alcotest.int "frame grew" (p.Proc.frame_words + 2)
    p'.Proc.frame_words

let test_edits_semantically_neutral () =
  (* Pure control-flow edits (markers into dead registers) must not change
     a program's observable behaviour. *)
  let src =
    {|
int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
void main() { print(fib(15)); }
|}
  in
  let prog = Pp_minic.Compile.program ~name:"t" src in
  let before = Pp_vm.Interp.run (Pp_vm.Interp.create prog) in
  let edited =
    Pp_ir.Program.map_procs
      (fun p ->
        let ed = Editor.create p in
        Editor.at_entry ed [ marker 0 ];
        Editor.before_returns ed [ marker 1 ];
        let cfg = Editor.cfg ed in
        Digraph.iter_edges
          (fun e ->
            match Cfg.role cfg e with
            | Cfg.Branch_true | Cfg.Branch_false | Cfg.Jump ->
                Editor.on_edge ed e [ marker 2 ]
            | Cfg.Entry | Cfg.Return -> ())
          cfg.Cfg.graph;
        Editor.finish ed)
      prog
  in
  Pp_ir.Validate.run edited;
  let after = Pp_vm.Interp.run (Pp_vm.Interp.create edited) in
  Alcotest.(check bool) "same output" true
    (before.Pp_vm.Interp.output = after.Pp_vm.Interp.output);
  Alcotest.(check bool) "edits cost instructions" true
    (after.Pp_vm.Interp.instructions > before.Pp_vm.Interp.instructions)

let suite =
  [
    Alcotest.test_case "entry preamble" `Quick test_entry_preamble;
    Alcotest.test_case "jump edges append" `Quick test_jump_edge_appended;
    Alcotest.test_case "branch edges prepend or split" `Quick
      test_branch_edge_prepended_or_split;
    Alcotest.test_case "return edge ordering" `Quick
      test_return_edge_and_order;
    Alcotest.test_case "around calls" `Quick test_around_calls;
    Alcotest.test_case "spill slots" `Quick test_spill_slot_extends_frame;
    Alcotest.test_case "edits are semantically neutral" `Quick
      test_edits_semantically_neutral;
  ]
