(* Unit tests of the MiniC front end: lexing details, precedence and
   associativity, and error positions. *)

open Pp_minic

let check = Alcotest.check

let tokens src = List.map fst (Lexer.tokenize src)

let test_lexer_basics () =
  check Alcotest.int "token count" 6
    (List.length (tokens "int x = 42 ;"));
  (match tokens "3.25 1e9" with
  | [ Token.FLOAT_LIT _; _; _ ] ->
      Alcotest.fail "1e9 must not lex as a float (no decimal point)"
  | [ Token.FLOAT_LIT a; Token.INT_LIT 1; Token.IDENT "e9"; Token.EOF ] ->
      Alcotest.(check (float 0.0)) "3.25" 3.25 a
  | _ -> Alcotest.fail "unexpected token stream");
  (match tokens "1.5e2 1.5e-2" with
  | [ Token.FLOAT_LIT a; Token.FLOAT_LIT b; Token.EOF ] ->
      Alcotest.(check (float 1e-9)) "exp" 150.0 a;
      Alcotest.(check (float 1e-9)) "neg exp" 0.015 b
  | _ -> Alcotest.fail "exponents");
  (match tokens "== = != ! <= < && & (" with
  | [
      Token.EQ; Token.ASSIGN; Token.NE; Token.BANG; Token.LE; Token.LT;
      Token.AMPAMP; Token.AMP; Token.LPAREN; Token.EOF;
    ] ->
      ()
  | _ -> Alcotest.fail "operator lexing")

let test_lexer_comments () =
  check Alcotest.int "line comment" 2
    (List.length (tokens "x // the rest is gone ; ; ;\n"));
  check Alcotest.int "block comment" 3
    (List.length (tokens "a /* b c d\n e */ f"));
  match Lexer.tokenize "/* unterminated" with
  | exception Errors.Error (_, _) -> ()
  | _ -> Alcotest.fail "unterminated comment accepted"

let test_lexer_positions () =
  let toks = Lexer.tokenize "x\n  y" in
  match toks with
  | [ (_, p1); (_, p2); _ ] ->
      check Alcotest.int "line 1" 1 p1.Ast.line;
      check Alcotest.int "line 2" 2 p2.Ast.line;
      check Alcotest.int "col 3" 3 p2.Ast.col
  | _ -> Alcotest.fail "token stream"

(* Evaluate a constant expression through the whole pipeline to observe the
   parser's precedence decisions. *)
let eval_expr expr =
  let src = Printf.sprintf "void main() { print(%s); }" expr in
  let prog = Compile.program ~name:"e" src in
  let r = Pp_vm.Interp.run (Pp_vm.Interp.create prog) in
  match r.Pp_vm.Interp.output with
  | [ Pp_vm.Interp.Oint n ] -> n
  | _ -> Alcotest.fail "expected one int"

let test_precedence () =
  check Alcotest.int "* over +" 7 (eval_expr "1 + 2 * 3");
  check Alcotest.int "parens" 9 (eval_expr "(1 + 2) * 3");
  check Alcotest.int "comparison over arith" 1 (eval_expr "1 + 1 < 3");
  check Alcotest.int "&& over ||" 1 (eval_expr "1 || 0 && 0");
  check Alcotest.int "unary minus binds tight" (-1) (eval_expr "-3 + 2");
  check Alcotest.int "left assoc sub" (-4) (eval_expr "1 - 2 - 3");
  check Alcotest.int "left assoc div" 2 (eval_expr "12 / 3 / 2");
  check Alcotest.int "rem" 2 (eval_expr "17 % 5 % 3");
  check Alcotest.int "! then compare" 1 (eval_expr "!0 == 1")

let test_dangling_else () =
  (* else binds to the nearest if. *)
  let run x =
    let src =
      Printf.sprintf
        {|
void main() {
  int r; r = 0;
  if (%d > 0) { if (%d > 1) { r = 1; } else { r = 2; } }
  print(r);
}
|}
        x x
    in
    let prog = Compile.program ~name:"d" src in
    match (Pp_vm.Interp.run (Pp_vm.Interp.create prog)).Pp_vm.Interp.output
    with
    | [ Pp_vm.Interp.Oint n ] -> n
    | _ -> Alcotest.fail "output"
  in
  check Alcotest.int "outer false" 0 (run 0);
  check Alcotest.int "inner false -> else" 2 (run 1);
  check Alcotest.int "inner true" 1 (run 2)

let test_else_if_chain () =
  let src =
    {|
int classify(int v) {
  if (v < 10) { return 0; }
  else if (v < 20) { return 1; }
  else if (v < 30) { return 2; }
  else { return 3; }
}
void main() { print(classify(5)); print(classify(15)); print(classify(25));
              print(classify(35)); }
|}
  in
  let prog = Compile.program ~name:"c" src in
  let outs =
    List.filter_map
      (function Pp_vm.Interp.Oint n -> Some n | _ -> None)
      (Pp_vm.Interp.run (Pp_vm.Interp.create prog)).Pp_vm.Interp.output
  in
  check (Alcotest.list Alcotest.int) "chain" [ 0; 1; 2; 3 ] outs

let test_error_positions () =
  let expect_at line src =
    match Compile.program ~name:"err" src with
    | exception Errors.Error (pos, _) ->
        check Alcotest.int "error line" line pos.Ast.line
    | _ -> Alcotest.fail "expected an error"
  in
  expect_at 3 "void main() {\n  int x;\n  x = ;\n}";
  expect_at 2 "void main() {\n  y = 1;\n}";
  expect_at 1 "void main( {}"

let test_syntax_errors () =
  let bad src =
    match Compile.program ~name:"bad" src with
    | exception Errors.Error _ -> ()
    | _ -> Alcotest.fail ("accepted: " ^ src)
  in
  bad "void main() { if 1 { } }";
  bad "void main() { for (;;) }";
  bad "void main() { 1 + 2; }";
  (* expression statements must be calls *)
  bad "void main() { int a[2][2]; }";
  (* local 2-D *)
  bad "int g[]; void main() { }";
  bad "void v() { } void main() { int x; x = v(); }";
  bad "void main() { print(&main); }";
  (* &main has type funptr, main isn't int-returning *)
  bad "float f; void main() { f = 1.0 + 2; }"

let test_for_without_parts () =
  let src =
    {|
void main() {
  int i; i = 0;
  for (; i < 3;) { i = i + 1; }
  print(i);
  int n; n = 0;
  for (i = 0; ; i = i + 1) { if (i >= 2) { break; } n = n + 1; }
  print(n);
}
|}
  in
  let prog = Compile.program ~name:"f" src in
  let outs =
    List.filter_map
      (function Pp_vm.Interp.Oint n -> Some n | _ -> None)
      (Pp_vm.Interp.run (Pp_vm.Interp.create prog)).Pp_vm.Interp.output
  in
  check (Alcotest.list Alcotest.int) "for variants" [ 3; 2 ] outs

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "comments" `Quick test_lexer_comments;
    Alcotest.test_case "positions" `Quick test_lexer_positions;
    Alcotest.test_case "precedence" `Quick test_precedence;
    Alcotest.test_case "dangling else" `Quick test_dangling_else;
    Alcotest.test_case "else-if chains" `Quick test_else_if_chain;
    Alcotest.test_case "error positions" `Quick test_error_positions;
    Alcotest.test_case "syntax errors" `Quick test_syntax_errors;
    Alcotest.test_case "for header variants" `Quick test_for_without_parts;
  ]
