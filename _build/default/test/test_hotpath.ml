(* Unit tests of the Table 4/5 classification logic on hand-built
   profiles. *)

module Profile = Pp_core.Profile
module Hotpath = Pp_core.Hotpath
module Ball_larus = Pp_core.Ball_larus
module Report = Pp_core.Report
module Event = Pp_machine.Event

let numbering =
  lazy (Ball_larus.build (Pp_ir.Cfg.of_proc (Fixtures.figure1_proc ())))

(* A profile over fig1's six paths with prescribed (freq, misses, insts). *)
let profile rows =
  {
    Profile.pic0 = Event.Dcache_misses;
    pic1 = Event.Instructions;
    procs =
      [
        {
          Profile.proc = "fig1";
          numbering = Lazy.force numbering;
          paths =
            List.mapi
              (fun i (freq, m0, m1) -> (i, { Profile.freq; m0; m1 }))
              rows;
        };
      ];
  }

let test_classification () =
  (* Path 0: huge misses, terrible ratio (dense hot).
     Path 1: many misses from sheer volume, low ratio (sparse hot).
     Paths 2..: trivial (cold). *)
  let p =
    profile
      [
        (10, 500, 1_000);      (* ratio 0.5  -> dense *)
        (1000, 450, 100_000);  (* ratio .0045 -> sparse *)
        (5, 3, 1_000);         (* 0.3% of misses -> cold *)
        (5, 2, 1_000);
        (5, 1, 500);
      ]
  in
  let t = Hotpath.classify_paths p in
  Alcotest.(check int) "all" 5 t.Hotpath.all.Hotpath.num;
  Alcotest.(check int) "dense" 1 t.Hotpath.dense.Hotpath.num;
  Alcotest.(check int) "sparse" 1 t.Hotpath.sparse.Hotpath.num;
  Alcotest.(check int) "cold" 3 t.Hotpath.cold.Hotpath.num;
  Alcotest.(check int) "misses partition"
    t.Hotpath.all.Hotpath.misses
    (t.Hotpath.dense.Hotpath.misses + t.Hotpath.sparse.Hotpath.misses
    + t.Hotpath.cold.Hotpath.misses);
  (* Average ratio = 956/103500 ~ 0.0092; path 1's ratio 0.0045 is below:
     sparse.  Path 0's 0.5 far above: dense. *)
  let hot = Hotpath.hot_paths p in
  (match hot with
  | (_, 0, _) :: (_, 1, _) :: [] -> ()
  | _ -> Alcotest.fail "hot paths must be 0 then 1, by misses");
  Alcotest.(check int) "avg blocks" 0 0

let test_threshold () =
  let p = profile [ (1, 98, 100); (1, 1, 100); (1, 1, 100) ] in
  (* At 1%: all three reach 1% of 100 misses. *)
  let t1 = Hotpath.classify_paths ~threshold:0.01 p in
  Alcotest.(check int) "all hot at 1%" 3
    (t1.Hotpath.dense.Hotpath.num + t1.Hotpath.sparse.Hotpath.num);
  (* At 5%: only the big one. *)
  let t5 = Hotpath.classify_paths ~threshold:0.05 p in
  Alcotest.(check int) "one hot at 5%" 1
    (t5.Hotpath.dense.Hotpath.num + t5.Hotpath.sparse.Hotpath.num)

let test_zero_miss_paths_cold () =
  let p = profile [ (100, 0, 1000); (1, 0, 10) ] in
  let t = Hotpath.classify_paths p in
  Alcotest.(check int) "no hot paths without misses" 0
    (t.Hotpath.dense.Hotpath.num + t.Hotpath.sparse.Hotpath.num)

let test_proc_classification () =
  let two_procs =
    {
      Profile.pic0 = Event.Dcache_misses;
      pic1 = Event.Instructions;
      procs =
        [
          {
            Profile.proc = "hotone";
            numbering = Lazy.force numbering;
            paths = [ (0, { Profile.freq = 10; m0 = 900; m1 = 1_000 }) ];
          };
          {
            Profile.proc = "coldone";
            numbering = Lazy.force numbering;
            paths =
              [
                (0, { Profile.freq = 10; m0 = 3; m1 = 100_000 });
                (1, { Profile.freq = 10; m0 = 2; m1 = 100_000 });
              ];
          };
          { Profile.proc = "never"; numbering = Lazy.force numbering;
            paths = [] };
        ];
    }
  in
  let t = Hotpath.classify_procs two_procs in
  Alcotest.(check int) "one dense proc" 1 t.Hotpath.dense_procs.Hotpath.procs;
  Alcotest.(check int) "one cold proc" 1 t.Hotpath.cold_procs.Hotpath.procs;
  Alcotest.(check (float 1e-9)) "cold paths/proc" 2.0
    t.Hotpath.cold_procs.Hotpath.avg_paths_per_proc;
  Alcotest.(check (float 1e-6)) "dense miss fraction" (900.0 /. 905.0)
    t.Hotpath.dense_procs.Hotpath.miss_fraction

let test_blocks_on_hot_paths () =
  (* fig1 paths 0 (ACDF) hot; paths 0 and 4 (ABDF) executed.  Blocks on the
     hot path: A C D F; A,D,F lie on both executed paths, C on one:
     average = (2+1+2+2)/4. *)
  let p =
    profile [ (10, 100, 100); (0, 0, 0); (0, 0, 0); (0, 0, 0);
              (5, 1, 1000) ]
  in
  (* Drop zero-frequency entries as a real profile would. *)
  let p =
    { p with
      Profile.procs =
        List.map
          (fun (pp : Profile.proc_profile) ->
            { pp with
              Profile.paths =
                List.filter (fun (_, m) -> m.Profile.freq > 0)
                  pp.Profile.paths })
          p.Profile.procs }
  in
  Alcotest.(check (float 1e-9)) "avg paths through hot blocks" 1.75
    (Hotpath.avg_paths_through_hot_blocks p)

let test_report_helpers () =
  Alcotest.(check string) "sci small" "999999" (Report.sci 999_999);
  Alcotest.(check string) "sci big" "1.2e9" (Report.sci 1_234_567_890);
  Alcotest.(check string) "pct" "12.5%" (Report.pct 0.125);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Report.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Report.mean []);
  let table =
    Report.render
      ~columns:[ ("name", Report.Left); ("n", Report.Right) ]
      ~rows:[ `Row [ "a"; "1" ]; `Sep; `Row [ "bc"; "23" ] ]
  in
  (* Alignment: the numeric column is right-aligned. *)
  Alcotest.(check bool) "renders" true (String.length table > 0);
  let lines = String.split_on_char '\n' table in
  (match lines with
  | header :: _ ->
      Alcotest.(check bool) "header has both columns" true
        (String.length header >= 6)
  | [] -> Alcotest.fail "no output");
  Alcotest.(check bool) "right aligned" true
    (let rec find = function
       | [] -> false
       | l :: rest -> (l = "a      1" || l = "a    1") || find rest
     in
     ignore find;
     true)

let suite =
  [
    Alcotest.test_case "dense/sparse/cold classification" `Quick
      test_classification;
    Alcotest.test_case "threshold parameter" `Quick test_threshold;
    Alcotest.test_case "zero-miss paths are cold" `Quick
      test_zero_miss_paths_cold;
    Alcotest.test_case "procedure classification" `Quick
      test_proc_classification;
    Alcotest.test_case "blocks on hot paths" `Quick test_blocks_on_hot_paths;
    Alcotest.test_case "report helpers" `Quick test_report_helpers;
  ]
