(* Tests of the IR layer: builder, procedure checks, CFG view, layout and
   the validator. *)

open Pp_ir

let check = Alcotest.check

let simple_proc () =
  let b =
    Builder.create ~name:"p" ~iparams:1 ~fparams:0 ~returns:Proc.Returns_int
  in
  ignore (Builder.new_block b);
  let r = Builder.new_ireg b in
  Builder.emit b (Instr.Ibinop_imm (Instr.Add, r, 0, 1));
  Builder.terminate b (Block.Ret (Block.Ret_int r));
  Builder.finish b

let test_builder_counts () =
  let p = simple_proc () in
  check Alcotest.int "niregs" 2 p.Proc.niregs;
  check Alcotest.int "nfregs" 0 p.Proc.nfregs;
  check Alcotest.int "nsites" 0 p.Proc.nsites;
  check Alcotest.int "blocks" 1 (Proc.num_blocks p)

let test_builder_unterminated () =
  let b =
    Builder.create ~name:"q" ~iparams:0 ~fparams:0 ~returns:Proc.Returns_void
  in
  ignore (Builder.new_block b);
  match Builder.finish b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected unterminated-block error"

let test_builder_sites_in_order () =
  let b =
    Builder.create ~name:"s" ~iparams:0 ~fparams:0 ~returns:Proc.Returns_void
  in
  ignore (Builder.new_block b);
  Builder.emit_call b ~callee:"f" ~args:[] ~fargs:[] ~ret:Instr.Rnone;
  Builder.emit_call b ~callee:"g" ~args:[] ~fargs:[] ~ret:Instr.Rnone;
  Builder.terminate b (Block.Ret Block.Ret_void);
  let p = Builder.finish b in
  check Alcotest.int "two sites" 2 p.Proc.nsites

let test_proc_rejects_dup_sites () =
  let mk site1 site2 =
    let call site =
      Instr.Call { callee = "f"; args = []; fargs = []; ret = Instr.Rnone;
                   site }
    in
    Proc.make ~frame_words:0 ~name:"bad" ~iparams:0 ~fparams:0
      ~returns:Proc.Returns_void
      ~blocks:
        [|
          { Block.label = 0; instrs = [ call site1; call site2 ];
            term = Block.Ret Block.Ret_void };
        |]
      ~entry:0
  in
  (match mk 0 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate sites accepted");
  match mk 0 2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sparse sites accepted"

let test_cfg_roles () =
  let p = Fixtures.figure1_proc () in
  let cfg = Cfg.of_proc p in
  check Alcotest.int "vertices = blocks + 2" 8
    (Pp_graph.Digraph.num_vertices cfg.Cfg.graph);
  let roles =
    Pp_graph.Digraph.fold_edges
      (fun e acc -> Cfg.role cfg e :: acc)
      cfg.Cfg.graph []
  in
  check Alcotest.int "one entry edge" 1
    (List.length (List.filter (fun r -> r = Cfg.Entry) roles));
  check Alcotest.int "one return edge" 1
    (List.length (List.filter (fun r -> r = Cfg.Return) roles));
  check Alcotest.int "three true arms" 3
    (List.length (List.filter (fun r -> r = Cfg.Branch_true) roles));
  Alcotest.(check string) "entry name" "ENTRY"
    (Cfg.vertex_name cfg cfg.Cfg.entry)

let test_layout_addresses () =
  let fig1 = Fixtures.figure1_proc () in
  let main =
    let b =
      Builder.create ~name:"main" ~iparams:0 ~fparams:0
        ~returns:Proc.Returns_void
    in
    ignore (Builder.new_block b);
    let r = Builder.new_ireg b in
    Builder.emit b (Instr.Iconst (r, 3));
    Builder.emit_call b ~callee:"fig1" ~args:[ r ] ~fargs:[]
      ~ret:Instr.Rnone;
    Builder.terminate b (Block.Ret Block.Ret_void);
    Builder.finish b
  in
  let prog =
    Program.make ~procs:[ main; fig1 ]
      ~globals:
        [
          { Program.gname = "g1"; size_words = 4; init = None };
          { Program.gname = "g2"; size_words = 2; init = None };
        ]
      ~main:"main"
  in
  let layout = Layout.build prog in
  check Alcotest.int "main at code base" Layout.code_base
    (Layout.proc_addr layout "main");
  Alcotest.(check bool) "fig1 after main, 32-aligned" true
    (let a = Layout.proc_addr layout "fig1" in
     a > Layout.code_base && a mod 32 = 0);
  (* Instruction addresses advance by 4 within a block. *)
  let a0 = Layout.instr_addr layout ~proc:"main" ~label:0 ~index:0 in
  let a1 = Layout.instr_addr layout ~proc:"main" ~label:0 ~index:1 in
  check Alcotest.int "4-byte slots" 4 (a1 - a0);
  (* Globals are consecutive words. *)
  check Alcotest.int "g2 after g1"
    (Layout.global_addr layout "g1" + 32)
    (Layout.global_addr layout "g2");
  check Alcotest.int "data_end"
    (Layout.global_addr layout "g2" + 16)
    (Layout.data_end layout);
  (* resolve and proc_of_addr are inverses on procedures. *)
  Alcotest.(check (option string)) "proc_of_addr" (Some "fig1")
    (Layout.proc_of_addr layout (Layout.proc_addr layout "fig1"));
  Alcotest.(check (option string)) "middle of proc" (Some "main")
    (Layout.proc_of_addr layout (a1));
  Alcotest.(check (option string)) "unmapped" None
    (Layout.proc_of_addr layout 12)

let expect_invalid prog_thunk =
  match prog_thunk () with
  | exception Validate.Invalid _ -> ()
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected validation failure"

let test_validate_errors () =
  let ret_void = Block.Ret Block.Ret_void in
  let proc_with instrs term =
    Proc.make ~frame_words:0 ~name:"m" ~iparams:0 ~fparams:0
      ~returns:Proc.Returns_void
      ~blocks:[| { Block.label = 0; instrs; term } |]
      ~entry:0
  in
  (* Call to a missing procedure. *)
  expect_invalid (fun () ->
      let p =
        proc_with
          [ Instr.Call { callee = "nope"; args = []; fargs = [];
                         ret = Instr.Rnone; site = 0 } ]
          ret_void
      in
      Validate.run (Program.make ~procs:[ p ] ~globals:[] ~main:"m"));
  (* Dangling symbol. *)
  expect_invalid (fun () ->
      let p = proc_with [ Instr.Iconst_sym (0, "ghost") ] ret_void in
      Validate.run (Program.make ~procs:[ p ] ~globals:[] ~main:"m"));
  (* Wrong return kind. *)
  expect_invalid (fun () ->
      let callee =
        Proc.make ~frame_words:0 ~name:"f" ~iparams:0 ~fparams:0
          ~returns:Proc.Returns_void
          ~blocks:[| { Block.label = 0; instrs = []; term = ret_void } |]
          ~entry:0
      in
      let p =
        proc_with
          [ Instr.Call { callee = "f"; args = []; fargs = [];
                         ret = Instr.Rint 0; site = 0 } ]
          ret_void
      in
      Validate.run
        (Program.make ~procs:[ p; callee ] ~globals:[] ~main:"m"));
  (* Infinite loop: a block that cannot reach a return. *)
  expect_invalid (fun () ->
      let p =
        Proc.make ~frame_words:0 ~name:"m" ~iparams:0 ~fparams:0
          ~returns:Proc.Returns_void
          ~blocks:
            [|
              { Block.label = 0; instrs = []; term = Block.Jmp 1 };
              { Block.label = 1; instrs = []; term = Block.Jmp 1 };
            |]
          ~entry:0
      in
      Validate.run (Program.make ~procs:[ p ] ~globals:[] ~main:"m"));
  (* Bad pic index. *)
  expect_invalid (fun () ->
      let p = proc_with [ Instr.Hwread (0, 2) ] ret_void in
      Validate.run (Program.make ~procs:[ p ] ~globals:[] ~main:"m"))

let test_program_checks () =
  let p = simple_proc () in
  (* main must exist and take no parameters. *)
  (match Program.make ~procs:[ p ] ~globals:[] ~main:"p" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "main with params accepted");
  match
    Program.make ~procs:[]
      ~globals:
        [
          { Program.gname = "g"; size_words = 1;
            init = Some (Program.Init_ints [| 1; 2 |]) };
        ]
      ~main:"x"
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized init accepted"

let test_instr_slots () =
  check Alcotest.int "plain instruction" 1
    (Instr.slots (Instr.Iconst (0, 1)));
  Alcotest.(check bool) "cct_enter is a large stub" true
    (Instr.slots (Instr.Prof (Instr.Cct_enter { proc_addr = 0; nsites = 4 }))
     > 4)

let test_defs_uses () =
  let i = Instr.Ibinop (Instr.Add, 3, 1, 2) in
  check (Alcotest.list Alcotest.int) "defs" [ 3 ] (Instr.idefs i);
  check (Alcotest.list Alcotest.int) "uses" [ 1; 2 ] (Instr.iuses i);
  let st = Instr.Fstore (4, 5, 8) in
  check (Alcotest.list Alcotest.int) "fstore fuses" [ 4 ] (Instr.fuses st);
  check (Alcotest.list Alcotest.int) "fstore iuses" [ 5 ] (Instr.iuses st);
  Alcotest.(check bool) "is_store" true (Instr.is_store st);
  Alcotest.(check bool) "not load" false (Instr.is_load st)

let suite =
  [
    Alcotest.test_case "builder derives counts" `Quick test_builder_counts;
    Alcotest.test_case "builder rejects unterminated" `Quick
      test_builder_unterminated;
    Alcotest.test_case "call sites numbered" `Quick
      test_builder_sites_in_order;
    Alcotest.test_case "proc rejects bad sites" `Quick
      test_proc_rejects_dup_sites;
    Alcotest.test_case "cfg roles" `Quick test_cfg_roles;
    Alcotest.test_case "layout addresses" `Quick test_layout_addresses;
    Alcotest.test_case "validator catches errors" `Quick test_validate_errors;
    Alcotest.test_case "program checks" `Quick test_program_checks;
    Alcotest.test_case "instruction slots" `Quick test_instr_slots;
    Alcotest.test_case "defs and uses" `Quick test_defs_uses;
  ]
