(* Bechamel micro-benchmarks: one Test.make per table, timing the machinery
   that regenerates it (the profiling primitives themselves, not the
   simulated workloads). *)

open Bechamel
open Toolkit
module Ball_larus = Pp_core.Ball_larus
module Cct = Pp_core.Cct
module Ex = Pp_core.Paper_examples
module Hotpath = Pp_core.Hotpath
module Profile = Pp_core.Profile
module Machine = Pp_machine.Machine
module Config = Pp_machine.Config

(* Table 1 regenerates overhead numbers by instrumenting and running
   programs: time whole-program instrumentation. *)
let test_table1 =
  let prog = Ex.figure1_program () in
  Test.make ~name:"table1: instrument program (flow+hw)"
    (Staged.stage (fun () ->
         ignore
           (Pp_instrument.Instrument.run
              ~mode:Pp_instrument.Instrument.Flow_hw prog)))

(* Table 2 is produced by the machine model counting events: time the
   D-cache/counter fast path. *)
let test_table2 =
  let machine = Machine.create Config.default in
  let addr = ref 0 in
  Test.make ~name:"table2: machine load event"
    (Staged.stage (fun () ->
         addr := (!addr + 8) land 0xFFFF;
         Machine.load machine ~addr:(0x20000 + !addr)))

(* Table 3 is about CCT construction: time an enter/exit pair. *)
let test_table3 =
  let cct = Cct.create ~make_data:(fun ~proc:_ ~nsites:_ -> ()) () in
  ignore (Cct.enter cct ~proc:"main" ~nsites:4 ~site:0 ~kind:Cct.Direct);
  Test.make ~name:"table3: cct enter/exit"
    (Staged.stage (fun () ->
         ignore
           (Cct.enter cct ~proc:"leaf" ~nsites:1 ~site:1 ~kind:Cct.Direct);
         Cct.exit cct))

(* Tables 4/5 decode paths and classify: time numbering + decode. *)
let test_table4 =
  let bl = Ball_larus.build (Pp_ir.Cfg.of_proc (Ex.figure1_proc ())) in
  let n = Ball_larus.num_paths bl in
  let i = ref 0 in
  Test.make ~name:"table4: decode path sum"
    (Staged.stage (fun () ->
         i := (!i + 1) mod n;
         ignore (Ball_larus.decode bl !i)))

let test_table5 =
  (* Classification over a synthetic profile. *)
  let bl = Ball_larus.build (Pp_ir.Cfg.of_proc (Ex.figure1_proc ())) in
  let paths =
    List.init (Ball_larus.num_paths bl) (fun i ->
        (i, { Profile.freq = i + 1; m0 = (i * 37) mod 101; m1 = 100 + i }))
  in
  let profile =
    {
      Profile.pic0 = Pp_machine.Event.Dcache_misses;
      pic1 = Pp_machine.Event.Instructions;
      procs = [ { Profile.proc = "fig1"; numbering = bl; paths } ];
    }
  in
  Test.make ~name:"table5: classify procedures"
    (Staged.stage (fun () -> ignore (Hotpath.classify_procs profile)))

let all_tests =
  [ test_table1; test_table2; test_table3; test_table4; test_table5 ]

let run () =
  Printf.printf "\n==== Bechamel micro-benchmarks (one per table) ====\n\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"tables" ~fmt:"%s %s" all_tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun measure table ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              Printf.printf "  %-45s %12.1f %s/run\n" name est measure
          | Some _ | None -> Printf.printf "  %-45s (no estimate)\n" name)
        table)
    merged
