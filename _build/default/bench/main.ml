(* The benchmark harness: regenerates every table and figure of PLDI'97
   plus the DESIGN.md ablations.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- list    -- available targets
     dune exec bench/main.exe -- table1 figure4 ...                       *)

let targets : (string * string * (unit -> unit)) list =
  [
    ("figure1", "edge labelling and path sums (Fig. 1)", Figures.figure1);
    ("figure2", "the labelling phase (Fig. 2)", Figures.figure2);
    ("figure3", "metric instrumentation listing (Fig. 3)", Figures.figure3);
    ("figure4", "DCT vs DCG vs CCT (Fig. 4)", Figures.figure4);
    ("figure5", "recursion backedges (Fig. 5)", Figures.figure5);
    ("figure7", "call records in memory (Figs. 6/7)", Figures.figure7);
    ("table1", "profiling overhead (Table 1)", Tables.table1);
    ("table2", "metric perturbation (Table 2)", Tables.table2);
    ("table3", "CCT statistics (Table 3)", Tables.table3);
    ("table4", "D-cache misses by path (Table 4)", Tables.table4);
    ("table5", "D-cache misses by procedure (Table 5)", Tables.table5);
    ("implications", "paths through hot blocks (6.4.3)", Tables.implications);
    ("ablation_hash", "A1: array vs hash counters", Ablations.ablation_hash);
    ("ablation_sites", "A2: call-site discrimination",
     Ablations.ablation_sites);
    ( "ablation_saverestore",
      "A3: save/restore placement",
      Ablations.ablation_saverestore );
    ("ablation_backedge", "A4: backedge reads", Ablations.ablation_backedge);
    ( "ablation_placement",
      "simple vs chord placement",
      Ablations.ablation_placement );
    ( "ablation_edge",
      "edge vs path profiling overhead (BL94)",
      Ablations.ablation_edge );
    ("sampling", "stack sampling vs CCT (7.2)", Sampling.run);
    ("hall", "Hall iterative call-path profiling vs CCT (7.2)", Hall.run);
    ("micro", "bechamel micro-benchmarks", Micro.run);
  ]

let list_targets () =
  print_endline "targets:";
  List.iter
    (fun (name, doc, _) -> Printf.printf "  %-22s %s\n" name doc)
    targets

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "list" ] -> list_targets ()
  | [] ->
      print_endline
        "Reproducing the tables and figures of 'Exploiting Hardware \
         Performance Counters with Flow and Context Sensitive Profiling' \
         (PLDI 1997) on the simulated UltraSPARC.";
      List.iter (fun (_, _, f) -> f ()) targets
  | names ->
      List.iter
        (fun name ->
          match List.find_opt (fun (n, _, _) -> n = name) targets with
          | Some (_, _, f) -> f ()
          | None ->
              Printf.eprintf "unknown target %S; try 'list'\n" name;
              exit 1)
        names
