(* Regeneration of the paper's Tables 1-5 from the simulated runs. *)

module W = Pp_workloads.Workload
module Event = Pp_machine.Event
module Report = Pp_core.Report
module Hotpath = Pp_core.Hotpath
module Cct_stats = Pp_core.Cct_stats

let heading title =
  Printf.printf "\n==== %s ====\n\n" title

let fsafe num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

(* --- Table 1: run-time overhead --- *)

let table1_rows workloads =
  List.map
    (fun (w : W.t) ->
      let base = Runs.get w Runs.Base in
      let fhw = Runs.get w Runs.Flow_hw in
      let chw = Runs.get w Runs.Context_hw in
      let cfl = Runs.get w Runs.Context_flow in
      let ov m = fsafe m.Runs.cycles base.Runs.cycles in
      (w, base.Runs.cycles, ov fhw, ov chw, ov cfl))
    workloads

let avg_row label rows =
  let avg f = Report.mean (List.map f rows) in
  `Row
    [
      label;
      "";
      Report.ratio (avg (fun (_, _, a, _, _) -> a));
      Report.ratio (avg (fun (_, _, _, b, _) -> b));
      Report.ratio (avg (fun (_, _, _, _, c) -> c));
    ]

let table1 () =
  heading
    "Table 1: Overhead of profiling (simulated cycles, x base)";
  let render rows =
    List.map
      (fun ((w : W.t), base, a, b, c) ->
        `Row
          [
            w.W.name;
            Report.sci base;
            Report.ratio a;
            Report.ratio b;
            Report.ratio c;
          ])
      rows
  in
  let cint = table1_rows Runs.cint in
  let cfp = table1_rows Runs.cfp in
  print_string
    (Report.render
       ~columns:
         [
           ("Benchmark", Report.Left);
           ("Base cycles", Report.Right);
           ("Flow+HW", Report.Right);
           ("Context+HW", Report.Right);
           ("Context+Flow", Report.Right);
         ]
       ~rows:
         (render cint
         @ [ avg_row "CINT avg" cint; `Sep ]
         @ render cfp
         @ [ avg_row "CFP avg" cfp; `Sep; avg_row "SPEC avg" (cint @ cfp) ]))

(* --- Table 2: perturbation of hardware metrics --- *)

let table2_metrics =
  [
    ("Cycles", Event.Cycles);
    ("Insts", Event.Instructions);
    ("DC rd miss", Event.Dcache_read_misses);
    ("DC wr miss", Event.Dcache_write_misses);
    ("IC miss", Event.Icache_misses);
    ("Mispred stall", Event.Mispredict_stalls);
    ("StoreBuf stall", Event.Store_buffer_stalls);
    ("FP stall", Event.Fp_stalls);
  ]

let table2 () =
  heading
    "Table 2: Perturbation (metric under instrumentation / uninstrumented; \
     F = flow sensitive, C = context sensitive)";
  let row (w : W.t) =
    let base = Runs.get w Runs.Base in
    let fhw = Runs.get w Runs.Flow_hw in
    let chw = Runs.get w Runs.Context_hw in
    let cells =
      List.concat_map
        (fun (_, e) ->
          let b = Runs.counter base e in
          let cell v =
            if b > 0 then Printf.sprintf "%.2f" (fsafe v b)
            else if v > 0 then "inf"
            else "-"
          in
          [ cell (Runs.counter fhw e); cell (Runs.counter chw e) ])
        table2_metrics
    in
    `Row (w.W.name :: cells)
  in
  let columns =
    ("Benchmark", Report.Left)
    :: List.concat_map
         (fun (name, _) -> [ (name ^ " F", Report.Right); ("C", Report.Right) ])
         table2_metrics
  in
  let avg_cells workloads =
    List.concat_map
      (fun (_, e) ->
        let ratios which =
          List.filter_map
            (fun w ->
              let b = Runs.counter (Runs.get w Runs.Base) e in
              if b = 0 then None
              else
                Some (fsafe (Runs.counter (Runs.get w which) e) b))
            workloads
        in
        [
          Printf.sprintf "%.2f" (Report.mean (ratios Runs.Flow_hw));
          Printf.sprintf "%.2f" (Report.mean (ratios Runs.Context_hw));
        ])
      table2_metrics
  in
  print_string
    (Report.render ~columns
       ~rows:
         (List.map row Runs.cint
         @ [ `Row ("CINT avg" :: avg_cells Runs.cint); `Sep ]
         @ List.map row Runs.cfp
         @ [
             `Row ("CFP avg" :: avg_cells Runs.cfp);
             `Sep;
             `Row ("SPEC avg" :: avg_cells Runs.all);
           ]))

(* --- Table 3: CCT statistics --- *)

let table3 () =
  heading
    "Table 3: CCT with intraprocedural path information (Context+Flow)";
  let row (w : W.t) =
    let m = Runs.get w Runs.Context_flow in
    match m.Runs.cct_summary with
    | None -> `Row [ w.W.name; "-" ]
    | Some { stats; one_path_sites; prof_bytes } ->
        `Row
          [
            w.W.name;
            Report.sci prof_bytes;
            string_of_int stats.Cct_stats.nodes;
            Printf.sprintf "%.1f" stats.Cct_stats.avg_node_size;
            Printf.sprintf "%.1f" stats.Cct_stats.avg_out_degree;
            Printf.sprintf "%.1f" stats.Cct_stats.height_avg;
            string_of_int stats.Cct_stats.height_max;
            string_of_int stats.Cct_stats.max_replication;
            string_of_int stats.Cct_stats.call_sites_total;
            string_of_int stats.Cct_stats.call_sites_used;
            string_of_int one_path_sites;
          ]
  in
  print_string
    (Report.render
       ~columns:
         [
           ("Benchmark", Report.Left);
           ("Size(B)", Report.Right);
           ("Nodes", Report.Right);
           ("AvgNode(B)", Report.Right);
           ("AvgOutDeg", Report.Right);
           ("HtAvg", Report.Right);
           ("HtMax", Report.Right);
           ("MaxRepl", Report.Right);
           ("Sites", Report.Right);
           ("Used", Report.Right);
           ("OnePath", Report.Right);
         ]
       ~rows:
         (List.map row Runs.cint @ [ `Sep ] @ List.map row Runs.cfp));
  Printf.printf
    "\nSize(B) counts profiling bytes actually allocated (records + \
     per-record path tables + hash buckets);\nAvgNode(B) uses the paper's \
     Figure-7 4-byte-cell record model; HtAvg is the mean leaf depth;\n\
     OnePath counts used call sites reached by exactly one intraprocedural \
     path in their context (6.3).\n"

(* --- Tables 4 and 5: L1 D-cache misses by path / by procedure --- *)

let profile_of w =
  match (Runs.get w Runs.Flow_hw).Runs.profile with
  | Some p -> p
  | None -> failwith "flow profile missing"

let class_cells (all : Hotpath.class_stats) (c : Hotpath.class_stats) =
  [
    string_of_int c.Hotpath.num;
    Report.pct (fsafe c.Hotpath.insts all.Hotpath.insts);
    Report.pct (fsafe c.Hotpath.misses all.Hotpath.misses);
  ]

let table4_row ?(threshold = 0.01) (w : W.t) =
  let t = Hotpath.classify_paths ~threshold (profile_of w) in
  `Row
    ([
       w.W.name;
       string_of_int t.Hotpath.all.Hotpath.num;
       Report.sci t.Hotpath.all.Hotpath.insts;
       Report.sci t.Hotpath.all.Hotpath.misses;
     ]
    @ class_cells t.Hotpath.all t.Hotpath.dense
    @ class_cells t.Hotpath.all t.Hotpath.sparse
    @ class_cells t.Hotpath.all t.Hotpath.cold)

let table4 () =
  heading
    "Table 4: L1 D-cache misses by path (hot >= 1% of misses; dense = \
     above-average miss ratio)";
  let columns =
    [
      ("Benchmark", Report.Left);
      ("Paths", Report.Right);
      ("Insts", Report.Right);
      ("Misses", Report.Right);
      ("Dense", Report.Right);
      ("I%", Report.Right);
      ("M%", Report.Right);
      ("Sparse", Report.Right);
      ("I%", Report.Right);
      ("M%", Report.Right);
      ("Cold", Report.Right);
      ("I%", Report.Right);
      ("M%", Report.Right);
    ]
  in
  print_string
    (Report.render ~columns
       ~rows:
         (List.map table4_row Runs.cint
         @ [ `Sep ]
         @ List.map table4_row Runs.cfp));
  (* The paper's second experiment: a 0.1% threshold for the path-rich
     pair. *)
  Printf.printf
    "\nWith threshold lowered to 0.1%% for the path-rich analogues:\n\n";
  print_string
    (Report.render ~columns
       ~rows:
         (List.filter_map
            (fun (w : W.t) ->
              if w.W.name = "go_like" || w.W.name = "gcc_like" then
                Some (table4_row ~threshold:0.001 w)
              else None)
            Runs.all))

let proc_cells (s : Hotpath.proc_class_stats) =
  [
    string_of_int s.Hotpath.procs;
    Printf.sprintf "%.1f" s.Hotpath.avg_paths_per_proc;
    Report.pct s.Hotpath.miss_fraction;
  ]

let table5 () =
  heading "Table 5: L1 D-cache misses by procedure";
  let row (w : W.t) =
    let t = Hotpath.classify_procs (profile_of w) in
    `Row
      (w.W.name
       :: (proc_cells t.Hotpath.dense_procs
          @ proc_cells t.Hotpath.sparse_procs
          @ proc_cells t.Hotpath.cold_procs))
  in
  print_string
    (Report.render
       ~columns:
         [
           ("Benchmark", Report.Left);
           ("Dense", Report.Right);
           ("Path/Proc", Report.Right);
           ("Miss%", Report.Right);
           ("Sparse", Report.Right);
           ("Path/Proc", Report.Right);
           ("Miss%", Report.Right);
           ("Cold", Report.Right);
           ("Path/Proc", Report.Right);
           ("Miss%", Report.Right);
         ]
       ~rows:(List.map row Runs.cint @ [ `Sep ] @ List.map row Runs.cfp))

(* --- §6.4.3: blocks on hot paths execute along many paths --- *)

let implications () =
  heading
    "Implications for profiling (6.4.3): executed paths through blocks on \
     hot paths";
  List.iter
    (fun (w : W.t) ->
      let avg = Hotpath.avg_paths_through_hot_blocks (profile_of w) in
      Printf.printf "  %-14s %6.1f paths per hot-path block\n" w.W.name avg)
    Runs.all;
  let grand =
    Report.mean
      (List.map
         (fun w -> Hotpath.avg_paths_through_hot_blocks (profile_of w))
         Runs.all)
  in
  Printf.printf "  %-14s %6.1f (paper reports ~16)\n" "AVERAGE" grand
