(* 7.2 comparison: Goldberg-Hall call-stack sampling vs the CCT.

   Sampling approximates context costs and stores one bucket per distinct
   stack (unbounded); the CCT is exact per context and bounded.  This bench
   quantifies both claims on recursion-free workloads, where a sampled
   stack corresponds one-to-one to a CCT context. *)

module W = Pp_workloads.Workload
module Registry = Pp_workloads.Registry
module Interp = Pp_vm.Interp
module Event = Pp_machine.Event
module Driver = Pp_instrument.Driver
module Instrument = Pp_instrument.Instrument
module Cct = Pp_core.Cct
module Runtime = Pp_vm.Runtime

let heading title = Printf.printf "\n==== %s ====\n\n" title

(* Exact inclusive cycle fractions per context, from a Context+HW run with
   pic1 = cycles. *)
let exact_fractions w =
  let session =
    Driver.prepare ~max_instructions:Runs.budget
      ~pics:(Event.Dcache_misses, Event.Cycles)
      ~mode:Instrument.Context_hw (Runs.program_of w)
  in
  ignore (Driver.run session);
  let cct = Driver.cct session in
  let total =
    match Cct.children (Cct.root cct) with
    | [ main ] -> (Cct.data main).Runtime.metrics.(2)
    | _ -> failwith "expected a single top-level context"
  in
  let table = Hashtbl.create 64 in
  Cct.iter
    (fun n ->
      if Cct.parent n <> None then
        Hashtbl.replace table (Cct.context n)
          (float_of_int (Cct.data n).Runtime.metrics.(2)
          /. float_of_int (max total 1)))
    cct;
  (table, Cct.num_nodes cct - 1)

(* Sampled inclusive fractions: a stack sample counts towards every prefix
   of the stack. *)
let sampled_fractions w ~interval =
  let vm =
    Interp.create ~max_instructions:Runs.budget (Runs.program_of w)
  in
  Interp.enable_sampling vm ~interval;
  ignore (Interp.run vm);
  let samples = Interp.samples vm in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 samples in
  let table = Hashtbl.create 64 in
  List.iter
    (fun (stack, hits) ->
      let rec prefixes acc = function
        | [] -> ()
        | p :: rest ->
            let ctx = acc @ [ p ] in
            Hashtbl.replace table ctx
              (hits + Option.value ~default:0 (Hashtbl.find_opt table ctx));
            prefixes ctx rest
      in
      prefixes [] stack)
    samples;
  let fractions = Hashtbl.create 64 in
  Hashtbl.iter
    (fun ctx hits ->
      Hashtbl.replace fractions ctx
        (float_of_int hits /. float_of_int (max total 1)))
    table;
  (fractions, List.length samples, total)

let run () =
  heading
    "7.2 comparison: stack sampling vs the CCT (inclusive cycle fractions \
     per context)";
  List.iter
    (fun name ->
      let w = Option.get (Registry.find name) in
      let exact, cct_nodes = exact_fractions w in
      Printf.printf "%s: CCT has %d records (bounded, exact)\n" name
        cct_nodes;
      List.iter
        (fun interval ->
          let sampled, distinct_stacks, total =
            sampled_fractions w ~interval
          in
          (* Mean absolute error over contexts with >= 1% of cycles. *)
          let errs = ref [] in
          Hashtbl.iter
            (fun ctx fr ->
              if fr >= 0.01 then
                let approx =
                  Option.value ~default:0.0 (Hashtbl.find_opt sampled ctx)
                in
                errs := Float.abs (fr -. approx) :: !errs)
            exact;
          let mean =
            match !errs with
            | [] -> 0.0
            | es ->
                List.fold_left ( +. ) 0.0 es /. float_of_int (List.length es)
          in
          Printf.printf
            "  interval=%-7d samples=%-7d distinct stacks=%-5d mean |err| \
             on hot contexts=%.3f\n"
            interval total distinct_stacks mean)
        [ 50_000; 10_000; 2_000 ])
    [ "vortex_like"; "compress_like"; "perl_like" ]
