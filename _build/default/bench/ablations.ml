(* Ablations of the design choices DESIGN.md calls out (A1-A4). *)

module W = Pp_workloads.Workload
module Registry = Pp_workloads.Registry
module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver
module Interp = Pp_vm.Interp
module Runtime = Pp_vm.Runtime
module Event = Pp_machine.Event
module Cct = Pp_core.Cct
module Cct_stats = Pp_core.Cct_stats
module Report = Pp_core.Report

let heading title = Printf.printf "\n==== %s ====\n\n" title

let budget = 400_000_000

let workload name = Option.get (Registry.find name)

let cycles_with ~options ~mode w =
  let session =
    Driver.prepare ~options ~max_instructions:budget ~mode
      (Runs.program_of w)
  in
  let r = Driver.run session in
  (session, r)

(* A1: array vs hash-table path counters, sweeping the array threshold. *)
let ablation_hash () =
  heading
    "Ablation A1: array vs hash-table path counters (Flow+HW cycles vs \
     array threshold)";
  let names = [ "go_like"; "gcc_like"; "compress_like"; "tomcatv_like" ] in
  let thresholds = [ 0; 64; 1024; 4096; 65536 ] in
  List.iter
    (fun name ->
      let w = workload name in
      let base = (Runs.get w Runs.Base).Runs.cycles in
      Printf.printf "  %-14s" name;
      List.iter
        (fun threshold ->
          let options =
            { Instrument.default_options with
              Instrument.array_threshold = threshold }
          in
          let _, r = cycles_with ~options ~mode:Instrument.Flow_hw w in
          Printf.printf "  t=%-6d %sx" threshold
            (Report.ratio (float_of_int r.Interp.cycles /. float_of_int base)))
        thresholds;
      Printf.printf "\n")
    names;
  Printf.printf
    "\n  (t=0 forces every procedure through the hash path; large t keeps \
     arrays.)\n"

(* A2: call-site discrimination versus merged slots (the paper: sites cost
   2-3x the space). *)
let ablation_sites () =
  heading
    "Ablation A2: CCT call-site discrimination vs merged slots \
     (Context+Flow)";
  Printf.printf "  %-14s %12s %12s %10s %10s\n" "benchmark" "nodes(site)"
    "nodes(merge)" "bytes(site)" "bytes(merge)";
  List.iter
    (fun name ->
      let w = workload name in
      let measure merge =
        let options =
          { Instrument.default_options with
            Instrument.merge_call_sites = merge }
        in
        let session, _ =
          cycles_with ~options ~mode:Instrument.Context_flow w
        in
        let cct = Driver.cct session in
        let bytes =
          Runtime.prof_bytes_allocated (Interp.runtime session.Driver.vm)
        in
        (Cct.num_nodes cct - 1, bytes)
      in
      let n_site, b_site = measure false in
      let n_merge, b_merge = measure true in
      Printf.printf "  %-14s %12d %12d %10d %10d  (%.1fx size)\n" name n_site
        n_merge b_site b_merge
        (float_of_int b_site /. float_of_int (max b_merge 1)))
    [ "vortex_like"; "li_like"; "gcc_like"; "apsi_like" ]

(* A3: counter save/restore at callee entry/exit vs at every call site. *)
let ablation_saverestore () =
  heading
    "Ablation A3: PIC save/restore at callee entry/exit (paper) vs at \
     call sites (Flow+HW cycles x base)";
  List.iter
    (fun name ->
      let w = workload name in
      let base = (Runs.get w Runs.Base).Runs.cycles in
      let run caller_saves =
        let options =
          { Instrument.default_options with
            Instrument.caller_saves }
        in
        let _, r = cycles_with ~options ~mode:Instrument.Flow_hw w in
        float_of_int r.Interp.cycles /. float_of_int base
      in
      Printf.printf "  %-14s callee-side %sx   caller-side %sx\n" name
        (Report.ratio (run false))
        (Report.ratio (run true)))
    [ "vortex_like"; "li_like"; "gcc_like"; "fpppp_like" ]

(* A4: reading the counters on loop backedges (4.3) bounds the measured
   interval at extra cost. *)
let ablation_backedge () =
  heading
    "Ablation A4: Context+HW with and without backedge counter reads";
  List.iter
    (fun name ->
      let w = workload name in
      let base = (Runs.get w Runs.Base).Runs.cycles in
      let run backedge_metric_reads =
        let options =
          { Instrument.default_options with
            Instrument.backedge_metric_reads }
        in
        let session, r =
          cycles_with ~options ~mode:Instrument.Context_hw w
        in
        let cct = Driver.cct session in
        let total_m0 =
          Cct.fold
            (fun acc n -> acc + (Cct.data n).Runtime.metrics.(1))
            0 cct
        in
        (float_of_int r.Interp.cycles /. float_of_int base, total_m0)
      in
      let ov_plain, m_plain = run false in
      let ov_reads, m_reads = run true in
      Printf.printf
        "  %-14s overhead %sx -> %sx   accumulated misses %d -> %d\n" name
        (Report.ratio ov_plain) (Report.ratio ov_reads) m_plain m_reads)
    [ "tomcatv_like"; "mgrid_like"; "compress_like" ]

(* The paper's optimized placement (Fig 1(d)) vs the simple scheme. *)
let ablation_placement () =
  heading
    "Ablation: simple vs spanning-tree (chord) increment placement \
     (Flow+HW cycles x base)";
  List.iter
    (fun name ->
      let w = workload name in
      let base = (Runs.get w Runs.Base).Runs.cycles in
      let run optimize_placement =
        let options =
          { Instrument.default_options with
            Instrument.optimize_placement }
        in
        let _, r = cycles_with ~options ~mode:Instrument.Flow_hw w in
        float_of_int r.Interp.cycles /. float_of_int base
      in
      Printf.printf "  %-14s simple %sx   chords %sx\n" name
        (Report.ratio (run false))
        (Report.ratio (run true)))
    [ "go_like"; "tomcatv_like"; "compress_like"; "fpppp_like" ]

(* The paper: path profiling overhead is "roughly twice that of efficient
   edge profiling". *)
let ablation_edge () =
  heading
    "Ablation: efficient edge profiling (BL94) vs path profiling (cycles x \
     base)";
  List.iter
    (fun name ->
      let w = workload name in
      let base = (Runs.get w Runs.Base).Runs.cycles in
      let over mode =
        let _, r = cycles_with ~options:Instrument.default_options ~mode w in
        float_of_int r.Interp.cycles /. float_of_int base
      in
      let edge = over Instrument.Edge_freq in
      let path = over Instrument.Flow_freq in
      Printf.printf
        "  %-14s edge %sx   path %sx   (path/edge overhead ratio %.1f)\n"
        name (Report.ratio edge) (Report.ratio path)
        ((path -. 1.0) /. Float.max (edge -. 1.0) 0.001))
    [ "go_like"; "gcc_like"; "li_like"; "compress_like"; "tomcatv_like" ]
