(* Regeneration of the paper's figures as text. *)

module Digraph = Pp_graph.Digraph
module Cfg = Pp_ir.Cfg
module Proc = Pp_ir.Proc
module Ball_larus = Pp_core.Ball_larus
module Ex = Pp_core.Paper_examples
module Cct = Pp_core.Cct
module Dct = Pp_core.Dct
module Dcg = Pp_core.Dcg
module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver
module Runtime = Pp_vm.Runtime

let heading title = Printf.printf "\n==== %s ====\n\n" title

let fig1_numbering () =
  let proc = Ex.figure1_proc () in
  let cfg = Cfg.of_proc proc in
  Ball_larus.build cfg

let edge_desc cfg (e : Digraph.edge) =
  let name v =
    match Cfg.label_of_vertex cfg v with
    | Some l -> Ex.figure1_block_name l
    | None -> Cfg.vertex_name cfg v
  in
  Printf.sprintf "%s->%s" (name e.src) (name e.dst)

let figure1 () =
  heading "Figure 1: edge labelling with unique path sums (the A..F CFG)";
  let bl = fig1_numbering () in
  let cfg = Ball_larus.cfg bl in
  Printf.printf "NP values (paths to EXIT):\n";
  List.iter
    (fun l ->
      Printf.printf "  NP(%s) = %d\n" (Ex.figure1_block_name l)
        (Ball_larus.np bl l))
    [ 0; 1; 2; 3; 4; 5 ];
  Printf.printf "\nEdge values Val(e):\n";
  Digraph.iter_edges
    (fun e ->
      match Cfg.role cfg e with
      | Cfg.Entry | Cfg.Return -> ()
      | Cfg.Jump | Cfg.Branch_true | Cfg.Branch_false ->
          Printf.printf "  Val(%s) = %d\n" (edge_desc cfg e)
            (Ball_larus.edge_val bl e))
    cfg.Cfg.graph;
  Printf.printf "\nThe %d paths and their sums (paper: ACDF=0 ACDEF=1 \
                 ABCDF=2 ABCDEF=3 ABDF=4 ABDEF=5):\n"
    (Ball_larus.num_paths bl);
  for sum = 0 to Ball_larus.num_paths bl - 1 do
    let p = Ball_larus.decode bl sum in
    Printf.printf "  %d: %s\n" sum
      (String.concat ""
         (List.map Ex.figure1_block_name p.Ball_larus.blocks))
  done;
  let show_placement title (pl : Ball_larus.placement) =
    Printf.printf "\n%s:\n" title;
    List.iter
      (fun (e, v) ->
        Printf.printf "  on %s: r += %d\n" (edge_desc cfg e) v)
      pl.Ball_larus.increments;
    Printf.printf "  at EXIT: count[r]++\n"
  in
  show_placement "Simple instrumentation (Figure 1(c))"
    (Ball_larus.simple_placement bl);
  show_placement "Optimized instrumentation (Figure 1(d), chords of a \
                  spanning tree)"
    (Ball_larus.optimized_placement
       ~weights:(fun (_ : Digraph.edge) -> 1)
       bl)

let figure2 () =
  heading
    "Figure 2: the labelling phase -- Val(e_i) = sum of NP(w_j) for j < i";
  let bl = fig1_numbering () in
  let cfg = Ball_larus.cfg bl in
  (* Block D (successors F then E) and block A (successors C then B) show
     the cumulative rule. *)
  List.iter
    (fun v ->
      let succs = Digraph.out_edges cfg.Cfg.graph v in
      Printf.printf "vertex %s: successors in order:\n"
        (Ex.figure1_block_name v);
      List.iter
        (fun (e : Digraph.edge) ->
          match Cfg.label_of_vertex cfg e.dst with
          | Some l ->
              Printf.printf "  -> %s   NP=%d   Val=%d\n"
                (Ex.figure1_block_name l) (Ball_larus.np bl l)
                (Ball_larus.edge_val bl e)
          | None -> ())
        succs)
    [ 0; 3 ]

let figure3 () =
  heading
    "Figure 3: instrumentation for measuring a metric over paths \
     (hw-cnt = 0 at path start, read+accumulate at path end)";
  let prog = Ex.figure1_program () in
  let instrumented, _ =
    Instrument.run ~mode:Instrument.Flow_hw prog
  in
  let fig1 = Pp_ir.Program.proc_exn instrumented "fig1" in
  Format.printf "%a@." Proc.pp fig1

let pp_cct_text cct =
  let rec visit indent node =
    Printf.printf "%s%s\n" (String.make indent ' ') (Cct.proc node);
    List.iter
      (fun (e : _ Cct.edge) ->
        if e.Cct.is_backedge then
          Printf.printf "%s  (backedge -> %s)\n"
            (String.make indent ' ')
            (Cct.proc e.Cct.target)
        else visit (indent + 2) e.Cct.target)
      (Cct.edges node)
  in
  List.iter (visit 0) (Cct.children (Cct.root cct))

let trace_structures trace =
  let dct = Dct.create ~make_data:(fun ~proc:_ -> ()) () in
  let dcg = Dcg.create () in
  let cct = Cct.create ~make_data:(fun ~proc:_ ~nsites:_ -> ()) () in
  trace
    ~enter:(fun proc site ->
      ignore (Dct.enter dct ~proc);
      Dcg.enter dcg ~proc;
      ignore (Cct.enter cct ~proc ~nsites:4 ~site ~kind:Cct.Direct))
    ~exit:(fun () ->
      Dct.exit dct;
      Dcg.exit dcg;
      Cct.exit cct);
  (dct, dcg, cct)

let figure4 () =
  heading "Figure 4: dynamic call tree vs call graph vs CCT";
  let dct, dcg, cct = trace_structures Ex.figure4_trace in
  Printf.printf "(a) dynamic call tree (%d activations):\n"
    (Dct.num_nodes dct - 1);
  Format.printf "%a@." Dct.pp dct;
  Printf.printf "(b) dynamic call graph edges:\n";
  List.iter
    (fun (a, b, n) -> Printf.printf "  %s -> %s  (%d calls)\n" a b n)
    (Dcg.edges dcg);
  Printf.printf
    "    infeasible chain M->D->A->B->C edge-wise present: %b\n"
    (Dcg.path_exists dcg [ "M"; "D"; "A"; "B"; "C" ]);
  Printf.printf "(c) calling context tree (%d records):\n"
    (Cct.num_nodes cct - 1);
  pp_cct_text cct;
  Printf.printf
    "    contexts of C preserved: M.A.B.C=%b M.D.C=%b (two records)\n"
    (Cct.find_context cct [ "M"; "A"; "B"; "C" ] <> None)
    (Cct.find_context cct [ "M"; "D"; "C" ] <> None)

let figure5 () =
  heading "Figure 5: recursion introduces CCT backedges";
  let dct, _, cct = trace_structures Ex.figure5_trace in
  Printf.printf "(a) dynamic call tree:\n";
  Format.printf "%a@." Dct.pp dct;
  Printf.printf "(c) CCT (recursive A reuses its record via a backedge):\n";
  pp_cct_text cct;
  Printf.printf "    records: %d (bounded despite recursion)\n"
    (Cct.num_nodes cct - 1)

let figure7 () =
  heading
    "Figures 6/7: CCT call records in (simulated) memory -- ID, parent, \
     metrics, callee slots";
  (* Run the fig1 program under Context_hw and dump the heap layout. *)
  let prog = Ex.figure1_program () in
  let session = Driver.prepare ~mode:Instrument.Context_hw prog in
  ignore (Driver.run session);
  let cct = Driver.cct session in
  Cct.iter
    (fun node ->
      let d = Cct.data node in
      Printf.printf "record @0x%x: ID=%-6s parent=%s entries=%d\n"
        d.Runtime.addr (Cct.proc node)
        (match Cct.parent node with
        | Some p -> Printf.sprintf "0x%x" (Cct.data p).Runtime.addr
        | None -> "NULL")
        d.Runtime.metrics.(0);
      List.iter
        (fun (e : _ Cct.edge) ->
          Printf.printf "  slot[%d] -> 0x%x (%s%s, %d calls)\n" e.Cct.site
            (Cct.data e.Cct.target).Runtime.addr
            (Cct.proc e.Cct.target)
            (if e.Cct.is_backedge then ", backedge" else "")
            e.Cct.calls)
        (Cct.edges node))
    cct
