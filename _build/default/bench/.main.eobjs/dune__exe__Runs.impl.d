bench/runs.ml: Hashtbl List Pp_core Pp_instrument Pp_ir Pp_machine Pp_vm Pp_workloads Printf
