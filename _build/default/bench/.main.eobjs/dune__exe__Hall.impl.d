bench/hall.ml: Array Hashtbl List Option Pp_instrument Pp_ir Pp_vm Pp_workloads Printf Runs
