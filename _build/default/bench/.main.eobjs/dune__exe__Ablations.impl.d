bench/ablations.ml: Array Float List Option Pp_core Pp_instrument Pp_machine Pp_vm Pp_workloads Printf Runs
