bench/figures.ml: Array Format List Pp_core Pp_graph Pp_instrument Pp_ir Pp_vm Printf String
