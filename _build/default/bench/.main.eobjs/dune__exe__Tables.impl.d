bench/tables.ml: List Pp_core Pp_machine Pp_workloads Printf Runs
