bench/sampling.ml: Array Float Hashtbl List Option Pp_core Pp_instrument Pp_machine Pp_vm Pp_workloads Printf Runs
