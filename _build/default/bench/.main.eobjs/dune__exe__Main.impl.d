bench/main.ml: Ablations Array Figures Hall List Micro Printf Sampling Sys Tables
