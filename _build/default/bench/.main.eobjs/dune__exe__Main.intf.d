bench/main.mli:
