bench/micro.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Pp_core Pp_instrument Pp_ir Pp_machine Printf Staged Test Time Toolkit
