(* 7.2 comparison: Hall's call-path profiling (ICSE'92).

   Hall instruments one call-graph level at a time and re-executes the
   program for each level, keeping per-run overhead low at the price of
   many runs (and of requiring reproducible behaviour).  The CCT gets
   complete context data in one run.  This bench performs Hall's iteration
   with selective instrumentation and compares total simulated work. *)

module W = Pp_workloads.Workload
module Registry = Pp_workloads.Registry
module Interp = Pp_vm.Interp
module Driver = Pp_instrument.Driver
module Instrument = Pp_instrument.Instrument
module Program = Pp_ir.Program
module Proc = Pp_ir.Proc
module I = Pp_ir.Instr

let heading title = Printf.printf "\n==== %s ====\n\n" title

(* Static call-graph levels by BFS from main.  Indirect calls go to every
   address-taken procedure. *)
let call_levels (prog : Program.t) =
  let address_taken =
    Array.to_list prog.Program.procs
    |> List.concat_map (fun (p : Proc.t) ->
           let acc = ref [] in
           Proc.iter_instrs
             (fun _ instr ->
               match instr with
               | I.Iconst_sym (_, sym) ->
                   if Program.find_proc prog sym <> None then
                     acc := sym :: !acc
               | _ -> ())
             p;
           !acc)
    |> List.sort_uniq compare
  in
  let callees (p : Proc.t) =
    let direct = ref [] in
    let indirect = ref false in
    Proc.iter_instrs
      (fun _ instr ->
        match instr with
        | I.Call { callee; _ } -> direct := callee :: !direct
        | I.Callind _ -> indirect := true
        | _ -> ())
      p;
    List.sort_uniq compare
      (!direct @ if !indirect then address_taken else [])
  in
  let visited = Hashtbl.create 16 in
  let rec bfs level frontier acc =
    if frontier = [] then List.rev acc
    else begin
      List.iter (fun p -> Hashtbl.replace visited p ()) frontier;
      let next =
        List.concat_map
          (fun name -> callees (Program.proc_exn prog name))
          frontier
        |> List.sort_uniq compare
        |> List.filter (fun p -> not (Hashtbl.mem visited p))
      in
      bfs (level + 1) next (frontier :: acc)
    end
  in
  bfs 0 [ prog.Program.main ] []

let run () =
  heading
    "7.2 comparison: Hall's iterative call-path profiling vs one CCT run \
     (simulated cycles)";
  List.iter
    (fun name ->
      let w = Option.get (Registry.find name) in
      let prog = Runs.program_of w in
      let base = (Runs.get w Runs.Base).Runs.cycles in
      (* One full CCT run. *)
      let cct_cycles = (Runs.get w Runs.Context_hw).Runs.cycles in
      (* Hall: one re-execution per call-graph level, instrumenting only
         that level. *)
      let levels = call_levels prog in
      let total_hall =
        List.fold_left
          (fun acc level ->
            let options =
              { Instrument.default_options with Instrument.only = Some level }
            in
            let session =
              Driver.prepare ~options ~max_instructions:Runs.budget
                ~mode:Instrument.Context_hw prog
            in
            let r = Driver.run session in
            acc + r.Interp.cycles)
          0 levels
      in
      Printf.printf
        "  %-14s levels=%d   Hall total %.1fx base   one CCT run %.1fx base\n"
        name (List.length levels)
        (float_of_int total_hall /. float_of_int base)
        (float_of_int cct_cycles /. float_of_int base))
    [ "vortex_like"; "li_like"; "gcc_like"; "tomcatv_like" ];
  Printf.printf
    "\n  Hall's per-run overhead is small but it re-executes the program \
     once per call-graph level\n  (and needs reproducible runs); the CCT \
     collects every context in a single execution.\n"
