(** The profiling runtime — the library PP links into instrumented programs.

    Profiling pseudo-ops in the IR land here.  The runtime performs the real
    bookkeeping on host data structures (a {!Pp_core.Cct} with per-record
    metrics and path tables; hash tables for path-rich procedures) while
    charging the machine model the cost the equivalent SPARC stub would
    incur: instruction fetches inside the op's code footprint and loads and
    stores to the structures' *simulated* addresses, allocated from the
    profiling segment, so the instrumentation pollutes the D-cache, the
    I-cache and the store buffer like the real thing.

    The CCT construction protocol is the paper's: a global callee-slot
    pointer [gCSP] set by the caller just before each call ([Cct_call]);
    the callee looks its record up or creates it ([Cct_enter]), saving the
    old [gCSP] in its frame's linkage area and restoring it on [Cct_exit]. *)

module Machine = Pp_machine.Machine
module Counters = Pp_machine.Counters
module Cct = Pp_core.Cct

(** Per-call-record client data. *)
type record_data = {
  addr : int;  (** simulated address of the call record *)
  metrics : int array;
      (** [entries; m0; m1] — PIC-delta accumulators (context+HW mode) *)
  paths : (int, int ref) Hashtbl.t;
      (** path sum -> frequency (flow x context mode) *)
  mutable ptable_addr : int;
      (** simulated address of the record's path table, 0 until first use *)
}

type path_cells = { mutable freq : int; mutable m0 : int; mutable m1 : int }

type t

val create :
  ?merge_call_sites:bool ->
  machine:Machine.t ->
  memory:Memory.t ->
  prof_base:int ->
  unit ->
  t

(** Declare a hash-mode path table before the run (assigned by the
    instrumenter to procedures with too many potential paths). *)
val register_hash_table : t -> table:int -> proc:string -> unit

(** Declare a flow×context path table (per-record tables are allocated
    lazily; [npaths] sizes their simulated footprint). *)
val register_cct_table : t -> table:int -> proc:string -> npaths:int -> unit

(** {2 Hooks called by the interpreter}

    [op_addr] is the pseudo-op's code address (the stub's location);
    [fp] is the executing frame's base (its linkage area holds the saved
    gCSP and entry PIC values). *)

val cct_call : t -> site:int -> indirect:bool -> op_addr:int -> unit

val cct_enter :
  t -> proc_name:string -> nsites:int -> op_addr:int -> fp:int -> unit

val cct_exit : t -> op_addr:int -> fp:int -> unit
val cct_metric_enter : t -> op_addr:int -> fp:int -> unit
val cct_metric_exit : t -> op_addr:int -> fp:int -> unit
val cct_metric_backedge : t -> op_addr:int -> fp:int -> unit

val path_commit_hash :
  t -> table:int -> key:int -> hw:bool -> op_addr:int -> unit

val path_commit_cct : t -> table:int -> key:int -> op_addr:int -> unit

(** {2 Results} *)

val cct : t -> record_data Cct.t

(** Hash-mode counts for a table.  @raise Not_found if never registered. *)
val hash_table_counts : t -> table:int -> (int * path_cells) list

(** Bytes of profiling memory allocated (call records, path tables, hash
    buckets) — the basis of Table 3's Size column. *)
val prof_bytes_allocated : t -> int
