lib/vm/interp.mli: Format Memory Pp_ir Pp_machine Runtime
