lib/vm/runtime.ml: Array Hashtbl Pp_core Pp_machine Printf
