lib/vm/memory.mli:
