lib/vm/interp.ml: Array Float Format Hashtbl List Memory Pp_ir Pp_machine Runtime
