lib/vm/runtime.mli: Hashtbl Memory Pp_core Pp_machine
