lib/vm/memory.ml: Array Bytes Int64 List Printf
