module Machine = Pp_machine.Machine
module Counters = Pp_machine.Counters
module Cct = Pp_core.Cct

type record_data = {
  addr : int;
  metrics : int array;
  paths : (int, int ref) Hashtbl.t;
  mutable ptable_addr : int;
}

type path_cells = { mutable freq : int; mutable m0 : int; mutable m1 : int }

type table_info =
  | Hash_table of {
      counts : (int, path_cells) Hashtbl.t;
      buckets_addr : int;
      nbuckets : int;
    }
  | Cct_table of { npaths : int }

(* Per-activation shadow record, parallel to the CCT's own stack. *)
type activation = {
  saved_gcsp : (int * bool) option;  (* (site, indirect) in effect before *)
  mutable pic0_at_entry : int;
  mutable pic1_at_entry : int;
}

(* The profiling-segment allocation cursor is shared between the CCT's
   record allocator (a closure created before [t] exists) and the table
   allocators. *)
type cursor = { mutable bump : int; mutable allocated : int }

type t = {
  machine : Machine.t;
  cct : record_data Cct.t;
  tables : (int, table_info) Hashtbl.t;
  table_of_proc : (string, int) Hashtbl.t;
  mutable gcsp : (int * bool) option;  (* pending (site, indirect) *)
  mutable shadow : activation list;
  cursor : cursor;
}

let word = 8

(* Figure-7-style record footprint in simulated memory: ID, parent, three
   metric words, one callee slot per site. *)
let record_words nsites = 2 + 3 + max 1 nsites

let alloc_from cursor words =
  let addr = cursor.bump in
  cursor.bump <- cursor.bump + (words * word);
  cursor.allocated <- cursor.allocated + (words * word);
  addr

let create ?(merge_call_sites = false) ~machine ~memory:_ ~prof_base () =
  let cursor = { bump = prof_base; allocated = 0 } in
  let make_data ~proc:_ ~nsites =
    {
      addr = alloc_from cursor (record_words nsites);
      metrics = Array.make 3 0;
      paths = Hashtbl.create 8;
      ptable_addr = 0;
    }
  in
  let cct = Cct.create ~merge_call_sites ~make_data () in
  {
    machine;
    cct;
    tables = Hashtbl.create 16;
    table_of_proc = Hashtbl.create 16;
    gcsp = None;
    shadow = [];
    cursor;
  }

let alloc t words = alloc_from t.cursor words

let charge_fetches t ~op_addr ~slots ~count =
  (* Dynamic instruction charges execute within the stub's code footprint,
     wrapping around like a loop inside it. *)
  let nslots = max 1 slots in
  for i = 0 to count - 1 do
    Machine.fetch t.machine ~addr:(op_addr + (i mod nslots * 4))
  done

let load t addr = Machine.load t.machine ~addr
let store t addr = Machine.store t.machine ~addr

let register_hash_table t ~table ~proc =
  let nbuckets = 4096 in
  let buckets_addr = alloc t nbuckets in
  Hashtbl.replace t.tables table
    (Hash_table { counts = Hashtbl.create 64; buckets_addr; nbuckets });
  Hashtbl.replace t.table_of_proc proc table

let register_cct_table t ~table ~proc ~npaths =
  Hashtbl.replace t.tables table (Cct_table { npaths });
  Hashtbl.replace t.table_of_proc proc table

let cct_call t ~site ~indirect ~op_addr =
  charge_fetches t ~op_addr ~slots:2 ~count:2;
  t.gcsp <- Some (site, indirect)

let cct_enter t ~proc_name ~nsites ~op_addr ~fp =
  let site, indirect =
    match t.gcsp with
    | Some (s, i) -> (s, i)
    | None -> (0, false)  (* the initial call of main, through root slot 0 *)
  in
  let parent = Cct.current t.cct in
  let parent_data = Cct.data parent in
  (* Load the callee slot (the tag dispatch of Figure 7). *)
  load t (parent_data.addr + ((5 + site) * word));
  let slot_hit = Cct.has_edge t.cct ~proc:proc_name ~site in
  let before = Cct.num_nodes t.cct in
  let kind = if indirect then Cct.Indirect else Cct.Direct in
  let node = Cct.enter t.cct ~proc:proc_name ~nsites ~site ~kind in
  let data = Cct.data node in
  let allocated = Cct.num_nodes t.cct > before in
  (* Cost model: 8 base instructions; a slot miss walks the parent chain
     looking for a recursive instance (3 instructions per ancestor, the
     whole chain when nothing is found and a record is allocated); a fresh
     record costs initialising stores for its header and slots. *)
  let ancestors_walked =
    if slot_hit then 0
    else if allocated then Cct.node_depth parent + 1
    else Cct.node_depth parent - Cct.node_depth node + 1
  in
  charge_fetches t ~op_addr ~slots:14 ~count:(8 + (3 * ancestors_walked));
  (* The walk itself loads each visited ancestor's header. *)
  let rec touch n remaining =
    if remaining > 0 then begin
      load t (Cct.data n : record_data).addr;
      match Cct.parent n with
      | Some p -> touch p (remaining - 1)
      | None -> ()
    end
  in
  touch parent ancestors_walked;
  if allocated then
    for i = 0 to record_words nsites - 1 do
      store t (data.addr + (i * word))
    done;
  (* Store the resolved pointer back into the slot, bump the entry count,
     save the old gCSP in the frame's linkage area. *)
  store t (parent_data.addr + ((5 + site) * word));
  data.metrics.(0) <- data.metrics.(0) + 1;
  store t (data.addr + (2 * word));
  store t fp;
  t.shadow <-
    { saved_gcsp = t.gcsp; pic0_at_entry = 0; pic1_at_entry = 0 } :: t.shadow;
  t.gcsp <- None

let cct_exit t ~op_addr ~fp =
  charge_fetches t ~op_addr ~slots:3 ~count:3;
  load t fp;
  (match t.shadow with
  | act :: rest ->
      t.gcsp <- act.saved_gcsp;
      t.shadow <- rest
  | [] -> invalid_arg "Runtime.cct_exit: no active instrumented frame");
  Cct.exit t.cct

let counters t = Machine.counters t.machine

let cct_metric_enter t ~op_addr ~fp =
  charge_fetches t ~op_addr ~slots:4 ~count:4;
  (match t.shadow with
  | act :: _ ->
      act.pic0_at_entry <- Counters.read_pic (counters t) 0;
      act.pic1_at_entry <- Counters.read_pic (counters t) 1
  | [] -> invalid_arg "Runtime.cct_metric_enter: no active frame");
  store t (fp + word);
  store t (fp + (2 * word))

let mask32 = 0xFFFF_FFFF

let accumulate_deltas t act =
  let node = Cct.current t.cct in
  let data = Cct.data node in
  let c = counters t in
  let d0 = (Counters.read_pic c 0 - act.pic0_at_entry) land mask32 in
  let d1 = (Counters.read_pic c 1 - act.pic1_at_entry) land mask32 in
  data.metrics.(1) <- data.metrics.(1) + d0;
  data.metrics.(2) <- data.metrics.(2) + d1;
  (* Two read-modify-write accumulators in the record. *)
  load t (data.addr + (3 * word));
  store t (data.addr + (3 * word));
  load t (data.addr + (4 * word));
  store t (data.addr + (4 * word))

let cct_metric_exit t ~op_addr ~fp =
  charge_fetches t ~op_addr ~slots:10 ~count:10;
  load t (fp + word);
  load t (fp + (2 * word));
  match t.shadow with
  | act :: _ -> accumulate_deltas t act
  | [] -> invalid_arg "Runtime.cct_metric_exit: no active frame"

let cct_metric_backedge t ~op_addr ~fp =
  charge_fetches t ~op_addr ~slots:12 ~count:12;
  load t (fp + word);
  load t (fp + (2 * word));
  match t.shadow with
  | act :: _ ->
      accumulate_deltas t act;
      let c = counters t in
      act.pic0_at_entry <- Counters.read_pic c 0;
      act.pic1_at_entry <- Counters.read_pic c 1;
      store t (fp + word);
      store t (fp + (2 * word))
  | [] -> invalid_arg "Runtime.cct_metric_backedge: no active frame"

let find_table t table =
  match Hashtbl.find_opt t.tables table with
  | Some info -> info
  | None ->
      invalid_arg (Printf.sprintf "Runtime: unregistered table %d" table)

let bucket_addr base nbuckets key =
  (* Knuth multiplicative hash; deterministic across runs. *)
  base + (key * 2654435761 land max_int mod nbuckets * word)

let path_commit_hash t ~table ~key ~hw ~op_addr =
  match find_table t table with
  | Cct_table _ -> invalid_arg "Runtime.path_commit_hash: wrong table kind"
  | Hash_table { counts; buckets_addr; nbuckets } ->
      let slots = if hw then 18 else 12 in
      charge_fetches t ~op_addr ~slots ~count:slots;
      let baddr = bucket_addr buckets_addr nbuckets key in
      load t baddr;
      let cells =
        match Hashtbl.find_opt counts key with
        | Some c -> c
        | None ->
            let c = { freq = 0; m0 = 0; m1 = 0 } in
            Hashtbl.replace counts key c;
            (* A new chain entry: 3 cells + link. *)
            ignore (alloc t 4);
            c
      in
      cells.freq <- cells.freq + 1;
      store t baddr;
      if hw then begin
        let c = counters t in
        cells.m0 <- cells.m0 + Counters.read_pic c 0;
        cells.m1 <- cells.m1 + Counters.read_pic c 1;
        load t (baddr + word);
        store t (baddr + word);
        Counters.zero_pics c
      end

let path_commit_cct t ~table ~key ~op_addr =
  match find_table t table with
  | Hash_table _ -> invalid_arg "Runtime.path_commit_cct: wrong table kind"
  | Cct_table { npaths } ->
      charge_fetches t ~op_addr ~slots:10 ~count:10;
      let node = Cct.current t.cct in
      let data = Cct.data node in
      let cap = min npaths 4096 in
      if data.ptable_addr = 0 then
        (* First path committed in this context: allocate the record's
           table (capped, as PP's hashing caps path-rich procedures). *)
        data.ptable_addr <- alloc t cap;
      let cell = data.ptable_addr + (key mod cap * word) in
      load t cell;
      store t cell;
      (match Hashtbl.find_opt data.paths key with
      | Some r -> incr r
      | None -> Hashtbl.replace data.paths key (ref 1))

let cct t = t.cct

let hash_table_counts t ~table =
  match Hashtbl.find_opt t.tables table with
  | Some (Hash_table { counts; _ }) ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  | Some (Cct_table _) | None -> raise Not_found

let prof_bytes_allocated t = t.cursor.allocated
