type t =
  | INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW_INT
  | KW_FLOAT
  | KW_VOID
  | KW_FUNPTR
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_BREAK
  | KW_CONTINUE
  | KW_RETURN
  | KW_PRINT
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | ASSIGN
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMPAMP
  | BARBAR
  | BANG
  | AMP
  | EOF

let describe = function
  | INT_LIT n -> Printf.sprintf "integer %d" n
  | FLOAT_LIT x -> Printf.sprintf "float %g" x
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KW_INT -> "'int'"
  | KW_FLOAT -> "'float'"
  | KW_VOID -> "'void'"
  | KW_FUNPTR -> "'funptr'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_WHILE -> "'while'"
  | KW_FOR -> "'for'"
  | KW_BREAK -> "'break'"
  | KW_CONTINUE -> "'continue'"
  | KW_RETURN -> "'return'"
  | KW_PRINT -> "'print'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | ASSIGN -> "'='"
  | EQ -> "'=='"
  | NE -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | PERCENT -> "'%'"
  | AMPAMP -> "'&&'"
  | BARBAR -> "'||'"
  | BANG -> "'!'"
  | AMP -> "'&'"
  | EOF -> "end of file"
