(** Hand-written lexer over an in-memory source string. *)

(** [tokenize src] produces the token stream, each with its position.
    Comments are [//] to end of line and [/* ... */] (non-nesting).
    @raise Errors.Error on malformed input. *)
val tokenize : string -> (Token.t * Ast.pos) list
