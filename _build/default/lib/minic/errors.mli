(** Compilation diagnostics shared by the lexer, parser and typechecker. *)

exception Error of Ast.pos * string

(** @raise Error *)
val fail : Ast.pos -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** ["file.mc:3:14: message"]-style rendering. *)
val to_string : file:string -> Ast.pos -> string -> string
