(** Lowering from the typed AST to the IR.

    Conventions: integer parameters arrive in [r0..], float parameters in
    [f0..]; scalar locals live in fresh virtual registers (zero-initialised
    for determinism); local arrays live in the activation frame, addressed
    with [Frameaddr]; globals are addressed through [Iconst_sym].  Falling
    off the end of a function returns 0 / 0.0 / void. *)

val lower_func : Typed.tfunc -> Pp_ir.Proc.t

(** Globals of the typed program as IR program globals (sizes in words,
    literal initialisers evaluated). *)
val lower_globals : Ast.global_decl list -> Pp_ir.Program.global list
