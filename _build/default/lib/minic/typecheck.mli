(** Type checking and name resolution.

    MiniC's rules, briefly: [int] and [float] never mix implicitly (use
    [int(e)] / [float(e)]); [%] is integer-only; comparisons yield [int];
    [&&]/[||] are short-circuit over ints; a [funptr] holds [&f] for an [f]
    of type [(int, ..., int) -> int] and calling one type-checks its
    arguments as ints (arity is re-checked at run time by the VM); arrays
    are global (1-D/2-D) or local (1-D), indexed by ints, not assignable as
    wholes; locals are function-scoped and may not be redeclared.

    @raise Errors.Error with a position on any violation. *)
val check : Ast.program -> Typed.tprogram
