lib/minic/compile.ml: Ast Errors List Lower Parser Pp_ir Typecheck Typed
