lib/minic/typed.mli: Ast
