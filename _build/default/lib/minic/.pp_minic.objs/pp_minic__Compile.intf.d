lib/minic/compile.mli: Pp_ir
