lib/minic/typecheck.ml: Ast Errors Hashtbl List Option Typed
