lib/minic/lower.ml: Array Ast Hashtbl List Option Pp_ir Typed
