lib/minic/token.mli:
