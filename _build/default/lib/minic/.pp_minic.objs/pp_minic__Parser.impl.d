lib/minic/parser.ml: Array Ast Errors Lexer List Token
