lib/minic/errors.ml: Ast Format Printf
