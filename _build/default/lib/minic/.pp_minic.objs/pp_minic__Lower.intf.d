lib/minic/lower.mli: Ast Pp_ir Typed
