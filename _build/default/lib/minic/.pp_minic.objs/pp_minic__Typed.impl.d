lib/minic/typed.ml: Ast
