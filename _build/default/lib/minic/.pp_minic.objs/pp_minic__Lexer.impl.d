lib/minic/lexer.ml: Ast Errors List String Token
