lib/minic/errors.mli: Ast Format
