open Typed
module I = Pp_ir.Instr
module B = Pp_ir.Builder
module Block = Pp_ir.Block

type value = Ival of I.ireg | Fval of I.freg

let ival = function
  | Ival r -> r
  | Fval _ -> invalid_arg "Lower: expected an integer value"

let fval = function
  | Fval r -> r
  | Ival _ -> invalid_arg "Lower: expected a float value"

type loop_targets = {
  break_to : Block.label;
  continue_to : unit -> Block.label;  (* lazy: the for-step block *)
}

type ctx = {
  b : B.t;
  vars : (string, value) Hashtbl.t;  (* scalar locals/params -> register *)
  arrays : (string, int) Hashtbl.t;  (* local arrays -> frame byte offset *)
  mutable loops : loop_targets list;
  ret : Ast.ty;
}

(* --- expressions --- *)

let rec lower_expr ctx (e : texpr) : value =
  match e.edesc with
  | Tint_lit n ->
      let r = B.new_ireg ctx.b in
      B.emit ctx.b (I.Iconst (r, n));
      Ival r
  | Tfloat_lit x ->
      let f = B.new_freg ctx.b in
      B.emit ctx.b (I.Fconst (f, x));
      Fval f
  | Tvar (Slocal, name) -> Hashtbl.find ctx.vars name
  | Tvar (Sglobal, name) ->
      let base = B.new_ireg ctx.b in
      B.emit ctx.b (I.Iconst_sym (base, name));
      if e.ety = Ast.Tfloat then begin
        let f = B.new_freg ctx.b in
        B.emit ctx.b (I.Fload (f, base, 0));
        Fval f
      end
      else begin
        let r = B.new_ireg ctx.b in
        B.emit ctx.b (I.Load (r, base, 0));
        Ival r
      end
  | Tindex (st, name, dims, indices) ->
      let addr = element_addr ctx st name dims indices in
      if e.ety = Ast.Tfloat then begin
        let f = B.new_freg ctx.b in
        B.emit ctx.b (I.Fload (f, addr, 0));
        Fval f
      end
      else begin
        let r = B.new_ireg ctx.b in
        B.emit ctx.b (I.Load (r, addr, 0));
        Ival r
      end
  | Tunop (Ast.Neg, e1) when e.ety = Ast.Tfloat ->
      let src = fval (lower_expr ctx e1) in
      let zero = B.new_freg ctx.b in
      B.emit ctx.b (I.Fconst (zero, 0.0));
      let fd = B.new_freg ctx.b in
      B.emit ctx.b (I.Fbinop (I.Fsub, fd, zero, src));
      Fval fd
  | Tunop (Ast.Neg, e1) ->
      let src = ival (lower_expr ctx e1) in
      let zero = B.new_ireg ctx.b in
      B.emit ctx.b (I.Iconst (zero, 0));
      let rd = B.new_ireg ctx.b in
      B.emit ctx.b (I.Ibinop (I.Sub, rd, zero, src));
      Ival rd
  | Tunop (Ast.Not, e1) ->
      let src = ival (lower_expr ctx e1) in
      let rd = B.new_ireg ctx.b in
      B.emit ctx.b (I.Icmp_imm (I.Eq, rd, src, 0));
      Ival rd
  | Tbinop ((Ast.Land | Ast.Lor) as op, _, e1, e2) ->
      lower_short_circuit ctx op e1 e2
  | Tbinop (op, operand_ty, e1, e2) -> lower_binop ctx op operand_ty e1 e2
  | Tcall (name, args) -> lower_call ctx ~name args ~ret_ty:e.ety
  | Tcall_ind (target, args) ->
      let t = ival (lower_expr ctx target) in
      let arg_regs = List.map (fun a -> ival (lower_expr ctx a)) args in
      let rd = B.new_ireg ctx.b in
      B.emit_callind ctx.b ~target:t ~args:arg_regs ~fargs:[]
        ~ret:(I.Rint rd);
      Ival rd
  | Taddr_of name ->
      let r = B.new_ireg ctx.b in
      B.emit ctx.b (I.Iconst_sym (r, name));
      Ival r
  | Tcast (Ast.Tint, e1) ->
      let src = fval (lower_expr ctx e1) in
      let rd = B.new_ireg ctx.b in
      B.emit ctx.b (I.Ftoi (rd, src));
      Ival rd
  | Tcast (Ast.Tfloat, e1) ->
      let src = ival (lower_expr ctx e1) in
      let fd = B.new_freg ctx.b in
      B.emit ctx.b (I.Itof (fd, src));
      Fval fd
  | Tcast ((Ast.Tvoid | Ast.Tfunptr), _) -> assert false

and element_addr ctx st name dims indices =
  (* flat index: ((i * d2) + j) * 8 + base *)
  let flat =
    match (dims, indices) with
    | [ _ ], [ ix ] -> ival (lower_expr ctx ix)
    | [ _; d2 ], [ i; j ] ->
        let ri = ival (lower_expr ctx i) in
        let scaled = B.new_ireg ctx.b in
        B.emit ctx.b (I.Ibinop_imm (I.Mul, scaled, ri, d2));
        let rj = ival (lower_expr ctx j) in
        let sum = B.new_ireg ctx.b in
        B.emit ctx.b (I.Ibinop (I.Add, sum, scaled, rj));
        sum
    | _ -> assert false (* typechecker enforces arity *)
  in
  let byte_off = B.new_ireg ctx.b in
  B.emit ctx.b (I.Ibinop_imm (I.Shl, byte_off, flat, 3));
  let base = B.new_ireg ctx.b in
  (match st with
  | Sglobal -> B.emit ctx.b (I.Iconst_sym (base, name))
  | Slocal ->
      let off = Hashtbl.find ctx.arrays name in
      B.emit ctx.b (I.Frameaddr (base, off)));
  let addr = B.new_ireg ctx.b in
  B.emit ctx.b (I.Ibinop (I.Add, addr, base, byte_off));
  addr

and lower_binop ctx op operand_ty e1 e2 =
  match operand_ty with
  | Ast.Tfloat -> (
      let a = fval (lower_expr ctx e1) in
      let b = fval (lower_expr ctx e2) in
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
          let fop =
            match op with
            | Ast.Add -> I.Fadd
            | Ast.Sub -> I.Fsub
            | Ast.Mul -> I.Fmul
            | _ -> I.Fdiv
          in
          let fd = B.new_freg ctx.b in
          B.emit ctx.b (I.Fbinop (fop, fd, a, b));
          Fval fd
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
          let rd = B.new_ireg ctx.b in
          B.emit ctx.b (I.Fcmp (lower_cmp op, rd, a, b));
          Ival rd
      | Ast.Rem | Ast.Land | Ast.Lor -> assert false)
  | Ast.Tint | Ast.Tfunptr -> (
      let a = ival (lower_expr ctx e1) in
      let b = ival (lower_expr ctx e2) in
      match op with
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Rem ->
          let iop =
            match op with
            | Ast.Add -> I.Add
            | Ast.Sub -> I.Sub
            | Ast.Mul -> I.Mul
            | Ast.Div -> I.Div
            | _ -> I.Rem
          in
          let rd = B.new_ireg ctx.b in
          B.emit ctx.b (I.Ibinop (iop, rd, a, b));
          Ival rd
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
          let rd = B.new_ireg ctx.b in
          B.emit ctx.b (I.Icmp (lower_cmp op, rd, a, b));
          Ival rd
      | Ast.Land | Ast.Lor -> assert false)
  | Ast.Tvoid -> assert false

and lower_cmp = function
  | Ast.Eq -> I.Eq
  | Ast.Ne -> I.Ne
  | Ast.Lt -> I.Lt
  | Ast.Le -> I.Le
  | Ast.Gt -> I.Gt
  | Ast.Ge -> I.Ge
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Rem | Ast.Land | Ast.Lor ->
      assert false

and lower_short_circuit ctx op e1 e2 =
  let rd = B.new_ireg ctx.b in
  let a = ival (lower_expr ctx e1) in
  let eval2 = B.new_block ctx.b in
  let join = B.new_block ctx.b in
  (match op with
  | Ast.Land ->
      B.emit ctx.b (I.Iconst (rd, 0));
      B.terminate ctx.b (Block.Br (a, eval2, join))
  | Ast.Lor ->
      B.emit ctx.b (I.Iconst (rd, 1));
      B.terminate ctx.b (Block.Br (a, join, eval2))
  | _ -> assert false);
  B.switch_to ctx.b eval2;
  let b = ival (lower_expr ctx e2) in
  B.emit ctx.b (I.Icmp_imm (I.Ne, rd, b, 0));
  B.terminate ctx.b (Block.Jmp join);
  B.switch_to ctx.b join;
  Ival rd

and lower_call ctx ~name args ~ret_ty =
  (* Split evaluated arguments by register class, preserving relative order
     within each class (the calling convention). *)
  let vals = List.map (lower_expr ctx) args in
  let iargs =
    List.filter_map (function Ival r -> Some r | Fval _ -> None) vals
  in
  let fargs =
    List.filter_map (function Fval f -> Some f | Ival _ -> None) vals
  in
  match ret_ty with
  | Ast.Tfloat ->
      let fd = B.new_freg ctx.b in
      B.emit_call ctx.b ~callee:name ~args:iargs ~fargs ~ret:(I.Rfloat fd);
      Fval fd
  | Ast.Tint | Ast.Tfunptr ->
      let rd = B.new_ireg ctx.b in
      B.emit_call ctx.b ~callee:name ~args:iargs ~fargs ~ret:(I.Rint rd);
      Ival rd
  | Ast.Tvoid ->
      B.emit_call ctx.b ~callee:name ~args:iargs ~fargs ~ret:I.Rnone;
      (* A void value; never consumed (typechecker rejects it). *)
      Ival (-1)

(* --- statements ---
   [lower_stmts] returns whether control can fall off the end. *)

let rec lower_stmts ctx stmts =
  match stmts with
  | [] -> true
  | s :: rest ->
      if lower_stmt ctx s then lower_stmts ctx rest
      else
        (* Unreachable code after return/break/continue: drop it. *)
        false

and lower_stmt ctx (s : tstmt) : bool =
  match s with
  | TSdecl (ty, name, [], init) ->
      let v =
        match ty with
        | Ast.Tfloat ->
            let f = B.new_freg ctx.b in
            (match init with
            | Some e -> B.emit ctx.b (I.Fmov (f, fval (lower_expr ctx e)))
            | None -> B.emit ctx.b (I.Fconst (f, 0.0)));
            Fval f
        | Ast.Tint | Ast.Tfunptr ->
            let r = B.new_ireg ctx.b in
            (match init with
            | Some e -> B.emit ctx.b (I.Imov (r, ival (lower_expr ctx e)))
            | None -> B.emit ctx.b (I.Iconst (r, 0)));
            Ival r
        | Ast.Tvoid -> assert false
      in
      Hashtbl.replace ctx.vars name v;
      true
  | TSdecl (_, name, [ n ], _) ->
      let off = B.alloc_frame ctx.b ~words:n in
      Hashtbl.replace ctx.arrays name off;
      true
  | TSdecl (_, _, _, _) -> assert false
  | TSassign (TLvar (Slocal, _, name), e) ->
      (match (Hashtbl.find ctx.vars name, lower_expr ctx e) with
      | Ival dst, Ival src -> B.emit ctx.b (I.Imov (dst, src))
      | Fval dst, Fval src -> B.emit ctx.b (I.Fmov (dst, src))
      | Ival _, Fval _ | Fval _, Ival _ -> assert false);
      true
  | TSassign (TLvar (Sglobal, ty, name), e) ->
      let v = lower_expr ctx e in
      let base = B.new_ireg ctx.b in
      B.emit ctx.b (I.Iconst_sym (base, name));
      (match ty with
      | Ast.Tfloat -> B.emit ctx.b (I.Fstore (fval v, base, 0))
      | Ast.Tint | Ast.Tfunptr -> B.emit ctx.b (I.Store (ival v, base, 0))
      | Ast.Tvoid -> assert false);
      true
  | TSassign (TLindex (st, ty, name, dims, indices), e) ->
      let v = lower_expr ctx e in
      let addr = element_addr ctx st name dims indices in
      (match ty with
      | Ast.Tfloat -> B.emit ctx.b (I.Fstore (fval v, addr, 0))
      | Ast.Tint | Ast.Tfunptr -> B.emit ctx.b (I.Store (ival v, addr, 0))
      | Ast.Tvoid -> assert false);
      true
  | TSif (cond, then_b, else_b) -> lower_if ctx cond then_b else_b
  | TSwhile (cond, body) ->
      let head = B.new_block ctx.b in
      B.terminate ctx.b (Block.Jmp head);
      B.switch_to ctx.b head;
      let c = ival (lower_expr ctx cond) in
      let body_l = B.new_block ctx.b in
      let exit_l = B.new_block ctx.b in
      B.terminate ctx.b (Block.Br (c, body_l, exit_l));
      ctx.loops <-
        { break_to = exit_l; continue_to = (fun () -> head) } :: ctx.loops;
      B.switch_to ctx.b body_l;
      let falls = lower_stmts ctx body in
      if falls then B.terminate ctx.b (Block.Jmp head);
      ctx.loops <- List.tl ctx.loops;
      B.switch_to ctx.b exit_l;
      true
  | TSfor (init, cond, step, body) ->
      (match init with
      | Some i -> ignore (lower_stmt ctx i)
      | None -> ());
      let head = B.new_block ctx.b in
      B.terminate ctx.b (Block.Jmp head);
      B.switch_to ctx.b head;
      let c =
        match cond with
        | Some e -> ival (lower_expr ctx e)
        | None ->
            let r = B.new_ireg ctx.b in
            B.emit ctx.b (I.Iconst (r, 1));
            r
      in
      let body_l = B.new_block ctx.b in
      let exit_l = B.new_block ctx.b in
      B.terminate ctx.b (Block.Br (c, body_l, exit_l));
      (* The continue target is the step block, created on demand. *)
      let step_l = ref None in
      let continue_to () =
        match !step_l with
        | Some l -> l
        | None ->
            let l = B.new_block ctx.b in
            step_l := Some l;
            l
      in
      let continue_to =
        match step with Some _ -> continue_to | None -> fun () -> head
      in
      ctx.loops <- { break_to = exit_l; continue_to } :: ctx.loops;
      B.switch_to ctx.b body_l;
      let falls = lower_stmts ctx body in
      if falls then B.terminate ctx.b (Block.Jmp (continue_to ()));
      ctx.loops <- List.tl ctx.loops;
      (match (!step_l, step) with
      | Some l, Some st ->
          B.switch_to ctx.b l;
          ignore (lower_stmt ctx st);
          B.terminate ctx.b (Block.Jmp head)
      | None, _ | _, None -> ());
      B.switch_to ctx.b exit_l;
      true
  | TSbreak ->
      (match ctx.loops with
      | { break_to; _ } :: _ -> B.terminate ctx.b (Block.Jmp break_to)
      | [] -> assert false);
      false
  | TScontinue ->
      (match ctx.loops with
      | { continue_to; _ } :: _ ->
          B.terminate ctx.b (Block.Jmp (continue_to ()))
      | [] -> assert false);
      false
  | TSreturn None ->
      B.terminate ctx.b (Block.Ret Block.Ret_void);
      false
  | TSreturn (Some e) ->
      (match lower_expr ctx e with
      | Ival r -> B.terminate ctx.b (Block.Ret (Block.Ret_int r))
      | Fval f -> B.terminate ctx.b (Block.Ret (Block.Ret_float f)));
      false
  | TSexpr e ->
      ignore (lower_expr ctx e);
      true
  | TSprint e ->
      (match lower_expr ctx e with
      | Ival r -> B.emit ctx.b (I.Print_int r)
      | Fval f -> B.emit ctx.b (I.Print_float f));
      true

and lower_if ctx cond then_b else_b =
  let c = ival (lower_expr ctx cond) in
  if else_b = [] then begin
    let then_l = B.new_block ctx.b in
    let join = B.new_block ctx.b in
    B.terminate ctx.b (Block.Br (c, then_l, join));
    B.switch_to ctx.b then_l;
    let falls = lower_stmts ctx then_b in
    if falls then B.terminate ctx.b (Block.Jmp join);
    B.switch_to ctx.b join;
    true
  end
  else begin
    let then_l = B.new_block ctx.b in
    let else_l = B.new_block ctx.b in
    B.terminate ctx.b (Block.Br (c, then_l, else_l));
    B.switch_to ctx.b then_l;
    let falls_then = lower_stmts ctx then_b in
    let join = ref None in
    let get_join () =
      match !join with
      | Some l -> l
      | None ->
          let l = B.new_block ctx.b in
          join := Some l;
          l
    in
    if falls_then then B.terminate ctx.b (Block.Jmp (get_join ()));
    B.switch_to ctx.b else_l;
    let falls_else = lower_stmts ctx else_b in
    if falls_else then B.terminate ctx.b (Block.Jmp (get_join ()));
    match !join with
    | Some l ->
        B.switch_to ctx.b l;
        true
    | None -> false
  end

(* --- functions and globals --- *)

let lower_func (f : tfunc) =
  let iparams =
    List.length
      (List.filter
         (fun (ty, _) -> ty = Ast.Tint || ty = Ast.Tfunptr)
         f.tparams)
  in
  let fparams =
    List.length (List.filter (fun (ty, _) -> ty = Ast.Tfloat) f.tparams)
  in
  let returns =
    match f.tret with
    | Ast.Tint | Ast.Tfunptr -> Pp_ir.Proc.Returns_int
    | Ast.Tfloat -> Pp_ir.Proc.Returns_float
    | Ast.Tvoid -> Pp_ir.Proc.Returns_void
  in
  let b = B.create ~name:f.tfname ~iparams ~fparams ~returns in
  let ctx =
    { b; vars = Hashtbl.create 16; arrays = Hashtbl.create 4; loops = [];
      ret = f.tret }
  in
  (* Bind parameters to their arrival registers, per class. *)
  let next_i = ref 0 and next_f = ref 0 in
  List.iter
    (fun (ty, name) ->
      match ty with
      | Ast.Tfloat ->
          Hashtbl.replace ctx.vars name (Fval !next_f);
          incr next_f
      | Ast.Tint | Ast.Tfunptr ->
          Hashtbl.replace ctx.vars name (Ival !next_i);
          incr next_i
      | Ast.Tvoid -> assert false)
    f.tparams;
  ignore (B.new_block b);
  let falls = lower_stmts ctx f.tbody in
  if falls then begin
    match f.tret with
    | Ast.Tvoid -> B.terminate b (Block.Ret Block.Ret_void)
    | Ast.Tint | Ast.Tfunptr ->
        let r = B.new_ireg b in
        B.emit b (I.Iconst (r, 0));
        B.terminate b (Block.Ret (Block.Ret_int r))
    | Ast.Tfloat ->
        let f0 = B.new_freg b in
        B.emit b (I.Fconst (f0, 0.0));
        B.terminate b (Block.Ret (Block.Ret_float f0))
  end;
  B.finish b

let eval_literal (e : Ast.expr) =
  match e.Ast.edesc with
  | Ast.Int_lit n -> `Int n
  | Ast.Float_lit x -> `Float x
  | Ast.Unop (Ast.Neg, { Ast.edesc = Ast.Int_lit n; _ }) -> `Int (-n)
  | Ast.Unop (Ast.Neg, { Ast.edesc = Ast.Float_lit x; _ }) -> `Float (-.x)
  | _ -> assert false (* typechecker restricted initialisers to literals *)

let lower_globals globals =
  List.map
    (fun (g : Ast.global_decl) ->
      let size_words = List.fold_left ( * ) 1 g.gdims in
      let init =
        Option.map
          (fun gi ->
            let literals =
              match gi with
              | Ast.Gscalar e -> [ e ]
              | Ast.Glist es -> es
            in
            match g.gty with
            | Ast.Tfloat ->
                Pp_ir.Program.Init_floats
                  (Array.of_list
                     (List.map
                        (fun e ->
                          match eval_literal e with
                          | `Float x -> x
                          | `Int _ -> assert false)
                        literals))
            | Ast.Tint ->
                Pp_ir.Program.Init_ints
                  (Array.of_list
                     (List.map
                        (fun e ->
                          match eval_literal e with
                          | `Int n -> n
                          | `Float _ -> assert false)
                        literals))
            | Ast.Tfunptr | Ast.Tvoid -> assert false)
          g.ginit
      in
      { Pp_ir.Program.gname = g.gname; size_words; init })
    globals
