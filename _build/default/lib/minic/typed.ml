

type storage = Sglobal | Slocal

type texpr = { ety : Ast.ty; edesc : tdesc }

and tdesc =
  | Tint_lit of int
  | Tfloat_lit of float
  | Tvar of storage * string  
  | Tindex of storage * string * int list * texpr list
      
  | Tunop of Ast.unop * texpr
  | Tbinop of Ast.binop * Ast.ty * texpr * texpr
      
  | Tcall of string * texpr list
  | Tcall_ind of texpr * texpr list  
  | Taddr_of of string
  | Tcast of Ast.ty * texpr

type tlvalue =
  | TLvar of storage * Ast.ty * string
  | TLindex of storage * Ast.ty * string * int list * texpr list

type tstmt =
  | TSdecl of Ast.ty * string * int list * texpr option
  | TSassign of tlvalue * texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSfor of tstmt option * texpr option * tstmt option * tstmt list
  | TSbreak
  | TScontinue
  | TSreturn of texpr option
  | TSexpr of texpr
  | TSprint of texpr

type tfunc = {
  tfname : string;
  tparams : (Ast.ty * string) list;
  tret : Ast.ty;
  tbody : tstmt list;
}

type tprogram = { tglobals : Ast.global_decl list; tfuncs : tfunc list }
