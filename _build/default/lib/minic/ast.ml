type pos = { line : int; col : int }

type ty = Tint | Tfloat | Tvoid | Tfunptr

type unop = Neg | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land
  | Lor

type expr = { edesc : expr_desc; epos : pos }

and expr_desc =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr list
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
  | Addr_of of string
  | Cast of ty * expr

type lvalue = Lvar of string | Lindex of string * expr list

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Decl of ty * string * int list * expr option
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Break
  | Continue
  | Return of expr option
  | Expr of expr
  | Print of expr

type param = { pty : ty; pname : string }

type ginit = Gscalar of expr | Glist of expr list

type global_decl = {
  gty : ty;
  gname : string;
  gdims : int list;
  ginit : ginit option;
  gpos : pos;
}

type func = {
  fname : string;
  params : param list;
  ret : ty;
  body : stmt list;
  fpos : pos;
}

type program = { globals : global_decl list; funcs : func list }

let ty_name = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tvoid -> "void"
  | Tfunptr -> "funptr"

let pp_ty ppf ty = Format.pp_print_string ppf (ty_name ty)
