(** Recursive-descent parser for MiniC.

    @raise Errors.Error on syntax errors. *)
val parse : (Token.t * Ast.pos) list -> Ast.program

(** Convenience: [parse_string src] is [parse (Lexer.tokenize src)]. *)
val parse_string : string -> Ast.program
