(** Lexical tokens of MiniC. *)

type t =
  | INT_LIT of int
  | FLOAT_LIT of float
  | IDENT of string
  | KW_INT
  | KW_FLOAT
  | KW_VOID
  | KW_FUNPTR
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_BREAK
  | KW_CONTINUE
  | KW_RETURN
  | KW_PRINT
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | ASSIGN  (** [=] *)
  | EQ  (** [==] *)
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMPAMP
  | BARBAR
  | BANG
  | AMP
  | EOF

val describe : t -> string
