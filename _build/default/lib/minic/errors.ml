exception Error of Ast.pos * string

let fail pos fmt =
  Format.kasprintf (fun s -> raise (Error (pos, s))) fmt

let to_string ~file (pos : Ast.pos) msg =
  Printf.sprintf "%s:%d:%d: %s" file pos.line pos.col msg
