open Ast
open Typed

type var_info =
  | Scalar of storage * ty
  | Array of storage * ty * int list

type func_info = { sig_params : ty list; sig_ret : ty }

type env = {
  funcs : (string, func_info) Hashtbl.t;
  globals : (string, var_info) Hashtbl.t;
  locals : (string, var_info) Hashtbl.t;  (* per function *)
  ret : ty;
}

let fail = Errors.fail

let lookup_var env pos name =
  match Hashtbl.find_opt env.locals name with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some v -> v
      | None -> fail pos "unknown variable %s" name)

let rec check_expr env (e : expr) : texpr =
  let pos = e.epos in
  match e.edesc with
  | Int_lit n -> { ety = Tint; edesc = Tint_lit n }
  | Float_lit x -> { ety = Tfloat; edesc = Tfloat_lit x }
  | Var name -> (
      match lookup_var env pos name with
      | Scalar (st, ty) -> { ety = ty; edesc = Tvar (st, name) }
      | Array _ ->
          fail pos "array %s cannot be used as a scalar value" name)
  | Index (name, indices) -> (
      match lookup_var env pos name with
      | Scalar _ -> fail pos "%s is not an array" name
      | Array (st, ty, dims) ->
          if List.length indices <> List.length dims then
            fail pos "%s has %d dimension(s), %d index(es) given" name
              (List.length dims) (List.length indices);
          let tindices =
            List.map
              (fun ix ->
                let t = check_expr env ix in
                if t.ety <> Tint then
                  fail ix.epos "array index must be int, found %s"
                    (ty_name t.ety);
                t)
              indices
          in
          { ety = ty; edesc = Tindex (st, name, dims, tindices) })
  | Unop (Neg, e1) ->
      let t = check_expr env e1 in
      if t.ety <> Tint && t.ety <> Tfloat then
        fail pos "cannot negate a %s" (ty_name t.ety);
      { ety = t.ety; edesc = Tunop (Neg, t) }
  | Unop (Not, e1) ->
      let t = check_expr env e1 in
      if t.ety <> Tint then fail pos "'!' needs an int operand";
      { ety = Tint; edesc = Tunop (Not, t) }
  | Binop (op, e1, e2) -> check_binop env pos op e1 e2
  | Call (name, args) -> check_call env pos name args
  | Addr_of name -> (
      match Hashtbl.find_opt env.funcs name with
      | None -> fail pos "&%s: unknown function" name
      | Some info ->
          if info.sig_ret <> Tint
             || List.exists (fun t -> t <> Tint) info.sig_params then
            fail pos
              "&%s: only (int, ..., int) -> int functions can have their \
               address taken"
              name;
          { ety = Tfunptr; edesc = Taddr_of name })
  | Cast (to_ty, e1) ->
      let t = check_expr env e1 in
      (match (to_ty, t.ety) with
      | Tint, (Tint | Tfloat) | Tfloat, (Tint | Tfloat) -> ()
      | _ ->
          fail pos "cannot cast %s to %s" (ty_name t.ety) (ty_name to_ty));
      if to_ty = t.ety then t else { ety = to_ty; edesc = Tcast (to_ty, t) }

and check_binop env pos op e1 e2 =
  let t1 = check_expr env e1 in
  let t2 = check_expr env e2 in
  let operand_ty =
    if t1.ety <> t2.ety then
      fail pos "operand types differ: %s vs %s (no implicit conversions)"
        (ty_name t1.ety) (ty_name t2.ety)
    else t1.ety
  in
  let arith result_ok =
    if not result_ok then
      fail pos "operator not defined on %s" (ty_name operand_ty)
  in
  match op with
  | Add | Sub | Mul | Div ->
      arith (operand_ty = Tint || operand_ty = Tfloat);
      { ety = operand_ty; edesc = Tbinop (op, operand_ty, t1, t2) }
  | Rem ->
      arith (operand_ty = Tint);
      { ety = Tint; edesc = Tbinop (op, operand_ty, t1, t2) }
  | Eq | Ne ->
      arith (operand_ty = Tint || operand_ty = Tfloat
             || operand_ty = Tfunptr);
      { ety = Tint; edesc = Tbinop (op, operand_ty, t1, t2) }
  | Lt | Le | Gt | Ge ->
      arith (operand_ty = Tint || operand_ty = Tfloat);
      { ety = Tint; edesc = Tbinop (op, operand_ty, t1, t2) }
  | Land | Lor ->
      arith (operand_ty = Tint);
      { ety = Tint; edesc = Tbinop (op, operand_ty, t1, t2) }

and check_call env pos name args =
  (* A call through a funptr variable is indirect; otherwise the name must
     be a declared function. *)
  let funptr_var =
    match Hashtbl.find_opt env.locals name with
    | Some (Scalar (st, Tfunptr)) -> Some (st, name)
    | _ -> (
        match Hashtbl.find_opt env.globals name with
        | Some (Scalar (st, Tfunptr)) -> Some (st, name)
        | _ -> None)
  in
  match funptr_var with
  | Some (st, vname) ->
      let targs =
        List.map
          (fun a ->
            let t = check_expr env a in
            if t.ety <> Tint then
              fail a.epos "indirect call arguments must be int";
            t)
          args
      in
      {
        ety = Tint;
        edesc = Tcall_ind ({ ety = Tfunptr; edesc = Tvar (st, vname) }, targs);
      }
  | None -> (
      match Hashtbl.find_opt env.funcs name with
      | None -> fail pos "call to unknown function %s" name
      | Some info ->
          if List.length args <> List.length info.sig_params then
            fail pos "%s expects %d argument(s), %d given" name
              (List.length info.sig_params) (List.length args);
          let targs =
            List.map2
              (fun a pty ->
                let t = check_expr env a in
                if t.ety <> pty then
                  fail a.epos "argument has type %s, expected %s"
                    (ty_name t.ety) (ty_name pty);
                t)
              args info.sig_params
          in
          { ety = info.sig_ret; edesc = Tcall (name, targs) })

let check_lvalue env pos (lv : lvalue) =
  match lv with
  | Lvar name -> (
      match lookup_var env pos name with
      | Scalar (st, ty) -> (TLvar (st, ty, name), ty)
      | Array _ -> fail pos "cannot assign to array %s as a whole" name)
  | Lindex (name, indices) -> (
      match lookup_var env pos name with
      | Scalar _ -> fail pos "%s is not an array" name
      | Array (st, ty, dims) ->
          if List.length indices <> List.length dims then
            fail pos "%s has %d dimension(s), %d index(es) given" name
              (List.length dims) (List.length indices);
          let tindices =
            List.map
              (fun ix ->
                let t = check_expr env ix in
                if t.ety <> Tint then fail ix.epos "array index must be int";
                t)
              indices
          in
          (TLindex (st, ty, name, dims, tindices), ty))

let rec check_stmt env ~in_loop (s : stmt) : tstmt =
  let pos = s.spos in
  match s.sdesc with
  | Decl (ty, name, dims, init) ->
      if Hashtbl.mem env.locals name then
        fail pos "redeclaration of %s" name;
      if ty = Tvoid then fail pos "a variable cannot have type void";
      (match dims with
      | [] -> ()
      | [ n ] ->
          if n <= 0 then fail pos "array size must be positive";
          if ty = Tfunptr then fail pos "arrays of funptr are not supported";
          if init <> None then
            fail pos "local arrays cannot have initialisers"
      | _ -> fail pos "local arrays are one-dimensional");
      let tinit =
        Option.map
          (fun e ->
            let t = check_expr env e in
            if t.ety <> ty then
              fail e.epos "initialiser has type %s, expected %s"
                (ty_name t.ety) (ty_name ty);
            t)
          init
      in
      let info =
        if dims = [] then Scalar (Slocal, ty) else Array (Slocal, ty, dims)
      in
      Hashtbl.replace env.locals name info;
      TSdecl (ty, name, dims, tinit)
  | Assign (lv, e) ->
      let tlv, lty = check_lvalue env pos lv in
      let t = check_expr env e in
      if t.ety <> lty then
        fail pos "assignment of %s to %s lvalue" (ty_name t.ety)
          (ty_name lty);
      TSassign (tlv, t)
  | If (cond, then_b, else_b) ->
      let tc = check_expr env cond in
      if tc.ety <> Tint then fail cond.epos "condition must be int";
      TSif
        ( tc,
          List.map (check_stmt env ~in_loop) then_b,
          List.map (check_stmt env ~in_loop) else_b )
  | While (cond, body) ->
      let tc = check_expr env cond in
      if tc.ety <> Tint then fail cond.epos "condition must be int";
      TSwhile (tc, List.map (check_stmt env ~in_loop:true) body)
  | For (init, cond, step, body) ->
      let tinit = Option.map (check_stmt env ~in_loop) init in
      let tcond =
        Option.map
          (fun c ->
            let t = check_expr env c in
            if t.ety <> Tint then fail c.epos "condition must be int";
            t)
          cond
      in
      let tstep = Option.map (check_stmt env ~in_loop) step in
      TSfor (tinit, tcond, tstep,
             List.map (check_stmt env ~in_loop:true) body)
  | Break ->
      if not in_loop then fail pos "break outside a loop";
      TSbreak
  | Continue ->
      if not in_loop then fail pos "continue outside a loop";
      TScontinue
  | Return None ->
      if env.ret <> Tvoid then
        fail pos "this function must return a %s" (ty_name env.ret);
      TSreturn None
  | Return (Some e) ->
      let t = check_expr env e in
      if env.ret = Tvoid then fail pos "void function returns a value";
      if t.ety <> env.ret then
        fail pos "returning %s from a %s function" (ty_name t.ety)
          (ty_name env.ret);
      TSreturn (Some t)
  | Expr e -> (
      let t = check_expr env e in
      match t.edesc with
      | Tcall _ | Tcall_ind _ -> TSexpr t
      | _ -> fail pos "expression statements must be calls")
  | Print e ->
      let t = check_expr env e in
      if t.ety <> Tint && t.ety <> Tfloat then
        fail pos "print takes an int or float";
      TSprint t

let check_global (g : global_decl) =
  (match g.gdims with
  | [] | [ _ ] | [ _; _ ] -> ()
  | _ -> fail g.gpos "globals have at most two dimensions");
  List.iter
    (fun n -> if n <= 0 then fail g.gpos "array dimension must be positive")
    g.gdims;
  if g.gty = Tfunptr && g.gdims <> [] then
    fail g.gpos "arrays of funptr are not supported";
  let lit_ty (e : expr) =
    match e.edesc with
    | Int_lit _ -> Tint
    | Float_lit _ -> Tfloat
    | Unop (Neg, { edesc = Int_lit _; _ }) -> Tint
    | Unop (Neg, { edesc = Float_lit _; _ }) -> Tfloat
    | _ -> fail e.epos "global initialisers must be literals"
  in
  (match (g.ginit, g.gdims) with
  | None, _ -> ()
  | Some (Gscalar e), [] ->
      if lit_ty e <> g.gty then fail e.epos "initialiser type mismatch";
      if g.gty = Tfunptr then
        fail e.epos "funptr globals cannot be statically initialised"
  | Some (Gscalar _), _ :: _ ->
      fail g.gpos "array initialisers use { ... }"
  | Some (Glist _), [] -> fail g.gpos "scalar initialisers are bare literals"
  | Some (Glist es), dims ->
      let size = List.fold_left ( * ) 1 dims in
      if List.length es > size then
        fail g.gpos "too many initialisers (%d for %d elements)"
          (List.length es) size;
      List.iter
        (fun e ->
          if lit_ty e <> g.gty then fail e.epos "initialiser type mismatch")
        es)

let check (prog : program) : tprogram =
  let funcs = Hashtbl.create 32 in
  let globals = Hashtbl.create 32 in
  List.iter
    (fun (f : func) ->
      if Hashtbl.mem funcs f.fname then
        fail f.fpos "redefinition of function %s" f.fname;
      List.iter
        (fun p ->
          if p.pty = Tvoid then fail f.fpos "parameters cannot be void")
        f.params;
      Hashtbl.replace funcs f.fname
        { sig_params = List.map (fun p -> p.pty) f.params; sig_ret = f.ret })
    prog.funcs;
  List.iter
    (fun (g : global_decl) ->
      if Hashtbl.mem globals g.gname || Hashtbl.mem funcs g.gname then
        fail g.gpos "redefinition of %s" g.gname;
      check_global g;
      let info =
        if g.gdims = [] then Scalar (Sglobal, g.gty)
        else Array (Sglobal, g.gty, g.gdims)
      in
      Hashtbl.replace globals g.gname info)
    prog.globals;
  let tfuncs =
    List.map
      (fun (f : func) ->
        let locals = Hashtbl.create 16 in
        List.iter
          (fun p ->
            if Hashtbl.mem locals p.pname then
              fail f.fpos "duplicate parameter %s" p.pname;
            Hashtbl.replace locals p.pname (Scalar (Slocal, p.pty)))
          f.params;
        let env = { funcs; globals; locals; ret = f.ret } in
        let tbody = List.map (check_stmt env ~in_loop:false) f.body in
        {
          tfname = f.fname;
          tparams = List.map (fun p -> (p.pty, p.pname)) f.params;
          tret = f.ret;
          tbody;
        })
      prog.funcs
  in
  { tglobals = prog.globals; tfuncs }
