let program ~name src =
  ignore name;
  let ast = Parser.parse_string src in
  (match ast.Ast.funcs with
  | [] -> Errors.fail { Ast.line = 1; col = 1 } "no functions defined"
  | _ -> ());
  let typed = Typecheck.check ast in
  (match
     List.find_opt (fun f -> f.Typed.tfname = "main") typed.Typed.tfuncs
   with
  | None -> Errors.fail { Ast.line = 1; col = 1 } "no main function"
  | Some f ->
      if f.Typed.tparams <> [] || f.Typed.tret <> Ast.Tvoid then
        Errors.fail { Ast.line = 1; col = 1 } "main must be void main()");
  let procs = List.map Lower.lower_func typed.Typed.tfuncs in
  let globals = Lower.lower_globals typed.Typed.tglobals in
  let prog = Pp_ir.Program.make ~procs ~globals ~main:"main" in
  Pp_ir.Validate.run prog;
  prog
