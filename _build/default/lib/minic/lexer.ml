type state = {
  src : string;
  mutable offset : int;
  mutable line : int;
  mutable col : int;
}

let pos st = { Ast.line = st.line; col = st.col }

let peek st =
  if st.offset < String.length st.src then Some st.src.[st.offset] else None

let peek2 st =
  if st.offset + 1 < String.length st.src then Some st.src.[st.offset + 1]
  else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.offset <- st.offset + 1

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let keyword_of_ident = function
  | "int" -> Some Token.KW_INT
  | "float" -> Some Token.KW_FLOAT
  | "void" -> Some Token.KW_VOID
  | "funptr" -> Some Token.KW_FUNPTR
  | "if" -> Some Token.KW_IF
  | "else" -> Some Token.KW_ELSE
  | "while" -> Some Token.KW_WHILE
  | "for" -> Some Token.KW_FOR
  | "break" -> Some Token.KW_BREAK
  | "continue" -> Some Token.KW_CONTINUE
  | "return" -> Some Token.KW_RETURN
  | "print" -> Some Token.KW_PRINT
  | _ -> None

let rec skip_space_and_comments st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_space_and_comments st
  | Some '/' when peek2 st = Some '/' ->
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_space_and_comments st
  | Some '/' when peek2 st = Some '*' ->
      let start = pos st in
      advance st;
      advance st;
      let rec to_close () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> Errors.fail start "unterminated comment"
        | Some _, _ ->
            advance st;
            to_close ()
      in
      to_close ();
      skip_space_and_comments st
  | Some _ | None -> ()

let lex_number st =
  let start = st.offset in
  let p = pos st in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float =
    match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c -> true
    | Some '.', (Some _ | None) ->
        Errors.fail (pos st) "digit expected after decimal point"
    | _ -> false
  in
  if is_float then begin
    advance st;
    (* consume '.' *)
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    (* optional exponent *)
    (match peek st with
    | Some ('e' | 'E') ->
        advance st;
        (match peek st with
        | Some ('+' | '-') -> advance st
        | Some _ | None -> ());
        if not (match peek st with Some c -> is_digit c | None -> false)
        then Errors.fail (pos st) "malformed exponent";
        while (match peek st with Some c -> is_digit c | None -> false) do
          advance st
        done
    | Some _ | None -> ());
    let text = String.sub st.src start (st.offset - start) in
    (Token.FLOAT_LIT (float_of_string text), p)
  end
  else begin
    let text = String.sub st.src start (st.offset - start) in
    match int_of_string_opt text with
    | Some n -> (Token.INT_LIT n, p)
    | None -> Errors.fail p "integer literal %s too large" text
  end

let lex_ident st =
  let start = st.offset in
  let p = pos st in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.offset - start) in
  match keyword_of_ident text with
  | Some kw -> (kw, p)
  | None -> (Token.IDENT text, p)

let lex_punct st =
  let p = pos st in
  let two tok =
    advance st;
    advance st;
    (tok, p)
  in
  let one tok =
    advance st;
    (tok, p)
  in
  match (peek st, peek2 st) with
  | Some '=', Some '=' -> two Token.EQ
  | Some '!', Some '=' -> two Token.NE
  | Some '<', Some '=' -> two Token.LE
  | Some '>', Some '=' -> two Token.GE
  | Some '&', Some '&' -> two Token.AMPAMP
  | Some '|', Some '|' -> two Token.BARBAR
  | Some '=', _ -> one Token.ASSIGN
  | Some '!', _ -> one Token.BANG
  | Some '<', _ -> one Token.LT
  | Some '>', _ -> one Token.GT
  | Some '&', _ -> one Token.AMP
  | Some '(', _ -> one Token.LPAREN
  | Some ')', _ -> one Token.RPAREN
  | Some '{', _ -> one Token.LBRACE
  | Some '}', _ -> one Token.RBRACE
  | Some '[', _ -> one Token.LBRACKET
  | Some ']', _ -> one Token.RBRACKET
  | Some ',', _ -> one Token.COMMA
  | Some ';', _ -> one Token.SEMI
  | Some '+', _ -> one Token.PLUS
  | Some '-', _ -> one Token.MINUS
  | Some '*', _ -> one Token.STAR
  | Some '/', _ -> one Token.SLASH
  | Some '%', _ -> one Token.PERCENT
  | Some c, _ -> Errors.fail p "unexpected character %C" c
  | None, _ -> assert false

let tokenize src =
  let st = { src; offset = 0; line = 1; col = 1 } in
  let rec loop acc =
    skip_space_and_comments st;
    match peek st with
    | None -> List.rev ((Token.EOF, pos st) :: acc)
    | Some c when is_digit c -> loop (lex_number st :: acc)
    | Some c when is_ident_start c -> loop (lex_ident st :: acc)
    | Some _ -> loop (lex_punct st :: acc)
  in
  loop []
