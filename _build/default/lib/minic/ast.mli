(** Abstract syntax of MiniC, the small C-like language the workloads are
    written in.

    MiniC exists to stand in for the C and Fortran sources of SPEC95: it is
    just rich enough to express the paper's benchmark behaviours — integer
    and floating-point arithmetic, global (1-D/2-D) and local (1-D) arrays,
    loops, recursion, and function pointers for indirect calls. *)

type pos = { line : int; col : int }

type ty =
  | Tint
  | Tfloat
  | Tvoid  (** return type only *)
  | Tfunptr  (** pointer to a function of type (int, ..., int) -> int *)

type unop =
  | Neg  (** arithmetic negation, int or float *)
  | Not  (** logical negation, int *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem  (** int only *)
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Land  (** short-circuit *)
  | Lor  (** short-circuit *)

type expr = { edesc : expr_desc; epos : pos }

and expr_desc =
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Index of string * expr list  (** a\[i\] or a\[i\]\[j\] *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of string * expr list
      (** direct call, or indirect when the name is a funptr variable *)
  | Addr_of of string  (** [&f]: the address of a function *)
  | Cast of ty * expr  (** [int(e)] or [float(e)] *)

type lvalue =
  | Lvar of string
  | Lindex of string * expr list

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Decl of ty * string * int list * expr option
      (** [Decl (ty, name, dims, init)]: scalar when [dims = []];
          local arrays are 1-D and uninitialised *)
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
      (** init and step are restricted to assignments by the parser *)
  | Break
  | Continue
  | Return of expr option
  | Expr of expr  (** a call evaluated for effect *)
  | Print of expr  (** append to the program's output stream *)

type param = { pty : ty; pname : string }

(** Global initialiser. *)
type ginit =
  | Gscalar of expr  (** literal (possibly negated) *)
  | Glist of expr list

type global_decl = {
  gty : ty;
  gname : string;
  gdims : int list;  (** \[\] scalar, \[n\] 1-D, \[n; m\] 2-D *)
  ginit : ginit option;
  gpos : pos;
}

type func = {
  fname : string;
  params : param list;
  ret : ty;
  body : stmt list;
  fpos : pos;
}

type program = { globals : global_decl list; funcs : func list }

val pp_ty : Format.formatter -> ty -> unit
val ty_name : ty -> string
