(** The MiniC compiler driver: source text to a validated IR program. *)

(** [program ~name src] lexes, parses, typechecks, lowers and validates.
    [name] is used in diagnostics only.  The program must define
    [void main()].
    @raise Errors.Error on lexical/syntax/type errors
    @raise Pp_ir.Validate.Invalid if lowering produced invalid IR (a
    compiler bug, e.g. a block that cannot reach a return). *)
val program : name:string -> string -> Pp_ir.Program.t
