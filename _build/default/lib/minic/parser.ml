open Ast

type state = { tokens : (Token.t * pos) array; mutable cursor : int }

let current st = fst st.tokens.(st.cursor)
let current_pos st = snd st.tokens.(st.cursor)

let advance st =
  if st.cursor < Array.length st.tokens - 1 then st.cursor <- st.cursor + 1

let expect st tok =
  if current st = tok then advance st
  else
    Errors.fail (current_pos st) "expected %s, found %s" (Token.describe tok)
      (Token.describe (current st))

let expect_ident st =
  match current st with
  | Token.IDENT name ->
      advance st;
      name
  | t -> Errors.fail (current_pos st) "expected identifier, found %s"
           (Token.describe t)

let expect_int st =
  match current st with
  | Token.INT_LIT n ->
      advance st;
      n
  | t -> Errors.fail (current_pos st) "expected integer, found %s"
           (Token.describe t)

let data_type st =
  match current st with
  | Token.KW_INT ->
      advance st;
      Tint
  | Token.KW_FLOAT ->
      advance st;
      Tfloat
  | Token.KW_FUNPTR ->
      advance st;
      Tfunptr
  | t ->
      Errors.fail (current_pos st) "expected a type, found %s"
        (Token.describe t)

(* --- expressions --- *)

let rec expr st = lor_expr st

and lor_expr st =
  let left = land_expr st in
  if current st = Token.BARBAR then begin
    let p = current_pos st in
    advance st;
    let right = lor_expr st in
    { edesc = Binop (Lor, left, right); epos = p }
  end
  else left

and land_expr st =
  let left = eq_expr st in
  if current st = Token.AMPAMP then begin
    let p = current_pos st in
    advance st;
    let right = land_expr st in
    { edesc = Binop (Land, left, right); epos = p }
  end
  else left

and eq_expr st =
  let rec loop left =
    match current st with
    | Token.EQ | Token.NE ->
        let op = if current st = Token.EQ then Eq else Ne in
        let p = current_pos st in
        advance st;
        let right = rel_expr st in
        loop { edesc = Binop (op, left, right); epos = p }
    | _ -> left
  in
  loop (rel_expr st)

and rel_expr st =
  let rec loop left =
    match current st with
    | Token.LT | Token.LE | Token.GT | Token.GE ->
        let op =
          match current st with
          | Token.LT -> Lt
          | Token.LE -> Le
          | Token.GT -> Gt
          | _ -> Ge
        in
        let p = current_pos st in
        advance st;
        let right = add_expr st in
        loop { edesc = Binop (op, left, right); epos = p }
    | _ -> left
  in
  loop (add_expr st)

and add_expr st =
  let rec loop left =
    match current st with
    | Token.PLUS | Token.MINUS ->
        let op = if current st = Token.PLUS then Add else Sub in
        let p = current_pos st in
        advance st;
        let right = mul_expr st in
        loop { edesc = Binop (op, left, right); epos = p }
    | _ -> left
  in
  loop (mul_expr st)

and mul_expr st =
  let rec loop left =
    match current st with
    | Token.STAR | Token.SLASH | Token.PERCENT ->
        let op =
          match current st with
          | Token.STAR -> Mul
          | Token.SLASH -> Div
          | _ -> Rem
        in
        let p = current_pos st in
        advance st;
        let right = unary_expr st in
        loop { edesc = Binop (op, left, right); epos = p }
    | _ -> left
  in
  loop (unary_expr st)

and unary_expr st =
  match current st with
  | Token.MINUS ->
      let p = current_pos st in
      advance st;
      { edesc = Unop (Neg, unary_expr st); epos = p }
  | Token.BANG ->
      let p = current_pos st in
      advance st;
      { edesc = Unop (Not, unary_expr st); epos = p }
  | _ -> primary_expr st

and call_args st =
  expect st Token.LPAREN;
  let rec loop acc =
    if current st = Token.RPAREN then begin
      advance st;
      List.rev acc
    end
    else begin
      let e = expr st in
      match current st with
      | Token.COMMA ->
          advance st;
          loop (e :: acc)
      | Token.RPAREN ->
          advance st;
          List.rev (e :: acc)
      | t ->
          Errors.fail (current_pos st) "expected ',' or ')', found %s"
            (Token.describe t)
    end
  in
  loop []

and index_list st =
  let rec loop acc =
    if current st = Token.LBRACKET then begin
      advance st;
      let e = expr st in
      expect st Token.RBRACKET;
      loop (e :: acc)
    end
    else List.rev acc
  in
  loop []

and primary_expr st =
  let p = current_pos st in
  match current st with
  | Token.INT_LIT n ->
      advance st;
      { edesc = Int_lit n; epos = p }
  | Token.FLOAT_LIT x ->
      advance st;
      { edesc = Float_lit x; epos = p }
  | Token.LPAREN ->
      advance st;
      let e = expr st in
      expect st Token.RPAREN;
      e
  | Token.AMP ->
      advance st;
      let name = expect_ident st in
      { edesc = Addr_of name; epos = p }
  | Token.KW_INT ->
      advance st;
      let e =
        let _ = expect st Token.LPAREN in
        let e = expr st in
        expect st Token.RPAREN;
        e
      in
      { edesc = Cast (Tint, e); epos = p }
  | Token.KW_FLOAT ->
      advance st;
      let e =
        let _ = expect st Token.LPAREN in
        let e = expr st in
        expect st Token.RPAREN;
        e
      in
      { edesc = Cast (Tfloat, e); epos = p }
  | Token.IDENT name -> (
      advance st;
      match current st with
      | Token.LPAREN -> { edesc = Call (name, call_args st); epos = p }
      | Token.LBRACKET ->
          let idx = index_list st in
          { edesc = Index (name, idx); epos = p }
      | _ -> { edesc = Var name; epos = p })
  | t ->
      Errors.fail p "expected an expression, found %s" (Token.describe t)

(* --- statements --- *)

let lvalue_of_expr (e : expr) =
  match e.edesc with
  | Var name -> Lvar name
  | Index (name, idx) -> Lindex (name, idx)
  | _ -> Errors.fail e.epos "this expression cannot be assigned to"

(* An assignment or a call, without the trailing semicolon (shared by
   statements and for-headers). *)
let rec simple_stmt st =
  let p = current_pos st in
  let e = expr st in
  match current st with
  | Token.ASSIGN ->
      advance st;
      let rhs = expr st in
      { sdesc = Assign (lvalue_of_expr e, rhs); spos = p }
  | _ -> (
      match e.edesc with
      | Call _ -> { sdesc = Expr e; spos = p }
      | _ ->
          Errors.fail p
            "expected an assignment or a call statement")

and stmt st =
  let p = current_pos st in
  match current st with
  | Token.KW_INT | Token.KW_FLOAT | Token.KW_FUNPTR ->
      (* A declaration — unless it is a cast expression statement, which
         MiniC does not allow at statement head. *)
      let ty = data_type st in
      let name = expect_ident st in
      let dims =
        if current st = Token.LBRACKET then begin
          advance st;
          let n = expect_int st in
          expect st Token.RBRACKET;
          [ n ]
        end
        else []
      in
      let init =
        if current st = Token.ASSIGN then begin
          advance st;
          Some (expr st)
        end
        else None
      in
      expect st Token.SEMI;
      { sdesc = Decl (ty, name, dims, init); spos = p }
  | Token.KW_IF ->
      advance st;
      expect st Token.LPAREN;
      let cond = expr st in
      expect st Token.RPAREN;
      let then_branch = block st in
      let else_branch =
        if current st = Token.KW_ELSE then begin
          advance st;
          if current st = Token.KW_IF then [ stmt st ] else block st
        end
        else []
      in
      { sdesc = If (cond, then_branch, else_branch); spos = p }
  | Token.KW_WHILE ->
      advance st;
      expect st Token.LPAREN;
      let cond = expr st in
      expect st Token.RPAREN;
      let body = block st in
      { sdesc = While (cond, body); spos = p }
  | Token.KW_FOR ->
      advance st;
      expect st Token.LPAREN;
      let init =
        if current st = Token.SEMI then None else Some (simple_stmt st)
      in
      expect st Token.SEMI;
      let cond = if current st = Token.SEMI then None else Some (expr st) in
      expect st Token.SEMI;
      let step =
        if current st = Token.RPAREN then None else Some (simple_stmt st)
      in
      expect st Token.RPAREN;
      let body = block st in
      { sdesc = For (init, cond, step, body); spos = p }
  | Token.KW_BREAK ->
      advance st;
      expect st Token.SEMI;
      { sdesc = Break; spos = p }
  | Token.KW_CONTINUE ->
      advance st;
      expect st Token.SEMI;
      { sdesc = Continue; spos = p }
  | Token.KW_RETURN ->
      advance st;
      let v = if current st = Token.SEMI then None else Some (expr st) in
      expect st Token.SEMI;
      { sdesc = Return v; spos = p }
  | Token.KW_PRINT ->
      advance st;
      expect st Token.LPAREN;
      let e = expr st in
      expect st Token.RPAREN;
      expect st Token.SEMI;
      { sdesc = Print e; spos = p }
  | _ ->
      let s = simple_stmt st in
      expect st Token.SEMI;
      s

and block st =
  expect st Token.LBRACE;
  let rec loop acc =
    if current st = Token.RBRACE then begin
      advance st;
      List.rev acc
    end
    else loop (stmt st :: acc)
  in
  loop []

(* --- top level --- *)

let literal_expr st =
  (* Global initialisers are literals, possibly negated. *)
  let p = current_pos st in
  let neg = current st = Token.MINUS in
  if neg then advance st;
  match current st with
  | Token.INT_LIT n ->
      advance st;
      let e = { edesc = Int_lit n; epos = p } in
      if neg then { edesc = Unop (Neg, e); epos = p } else e
  | Token.FLOAT_LIT x ->
      advance st;
      let e = { edesc = Float_lit x; epos = p } in
      if neg then { edesc = Unop (Neg, e); epos = p } else e
  | t ->
      Errors.fail p "expected a literal initialiser, found %s"
        (Token.describe t)

let global_init st =
  if current st <> Token.ASSIGN then None
  else begin
    advance st;
    if current st = Token.LBRACE then begin
      advance st;
      let rec loop acc =
        let e = literal_expr st in
        match current st with
        | Token.COMMA ->
            advance st;
            loop (e :: acc)
        | Token.RBRACE ->
            advance st;
            List.rev (e :: acc)
        | t ->
            Errors.fail (current_pos st) "expected ',' or '}', found %s"
              (Token.describe t)
      in
      Some (Glist (loop []))
    end
    else Some (Gscalar (literal_expr st))
  end

let parse tokens =
  let st = { tokens = Array.of_list tokens; cursor = 0 } in
  let globals = ref [] in
  let funcs = ref [] in
  let rec top () =
    if current st = Token.EOF then ()
    else begin
      let p = current_pos st in
      let ret_ty =
        match current st with
        | Token.KW_VOID ->
            advance st;
            Tvoid
        | _ -> data_type st
      in
      let name = expect_ident st in
      if current st = Token.LPAREN then begin
        (* function definition *)
        advance st;
        let rec params acc =
          if current st = Token.RPAREN then begin
            advance st;
            List.rev acc
          end
          else begin
            let pty = data_type st in
            let pname = expect_ident st in
            match current st with
            | Token.COMMA ->
                advance st;
                params ({ pty; pname } :: acc)
            | Token.RPAREN ->
                advance st;
                List.rev ({ pty; pname } :: acc)
            | t ->
                Errors.fail (current_pos st)
                  "expected ',' or ')', found %s" (Token.describe t)
          end
        in
        let params = params [] in
        let body = block st in
        funcs := { fname = name; params; ret = ret_ty; body; fpos = p }
                 :: !funcs
      end
      else begin
        (* global declaration *)
        if ret_ty = Tvoid then
          Errors.fail p "a global cannot have type void";
        let dims =
          let rec loop acc =
            if current st = Token.LBRACKET then begin
              advance st;
              let n = expect_int st in
              expect st Token.RBRACKET;
              loop (n :: acc)
            end
            else List.rev acc
          in
          loop []
        in
        let ginit = global_init st in
        expect st Token.SEMI;
        globals :=
          { gty = ret_ty; gname = name; gdims = dims; ginit; gpos = p }
          :: !globals
      end;
      top ()
    end
  in
  top ();
  { globals = List.rev !globals; funcs = List.rev !funcs }

let parse_string src = parse (Lexer.tokenize src)
