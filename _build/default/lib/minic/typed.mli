(** The typed abstract syntax produced by {!Typecheck} and consumed by
    {!Lower}.  Variable references are resolved to a storage class; every
    expression carries its type; arithmetic operators are already split by
    operand class. *)

type storage = Sglobal | Slocal

type texpr = { ety : Ast.ty; edesc : tdesc }

and tdesc =
  | Tint_lit of int
  | Tfloat_lit of float
  | Tvar of storage * string  (** scalar (int, float or funptr) *)
  | Tindex of storage * string * int list * texpr list
      (** array element: storage, name, dims, indices (ints) *)
  | Tunop of Ast.unop * texpr
  | Tbinop of Ast.binop * Ast.ty * texpr * texpr
      (** the [ty] is the operand type; the result type is [ety] *)
  | Tcall of string * texpr list
  | Tcall_ind of texpr * texpr list  (** target is a funptr expression *)
  | Taddr_of of string
  | Tcast of Ast.ty * texpr

type tlvalue =
  | TLvar of storage * Ast.ty * string
  | TLindex of storage * Ast.ty * string * int list * texpr list

type tstmt =
  | TSdecl of Ast.ty * string * int list * texpr option
  | TSassign of tlvalue * texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSfor of tstmt option * texpr option * tstmt option * tstmt list
  | TSbreak
  | TScontinue
  | TSreturn of texpr option
  | TSexpr of texpr
  | TSprint of texpr

type tfunc = {
  tfname : string;
  tparams : (Ast.ty * string) list;
  tret : Ast.ty;
  tbody : tstmt list;
}

type tprogram = { tglobals : Ast.global_decl list; tfuncs : tfunc list }
