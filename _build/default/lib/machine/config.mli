(** Microarchitecture parameters, defaulted to an UltraSPARC-I-like shape:
    16 KB direct-mapped write-through L1 D-cache with 32-byte lines, 16 KB
    2-way L1 I-cache, a small branch-prediction table, an 8-entry store
    buffer and pipelined FP with multi-cycle latency. *)

type cache_geometry = {
  size_bytes : int;
  line_bytes : int;
  associativity : int;  (** 1 = direct mapped *)
}

type t = {
  dcache : cache_geometry;
  icache : cache_geometry;
  dcache_miss_penalty : int;  (** cycles per load miss *)
  icache_miss_penalty : int;
  branch_table_size : int;  (** entries of 2-bit counters *)
  mispredict_penalty : int;
  store_buffer_entries : int;
  store_drain_cycles : int;  (** buffer-drain time of a store that hit *)
  store_drain_miss_cycles : int;
      (** drain time of a write miss — write-through and non-allocating, it
          goes all the way to memory and holds its slot far longer *)
  fp_add_latency : int;
  fp_mul_latency : int;
  fp_div_latency : int;
}

val default : t

(** @raise Invalid_argument when a geometry is not a power-of-two shape or a
    parameter is non-positive. *)
val validate : t -> t
