(** Store buffer occupancy model.

    Committed stores enter a FIFO of bounded capacity and drain to the cache
    at a fixed rate.  A store issued while the buffer is full stalls the
    pipeline until the oldest entry drains — the "store buffer stalls" of
    PLDI'97 Table 2. *)

type t

val create : entries:int -> t

(** [push t ~now ~drain] issues a store at cycle [now] that will take
    [drain] cycles to leave the buffer; returns the stall cycles incurred
    (0 when a slot is free). *)
val push : t -> now:int -> drain:int -> int

val clear : t -> unit

(** Entries still in flight at cycle [now] (for tests). *)
val occupancy : t -> now:int -> int
