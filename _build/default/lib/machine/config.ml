type cache_geometry = {
  size_bytes : int;
  line_bytes : int;
  associativity : int;
}

type t = {
  dcache : cache_geometry;
  icache : cache_geometry;
  dcache_miss_penalty : int;
  icache_miss_penalty : int;
  branch_table_size : int;
  mispredict_penalty : int;
  store_buffer_entries : int;
  store_drain_cycles : int;
  store_drain_miss_cycles : int;
  fp_add_latency : int;
  fp_mul_latency : int;
  fp_div_latency : int;
}

let default =
  {
    dcache = { size_bytes = 16 * 1024; line_bytes = 32; associativity = 1 };
    icache = { size_bytes = 16 * 1024; line_bytes = 32; associativity = 2 };
    dcache_miss_penalty = 8;
    icache_miss_penalty = 6;
    branch_table_size = 512;
    mispredict_penalty = 4;
    store_buffer_entries = 6;
    store_drain_cycles = 2;
    store_drain_miss_cycles = 16;
    fp_add_latency = 3;
    fp_mul_latency = 3;
    fp_div_latency = 12;
  }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let validate t =
  let check_geom what g =
    if not (is_power_of_two g.size_bytes) then
      invalid_arg (what ^ ": size must be a power of two");
    if not (is_power_of_two g.line_bytes) then
      invalid_arg (what ^ ": line size must be a power of two");
    if g.associativity <= 0 then invalid_arg (what ^ ": associativity <= 0");
    if g.size_bytes mod (g.line_bytes * g.associativity) <> 0 then
      invalid_arg (what ^ ": size not divisible by line*assoc")
  in
  check_geom "dcache" t.dcache;
  check_geom "icache" t.icache;
  if not (is_power_of_two t.branch_table_size) then
    invalid_arg "branch_table_size must be a power of two";
  List.iter
    (fun (what, v) -> if v <= 0 then invalid_arg (what ^ " <= 0"))
    [
      ("dcache_miss_penalty", t.dcache_miss_penalty);
      ("icache_miss_penalty", t.icache_miss_penalty);
      ("mispredict_penalty", t.mispredict_penalty);
      ("store_buffer_entries", t.store_buffer_entries);
      ("store_drain_cycles", t.store_drain_cycles);
      ("store_drain_miss_cycles", t.store_drain_miss_cycles);
      ("fp_add_latency", t.fp_add_latency);
      ("fp_mul_latency", t.fp_mul_latency);
      ("fp_div_latency", t.fp_div_latency);
    ];
  t
