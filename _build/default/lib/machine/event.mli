(** The sixteen countable hardware events.

    The UltraSPARC-I implements sixteen counters selectable onto two
    program-visible Performance Instrumentation Counters (PICs); this model
    keeps the same structure with a cleaned-up event set covering everything
    PLDI'97 Table 2 reports: cycles, instructions, D-cache read and write
    misses, I-cache misses, branch-mispredict stalls, store-buffer stalls
    and FP stalls. *)

type t =
  | Cycles
  | Instructions
  | Dcache_reads
  | Dcache_read_misses
  | Dcache_writes
  | Dcache_write_misses
  | Dcache_misses
      (** combined read+write misses — the "L1 data cache misses" metric of
          PLDI'97 Tables 4 and 5, countable on one PIC *)
  | Icache_refs
  | Icache_misses
  | Branches
  | Branch_mispredicts
  | Mispredict_stalls  (** stall cycles due to mispredicted branches *)
  | Store_buffer_stalls  (** stall cycles with the store buffer full *)
  | Fp_ops
  | Fp_stalls  (** stall cycles waiting on FP results *)
  | Loads
  | Stores

val count : int

(** Dense index in [0 .. count-1]. *)
val to_int : t -> int

(** @raise Invalid_argument outside [0 .. count-1]. *)
val of_int : int -> t

val all : t list
val name : t -> string

(** Inverse of {!name}. *)
val of_name : string -> t option

val pp : Format.formatter -> t -> unit
