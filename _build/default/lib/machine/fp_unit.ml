type t = {
  config : Config.t;
  mutable ready : int array;  (* per FP register: cycle when ready *)
}

type op_class = Fp_add | Fp_mul | Fp_div

let create config ~nregs = { config; ready = Array.make (max nregs 1) 0 }

let ensure t ~nregs =
  if nregs > Array.length t.ready then begin
    let ready = Array.make nregs 0 in
    Array.blit t.ready 0 ready 0 (Array.length t.ready);
    t.ready <- ready
  end

let latency t = function
  | Fp_add -> t.config.Config.fp_add_latency
  | Fp_mul -> t.config.Config.fp_mul_latency
  | Fp_div -> t.config.Config.fp_div_latency

let wait t ~now srcs =
  List.fold_left (fun acc s -> max acc (t.ready.(s) - now)) 0 srcs

let issue t ~now ~cls ~dst ~srcs =
  let stall = wait t ~now srcs in
  let start = now + stall in
  t.ready.(dst) <- start + latency t cls;
  stall

let use t ~now ~src = wait t ~now [ src ]

let define t ~now ~dst = t.ready.(dst) <- now

let clear t = Array.fill t.ready 0 (Array.length t.ready) 0
