type t = {
  config : Config.t;
  counters : Counters.t;
  dcache : Cache.t;
  icache : Cache.t;
  branch_pred : Branch_pred.t;
  store_buffer : Store_buffer.t;
  fp : Fp_unit.t;
  mutable cycles : int;
}

let create config =
  let config = Config.validate config in
  {
    config;
    counters = Counters.create ();
    dcache = Cache.create config.Config.dcache;
    icache = Cache.create config.Config.icache;
    branch_pred = Branch_pred.create ~table_size:config.Config.branch_table_size;
    store_buffer =
      Store_buffer.create ~entries:config.Config.store_buffer_entries;
    fp = Fp_unit.create config ~nregs:32;
    cycles = 0;
  }

let config t = t.config
let counters t = t.counters
let now t = t.cycles

let spend t event n =
  if n > 0 then begin
    t.cycles <- t.cycles + n;
    Counters.bump t.counters Event.Cycles n;
    Counters.bump t.counters event n
  end

let fetch t ~addr =
  Counters.bump t.counters Event.Instructions 1;
  Counters.bump t.counters Event.Icache_refs 1;
  t.cycles <- t.cycles + 1;
  Counters.bump t.counters Event.Cycles 1;
  if not (Cache.read t.icache addr) then begin
    Counters.bump t.counters Event.Icache_misses 1;
    t.cycles <- t.cycles + t.config.Config.icache_miss_penalty;
    Counters.bump t.counters Event.Cycles t.config.Config.icache_miss_penalty
  end

let load t ~addr =
  Counters.bump t.counters Event.Loads 1;
  Counters.bump t.counters Event.Dcache_reads 1;
  if not (Cache.read t.dcache addr) then begin
    Counters.bump t.counters Event.Dcache_read_misses 1;
    Counters.bump t.counters Event.Dcache_misses 1;
    t.cycles <- t.cycles + t.config.Config.dcache_miss_penalty;
    Counters.bump t.counters Event.Cycles t.config.Config.dcache_miss_penalty
  end

let store t ~addr =
  Counters.bump t.counters Event.Stores 1;
  Counters.bump t.counters Event.Dcache_writes 1;
  let hit = Cache.write t.dcache addr in
  if not hit then begin
    Counters.bump t.counters Event.Dcache_write_misses 1;
    Counters.bump t.counters Event.Dcache_misses 1
  end;
  let drain =
    if hit then t.config.Config.store_drain_cycles
    else t.config.Config.store_drain_miss_cycles
  in
  let stall = Store_buffer.push t.store_buffer ~now:t.cycles ~drain in
  spend t Event.Store_buffer_stalls stall

let branch t ~addr ~taken =
  Counters.bump t.counters Event.Branches 1;
  if not (Branch_pred.predict_and_update t.branch_pred ~addr ~taken) then begin
    Counters.bump t.counters Event.Branch_mispredicts 1;
    spend t Event.Mispredict_stalls t.config.Config.mispredict_penalty
  end

let fp_issue t ~cls ~dst ~srcs =
  Counters.bump t.counters Event.Fp_ops 1;
  let stall = Fp_unit.issue t.fp ~now:t.cycles ~cls ~dst ~srcs in
  spend t Event.Fp_stalls stall

let fp_use t ~src =
  let stall = Fp_unit.use t.fp ~now:t.cycles ~src in
  spend t Event.Fp_stalls stall

let fp_define t ~dst = Fp_unit.define t.fp ~now:t.cycles ~dst

let fp_frame t ~nregs =
  Fp_unit.ensure t.fp ~nregs;
  Fp_unit.clear t.fp

let reset t =
  Cache.clear t.dcache;
  Cache.clear t.icache;
  Branch_pred.clear t.branch_pred;
  Store_buffer.clear t.store_buffer;
  Fp_unit.clear t.fp;
  Counters.clear t.counters;
  t.cycles <- 0
