(** Branch direction predictor: a table of 2-bit saturating counters indexed
    by branch address, initialised to weakly-taken. *)

type t

val create : table_size:int -> t

(** [predict_and_update t ~addr ~taken] predicts the branch at [addr],
    updates the counter with the actual outcome, and returns whether the
    prediction was correct. *)
val predict_and_update : t -> addr:int -> taken:bool -> bool

val clear : t -> unit
