(* The FIFO holds each in-flight store's drain-completion cycle.  Drains are
   serialised: a store begins draining only when its predecessor finished,
   and no earlier than its own issue time. *)
type t = {
  entries : int;
  fifo : int Queue.t;
  mutable last_completion : int;
}

let create ~entries =
  if entries <= 0 then invalid_arg "Store_buffer.create: entries <= 0";
  { entries; fifo = Queue.create (); last_completion = 0 }

let drain_completed t ~now =
  while (not (Queue.is_empty t.fifo)) && Queue.peek t.fifo <= now do
    ignore (Queue.pop t.fifo)
  done

let push t ~now ~drain =
  if drain <= 0 then invalid_arg "Store_buffer.push: drain <= 0";
  drain_completed t ~now;
  let stall =
    if Queue.length t.fifo < t.entries then 0
    else begin
      (* Full: wait for the oldest entry. *)
      let oldest = Queue.pop t.fifo in
      oldest - now
    end
  in
  let issue = now + stall in
  let completion = max issue t.last_completion + drain in
  t.last_completion <- completion;
  Queue.add completion t.fifo;
  stall

let clear t =
  Queue.clear t.fifo;
  t.last_completion <- 0

let occupancy t ~now =
  drain_completed t ~now;
  Queue.length t.fifo
