(** The assembled microarchitecture model.

    The VM reports every fetch, load, store, branch and FP operation; the
    machine advances a cycle clock, applies stall penalties and maintains
    the event {!Counters}.  Timing is a one-instruction-per-cycle base plus
    penalty cycles — deliberately simple, but every penalty source the paper
    measures (D/I-cache misses, mispredicts, store-buffer pressure, FP
    latency) is present and is perturbed by instrumentation code exactly as
    on real hardware. *)

type t

val create : Config.t -> t
val config : t -> Config.t
val counters : t -> Counters.t

(** Current cycle count. *)
val now : t -> int

(** Fetch one instruction slot at a code address. *)
val fetch : t -> addr:int -> unit

(** Data read of the word at [addr]. *)
val load : t -> addr:int -> unit

(** Data write of the word at [addr]. *)
val store : t -> addr:int -> unit

(** Conditional branch at code address [addr] resolving to [taken]. *)
val branch : t -> addr:int -> taken:bool -> unit

val fp_issue :
  t -> cls:Fp_unit.op_class -> dst:int -> srcs:int list -> unit

(** A non-FP consumer (store, compare, conversion) waits on FP register
    [src]. *)
val fp_use : t -> src:int -> unit

(** FP register [dst] defined by a non-arithmetic producer. *)
val fp_define : t -> dst:int -> unit

(** Make room for a procedure's FP registers and clear their ready times
    (called on procedure entry; the model does not track FP pipelining
    across calls). *)
val fp_frame : t -> nregs:int -> unit

(** Reset all state: caches, predictor, buffers, counters, clock. *)
val reset : t -> unit
