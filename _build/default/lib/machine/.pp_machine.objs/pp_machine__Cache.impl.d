lib/machine/cache.ml: Array Config
