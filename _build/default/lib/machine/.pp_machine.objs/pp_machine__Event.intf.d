lib/machine/event.mli: Format
