lib/machine/machine.ml: Branch_pred Cache Config Counters Event Fp_unit Store_buffer
