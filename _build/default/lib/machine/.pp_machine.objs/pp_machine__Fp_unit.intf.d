lib/machine/fp_unit.mli: Config
