lib/machine/machine.mli: Config Counters Fp_unit
