lib/machine/store_buffer.mli:
