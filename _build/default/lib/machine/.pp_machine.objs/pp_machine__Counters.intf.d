lib/machine/counters.mli: Event
