lib/machine/counters.ml: Array Event List Printf
