lib/machine/config.ml: List
