lib/machine/store_buffer.ml: Queue
