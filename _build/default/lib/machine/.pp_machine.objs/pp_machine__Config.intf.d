lib/machine/config.mli:
