lib/machine/event.ml: Format List Printf
