lib/machine/fp_unit.ml: Array Config List
