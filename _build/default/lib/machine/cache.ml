type t = {
  line_shift : int;
  set_mask : int;
  ways : int;
  tags : int array;  (* sets * ways; -1 = invalid *)
  stamp : int array;  (* LRU recency stamps, parallel to tags *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (g : Config.cache_geometry) =
  let n_sets = g.size_bytes / (g.line_bytes * g.associativity) in
  {
    line_shift = log2 g.line_bytes;
    set_mask = n_sets - 1;
    ways = g.associativity;
    tags = Array.make (n_sets * g.associativity) (-1);
    stamp = Array.make (n_sets * g.associativity) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let sets t = (t.set_mask + 1 : int)

let find t addr =
  let line = addr lsr t.line_shift in
  let set = line land t.set_mask in
  let base = set * t.ways in
  let rec scan i =
    if i >= t.ways then None
    else if t.tags.(base + i) = line then Some (base + i)
    else scan (i + 1)
  in
  (base, line, scan 0)

let touch t slot =
  t.clock <- t.clock + 1;
  t.stamp.(slot) <- t.clock

let victim t base =
  (* Least-recently-used way in the set; empty ways are oldest of all since
     their stamp is 0 and the clock starts at 1. *)
  let best = ref base in
  for i = 1 to t.ways - 1 do
    if t.stamp.(base + i) < t.stamp.(!best) then best := base + i
  done;
  !best

let read t addr =
  t.accesses <- t.accesses + 1;
  let base, line, hit = find t addr in
  match hit with
  | Some slot ->
      touch t slot;
      true
  | None ->
      t.misses <- t.misses + 1;
      let slot = victim t base in
      t.tags.(slot) <- line;
      touch t slot;
      false

let write t addr =
  t.accesses <- t.accesses + 1;
  let _base, _line, hit = find t addr in
  match hit with
  | Some slot ->
      touch t slot;
      true
  | None ->
      t.misses <- t.misses + 1;
      false

let probe t addr =
  let _, _, hit = find t addr in
  hit <> None

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamp 0 (Array.length t.stamp) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.misses <- 0

let accesses t = t.accesses
let misses t = t.misses
