type t =
  | Cycles
  | Instructions
  | Dcache_reads
  | Dcache_read_misses
  | Dcache_writes
  | Dcache_write_misses
  | Dcache_misses
  | Icache_refs
  | Icache_misses
  | Branches
  | Branch_mispredicts
  | Mispredict_stalls
  | Store_buffer_stalls
  | Fp_ops
  | Fp_stalls
  | Loads
  | Stores

let count = 17

let to_int = function
  | Cycles -> 0
  | Instructions -> 1
  | Dcache_reads -> 2
  | Dcache_read_misses -> 3
  | Dcache_writes -> 4
  | Dcache_write_misses -> 5
  | Dcache_misses -> 6
  | Icache_refs -> 7
  | Icache_misses -> 8
  | Branches -> 9
  | Branch_mispredicts -> 10
  | Mispredict_stalls -> 11
  | Store_buffer_stalls -> 12
  | Fp_ops -> 13
  | Fp_stalls -> 14
  | Loads -> 15
  | Stores -> 16

let all =
  [
    Cycles;
    Instructions;
    Dcache_reads;
    Dcache_read_misses;
    Dcache_writes;
    Dcache_write_misses;
    Dcache_misses;
    Icache_refs;
    Icache_misses;
    Branches;
    Branch_mispredicts;
    Mispredict_stalls;
    Store_buffer_stalls;
    Fp_ops;
    Fp_stalls;
    Loads;
    Stores;
  ]

let of_int i =
  match List.nth_opt all i with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Event.of_int: %d" i)

let name = function
  | Cycles -> "cycles"
  | Instructions -> "insts"
  | Dcache_reads -> "dc_reads"
  | Dcache_read_misses -> "dc_read_miss"
  | Dcache_writes -> "dc_writes"
  | Dcache_write_misses -> "dc_write_miss"
  | Dcache_misses -> "dc_miss"
  | Icache_refs -> "ic_refs"
  | Icache_misses -> "ic_miss"
  | Branches -> "branches"
  | Branch_mispredicts -> "br_mispredict"
  | Mispredict_stalls -> "mispredict_stalls"
  | Store_buffer_stalls -> "store_buf_stalls"
  | Fp_ops -> "fp_ops"
  | Fp_stalls -> "fp_stalls"
  | Loads -> "loads"
  | Stores -> "stores"

let of_name s = List.find_opt (fun e -> name e = s) all

let pp ppf e = Format.pp_print_string ppf (name e)
