(** Hot-path and hot-procedure classification — the analyses behind Tables 4
    and 5 of the paper.

    Terminology (§6.4): with a metric of L1 data-cache misses, a path is
    {e hot} when it incurs at least [threshold] (default 1%) of all misses;
    hot paths split into {e dense} (miss ratio above the program average —
    misses per instruction) and {e sparse} (heavy execution, ordinary
    locality); everything else is {e cold}.  The same definitions, summed
    per procedure, classify procedures.

    The analysis assumes a profile collected with [pic0] = the miss metric
    and [pic1] = instructions, i.e. [m0] = misses and [m1] = instructions
    for every path. *)

type class_stats = {
  num : int;
  insts : int;
  misses : int;
}

type path_classes = {
  all : class_stats;
  dense : class_stats;
  sparse : class_stats;
  cold : class_stats;
}

val classify_paths : ?threshold:float -> Profile.t -> path_classes

type proc_class_stats = {
  procs : int;
  avg_paths_per_proc : float;  (** executed paths *)
  miss_fraction : float;
}

type proc_classes = {
  dense_procs : proc_class_stats;
  sparse_procs : proc_class_stats;
  cold_procs : proc_class_stats;
}

val classify_procs : ?threshold:float -> Profile.t -> proc_classes

(** Every (procedure, path sum) whose misses reach the threshold, sorted by
    decreasing misses. *)
val hot_paths :
  ?threshold:float -> Profile.t -> (string * int * Profile.path_metrics) list

(** §6.4.3: the average number of distinct executed paths that cross a basic
    block, over the blocks lying on hot paths — the reason statement-level
    miss counts cannot isolate path behaviour. *)
val avg_paths_through_hot_blocks : ?threshold:float -> Profile.t -> float

val pp_path_classes : Format.formatter -> path_classes -> unit
val pp_proc_classes : Format.formatter -> proc_classes -> unit
