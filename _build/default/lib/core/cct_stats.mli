(** CCT statistics, in the shape of PLDI'97 Table 3.

    Sizes use the paper's Figure-7 memory model: four-byte cells, a call
    record being [ID + parent + metrics + one callee slot per site], and
    8-byte list elements for the callee lists hanging off indirect-call
    slots (a list also holds the terminal offset cell). *)

type t = {
  nodes : int;  (** call records, root excluded *)
  size_bytes : int;  (** Figure-7 model over all records *)
  avg_node_size : float;
  avg_out_degree : float;  (** over interior nodes (≥ 1 tree child) *)
  height_avg : float;  (** mean leaf depth *)
  height_max : int;
  max_replication : int;  (** most records for any one procedure *)
  replicated_proc : string;  (** the procedure attaining it *)
  call_sites_total : int;  (** callee slots in all records *)
  call_sites_used : int;  (** slots with at least one callee *)
}

(** [compute ~metrics_per_node cct] walks the tree; [metrics_per_node] is
    the number of 4-byte metric counters each record carries in the size
    model. *)
val compute : metrics_per_node:int -> 'a Cct.t -> t

(** [call_sites_one_path ~site_paths cct] — how many used call sites are
    reached, within their record, by exactly one intraprocedural path:
    the sites where flow×context profiling equals full interprocedural path
    profiling (§6.3).  [site_paths node site] counts the distinct executed
    paths of [node]'s procedure that cross that site in that context. *)
val call_sites_one_path :
  site_paths:('a Cct.node -> int -> int) -> 'a Cct.t -> int

val pp : Format.formatter -> t -> unit
