type 'a node = {
  node_proc : string;
  node_data : 'a;
  mutable rev_children : 'a node list;
}

type 'a t = {
  make_data : proc:string -> 'a;
  max_nodes : int;
  root_node : 'a node;
  mutable stack : 'a node list;
  mutable n_nodes : int;
}

let create ?(max_nodes = 1_000_000) ~make_data () =
  let root_node =
    { node_proc = "<root>"; node_data = make_data ~proc:"<root>";
      rev_children = [] }
  in
  { make_data; max_nodes; root_node; stack = [ root_node ]; n_nodes = 1 }

let root t = t.root_node

let current t =
  match t.stack with n :: _ -> n | [] -> assert false

let enter t ~proc =
  if t.n_nodes >= t.max_nodes then
    invalid_arg "Dct.enter: node budget exhausted";
  let parent = current t in
  let node =
    { node_proc = proc; node_data = t.make_data ~proc; rev_children = [] }
  in
  parent.rev_children <- node :: parent.rev_children;
  t.n_nodes <- t.n_nodes + 1;
  t.stack <- node :: t.stack;
  node

let exit t =
  match t.stack with
  | [ _ ] | [] -> invalid_arg "Dct.exit: only the root is active"
  | _ :: rest -> t.stack <- rest

let proc n = n.node_proc
let data n = n.node_data
let children n = List.rev n.rev_children
let num_nodes t = t.n_nodes

let contexts t =
  let table = Hashtbl.create 64 in
  let rec visit chain node =
    let chain = node.node_proc :: chain in
    let key = List.rev chain in
    Hashtbl.replace table key
      (1 + Option.value ~default:0 (Hashtbl.find_opt table key));
    List.iter (visit chain) (children node)
  in
  List.iter (visit []) (children t.root_node);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort compare

let pp ppf t =
  let rec visit indent node =
    Format.fprintf ppf "%s%s@," (String.make indent ' ') node.node_proc;
    List.iter (visit (indent + 2)) (children node)
  in
  Format.fprintf ppf "@[<v>";
  List.iter (visit 0) (children t.root_node);
  Format.fprintf ppf "@]"
