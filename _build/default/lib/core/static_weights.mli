(** Static execution-frequency estimation for the optimized increment
    placement.

    BL96 chooses the spanning tree by edge frequency so that hot edges stay
    increment-free; without a prior profile it estimates frequency from
    loop structure.  This module provides that estimate: each natural loop
    multiplies its members' expected frequency by a constant factor. *)

module Digraph = Pp_graph.Digraph

(** [loop_depths cfg] — for every vertex, the number of natural loops
    containing it (ENTRY/EXIT are at depth 0).  A natural loop of backedge
    [v -> w] — counted only when [w] dominates [v] — is [w] plus every
    vertex that reaches [v] without passing through [w].  Retreating edges
    of irreducible regions contribute no loop. *)
val loop_depths : Pp_ir.Cfg.t -> int array

(** [edge_weight cfg] estimates an edge's execution frequency as
    [8^depth] (capped), where the edge's depth is the {e smaller} of its
    endpoints' loop depths (an edge entering or leaving a loop executes at
    the outer rate). *)
val edge_weight : Pp_ir.Cfg.t -> Digraph.edge -> int
