type class_stats = { num : int; insts : int; misses : int }

type path_classes = {
  all : class_stats;
  dense : class_stats;
  sparse : class_stats;
  cold : class_stats;
}

let zero = { num = 0; insts = 0; misses = 0 }

let add c (m : Profile.path_metrics) =
  { num = c.num + 1; insts = c.insts + m.m1; misses = c.misses + m.m0 }

type path_class = Dense | Sparse | Cold

(* Classification of one path given program totals. *)
let path_class ~threshold ~total_misses ~avg_ratio (m : Profile.path_metrics)
    =
  let hot =
    float_of_int m.m0 >= threshold *. float_of_int total_misses
    && m.m0 > 0
  in
  if not hot then Cold
  else
    let ratio =
      if m.m1 = 0 then infinity else float_of_int m.m0 /. float_of_int m.m1
    in
    if ratio > avg_ratio then Dense else Sparse

let totals prof =
  let misses = Profile.total_m0 prof in
  let insts = Profile.total_m1 prof in
  let avg_ratio =
    if insts = 0 then 0.0 else float_of_int misses /. float_of_int insts
  in
  (misses, insts, avg_ratio)

let classify_paths ?(threshold = 0.01) (prof : Profile.t) =
  let total_misses, _, avg_ratio = totals prof in
  List.fold_left
    (fun acc (p : Profile.proc_profile) ->
      List.fold_left
        (fun acc (_, m) ->
          let acc = { acc with all = add acc.all m } in
          match path_class ~threshold ~total_misses ~avg_ratio m with
          | Dense -> { acc with dense = add acc.dense m }
          | Sparse -> { acc with sparse = add acc.sparse m }
          | Cold -> { acc with cold = add acc.cold m })
        acc p.paths)
    { all = zero; dense = zero; sparse = zero; cold = zero }
    prof.procs

type proc_class_stats = {
  procs : int;
  avg_paths_per_proc : float;
  miss_fraction : float;
}

type proc_classes = {
  dense_procs : proc_class_stats;
  sparse_procs : proc_class_stats;
  cold_procs : proc_class_stats;
}

let classify_procs ?(threshold = 0.01) (prof : Profile.t) =
  let total_misses, _, avg_ratio = totals prof in
  let buckets = Hashtbl.create 4 in
  List.iter
    (fun (p : Profile.proc_profile) ->
      if p.paths <> [] then begin
        let misses =
          List.fold_left (fun acc (_, m) -> acc + m.Profile.m0) 0 p.paths
        in
        let insts =
          List.fold_left (fun acc (_, m) -> acc + m.Profile.m1) 0 p.paths
        in
        let cls =
          path_class ~threshold ~total_misses ~avg_ratio
            { Profile.freq = 0; m0 = misses; m1 = insts }
        in
        let npaths = List.length p.paths in
        let n, paths, miss =
          Option.value ~default:(0, 0, 0) (Hashtbl.find_opt buckets cls)
        in
        Hashtbl.replace buckets cls (n + 1, paths + npaths, miss + misses)
      end)
    prof.procs;
  let stats cls =
    let n, paths, miss =
      Option.value ~default:(0, 0, 0) (Hashtbl.find_opt buckets cls)
    in
    {
      procs = n;
      avg_paths_per_proc =
        (if n = 0 then 0.0 else float_of_int paths /. float_of_int n);
      miss_fraction =
        (if total_misses = 0 then 0.0
         else float_of_int miss /. float_of_int total_misses);
    }
  in
  {
    dense_procs = stats Dense;
    sparse_procs = stats Sparse;
    cold_procs = stats Cold;
  }

let hot_paths ?(threshold = 0.01) (prof : Profile.t) =
  let total_misses, _, avg_ratio = totals prof in
  List.concat_map
    (fun (p : Profile.proc_profile) ->
      List.filter_map
        (fun (sum, m) ->
          match path_class ~threshold ~total_misses ~avg_ratio m with
          | Dense | Sparse -> Some (p.proc, sum, m)
          | Cold -> None)
        p.paths)
    prof.procs
  |> List.sort (fun (_, _, a) (_, _, b) ->
         compare b.Profile.m0 a.Profile.m0)

let avg_paths_through_hot_blocks ?(threshold = 0.01) (prof : Profile.t) =
  let hot = hot_paths ~threshold prof in
  (* Per procedure: paths through each block (over all executed paths). *)
  let through = Hashtbl.create 64 in  (* (proc, block) -> count *)
  List.iter
    (fun (p : Profile.proc_profile) ->
      List.iter
        (fun (sum, _) ->
          let path = Ball_larus.decode p.numbering sum in
          List.iter
            (fun b ->
              let key = (p.proc, b) in
              Hashtbl.replace through key
                (1 + Option.value ~default:0 (Hashtbl.find_opt through key)))
            path.Ball_larus.blocks)
        p.paths)
    prof.procs;
  (* Blocks lying on hot paths. *)
  let hot_blocks = Hashtbl.create 64 in
  List.iter
    (fun (proc, sum, _) ->
      match Profile.find_proc prof proc with
      | None -> ()
      | Some p ->
          let path = Ball_larus.decode p.numbering sum in
          List.iter
            (fun b -> Hashtbl.replace hot_blocks (proc, b) ())
            path.Ball_larus.blocks)
    hot;
  let n = Hashtbl.length hot_blocks in
  if n = 0 then 0.0
  else begin
    let sum =
      Hashtbl.fold
        (fun key () acc ->
          acc + Option.value ~default:0 (Hashtbl.find_opt through key))
        hot_blocks 0
    in
    float_of_int sum /. float_of_int n
  end

let pp_class ppf name (c : class_stats) ~all =
  let pct part whole =
    if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole
  in
  Format.fprintf ppf "%-7s num=%-6d insts=%5.1f%% misses=%5.1f%%@," name
    c.num (pct c.insts all.insts) (pct c.misses all.misses)

let pp_path_classes ppf t =
  Format.fprintf ppf "@[<v>all     num=%-6d insts=%d misses=%d@," t.all.num
    t.all.insts t.all.misses;
  pp_class ppf "dense" t.dense ~all:t.all;
  pp_class ppf "sparse" t.sparse ~all:t.all;
  pp_class ppf "cold" t.cold ~all:t.all;
  Format.fprintf ppf "@]"

let pp_proc_classes ppf t =
  let row name (s : proc_class_stats) =
    Format.fprintf ppf "%-7s procs=%-4d paths/proc=%6.1f misses=%5.1f%%@,"
      name s.procs s.avg_paths_per_proc (100.0 *. s.miss_fraction)
  in
  Format.fprintf ppf "@[<v>";
  row "dense" t.dense_procs;
  row "sparse" t.sparse_procs;
  row "cold" t.cold_procs;
  Format.fprintf ppf "@]"
