(** The dynamic call tree: one vertex per procedure activation (Figure 4(a)).

    Precise but unbounded — its size is proportional to the number of calls
    — so it exists here as the reference structure for tests, figures and
    small examples, with an optional node budget to keep it honest. *)

type 'a t
type 'a node

(** @raise Invalid_argument if more than [max_nodes] activations occur. *)
val create : ?max_nodes:int -> make_data:(proc:string -> 'a) -> unit -> 'a t

val enter : 'a t -> proc:string -> 'a node
val exit : 'a t -> unit
val root : 'a t -> 'a node
val current : 'a t -> 'a node
val proc : _ node -> string
val data : 'a node -> 'a

(** Children in call order. *)
val children : 'a node -> 'a node list

val num_nodes : _ t -> int

(** All distinct calling contexts (root excluded from the chains), each with
    its number of occurrences.  The set of DCT paths equals the set of CCT
    vertices when there is no recursion — the property tests rely on this. *)
val contexts : _ t -> (string list * int) list

(** Depth-first pretty print, Figure-4 style. *)
val pp : Format.formatter -> _ t -> unit
