type t = {
  edges : (string * string, int ref) Hashtbl.t;
  entries : (string, int ref) Hashtbl.t;
  mutable stack : string list;  (* head = current procedure *)
}

let root_name = "<root>"

let create () =
  { edges = Hashtbl.create 64; entries = Hashtbl.create 64;
    stack = [ root_name ] }

let bump table key =
  match Hashtbl.find_opt table key with
  | Some r -> incr r
  | None -> Hashtbl.replace table key (ref 1)

let enter t ~proc =
  let caller = match t.stack with c :: _ -> c | [] -> assert false in
  bump t.edges (caller, proc);
  bump t.entries proc;
  t.stack <- proc :: t.stack

let exit t =
  match t.stack with
  | [ _ ] | [] -> invalid_arg "Dcg.exit: only the root is active"
  | _ :: rest -> t.stack <- rest

let procs t =
  Hashtbl.fold (fun p _ acc -> p :: acc) t.entries []
  |> List.sort_uniq compare

let calls t ~caller ~callee =
  match Hashtbl.find_opt t.edges (caller, callee) with
  | Some r -> !r
  | None -> 0

let edges t =
  Hashtbl.fold (fun (a, b) r acc -> (a, b, !r) :: acc) t.edges []
  |> List.sort compare

let activations t proc =
  match Hashtbl.find_opt t.entries proc with Some r -> !r | None -> 0

let path_exists t chain =
  let rec walk = function
    | a :: (b :: _ as rest) ->
        if calls t ~caller:a ~callee:b > 0 then walk rest else false
    | [ _ ] | [] -> true
  in
  walk chain
