type t = {
  dcg : Dcg.t;
  costs : (string, int ref) Hashtbl.t;
  mutable stack : string list;
}

let create () =
  { dcg = Dcg.create (); costs = Hashtbl.create 64; stack = [] }

let enter t ~proc =
  Dcg.enter t.dcg ~proc;
  t.stack <- proc :: t.stack

let exit t ~cost =
  match t.stack with
  | [] -> invalid_arg "Gprof.exit: no active procedure"
  | proc :: rest ->
      (match Hashtbl.find_opt t.costs proc with
      | Some r -> r := !r + cost
      | None -> Hashtbl.replace t.costs proc (ref cost));
      Dcg.exit t.dcg;
      t.stack <- rest

let self_cost t proc =
  match Hashtbl.find_opt t.costs proc with Some r -> !r | None -> 0

let calls t ~caller ~callee = Dcg.calls t.dcg ~caller ~callee

let attributed t ~caller ~callee =
  let total_calls = Dcg.activations t.dcg callee in
  if total_calls = 0 then 0.0
  else
    float_of_int (self_cost t callee)
    *. float_of_int (calls t ~caller ~callee)
    /. float_of_int total_calls

let procs t = Dcg.procs t.dcg
