(** Flow-sensitive profiles: per-procedure path tables with a frequency and
    two hardware-metric accumulators per executed path (the PICs' events,
    recorded in [pic0]/[pic1]). *)

module Event = Pp_machine.Event

type path_metrics = { freq : int; m0 : int; m1 : int }

type proc_profile = {
  proc : string;
  numbering : Ball_larus.t;
  paths : (int * path_metrics) list;  (** executed paths, by path sum *)
}

type t = {
  pic0 : Event.t;
  pic1 : Event.t;
  procs : proc_profile list;
}

val total_freq : t -> int
val total_m0 : t -> int
val total_m1 : t -> int

val find_proc : t -> string -> proc_profile option

(** Decode a path sum of a profiled procedure. *)
val decode : proc_profile -> int -> Ball_larus.path

(** Executed paths of one procedure sorted by decreasing [m0]. *)
val ranked_paths : proc_profile -> (int * path_metrics) list

(** Pretty-print the top [n] paths of every procedure. *)
val pp_top : n:int -> Format.formatter -> t -> unit
