type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ~columns ~rows =
  let ncols = List.length columns in
  let cells_of = function
    | `Row cells ->
        let n = List.length cells in
        if n >= ncols then cells
        else cells @ List.init (ncols - n) (fun _ -> "")
    | `Sep -> []
  in
  let widths =
    List.mapi
      (fun i (header, _) ->
        List.fold_left
          (fun acc row ->
            match row with
            | `Sep -> acc
            | `Row _ ->
                let cells = cells_of row in
                max acc (String.length (List.nth cells i)))
          (String.length header) rows)
      columns
  in
  let buf = Buffer.create 1024 in
  let total_width =
    List.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  let emit_row cells =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        let width = List.nth widths i in
        let _, align = List.nth columns i in
        Buffer.add_string buf (pad align width cell))
      cells;
    Buffer.add_char buf '\n'
  in
  emit_row (List.map fst columns);
  Buffer.add_string buf (String.make total_width '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      match row with
      | `Sep ->
          Buffer.add_string buf (String.make total_width '-');
          Buffer.add_char buf '\n'
      | `Row _ -> emit_row (cells_of row))
    rows;
  Buffer.contents buf

let sci n =
  if n < 1_000_000 then string_of_int n
  else begin
    let f = float_of_int n in
    let e = int_of_float (Float.log10 f) in
    Printf.sprintf "%.1fe%d" (f /. (10.0 ** float_of_int e)) e
  end

let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
let ratio x = Printf.sprintf "%.1f" x

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
