module Event = Pp_machine.Event

type path_metrics = { freq : int; m0 : int; m1 : int }

type proc_profile = {
  proc : string;
  numbering : Ball_larus.t;
  paths : (int * path_metrics) list;
}

type t = { pic0 : Event.t; pic1 : Event.t; procs : proc_profile list }

let sum_over f t =
  List.fold_left
    (fun acc p ->
      List.fold_left (fun acc (_, m) -> acc + f m) acc p.paths)
    0 t.procs

let total_freq = sum_over (fun m -> m.freq)
let total_m0 = sum_over (fun m -> m.m0)
let total_m1 = sum_over (fun m -> m.m1)

let find_proc t name = List.find_opt (fun p -> p.proc = name) t.procs

let decode p sum = Ball_larus.decode p.numbering sum

let ranked_paths p =
  List.sort (fun (_, a) (_, b) -> compare b.m0 a.m0) p.paths

let pp_top ~n ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun p ->
      if p.paths <> [] then begin
        Format.fprintf ppf "%s (%d executed paths):@," p.proc
          (List.length p.paths);
        List.iteri
          (fun i (sum, m) ->
            if i < n then
              Format.fprintf ppf "  path %d: freq=%d %a=%d %a=%d  [%a]@," sum
                m.freq Event.pp t.pic0 m.m0 Event.pp t.pic1 m.m1
                Ball_larus.pp_path (decode p sum))
          (ranked_paths p)
      end)
    t.procs;
  Format.fprintf ppf "@]"
