(** The dynamic call graph (Figure 4(b)): one vertex per procedure.

    Bounded by program size but context-blind: a vertex aggregates metrics
    over every activation, which is what produces the gprof problem and the
    infeasible paths the paper illustrates (e.g. M → D → A → C). *)

type t

val create : unit -> t
val enter : t -> proc:string -> unit
val exit : t -> unit

(** All procedures seen, sorted. *)
val procs : t -> string list

(** [calls t ~caller ~callee] is the traversal count of that edge (0 when
    absent). *)
val calls : t -> caller:string -> callee:string -> int

val edges : t -> (string * string * int) list

(** Entry count of a procedure over all contexts. *)
val activations : t -> string -> int

(** [path_exists t procs] — does the chain exist edge-by-edge in the graph,
    starting anywhere?  True for some chains that never occurred as a
    calling context (the infeasible-path weakness). *)
val path_exists : t -> string list -> bool
