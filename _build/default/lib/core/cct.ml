type call_kind = Direct | Indirect

type 'a node = {
  node_proc : string;
  node_nsites : int;
  node_parent : 'a node option;
  node_depth : int;
  node_id : int;
  node_data : 'a;
  mutable slots : 'a edge list array;
      (* per call site, most recently used first (the paper's move-to-front
         on indirect-call lists) *)
}

and 'a edge = {
  site : int;
  target : 'a node;
  is_backedge : bool;
  kind : call_kind;
  mutable calls : int;
}

type 'a t = {
  merge_call_sites : bool;
  make_data : proc:string -> nsites:int -> 'a;
  root_node : 'a node;
  mutable stack : 'a node list;  (* activation stack; head = current *)
  mutable nodes_rev : 'a node list;  (* allocation order, reversed *)
  mutable n_nodes : int;
}

let root_name = "<root>"

let create ?(merge_call_sites = false) ~make_data () =
  let root_node =
    {
      node_proc = root_name;
      node_nsites = 1;
      node_parent = None;
      node_depth = 0;
      node_id = 0;
      node_data = make_data ~proc:root_name ~nsites:1;
      slots = Array.make 1 [];
    }
  in
  {
    merge_call_sites;
    make_data;
    root_node;
    stack = [ root_node ];
    nodes_rev = [ root_node ];
    n_nodes = 1;
  }

let root t = t.root_node

let current t =
  match t.stack with
  | node :: _ -> node
  | [] -> assert false

let depth t = List.length t.stack - 1

let slot_index t (cr : 'a node) site =
  let idx = if t.merge_call_sites then 0 else site in
  if idx < 0 || idx >= Array.length cr.slots then
    invalid_arg
      (Printf.sprintf "Cct.enter: call site %d out of range for %s" site
         cr.node_proc);
  idx

let rec find_ancestor (node : 'a node option) proc =
  match node with
  | None -> None
  | Some n -> if n.node_proc = proc then node else find_ancestor n.node_parent proc

let enter t ~proc ~nsites ~site ~kind =
  let cr = current t in
  let idx = slot_index t cr site in
  let existing =
    List.find_opt (fun e -> e.target.node_proc = proc) cr.slots.(idx)
  in
  let edge =
    match existing with
    | Some e ->
        (* Move to the front of the slot list, as the paper's construction
           does for indirect-call lists. *)
        cr.slots.(idx) <-
          e :: List.filter (fun e' -> e' != e) cr.slots.(idx);
        e
    | None ->
        let target, is_backedge =
          match find_ancestor (Some cr) proc with
          | Some ancestor -> (ancestor, true)
          | None ->
              let node =
                {
                  node_proc = proc;
                  node_nsites = nsites;
                  node_parent = Some cr;
                  node_depth = cr.node_depth + 1;
                  node_id = t.n_nodes;
                  node_data = t.make_data ~proc ~nsites;
                  slots =
                    Array.make
                      (if t.merge_call_sites then 1 else max 1 nsites)
                      [];
                }
              in
              t.nodes_rev <- node :: t.nodes_rev;
              t.n_nodes <- t.n_nodes + 1;
              (node, false)
        in
        let e = { site; target; is_backedge; kind; calls = 0 } in
        cr.slots.(idx) <- e :: cr.slots.(idx);
        e
  in
  if edge.target.node_nsites <> nsites then
    invalid_arg
      (Printf.sprintf "Cct.enter: %s has %d sites, previously %d" proc nsites
         edge.target.node_nsites);
  edge.calls <- edge.calls + 1;
  t.stack <- edge.target :: t.stack;
  edge.target

let has_edge t ~proc ~site =
  let cr = current t in
  let idx = slot_index t cr site in
  List.exists (fun e -> e.target.node_proc = proc) cr.slots.(idx)

let exit t =
  match t.stack with
  | [ _ ] | [] -> invalid_arg "Cct.exit: only the root is active"
  | _ :: rest -> t.stack <- rest

let unwind_to_depth t d =
  let cur = depth t in
  if d > cur || d < 0 then
    invalid_arg
      (Printf.sprintf "Cct.unwind_to_depth: %d not in [0, %d]" d cur);
  for _ = 1 to cur - d do
    exit t
  done

let proc n = n.node_proc
let data n = n.node_data
let parent n = n.node_parent
let node_depth n = n.node_depth
let nsites n = n.node_nsites
let id n = n.node_id

let edges n =
  (* Slots in order; within a slot, first-use order (the list is
     most-recently-used-first, so restore insertion order by reversing). *)
  Array.to_list n.slots
  |> List.concat_map (fun slot -> List.rev slot)

let children n =
  List.filter_map
    (fun e -> if e.is_backedge then None else Some e.target)
    (edges n)

let iter f t = List.iter f (List.rev t.nodes_rev)

let fold f init t =
  List.fold_left f init (List.rev t.nodes_rev)

let num_nodes t = t.n_nodes

let context n =
  match n.node_parent with
  | None -> []
  | Some _ ->
      let rec up acc = function
        | None -> acc
        | Some p ->
            if p.node_parent = None then acc
            else up (p.node_proc :: acc) p.node_parent
      in
      up [ n.node_proc ] n.node_parent

let find_context t ctx =
  let rec down node = function
    | [] -> Some node
    | proc :: rest -> (
        match
          List.find_opt
            (fun e -> (not e.is_backedge) && e.target.node_proc = proc)
            (edges node)
        with
        | Some e -> down e.target rest
        | None -> None)
  in
  down t.root_node ctx

let merged t = t.merge_call_sites

let graft_node t ~parent ~proc ~nsites ~data =
  let node =
    {
      node_proc = proc;
      node_nsites = nsites;
      node_parent = Some parent;
      node_depth = parent.node_depth + 1;
      node_id = t.n_nodes;
      node_data = data;
      slots =
        Array.make (if t.merge_call_sites then 1 else max 1 nsites) [];
    }
  in
  t.nodes_rev <- node :: t.nodes_rev;
  t.n_nodes <- t.n_nodes + 1;
  node

let graft_edge t ~from_ ~site ~target ~is_backedge ~kind ~calls =
  let idx = slot_index t from_ site in
  from_.slots.(idx) <-
    from_.slots.(idx) @ [ { site; target; is_backedge; kind; calls } ]

let check_invariants t =
  let fail fmt = Format.kasprintf invalid_arg fmt in
  iter
    (fun n ->
      (* Every procedure occurs at most once on the root-to-node path. *)
      let rec collect acc = function
        | None -> acc
        | Some p -> collect (p.node_proc :: acc) p.node_parent
      in
      let chain = collect [] (Some n) in
      let sorted = List.sort compare chain in
      let rec dup = function
        | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
        | [ _ ] | [] -> None
      in
      (match dup sorted with
      | Some p -> fail "procedure %s repeats on the path to %s" p n.node_proc
      | None -> ());
      List.iter
        (fun e ->
          if e.is_backedge then begin
            (* Target must be an ancestor of n (or n itself). *)
            let rec is_anc = function
              | None -> false
              | Some a -> a == e.target || is_anc a.node_parent
            in
            if not (is_anc (Some n)) then
              fail "backedge %s -> %s does not target an ancestor"
                n.node_proc e.target.node_proc
          end
          else if
            match e.target.node_parent with
            | Some p -> p != n
            | None -> true
          then
            fail "tree edge %s -> %s but parent differs" n.node_proc
              e.target.node_proc)
        (edges n))
    t
