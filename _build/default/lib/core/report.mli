(** Plain-text table rendering for the benchmark harness, in the visual
    style of the paper's tables. *)

type align = Left | Right

(** [render ~columns ~rows] pads every cell to its column width.
    [columns] gives header text and alignment; a row of [`Sep] draws a
    rule.  Rows shorter than [columns] are padded with empty cells. *)
val render :
  columns:(string * align) list ->
  rows:[ `Row of string list | `Sep ] list ->
  string

(** Compact counts: [1234567] as ["1.2e6"] when wide, else decimal — the
    paper prints big totals in scientific notation. *)
val sci : int -> string

(** ["12.3%"]. *)
val pct : float -> string

(** Ratio with one decimal, e.g. ["2.7"]. *)
val ratio : float -> string

(** Mean of a list of floats (0 on empty). *)
val mean : float list -> float
