type 'a codec = { encode : 'a -> string; decode : string -> 'a }

let metrics_codec =
  {
    encode =
      (fun a ->
        String.concat " " (Array.to_list (Array.map string_of_int a)));
    decode =
      (fun s ->
        if String.trim s = "" then [||]
        else
          Array.of_list
            (List.map int_of_string
               (String.split_on_char ' ' (String.trim s))));
  }

let unit_codec = { encode = (fun () -> ""); decode = (fun _ -> ()) }

(* Procedure names may contain anything but whitespace in practice; escape
   defensively anyway ('%' then spaces/newlines/percents as %XX). *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\n' | '\t' | '%' ->
          Buffer.add_string buf (Printf.sprintf "%%%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then begin
        Buffer.add_char buf
          (Char.chr (int_of_string ("0x" ^ String.sub s (i + 1) 2)));
        go (i + 3)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let write ~codec buf cct =
  Buffer.add_string buf
    (Printf.sprintf "cct 1 %d %d\n" (Cct.num_nodes cct)
       (if Cct.merged cct then 1 else 0));
  Cct.iter
    (fun node ->
      let parent =
        match Cct.parent node with Some p -> Cct.id p | None -> -1
      in
      Buffer.add_string buf
        (Printf.sprintf "node %d %d %d %d %s %s\n" (Cct.id node) parent
           (Cct.node_depth node) (Cct.nsites node)
           (escape (Cct.proc node))
           (codec.encode (Cct.data node))))
    cct;
  Cct.iter
    (fun node ->
      List.iter
        (fun (e : _ Cct.edge) ->
          Buffer.add_string buf
            (Printf.sprintf "edge %d %d %d %d %d %d\n" (Cct.id node)
               e.Cct.site (Cct.id e.Cct.target)
               (if e.Cct.is_backedge then 1 else 0)
               (match e.Cct.kind with Cct.Indirect -> 1 | Cct.Direct -> 0)
               e.Cct.calls))
        (Cct.edges node))
    cct

let to_string ~codec cct =
  let buf = Buffer.create 4096 in
  write ~codec buf cct;
  Buffer.contents buf

let to_file ~codec path cct =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~codec cct))

exception Parse_error of int * string

let fail line fmt =
  Format.kasprintf (fun s -> raise (Parse_error (line, s))) fmt

let of_string ~codec text =
  let lines = String.split_on_char '\n' text in
  let nodes : (int, 'a Cct.node) Hashtbl.t = Hashtbl.create 64 in
  let cct = ref None in
  let pending_root_data = ref None in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line <> "" then
        match String.split_on_char ' ' line with
        | "cct" :: "1" :: _nodes :: merged :: _ ->
            let merge_call_sites = merged = "1" in
            (* Defer creation until the root's data arrives. *)
            cct :=
              Some
                (`Header merge_call_sites)
        | "node" :: id :: parent :: _depth :: nsites :: name :: rest -> (
            let id = int_of_string id in
            let parent = int_of_string parent in
            let nsites = int_of_string nsites in
            let proc = unescape name in
            let data = codec.decode (String.concat " " rest) in
            match (!cct, parent) with
            | Some (`Header merged), -1 ->
                pending_root_data := Some data;
                let t =
                  Cct.create ~merge_call_sites:merged
                    ~make_data:(fun ~proc:_ ~nsites:_ -> data)
                    ()
                in
                Hashtbl.replace nodes id (Cct.root t);
                cct := Some (`Tree t)
            | Some (`Tree t), _ ->
                if parent = -1 then fail lineno "duplicate root";
                let parent_node =
                  match Hashtbl.find_opt nodes parent with
                  | Some n -> n
                  | None -> fail lineno "unknown parent %d" parent
                in
                let node =
                  Cct.graft_node t ~parent:parent_node ~proc ~nsites ~data
                in
                if Cct.id node <> id then
                  fail lineno "node ids must be dense and in order";
                Hashtbl.replace nodes id node
            | Some (`Header _), _ -> fail lineno "first node must be the root"
            | None, _ -> fail lineno "node before header")
        | [ "edge"; from_; site; target; back; ind; calls ] -> (
            match !cct with
            | Some (`Tree t) ->
                let find what id =
                  match Hashtbl.find_opt nodes (int_of_string id) with
                  | Some n -> n
                  | None -> fail lineno "unknown %s %s" what id
                in
                Cct.graft_edge t ~from_:(find "source" from_)
                  ~site:(int_of_string site)
                  ~target:(find "target" target)
                  ~is_backedge:(back = "1")
                  ~kind:(if ind = "1" then Cct.Indirect else Cct.Direct)
                  ~calls:(int_of_string calls)
            | Some (`Header _) | None -> fail lineno "edge before nodes")
        | word :: _ -> fail lineno "unknown record %S" word
        | [] -> ())
    lines;
  ignore !pending_root_data;
  match !cct with
  | Some (`Tree t) -> t
  | Some (`Header _) | None ->
      raise (Parse_error (0, "empty or headerless input"))

let of_file ~codec path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      of_string ~codec (really_input_string ic (in_channel_length ic)))

let escape_label s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | c -> String.make 1 c)
       (List.of_seq (String.to_seq s)))

let to_dot ?label cct =
  let label = Option.value ~default:(fun n -> Cct.proc n) label in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph cct {\n  node [shape=box];\n";
  Cct.iter
    (fun node ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"];\n" (Cct.id node)
           (escape_label (label node))))
    cct;
  Cct.iter
    (fun node ->
      List.iter
        (fun (e : _ Cct.edge) ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=\"site %d, %d\"%s];\n"
               (Cct.id node) (Cct.id e.Cct.target) e.Cct.site e.Cct.calls
               (if e.Cct.is_backedge then ", style=dashed" else "")))
        (Cct.edges node))
    cct;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
