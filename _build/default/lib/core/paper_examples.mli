(** The worked examples from the paper's figures, reusable by the benchmark
    harness, the examples and the test suite. *)

(** The six-path CFG of Figure 1 (blocks A=0 B=1 C=2 D=3 E=4 F=5; A branches
    to (C, B), D to (F, E)), as a procedure taking one int parameter. *)
val figure1_proc : unit -> Pp_ir.Proc.t

(** A whole program wrapping {!figure1_proc} so it can be instrumented and
    executed: [main] drives [fig1] through all six paths. *)
val figure1_program : unit -> Pp_ir.Program.t

(** The block names of Figure 1, ["A"] … ["F"], indexed by label. *)
val figure1_block_name : Pp_ir.Block.label -> string

(** Drive [enter]/[exit] callbacks through the call trace behind Figure 4:
    M → A → B → C returns, then M → D → C and M → D → A.  The [enter]
    callback receives the procedure name and the caller's call-site
    index. *)
val figure4_trace :
  enter:(string -> int -> unit) -> exit:(unit -> unit) -> unit

(** The recursive trace of Figure 5: M → A → B → A (recursive). *)
val figure5_trace :
  enter:(string -> int -> unit) -> exit:(unit -> unit) -> unit
