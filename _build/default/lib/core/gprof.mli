(** The gprof-style context approximation the paper argues against
    ([GKM83], [PF88]).

    gprof measures each procedure's total (context-blind) cost and each
    call-graph edge's traversal count, then attributes the callee's cost to
    callers {e in proportion to call frequency}.  When a procedure is cheap
    from one caller and expensive from another, the apportioning is wrong —
    the "gprof problem" the CCT solves.  This module implements the
    approximation so examples and tests can quantify the error against CCT
    ground truth. *)

type t

val create : unit -> t

(** [enter t ~proc] / [exit t ~cost] bracket an activation; [cost] is the
    metric accumulated during the activation, including callees' time spent
    below it (gprof's per-procedure totals are inclusive at attribution
    level but measured flat; here the client passes the {e self} cost and
    the approximation distributes self costs only, which isolates the
    apportioning error from propagation error). *)
val enter : t -> proc:string -> unit

val exit : t -> cost:int -> unit

(** Total self cost of a procedure over all contexts. *)
val self_cost : t -> string -> int

(** [attributed t ~caller ~callee] — the cost of [callee] that gprof's rule
    assigns to [caller]:
    [self_cost callee * calls(caller→callee) / total calls to callee]
    (as a float). *)
val attributed : t -> caller:string -> callee:string -> float

val calls : t -> caller:string -> callee:string -> int
val procs : t -> string list
