type t = {
  nodes : int;
  size_bytes : int;
  avg_node_size : float;
  avg_out_degree : float;
  height_avg : float;
  height_max : int;
  max_replication : int;
  replicated_proc : string;
  call_sites_total : int;
  call_sites_used : int;
}

let cell = 4

(* Figure-7 model: record = ID + parent + metrics + callee slots, all 4-byte
   cells; each indirect slot's list element is [pr + next] = 8 bytes, plus
   the terminal element holding the offset back to the record. *)
let node_size ~metrics_per_node node =
  let nsites = Cct.nsites node in
  let record = cell * (2 + metrics_per_node + max 1 nsites) in
  let list_bytes =
    List.fold_left
      (fun acc (site : int) ->
        let edges_at =
          List.filter (fun (e : _ Cct.edge) -> e.Cct.site = site)
            (Cct.edges node)
        in
        let indirect =
          List.exists (fun e -> e.Cct.kind = Cct.Indirect) edges_at
        in
        if indirect then acc + (2 * cell * (List.length edges_at + 1))
        else acc)
      0
      (List.init (max 1 nsites) (fun i -> i))
  in
  record + list_bytes

let compute ~metrics_per_node cct =
  let root = Cct.root cct in
  let nodes = ref 0 in
  let size = ref 0 in
  let interior = ref 0 in
  let out_deg_sum = ref 0 in
  let leaves = ref 0 in
  let leaf_depth_sum = ref 0 in
  let height_max = ref 0 in
  let replication = Hashtbl.create 64 in
  let sites_total = ref 0 in
  let sites_used = ref 0 in
  Cct.iter
    (fun node ->
      if node != root then begin
        incr nodes;
        size := !size + node_size ~metrics_per_node node;
        let kids = Cct.children node in
        let nkids = List.length kids in
        if nkids > 0 then begin
          incr interior;
          out_deg_sum := !out_deg_sum + nkids
        end
        else begin
          incr leaves;
          leaf_depth_sum := !leaf_depth_sum + Cct.node_depth node
        end;
        if Cct.node_depth node > !height_max then
          height_max := Cct.node_depth node;
        let p = Cct.proc node in
        (match Hashtbl.find_opt replication p with
        | Some r -> incr r
        | None -> Hashtbl.replace replication p (ref 1));
        sites_total := !sites_total + Cct.nsites node;
        let used_here =
          List.length
            (List.sort_uniq compare
               (List.map (fun (e : _ Cct.edge) -> e.Cct.site)
                  (Cct.edges node)))
        in
        sites_used := !sites_used + used_here
      end)
    cct;
  let max_replication, replicated_proc =
    Hashtbl.fold
      (fun p r ((best, _) as acc) -> if !r > best then (!r, p) else acc)
      replication (0, "")
  in
  {
    nodes = !nodes;
    size_bytes = !size;
    avg_node_size =
      (if !nodes = 0 then 0.0 else float_of_int !size /. float_of_int !nodes);
    avg_out_degree =
      (if !interior = 0 then 0.0
       else float_of_int !out_deg_sum /. float_of_int !interior);
    height_avg =
      (if !leaves = 0 then 0.0
       else float_of_int !leaf_depth_sum /. float_of_int !leaves);
    height_max = !height_max;
    max_replication;
    replicated_proc;
    call_sites_total = !sites_total;
    call_sites_used = !sites_used;
  }

let call_sites_one_path ~site_paths cct =
  let root = Cct.root cct in
  Cct.fold
    (fun acc node ->
      if node == root then acc
      else
        let used_sites =
          List.sort_uniq compare
            (List.map (fun (e : _ Cct.edge) -> e.Cct.site) (Cct.edges node))
        in
        acc
        + List.length
            (List.filter (fun s -> site_paths node s = 1) used_sites))
    0 cct

let pp ppf t =
  Format.fprintf ppf
    "@[<v>nodes: %d@,size: %d bytes@,avg node size: %.1f@,avg out degree: \
     %.1f@,height: avg %.1f max %d@,max replication: %d (%s)@,call sites: \
     %d total, %d used@]"
    t.nodes t.size_bytes t.avg_node_size t.avg_out_degree t.height_avg
    t.height_max t.max_replication t.replicated_proc t.call_sites_total
    t.call_sites_used
