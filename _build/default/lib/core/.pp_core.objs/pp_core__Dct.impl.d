lib/core/dct.ml: Format Hashtbl List Option String
