lib/core/cct_stats.ml: Cct Format Hashtbl List
