lib/core/ball_larus.ml: Array Format List Pp_graph Pp_ir Printf Queue
