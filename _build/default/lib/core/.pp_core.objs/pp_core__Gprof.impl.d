lib/core/gprof.ml: Dcg Hashtbl
