lib/core/ball_larus.mli: Format Pp_graph Pp_ir
