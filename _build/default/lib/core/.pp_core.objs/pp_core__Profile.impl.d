lib/core/profile.ml: Ball_larus Format List Pp_machine
