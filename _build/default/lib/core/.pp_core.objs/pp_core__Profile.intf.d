lib/core/profile.mli: Ball_larus Format Pp_machine
