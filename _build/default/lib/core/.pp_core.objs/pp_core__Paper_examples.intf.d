lib/core/paper_examples.mli: Pp_ir
