lib/core/cct_io.ml: Array Buffer Cct Char Format Fun Hashtbl List Option Printf String
