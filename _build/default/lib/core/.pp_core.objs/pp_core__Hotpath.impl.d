lib/core/hotpath.ml: Ball_larus Format Hashtbl List Option Profile
