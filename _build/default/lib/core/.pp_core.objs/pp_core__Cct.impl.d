lib/core/cct.ml: Array Format List Printf
