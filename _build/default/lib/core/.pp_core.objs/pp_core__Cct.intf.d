lib/core/cct.mli:
