lib/core/paper_examples.ml: Pp_ir Printf
