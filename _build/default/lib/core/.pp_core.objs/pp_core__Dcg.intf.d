lib/core/dcg.mli:
