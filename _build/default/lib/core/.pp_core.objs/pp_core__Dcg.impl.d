lib/core/dcg.ml: Hashtbl List
