lib/core/edge_profile.ml: Array Hashtbl List Option Pp_graph Pp_ir
