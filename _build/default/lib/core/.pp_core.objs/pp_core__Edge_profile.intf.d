lib/core/edge_profile.mli: Pp_graph Pp_ir
