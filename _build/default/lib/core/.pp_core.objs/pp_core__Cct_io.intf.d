lib/core/cct_io.mli: Buffer Cct
