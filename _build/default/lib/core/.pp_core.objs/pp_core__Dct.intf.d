lib/core/dct.mli: Format
