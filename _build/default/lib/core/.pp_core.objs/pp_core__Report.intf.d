lib/core/report.mli:
