lib/core/hotpath.mli: Format Profile
