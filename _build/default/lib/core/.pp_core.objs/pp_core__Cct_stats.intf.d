lib/core/cct_stats.mli: Cct Format
