lib/core/gprof.mli:
