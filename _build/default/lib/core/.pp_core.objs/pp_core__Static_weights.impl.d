lib/core/static_weights.ml: Array List Pp_graph Pp_ir
