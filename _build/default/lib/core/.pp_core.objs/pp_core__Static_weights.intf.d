lib/core/static_weights.mli: Pp_graph Pp_ir
