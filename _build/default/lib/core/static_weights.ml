module Digraph = Pp_graph.Digraph
module Dfs = Pp_graph.Dfs
module Dominators = Pp_graph.Dominators
module Cfg = Pp_ir.Cfg

let loop_depths (cfg : Cfg.t) =
  let g = cfg.Cfg.graph in
  let n = Digraph.num_vertices g in
  let depths = Array.make n 0 in
  let dfs = Dfs.run g ~root:cfg.Cfg.entry in
  let dom = Dominators.compute g ~root:cfg.Cfg.entry in
  List.iter
    (fun (b : Digraph.edge) ->
      (* Members of the natural loop of backedge v -> w: w, plus everything
         reaching v backwards without passing through the header w. *)
      let header = b.dst in
      let in_loop = Array.make n false in
      in_loop.(header) <- true;
      let rec mark v =
        if not in_loop.(v) then begin
          in_loop.(v) <- true;
          List.iter mark (Digraph.preds g v)
        end
      in
      mark b.src;
      Array.iteri
        (fun v inside -> if inside then depths.(v) <- depths.(v) + 1)
        in_loop)
    (Dominators.natural_backedges dom dfs);
  depths

let edge_weight cfg =
  let depths = loop_depths cfg in
  fun (e : Digraph.edge) ->
    let d = min depths.(e.src) depths.(e.dst) in
    let rec pow acc k = if k <= 0 then acc else pow (acc * 8) (k - 1) in
    min (pow 1 (min d 7)) 1_000_000
