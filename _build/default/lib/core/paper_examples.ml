module B = Pp_ir.Builder
module Block = Pp_ir.Block
module I = Pp_ir.Instr
module Proc = Pp_ir.Proc

let figure1_proc () =
  let b =
    B.create ~name:"fig1" ~iparams:1 ~fparams:0 ~returns:Proc.Returns_void
  in
  let a = B.new_block b in
  let bb = B.new_block b in
  let c = B.new_block b in
  let d = B.new_block b in
  let e = B.new_block b in
  let f = B.new_block b in
  assert (a = 0 && bb = 1 && c = 2 && d = 3 && e = 4 && f = 5);
  (* A: branch on bit 0 of the parameter to (C, B). *)
  let t0 = B.new_ireg b in
  B.emit b (I.Ibinop_imm (I.And, t0, 0, 1));
  B.terminate b (Block.Br (t0, c, bb));
  B.switch_to b bb;
  let t1 = B.new_ireg b in
  B.emit b (I.Ibinop_imm (I.And, t1, 0, 2));
  B.terminate b (Block.Br (t1, c, d));
  B.switch_to b c;
  B.terminate b (Block.Jmp d);
  B.switch_to b d;
  let t2 = B.new_ireg b in
  B.emit b (I.Ibinop_imm (I.And, t2, 0, 4));
  B.terminate b (Block.Br (t2, f, e));
  B.switch_to b e;
  B.terminate b (Block.Jmp f);
  B.switch_to b f;
  B.terminate b (Block.Ret Block.Ret_void);
  B.finish b

let figure1_program () =
  let fig1 = figure1_proc () in
  let b =
    B.create ~name:"main" ~iparams:0 ~fparams:0 ~returns:Proc.Returns_void
  in
  ignore (B.new_block b);
  (* Drive fig1 through every selector value 0..7 (all six paths occur). *)
  for v = 0 to 7 do
    let r = B.new_ireg b in
    B.emit b (I.Iconst (r, v));
    B.emit_call b ~callee:"fig1" ~args:[ r ] ~fargs:[] ~ret:I.Rnone
  done;
  B.terminate b (Block.Ret Block.Ret_void);
  let main = B.finish b in
  Pp_ir.Program.make ~procs:[ main; fig1 ] ~globals:[] ~main:"main"

let figure1_block_name label =
  match label with
  | 0 -> "A"
  | 1 -> "B"
  | 2 -> "C"
  | 3 -> "D"
  | 4 -> "E"
  | 5 -> "F"
  | l -> Printf.sprintf "L%d" l

let figure4_trace ~enter ~exit =
  enter "M" 0;
  enter "A" 0;
  enter "B" 0;
  enter "C" 0;
  exit ();
  exit ();
  exit ();
  enter "D" 1;
  enter "C" 0;
  exit ();
  enter "A" 1;
  exit ();
  exit ();
  exit ()

let figure5_trace ~enter ~exit =
  enter "M" 0;
  enter "A" 0;
  enter "B" 0;
  enter "A" 0;
  exit ();
  exit ();
  exit ();
  exit ()
