(** Procedures: an array of basic blocks indexed by label. *)

type return_kind = Returns_int | Returns_float | Returns_void

type t = private {
  name : string;
  iparams : int;  (** integer parameters arrive in [r0 .. riparams-1] *)
  fparams : int;  (** float parameters arrive in [f0 .. f(fparams-1)] *)
  returns : return_kind;
  blocks : Block.t array;  (** index = label *)
  entry : Block.label;
  niregs : int;  (** number of integer registers used (including params) *)
  nfregs : int;
  nsites : int;  (** number of call sites; sites are dense in [0..nsites-1] *)
  frame_words : int;
      (** stack words per activation, for local arrays ([Frameaddr]) *)
}

(** [make ~name ~iparams ~fparams ~returns ~blocks ~entry] computes register
    and call-site counts from the code.
    @raise Invalid_argument if block labels are not their indices, if the
    entry label is invalid, or if call sites are not densely numbered from
    zero in order of appearance. *)
val make :
  frame_words:int ->
  name:string ->
  iparams:int ->
  fparams:int ->
  returns:return_kind ->
  blocks:Block.t array ->
  entry:Block.label ->
  t

(** [with_blocks p blocks] re-derives counts for an edited body; same checks
    as {!make}.  [entry] and [frame_words] override the originals (the
    instrumenter adds a preamble entry block and may reserve a spill
    slot). *)
val with_blocks :
  ?entry:Block.label -> ?frame_words:int -> t -> Block.t array -> t

val block : t -> Block.label -> Block.t
val num_blocks : t -> int

(** Static instruction slots of the whole body (terminators included). *)
val size_slots : t -> int

val iter_instrs : (Block.label -> Instr.t -> unit) -> t -> unit
val pp : Format.formatter -> t -> unit
