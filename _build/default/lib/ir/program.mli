(** Whole programs: procedures plus global data. *)

(** Optional initial contents of a global; uninitialised globals are
    zero-filled. *)
type init = Init_ints of int array | Init_floats of float array

type global = {
  gname : string;
  size_words : int;  (** one word = 8 bytes *)
  init : init option;
}

type t = private {
  procs : Proc.t array;
  globals : global array;
  main : string;
}

(** @raise Invalid_argument on duplicate procedure or global names, a missing
    [main], a [main] with parameters, or an [init] longer than its global. *)
val make : procs:Proc.t list -> globals:global list -> main:string -> t

val find_proc : t -> string -> Proc.t option

(** @raise Not_found *)
val proc_exn : t -> string -> Proc.t

val proc_index : t -> string -> int option
val find_global : t -> string -> global option

(** [map_procs f t] rebuilds the program with every procedure transformed —
    the instrumenter's entry point. *)
val map_procs : (Proc.t -> Proc.t) -> t -> t

(** Total static instruction slots over all procedures. *)
val size_slots : t -> int

val pp : Format.formatter -> t -> unit
