type ireg = int
type freg = int
type site = int

type ibinop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type fbinop = Fadd | Fsub | Fmul | Fdiv

type ret_dest = Rint of ireg | Rfloat of freg | Rnone

type prof_op =
  | Cct_enter of { proc_addr : int; nsites : int }
  | Cct_exit
  | Cct_call of { site : site; indirect : bool }
  | Cct_metric_enter
  | Cct_metric_exit
  | Cct_metric_backedge
  | Path_commit_hash of { table : int; path_reg : ireg }
  | Path_commit_hash_hw of { table : int; path_reg : ireg }
  | Path_commit_cct of { table : int; path_reg : ireg }

type t =
  | Iconst of ireg * int
  | Iconst_sym of ireg * string
  | Fconst of freg * float
  | Imov of ireg * ireg
  | Fmov of freg * freg
  | Ibinop of ibinop * ireg * ireg * ireg
  | Ibinop_imm of ibinop * ireg * ireg * int
  | Icmp of cmp * ireg * ireg * ireg
  | Icmp_imm of cmp * ireg * ireg * int
  | Fbinop of fbinop * freg * freg * freg
  | Fcmp of cmp * ireg * freg * freg
  | Itof of freg * ireg
  | Ftoi of ireg * freg
  | Load of ireg * ireg * int
  | Store of ireg * ireg * int
  | Fload of freg * ireg * int
  | Fstore of freg * ireg * int
  | Call of {
      callee : string;
      args : ireg list;
      fargs : freg list;
      ret : ret_dest;
      site : site;
    }
  | Callind of {
      target : ireg;
      args : ireg list;
      fargs : freg list;
      ret : ret_dest;
      site : site;
    }
  | Hwread of ireg * int
  | Hwzero
  | Hwwrite of ireg * int
  | Frameaddr of ireg * int
  | Print_int of ireg
  | Print_float of freg
  | Prof of prof_op

let ret_idef = function Rint r -> [ r ] | Rfloat _ | Rnone -> []
let ret_fdef = function Rfloat r -> [ r ] | Rint _ | Rnone -> []

let idefs = function
  | Iconst (rd, _)
  | Iconst_sym (rd, _)
  | Imov (rd, _)
  | Ibinop (_, rd, _, _)
  | Ibinop_imm (_, rd, _, _)
  | Icmp (_, rd, _, _)
  | Icmp_imm (_, rd, _, _)
  | Fcmp (_, rd, _, _)
  | Ftoi (rd, _)
  | Load (rd, _, _)
  | Hwread (rd, _)
  | Frameaddr (rd, _) ->
      [ rd ]
  | Call { ret; _ } | Callind { ret; _ } -> ret_idef ret
  | Fconst _ | Fmov _ | Fbinop _ | Itof _ | Store _ | Fload _ | Fstore _
  | Hwzero | Hwwrite _ | Print_int _ | Print_float _ | Prof _ ->
      []

let iuses = function
  | Imov (_, rs) | Ibinop_imm (_, _, rs, _) | Icmp_imm (_, _, rs, _) -> [ rs ]
  | Ibinop (_, _, rs1, rs2) | Icmp (_, _, rs1, rs2) -> [ rs1; rs2 ]
  | Itof (_, rs) -> [ rs ]
  | Load (_, rb, _) | Fload (_, rb, _) -> [ rb ]
  | Store (rs, rb, _) -> [ rs; rb ]
  | Fstore (_, rb, _) -> [ rb ]
  | Call { args; _ } -> args
  | Callind { target; args; _ } -> target :: args
  | Prof (Path_commit_hash { path_reg; _ })
  | Prof (Path_commit_hash_hw { path_reg; _ })
  | Prof (Path_commit_cct { path_reg; _ }) ->
      [ path_reg ]
  | Print_int r | Hwwrite (r, _) -> [ r ]
  | Iconst _ | Iconst_sym _ | Fconst _ | Fmov _ | Fbinop _ | Fcmp _ | Ftoi _
  | Hwread _ | Hwzero | Frameaddr _ | Print_float _ | Prof _ ->
      []

let fdefs = function
  | Fconst (fd, _) | Fmov (fd, _) | Fbinop (_, fd, _, _) | Itof (fd, _)
  | Fload (fd, _, _) ->
      [ fd ]
  | Call { ret; _ } | Callind { ret; _ } -> ret_fdef ret
  | Iconst _ | Iconst_sym _ | Imov _ | Ibinop _ | Ibinop_imm _ | Icmp _
  | Icmp_imm _ | Fcmp _ | Ftoi _ | Load _ | Store _ | Fstore _ | Hwread _
  | Hwzero | Hwwrite _ | Frameaddr _ | Print_int _ | Print_float _ | Prof _ ->
      []

let fuses = function
  | Fmov (_, fs) | Ftoi (_, fs) -> [ fs ]
  | Fbinop (_, _, fs1, fs2) | Fcmp (_, _, fs1, fs2) -> [ fs1; fs2 ]
  | Fstore (fs, _, _) -> [ fs ]
  | Print_float f -> [ f ]
  | Call { fargs; _ } | Callind { fargs; _ } -> fargs
  | Iconst _ | Iconst_sym _ | Fconst _ | Imov _ | Ibinop _ | Ibinop_imm _
  | Icmp _ | Icmp_imm _ | Itof _ | Load _ | Store _ | Fload _ | Hwread _
  | Hwzero | Hwwrite _ | Frameaddr _ | Print_int _ | Prof _ ->
      []

let is_load = function Load _ | Fload _ -> true | _ -> false
let is_store = function Store _ | Fstore _ -> true | _ -> false
let is_call = function Call _ | Callind _ -> true | _ -> false

(* Footprints of the runtime stubs the pseudo-ops stand for, in instruction
   slots.  These match the instruction-count cost model charged by
   Pp_vm.Runtime (kept in sync by test_vm's cost-model test). *)
let prof_slots = function
  | Cct_enter _ -> 14
  | Cct_exit -> 3
  | Cct_call _ -> 2
  | Cct_metric_enter -> 4
  | Cct_metric_exit -> 10
  | Cct_metric_backedge -> 12
  | Path_commit_hash _ -> 12
  | Path_commit_hash_hw _ -> 18
  | Path_commit_cct _ -> 10

let slots = function Prof op -> prof_slots op | _ -> 1

let pp_ibinop ppf op =
  Format.pp_print_string ppf
    (match op with
    | Add -> "add"
    | Sub -> "sub"
    | Mul -> "mul"
    | Div -> "div"
    | Rem -> "rem"
    | And -> "and"
    | Or -> "or"
    | Xor -> "xor"
    | Shl -> "shl"
    | Shr -> "shr")

let pp_cmp ppf c =
  Format.pp_print_string ppf
    (match c with
    | Eq -> "eq"
    | Ne -> "ne"
    | Lt -> "lt"
    | Le -> "le"
    | Gt -> "gt"
    | Ge -> "ge")

let pp_fbinop ppf op =
  Format.pp_print_string ppf
    (match op with
    | Fadd -> "fadd"
    | Fsub -> "fsub"
    | Fmul -> "fmul"
    | Fdiv -> "fdiv")

let pp_ret ppf = function
  | Rint r -> Format.fprintf ppf "r%d = " r
  | Rfloat f -> Format.fprintf ppf "f%d = " f
  | Rnone -> ()

let pp_args ppf (args, fargs) =
  let pp_sep ppf () = Format.pp_print_string ppf ", " in
  let pp_ireg ppf r = Format.fprintf ppf "r%d" r in
  let pp_freg ppf r = Format.fprintf ppf "f%d" r in
  Format.pp_print_list ~pp_sep pp_ireg ppf args;
  if args <> [] && fargs <> [] then pp_sep ppf ();
  Format.pp_print_list ~pp_sep pp_freg ppf fargs

let pp_prof ppf = function
  | Cct_enter { proc_addr; nsites } ->
      Format.fprintf ppf "cct.enter proc=0x%x nsites=%d" proc_addr nsites
  | Cct_exit -> Format.pp_print_string ppf "cct.exit"
  | Cct_call { site; indirect } ->
      Format.fprintf ppf "cct.call site=%d%s" site
        (if indirect then " indirect" else "")
  | Cct_metric_enter -> Format.pp_print_string ppf "cct.metric_enter"
  | Cct_metric_exit -> Format.pp_print_string ppf "cct.metric_exit"
  | Cct_metric_backedge -> Format.pp_print_string ppf "cct.metric_backedge"
  | Path_commit_hash { table; path_reg } ->
      Format.fprintf ppf "path.commit_hash table=%d r%d" table path_reg
  | Path_commit_hash_hw { table; path_reg } ->
      Format.fprintf ppf "path.commit_hash_hw table=%d r%d" table path_reg
  | Path_commit_cct { table; path_reg } ->
      Format.fprintf ppf "path.commit_cct table=%d r%d" table path_reg

let pp ppf = function
  | Iconst (rd, n) -> Format.fprintf ppf "r%d = %d" rd n
  | Iconst_sym (rd, s) -> Format.fprintf ppf "r%d = &%s" rd s
  | Fconst (fd, x) -> Format.fprintf ppf "f%d = %g" fd x
  | Imov (rd, rs) -> Format.fprintf ppf "r%d = r%d" rd rs
  | Fmov (fd, fs) -> Format.fprintf ppf "f%d = f%d" fd fs
  | Ibinop (op, rd, rs1, rs2) ->
      Format.fprintf ppf "r%d = %a r%d, r%d" rd pp_ibinop op rs1 rs2
  | Ibinop_imm (op, rd, rs, n) ->
      Format.fprintf ppf "r%d = %a r%d, %d" rd pp_ibinop op rs n
  | Icmp (c, rd, rs1, rs2) ->
      Format.fprintf ppf "r%d = %a r%d, r%d" rd pp_cmp c rs1 rs2
  | Icmp_imm (c, rd, rs, n) ->
      Format.fprintf ppf "r%d = %a r%d, %d" rd pp_cmp c rs n
  | Fbinop (op, fd, fs1, fs2) ->
      Format.fprintf ppf "f%d = %a f%d, f%d" fd pp_fbinop op fs1 fs2
  | Fcmp (c, rd, fs1, fs2) ->
      Format.fprintf ppf "r%d = f%a f%d, f%d" rd pp_cmp c fs1 fs2
  | Itof (fd, rs) -> Format.fprintf ppf "f%d = itof r%d" fd rs
  | Ftoi (rd, fs) -> Format.fprintf ppf "r%d = ftoi f%d" rd fs
  | Load (rd, rb, off) -> Format.fprintf ppf "r%d = [r%d + %d]" rd rb off
  | Store (rs, rb, off) -> Format.fprintf ppf "[r%d + %d] = r%d" rb off rs
  | Fload (fd, rb, off) -> Format.fprintf ppf "f%d = [r%d + %d]" fd rb off
  | Fstore (fs, rb, off) -> Format.fprintf ppf "[r%d + %d] = f%d" rb off fs
  | Call { callee; args; fargs; ret; _ } ->
      Format.fprintf ppf "%acall %s(%a)" pp_ret ret callee pp_args
        (args, fargs)
  | Callind { target; args; fargs; ret; _ } ->
      Format.fprintf ppf "%acall *r%d(%a)" pp_ret ret target pp_args
        (args, fargs)
  | Hwread (rd, k) -> Format.fprintf ppf "r%d = rdpic %d" rd k
  | Hwzero -> Format.pp_print_string ppf "wrpic 0"
  | Hwwrite (rs, k) -> Format.fprintf ppf "wrpic %d, r%d" k rs
  | Frameaddr (rd, off) -> Format.fprintf ppf "r%d = fp + %d" rd off
  | Print_int r -> Format.fprintf ppf "print r%d" r
  | Print_float f -> Format.fprintf ppf "print f%d" f
  | Prof op -> pp_prof ppf op
