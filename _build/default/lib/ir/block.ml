type label = int

type ret_val =
  | Ret_int of Instr.ireg
  | Ret_float of Instr.freg
  | Ret_void

type terminator =
  | Jmp of label
  | Br of Instr.ireg * label * label
  | Ret of ret_val

type t = { label : label; instrs : Instr.t list; term : terminator }

let successors b =
  match b.term with
  | Jmp l -> [ l ]
  | Br (_, t, f) -> [ t; f ]
  | Ret _ -> []

let slots b =
  List.fold_left (fun acc i -> acc + Instr.slots i) 1 b.instrs

let pp_terminator ppf = function
  | Jmp l -> Format.fprintf ppf "jmp L%d" l
  | Br (r, t, f) -> Format.fprintf ppf "br r%d, L%d, L%d" r t f
  | Ret Ret_void -> Format.pp_print_string ppf "ret"
  | Ret (Ret_int r) -> Format.fprintf ppf "ret r%d" r
  | Ret (Ret_float f) -> Format.fprintf ppf "ret f%d" f

let pp ppf b =
  Format.fprintf ppf "@[<v 2>L%d:" b.label;
  List.iter (fun i -> Format.fprintf ppf "@,%a" Instr.pp i) b.instrs;
  Format.fprintf ppf "@,%a@]" pp_terminator b.term
