(** Structural checking of whole programs, run before loading. *)

exception Invalid of string

(** [run prog] checks, raising {!Invalid} with a diagnostic on the first
    violation:
    - every direct call and [Iconst_sym] names an existing procedure or
      global;
    - call argument counts and result destinations match the callee
      signature;
    - [Ret] value kinds match the enclosing procedure's return kind;
    - every block is reachable from the entry and reaches some return
      (the profiler's ENTRY/EXIT requirements);
    - register indices are within the procedure's declared counts. *)
val run : Program.t -> unit

(** [check prog] is [run] packaged as a result. *)
val check : Program.t -> (unit, string) result
