exception Parse_error of int * string

let fail line fmt =
  Format.kasprintf (fun s -> raise (Parse_error (line, s))) fmt

(* --- emission --- *)

let ibinop_name (op : Instr.ibinop) =
  Format.asprintf "%a" Instr.pp_ibinop op

let cmp_name (c : Instr.cmp) = Format.asprintf "%a" Instr.pp_cmp c
let fbinop_name (op : Instr.fbinop) = Format.asprintf "%a" Instr.pp_fbinop op

let returns_name = function
  | Proc.Returns_int -> "int"
  | Proc.Returns_float -> "float"
  | Proc.Returns_void -> "void"

let emit_ret_dest ppf = function
  | Instr.Rint r -> Format.fprintf ppf "r%d" r
  | Instr.Rfloat f -> Format.fprintf ppf "f%d" f
  | Instr.Rnone -> Format.pp_print_string ppf "none"

let emit_reg_list prefix ppf regs =
  List.iter (fun r -> Format.fprintf ppf " %s%d" prefix r) regs

let emit_call ppf ~kw ~target ~args ~fargs ~ret ~site =
  Format.fprintf ppf "%s %d %s ret=%a iargs%a fargs%a" kw site target
    emit_ret_dest ret (emit_reg_list "r") args (emit_reg_list "f") fargs

let emit_prof ppf (op : Instr.prof_op) =
  match op with
  | Instr.Cct_enter { proc_addr; nsites } ->
      Format.fprintf ppf "prof cct_enter %d %d" proc_addr nsites
  | Instr.Cct_exit -> Format.pp_print_string ppf "prof cct_exit"
  | Instr.Cct_call { site; indirect } ->
      Format.fprintf ppf "prof cct_call %d %d" site
        (if indirect then 1 else 0)
  | Instr.Cct_metric_enter -> Format.pp_print_string ppf "prof cct_menter"
  | Instr.Cct_metric_exit -> Format.pp_print_string ppf "prof cct_mexit"
  | Instr.Cct_metric_backedge ->
      Format.pp_print_string ppf "prof cct_mback"
  | Instr.Path_commit_hash { table; path_reg } ->
      Format.fprintf ppf "prof pchash %d r%d" table path_reg
  | Instr.Path_commit_hash_hw { table; path_reg } ->
      Format.fprintf ppf "prof pchashhw %d r%d" table path_reg
  | Instr.Path_commit_cct { table; path_reg } ->
      Format.fprintf ppf "prof pccct %d r%d" table path_reg

let emit_instr ppf (i : Instr.t) =
  match i with
  | Instr.Iconst (rd, n) -> Format.fprintf ppf "iconst r%d %d" rd n
  | Instr.Iconst_sym (rd, s) -> Format.fprintf ppf "sym r%d %s" rd s
  | Instr.Fconst (fd, x) -> Format.fprintf ppf "fconst f%d %h" fd x
  | Instr.Imov (rd, rs) -> Format.fprintf ppf "imov r%d r%d" rd rs
  | Instr.Fmov (fd, fs) -> Format.fprintf ppf "fmov f%d f%d" fd fs
  | Instr.Ibinop (op, rd, a, b) ->
      Format.fprintf ppf "ibin %s r%d r%d r%d" (ibinop_name op) rd a b
  | Instr.Ibinop_imm (op, rd, a, n) ->
      Format.fprintf ppf "ibini %s r%d r%d %d" (ibinop_name op) rd a n
  | Instr.Icmp (c, rd, a, b) ->
      Format.fprintf ppf "icmp %s r%d r%d r%d" (cmp_name c) rd a b
  | Instr.Icmp_imm (c, rd, a, n) ->
      Format.fprintf ppf "icmpi %s r%d r%d %d" (cmp_name c) rd a n
  | Instr.Fbinop (op, fd, a, b) ->
      Format.fprintf ppf "fbin %s f%d f%d f%d" (fbinop_name op) fd a b
  | Instr.Fcmp (c, rd, a, b) ->
      Format.fprintf ppf "fcmp %s r%d f%d f%d" (cmp_name c) rd a b
  | Instr.Itof (fd, rs) -> Format.fprintf ppf "itof f%d r%d" fd rs
  | Instr.Ftoi (rd, fs) -> Format.fprintf ppf "ftoi r%d f%d" rd fs
  | Instr.Load (rd, rb, off) ->
      Format.fprintf ppf "load r%d r%d %d" rd rb off
  | Instr.Store (rs, rb, off) ->
      Format.fprintf ppf "store r%d r%d %d" rs rb off
  | Instr.Fload (fd, rb, off) ->
      Format.fprintf ppf "fload f%d r%d %d" fd rb off
  | Instr.Fstore (fs, rb, off) ->
      Format.fprintf ppf "fstore f%d r%d %d" fs rb off
  | Instr.Call { callee; args; fargs; ret; site } ->
      emit_call ppf ~kw:"call" ~target:callee ~args ~fargs ~ret ~site
  | Instr.Callind { target; args; fargs; ret; site } ->
      emit_call ppf ~kw:"callind"
        ~target:(Printf.sprintf "r%d" target)
        ~args ~fargs ~ret ~site
  | Instr.Hwread (rd, k) -> Format.fprintf ppf "hwread r%d %d" rd k
  | Instr.Hwzero -> Format.pp_print_string ppf "hwzero"
  | Instr.Hwwrite (rs, k) -> Format.fprintf ppf "hwwrite r%d %d" rs k
  | Instr.Frameaddr (rd, off) ->
      Format.fprintf ppf "frameaddr r%d %d" rd off
  | Instr.Print_int r -> Format.fprintf ppf "printi r%d" r
  | Instr.Print_float f -> Format.fprintf ppf "printf f%d" f
  | Instr.Prof op -> emit_prof ppf op

let emit_term ppf (t : Block.terminator) =
  match t with
  | Block.Jmp l -> Format.fprintf ppf "jmp L%d" l
  | Block.Br (r, a, b) -> Format.fprintf ppf "br r%d L%d L%d" r a b
  | Block.Ret Block.Ret_void -> Format.pp_print_string ppf "ret"
  | Block.Ret (Block.Ret_int r) -> Format.fprintf ppf "ret r%d" r
  | Block.Ret (Block.Ret_float f) -> Format.fprintf ppf "retf f%d" f

let emit ppf (p : Program.t) =
  Format.fprintf ppf "program main=%s@." p.Program.main;
  Array.iter
    (fun (g : Program.global) ->
      match g.init with
      | None ->
          Format.fprintf ppf "global %s %d@." g.gname g.size_words
      | Some (Program.Init_ints a) ->
          Format.fprintf ppf "global %s %d = ints" g.gname g.size_words;
          Array.iter (fun v -> Format.fprintf ppf " %d" v) a;
          Format.fprintf ppf "@."
      | Some (Program.Init_floats a) ->
          Format.fprintf ppf "global %s %d = floats" g.gname g.size_words;
          Array.iter (fun v -> Format.fprintf ppf " %h" v) a;
          Format.fprintf ppf "@.")
    p.Program.globals;
  Array.iter
    (fun (proc : Proc.t) ->
      Format.fprintf ppf
        "proc %s iparams=%d fparams=%d returns=%s frame=%d entry=%d@."
        proc.Proc.name proc.Proc.iparams proc.Proc.fparams
        (returns_name proc.Proc.returns)
        proc.Proc.frame_words proc.Proc.entry;
      Array.iter
        (fun (b : Block.t) ->
          Format.fprintf ppf "L%d:@." b.Block.label;
          List.iter
            (fun i -> Format.fprintf ppf "  %a@." emit_instr i)
            b.Block.instrs;
          Format.fprintf ppf "  %a@." emit_term b.Block.term)
        proc.Proc.blocks)
    p.Program.procs

let to_string p = Format.asprintf "%a" emit p

(* --- parsing --- *)

type pstate = {
  mutable line : int;
  mutable globals : Program.global list;
  mutable procs : Proc.t list;
  mutable main : string option;
  (* current procedure under construction *)
  mutable cur : cur option;
}

and cur = {
  cname : string;
  ciparams : int;
  cfparams : int;
  creturns : Proc.return_kind;
  cframe : int;
  centry : int;
  mutable blocks : Block.t list;  (* finished, reversed *)
  mutable cur_label : int option;
  mutable cur_instrs : Instr.t list;  (* reversed *)
}

let int_of line s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail line "expected an integer, found %S" s

let reg_of line prefix s =
  let n = String.length s in
  if n >= 2 && s.[0] = prefix.[0] then
    int_of line (String.sub s 1 (n - 1))
  else fail line "expected %s-register, found %S" prefix s

let ireg line s = reg_of line "r" s
let freg line s = reg_of line "f" s

let label_of line s =
  let n = String.length s in
  let s = if n > 0 && s.[n - 1] = ':' then String.sub s 0 (n - 1) else s in
  if String.length s >= 2 && s.[0] = 'L' then
    int_of line (String.sub s 1 (String.length s - 1))
  else fail line "expected a label, found %S" s

let kv line key s =
  let prefix = key ^ "=" in
  let pn = String.length prefix in
  if String.length s > pn && String.sub s 0 pn = prefix then
    String.sub s pn (String.length s - pn)
  else fail line "expected %s=..., found %S" key s

let ibinop_of line s =
  match
    List.find_opt
      (fun op -> ibinop_name op = s)
      [ Instr.Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr ]
  with
  | Some op -> op
  | None -> fail line "unknown integer op %S" s

let cmp_of line s =
  match
    List.find_opt
      (fun c -> cmp_name c = s)
      [ Instr.Eq; Ne; Lt; Le; Gt; Ge ]
  with
  | Some c -> c
  | None -> fail line "unknown comparison %S" s

let fbinop_of line s =
  match
    List.find_opt
      (fun op -> fbinop_name op = s)
      [ Instr.Fadd; Fsub; Fmul; Fdiv ]
  with
  | Some op -> op
  | None -> fail line "unknown float op %S" s

let float_of line s =
  match float_of_string_opt s with
  | Some x -> x
  | None -> fail line "expected a float, found %S" s

let ret_dest_of line s =
  if s = "none" then Instr.Rnone
  else if String.length s >= 2 && s.[0] = 'r' then
    Instr.Rint (ireg line s)
  else if String.length s >= 2 && s.[0] = 'f' then
    Instr.Rfloat (freg line s)
  else fail line "bad return destination %S" s

(* call <site> <target> ret=<dest> iargs r.. fargs f.. *)
let parse_call line ~indirect words =
  match words with
  | site :: target :: ret :: rest ->
      let site = int_of line site in
      let ret = ret_dest_of line (kv line "ret" ret) in
      let rec split_args acc = function
        | "iargs" :: rest -> split_args acc rest
        | "fargs" :: rest -> (List.rev acc, rest)
        | w :: rest -> split_args (w :: acc) rest
        | [] -> (List.rev acc, [])
      in
      (match rest with
      | "iargs" :: rest ->
          let iargs_s, fargs_s = split_args [] rest in
          let args = List.map (ireg line) iargs_s in
          let fargs = List.map (freg line) fargs_s in
          if indirect then
            Instr.Callind
              { target = ireg line target; args; fargs; ret; site }
          else Instr.Call { callee = target; args; fargs; ret; site }
      | _ -> fail line "expected iargs in call")
  | _ -> fail line "malformed call"

let parse_prof line words =
  match words with
  | [ "cct_enter"; a; n ] ->
      Instr.Cct_enter { proc_addr = int_of line a; nsites = int_of line n }
  | [ "cct_exit" ] -> Instr.Cct_exit
  | [ "cct_call"; s; i ] ->
      Instr.Cct_call { site = int_of line s; indirect = i = "1" }
  | [ "cct_menter" ] -> Instr.Cct_metric_enter
  | [ "cct_mexit" ] -> Instr.Cct_metric_exit
  | [ "cct_mback" ] -> Instr.Cct_metric_backedge
  | [ "pchash"; t; r ] ->
      Instr.Path_commit_hash { table = int_of line t; path_reg = ireg line r }
  | [ "pchashhw"; t; r ] ->
      Instr.Path_commit_hash_hw
        { table = int_of line t; path_reg = ireg line r }
  | [ "pccct"; t; r ] ->
      Instr.Path_commit_cct { table = int_of line t; path_reg = ireg line r }
  | _ -> fail line "malformed prof op"

let parse_instr line words : [ `Instr of Instr.t | `Term of Block.terminator ]
    =
  match words with
  | [ "iconst"; r; n ] -> `Instr (Instr.Iconst (ireg line r, int_of line n))
  | [ "sym"; r; s ] -> `Instr (Instr.Iconst_sym (ireg line r, s))
  | [ "fconst"; f; x ] -> `Instr (Instr.Fconst (freg line f, float_of line x))
  | [ "imov"; a; b ] -> `Instr (Instr.Imov (ireg line a, ireg line b))
  | [ "fmov"; a; b ] -> `Instr (Instr.Fmov (freg line a, freg line b))
  | [ "ibin"; op; d; a; b ] ->
      `Instr
        (Instr.Ibinop (ibinop_of line op, ireg line d, ireg line a,
                       ireg line b))
  | [ "ibini"; op; d; a; n ] ->
      `Instr
        (Instr.Ibinop_imm (ibinop_of line op, ireg line d, ireg line a,
                           int_of line n))
  | [ "icmp"; c; d; a; b ] ->
      `Instr
        (Instr.Icmp (cmp_of line c, ireg line d, ireg line a, ireg line b))
  | [ "icmpi"; c; d; a; n ] ->
      `Instr
        (Instr.Icmp_imm (cmp_of line c, ireg line d, ireg line a,
                         int_of line n))
  | [ "fbin"; op; d; a; b ] ->
      `Instr
        (Instr.Fbinop (fbinop_of line op, freg line d, freg line a,
                       freg line b))
  | [ "fcmp"; c; d; a; b ] ->
      `Instr
        (Instr.Fcmp (cmp_of line c, ireg line d, freg line a, freg line b))
  | [ "itof"; f; r ] -> `Instr (Instr.Itof (freg line f, ireg line r))
  | [ "ftoi"; r; f ] -> `Instr (Instr.Ftoi (ireg line r, freg line f))
  | [ "load"; d; b; o ] ->
      `Instr (Instr.Load (ireg line d, ireg line b, int_of line o))
  | [ "store"; s; b; o ] ->
      `Instr (Instr.Store (ireg line s, ireg line b, int_of line o))
  | [ "fload"; d; b; o ] ->
      `Instr (Instr.Fload (freg line d, ireg line b, int_of line o))
  | [ "fstore"; s; b; o ] ->
      `Instr (Instr.Fstore (freg line s, ireg line b, int_of line o))
  | "call" :: rest -> `Instr (parse_call line ~indirect:false rest)
  | "callind" :: rest -> `Instr (parse_call line ~indirect:true rest)
  | [ "hwread"; r; k ] ->
      `Instr (Instr.Hwread (ireg line r, int_of line k))
  | [ "hwzero" ] -> `Instr Instr.Hwzero
  | [ "hwwrite"; r; k ] ->
      `Instr (Instr.Hwwrite (ireg line r, int_of line k))
  | [ "frameaddr"; r; o ] ->
      `Instr (Instr.Frameaddr (ireg line r, int_of line o))
  | [ "printi"; r ] -> `Instr (Instr.Print_int (ireg line r))
  | [ "printf"; f ] -> `Instr (Instr.Print_float (freg line f))
  | "prof" :: rest -> `Instr (Instr.Prof (parse_prof line rest))
  | [ "jmp"; l ] -> `Term (Block.Jmp (label_of line l))
  | [ "br"; r; a; b ] ->
      `Term (Block.Br (ireg line r, label_of line a, label_of line b))
  | [ "ret" ] -> `Term (Block.Ret Block.Ret_void)
  | [ "ret"; r ] -> `Term (Block.Ret (Block.Ret_int (ireg line r)))
  | [ "retf"; f ] -> `Term (Block.Ret (Block.Ret_float (freg line f)))
  | w :: _ -> fail line "unknown instruction %S" w
  | [] -> assert false

let finish_block st cur =
  match (cur.cur_label, cur.cur_instrs) with
  | None, [] -> ()
  | None, _ -> fail st.line "instructions outside a block"
  | Some _, _ -> fail st.line "block not terminated"

let finish_proc st =
  match st.cur with
  | None -> ()
  | Some cur ->
      finish_block st cur;
      let blocks = Array.of_list (List.rev cur.blocks) in
      let proc =
        Proc.make ~frame_words:cur.cframe ~name:cur.cname
          ~iparams:cur.ciparams ~fparams:cur.cfparams ~returns:cur.creturns
          ~blocks ~entry:cur.centry
      in
      st.procs <- proc :: st.procs;
      st.cur <- None

let parse text =
  let st = { line = 0; globals = []; procs = []; main = None; cur = None } in
  let returns_of line s =
    match s with
    | "int" -> Proc.Returns_int
    | "float" -> Proc.Returns_float
    | "void" -> Proc.Returns_void
    | _ -> fail line "bad returns kind %S" s
  in
  List.iter
    (fun raw ->
      st.line <- st.line + 1;
      let line = st.line in
      let text = String.trim raw in
      if text <> "" && text.[0] <> '#' then begin
        let words =
          String.split_on_char ' ' text
          |> List.filter (fun w -> w <> "")
        in
        match words with
        | "program" :: rest -> (
            match rest with
            | [ m ] -> st.main <- Some (kv line "main" m)
            | _ -> fail line "malformed program line")
        | "global" :: name :: words :: rest ->
            let size_words = int_of line words in
            let init =
              match rest with
              | [] -> None
              | "=" :: "ints" :: vals ->
                  Some
                    (Program.Init_ints
                       (Array.of_list (List.map (int_of line) vals)))
              | "=" :: "floats" :: vals ->
                  Some
                    (Program.Init_floats
                       (Array.of_list (List.map (float_of line) vals)))
              | _ -> fail line "malformed global initialiser"
            in
            st.globals <-
              { Program.gname = name; size_words; init } :: st.globals
        | [ "proc"; name; ip; fp; rt; fr; en ] ->
            finish_proc st;
            st.cur <-
              Some
                {
                  cname = name;
                  ciparams = int_of line (kv line "iparams" ip);
                  cfparams = int_of line (kv line "fparams" fp);
                  creturns = returns_of line (kv line "returns" rt);
                  cframe = int_of line (kv line "frame" fr);
                  centry = int_of line (kv line "entry" en);
                  blocks = [];
                  cur_label = None;
                  cur_instrs = [];
                }
        | [ label ] when String.length label > 1
                         && label.[0] = 'L'
                         && label.[String.length label - 1] = ':' -> (
            match st.cur with
            | None -> fail line "label outside a procedure"
            | Some cur -> (
                match cur.cur_label with
                | Some _ -> fail line "previous block not terminated"
                | None -> cur.cur_label <- Some (label_of line label)))
        | _ -> (
            match st.cur with
            | None -> fail line "instruction outside a procedure"
            | Some cur -> (
                match cur.cur_label with
                | None -> fail line "instruction outside a block"
                | Some l -> (
                    match parse_instr line words with
                    | `Instr i -> cur.cur_instrs <- i :: cur.cur_instrs
                    | `Term t ->
                        cur.blocks <-
                          {
                            Block.label = l;
                            instrs = List.rev cur.cur_instrs;
                            term = t;
                          }
                          :: cur.blocks;
                        cur.cur_label <- None;
                        cur.cur_instrs <- [])))
      end)
    (String.split_on_char '\n' text);
  finish_proc st;
  match st.main with
  | None -> fail 0 "no program line"
  | Some main ->
      (try
         Program.make ~procs:(List.rev st.procs)
           ~globals:(List.rev st.globals) ~main
       with Invalid_argument msg -> fail st.line "%s" msg)
