let data_base = 0x0002_0000
let heap_base = 0x0200_0000
let prof_base = 0x0800_0000
let stack_limit = 0x1000_0000
let stack_base = 0x1040_0000
let code_base = 0x4000_0000
let word = 8
let instr_bytes = 4

type proc_layout = {
  base : int;
  block_base : int array;  (* per label: address of first slot *)
  instr_off : int array array;  (* per label, per instruction index
                                   (terminator = last), byte offset *)
  limit : int;  (* first address past the procedure *)
}

type t = {
  procs : (string, proc_layout) Hashtbl.t;
  proc_order : (int * string) list;  (* sorted by base address *)
  globals : (string, int) Hashtbl.t;
  data_end : int;
}

let layout_proc base (p : Proc.t) =
  let nb = Proc.num_blocks p in
  let block_base = Array.make nb 0 in
  let instr_off = Array.make nb [||] in
  let cursor = ref base in
  Array.iter
    (fun (b : Block.t) ->
      block_base.(b.label) <- !cursor;
      let offs =
        Array.make (List.length b.instrs + 1) 0
      in
      List.iteri
        (fun i instr ->
          offs.(i) <- !cursor - base;
          cursor := !cursor + (Instr.slots instr * instr_bytes))
        b.instrs;
      offs.(Array.length offs - 1) <- !cursor - base;
      cursor := !cursor + instr_bytes;
      (* terminator slot *)
      instr_off.(b.label) <- offs)
    p.blocks;
  ({ base; block_base; instr_off; limit = !cursor }, !cursor)

let build (prog : Program.t) =
  let procs = Hashtbl.create 16 in
  let cursor = ref code_base in
  let order = ref [] in
  Array.iter
    (fun (p : Proc.t) ->
      let pl, next = layout_proc !cursor p in
      Hashtbl.replace procs p.name pl;
      order := (pl.base, p.name) :: !order;
      (* Align procedures to 32 bytes (an I-cache line), as linkers do. *)
      cursor := (next + 31) land lnot 31)
    prog.procs;
  let globals = Hashtbl.create 16 in
  let dcursor = ref data_base in
  Array.iter
    (fun (g : Program.global) ->
      Hashtbl.replace globals g.gname !dcursor;
      dcursor := !dcursor + (g.size_words * word))
    prog.globals;
  {
    procs;
    proc_order = List.sort compare !order;
    globals;
    data_end = !dcursor;
  }

let proc_layout t name =
  match Hashtbl.find_opt t.procs name with
  | Some pl -> pl
  | None -> invalid_arg (Printf.sprintf "Layout: unknown procedure %S" name)

let proc_addr t name = (proc_layout t name).base

let instr_addr t ~proc ~label ~index =
  let pl = proc_layout t proc in
  if label < 0 || label >= Array.length pl.instr_off then
    invalid_arg "Layout.instr_addr: bad label";
  let offs = pl.instr_off.(label) in
  if index < 0 || index >= Array.length offs then
    invalid_arg "Layout.instr_addr: bad instruction index";
  pl.base + offs.(index)

let global_addr t name =
  match Hashtbl.find_opt t.globals name with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Layout: unknown global %S" name)

let data_end t = t.data_end

let resolve t name =
  match Hashtbl.find_opt t.procs name with
  | Some pl -> pl.base
  | None -> (
      match Hashtbl.find_opt t.globals name with
      | Some a -> a
      | None -> raise Not_found)

let proc_of_addr t addr =
  (* proc_order is sorted by base; find the last base <= addr and check the
     address lies within that procedure. *)
  let rec search best = function
    | [] -> best
    | (base, name) :: rest ->
        if base <= addr then search (Some name) rest else best
  in
  match search None t.proc_order with
  | Some name when addr < (proc_layout t name).limit -> Some name
  | Some _ | None -> None
