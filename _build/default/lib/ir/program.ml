type init = Init_ints of int array | Init_floats of float array

type global = { gname : string; size_words : int; init : init option }

type t = { procs : Proc.t array; globals : global array; main : string }

let check_unique kind names =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Program.make: duplicate %s %S" kind n);
      Hashtbl.add seen n ())
    names

let init_length = function
  | Init_ints a -> Array.length a
  | Init_floats a -> Array.length a

let make ~procs ~globals ~main =
  check_unique "procedure" (List.map (fun (p : Proc.t) -> p.name) procs);
  check_unique "global" (List.map (fun g -> g.gname) globals);
  List.iter
    (fun g ->
      match g.init with
      | Some init when init_length init > g.size_words ->
          invalid_arg
            (Printf.sprintf "Program.make: init of %S exceeds its size"
               g.gname)
      | Some _ | None -> ())
    globals;
  (match List.find_opt (fun (p : Proc.t) -> p.name = main) procs with
  | None -> invalid_arg (Printf.sprintf "Program.make: no main %S" main)
  | Some p ->
      if p.iparams <> 0 || p.fparams <> 0 then
        invalid_arg "Program.make: main must take no parameters");
  { procs = Array.of_list procs; globals = Array.of_list globals; main }

let proc_index t name =
  let rec search i =
    if i >= Array.length t.procs then None
    else if t.procs.(i).Proc.name = name then Some i
    else search (i + 1)
  in
  search 0

let find_proc t name =
  Option.map (fun i -> t.procs.(i)) (proc_index t name)

let proc_exn t name =
  match find_proc t name with Some p -> p | None -> raise Not_found

let find_global t name =
  Array.find_opt (fun g -> g.gname = name) t.globals

let map_procs f t =
  { t with procs = Array.map f t.procs }

let size_slots t =
  Array.fold_left (fun acc p -> acc + Proc.size_slots p) 0 t.procs

let pp ppf t =
  Format.fprintf ppf "@[<v>program (main=%s)" t.main;
  Array.iter
    (fun g -> Format.fprintf ppf "@,global %s[%d]" g.gname g.size_words)
    t.globals;
  Array.iter (fun p -> Format.fprintf ppf "@,%a" Proc.pp p) t.procs;
  Format.fprintf ppf "@]"
