(** Basic blocks: a straight-line instruction sequence plus one terminator.

    Calls are ordinary instructions, not terminators — intraprocedural paths
    pass through call sites, exactly as in PP, and the profiler saves and
    restores hardware counters around the callee rather than ending the
    path. *)

type label = int

type ret_val =
  | Ret_int of Instr.ireg
  | Ret_float of Instr.freg
  | Ret_void

type terminator =
  | Jmp of label
  | Br of Instr.ireg * label * label
      (** [Br (r, t, f)]: if [r <> 0] go to [t] else [f] *)
  | Ret of ret_val

type t = { label : label; instrs : Instr.t list; term : terminator }

(** Labels this block can transfer control to, in branch order
    (true arm before false arm). *)
val successors : t -> label list

(** Instruction slots occupied, terminator included. *)
val slots : t -> int

val pp_terminator : Format.formatter -> terminator -> unit
val pp : Format.formatter -> t -> unit
