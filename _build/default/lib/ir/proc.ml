type return_kind = Returns_int | Returns_float | Returns_void

type t = {
  name : string;
  iparams : int;
  fparams : int;
  returns : return_kind;
  blocks : Block.t array;
  entry : Block.label;
  niregs : int;
  nfregs : int;
  nsites : int;
  frame_words : int;
}

let iter_instrs f p =
  Array.iter
    (fun (b : Block.t) -> List.iter (fun i -> f b.label i) b.instrs)
    p.blocks

let site_of_instr = function
  | Instr.Call { site; _ } | Instr.Callind { site; _ } -> Some site
  | _ -> None

let derive_counts ~name ~iparams ~fparams ~blocks =
  let niregs = ref iparams and nfregs = ref fparams in
  let sites = ref [] in
  let touch_i r = if r + 1 > !niregs then niregs := r + 1 in
  let touch_f r = if r + 1 > !nfregs then nfregs := r + 1 in
  Array.iter
    (fun (b : Block.t) ->
      List.iter
        (fun i ->
          List.iter touch_i (Instr.idefs i);
          List.iter touch_i (Instr.iuses i);
          List.iter touch_f (Instr.fdefs i);
          List.iter touch_f (Instr.fuses i);
          match site_of_instr i with
          | Some s -> sites := s :: !sites
          | None -> ())
        b.instrs;
      match b.term with
      | Block.Br (r, _, _) -> touch_i r
      | Block.Ret (Block.Ret_int r) -> touch_i r
      | Block.Ret (Block.Ret_float r) -> touch_f r
      | Block.Jmp _ | Block.Ret Block.Ret_void -> ())
    blocks;
  let sites = List.sort compare !sites in
  let nsites = List.length sites in
  List.iteri
    (fun i s ->
      if i <> s then
        invalid_arg
          (Printf.sprintf
             "Proc.make(%s): call sites must be a permutation of 0..%d \
              (saw site %d at rank %d)"
             name (nsites - 1) s i))
    sites;
  (!niregs, !nfregs, nsites)

let make ~frame_words ~name ~iparams ~fparams ~returns ~blocks ~entry =
  Array.iteri
    (fun i (b : Block.t) ->
      if b.label <> i then
        invalid_arg
          (Printf.sprintf "Proc.make(%s): block %d has label %d" name i
             b.label);
      List.iter
        (fun l ->
          if l < 0 || l >= Array.length blocks then
            invalid_arg
              (Printf.sprintf "Proc.make(%s): L%d targets missing L%d" name
                 b.label l))
        (Block.successors b))
    blocks;
  if entry < 0 || entry >= Array.length blocks then
    invalid_arg (Printf.sprintf "Proc.make(%s): bad entry label" name);
  let niregs, nfregs, nsites =
    derive_counts ~name ~iparams ~fparams ~blocks
  in
  if frame_words < 0 then
    invalid_arg (Printf.sprintf "Proc.make(%s): negative frame size" name);
  {
    name;
    iparams;
    fparams;
    returns;
    blocks;
    entry;
    niregs;
    nfregs;
    nsites;
    frame_words;
  }

let with_blocks ?entry ?frame_words p blocks =
  let entry = Option.value ~default:p.entry entry in
  let frame_words = Option.value ~default:p.frame_words frame_words in
  make ~frame_words ~name:p.name ~iparams:p.iparams ~fparams:p.fparams
    ~returns:p.returns ~blocks ~entry

let block p l =
  if l < 0 || l >= Array.length p.blocks then
    invalid_arg (Printf.sprintf "Proc.block(%s): no block L%d" p.name l);
  p.blocks.(l)

let num_blocks p = Array.length p.blocks

let size_slots p =
  Array.fold_left (fun acc b -> acc + Block.slots b) 0 p.blocks

let pp ppf p =
  Format.fprintf ppf "@[<v>proc %s (iparams=%d fparams=%d) entry=L%d" p.name
    p.iparams p.fparams p.entry;
  Array.iter (fun b -> Format.fprintf ppf "@,%a" Block.pp b) p.blocks;
  Format.fprintf ppf "@]"
