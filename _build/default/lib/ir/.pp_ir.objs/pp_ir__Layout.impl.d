lib/ir/layout.ml: Array Block Hashtbl Instr List Printf Proc Program
