lib/ir/validate.mli: Program
