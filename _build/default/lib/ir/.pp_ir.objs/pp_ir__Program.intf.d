lib/ir/program.mli: Format Proc
