lib/ir/ir_text.ml: Array Block Format Instr List Printf Proc Program String
