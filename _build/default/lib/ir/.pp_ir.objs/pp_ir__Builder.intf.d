lib/ir/builder.mli: Block Instr Proc
