lib/ir/layout.mli: Block Program
