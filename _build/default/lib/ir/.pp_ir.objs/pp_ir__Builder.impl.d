lib/ir/builder.ml: Array Block Instr List Printf Proc
