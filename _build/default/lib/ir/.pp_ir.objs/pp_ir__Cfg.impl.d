lib/ir/cfg.ml: Array Block Format List Pp_graph Printf Proc
