lib/ir/proc.ml: Array Block Format Instr List Option Printf
