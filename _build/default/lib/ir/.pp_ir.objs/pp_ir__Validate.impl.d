lib/ir/validate.ml: Array Block Cfg Format Instr List Pp_graph Proc Program
