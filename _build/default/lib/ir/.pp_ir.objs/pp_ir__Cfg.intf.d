lib/ir/cfg.mli: Block Format Pp_graph Proc
