lib/ir/block.ml: Format Instr List
