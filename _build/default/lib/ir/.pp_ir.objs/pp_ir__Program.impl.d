lib/ir/program.ml: Array Format Hashtbl List Option Printf Proc
