lib/ir/ir_text.mli: Format Program
