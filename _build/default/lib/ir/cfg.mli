(** The control-flow-graph view of a procedure, with synthetic ENTRY and
    EXIT vertices as the Ball–Larus algorithm requires.

    The vertex for block label [l] is [l] itself; ENTRY is [num_blocks] and
    EXIT is [num_blocks + 1].  Out-edges are created in a deterministic
    order (ENTRY edge; then blocks in label order, a conditional's true arm
    before its false arm), which fixes the successor ordering the labelling
    pass depends on. *)

type edge_role =
  | Entry  (** ENTRY -> entry block *)
  | Jump  (** unconditional terminator *)
  | Branch_true
  | Branch_false
  | Return  (** return block -> EXIT *)

type t = private {
  proc : Proc.t;
  graph : Pp_graph.Digraph.t;
  entry : Pp_graph.Digraph.vertex;
  exit : Pp_graph.Digraph.vertex;
  roles : edge_role array;  (** indexed by edge id *)
}

val of_proc : Proc.t -> t

(** [label_of_vertex t v] is [Some l] for a block vertex, [None] for
    ENTRY/EXIT. *)
val label_of_vertex : t -> Pp_graph.Digraph.vertex -> Block.label option

val vertex_of_label : t -> Block.label -> Pp_graph.Digraph.vertex
val role : t -> Pp_graph.Digraph.edge -> edge_role
val is_entry : t -> Pp_graph.Digraph.vertex -> bool
val is_exit : t -> Pp_graph.Digraph.vertex -> bool

(** Human-readable vertex name: ["ENTRY"], ["EXIT"] or ["L<n>"]. *)
val vertex_name : t -> Pp_graph.Digraph.vertex -> string

val pp : Format.formatter -> t -> unit
