(** Imperative construction of procedures, used by the MiniC lowering pass,
    the instrumenter's stubs and the test suite.

    A builder maintains a current block; instructions are appended to it
    with {!emit} and the block is finished with {!terminate}.  Call sites
    are numbered automatically in emission order. *)

type t

val create :
  name:string ->
  iparams:int ->
  fparams:int ->
  returns:Proc.return_kind ->
  t

(** Grow the frame, returning the byte offset of [words] fresh stack words
    (for a local array). *)
val alloc_frame : t -> words:int -> int

(** Fresh integer register.  Registers [0 .. iparams-1] are the parameters
    and are pre-allocated. *)
val new_ireg : t -> Instr.ireg

val new_freg : t -> Instr.freg

(** Fresh block label; does not switch to it.  The first block created is
    the procedure entry. *)
val new_block : t -> Block.label

(** Switch the emission point.  A block may only be filled once.
    @raise Invalid_argument if the block was already terminated. *)
val switch_to : t -> Block.label -> unit

val current : t -> Block.label

(** @raise Invalid_argument if no block is current. *)
val emit : t -> Instr.t -> unit

(** Emit a direct call, assigning the next call-site number. *)
val emit_call :
  t ->
  callee:string ->
  args:Instr.ireg list ->
  fargs:Instr.freg list ->
  ret:Instr.ret_dest ->
  unit

(** Emit an indirect call through a register holding a procedure address. *)
val emit_callind :
  t ->
  target:Instr.ireg ->
  args:Instr.ireg list ->
  fargs:Instr.freg list ->
  ret:Instr.ret_dest ->
  unit

(** Terminate the current block; emission then requires [switch_to]. *)
val terminate : t -> Block.terminator -> unit

(** @raise Invalid_argument if any created block was never terminated. *)
val finish : t -> Proc.t
