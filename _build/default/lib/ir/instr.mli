(** Instructions of the register-transfer IR.

    The IR plays the role SPARC machine code played for EEL/PP: a low-level
    program representation that the instrumenter edits and the virtual
    machine executes against the simulated microarchitecture.  Two register
    classes exist — integer registers and floating-point registers — indexed
    densely per procedure.  Memory is byte-addressed; loads and stores move
    8-byte words and must be word-aligned.

    Profiling pseudo-operations ({!prof_op}) stand for runtime-library calls
    the real PP tool emitted as SPARC code; the VM executes them natively
    but charges an explicit instruction/memory cost so that they perturb the
    simulated hardware counters the way real instrumentation perturbs real
    counters (see {!Pp_vm.Runtime}). *)

type ireg = int
type freg = int

(** Call-site index, dense within a procedure; the CCT keeps one callee slot
    per site. *)
type site = int

type ibinop =
  | Add
  | Sub
  | Mul
  | Div  (** traps on zero divisor *)
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr  (** arithmetic right shift *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type fbinop = Fadd | Fsub | Fmul | Fdiv

(** Where a call's result goes. *)
type ret_dest = Rint of ireg | Rfloat of freg | Rnone

(** Profiling pseudo-operations.  [table] identifiers index the per-procedure
    path-counter tables registered with the VM runtime. *)
type prof_op =
  | Cct_enter of { proc_addr : int; nsites : int }
      (** procedure-entry CCT logic: look up or create this procedure's call
          record under the caller-supplied callee slot (gCSP), push the local
          call-record pointer (lCRP), save gCSP to the (simulated) stack *)
  | Cct_exit  (** restore gCSP from the stack, pop lCRP *)
  | Cct_call of { site : site; indirect : bool }
      (** set gCSP to lCRP's callee slot for [site], just before a call *)
  | Cct_metric_enter  (** record PIC values at entry for context+HW *)
  | Cct_metric_exit
      (** accumulate PIC deltas into the current call record *)
  | Cct_metric_backedge
      (** mid-procedure accumulate, placed on loop backedges to bound the
          measured interval (paper §4.3) *)
  | Path_commit_hash of { table : int; path_reg : ireg }
      (** [count\[r\]++] through a hash table, used when a procedure has too
          many potential paths for an array *)
  | Path_commit_hash_hw of { table : int; path_reg : ireg }
      (** hash-table variant that also accumulates the two PIC deltas *)
  | Path_commit_cct of { table : int; path_reg : ireg }
      (** [count\[r\]++] in the *current call record*'s table: the
          flow×context combination *)

type t =
  | Iconst of ireg * int
  | Iconst_sym of ireg * string
      (** address of a global or procedure; resolved at layout time.
          A procedure's address doubles as its identifier (as in PP) and as
          a function-pointer value for indirect calls. *)
  | Fconst of freg * float
  | Imov of ireg * ireg
  | Fmov of freg * freg
  | Ibinop of ibinop * ireg * ireg * ireg
  | Ibinop_imm of ibinop * ireg * ireg * int
  | Icmp of cmp * ireg * ireg * ireg  (** rd = rs1 cmp rs2 ? 1 : 0 *)
  | Icmp_imm of cmp * ireg * ireg * int
  | Fbinop of fbinop * freg * freg * freg
  | Fcmp of cmp * ireg * freg * freg
  | Itof of freg * ireg
  | Ftoi of ireg * freg  (** truncation *)
  | Load of ireg * ireg * int  (** rd <- mem\[rs + off\] *)
  | Store of ireg * ireg * int  (** mem\[rbase + off\] <- rs *)
  | Fload of freg * ireg * int
  | Fstore of freg * ireg * int
  | Call of {
      callee : string;
      args : ireg list;
      fargs : freg list;
      ret : ret_dest;
      site : site;
    }
  | Callind of {
      target : ireg;  (** holds a procedure address *)
      args : ireg list;
      fargs : freg list;
      ret : ret_dest;
      site : site;
    }
  | Hwread of ireg * int  (** rd <- PIC k (k = 0 or 1), 32-bit value *)
  | Hwzero  (** zero both PICs; PP always follows this with a read to force
                write completion on the out-of-order UltraSPARC *)
  | Hwwrite of ireg * int
      (** PIC k <- rs (low 32 bits): restore a saved counter value, the
          callee-side save/restore of §3.1 *)
  | Frameaddr of ireg * int
      (** rd <- frame pointer + byte offset: the address of a stack-allocated
          local array slot *)
  | Print_int of ireg
      (** append the value to the program's output stream (a test oracle:
          instrumented and uninstrumented runs must print identically) *)
  | Print_float of freg
  | Prof of prof_op

(** Integer registers written / read by an instruction (excluding callee
    effects). *)
val idefs : t -> ireg list

val iuses : t -> ireg list
val fdefs : t -> freg list
val fuses : t -> freg list

(** True for [Load]/[Fload]. *)
val is_load : t -> bool

(** True for [Store]/[Fstore]. *)
val is_store : t -> bool

val is_call : t -> bool

(** Code-size footprint in instruction slots.  Ordinary instructions occupy
    one slot; profiling pseudo-ops occupy the size of the runtime stub they
    stand for, so that they displace I-cache lines realistically. *)
val slots : t -> int

val pp_ibinop : Format.formatter -> ibinop -> unit
val pp_cmp : Format.formatter -> cmp -> unit
val pp_fbinop : Format.formatter -> fbinop -> unit
val pp : Format.formatter -> t -> unit
