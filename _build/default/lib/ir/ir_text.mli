(** A textual form of whole programs — the assembler/disassembler layer.

    {!emit} and {!parse} round-trip exactly: [parse (emit p)] rebuilds [p]
    (same procedures, blocks, instructions, globals and call sites), which
    the test suite checks on every workload.  The concrete syntax is what
    {!emit} prints:

    {v
    program main=main
    global counts 16
    global bias 1 = ints 7
    proc add iparams=2 fparams=0 returns=int frame=0
    L0:
      r2 = add r0, r1
      ret r2
    v}

    The [pp] tool accepts this format for files ending in [.ppir]. *)

val emit : Format.formatter -> Program.t -> unit
val to_string : Program.t -> string

exception Parse_error of int * string
(** Line number and message. *)

(** @raise Parse_error *)
val parse : string -> Program.t
