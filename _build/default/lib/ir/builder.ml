type partial_block = {
  mutable rev_instrs : Instr.t list;
  mutable term : Block.terminator option;
  mutable touched : bool;  (* has ever been the current block *)
}

type t = {
  name : string;
  iparams : int;
  fparams : int;
  returns : Proc.return_kind;
  mutable frame_words : int;
  mutable next_ireg : int;
  mutable next_freg : int;
  mutable next_site : int;
  mutable blocks : partial_block array;
  mutable n_blocks : int;
  mutable cur : Block.label option;
}

let create ~name ~iparams ~fparams ~returns =
  {
    name;
    iparams;
    fparams;
    returns;
    frame_words = 0;
    next_ireg = iparams;
    next_freg = fparams;
    next_site = 0;
    blocks = Array.make 8 { rev_instrs = []; term = None; touched = false };
    n_blocks = 0;
    cur = None;
  }

let alloc_frame t ~words =
  if words <= 0 then invalid_arg "Builder.alloc_frame: words <= 0";
  let off = t.frame_words * 8 in
  t.frame_words <- t.frame_words + words;
  off

let new_ireg t =
  let r = t.next_ireg in
  t.next_ireg <- r + 1;
  r

let new_freg t =
  let r = t.next_freg in
  t.next_freg <- r + 1;
  r

let new_block t =
  let l = t.n_blocks in
  if l >= Array.length t.blocks then begin
    let blocks =
      Array.make (2 * Array.length t.blocks)
        { rev_instrs = []; term = None; touched = false }
    in
    Array.blit t.blocks 0 blocks 0 l;
    t.blocks <- blocks
  end;
  t.blocks.(l) <- { rev_instrs = []; term = None; touched = false };
  t.n_blocks <- l + 1;
  if t.cur = None then begin
    t.blocks.(l).touched <- true;
    t.cur <- Some l
  end;
  l

let switch_to t l =
  if l < 0 || l >= t.n_blocks then invalid_arg "Builder.switch_to: no block";
  let b = t.blocks.(l) in
  if b.term <> None then
    invalid_arg
      (Printf.sprintf "Builder.switch_to(%s): L%d already terminated" t.name
         l);
  if b.touched && b.rev_instrs <> [] then
    invalid_arg
      (Printf.sprintf "Builder.switch_to(%s): L%d already filled" t.name l);
  b.touched <- true;
  t.cur <- Some l

let current t =
  match t.cur with
  | Some l -> l
  | None -> invalid_arg (Printf.sprintf "Builder(%s): no current block" t.name)

let emit t i =
  let b = t.blocks.(current t) in
  b.rev_instrs <- i :: b.rev_instrs

let fresh_site t =
  let s = t.next_site in
  t.next_site <- s + 1;
  s

let emit_call t ~callee ~args ~fargs ~ret =
  emit t (Instr.Call { callee; args; fargs; ret; site = fresh_site t })

let emit_callind t ~target ~args ~fargs ~ret =
  emit t (Instr.Callind { target; args; fargs; ret; site = fresh_site t })

let terminate t term =
  let l = current t in
  t.blocks.(l).term <- Some term;
  t.cur <- None

let finish t =
  let blocks =
    Array.init t.n_blocks (fun l ->
        let b = t.blocks.(l) in
        match b.term with
        | None ->
            invalid_arg
              (Printf.sprintf "Builder.finish(%s): L%d unterminated" t.name l)
        | Some term ->
            { Block.label = l; instrs = List.rev b.rev_instrs; term })
  in
  Proc.make ~frame_words:t.frame_words ~name:t.name ~iparams:t.iparams
    ~fparams:t.fparams ~returns:t.returns ~blocks ~entry:0
