module Digraph = Pp_graph.Digraph

type edge_role = Entry | Jump | Branch_true | Branch_false | Return

type t = {
  proc : Proc.t;
  graph : Digraph.t;
  entry : Digraph.vertex;
  exit : Digraph.vertex;
  roles : edge_role array;
}

let of_proc (proc : Proc.t) =
  let n = Proc.num_blocks proc in
  let g = Digraph.create () in
  for _ = 0 to n + 1 do
    ignore (Digraph.add_vertex g)
  done;
  let entry = n and exit = n + 1 in
  let roles = ref [] in
  let add src dst role =
    let _e = Digraph.add_edge g src dst in
    roles := role :: !roles
  in
  add entry proc.entry Entry;
  Array.iter
    (fun (b : Block.t) ->
      match b.term with
      | Block.Jmp l -> add b.label l Jump
      | Block.Br (_, t, f) ->
          add b.label t Branch_true;
          add b.label f Branch_false
      | Block.Ret _ -> add b.label exit Return)
    proc.blocks;
  let roles = Array.of_list (List.rev !roles) in
  { proc; graph = g; entry; exit; roles }

let label_of_vertex t v =
  if v = t.entry || v = t.exit then None else Some v

let vertex_of_label t l =
  if l < 0 || l >= Proc.num_blocks t.proc then
    invalid_arg "Cfg.vertex_of_label";
  l

let role t (e : Digraph.edge) =
  if e.id >= Array.length t.roles then
    (* Edges added after [of_proc] (the path profiler's pseudo edges) live in
       a transformed copy, never in the original CFG. *)
    invalid_arg "Cfg.role: edge not part of the original CFG";
  t.roles.(e.id)

let is_entry t v = v = t.entry
let is_exit t v = v = t.exit

let vertex_name t v =
  if v = t.entry then "ENTRY"
  else if v = t.exit then "EXIT"
  else Printf.sprintf "L%d" v

let pp ppf t =
  Format.fprintf ppf "@[<v>cfg of %s:" t.proc.Proc.name;
  Digraph.iter_edges
    (fun e ->
      Format.fprintf ppf "@,%s -> %s" (vertex_name t e.src)
        (vertex_name t e.dst))
    t.graph;
  Format.fprintf ppf "@]"
