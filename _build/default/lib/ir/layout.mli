(** Address assignment — the linker.

    Every instruction slot gets a 4-byte code address (so instrumentation
    displaces I-cache lines realistically), every global a word-aligned data
    address.  A procedure's address — the address of its first instruction —
    doubles as its identifier and as its function-pointer value, as on
    SPARC.

    The simulated address space:
    - [data_base]: globals;
    - [heap_base]: MiniC's bump allocator;
    - [prof_base]: profiling data (counter tables, accumulators, CCT heap);
    - [stack_base]: the stack, growing downward;
    - [code_base]: instructions (fetch-only; never read as data). *)

val data_base : int
val heap_base : int
val prof_base : int
val stack_base : int

(** Lowest legal stack address. *)
val stack_limit : int

val code_base : int

(** Bytes per memory word (8). *)
val word : int

(** Bytes per instruction slot (4). *)
val instr_bytes : int

type t

(** @raise Invalid_argument if a symbol is missing (dangling [Iconst_sym] or
    call target are reported by {!Validate}, not here). *)
val build : Program.t -> t

val proc_addr : t -> string -> int

(** [instr_addr t ~proc ~label ~index] is the code address of the
    [index]-th instruction of the block ([index = length instrs] addresses
    the terminator). *)
val instr_addr : t -> proc:string -> label:Block.label -> index:int -> int

val global_addr : t -> string -> int

(** First free address after the globals (start of the heap guard gap). *)
val data_end : t -> int

(** Resolve a symbol: a procedure name to its code address, or a global to
    its data address.  @raise Not_found *)
val resolve : t -> string -> int

(** The procedure whose code spans the given address, if any — the inverse
    of [proc_addr], used to decode function-pointer values. *)
val proc_of_addr : t -> int -> string option
