(** Procedure editing — the slice of EEL's functionality PP relied on.

    An editor wraps one procedure and accumulates edits:
    - fresh registers (and a reserved spill slot in the frame);
    - instructions at procedure entry (in a fresh preamble block, so that
      code "on the ENTRY edge" never re-executes when the original entry
      block is a loop target);
    - instructions on a CFG edge (placed in the source block when the edge
      is its only departure, in the destination block when the edge is its
      only arrival, and in a freshly split block otherwise);
    - instructions before every return;
    - instructions before and after call instructions.

    Edits are denominated in original block labels and original CFG edges;
    [finish] materialises them into a new procedure. *)

module Digraph = Pp_graph.Digraph

type t

val create : Pp_ir.Proc.t -> t

(** The procedure as given (before edits). *)
val original : t -> Pp_ir.Proc.t

(** The CFG the edit coordinates refer to. *)
val cfg : t -> Pp_ir.Cfg.t

val new_ireg : t -> Pp_ir.Instr.ireg

(** Reserve one frame word; returns the [Frameaddr] byte offset. *)
val alloc_spill_slot : t -> int

val at_entry : t -> Pp_ir.Instr.t list -> unit

(** [on_edge t edge instrs] — [edge] must belong to [cfg t]'s graph and not
    be the ENTRY edge (use {!at_entry}) . Multiple calls on one edge append
    in order. *)
val on_edge : t -> Digraph.edge -> Pp_ir.Instr.t list -> unit

val before_returns : t -> Pp_ir.Instr.t list -> unit

(** [around_calls t f] — for every call instruction, [f ~site ~indirect]
    returns [(before, after)] instruction lists spliced around it. *)
val around_calls :
  t ->
  (site:int -> indirect:bool -> Pp_ir.Instr.t list * Pp_ir.Instr.t list) ->
  unit

(** Build the edited procedure.  @raise Invalid_argument on conflicting
    edits. *)
val finish : t -> Pp_ir.Proc.t
