(** CCT-construction instrumentation (context-sensitive profiling, §4.2).

    Emits the paper's five instrumentation points into an {!Editor}:
    procedure entry (find/create the call record, save gCSP), each call
    site (set gCSP to the callee slot), procedure exit (restore gCSP), and
    — with hardware metrics — PIC recording at entry/exit, optionally also
    on loop backedges to bound the measured interval against 32-bit wrap
    (§4.3). *)

(** [emit ed ~metrics ~backedge_reads] — [metrics] enables the PIC-delta
    accumulation into call records (Context+HW); [backedge_reads] adds the
    §4.3 mid-procedure reads on every loop backedge. *)
val emit : Editor.t -> metrics:bool -> backedge_reads:bool -> unit
