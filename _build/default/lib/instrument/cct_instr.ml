module I = Pp_ir.Instr
module Dfs = Pp_graph.Dfs

let emit ed ~metrics ~backedge_reads =
  let proc = Editor.original ed in
  let nsites = proc.Pp_ir.Proc.nsites in
  Editor.at_entry ed
    ([ I.Prof (I.Cct_enter { proc_addr = 0; nsites }) ]
    @ if metrics then [ I.Prof I.Cct_metric_enter ] else []);
  Editor.around_calls ed (fun ~site ~indirect ->
      ([ I.Prof (I.Cct_call { site; indirect }) ], []));
  Editor.before_returns ed
    ((if metrics then [ I.Prof I.Cct_metric_exit ] else [])
    @ [ I.Prof I.Cct_exit ]);
  if metrics && backedge_reads then begin
    let cfg = Editor.cfg ed in
    let dfs = Dfs.run cfg.Pp_ir.Cfg.graph ~root:cfg.Pp_ir.Cfg.entry in
    List.iter
      (fun e -> Editor.on_edge ed e [ I.Prof I.Cct_metric_backedge ])
      (Dfs.back_edges dfs)
  end
