lib/instrument/cct_instr.ml: Editor List Pp_graph Pp_ir
