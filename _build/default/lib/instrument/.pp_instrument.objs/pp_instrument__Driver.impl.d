lib/instrument/driver.ml: Array Hashtbl Instrument List Option Pp_core Pp_ir Pp_machine Pp_vm
