lib/instrument/cct_instr.mli: Editor
