lib/instrument/path_instr.mli: Editor Pp_core
