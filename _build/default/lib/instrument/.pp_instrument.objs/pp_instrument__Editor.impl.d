lib/instrument/editor.ml: Array Hashtbl List Pp_graph Pp_ir
