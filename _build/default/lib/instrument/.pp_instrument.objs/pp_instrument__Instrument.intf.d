lib/instrument/instrument.mli: Pp_core Pp_ir
