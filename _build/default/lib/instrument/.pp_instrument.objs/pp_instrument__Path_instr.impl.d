lib/instrument/path_instr.ml: Editor List Pp_core Pp_ir
