lib/instrument/driver.mli: Instrument Pp_core Pp_graph Pp_ir Pp_machine Pp_vm
