lib/instrument/instrument.ml: Array Cct_instr Editor List Path_instr Pp_core Pp_graph Pp_ir
