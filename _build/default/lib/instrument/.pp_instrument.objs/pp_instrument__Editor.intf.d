lib/instrument/editor.mli: Pp_graph Pp_ir
