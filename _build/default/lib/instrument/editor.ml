module Digraph = Pp_graph.Digraph
module I = Pp_ir.Instr
module Block = Pp_ir.Block
module Proc = Pp_ir.Proc
module Cfg = Pp_ir.Cfg

type t = {
  proc : Proc.t;
  cfg : Cfg.t;
  mutable next_ireg : int;
  mutable extra_frame_words : int;
  mutable entry_rev : I.t list;
  edge_code : (int, I.t list ref) Hashtbl.t;  (* edge id -> instrs *)
  mutable ret_rev : I.t list;
  mutable call_wraps :
    (site:int -> indirect:bool -> I.t list * I.t list) list;
}

let create proc =
  {
    proc;
    cfg = Cfg.of_proc proc;
    next_ireg = proc.Proc.niregs;
    extra_frame_words = 0;
    entry_rev = [];
    edge_code = Hashtbl.create 16;
    ret_rev = [];
    call_wraps = [];
  }

let original t = t.proc
let cfg t = t.cfg

let new_ireg t =
  let r = t.next_ireg in
  t.next_ireg <- r + 1;
  r

let alloc_spill_slot t =
  let off = (t.proc.Proc.frame_words + t.extra_frame_words) * 8 in
  t.extra_frame_words <- t.extra_frame_words + 1;
  off

let at_entry t instrs = t.entry_rev <- List.rev_append instrs t.entry_rev

let on_edge t (e : Digraph.edge) instrs =
  (match Cfg.role t.cfg e with
  | Cfg.Entry ->
      invalid_arg "Editor.on_edge: use at_entry for the ENTRY edge"
  | Cfg.Jump | Cfg.Branch_true | Cfg.Branch_false | Cfg.Return -> ());
  match Hashtbl.find_opt t.edge_code e.id with
  | Some r -> r := !r @ instrs
  | None -> Hashtbl.replace t.edge_code e.id (ref instrs)

let before_returns t instrs = t.ret_rev <- List.rev_append instrs t.ret_rev

let around_calls t f = t.call_wraps <- t.call_wraps @ [ f ]

let wrap_calls t instrs =
  if t.call_wraps = [] then instrs
  else
    List.concat_map
      (fun instr ->
        match instr with
        | I.Call { site; _ } | I.Callind { site; _ } ->
            let indirect =
              match instr with I.Callind _ -> true | _ -> false
            in
            let before, after =
              List.fold_left
                (fun (b, a) f ->
                  let b', a' = f ~site ~indirect in
                  (b @ b', a' @ a))
                ([], []) t.call_wraps
            in
            before @ (instr :: after)
        | _ -> [ instr ])
      instrs

let finish t =
  let p = t.proc in
  let g = t.cfg.Cfg.graph in
  let n = Proc.num_blocks p in
  (* Decide a placement for each edge with code. *)
  let appends = Array.make n [] in  (* per src label, before terminator *)
  let prepends = Array.make n [] in  (* per dst label, at block head *)
  let splits = ref [] in  (* (edge, instrs) needing a fresh block *)
  Hashtbl.iter
    (fun edge_id code ->
      let e = Digraph.edge g edge_id in
      match Cfg.role t.cfg e with
      | Cfg.Entry -> assert false
      | Cfg.Jump | Cfg.Return ->
          (* The edge is its source's only departure. *)
          appends.(e.src) <- appends.(e.src) @ !code
      | Cfg.Branch_true | Cfg.Branch_false ->
          if Digraph.in_degree g e.dst = 1 then
            prepends.(e.dst) <- prepends.(e.dst) @ !code
          else splits := (e, !code) :: !splits)
    t.edge_code;
  let splits = List.rev !splits in
  (* Fresh labels: original blocks keep theirs; splits then the preamble. *)
  let next_label = ref n in
  let fresh () =
    let l = !next_label in
    next_label := l + 1;
    l
  in
  let split_label =
    List.map
      (fun (e, code) ->
        let l = fresh () in
        (e, l, code))
      splits
  in
  let ret_code = List.rev t.ret_rev in
  let rewritten =
    Array.map
      (fun (b : Block.t) ->
        let instrs = wrap_calls t b.instrs in
        let instrs = prepends.(b.label) @ instrs @ appends.(b.label) in
        let instrs =
          match b.term with
          | Block.Ret _ -> instrs @ ret_code
          | Block.Jmp _ | Block.Br _ -> instrs
        in
        (* Redirect split branch arms to their trampoline blocks. *)
        let term =
          match b.term with
          | Block.Br (r, tl, fl) ->
              let redirect role current =
                match
                  List.find_opt
                    (fun ((e : Digraph.edge), _, _) ->
                      e.src = b.label && Cfg.role t.cfg e = role)
                    split_label
                with
                | Some (_, l, _) -> l
                | None -> current
              in
              Block.Br
                ( r,
                  redirect Cfg.Branch_true tl,
                  redirect Cfg.Branch_false fl )
          | (Block.Jmp _ | Block.Ret _) as term -> term
        in
        { b with Block.instrs; term })
      p.Proc.blocks
  in
  let split_blocks =
    List.map
      (fun ((e : Digraph.edge), l, code) ->
        { Block.label = l; instrs = code; term = Block.Jmp e.dst })
      split_label
  in
  let entry_label = fresh () in
  let preamble =
    {
      Block.label = entry_label;
      instrs = List.rev t.entry_rev;
      term = Block.Jmp p.Proc.entry;
    }
  in
  let blocks =
    Array.of_list
      (Array.to_list rewritten @ split_blocks @ [ preamble ])
  in
  Proc.with_blocks ~entry:entry_label
    ~frame_words:(p.Proc.frame_words + t.extra_frame_words)
    p blocks
