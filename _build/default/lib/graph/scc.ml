(* Tarjan's SCC algorithm, iterative to survive deep graphs. *)

type state = {
  index : int array;  (* discovery index, -1 = unvisited *)
  lowlink : int array;
  on_stack : bool array;
  mutable stack : Digraph.vertex list;
  mutable next_index : int;
  mutable comps : Digraph.vertex list list;
}

let visit g st root =
  (* Each frame is (v, out-edges not yet explored). The lowlink update for a
     returning child happens when the parent frame resumes. *)
  let frames = ref [ (root, ref (Digraph.succs g root)) ] in
  st.index.(root) <- st.next_index;
  st.lowlink.(root) <- st.next_index;
  st.next_index <- st.next_index + 1;
  st.stack <- root :: st.stack;
  st.on_stack.(root) <- true;
  let rec loop () =
    match !frames with
    | [] -> ()
    | (v, rest) :: tail -> (
        match !rest with
        | w :: ws ->
            rest := ws;
            if st.index.(w) < 0 then begin
              st.index.(w) <- st.next_index;
              st.lowlink.(w) <- st.next_index;
              st.next_index <- st.next_index + 1;
              st.stack <- w :: st.stack;
              st.on_stack.(w) <- true;
              frames := (w, ref (Digraph.succs g w)) :: !frames
            end
            else if st.on_stack.(w) then
              st.lowlink.(v) <- min st.lowlink.(v) st.index.(w);
            loop ()
        | [] ->
            if st.lowlink.(v) = st.index.(v) then begin
              (* v is a component root: pop the stack down to v. *)
              let rec pop acc =
                match st.stack with
                | [] -> assert false
                | w :: rest ->
                    st.stack <- rest;
                    st.on_stack.(w) <- false;
                    if w = v then w :: acc else pop (w :: acc)
              in
              st.comps <- pop [] :: st.comps
            end;
            frames := tail;
            (match tail with
            | (parent, _) :: _ ->
                st.lowlink.(parent) <- min st.lowlink.(parent) st.lowlink.(v)
            | [] -> ());
            loop ())
  in
  loop ()

let components g =
  let n = Digraph.num_vertices g in
  let st =
    {
      index = Array.make n (-1);
      lowlink = Array.make n (-1);
      on_stack = Array.make n false;
      stack = [];
      next_index = 0;
      comps = [];
    }
  in
  Digraph.iter_vertices (fun v -> if st.index.(v) < 0 then visit g st v) g;
  List.rev st.comps

let component_of g =
  let comps = components g in
  let n = Digraph.num_vertices g in
  let ids = Array.make n (-1) in
  List.iteri (fun i comp -> List.iter (fun v -> ids.(v) <- i) comp) comps;
  ids

let nontrivial g =
  let has_self_loop v =
    List.exists (fun w -> w = v) (Digraph.succs g v)
  in
  List.filter
    (fun comp ->
      match comp with [ v ] -> has_self_loop v | [] -> false | _ -> true)
    (components g)
