(** Strongly connected components (Tarjan's algorithm). *)

(** [components g] partitions all vertices into SCCs, returned in reverse
    topological order of the condensation (i.e. a component appears before
    the components it has edges into are all emitted — Tarjan's natural
    emission order). Each component lists its member vertices. *)
val components : Digraph.t -> Digraph.vertex list list

(** [component_of g] maps each vertex to a dense component index. Vertices in
    the same SCC share an index. *)
val component_of : Digraph.t -> int array

(** A component is trivial when it is a single vertex without a self-loop.
    [nontrivial g] lists only the non-trivial components (the cycles). *)
val nontrivial : Digraph.t -> Digraph.vertex list list
