let maximum g ~weight =
  let edges = Digraph.fold_edges (fun e acc -> e :: acc) g [] in
  (* Sort by decreasing weight; ties broken by edge id for determinism. *)
  let edges =
    List.sort
      (fun a b ->
        match compare (weight b) (weight a) with
        | 0 -> compare a.Digraph.id b.Digraph.id
        | c -> c)
      edges
  in
  let uf = Union_find.create (Digraph.num_vertices g) in
  List.filter
    (fun (e : Digraph.edge) ->
      e.src <> e.dst && Union_find.union uf e.src e.dst)
    edges

let chords g ~tree =
  let in_tree = Hashtbl.create 16 in
  List.iter (fun (e : Digraph.edge) -> Hashtbl.replace in_tree e.id ()) tree;
  Digraph.fold_edges
    (fun e acc -> if Hashtbl.mem in_tree e.id then acc else e :: acc)
    g []
  |> List.rev

type step = { edge : Digraph.edge; forward : bool }

type forest = {
  n : int;
  adj : (Digraph.edge * bool) list array;
      (* per vertex: incident tree edges; bool = vertex is the edge's src *)
}

let of_edges g edges =
  let n = Digraph.num_vertices g in
  let adj = Array.make n [] in
  List.iter
    (fun (e : Digraph.edge) ->
      adj.(e.src) <- (e, true) :: adj.(e.src);
      adj.(e.dst) <- (e, false) :: adj.(e.dst))
    edges;
  { n; adj }

let path f ~src ~dst =
  if src = dst then []
  else begin
    (* BFS from src recording the step used to reach each vertex. *)
    let visited = Array.make f.n false in
    let how = Array.make f.n None in
    let queue = Queue.create () in
    visited.(src) <- true;
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun ((e : Digraph.edge), v_is_src) ->
          let w = if v_is_src then e.dst else e.src in
          if not visited.(w) then begin
            visited.(w) <- true;
            how.(w) <- Some { edge = e; forward = v_is_src };
            if w = dst then found := true else Queue.add w queue
          end)
        f.adj.(v)
    done;
    if not !found then raise Not_found;
    let rec rebuild v acc =
      if v = src then acc
      else
        match how.(v) with
        | None -> assert false
        | Some step ->
            let prev =
              if step.forward then step.edge.src else step.edge.dst
            in
            rebuild prev (step :: acc)
    in
    rebuild dst []
  end
