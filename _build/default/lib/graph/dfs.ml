type edge_kind = Tree | Back | Forward | Cross

type t = {
  graph : Digraph.t;
  discovery : int array;
  finish : int array;
  tree_edge_of : int array;  (* per vertex: id of the edge discovering it *)
  post : Digraph.vertex array;  (* reachable vertices in postorder *)
}

(* Iterative DFS: an explicit stack of (vertex, remaining out-edges) frames
   avoids OCaml stack overflow on the deep CFGs produced by large
   straight-line procedures. *)
let run g ~root =
  let n = Digraph.num_vertices g in
  let discovery = Array.make n (-1) in
  let finish = Array.make n (-1) in
  let tree_edge_of = Array.make n (-1) in
  let post = ref [] in
  let clock = ref 0 in
  let tick () =
    let t = !clock in
    clock := t + 1;
    t
  in
  let stack = ref [] in
  discovery.(root) <- tick ();
  stack := (root, ref (Digraph.out_edges g root)) :: !stack;
  let rec loop () =
    match !stack with
    | [] -> ()
    | (v, rest) :: tail -> (
        match !rest with
        | [] ->
            finish.(v) <- tick ();
            post := v :: !post;
            stack := tail;
            loop ()
        | e :: es ->
            rest := es;
            let w = e.Digraph.dst in
            if discovery.(w) < 0 then begin
              discovery.(w) <- tick ();
              tree_edge_of.(w) <- e.Digraph.id;
              stack := (w, ref (Digraph.out_edges g w)) :: !stack
            end;
            loop ())
  in
  loop ();
  let post = Array.of_list (List.rev !post) in
  { graph = g; discovery; finish; tree_edge_of; post }

let discovery t v = t.discovery.(v)
let finish t v = t.finish.(v)
let reachable t v = t.discovery.(v) >= 0

let classify t (e : Digraph.edge) =
  let u = e.src and w = e.dst in
  if not (reachable t u) then
    invalid_arg "Dfs.classify: source vertex unreachable from root";
  if t.tree_edge_of.(w) = e.id then Tree
  else if u = w then Back
  else if t.discovery.(u) < t.discovery.(w) && t.finish.(w) < t.finish.(u)
  then Forward
  else if t.discovery.(w) < t.discovery.(u) && t.finish.(u) < t.finish.(w)
  then Back
  else Cross

let back_edges t =
  Digraph.fold_edges
    (fun e acc -> if reachable t e.src && classify t e = Back then e :: acc
      else acc)
    t.graph []
  |> List.rev

let postorder t = Array.to_list t.post

let reverse_postorder t =
  Array.fold_left (fun acc v -> v :: acc) [] t.post

let pp_edge_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Tree -> "tree"
    | Back -> "back"
    | Forward -> "forward"
    | Cross -> "cross")
