exception Cycle of Digraph.vertex

(* Kahn's algorithm.  DFS postorder would also work but covers only vertices
   reachable from one root; topological sorts here must cover the whole
   graph (the Ball–Larus passes run on transformed CFGs whose every vertex
   is reachable, but the generic utility should not assume that). *)
let sort g =
  let n = Digraph.num_vertices g in
  let indeg = Array.make n 0 in
  Digraph.iter_edges (fun e -> indeg.(e.dst) <- indeg.(e.dst) + 1) g;
  let queue = Queue.create () in
  Digraph.iter_vertices (fun v -> if indeg.(v) = 0 then Queue.add v queue) g;
  let order = ref [] in
  let emitted = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr emitted;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      (Digraph.succs g v)
  done;
  if !emitted < n then begin
    (* Some vertex still has positive in-degree: it lies on or behind a
       cycle; report one with positive in-degree as the witness. *)
    let witness = ref (-1) in
    Digraph.iter_vertices
      (fun v -> if !witness < 0 && indeg.(v) > 0 then witness := v)
      g;
    raise (Cycle !witness)
  end;
  List.rev !order

let reverse_sort g = List.rev (sort g)

let is_acyclic g =
  match sort g with _ -> true | exception Cycle _ -> false
