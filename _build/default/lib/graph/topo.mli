(** Topological ordering of acyclic digraphs. *)

exception Cycle of Digraph.vertex
(** Raised (with a vertex on some cycle) when the graph is cyclic. *)

(** [sort g] lists all vertices so that every edge goes from an earlier to a
    later vertex.
    @raise Cycle when the graph contains a directed cycle. *)
val sort : Digraph.t -> Digraph.vertex list

(** [reverse_sort g] is [List.rev (sort g)]: every edge goes from a later to
    an earlier vertex.  This is the visit order of the Ball–Larus labelling
    passes.
    @raise Cycle when the graph contains a directed cycle. *)
val reverse_sort : Digraph.t -> Digraph.vertex list

(** [is_acyclic g] tests for the absence of directed cycles. *)
val is_acyclic : Digraph.t -> bool
