(** Spanning trees of the undirected view of a digraph.

    The Ball–Larus optimized increment placement [Ball 94, BL96] instruments
    only the chords of a spanning tree, choosing a maximum-weight tree so
    that frequently executed edges escape instrumentation.  This module
    supplies the tree, its chords, and undirected tree paths (needed to
    compute each chord's increment as a signed sum of edge values around its
    unique tree cycle). *)

(** [maximum g ~weight] computes a maximum-weight spanning forest of [g]
    viewed as an undirected graph (Kruskal).  Parallel edges are considered
    individually; at most one of them can be a tree edge. *)
val maximum :
  Digraph.t -> weight:(Digraph.edge -> int) -> Digraph.edge list

(** [chords g ~tree] lists the edges of [g] not in [tree], in id order. *)
val chords : Digraph.t -> tree:Digraph.edge list -> Digraph.edge list

type forest

val of_edges : Digraph.t -> Digraph.edge list -> forest

(** One step of an undirected tree path: the edge, and whether it is
    traversed in its natural direction (src towards dst). *)
type step = { edge : Digraph.edge; forward : bool }

(** [path f ~src ~dst] is the unique undirected path in the forest, or raises
    [Not_found] when [src] and [dst] lie in different trees. *)
val path : forest -> src:Digraph.vertex -> dst:Digraph.vertex -> step list
