(** Graphviz (dot) rendering of digraphs, for documentation and debugging. *)

(** [output ppf g ~name ~vertex_label ~edge_label] prints a dot digraph.
    Empty edge labels are omitted. *)
val output :
  Format.formatter ->
  Digraph.t ->
  name:string ->
  vertex_label:(Digraph.vertex -> string) ->
  edge_label:(Digraph.edge -> string) ->
  unit

(** Convenience wrapper returning the dot source as a string. *)
val to_string :
  Digraph.t ->
  name:string ->
  vertex_label:(Digraph.vertex -> string) ->
  edge_label:(Digraph.edge -> string) ->
  string
