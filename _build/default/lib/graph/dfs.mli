(** Depth-first search over {!Digraph} with edge classification.

    All results are relative to a single DFS rooted at a given vertex,
    exploring out-edges in insertion order.  Vertices unreachable from the
    root are left unvisited ([discovery] and [finish] are [-1] for them, and
    their out-edges are unclassified). *)

type edge_kind =
  | Tree  (** edge first discovering its destination *)
  | Back  (** destination is an ancestor of the source (includes self-loops);
              a digraph is acyclic iff its DFS has no back edges *)
  | Forward  (** destination is a proper descendant, not via this edge *)
  | Cross  (** everything else *)

type t

(** [run g ~root] performs one DFS from [root]. *)
val run : Digraph.t -> root:Digraph.vertex -> t

(** Discovery (preorder) time, or [-1] if unreachable. *)
val discovery : t -> Digraph.vertex -> int

(** Finish (postorder) time, or [-1] if unreachable. *)
val finish : t -> Digraph.vertex -> int

val reachable : t -> Digraph.vertex -> bool

(** Classification of an edge whose source was visited.
    @raise Invalid_argument if the source is unreachable. *)
val classify : t -> Digraph.edge -> edge_kind

(** All back edges, in increasing edge-id order. *)
val back_edges : t -> Digraph.edge list

(** Reachable vertices in reverse postorder (a topological order when the
    graph is acyclic). *)
val reverse_postorder : t -> Digraph.vertex list

(** Reachable vertices in postorder. *)
val postorder : t -> Digraph.vertex list

val pp_edge_kind : Format.formatter -> edge_kind -> unit
