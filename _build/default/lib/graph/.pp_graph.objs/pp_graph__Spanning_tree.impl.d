lib/graph/spanning_tree.ml: Array Digraph Hashtbl List Queue Union_find
