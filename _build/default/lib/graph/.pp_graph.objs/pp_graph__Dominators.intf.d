lib/graph/dominators.mli: Dfs Digraph
