lib/graph/dfs.ml: Array Digraph Format List
