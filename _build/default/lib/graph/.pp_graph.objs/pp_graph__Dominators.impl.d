lib/graph/dominators.ml: Array Dfs Digraph List
