lib/graph/dfs.mli: Digraph Format
