lib/graph/spanning_tree.mli: Digraph
