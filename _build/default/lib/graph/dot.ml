let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let output ppf g ~name ~vertex_label ~edge_label =
  Format.fprintf ppf "digraph \"%s\" {@." (escape name);
  Digraph.iter_vertices
    (fun v ->
      Format.fprintf ppf "  n%d [label=\"%s\"];@." v
        (escape (vertex_label v)))
    g;
  Digraph.iter_edges
    (fun e ->
      let label = edge_label e in
      if label = "" then Format.fprintf ppf "  n%d -> n%d;@." e.src e.dst
      else
        Format.fprintf ppf "  n%d -> n%d [label=\"%s\"];@." e.src e.dst
          (escape label))
    g;
  Format.fprintf ppf "}@."

let to_string g ~name ~vertex_label ~edge_label =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  output ppf g ~name ~vertex_label ~edge_label;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
