(** Disjoint-set forest with union by rank and path compression. *)

type t

(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)
val create : int -> t

val find : t -> int -> int

(** [union t a b] merges the sets of [a] and [b]; returns [false] when they
    were already the same set (no change made). *)
val union : t -> int -> int -> bool

val same : t -> int -> int -> bool
