(** One benchmark workload: a MiniC program standing in for a SPEC95
    member, engineered to reproduce its qualitative profile (path-count
    distribution, cache behaviour, call-graph shape). *)

type suite = Cint | Cfp

type t = {
  name : string;  (** e.g. ["go_like"] *)
  spec_name : string;  (** the SPEC95 program it models, e.g. ["099.go"] *)
  suite : suite;
  description : string;
  source : string;  (** MiniC source text *)
}

(** Compile the workload's source.  @raise Pp_minic.Errors.Error *)
val compile : t -> Pp_ir.Program.t
