lib/workloads/registry.ml: Cfp Cint List Workload
