lib/workloads/workload.ml: Pp_minic
