lib/workloads/cint.ml: Workload
