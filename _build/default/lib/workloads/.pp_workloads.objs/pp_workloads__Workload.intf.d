lib/workloads/workload.mli: Pp_ir
