lib/workloads/cfp.ml: Workload
