(** All eighteen SPEC95-analogue workloads. *)

val cint : Workload.t list
val cfp : Workload.t list
val all : Workload.t list
val find : string -> Workload.t option
val names : unit -> string list
