type suite = Cint | Cfp

type t = {
  name : string;
  spec_name : string;
  suite : suite;
  description : string;
  source : string;
}

let compile t = Pp_minic.Compile.program ~name:t.name t.source
