let cint = Cint.all
let cfp = Cfp.all
let all = cint @ cfp

let find name =
  List.find_opt (fun (w : Workload.t) -> w.Workload.name = name) all

let names () = List.map (fun (w : Workload.t) -> w.Workload.name) all
