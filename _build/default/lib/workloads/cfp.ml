(* The ten CFP95 analogues: floating-point kernels whose cache and pipeline
   behaviour mirrors each original's documented character. *)

let lcg =
  {|
int seed;
int rnd(int bound) {
  // Use the high bits: an LCG's low bits cycle with tiny periods.
  seed = (seed * 1103515245 + 12345) % 1073741824;
  if (seed < 0) { seed = -seed; }
  return (seed / 1024) % bound;
}
float frnd() {
  return float(rnd(10000)) / 10000.0;
}
|}

(* 101.tomcatv: mesh relaxation; one hot procedure owns nearly every miss. *)
let tomcatv_like =
  {
    Workload.name = "tomcatv_like";
    spec_name = "101.tomcatv";
    suite = Workload.Cfp;
    description = "2-D mesh relaxation: one hot loop nest owns the misses";
    source =
      lcg
      ^ {|
float x[16900];   // 130x130
float y[16900];
float rx[16900];
float ry[16900];

void relax() {
  int i; int j; int c;
  for (i = 1; i < 129; i = i + 1) {
    for (j = 1; j < 129; j = j + 1) {
      c = i * 130 + j;
      rx[c] = 0.25 * (x[c - 1] + x[c + 1] + x[c - 130] + x[c + 130]) - x[c];
      ry[c] = 0.25 * (y[c - 1] + y[c + 1] + y[c - 130] + y[c + 130]) - y[c];
    }
  }
  for (i = 1; i < 129; i = i + 1) {
    for (j = 1; j < 129; j = j + 1) {
      c = i * 130 + j;
      x[c] = x[c] + 0.9 * rx[c];
      y[c] = y[c] + 0.9 * ry[c];
    }
  }
}

void main() {
  int i; int iter;
  seed = 17;
  for (i = 0; i < 16900; i = i + 1) { x[i] = frnd(); y[i] = frnd(); }
  for (iter = 0; iter < 6; iter = iter + 1) { relax(); }
  float s;
  s = 0.0;
  for (i = 0; i < 16900; i = i + 1) { s = s + x[i] + y[i]; }
  print(s);
}
|};
  }

(* 102.swim: shallow-water stencils over three large grids. *)
let swim_like =
  {
    Workload.name = "swim_like";
    spec_name = "102.swim";
    suite = Workload.Cfp;
    description = "shallow-water model: three-grid stencil sweeps";
    source =
      lcg
      ^ {|
float u[16384];   // 128x128
float v[16384];
float p[16384];
float unew[16384];
float vnew[16384];
float pnew[16384];

void step() {
  int i; int j; int c;
  for (i = 1; i < 127; i = i + 1) {
    for (j = 1; j < 127; j = j + 1) {
      c = i * 128 + j;
      unew[c] = u[c] + 0.1 * (p[c - 1] - p[c + 1] + v[c]);
      vnew[c] = v[c] + 0.1 * (p[c - 128] - p[c + 128] - u[c]);
      pnew[c] = p[c] - 0.05 * (u[c + 1] - u[c - 1] + v[c + 128] - v[c - 128]);
    }
  }
  for (i = 1; i < 127; i = i + 1) {
    for (j = 1; j < 127; j = j + 1) {
      c = i * 128 + j;
      u[c] = unew[c]; v[c] = vnew[c]; p[c] = pnew[c];
    }
  }
}

void main() {
  int i; int iter;
  seed = 29;
  for (i = 0; i < 16384; i = i + 1) {
    u[i] = frnd(); v[i] = frnd(); p[i] = 1.0 + frnd();
  }
  for (iter = 0; iter < 5; iter = iter + 1) { step(); }
  float s;
  s = 0.0;
  for (i = 0; i < 16384; i = i + 1) { s = s + p[i]; }
  print(s);
}
|};
  }

(* 103.su2cor: small dense matrix-vector kernels repeated many times. *)
let su2cor_like =
  {
    Workload.name = "su2cor_like";
    spec_name = "103.su2cor";
    suite = Workload.Cfp;
    description = "quantum-physics kernel: repeated small matrix-vector ops";
    source =
      lcg
      ^ {|
float mat[4096];   // 64x64
float vec[64];
float out[64];
float field[8192];

void matvec() {
  int i; int j;
  for (i = 0; i < 64; i = i + 1) {
    float acc;
    acc = 0.0;
    for (j = 0; j < 64; j = j + 1) {
      acc = acc + mat[i * 64 + j] * vec[j];
    }
    out[i] = acc;
  }
}

void update_field(int offset) {
  int i;
  for (i = 0; i < 64; i = i + 1) {
    field[(offset + i * 128) % 8192] = out[i] * 0.5 + vec[i];
  }
}

void main() {
  int i; int sweep;
  seed = 31;
  for (i = 0; i < 4096; i = i + 1) { mat[i] = frnd() - 0.5; }
  for (i = 0; i < 64; i = i + 1) { vec[i] = frnd(); }
  for (i = 0; i < 8192; i = i + 1) { field[i] = 0.0; }
  for (sweep = 0; sweep < 110; sweep = sweep + 1) {
    matvec();
    update_field(sweep * 7);
    for (i = 0; i < 64; i = i + 1) { vec[i] = out[i] * 0.01 + 0.1; }
  }
  float s;
  s = 0.0;
  for (i = 0; i < 8192; i = i + 1) { s = s + field[i]; }
  print(s);
}
|};
  }

(* 104.hydro2d: hydrodynamics stencils with boundary conditionals. *)
let hydro2d_like =
  {
    Workload.name = "hydro2d_like";
    spec_name = "104.hydro2d";
    suite = Workload.Cfp;
    description = "2-D hydrodynamics: stencils with branchy boundary logic";
    source =
      lcg
      ^ {|
float rho[16384];  // 128x128
float mom[16384];
float eng[16384];

void sweep() {
  int i; int j;
  for (i = 0; i < 128; i = i + 1) {
    for (j = 0; j < 128; j = j + 1) {
      int c;
      c = i * 128 + j;
      float left; float right; float up; float down;
      if (j > 0) { left = rho[c - 1]; } else { left = rho[c]; }
      if (j < 127) { right = rho[c + 1]; } else { right = rho[c]; }
      if (i > 0) { up = rho[c - 128]; } else { up = rho[c]; }
      if (i < 127) { down = rho[c + 128]; } else { down = rho[c]; }
      float flux;
      flux = 0.2 * (left + right + up + down - 4.0 * rho[c]);
      if (flux < 0.0 && rho[c] + flux < 0.01) { flux = 0.0; }
      rho[c] = rho[c] + flux;
      mom[c] = mom[c] + 0.5 * flux;
      eng[c] = eng[c] + flux * flux;
    }
  }
}

void main() {
  int i; int iter;
  seed = 37;
  for (i = 0; i < 16384; i = i + 1) {
    rho[i] = 0.5 + frnd(); mom[i] = 0.0; eng[i] = 0.0;
  }
  for (iter = 0; iter < 5; iter = iter + 1) { sweep(); }
  float s;
  s = 0.0;
  for (i = 0; i < 16384; i = i + 1) { s = s + rho[i] + eng[i]; }
  print(s);
}
|};
  }

(* 107.mgrid: multigrid with power-of-two strides -- the conflict-miss
   generator on a direct-mapped cache. *)
let mgrid_like =
  {
    Workload.name = "mgrid_like";
    spec_name = "107.mgrid";
    suite = Workload.Cfp;
    description =
      "multigrid solver: power-of-two strided sweeps, conflict misses";
    source =
      lcg
      ^ {|
float grid[32768];
float tmp[32768];

void smooth(int stride) {
  int i;
  i = stride;
  while (i < 32768 - stride) {
    tmp[i] = 0.5 * grid[i] + 0.25 * (grid[i - stride] + grid[i + stride]);
    i = i + stride;
  }
  i = stride;
  while (i < 32768 - stride) {
    grid[i] = tmp[i];
    i = i + stride;
  }
}

void main() {
  int i; int cycle;
  seed = 41;
  for (i = 0; i < 32768; i = i + 1) { grid[i] = frnd(); }
  for (cycle = 0; cycle < 2; cycle = cycle + 1) {
    smooth(1);
    smooth(2);
    smooth(4);
    smooth(8);
    smooth(16);
    smooth(8);
    smooth(4);
    smooth(2);
    smooth(1);
  }
  float s;
  s = 0.0;
  for (i = 0; i < 32768; i = i + 1) { s = s + grid[i]; }
  print(s);
}
|};
  }

(* 110.applu: SSOR-style forward and backward sweeps with dependences. *)
let applu_like =
  {
    Workload.name = "applu_like";
    spec_name = "110.applu";
    suite = Workload.Cfp;
    description = "SSOR solver: forward/backward dependent sweeps";
    source =
      lcg
      ^ {|
float a[16384];   // 128x128
float rhs[16384];

void forward() {
  int i; int j; int c;
  for (i = 1; i < 128; i = i + 1) {
    for (j = 1; j < 128; j = j + 1) {
      c = i * 128 + j;
      a[c] = a[c] - 0.3 * a[c - 1] - 0.3 * a[c - 128] + 0.01 * rhs[c];
    }
  }
}

void backward() {
  int i; int j; int c;
  for (i = 126; i >= 0; i = i - 1) {
    for (j = 126; j >= 0; j = j - 1) {
      c = i * 128 + j;
      a[c] = a[c] - 0.3 * a[c + 1] - 0.3 * a[c + 128] + 0.01 * rhs[c];
    }
  }
}

void main() {
  int i; int iter;
  seed = 43;
  for (i = 0; i < 16384; i = i + 1) { a[i] = frnd(); rhs[i] = frnd() - 0.5; }
  for (iter = 0; iter < 6; iter = iter + 1) {
    forward();
    backward();
  }
  float s;
  s = 0.0;
  for (i = 0; i < 16384; i = i + 1) { s = s + a[i]; }
  print(s);
}
|};
  }

(* 125.turb3d: FFT-like butterfly stages over a complex signal. *)
let turb3d_like =
  {
    Workload.name = "turb3d_like";
    spec_name = "125.turb3d";
    suite = Workload.Cfp;
    description = "turbulence model: FFT butterfly stages, strided access";
    source =
      lcg
      ^ {|
float re[16384];
float im[16384];

void butterfly_stage(int half) {
  int start; int k;
  start = 0;
  while (start < 16384) {
    for (k = 0; k < half; k = k + 1) {
      int a; int b;
      a = start + k;
      b = start + k + half;
      float tr; float ti;
      tr = re[b] * 0.7071 - im[b] * 0.7071;
      ti = re[b] * 0.7071 + im[b] * 0.7071;
      re[b] = 0.5 * (re[a] - tr);
      im[b] = 0.5 * (im[a] - ti);
      re[a] = 0.5 * (re[a] + tr);
      im[a] = 0.5 * (im[a] + ti);
    }
    start = start + 2 * half;
  }
}

void main() {
  int i; int pass;
  seed = 47;
  for (i = 0; i < 16384; i = i + 1) { re[i] = frnd() - 0.5; im[i] = 0.0; }
  for (pass = 0; pass < 1; pass = pass + 1) {
    int half;
    half = 1;
    while (half < 16384) {
      butterfly_stage(half);
      half = half * 2;
    }
  }
  float s;
  s = 0.0;
  for (i = 0; i < 16384; i = i + 1) { s = s + re[i] * re[i] + im[i] * im[i]; }
  print(s);
}
|};
  }

(* 141.apsi: a weather code with several distinct medium-sized FP
   procedures (more procedures than the other FP analogues). *)
let apsi_like =
  {
    Workload.name = "apsi_like";
    spec_name = "141.apsi";
    suite = Workload.Cfp;
    description = "mesoscale weather model: several medium FP procedures";
    source =
      lcg
      ^ {|
float temp[8192];   // 64x128
float pres[8192];
float wind_u[8192];
float wind_v[8192];
float moist[8192];

void advect_temp() {
  int i;
  for (i = 128; i < 8064; i = i + 1) {
    temp[i] = temp[i] - 0.1 * wind_u[i] * (temp[i] - temp[i - 1])
              - 0.1 * wind_v[i] * (temp[i] - temp[i - 128]);
  }
}

void pressure_solve() {
  int i;
  for (i = 128; i < 8064; i = i + 1) {
    pres[i] = 0.25 * (pres[i - 1] + pres[i + 1] + pres[i - 128] + pres[i + 128])
              + 0.01 * temp[i];
  }
}

void wind_update() {
  int i;
  for (i = 128; i < 8064; i = i + 1) {
    wind_u[i] = wind_u[i] - 0.05 * (pres[i + 1] - pres[i - 1]);
    wind_v[i] = wind_v[i] - 0.05 * (pres[i + 128] - pres[i - 128]);
  }
}

void moisture() {
  int i;
  for (i = 128; i < 8064; i = i + 1) {
    float cond;
    cond = moist[i] * 0.001;
    if (temp[i] > 0.8) { cond = cond * 2.0; }
    moist[i] = moist[i] - cond;
    temp[i] = temp[i] + 0.5 * cond;
  }
}

void diffuse(int steps) {
  int s; int i;
  for (s = 0; s < steps; s = s + 1) {
    for (i = 128; i < 8064; i = i + 1) {
      temp[i] = temp[i] + 0.02 * (temp[i - 1] + temp[i + 1] - 2.0 * temp[i]);
    }
  }
}

void main() {
  int i; int step;
  seed = 53;
  for (i = 0; i < 8192; i = i + 1) {
    temp[i] = frnd(); pres[i] = 1.0; wind_u[i] = frnd() - 0.5;
    wind_v[i] = frnd() - 0.5; moist[i] = frnd();
  }
  for (step = 0; step < 6; step = step + 1) {
    advect_temp();
    pressure_solve();
    wind_update();
    moisture();
    diffuse(2);
  }
  float s;
  s = 0.0;
  for (i = 0; i < 8192; i = i + 1) { s = s + temp[i] + moist[i]; }
  print(s);
}
|};
  }

(* 145.fpppp: enormous straight-line blocks of dependent FP arithmetic --
   almost no branches, so path profiling costs nearly nothing, while the FP
   pipeline stalls dominate. *)
let fpppp_like =
  {
    Workload.name = "fpppp_like";
    spec_name = "145.fpppp";
    suite = Workload.Cfp;
    description =
      "electron-integral kernel: huge straight-line FP blocks, FP stalls";
    source =
      lcg
      ^ {|
float gin[1024];
float gout[1024];

// One enormous straight-line block (the fpppp signature): a long chain of
// dependent FP operations with no branches.
float integral(int base) {
  float a; float b; float c; float d; float e; float f; float g; float h;
  a = gin[base];     b = gin[base + 1]; c = gin[base + 2]; d = gin[base + 3];
  e = gin[base + 4]; f = gin[base + 5]; g = gin[base + 6]; h = gin[base + 7];
  float t1; float t2; float t3; float t4;
  t1 = a * b + c * d;
  t2 = e * f + g * h;
  t3 = a * e - b * f;
  t4 = c * g - d * h;
  float u1; float u2; float u3; float u4;
  u1 = t1 * t2 + t3 * t4;
  u2 = t1 * t3 - t2 * t4;
  u3 = t1 * t4 + t2 * t3;
  u4 = t1 + t2 + t3 + t4;
  float v1; float v2;
  v1 = u1 * u2 + u3 * u4;
  v2 = u1 * u4 - u2 * u3;
  float w1; float w2;
  w1 = v1 * 0.5 + v2 * 0.25 + u1 * 0.125;
  w2 = v2 * 0.5 - v1 * 0.25 + u2 * 0.125;
  float z;
  z = w1 * w2 + v1 * v2 + u1 * u4 + t1 * t4 + a * h + b * g + c * f + d * e;
  z = z + w1 * v2 + w2 * v1 + u2 * u3 + t2 * t3;
  z = z * 0.001 + (a + b + c + d) * (e + f + g + h) * 0.01;
  return z;
}

void main() {
  int i; int pass;
  seed = 59;
  for (i = 0; i < 1024; i = i + 1) { gin[i] = frnd() + 0.1; }
  for (pass = 0; pass < 40; pass = pass + 1) {
    for (i = 0; i < 1016; i = i + 1) {
      gout[i] = gout[i] + integral(i);
    }
  }
  float s;
  s = 0.0;
  for (i = 0; i < 1024; i = i + 1) { s = s + gout[i]; }
  print(s);
}
|};
  }

(* 146.wave5: particle-in-cell -- gather from a grid, push, scatter back;
   irregular indexed FP access. *)
let wave5_like =
  {
    Workload.name = "wave5_like";
    spec_name = "146.wave5";
    suite = Workload.Cfp;
    description = "plasma simulation: particle gather/push/scatter";
    source =
      lcg
      ^ {|
float field[16384];
float px[8192];
float pv[8192];

void push() {
  int i;
  for (i = 0; i < 8192; i = i + 1) {
    int cell;
    cell = int(px[i]);
    if (cell < 0) { cell = 0; }
    if (cell > 16382) { cell = 16382; }
    float e;
    e = field[cell] + (px[i] - float(cell)) * (field[cell + 1] - field[cell]);
    pv[i] = pv[i] + 0.1 * e;
    px[i] = px[i] + pv[i];
    if (px[i] < 0.0) { px[i] = px[i] + 16384.0; }
    if (px[i] >= 16384.0) { px[i] = px[i] - 16384.0; }
  }
}

void deposit() {
  int i;
  for (i = 0; i < 16384; i = i + 1) { field[i] = field[i] * 0.99; }
  for (i = 0; i < 8192; i = i + 1) {
    int cell;
    cell = int(px[i]);
    if (cell < 0) { cell = 0; }
    if (cell > 16383) { cell = 16383; }
    field[cell] = field[cell] + 0.01;
  }
}

void main() {
  int i; int step;
  seed = 61;
  for (i = 0; i < 16384; i = i + 1) { field[i] = frnd() - 0.5; }
  for (i = 0; i < 8192; i = i + 1) {
    px[i] = float(rnd(16384));
    pv[i] = frnd() - 0.5;
  }
  for (step = 0; step < 8; step = step + 1) {
    push();
    deposit();
  }
  float s;
  s = 0.0;
  for (i = 0; i < 8192; i = i + 1) { s = s + pv[i] * pv[i]; }
  print(s);
}
|};
  }

let all =
  [
    tomcatv_like;
    swim_like;
    su2cor_like;
    hydro2d_like;
    mgrid_like;
    applu_like;
    turb3d_like;
    apsi_like;
    fpppp_like;
    wave5_like;
  ]
