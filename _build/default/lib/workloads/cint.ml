(* The eight CINT95 analogues.  Each source is deterministic (a LCG seeds
   all "random" data) and sized for roughly one to three million simulated
   instructions. *)

let lcg =
  {|
int seed;
int rnd(int bound) {
  // Use the high bits: an LCG's low bits cycle with tiny periods.
  seed = (seed * 1103515245 + 12345) % 1073741824;
  if (seed < 0) { seed = -seed; }
  return (seed / 1024) % bound;
}
|}

(* 099.go: a board evaluator with many small branchy routines; its signature
   is executing an order of magnitude more distinct paths than anything
   else, with misses spread thinly across them. *)
let go_like =
  {
    Workload.name = "go_like";
    spec_name = "099.go";
    suite = Workload.Cint;
    description =
      "board-game position evaluator: many branchy routines, very many \
       executed paths";
    source =
      lcg
      ^ {|
int board[361];   // 19x19
int influence[361];
int libs[361];

int at(int r, int c) {
  if (r < 0 || r >= 19 || c < 0 || c >= 19) { return -1; }
  return board[r * 19 + c];
}

// Branchy point evaluation: each neighbour combination takes its own path.
int eval_point(int r, int c) {
  int v; int n; int e; int s; int w;
  v = 0;
  n = at(r - 1, c); e = at(r, c + 1); s = at(r + 1, c); w = at(r, c - 1);
  if (n == 1) { v = v + 3; } else { if (n == 2) { v = v - 2; } }
  if (e == 1) { v = v + 3; } else { if (e == 2) { v = v - 2; } }
  if (s == 1) { v = v + 3; } else { if (s == 2) { v = v - 2; } }
  if (w == 1) { v = v + 3; } else { if (w == 2) { v = v - 2; } }
  if (n == -1 || e == -1 || s == -1 || w == -1) { v = v + 1; }
  if (v > 6) { v = 6; }
  if (v < -6) { v = -6; }
  return v;
}

int count_liberties(int r, int c) {
  int l;
  l = 0;
  if (at(r - 1, c) == 0) { l = l + 1; }
  if (at(r, c + 1) == 0) { l = l + 1; }
  if (at(r + 1, c) == 0) { l = l + 1; }
  if (at(r, c - 1) == 0) { l = l + 1; }
  return l;
}

void spread_influence() {
  int r; int c; int v;
  for (r = 0; r < 19; r = r + 1) {
    for (c = 0; c < 19; c = c + 1) {
      v = 0;
      if (at(r, c) == 1) { v = 8; }
      if (at(r, c) == 2) { v = -8; }
      if (v != 0) {
        if (r > 0) { influence[(r - 1) * 19 + c] = influence[(r - 1) * 19 + c] + v / 2; }
        if (r < 18) { influence[(r + 1) * 19 + c] = influence[(r + 1) * 19 + c] + v / 2; }
        if (c > 0) { influence[r * 19 + c - 1] = influence[r * 19 + c - 1] + v / 2; }
        if (c < 18) { influence[r * 19 + c + 1] = influence[r * 19 + c + 1] + v / 2; }
      }
      influence[r * 19 + c] = influence[r * 19 + c] + v;
    }
  }
}

int score_board() {
  int r; int c; int total;
  total = 0;
  for (r = 0; r < 19; r = r + 1) {
    for (c = 0; c < 19; c = c + 1) {
      int p;
      p = eval_point(r, c);
      libs[r * 19 + c] = count_liberties(r, c);
      if (libs[r * 19 + c] == 1 && at(r, c) != 0) { p = p - 4; }
      if (libs[r * 19 + c] == 0 && at(r, c) != 0) { p = p - 8; }
      total = total + p + influence[r * 19 + c] / 4;
    }
  }
  return total;
}

void random_board(int stones) {
  int i; int p;
  for (i = 0; i < 361; i = i + 1) { board[i] = 0; influence[i] = 0; }
  for (i = 0; i < stones; i = i + 1) {
    p = rnd(361);
    board[p] = 1 + rnd(2);
  }
}

void main() {
  int game; int total;
  seed = 42;
  total = 0;
  for (game = 0; game < 30; game = game + 1) {
    random_board(40 + rnd(200));
    spread_influence();
    total = total + score_board();
  }
  print(total);
}
|};
  }

(* 124.m88ksim: an instruction-set interpreter -- a big dispatch loop over a
   synthetic program image, with indirect calls for the ALU group. *)
let m88k_like =
  {
    Workload.name = "m88k_like";
    spec_name = "124.m88ksim";
    suite = Workload.Cint;
    description =
      "CPU simulator: fetch/decode/dispatch interpreter with indirect calls";
    source =
      lcg
      ^ {|
int mem[16384];
int regs[32];
int pc;
int halted;

int op_add(int a, int b) { return a + b; }
int op_sub(int a, int b) { return a - b; }
int op_and(int a, int b) {
  int m;
  m = b % 1000;
  if (m < 0) { m = -m; }
  return a % (m + 7);
}
int op_or(int a, int b)  { return a + b * 3; }

funptr alu0; funptr alu1; funptr alu2; funptr alu3;

funptr alu_select(int opcode) {
  if (opcode == 0) { return alu0; }
  if (opcode == 1) { return alu1; }
  if (opcode == 2) { return alu2; }
  return alu3;
}

void step() {
  int word; int opcode; int rd; int rs1; int rs2; int imm;
  word = mem[pc % 16384];
  pc = pc + 1;
  opcode = word % 16;
  rd = (word / 16) % 32;
  rs1 = (word / 512) % 32;
  rs2 = (word / 16384) % 32;
  imm = (word / 16384) % 256;
  if (opcode < 4) {
    funptr f;
    f = alu_select(opcode);
    regs[rd] = f(regs[rs1], regs[rs2]);
  } else { if (opcode == 4) {
    regs[rd] = regs[rs1] + imm;
  } else { if (opcode == 5) {
    int a;
    a = (regs[rs1] + imm) % 16384;
    if (a < 0) { a = -a; }
    regs[rd] = mem[a];
  } else { if (opcode == 6) {
    int b;
    b = (regs[rs1] + imm) % 16384;
    if (b < 0) { b = -b; }
    mem[b] = regs[rd];
  } else { if (opcode == 7) {
    if (regs[rs1] > 0) { pc = (pc + imm) % 16384; }
  } else { if (opcode == 8) {
    if (regs[rs1] <= 0) { pc = (pc + imm) % 16384; }
  } else { if (opcode == 9) {
    regs[rd] = imm * 97;
  } else {
    regs[rd] = regs[rs1] * 2 + opcode;
  } } } } } } }
}

void main() {
  int i;
  seed = 7;
  alu0 = &op_add; alu1 = &op_sub; alu2 = &op_and; alu3 = &op_or;
  for (i = 0; i < 16384; i = i + 1) { mem[i] = rnd(1048576); }
  for (i = 0; i < 32; i = i + 1) { regs[i] = i * 17; }
  pc = 0;
  for (i = 0; i < 50000; i = i + 1) { step(); }
  int sum;
  sum = 0;
  for (i = 0; i < 32; i = i + 1) { sum = sum + regs[i] % 1000; }
  print(sum);
}
|};
  }

(* 126.gcc: tree-walking passes over many small random expression trees --
   recursive evaluation and two rewriting passes, each full of cases.  Like
   the real gcc, it executes very many distinct paths. *)
let gcc_like =
  {
    Workload.name = "gcc_like";
    spec_name = "126.gcc";
    suite = Workload.Cint;
    description =
      "compiler passes over random expression trees: recursive walkers \
       with many cases and many executed paths";
    source =
      lcg
      ^ {|
// Expression nodes: op[i] 0..9 (0..3 leaves/consts, 4.. binary ops)
int op[4096];
int left[4096];
int right[4096];
int value[4096];
int next_node;

int mk(int o, int l, int r, int v) {
  int n;
  n = next_node;
  next_node = next_node + 1;
  op[n] = o; left[n] = l; right[n] = r; value[n] = v;
  return n;
}

int build(int depth) {
  if (depth <= 0 || rnd(5) == 0) {
    if (rnd(2) == 0) { return mk(0, 0, 0, rnd(100)); }   // const
    return mk(1, 0, 0, rnd(16));                         // var slot
  }
  int o; int l; int r;
  o = 4 + rnd(6);
  l = build(depth - 1);
  r = build(depth - 1);
  return mk(o, l, r, 0);
}

int env[16];

int eval(int n) {
  int o;
  o = op[n];
  if (o == 0) { return value[n]; }
  if (o == 1) { return env[value[n]]; }
  int a; int b;
  a = eval(left[n]);
  b = eval(right[n]);
  if (o == 4) { return a + b; }
  if (o == 5) { return a - b; }
  if (o == 6) { return a * b % 65536; }
  if (o == 7) { if (b == 0) { return a; } return a / b; }
  if (o == 8) { if (a > b) { return a; } return b; }
  return a % (b + 1);
}

// Constant folding: rewrites const-const ops in place.
int fold(int n) {
  int o;
  o = op[n];
  if (o <= 1) { return o == 0; }
  int lc; int rc;
  lc = fold(left[n]);
  rc = fold(right[n]);
  if (lc && rc) {
    int v;
    v = eval(n);
    op[n] = 0; value[n] = v;
    return 1;
  }
  return 0;
}

// Strength reduction: x*2 -> x+x style rewrites, again case-heavy.
void reduce(int n) {
  int o;
  o = op[n];
  if (o <= 1) { return; }
  reduce(left[n]);
  reduce(right[n]);
  if (o == 6) {
    if (op[right[n]] == 0 && value[right[n]] == 2) { op[n] = 4; right[n] = left[n]; }
    if (op[left[n]] == 0 && value[left[n]] == 0) { op[n] = 0; value[n] = 0; }
  }
  if (o == 4 && op[right[n]] == 0 && value[right[n]] == 0) {
    op[n] = op[left[n]]; value[n] = value[left[n]];
    right[n] = right[left[n]]; left[n] = left[left[n]];
  }
}

// A "register allocator": assign tree temporaries to 4 registers with
// branchy spilling decisions -- the pass that makes gcc path-rich.
int reg_busy[4];
int spills;

int alloc_reg(int hint) {
  int r;
  r = hint % 4;
  if (r < 0) { r = -r; }
  if (reg_busy[r] == 0) { reg_busy[r] = 1; return r; }
  if (reg_busy[(r + 1) % 4] == 0) { reg_busy[(r + 1) % 4] = 1; return (r + 1) % 4; }
  if (reg_busy[(r + 2) % 4] == 0) { reg_busy[(r + 2) % 4] = 1; return (r + 2) % 4; }
  if (reg_busy[(r + 3) % 4] == 0) { reg_busy[(r + 3) % 4] = 1; return (r + 3) % 4; }
  spills = spills + 1;
  return r;
}

void free_reg(int r) {
  if (r >= 0 && r < 4) { reg_busy[r] = 0; }
}

int regalloc(int n) {
  int o;
  o = op[n];
  if (o == 0) { return alloc_reg(value[n]); }
  if (o == 1) { return alloc_reg(value[n] + 1); }
  int rl; int rr;
  rl = regalloc(left[n]);
  rr = regalloc(right[n]);
  free_reg(rr);
  if (o == 7 || o == 9) {
    // division-like ops want an even register pair
    if (rl % 2 != 0) {
      free_reg(rl);
      rl = alloc_reg(0);
    }
  }
  return rl;
}

// Instruction selection / encoding: many independent flag decisions, so
// executions scatter across hundreds of distinct paths (the gcc
// signature).
int emitted;

int emit_code(int o, int hl, int hr, int flags) {
  int cost;
  cost = 1;
  if (o >= 7) { cost = cost + 2; }
  if (hl % 2 == 0) { cost = cost + 1; } else { cost = cost + 3; }
  if (hr % 3 == 0) { cost = cost + 1; }
  if (flags % 2 == 1) { cost = cost * 2; }
  if ((flags / 2) % 2 == 1) { cost = cost + 4; }
  if ((flags / 4) % 2 == 1) { cost = cost - 1; }
  if (hl > hr) { cost = cost + 1; } else { if (hl < hr) { cost = cost + 2; } }
  if (cost > 9) { cost = 9; }
  emitted = emitted + cost;
  return cost;
}

// Common-subexpression detection by structural hashing, full of cases.
int cse_hits;

int tree_hash(int n) {
  int o;
  o = op[n];
  if (o == 0) { return value[n] * 31 % 65536; }
  if (o == 1) { return (value[n] * 37 + 11) % 65536; }
  int hl; int hr;
  hl = tree_hash(left[n]);
  hr = tree_hash(right[n]);
  int h;
  h = (o * 131 + hl * 31 + hr) % 65536;
  if (o == 4 || o == 6) {
    // commutative: canonicalise operand order
    if (hl > hr) { h = (o * 131 + hr * 31 + hl) % 65536; }
  }
  if (h % 64 == 0) { cse_hits = cse_hits + 1; }
  emit_code(o, hl, hr, h % 8);
  return h;
}

void main() {
  int t; int total; int i;
  seed = 99;
  total = 0;
  for (i = 0; i < 16; i = i + 1) { env[i] = i * 3 + 1; }
  spills = 0; cse_hits = 0;
  for (t = 0; t < 220; t = t + 1) {
    next_node = 0;
    int root;
    root = build(6);
    total = total + eval(root);
    fold(root);
    reduce(root);
    total = total + eval(root);
    int r;
    for (r = 0; r < 4; r = r + 1) { reg_busy[r] = 0; }
    total = total + regalloc(root);
    total = total + tree_hash(root);
  }
  print(total);
  print(spills);
  print(cse_hits);
}
|};
  }

(* 129.compress: LZW-flavoured hashing over a buffer; the paper's signature
   is a handful of hot paths carrying almost all the misses. *)
let compress_like =
  {
    Workload.name = "compress_like";
    spec_name = "129.compress";
    suite = Workload.Cint;
    description = "LZW-style compressor: hash probe loop dominates";
    source =
      lcg
      ^ {|
int input[65536];
int hash_key[16384];
int hash_code[16384];

void clear_table() {
  int i;
  for (i = 0; i < 16384; i = i + 1) { hash_key[i] = -1; hash_code[i] = 0; }
}

int compress_block(int start, int len) {
  int prefix; int i; int out; int next_code;
  prefix = input[start];
  out = 0;
  next_code = 256;
  for (i = 1; i < len; i = i + 1) {
    int c; int key; int h; int found;
    c = input[start + i];
    key = prefix * 256 + c;
    h = (key * 2654435) % 16384;
    if (h < 0) { h = -h; }
    found = -1;
    while (found == -1) {
      if (hash_key[h] == key) { found = hash_code[h]; }
      else { if (hash_key[h] == -1) {
        hash_key[h] = key;
        hash_code[h] = next_code;
        next_code = next_code + 1;
        found = -2;
      } else {
        h = (h + 1) % 16384;
      } }
    }
    if (found >= 0) { prefix = found; }
    else { out = out + 1; prefix = c; }
  }
  return out;
}

void main() {
  int b; int total;
  seed = 5;
  total = 0;
  int i;
  for (i = 0; i < 65536; i = i + 1) {
    // Skewed byte distribution so the dictionary gets real reuse.
    int r;
    r = rnd(100);
    if (r < 60) { input[i] = rnd(8); }
    else { if (r < 90) { input[i] = 8 + rnd(32); } else { input[i] = rnd(256); } }
  }
  for (b = 0; b < 8; b = b + 1) {
    clear_table();
    total = total + compress_block(b * 8192, 8192);
  }
  print(total);
}
|};
  }

(* 130.li: a cons-cell list interpreter: arena allocation, deep recursion
   (the CCT gains real backedges), pointer chasing. *)
let li_like =
  {
    Workload.name = "li_like";
    spec_name = "130.li";
    suite = Workload.Cint;
    description = "lisp-ish list kernel: arena cons cells, deep recursion";
    source =
      lcg
      ^ {|
int car[65536];
int cdr[65536];
int free_ptr;

int cons(int a, int d) {
  int c;
  c = free_ptr;
  free_ptr = free_ptr + 1;
  car[c] = a; cdr[c] = d;
  return c;
}

int build_list(int n) {
  if (n == 0) { return 0; }
  return cons(rnd(1000), build_list(n - 1));
}

int length(int l) {
  if (l == 0) { return 0; }
  return 1 + length(cdr[l]);
}

int sum(int l) {
  if (l == 0) { return 0; }
  return car[l] + sum(cdr[l]);
}

int map_double(int l) {
  if (l == 0) { return 0; }
  return cons(car[l] * 2, map_double(cdr[l]));
}

int rev_append(int l, int acc) {
  if (l == 0) { return acc; }
  return rev_append(cdr[l], cons(car[l], acc));
}

// Trees: a leaf has cdr == 0 and its value in car; interior cells hold two
// cell indices (always non-zero).
int tree_build(int depth) {
  if (depth == 0) { return cons(rnd(100), 0); }
  int l; int r;
  l = tree_build(depth - 1);
  r = tree_build(depth - 1);
  return cons(l, r);
}

int tree_sum(int t) {
  if (cdr[t] == 0) { return car[t]; }
  return tree_sum(car[t]) + tree_sum(cdr[t]);
}

void main() {
  int round; int acc;
  seed = 11;
  free_ptr = 1;
  acc = 0;
  for (round = 0; round < 50; round = round + 1) {
    free_ptr = 1;  // the arena is dead between rounds
    int l;
    l = build_list(300);
    acc = acc + length(l);
    acc = acc + sum(l) % 997;
    int m;
    m = map_double(l);
    acc = acc + sum(m) % 997;
    acc = acc + length(rev_append(l, 0));
    int t;
    t = tree_build(7);
    acc = acc + tree_sum(t) % 997;
  }
  print(acc);
}
|};
  }

(* 132.ijpeg: 8x8 integer DCT-ish transforms and quantization over an
   image; dense loops, moderate path counts. *)
let ijpeg_like =
  {
    Workload.name = "ijpeg_like";
    spec_name = "132.ijpeg";
    suite = Workload.Cint;
    description = "image coder: blocked 8x8 transforms and quantization";
    source =
      lcg
      ^ {|
int image[65536];    // 256x256
int block[64];
int coef[64];
int quant[64];

void load_block(int bx, int by) {
  int i; int j;
  for (i = 0; i < 8; i = i + 1) {
    for (j = 0; j < 8; j = j + 1) {
      block[i * 8 + j] = image[(by * 8 + i) * 256 + bx * 8 + j];
    }
  }
}

// Separable integer transform (butterfly-flavoured).
void transform() {
  int i; int j;
  for (i = 0; i < 8; i = i + 1) {
    int s0; int s1; int s2; int s3;
    s0 = block[i * 8 + 0] + block[i * 8 + 7];
    s1 = block[i * 8 + 1] + block[i * 8 + 6];
    s2 = block[i * 8 + 2] + block[i * 8 + 5];
    s3 = block[i * 8 + 3] + block[i * 8 + 4];
    coef[i * 8 + 0] = s0 + s3;
    coef[i * 8 + 1] = s1 + s2;
    coef[i * 8 + 2] = s0 - s3;
    coef[i * 8 + 3] = s1 - s2;
    coef[i * 8 + 4] = block[i * 8 + 0] - block[i * 8 + 7];
    coef[i * 8 + 5] = block[i * 8 + 1] - block[i * 8 + 6];
    coef[i * 8 + 6] = block[i * 8 + 2] - block[i * 8 + 5];
    coef[i * 8 + 7] = block[i * 8 + 3] - block[i * 8 + 4];
  }
  for (j = 0; j < 8; j = j + 1) {
    int t0; int t1;
    t0 = coef[0 * 8 + j] + coef[7 * 8 + j];
    t1 = coef[3 * 8 + j] + coef[4 * 8 + j];
    coef[0 * 8 + j] = t0 + t1;
    coef[7 * 8 + j] = t0 - t1;
  }
}

int quantize() {
  int i; int nz;
  nz = 0;
  for (i = 0; i < 64; i = i + 1) {
    coef[i] = coef[i] / quant[i];
    if (coef[i] != 0) { nz = nz + 1; }
  }
  return nz;
}

void main() {
  int bx; int by; int total; int i;
  seed = 3;
  for (i = 0; i < 65536; i = i + 1) { image[i] = rnd(256); }
  for (i = 0; i < 64; i = i + 1) { quant[i] = 1 + i / 4; }
  total = 0;
  for (by = 0; by < 24; by = by + 1) {
    for (bx = 0; bx < 24; bx = bx + 1) {
      load_block(bx, by);
      transform();
      total = total + quantize();
    }
  }
  print(total);
}
|};
  }

(* 134.perl: word hashing and a small state-machine matcher over
   pseudo-text. *)
let perl_like =
  {
    Workload.name = "perl_like";
    spec_name = "134.perl";
    suite = Workload.Cint;
    description = "string processing: word hashing and pattern matching";
    source =
      lcg
      ^ {|
int text[65536];
int hash_count[4096];

int hash_word(int start, int len) {
  int h; int i;
  h = 5381;
  for (i = 0; i < len; i = i + 1) {
    h = (h * 33 + text[start + i]) % 1048576;
  }
  return h % 4096;
}

int count_words() {
  int i; int words; int start;
  i = 0; words = 0;
  while (i < 65536) {
    // skip separators (value 0)
    while (i < 65536 && text[i] == 0) { i = i + 1; }
    start = i;
    while (i < 65536 && text[i] != 0) { i = i + 1; }
    if (i > start) {
      int h;
      h = hash_word(start, i - start);
      hash_count[h] = hash_count[h] + 1;
      words = words + 1;
    }
  }
  return words;
}

// Match the pattern "a+b" (one-or-more 1s then a 2) with a tiny DFA.
int match_runs() {
  int i; int state; int matches;
  state = 0; matches = 0;
  for (i = 0; i < 65536; i = i + 1) {
    int c;
    c = text[i];
    if (state == 0) {
      if (c == 1) { state = 1; }
    } else {
      if (c == 1) { state = 1; }
      else { if (c == 2) { matches = matches + 1; state = 0; }
             else { state = 0; } }
    }
  }
  return matches;
}

void main() {
  int i;
  seed = 21;
  for (i = 0; i < 65536; i = i + 1) {
    int r;
    r = rnd(10);
    if (r < 2) { text[i] = 0; }
    else { text[i] = 1 + rnd(26); }
  }
  print(count_words());
  print(match_runs());
  int peak;
  peak = 0;
  for (i = 0; i < 4096; i = i + 1) {
    if (hash_count[i] > peak) { peak = hash_count[i]; }
  }
  print(peak);
}
|};
  }

(* 147.vortex: an object store: layered lookups through several call levels
   with many call sites -- the paper's largest CCT by far. *)
let vortex_like =
  {
    Workload.name = "vortex_like";
    spec_name = "147.vortex";
    suite = Workload.Cint;
    description =
      "in-memory object database: deep call chains, many call sites, the \
       largest CCT";
    source =
      lcg
      ^ {|
int keys[16384];
int vals[16384];
int count;
int ops_done;

int compare(int a, int b) {
  if (a < b) { return -1; }
  if (a > b) { return 1; }
  return 0;
}

int bsearch(int key) {
  int lo; int hi;
  lo = 0; hi = count;
  while (lo < hi) {
    int mid; int c;
    mid = (lo + hi) / 2;
    c = compare(keys[mid], key);
    if (c < 0) { lo = mid + 1; } else { hi = mid; }
  }
  return lo;
}

int index_lookup(int key) {
  int pos;
  pos = bsearch(key);
  if (pos < count && keys[pos] == key) { return vals[pos]; }
  return -1;
}

void index_insert(int key, int v) {
  int pos; int i;
  pos = bsearch(key);
  if (pos < count && keys[pos] == key) { vals[pos] = v; return; }
  if (count >= 16384) { return; }
  for (i = count; i > pos; i = i - 1) {
    keys[i] = keys[i - 1];
    vals[i] = vals[i - 1];
  }
  keys[pos] = key; vals[pos] = v;
  count = count + 1;
}

void index_delete(int key) {
  int pos; int i;
  pos = bsearch(key);
  if (pos >= count || keys[pos] != key) { return; }
  for (i = pos; i < count - 1; i = i + 1) {
    keys[i] = keys[i + 1];
    vals[i] = vals[i + 1];
  }
  count = count - 1;
}

int validate(int key, int v) {
  if (v < 0) { return 0; }
  if (key % 7 == 0 && v % 7 != 0) { return 0; }
  return 1;
}

int txn_read(int key) {
  int v;
  v = index_lookup(key);
  if (validate(key, v)) { ops_done = ops_done + 1; }
  return v;
}

void txn_write(int key, int v) {
  index_insert(key, v);
  ops_done = ops_done + 1;
}

void txn_update(int key) {
  int v;
  v = txn_read(key);
  if (v >= 0) { txn_write(key, v + 1); }
  else { txn_write(key, key % 1000); }
}

void txn_purge(int key) {
  index_delete(key);
  ops_done = ops_done + 1;
}

void main() {
  int i;
  seed = 8;
  count = 0; ops_done = 0;
  int acc;
  acc = 0;
  for (i = 0; i < 1800; i = i + 1) {
    int key; int r;
    key = rnd(4000);
    r = rnd(100);
    if (r < 40) { acc = acc + txn_read(key); }
    else { if (r < 70) { txn_write(key, rnd(10000)); }
    else { if (r < 90) { txn_update(key); }
    else { txn_purge(key); } } }
  }
  print(ops_done);
  print(count);
  print(acc % 100000);
}
|};
  }

let all =
  [
    go_like;
    m88k_like;
    gcc_like;
    compress_like;
    li_like;
    ijpeg_like;
    perl_like;
    vortex_like;
  ]
