(* pp — the command-line face of the profiler, loosely the role the PP tool
   played in the paper: compile (MiniC instead of editing SPARC binaries),
   instrument, execute on the simulated UltraSPARC, and report.

     pp run program.mc
     pp run --workload gcc_like --shards 4 --jobs 4
     pp profile program.mc --mode flow-hw --top 10
     pp profile --workload compress_like --mode context-flow
     pp bench --jobs 8
     pp merge -o whole.pprof shard0.pprof shard1.pprof
     pp paths program.mc
     pp workloads                                                          *)

open Cmdliner
module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver
module Interp = Pp_vm.Interp
module Event = Pp_machine.Event
module Profile = Pp_core.Profile
module Hotpath = Pp_core.Hotpath
module Ball_larus = Pp_core.Ball_larus
module Cct = Pp_core.Cct
module Cct_stats = Pp_core.Cct_stats
module Runtime = Pp_vm.Runtime
module Registry = Pp_workloads.Registry
module Cct_io = Pp_core.Cct_io
module Profile_io = Pp_core.Profile_io
module Engine = Pp_vm.Engine
module Pool = Pp_run.Pool
module Matrix = Pp_run.Matrix
module Checkpoint = Pp_run.Checkpoint
module Chaos = Pp_run.Chaos
module Faults = Pp_run.Faults
module Diag = Pp_ir.Diag
module Trace = Pp_telemetry.Trace
module Metrics = Pp_telemetry.Metrics
module Overhead = Pp_overhead.Overhead
module Predict_run = Pp_run.Predict_run

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Same escaping rules as Overhead.to_json: all --json output follows one
   convention. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let load ~file ~workload =
  match (file, workload) with
  | Some path, None ->
      let src = read_file path in
      if Filename.check_suffix path ".ppir" then (
        try
          let prog = Pp_ir.Ir_text.parse src in
          Pp_ir.Validate.run prog;
          Ok prog
        with
        | Pp_ir.Ir_text.Parse_error (line, msg) ->
            Error (Printf.sprintf "%s:%d: %s" path line msg)
        | Pp_ir.Validate.Invalid d -> Error (Pp_ir.Diag.to_string d))
      else (
        try Ok (Pp_minic.Compile.program ~name:path src) with
        | Pp_minic.Errors.Error (pos, msg) ->
            Error (Pp_minic.Errors.to_string ~file:path pos msg)
        | Pp_ir.Validate.Invalid d -> Error (Pp_ir.Diag.to_string d))
  | None, Some name -> (
      match Registry.find name with
      | Some w -> Ok (Pp_workloads.Workload.compile w)
      | None ->
          Error
            (Printf.sprintf "unknown workload %S; try 'pp workloads'" name))
  | Some _, Some _ -> Error "give either a file or --workload, not both"
  | None, None -> Error "a source file or --workload is required"

let print_output (r : Interp.result) =
  List.iter
    (function
      | Interp.Oint n -> Printf.printf "%d\n" n
      | Interp.Ofloat x -> Printf.printf "%.6g\n" x)
    r.Interp.output

let print_counters (r : Interp.result) =
  Printf.printf "\n-- counters --\n";
  List.iter
    (fun (e, v) -> Printf.printf "%-18s %12d\n" (Event.name e) v)
    r.Interp.counters

(* --- common options --- *)

let file =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"MiniC source file (.mc) or textual IR (.ppir).")

let workload_opt =
  Arg.(value & opt (some string) None
       & info [ "workload"; "w" ] ~docv:"NAME"
           ~doc:"Profile a built-in SPEC95-analogue workload instead of a \
                 file.")

let budget =
  Arg.(value & opt int 400_000_000
       & info [ "budget" ] ~docv:"N"
           ~doc:"Maximum simulated instructions before trapping.")

let exit_err msg =
  Printf.eprintf "pp: %s\n" msg;
  exit 1

(* Invalid arguments and structured diagnostics exit 2 (cmdliner reserves
   124/125); operational failures exit 1. *)
let exit_invalid d =
  Printf.eprintf "pp: %s\n" (Diag.to_string d);
  exit 2

(* --engine on run/profile/bench/chaos.  Parsed by hand instead of
   Arg.enum so an invalid value exits 2 through the shared diagnostic
   path (cmdliner's own parse errors exit 124). *)
let engine_opt =
  Arg.(value & opt string (Engine.kind_name Engine.default)
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Execution tier: 'compiled' (closure-threaded, the \
                 default) or 'interp' (the per-instruction reference \
                 interpreter).  Both are certified byte-identical — \
                 counters, profiles and output match exactly — so the \
                 choice only affects wall-clock speed.")

let parse_engine s =
  match Engine.kind_of_string s with
  | Some k -> k
  | None ->
      exit_invalid
        (Diag.error (Diag.proc_loc "<cli>")
           "--engine must be one of: %s (got %S)"
           (String.concat ", " (List.map Engine.kind_name Engine.kinds))
           s)

let require_positive ~flag v =
  if v <= 0 then
    exit_invalid
      (Diag.error (Diag.proc_loc "<cli>") "--%s must be positive (got %d)"
         flag v)

let require_non_negative_f ~flag v =
  if v < 0.0 then
    exit_invalid
      (Diag.error (Diag.proc_loc "<cli>") "--%s must be non-negative (got %g)"
         flag v)

(* A degraded run completed but with partial coverage (some shards
   quarantined, salvaged or lost): distinct from operational failure (1)
   and invalid usage (2) so CI can gate on it. *)
let exit_degraded = 3

(* --telemetry FILE on run/profile/bench: dump the global metrics
   registry after the command's work is done.  The dump is canonical and
   jobs-independent, so CI can diff it across --jobs values. *)
let telemetry_opt =
  Arg.(value & opt (some string) None
       & info [ "telemetry" ] ~docv:"FILE"
           ~doc:"Write the canonical metrics dump (counters, gauges, \
                 log-bucketed histograms recorded by this command and its \
                 pool workers) to FILE.")

let write_telemetry path =
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (Metrics.dump (Metrics.snapshot Metrics.default));
      close_out oc)
    path

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* --- pp run --- *)

(* Sum per-event counters across shards (events in shard-0 order). *)
let merge_counters a b =
  List.map (fun (e, v) -> (e, v + (try List.assoc e b with Not_found -> 0))) a

let run_cmd =
  let doc = "Execute a program uninstrumented and report its counters." in
  let action file workload budget counters shards jobs retries checkpoint_dir
      engine telemetry =
    let engine = parse_engine engine in
    require_positive ~flag:"shards" shards;
    require_positive ~flag:"jobs" jobs;
    require_positive ~flag:"retries" retries;
    require_positive ~flag:"budget" budget;
    let record_run (r : Interp.result) =
      Metrics.incr Metrics.default "run.instructions" r.Interp.instructions;
      Metrics.incr Metrics.default "run.cycles" r.Interp.cycles
    in
    match load ~file ~workload with
    | Error msg -> exit_err msg
    | Ok prog when shards <= 1 -> (
        match
          Engine.run
            (Engine.create ~kind:engine ~max_instructions:budget prog)
        with
        | r ->
            print_output r;
            Printf.printf "\n%d instructions, %d cycles\n" r.Interp.instructions
              r.Interp.cycles;
            if counters then print_counters r;
            record_run r;
            write_telemetry telemetry
        | exception Interp.Trap msg -> exit_err ("trap: " ^ msg))
    | Ok prog -> (
        (* Sharded: the same run in [shards] isolated processes, counters
           summed — the aggregate profile a sharded run matrix produces.
           With --checkpoint-dir, each completed shard is persisted and a
           re-invocation runs only the shards still missing; summing in
           shard order keeps stdout byte-identical fresh vs resumed. *)
        let key =
          Printf.sprintf "%s:%d" (Profile_io.program_hash prog) budget
        in
        let results =
          match checkpoint_dir with
          | None -> Array.make shards None
          | Some dir ->
              Array.init shards (fun k -> Checkpoint.load ~dir ~key k)
        in
        let missing =
          List.filter
            (fun k -> results.(k) = None)
            (List.init shards (fun i -> i))
        in
        let resumed = shards - List.length missing in
        if resumed > 0 then
          Printf.eprintf "pp: resumed %d of %d shards from checkpoints\n"
            resumed shards;
        let outcomes, stats =
          Pool.map_retry ~jobs ~retries
            (fun ~attempt:_ shard ->
              let r =
                Engine.run
                  (Engine.create ~kind:engine ~max_instructions:budget prog)
              in
              record_run r;
              (* Persist from the worker, the moment the shard completes:
                 a run killed mid-flight still leaves every finished
                 shard resumable (the write is temp-file + atomic rename,
                 so a kill can never leave a torn checkpoint). *)
              Option.iter
                (fun dir -> Checkpoint.save ~dir ~key shard r)
                checkpoint_dir;
              r)
            missing
        in
        (* Wall-clock summary goes to stderr: stdout stays byte-identical
           at any --jobs. *)
        prerr_string (Pool.footer stats);
        List.iter2
          (fun k o ->
            match o with
            | Pool.Done r -> results.(k) <- Some r
            | o -> Printf.eprintf "pp: shard %d %s\n" k (Pool.describe o))
          missing outcomes;
        let ok =
          List.filter_map
            (fun k -> results.(k))
            (List.init shards (fun i -> i))
        in
        match ok with
        | [] -> exit_err "all shards failed"
        | first :: rest ->
            List.iteri
              (fun i r ->
                if r.Interp.output <> first.Interp.output then
                  Printf.eprintf
                    "pp: shard %d produced different output (nondeterminism?)\n"
                    (i + 1))
              rest;
            print_output first;
            let insts =
              List.fold_left (fun a r -> a + r.Interp.instructions) 0 ok
            in
            let cycles = List.fold_left (fun a r -> a + r.Interp.cycles) 0 ok in
            Printf.printf
              "\n%d instructions, %d cycles over %d of %d shards\n" insts
              cycles (List.length ok) shards;
            if counters then begin
              let merged =
                List.fold_left
                  (fun acc r -> merge_counters acc r.Interp.counters)
                  first.Interp.counters rest
              in
              Printf.printf "\n-- counters (all shards) --\n";
              List.iter
                (fun (e, v) -> Printf.printf "%-18s %12d\n" (Event.name e) v)
                merged
            end;
            Metrics.set_gauge Metrics.default "run.shards" shards;
            write_telemetry telemetry;
            if List.length ok < shards then begin
              Printf.eprintf "pp: coverage: %d/%d shards (degraded)\n"
                (List.length ok) shards;
              exit exit_degraded
            end)
  in
  let counters =
    Arg.(value & flag
         & info [ "counters"; "c" ] ~doc:"Print all event counters.")
  in
  let shards =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"K"
             ~doc:"Execute the run K times in isolated processes and sum \
                   the counters.")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Shards to run concurrently.")
  in
  let retries =
    Arg.(value & opt int 1
         & info [ "retries" ] ~docv:"N"
             ~doc:"Attempt budget per shard: a crashed or timed-out shard \
                   is rerun (with backoff) up to N times total before it \
                   is quarantined.")
  in
  let checkpoint_dir =
    Arg.(value & opt (some string) None
         & info [ "checkpoint-dir" ] ~docv:"DIR"
             ~doc:"Persist each completed shard's result in DIR and, on \
                   re-invocation, run only the shards still missing.  The \
                   resumed run's stdout is byte-identical to an \
                   uninterrupted one.")
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const action $ file $ workload_opt $ budget $ counters $ shards
          $ jobs $ retries $ checkpoint_dir $ engine_opt $ telemetry_opt)

(* --- pp profile --- *)

let mode_assoc =
  [
    ("edge-freq", Instrument.Edge_freq);
    ("flow-freq", Instrument.Flow_freq);
    ("flow-hw", Instrument.Flow_hw);
    ("context-hw", Instrument.Context_hw);
    ("context-flow", Instrument.Context_flow);
  ]

let mode_conv = Arg.enum mode_assoc

let event_conv =
  let parse s =
    match Event.of_name s with
    | Some e -> Ok e
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown event %S (one of: %s)" s
                (String.concat ", " (List.map Event.name Event.all))))
  in
  Arg.conv (parse, fun ppf e -> Format.pp_print_string ppf (Event.name e))

let profile_flow ~top profile =
  Format.printf "%a@."
    Hotpath.pp_path_classes
    (Hotpath.classify_paths profile);
  Format.printf "@.by procedure:@.%a@." Hotpath.pp_proc_classes
    (Hotpath.classify_procs profile);
  Printf.printf "\ntop %d paths by %s:\n" top
    (Event.name profile.Profile.pic0);
  List.iteri
    (fun i (proc, sum, (m : Profile.path_metrics)) ->
      if i < top then
        let p = Option.get (Profile.find_proc profile proc) in
        Format.printf "  %2d. %-18s %s=%-9d freq=%-8d %a@." (i + 1)
          (Printf.sprintf "%s#%d" proc sum)
          (Event.name profile.Profile.pic0)
          m.Profile.m0 m.Profile.freq Ball_larus.pp_path
          (Profile.decode p sum))
    (Hotpath.hot_paths ~threshold:0.0001 profile)

let profile_cct ~top session =
  let cct = Driver.cct session in
  let stats = Cct_stats.compute ~metrics_per_node:2 cct in
  Format.printf "%a@." Cct_stats.pp stats;
  Printf.printf "\ntop %d contexts by pic0 delta:\n" top;
  let nodes =
    Cct.fold (fun acc n -> n :: acc) [] cct
    |> List.filter (fun n -> Cct.parent n <> None)
    |> List.sort (fun a b ->
           compare (Cct.data b).Runtime.metrics.(1)
             (Cct.data a).Runtime.metrics.(1))
  in
  List.iteri
    (fun i node ->
      if i < top then
        let d = Cct.data node in
        Printf.printf "  %2d. %-40s entries=%-8d pic0=%-9d pic1=%d\n" (i + 1)
          (String.concat "." (Cct.context node))
          d.Runtime.metrics.(0) d.Runtime.metrics.(1) d.Runtime.metrics.(2))
    nodes

(* Serialise the runtime CCT with its metric payload; the reload side uses
   Cct_io.metrics_codec-compatible data. *)
let cct_codec =
  {
    Cct_io.encode =
      (fun (d : Runtime.record_data) ->
        Cct_io.metrics_codec.Cct_io.encode d.Runtime.metrics);
    decode =
      (fun s ->
        {
          Runtime.addr = 0;
          metrics = Cct_io.metrics_codec.Cct_io.decode s;
          paths = Hashtbl.create 1;
          ptable_addr = 0;
        });
  }

(* --- sampled instrumentation flags (pp profile, pp serve --drive) --- *)

let duty_opt =
  Arg.(value & opt (some float) None
       & info [ "duty" ] ~docv:"FRACTION"
           ~doc:"Enable sampled instrumentation: gate path commits so \
                 roughly FRACTION of each procedure's decision bursts \
                 record (0.0-1.0).  The saved shard carries per-procedure \
                 coverage windows so consumers can rescale; 1.0 gates \
                 nothing — every frequency matches an exhaustive run, and \
                 the shard is byte-identical to an unsampled session of \
                 the same hash-table instrumentation (sampling forces the \
                 zero array threshold, so small procedures' inlined \
                 array-commit cost metrics differ from the unsampled \
                 default).")

let sampling_seed_opt =
  Arg.(value & opt int 0
       & info [ "sampling-seed" ] ~docv:"SEED"
           ~doc:"Seed of the deterministic sampling schedule (with \
                 --duty).  Same seed, duty and burst replay the same \
                 gating decisions on either engine at any --jobs.")

let burst_opt =
  Arg.(value & opt int Pp_vm.Sampling.default_burst
       & info [ "burst" ] ~docv:"N"
           ~doc:"Sampling burst length: gating decisions hold for runs of \
                 N consecutive path commits per procedure (with --duty).")

(* The static analyzer's certified feasible-path counts, as saved-shard
   annotations. *)
let feasible_of_session (session : Driver.session) =
  List.filter_map
    (fun (info : Instrument.proc_info) ->
      Option.map
        (fun p -> (info.Instrument.proc, Ball_larus.num_feasible p))
        info.Instrument.pruned)
    session.Driver.manifest.Instrument.infos

(* Sampling gates path commits, so it needs a mode that has some: the
   same set --profile-out accepts. *)
let make_sampling ~mode ~burst ~seed duty =
  Option.map
    (fun d ->
      if d < 0.0 || d > 1.0 then
        exit_invalid
          (Diag.error (Diag.proc_loc "<cli>")
             "--duty must be within [0, 1] (got %g)" d);
      require_positive ~flag:"burst" burst;
      (match mode with
      | Instrument.Flow_freq | Instrument.Flow_hw | Instrument.Context_flow
        ->
          ()
      | Instrument.Edge_freq | Instrument.Context_hw ->
          exit_invalid
            (Diag.error (Diag.proc_loc "<cli>")
               "--duty needs a path-profiling mode (flow-freq, flow-hw or \
                context-flow); %s has no path commits to gate"
               (Instrument.mode_name mode)));
      Pp_vm.Sampling.create ~burst ~duty:d ~seed ())
    duty

let profile_cmd =
  let doc =
    "Instrument, execute on the simulated UltraSPARC, and report the \
     profile."
  in
  let action file workload budget mode pic0 pic1 top cct_out dot_out
      profile_out duty sampling_seed burst engine telemetry =
    let engine = parse_engine engine in
    require_positive ~flag:"budget" budget;
    require_positive ~flag:"top" top;
    let sampling = make_sampling ~mode ~burst ~seed:sampling_seed duty in
    match load ~file ~workload with
    | Error msg -> exit_err msg
    | Ok prog -> (
        (* Feasibility pruning is always on for profiling sessions: the
           numbering is unchanged, so this only shrinks simulated table
           footprints and annotates saved shards. *)
        let session =
          Driver.prepare ~pruner:Pp_analysis.Feasibility.pruner
            ~max_instructions:budget ~pics:(pic0, pic1) ~engine ?sampling
            ~mode prog
        in
        match Driver.run session with
        | exception Interp.Trap msg -> exit_err ("trap: " ^ msg)
        | r ->
            print_output r;
            Printf.printf "\n%d instructions, %d cycles (instrumented, %s)\n"
              r.Interp.instructions r.Interp.cycles
              (Instrument.mode_name mode);
            Option.iter
              (fun s ->
                let windows = Pp_vm.Sampling.coverage s in
                let sampled, total =
                  List.fold_left
                    (fun (sa, ta) (_, (sw, tw)) -> (sa + sw, ta + tw))
                    (0, 0) windows
                in
                Printf.printf
                  "sampling: duty=%g burst=%d seed=%d — recorded %d of %d \
                   path commits over %d procedures\n"
                  (Option.value ~default:1.0 duty)
                  (Pp_vm.Sampling.burst s) (Pp_vm.Sampling.seed s) sampled
                  total (List.length windows))
              sampling;
            Option.iter
              (fun path ->
                match mode with
                | Instrument.Flow_freq | Instrument.Flow_hw
                | Instrument.Context_flow ->
                    let feasible = feasible_of_session session in
                    let saved =
                      Profile_io.of_profile ~feasible
                        ~coverage:(Driver.coverage session)
                        ~program_hash:(Profile_io.program_hash prog)
                        ~mode:(Instrument.mode_name mode)
                        (Driver.path_profile session)
                    in
                    Profile_io.to_file path saved;
                    Printf.printf "wrote path profile to %s\n" path
                | Instrument.Edge_freq | Instrument.Context_hw ->
                    exit_err
                      "--profile-out needs a path-profiling mode \
                       (flow-freq, flow-hw or context-flow)")
              profile_out;
            (match mode with
            | Instrument.Flow_freq | Instrument.Flow_hw
            | Instrument.Context_flow ->
                profile_flow ~top (Driver.path_profile session)
            | Instrument.Edge_freq ->
                print_endline
                  "\nedge profile (reconstructed from chord counters):";
                List.iter
                  (fun (proc, _plan, edges) ->
                    let total =
                      List.fold_left (fun acc (_, c) -> acc + c) 0 edges
                    in
                    let hottest =
                      List.fold_left
                        (fun acc (_, c) -> max acc c)
                        0 edges
                    in
                    Printf.printf
                      "  %-18s %9d traversals over %3d edges (hottest %d)\n"
                      proc total (List.length edges) hottest)
                  (Driver.edge_profile session)
            | Instrument.Context_hw -> ());
            (match mode with
            | Instrument.Context_hw | Instrument.Context_flow ->
                profile_cct ~top session;
                let cct = Driver.cct session in
                Option.iter
                  (fun path ->
                    Cct_io.to_file ~codec:cct_codec path cct;
                    Printf.printf "\nwrote CCT to %s\n" path)
                  cct_out;
                Option.iter
                  (fun path ->
                    let oc = open_out path in
                    output_string oc (Cct_io.to_dot cct);
                    close_out oc;
                    Printf.printf "wrote CCT dot graph to %s\n" path)
                  dot_out
            | Instrument.Edge_freq | Instrument.Flow_freq
            | Instrument.Flow_hw ->
                ());
            Metrics.incr Metrics.default "profile.instructions"
              r.Interp.instructions;
            Metrics.incr Metrics.default "profile.cycles" r.Interp.cycles;
            write_telemetry telemetry)
  in
  let mode =
    Arg.(value & opt mode_conv Instrument.Flow_hw
         & info [ "mode"; "m" ] ~docv:"MODE"
             ~doc:"edge-freq, flow-freq, flow-hw, context-hw or \
                   context-flow.")
  in
  let pic0 =
    Arg.(value & opt event_conv Event.Dcache_misses
         & info [ "pic0" ] ~docv:"EVENT" ~doc:"Event on counter 0.")
  in
  let pic1 =
    Arg.(value & opt event_conv Event.Instructions
         & info [ "pic1" ] ~docv:"EVENT" ~doc:"Event on counter 1.")
  in
  let top =
    Arg.(value & opt int 10
         & info [ "top"; "n" ] ~docv:"N" ~doc:"Rows to print.")
  in
  let cct_out =
    Arg.(value & opt (some string) None
         & info [ "cct-out" ] ~docv:"FILE"
             ~doc:"Write the calling context tree to FILE (context modes; \
                   the paper's write-heap-at-exit, reloadable with \
                   Cct_io).")
  in
  let dot_out =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"FILE"
             ~doc:"Write the CCT as a Graphviz graph (context modes).")
  in
  let profile_out =
    Arg.(value & opt (some string) None
         & info [ "profile-out" ] ~docv:"FILE"
             ~doc:"Write the path profile to FILE as a mergeable shard \
                   (see 'pp merge').")
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const action $ file $ workload_opt $ budget $ mode $ pic0 $ pic1 $ top
      $ cct_out $ dot_out $ profile_out $ duty_opt $ sampling_seed_opt
      $ burst_opt $ engine_opt $ telemetry_opt)

(* --- pp paths --- *)

let describe_verdict cfg = function
  | Pp_analysis.Feasibility.Feasible -> "feasible"
  | Pp_analysis.Feasibility.Infeasible_edge e ->
      Printf.sprintf "crosses never-taken edge %s -> %s"
        (Pp_ir.Cfg.vertex_name cfg e.Pp_graph.Digraph.src)
        (Pp_ir.Cfg.vertex_name cfg e.Pp_graph.Digraph.dst)
  | Pp_analysis.Feasibility.Infeasible_branch { block; value } ->
      Printf.sprintf "contradicts constant branch at L%d (condition = %d)"
        block value

let paths_cmd =
  let doc =
    "Static path-numbering report: potential (and statically feasible) \
     paths per procedure."
  in
  let action file workload feasible table dot_proc json =
    match load ~file ~workload with
    | Error msg -> exit_err msg
    | Ok prog when json ->
        let buf = Buffer.create 1024 in
        let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
        add "{\"procs\":[";
        Array.iteri
          (fun i (p : Pp_ir.Proc.t) ->
            if i > 0 then add ",";
            let cfg = Pp_ir.Cfg.of_proc p in
            match Ball_larus.build cfg with
            | exception Ball_larus.Unsupported msg ->
                add "{\"proc\":\"%s\",\"unsupported\":\"%s\"}"
                  (json_escape p.Pp_ir.Proc.name) (json_escape msg)
            | bl ->
                add
                  "{\"proc\":\"%s\",\"blocks\":%d,\"backedges\":%d,\"potential_paths\":%d"
                  (json_escape p.Pp_ir.Proc.name)
                  (Pp_ir.Proc.num_blocks p)
                  (List.length (Ball_larus.backedges bl))
                  (Ball_larus.num_paths bl);
                if feasible || table then begin
                  let fs = Pp_analysis.Feasibility.analyze cfg bl in
                  if Pp_analysis.Feasibility.enumerated fs then begin
                    let nf = Pp_analysis.Feasibility.num_feasible fs in
                    add ",\"feasible\":%d,\"pruned\":%d,\"infeasible\":[" nf
                      (Ball_larus.num_paths bl - nf);
                    List.iteri
                      (fun j sum ->
                        if j > 0 then add ",";
                        add "{\"path\":%d,\"reason\":\"%s\"}" sum
                          (json_escape
                             (describe_verdict cfg
                                (Pp_analysis.Feasibility.check fs sum))))
                      (Pp_analysis.Feasibility.infeasible_sums fs);
                    add "]"
                  end
                  else add ",\"feasible\":null"
                end;
                add "}")
          prog.Pp_ir.Program.procs;
        add "]}";
        print_string (Buffer.contents buf)
    | Ok prog ->
        Array.iter
          (fun (p : Pp_ir.Proc.t) ->
            let cfg = Pp_ir.Cfg.of_proc p in
            match Ball_larus.build cfg with
            | bl ->
                if feasible || table then begin
                  let fs = Pp_analysis.Feasibility.analyze cfg bl in
                  if Pp_analysis.Feasibility.enumerated fs then begin
                    let nf = Pp_analysis.Feasibility.num_feasible fs in
                    Printf.printf
                      "%-20s blocks=%-4d backedges=%-3d potential \
                       paths=%-6d feasible=%-6d pruned=%d\n"
                      p.Pp_ir.Proc.name (Pp_ir.Proc.num_blocks p)
                      (List.length (Ball_larus.backedges bl))
                      (Ball_larus.num_paths bl) nf
                      (Ball_larus.num_paths bl - nf);
                    if table then
                      List.iter
                        (fun sum ->
                          let v = Pp_analysis.Feasibility.check fs sum in
                          Format.printf "  path %-5d %-10s %a@." sum
                            (match v with
                            | Pp_analysis.Feasibility.Feasible -> "feasible"
                            | _ -> "infeasible")
                            Ball_larus.pp_path (Ball_larus.decode bl sum);
                          if v <> Pp_analysis.Feasibility.Feasible then
                            Printf.printf "             (%s)\n"
                              (describe_verdict cfg v))
                        (List.init (Ball_larus.num_paths bl) Fun.id)
                    else
                      List.iter
                        (fun sum ->
                          Printf.printf "  infeasible path %d: %s\n" sum
                            (describe_verdict cfg
                               (Pp_analysis.Feasibility.check fs sum)))
                        (Pp_analysis.Feasibility.infeasible_sums fs)
                  end
                  else
                    Printf.printf
                      "%-20s blocks=%-4d backedges=%-3d potential \
                       paths=%-6d feasible=? (table too large to \
                       enumerate)\n"
                      p.Pp_ir.Proc.name (Pp_ir.Proc.num_blocks p)
                      (List.length (Ball_larus.backedges bl))
                      (Ball_larus.num_paths bl)
                end
                else
                  Printf.printf
                    "%-20s blocks=%-4d backedges=%-3d potential paths=%d\n"
                    p.Pp_ir.Proc.name (Pp_ir.Proc.num_blocks p)
                    (List.length (Ball_larus.backedges bl))
                    (Ball_larus.num_paths bl)
            | exception Ball_larus.Unsupported msg ->
                Printf.printf "%-20s unsupported: %s\n" p.Pp_ir.Proc.name msg)
          prog.Pp_ir.Program.procs;
        Option.iter
          (fun name ->
            match Pp_ir.Program.find_proc prog name with
            | None -> exit_err (Printf.sprintf "no procedure %S" name)
            | Some p ->
                let cfg = Pp_ir.Cfg.of_proc p in
                let bl = Ball_larus.build cfg in
                print_string
                  (Pp_graph.Dot.to_string cfg.Pp_ir.Cfg.graph ~name
                     ~vertex_label:(Pp_ir.Cfg.vertex_name cfg)
                     ~edge_label:(fun e ->
                       if
                         List.exists
                           (fun (b : Pp_graph.Digraph.edge) ->
                             b.Pp_graph.Digraph.id = e.Pp_graph.Digraph.id)
                           (Ball_larus.backedges bl)
                       then "backedge"
                       else string_of_int (Ball_larus.edge_val bl e))))
          dot_proc
  in
  let feasible =
    Arg.(value & flag
         & info [ "feasible" ]
             ~doc:"Run the static feasibility analysis and report \
                   feasible/pruned path counts per procedure, with a \
                   reason for every pruned path.")
  in
  let table =
    Arg.(value & flag
         & info [ "table" ]
             ~doc:"Print the full path table: every path sum, its \
                   feasibility verdict and its decoded block sequence.")
  in
  let dot_proc =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"PROC"
             ~doc:"Also print PROC's CFG as Graphviz, edges labelled with \
                   their Ball-Larus values.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the report as a single-line JSON object (same \
                   conventions as 'pp overhead --json').")
  in
  Cmd.v (Cmd.info "paths" ~doc)
    Term.(
      const action $ file $ workload_opt $ feasible $ table $ dot_proc $ json)

(* --- pp cost --- *)

let cost_cmd =
  let doc =
    "Static instrumentation cost report: probe sites, code growth and \
     estimated probe executions per procedure; with --profile, the \
     estimated-vs-measured comparison against a dynamic profile."
  in
  let action file workload mode optimize profile json =
    match load ~file ~workload with
    | Error msg -> exit_err msg
    | Ok prog -> (
        let profile =
          Option.map
            (fun path ->
              try Profile_io.of_file path with
              | Profile_io.Parse_error (line, msg) ->
                  exit_err (Printf.sprintf "%s:%d: %s" path line msg)
              | Sys_error msg -> exit_err msg)
            profile
        in
        let options =
          {
            Instrument.default_options with
            Instrument.optimize_placement = optimize;
          }
        in
        match Pp_analysis.Cost.compute ~options ~mode ?profile prog with
        | Error d -> exit_invalid d
        | Ok report ->
            if json then print_string (Pp_analysis.Cost.to_json report)
            else print_string (Pp_analysis.Cost.render report))
  in
  let mode =
    Arg.(value & opt mode_conv Instrument.Flow_hw
         & info [ "mode"; "m" ] ~docv:"MODE"
             ~doc:"edge-freq, flow-freq, flow-hw, context-hw or \
                   context-flow.")
  in
  let optimize =
    Arg.(value & flag
         & info [ "optimize-placement" ]
             ~doc:"Cost the optimized (spanning-tree chord) placement.")
  in
  let profile =
    Arg.(value & opt (some string) None
         & info [ "profile" ] ~docv:"FILE"
             ~doc:"A profile shard from 'pp profile --profile-out' to \
                   compare estimates against (same program and mode).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the report as a single-line JSON object (same \
                   conventions as 'pp overhead --json').")
  in
  Cmd.v (Cmd.info "cost" ~doc)
    Term.(const action $ file $ workload_opt $ mode $ optimize $ profile $ json)

(* --- pp disasm --- *)

let disasm_cmd =
  let doc =
    "Print a procedure's IR, optionally after instrumentation (what the \
     editor actually inserted)."
  in
  let action file workload proc mode =
    match load ~file ~workload with
    | Error msg -> exit_err msg
    | Ok prog ->
        let prog =
          match mode with
          | None -> prog
          | Some mode -> fst (Instrument.run ~mode prog)
        in
        let dump (p : Pp_ir.Proc.t) =
          Format.printf "%a@.@." Pp_ir.Proc.pp p
        in
        (match proc with
        | Some name -> (
            match Pp_ir.Program.find_proc prog name with
            | Some p -> dump p
            | None -> exit_err (Printf.sprintf "no procedure %S" name))
        | None -> Array.iter dump prog.Pp_ir.Program.procs)
  in
  let proc =
    Arg.(value & opt (some string) None
         & info [ "proc"; "p" ] ~docv:"NAME"
             ~doc:"Only this procedure (default: all).")
  in
  let mode =
    Arg.(value & opt (some mode_conv) None
         & info [ "instrument"; "i" ] ~docv:"MODE"
             ~doc:"Show the listing after instrumenting for MODE.")
  in
  Cmd.v (Cmd.info "disasm" ~doc)
    Term.(const action $ file $ workload_opt $ proc $ mode)

(* --- pp check --- *)

let check_cmd =
  let doc =
    "Statically verify that instrumentation is correct: path sums, commit \
     coverage, PIC discipline and flow conservation, per mode."
  in
  let action file workload modes lint_flag optimize caller_saves
      backedge_reads =
    (* For lint we parse .ppir without validating first, so the
       unreachable-code check can fire before Validate rejects it. *)
    let lint_diags prog = Pp_analysis.Lint.run prog in
    let raw_lint =
      if not lint_flag then []
      else
        match (file, workload) with
        | Some path, None when Filename.check_suffix path ".ppir" -> (
            match Pp_ir.Ir_text.parse (read_file path) with
            | prog -> lint_diags prog
            | exception Pp_ir.Ir_text.Parse_error (line, msg) ->
                exit_err (Printf.sprintf "%s:%d: %s" path line msg))
        | _ -> []
    in
    match load ~file ~workload with
    | Error msg -> exit_err msg
    | Ok prog ->
        let warnings =
          if not lint_flag then []
          else if raw_lint <> [] then raw_lint
          else lint_diags prog
        in
        List.iter
          (fun d -> print_endline (Pp_ir.Diag.to_string d))
          warnings;
        let modes =
          match modes with
          | [] ->
              [
                Instrument.Edge_freq;
                Instrument.Flow_freq;
                Instrument.Flow_hw;
                Instrument.Context_hw;
                Instrument.Context_flow;
              ]
          | ms -> ms
        in
        let options =
          {
            Instrument.default_options with
            Instrument.optimize_placement = optimize;
            caller_saves;
            backedge_metric_reads = backedge_reads;
          }
        in
        let failures = ref 0 in
        List.iter
          (fun mode ->
            match Instrument.run ~options ~mode prog with
            | exception Ball_larus.Unsupported msg ->
                incr failures;
                Printf.printf "%-13s cannot instrument: %s\n"
                  (Instrument.mode_name mode)
                  msg
            | instrumented, manifest ->
                let diags =
                  Pp_analysis.Verifier.verify_program ~original:prog ~manifest
                    instrumented
                in
                if diags = [] then
                  Printf.printf "%-13s ok (%d procedures)\n"
                    (Instrument.mode_name mode)
                    (Array.length prog.Pp_ir.Program.procs)
                else begin
                  incr failures;
                  Printf.printf "%-13s FAILED (%d errors)\n"
                    (Instrument.mode_name mode)
                    (List.length diags);
                  List.iter
                    (fun d -> print_endline ("  " ^ Pp_ir.Diag.to_string d))
                    diags
                end)
          modes;
        (* Verifier findings are structured diagnostics: exit 2 like the
           other diagnostic refusals, not operational failure. *)
        if !failures > 0 then exit 2
  in
  let modes =
    Arg.(value & opt_all mode_conv []
         & info [ "mode"; "m" ] ~docv:"MODE"
             ~doc:"Mode to verify (repeatable; default: all five).")
  in
  let lint_flag =
    Arg.(value & flag
         & info [ "lint" ]
             ~doc:"Also run the dataflow lint (unreachable code, \
                   uninitialised reads, dead stores, unused functions) on \
                   the uninstrumented program.")
  in
  let optimize =
    Arg.(value & flag
         & info [ "optimize-placement" ]
             ~doc:"Verify the optimized (spanning-tree chord) placement.")
  in
  let caller_saves =
    Arg.(value & flag
         & info [ "caller-saves" ]
             ~doc:"Verify the caller-saves PIC discipline (ablation A3).")
  in
  let backedge_reads =
    Arg.(value & flag
         & info [ "backedge-metric-reads" ]
             ~doc:"Verify the backedge metric reads (ablation A4).")
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const action $ file $ workload_opt $ modes $ lint_flag $ optimize
      $ caller_saves $ backedge_reads)

(* --- pp prove --- *)

(* Seeded violations for the must-fail CI gates: each mutation is the
   smallest edit that breaks one of the two certified properties, so a
   'pp prove --inject ...' run that does NOT exit 2 means the certifier
   has gone blind. *)

(* Shrink the first counter-table global by one word: the table's last
   cell is now out of bounds, which the interval proof must catch. *)
let inject_bounds (prog : Pp_ir.Program.t) (manifest : Instrument.manifest) =
  let global =
    List.find_map
      (fun (info : Instrument.proc_info) ->
        match info.Instrument.table with
        | Instrument.Array_table { global; _ }
        | Instrument.Edge_table { global; _ } ->
            Some global
        | Instrument.No_table | Instrument.Hash_table _
        | Instrument.Cct_table _ ->
            None)
      manifest.Instrument.infos
  in
  match global with
  | None ->
      exit_err
        "--inject bounds: no counter-table global in this mode (use a mode \
         with array or edge tables, e.g. -m flow-hw)"
  | Some global ->
      let globals =
        Array.to_list prog.Pp_ir.Program.globals
        |> List.map (fun (g : Pp_ir.Program.global) ->
               if g.Pp_ir.Program.gname = global then
                 { g with Pp_ir.Program.size_words = max 1 (g.size_words - 1) }
               else g)
      in
      Pp_ir.Program.make
        ~procs:(Array.to_list prog.Pp_ir.Program.procs)
        ~globals ~main:prog.Pp_ir.Program.main

(* Copy the path register (or reload its spill slot) into original
   register 0: instrumentation state now flows into a program-visible
   register, which the taint proof must catch. *)
let inject_taint ~(original : Pp_ir.Program.t) (prog : Pp_ir.Program.t)
    (manifest : Instrument.manifest) =
  let victim =
    List.find_map
      (fun (i, (info : Instrument.proc_info)) ->
        match info.Instrument.path_loc with
        | Some loc
          when original.Pp_ir.Program.procs.(i).Pp_ir.Proc.niregs >= 1 ->
            Some (i, loc)
        | _ -> None)
      (List.mapi (fun i info -> (i, info)) manifest.Instrument.infos)
  in
  match victim with
  | None ->
      exit_err
        "--inject taint: no procedure with a live path location and an \
         original integer register"
  | Some (i, loc) ->
      let p = prog.Pp_ir.Program.procs.(i) in
      let leak =
        match loc with
        | Pp_instrument.Path_instr.Path_reg r -> [ Pp_ir.Instr.Imov (0, r) ]
        | Pp_instrument.Path_instr.Path_slot off ->
            [ Pp_ir.Instr.Frameaddr (0, off); Pp_ir.Instr.Load (0, 0, 0) ]
      in
      let blocks =
        Array.map
          (fun (b : Pp_ir.Block.t) ->
            if b.Pp_ir.Block.label = p.Pp_ir.Proc.entry then
              { b with Pp_ir.Block.instrs = b.Pp_ir.Block.instrs @ leak }
            else b)
          p.Pp_ir.Proc.blocks
      in
      let procs =
        Array.to_list prog.Pp_ir.Program.procs
        |> List.mapi (fun j q ->
               if j = i then Pp_ir.Proc.with_blocks p blocks else q)
      in
      Pp_ir.Program.make ~procs
        ~globals:(Array.to_list prog.Pp_ir.Program.globals)
        ~main:prog.Pp_ir.Program.main

let prove_cmd =
  let doc =
    "Certify instrumentation by abstract interpretation: interval + \
     congruence proofs that every table access is in bounds and every \
     counter bounded, and a taint proof that instrumentation state never \
     perturbs program-visible behaviour."
  in
  let action file workload modes json optimize caller_saves backedge_reads
      budget inject =
    require_positive ~flag:"budget" budget;
    match load ~file ~workload with
    | Error msg -> exit_err msg
    | Ok prog ->
        let modes =
          match modes with
          | [] ->
              [
                Instrument.Edge_freq;
                Instrument.Flow_freq;
                Instrument.Flow_hw;
                Instrument.Context_hw;
                Instrument.Context_flow;
              ]
          | ms -> ms
        in
        let options =
          {
            Instrument.default_options with
            Instrument.optimize_placement = optimize;
            caller_saves;
            backedge_metric_reads = backedge_reads;
          }
        in
        let failures = ref 0 in
        let results =
          List.map
            (fun mode ->
              match
                Instrument.run ~options
                  ~pruner:Pp_analysis.Feasibility.pruner ~mode prog
              with
              | exception Ball_larus.Unsupported msg ->
                  incr failures;
                  (mode, Error msg)
              | instrumented, manifest ->
                  let instrumented =
                    match inject with
                    | None -> instrumented
                    | Some `Bounds -> inject_bounds instrumented manifest
                    | Some `Taint ->
                        inject_taint ~original:prog instrumented manifest
                  in
                  let diags =
                    Pp_analysis.Verifier.prove_program ~budget ~original:prog
                      ~manifest instrumented
                  in
                  if diags <> [] then incr failures;
                  (mode, Ok diags))
            modes
        in
        if json then begin
          let buf = Buffer.create 1024 in
          let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
          add "{\"program\":\"%s\",\"budget\":%d,\"modes\":["
            (json_escape
               (match (file, workload) with
               | _, Some w -> w
               | Some f, None -> f
               | None, None -> ""))
            budget;
          List.iteri
            (fun i (mode, result) ->
              if i > 0 then add ",";
              match result with
              | Error msg ->
                  add "{\"mode\":\"%s\",\"status\":\"unsupported\",\"message\":\"%s\"}"
                    (Instrument.mode_name mode)
                    (json_escape msg)
              | Ok diags ->
                  add "{\"mode\":\"%s\",\"status\":\"%s\",\"procedures\":%d,\"errors\":["
                    (Instrument.mode_name mode)
                    (if diags = [] then "ok" else "failed")
                    (Array.length prog.Pp_ir.Program.procs);
                  List.iteri
                    (fun j (d : Diag.t) ->
                      if j > 0 then add ",";
                      add "{\"severity\":\"%s\",\"proc\":\"%s\","
                        (match d.Diag.severity with
                        | Diag.Error -> "error"
                        | Diag.Warning -> "warning")
                        (json_escape d.Diag.loc.Diag.proc);
                      (match d.Diag.loc.Diag.block with
                      | Some l -> add "\"block\":%d," l
                      | None -> add "\"block\":null,");
                      (match d.Diag.loc.Diag.position with
                      | Some (Diag.Instr i) -> add "\"pos\":%d," i
                      | Some Diag.Terminator -> add "\"pos\":\"term\","
                      | None -> add "\"pos\":null,");
                      add "\"message\":\"%s\"}" (json_escape d.Diag.message))
                    diags;
                  add "]}")
            results;
          add "]}";
          print_string (Buffer.contents buf)
        end
        else
          List.iter
            (fun (mode, result) ->
              match result with
              | Error msg ->
                  Printf.printf "%-13s cannot instrument: %s\n"
                    (Instrument.mode_name mode)
                    msg
              | Ok [] ->
                  Printf.printf "%-13s certified (%d procedures)\n"
                    (Instrument.mode_name mode)
                    (Array.length prog.Pp_ir.Program.procs)
              | Ok diags ->
                  Printf.printf "%-13s NOT CERTIFIED (%d errors)\n"
                    (Instrument.mode_name mode)
                    (List.length diags);
                  List.iter
                    (fun d -> print_endline ("  " ^ Pp_ir.Diag.to_string d))
                    diags)
            results;
        (* Proof failures are structured diagnostics, like 'pp check'. *)
        if !failures > 0 then exit 2
  in
  let modes =
    Arg.(value & opt_all mode_conv []
         & info [ "mode"; "m" ] ~docv:"MODE"
             ~doc:"Mode to certify (repeatable; default: all five).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the report as a single-line JSON object (same \
                   conventions as 'pp overhead --json').")
  in
  let optimize =
    Arg.(value & flag
         & info [ "optimize-placement" ]
             ~doc:"Certify the optimized (spanning-tree chord) placement.")
  in
  let caller_saves =
    Arg.(value & flag
         & info [ "caller-saves" ]
             ~doc:"Certify the caller-saves PIC discipline (ablation A3).")
  in
  let backedge_reads =
    Arg.(value & flag
         & info [ "backedge-metric-reads" ]
             ~doc:"Certify the backedge metric reads (ablation A4).")
  in
  let inject =
    Arg.(value
         & opt (some (enum [ ("bounds", `Bounds); ("taint", `Taint) ])) None
         & info [ "inject" ] ~docv:"KIND"
             ~doc:"Seed a violation before proving (self-test): 'bounds' \
                   shrinks a counter table by one word, 'taint' leaks the \
                   path location into an original register.  The run must \
                   then exit 2.")
  in
  Cmd.v (Cmd.info "prove" ~doc)
    Term.(
      const action $ file $ workload_opt $ modes $ json $ optimize
      $ caller_saves $ backedge_reads $ budget $ inject)

(* --- pp bench --- *)

let bench_cmd =
  let doc =
    "Run the workload x instrumentation-mode matrix (the paper's \
     evaluation grid) through the process pool and print one deterministic \
     report: byte-identical at any --jobs."
  in
  let action jobs timeout budget workloads modes engine telemetry =
    let engine = parse_engine engine in
    require_positive ~flag:"jobs" jobs;
    require_positive ~flag:"budget" budget;
    require_non_negative_f ~flag:"timeout" timeout;
    (match workloads with
    | [] -> ()
    | ws ->
        List.iter
          (fun w ->
            if Registry.find w = None then
              exit_err (Printf.sprintf "unknown workload %S" w))
          ws);
    let configs =
      match modes with
      | [] -> Matrix.all_configs
      | ms -> Matrix.Base :: List.map (fun m -> Matrix.Mode m) ms
    in
    let tasks =
      Matrix.tasks
        ?workloads:(match workloads with [] -> None | ws -> Some ws)
        ~configs ()
    in
    let results, stats =
      Matrix.run_stats ~jobs
        ?timeout:(if timeout > 0.0 then Some timeout else None)
        ~budget ~engine tasks
    in
    print_string (Matrix.report results);
    (* Per-worker wall times are wall-clock dependent: stderr only, so
       stdout stays byte-identical at any --jobs. *)
    prerr_string (Pool.footer stats);
    write_telemetry telemetry;
    match Matrix.failures results with
    | [] -> ()
    | fs ->
        List.iter (fun f -> Printf.eprintf "pp: %s\n" f) fs;
        exit 1
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Concurrent worker processes (1 = in-process, serial).")
  in
  let timeout =
    Arg.(value & opt float 0.0
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Kill a shard after this long (0 = no limit; needs --jobs \
                   > 1).")
  in
  let workloads =
    Arg.(value & opt_all string []
         & info [ "workload"; "w" ] ~docv:"NAME"
             ~doc:"Restrict to this workload (repeatable; default: all).")
  in
  let modes =
    Arg.(value & opt_all mode_conv []
         & info [ "mode"; "m" ] ~docv:"MODE"
             ~doc:"Restrict to base plus this mode (repeatable; default: \
                   base and all five).")
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(const action $ jobs $ timeout $ budget $ workloads $ modes
          $ engine_opt $ telemetry_opt)

(* --- pp merge --- *)

let merge_cmd =
  let doc =
    "Sum profile shards saved by 'pp profile --profile-out' (or CCTs saved \
     by --cct-out, with --cct) into one profile."
  in
  let action out cct_mode stats telemetry inputs =
    if List.length inputs < 1 then exit_err "nothing to merge";
    if cct_mode then begin
      let load path =
        try Cct_io.of_file ~codec:Cct_io.metrics_codec path with
        | Cct_io.Parse_error (line, msg) ->
            exit_err (Printf.sprintf "%s:%d: %s" path line msg)
        | Sys_error msg -> exit_err msg
      in
      let merge_data a b =
        (* Metric arrays summed pointwise; a record seen by one shard only
           keeps (a copy of) its metrics. *)
        match (a, b) with
        | Some a, Some b ->
            if Array.length a <> Array.length b then
              exit_invalid
                (Diag.error (Diag.proc_loc "<header>")
                   "metric arity differs between shards");
            Array.init (Array.length a) (fun i -> a.(i) + b.(i))
        | Some a, None -> Array.copy a
        | None, Some b -> Array.copy b
        | None, None -> [||]
      in
      let merged =
        List.fold_left
          (fun acc path ->
            let next = load path in
            match acc with
            | None -> Some next
            | Some acc -> (
                try Some (Cct.merge ~merge_data acc next)
                with Invalid_argument msg ->
                  exit_invalid
                    (Diag.error (Diag.proc_loc "<header>") "%s: %s" path msg)))
          None inputs
      in
      let merged = Option.get merged in
      Cct_io.to_file ~codec:Cct_io.metrics_codec out merged;
      Printf.printf "merged %d CCTs (%d call records) into %s\n"
        (List.length inputs)
        (Cct.num_nodes merged - 1)
        out
    end
    else begin
      let t_start = Unix.gettimeofday () in
      let load path =
        try Profile_io.of_file path with
        | Profile_io.Parse_error (line, msg) ->
            exit_err (Printf.sprintf "%s:%d: %s" path line msg)
        | Sys_error msg -> exit_err msg
      in
      let records (s : Profile_io.saved) =
        List.fold_left
          (fun acc (_, _, paths) -> acc + 1 + List.length paths)
          0 s.Profile_io.procs
        + List.length s.Profile_io.feasible
        + List.length s.Profile_io.coverage
      in
      (* Shard-at-a-time fold (instead of merge_all over a pre-loaded
         list) so --stats can time each shard's read and merge
         separately; the result is identical by associativity. *)
      let merged =
        List.fold_left
          (fun acc path ->
            let t0 = Unix.gettimeofday () in
            let s = load path in
            let t1 = Unix.gettimeofday () in
            let next =
              match acc with
              | None -> Ok s
              | Some acc -> Profile_io.merge acc s
            in
            let t2 = Unix.gettimeofday () in
            let n = records s in
            let m = Metrics.default in
            Metrics.incr m "merge.shards" 1;
            Metrics.incr m "merge.records" n;
            Metrics.observe m "merge.us"
              (int_of_float ((t2 -. t1) *. 1e6));
            if stats then
              Printf.eprintf
                "  shard %s: %d records, read %.2fms, merge %.2fms\n" path n
                ((t1 -. t0) *. 1e3)
                ((t2 -. t1) *. 1e3);
            match next with Error d -> exit_invalid d | Ok m -> Some m)
          None inputs
      in
      let merged = Option.get merged in
      Profile_io.to_file out merged;
      let freq, m0, m1 = Profile_io.totals merged in
      Printf.printf
        "merged %d shards into %s: %d procedures, freq=%d %s=%d %s=%d\n"
        (List.length inputs) out
        (List.length merged.Profile_io.procs)
        freq
        (Event.name merged.Profile_io.pic0)
        m0
        (Event.name merged.Profile_io.pic1)
        m1;
      if stats then
        Printf.eprintf "merge: %d shards in %.2fms\n" (List.length inputs)
          ((Unix.gettimeofday () -. t_start) *. 1e3);
      write_telemetry telemetry
    end
  in
  let out =
    Arg.(required & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let cct_mode =
    Arg.(value & flag
         & info [ "cct" ]
             ~doc:"Merge calling context trees (files from --cct-out) \
                   instead of path profiles.")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Report per-shard record counts and read/merge timings \
                   on stderr (path-profile mode), and bump the merge.* \
                   metrics for --telemetry.")
  in
  let inputs =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"SHARD" ~doc:"Profile shards to merge.")
  in
  Cmd.v (Cmd.info "merge" ~doc)
    Term.(const action $ out $ cct_mode $ stats $ telemetry_opt $ inputs)

(* --- pp serve --- *)

module Serve = Pp_run.Serve

let serve_cmd =
  let doc =
    "Always-on aggregation service: a Unix-domain socket daemon that \
     merges streamed binary profile shards live, under a bounded memory \
     budget, with JSON observability snapshots (SIGUSR1, or \
     --snapshot-every)."
  in
  let action socket expect out max_records spill_dir snapshot_every
      snapshot_out send corrupt_after drive file workload budget mode duty
      sampling_seed burst engine telemetry =
    let engine = parse_engine engine in
    Option.iter (fun n -> require_positive ~flag:"max-records" n) max_records;
    Option.iter (fun k -> require_positive ~flag:"corrupt-after" k)
      corrupt_after;
    if snapshot_every < 0 then
      exit_invalid
        (Diag.error (Diag.proc_loc "<cli>")
           "--snapshot-every must be non-negative (got %d)" snapshot_every);
    let require_out () =
      match out with
      | Some path -> path
      | None ->
          exit_invalid
            (Diag.error (Diag.proc_loc "<cli>")
               "-o FILE is required to receive the merged profile")
    in
    (* SIGUSR1 asks for a snapshot; SIGTERM asks for an orderly shutdown
       (streams still open then count as torn, and the short count makes
       the verdict degraded).  The handlers only set flags; the serve
       loop polls them between select rounds. *)
    let snapshot_flag = ref false in
    let stop_flag = ref false in
    let install_signals () =
      Sys.set_signal Sys.sigusr1
        (Sys.Signal_handle (fun _ -> snapshot_flag := true));
      Sys.set_signal Sys.sigterm
        (Sys.Signal_handle (fun _ -> stop_flag := true))
    in
    let poll_snapshot () =
      let r = !snapshot_flag in
      if r then snapshot_flag := false;
      r
    in
    let emit json =
      match snapshot_out with
      | Some path ->
          let oc =
            open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
          in
          output_string oc json;
          output_char oc '\n';
          close_out oc
      | None -> prerr_endline json
    in
    let finish out_path (v : Serve.verdict) =
      Option.iter (Profile_io.to_file out_path) v.Serve.merged;
      Option.iter
        (fun d -> Printf.eprintf "pp serve: merge conflict: %s\n"
            (Diag.to_string d))
        v.Serve.conflict;
      Printf.printf
        "serve: %d/%d streams (%d accepted, %d salvaged, %d rejected), %d \
         bytes in, peak %d resident records"
        (v.Serve.accepted + v.Serve.salvaged)
        v.Serve.expected v.Serve.accepted v.Serve.salvaged v.Serve.rejected
        v.Serve.bytes v.Serve.peak_records;
      if v.Serve.spilled > 0 then
        Printf.printf ", %d spill files" v.Serve.spilled;
      if v.Serve.evicted_records > 0 then
        Printf.printf ", %d records evicted" v.Serve.evicted_records;
      print_newline ();
      (match v.Serve.merged with
      | Some m ->
          let freq, _, _ = Profile_io.totals m in
          Printf.printf "wrote merged profile to %s: %d procedures, freq=%d\n"
            out_path
            (List.length m.Profile_io.procs)
            freq
      | None -> Printf.eprintf "pp serve: no stream contributed records\n");
      write_telemetry telemetry;
      if Serve.degraded v then exit exit_degraded
    in
    match (send, drive) with
    | Some _, Some _ ->
        exit_invalid
          (Diag.error (Diag.proc_loc "<cli>")
             "--send and --drive are mutually exclusive")
    | Some shard, None -> (
        (* Client mode: stream one saved shard into a running daemon. *)
        match Serve.send_file ?corrupt_after ~socket shard with
        | Ok () -> ()
        | Error msg -> exit_err msg)
    | None, Some k ->
        (* Drive mode: the self-contained e2e — fork K client runs and
           aggregate them concurrently in this process. *)
        require_positive ~flag:"drive" k;
        require_positive ~flag:"budget" budget;
        let out_path = require_out () in
        (match mode with
        | Instrument.Flow_freq | Instrument.Flow_hw | Instrument.Context_flow
          ->
            ()
        | Instrument.Edge_freq | Instrument.Context_hw ->
            exit_invalid
              (Diag.error (Diag.proc_loc "<cli>")
                 "--drive needs a path-profiling mode (flow-freq, flow-hw \
                  or context-flow)"));
        let prog =
          match load ~file ~workload with
          | Error msg -> exit_err msg
          | Ok prog -> prog
        in
        let client i () =
          (* Each client gets its own sampling seed, so the drive run
             exercises genuinely different gating schedules. *)
          let sampling =
            make_sampling ~mode ~burst ~seed:(sampling_seed + i) duty
          in
          let session =
            Driver.prepare ~pruner:Pp_analysis.Feasibility.pruner
              ~max_instructions:budget ~engine ?sampling ~mode prog
          in
          ignore (Driver.run session);
          Profile_io.of_profile
            ~feasible:(feasible_of_session session)
            ~coverage:(Driver.coverage session)
            ~program_hash:(Profile_io.program_hash prog)
            ~mode:(Instrument.mode_name mode)
            (Driver.path_profile session)
        in
        install_signals ();
        let verdict, failures =
          Serve.drive ?max_records ?spill_dir ~snapshot_every ~snapshot:emit
            ~snapshot_requested:poll_snapshot
            ~stop:(fun () -> !stop_flag)
            ~socket
            (List.init k client)
            ()
        in
        if failures > 0 then
          Printf.eprintf "pp serve: %d client process(es) failed\n" failures;
        finish out_path verdict
    | None, None ->
        (* Aggregator mode. *)
        let expect =
          match expect with
          | Some n ->
              require_positive ~flag:"expect" n;
              n
          | None ->
              exit_invalid
                (Diag.error (Diag.proc_loc "<cli>")
                   "--expect N is required (how many client streams to \
                    wait for), or use --send / --drive")
        in
        let out_path = require_out () in
        install_signals ();
        let verdict =
          Serve.serve ?max_records ?spill_dir ~snapshot_every ~snapshot:emit
            ~snapshot_requested:poll_snapshot
            ~stop:(fun () -> !stop_flag)
            ~socket ~expect ()
        in
        finish out_path verdict
  in
  let socket =
    Arg.(required & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Unix-domain socket the daemon listens on (and clients \
                   connect to).")
  in
  let expect =
    Arg.(value & opt (some int) None
         & info [ "expect" ] ~docv:"N"
             ~doc:"Aggregator mode: finish after N client streams have \
                   resolved.")
  in
  let out_opt =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Write the merged profile shard to FILE at shutdown.")
  in
  let max_records =
    Arg.(value & opt (some int) None
         & info [ "max-records" ] ~docv:"N"
             ~doc:"Bound the resident merge table to N path records; \
                   over budget, spill to --spill-dir or evict \
                   coldest-first (degraded, exit 3).")
  in
  let spill_dir =
    Arg.(value & opt (some string) None
         & info [ "spill-dir" ] ~docv:"DIR"
             ~doc:"Directory for over-budget spill shards, consolidated \
                   at shutdown (with --max-records).")
  in
  let snapshot_every =
    Arg.(value & opt int 0
         & info [ "snapshot-every" ] ~docv:"K"
             ~doc:"Emit a JSON observability snapshot every K resolved \
                   streams (0 = only at shutdown and on SIGUSR1).")
  in
  let snapshot_out =
    Arg.(value & opt (some string) None
         & info [ "snapshot-out" ] ~docv:"FILE"
             ~doc:"Append JSON snapshots to FILE instead of stderr.")
  in
  let send =
    Arg.(value & opt (some string) None
         & info [ "send" ] ~docv:"SHARD"
             ~doc:"Client mode: stream the given profile shard (a \
                   --profile-out file) into the socket and exit.")
  in
  let corrupt_after =
    Arg.(value & opt (some int) None
         & info [ "corrupt-after" ] ~docv:"K"
             ~doc:"With --send: transmit only the first K frames intact, \
                   then garbage — fault injection for the daemon's \
                   salvage path.")
  in
  let drive =
    Arg.(value & opt (some int) None
         & info [ "drive" ] ~docv:"K"
             ~doc:"Self-contained end-to-end: fork K client profiling \
                   runs of FILE or --workload and aggregate their streams \
                   live.")
  in
  let mode =
    Arg.(value & opt mode_conv Instrument.Flow_hw
         & info [ "mode"; "m" ] ~docv:"MODE"
             ~doc:"Instrumentation mode for --drive clients (flow-freq, \
                   flow-hw or context-flow).")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const action $ socket $ expect $ out_opt $ max_records $ spill_dir
      $ snapshot_every $ snapshot_out $ send $ corrupt_after $ drive $ file
      $ workload_opt $ budget $ mode $ duty_opt $ sampling_seed_opt
      $ burst_opt $ engine_opt $ telemetry_opt)

(* --- pp trace --- *)

let trace_cmd =
  let doc =
    "Run a profiling session with self-telemetry enabled and write a \
     Chrome trace_event timeline (about://tracing / Perfetto) of the \
     profiler's own phases: instrument, vm.setup, execute (with periodic \
     counter samples), extract.profile."
  in
  let action file workload budget mode interval out text engine =
    let engine = parse_engine engine in
    require_positive ~flag:"interval" interval;
    require_positive ~flag:"budget" budget;
    match load ~file ~workload with
    | Error msg -> exit_err msg
    | Ok prog ->
        let tr = Trace.create () in
        let out_path =
          match out with
          | Some o -> o
          | None -> (
              match (file, workload) with
              | Some f, _ -> Filename.remove_extension f ^ ".trace.json"
              | None, Some w -> w ^ ".trace.json"
              | None, None -> "pp.trace.json")
        in
        let finish ~failed =
          write_file out_path (Trace.to_chrome_json tr);
          if text then print_string (Trace.to_text tr);
          Printf.printf "wrote %d events (%d dropped) to %s\n"
            (List.length (Trace.events tr))
            (Trace.dropped tr) out_path;
          if failed then exit 1
        in
        let session =
          Driver.prepare ~max_instructions:budget ~telemetry:tr
            ~telemetry_interval:interval ~engine ~mode prog
        in
        (match Driver.run session with
        | exception Interp.Trap msg ->
            Trace.instant tr "trap";
            Printf.eprintf "pp: trap: %s\n" msg;
            finish ~failed:true
        | _r -> (
            match mode with
            | Instrument.Flow_freq | Instrument.Flow_hw
            | Instrument.Context_flow ->
                ignore (Driver.path_profile session);
                finish ~failed:false
            | Instrument.Edge_freq | Instrument.Context_hw ->
                finish ~failed:false))
  in
  let mode =
    Arg.(value & opt mode_conv Instrument.Flow_hw
         & info [ "mode"; "m" ] ~docv:"MODE"
             ~doc:"edge-freq, flow-freq, flow-hw, context-hw or \
                   context-flow.")
  in
  let interval =
    Arg.(value & opt int 100_000
         & info [ "interval" ] ~docv:"CYCLES"
             ~doc:"Simulated cycles between VM counter samples.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Output file (default: <input>.trace.json).")
  in
  let text =
    Arg.(value & flag
         & info [ "text" ]
             ~doc:"Also print the compact indented text timeline to \
                   stdout.")
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const action $ file $ workload_opt $ budget $ mode $ interval
          $ out $ text $ engine_opt)

(* --- pp overhead --- *)

let overhead_mode_conv =
  Arg.enum (("all", `All) :: List.map (fun (n, m) -> (n, `Mode m)) mode_assoc)

let overhead_cmd =
  let doc =
    "Measure instrumentation overhead and perturbation against the \
     uninstrumented baseline (the paper's Tables 1 and 2), attributing \
     the cycle/instruction delta to probe categories using the exact \
     executed-probe counts decoded from the profile.  Exits 2 if the \
     per-category attributions do not sum exactly to the measured delta."
  in
  let action file workload budget modes jobs json_flag out engine =
    let engine = parse_engine engine in
    require_positive ~flag:"jobs" jobs;
    require_positive ~flag:"budget" budget;
    match load ~file ~workload with
    | Error msg -> exit_err msg
    | Ok prog -> (
        let program =
          match (file, workload) with
          | Some f, _ -> f
          | None, Some w -> w
          | None, None -> "<none>"
        in
        let modes =
          if modes = [] || List.mem `All modes then Overhead.all_modes
          else
            List.filter_map
              (function `Mode m -> Some m | `All -> None)
              modes
        in
        match Overhead.compute ~budget ~engine ~jobs ~modes ~program prog with
        | exception Interp.Trap msg -> exit_err ("trap: " ^ msg)
        | report -> (
            if json_flag then print_string (Overhead.to_json report)
            else print_string (Overhead.render report);
            Option.iter
              (fun path -> write_file path (Overhead.to_json report))
              out;
            match Overhead.check report with
            | Ok () -> ()
            | Error msg ->
                exit_invalid
                  (Diag.error (Diag.proc_loc "<overhead>")
                     "attribution check failed: %s" msg)))
  in
  let modes =
    Arg.(value & opt_all overhead_mode_conv []
         & info [ "mode"; "m" ] ~docv:"MODE"
             ~doc:"Mode to measure: edge-freq, flow-freq, flow-hw, \
                   context-hw, context-flow or all (repeatable; default: \
                   all).")
  in
  let jobs =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Measure modes concurrently (the report is \
                   byte-identical at any N).")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Print the report as JSON instead of text.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Also write the JSON report to FILE (e.g. \
                   OVERHEAD.json).")
  in
  Cmd.v (Cmd.info "overhead" ~doc)
    Term.(const action $ file $ workload_opt $ budget $ modes $ jobs
          $ json_flag $ out $ engine_opt)

(* --- pp predict --- *)

let predict_mode_conv =
  Arg.enum (("all", `All) :: List.map (fun (n, m) -> (n, `Mode m)) mode_assoc)

let predict_cmd =
  let doc =
    "Statically predict per-path hardware metrics (cycles, D- and \
     I-cache misses, stall cycles) by abstract interpretation of the \
     machine's caches and pipeline, then certify every predicted \
     interval against the counters measured along the same Ball-Larus \
     paths.  Every measured path gets a verdict: CONFIRMED (measurement \
     inside a tight interval), VACUOUS (inside, but the interval is \
     unbounded or loose) or REFUTED (outside -- a soundness bug, or a \
     deliberately injected model/machine mismatch).  Exits 2 when \
     anything is REFUTED or the measurement oracle reports an anomaly."
  in
  let action file workload budget modes engine inject json_flag table slack =
    let engine = parse_engine engine in
    require_positive ~flag:"budget" budget;
    require_non_negative_f ~flag:"slack" slack;
    let inject =
      Option.map
        (fun s ->
          match Predict_run.inject_of_string s with
          | Some i -> i
          | None ->
              exit_invalid
                (Diag.error (Diag.proc_loc "<cli>")
                   "--inject must be one of: %s (got %S)"
                   (String.concat ", "
                      (List.map Predict_run.inject_name Predict_run.injects))
                   s))
        inject
    in
    match load ~file ~workload with
    | Error msg -> exit_err msg
    | Ok prog ->
        let modes =
          if modes = [] || List.mem `All modes then
            List.map snd mode_assoc
          else
            List.filter_map (function `Mode m -> Some m | `All -> None) modes
        in
        let outcomes =
          List.map
            (fun mode ->
              match
                Predict_run.run ~budget ~engine ?inject ~vacuous_slack:slack
                  ~mode prog
              with
              | o -> o
              | exception Interp.Trap msg -> exit_err ("trap: " ^ msg))
            modes
        in
        if json_flag then
          Predict_run.render_json Format.std_formatter outcomes
        else begin
          List.iter
            (fun (o : Predict_run.outcome) ->
              if table then Predict_run.render_table Format.std_formatter o
              else
                Printf.printf
                  "%-13s %-9s paths %4d  windows %7d  confirmed %4d  \
                   vacuous %4d  refuted %4d  mean-slack %8.2f%s\n"
                  (Instrument.mode_name o.mode)
                  (Engine.kind_name o.engine)
                  (List.length o.rows) o.windows o.confirmed o.vacuous
                  o.refuted o.mean_slack
                  (if o.trapped then "  (trapped)" else ""))
            outcomes
        end;
        List.iter
          (fun o ->
            List.iter
              (fun e -> Printf.eprintf "pp predict: %s\n" e)
              (Predict_run.errors o))
          outcomes;
        exit (Predict_run.exit_code outcomes)
  in
  let modes =
    Arg.(value & opt_all predict_mode_conv []
         & info [ "mode"; "m" ] ~docv:"MODE"
             ~doc:"Mode to certify: edge-freq, flow-freq, flow-hw, \
                   context-hw, context-flow or all (repeatable; default: \
                   all).")
  in
  let inject =
    Arg.(value & opt (some string) None
         & info [ "inject" ] ~docv:"FAULT"
             ~doc:"Execute on a deliberately mutated geometry while the \
                   analysis models the configured one: 'dcache' (halved \
                   D-cache) or 'icache' (halved I-cache lines).  The run \
                   must end REFUTED (exit 2) -- this is how CI proves the \
                   certifier can catch a wrong model.")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Print all outcomes as one JSON document.")
  in
  let table =
    Arg.(value & flag
         & info [ "table" ]
             ~doc:"Print the full predicted-vs-measured per-path table \
                   for each mode instead of one summary line.")
  in
  let slack =
    Arg.(value & opt float 8.0
         & info [ "slack" ] ~docv:"S"
             ~doc:"Vacuousness threshold: a bounded interval wider than S \
                   per measured window degrades to VACUOUS.")
  in
  Cmd.v (Cmd.info "predict" ~doc)
    Term.(const action $ file $ workload_opt $ budget $ modes $ engine_opt
          $ inject $ json_flag $ table $ slack)

(* --- pp chaos --- *)

let kind_conv =
  Arg.enum
    [
      ("crash-heavy", Faults.Crash_heavy);
      ("corruption-heavy", Faults.Corruption_heavy);
      ("mixed", Faults.Mixed);
    ]

let chaos_cmd =
  let doc =
    "Run a seeded fault-injection experiment over a sharded profiling run \
     — workers crash, stall, die mid-write, or their shards are corrupted \
     on disk — and verify that the merged profile recovered from disk is \
     byte-identical to a fault-free run.  Exits 3 if recovery was only \
     partial (degraded coverage), 1 if the recovered profile differs."
  in
  let action file workload budget mode shards jobs retries timeout seed kind
      dir engine telemetry =
    let engine = parse_engine engine in
    require_positive ~flag:"shards" shards;
    require_positive ~flag:"jobs" jobs;
    require_positive ~flag:"retries" retries;
    require_positive ~flag:"budget" budget;
    require_non_negative_f ~flag:"timeout" timeout;
    match load ~file ~workload with
    | Error msg -> exit_err msg
    | Ok prog -> (
        (* Stalls must outlive the timeout or they are not faults. *)
        let plan =
          Faults.seeded ~stall:((2.0 *. timeout) +. 1.0) kind ~seed
            ~tasks:shards
        in
        Printf.printf "plan: %s\n" (Faults.summary plan);
        List.iter
          (fun line -> Printf.printf "  %s\n" line)
          (Faults.describe_plan plan);
        match
          Chaos.run ~dir ~mode ~budget ~engine ~jobs ~retries ~timeout ~plan
            ~shards prog
        with
        | Error d -> exit_err (Diag.to_string d)
        | Ok r ->
            (* Wall-clock pool summary to stderr; the verdict below is
               deterministic for a given seed, so stdout stays golden. *)
            prerr_string (Pool.footer r.Chaos.stats);
            print_newline ();
            print_endline (Chaos.coverage r);
            List.iteri
              (fun k st ->
                match st with
                | Chaos.Recovered -> ()
                | Chaos.Salvaged rep ->
                    Printf.printf
                      "shard %d: salvaged %d of %d records (damage at line \
                       %d)\n"
                      k rep.Profile_io.recovered rep.Profile_io.total
                      rep.Profile_io.first_bad_line
                | Chaos.Lost reason ->
                    Printf.printf "shard %d: lost (%s)\n" k reason)
              r.Chaos.states;
            (match r.Chaos.merged with
            | Some m ->
                let freq, m0, m1 = Profile_io.totals m in
                Printf.printf
                  "recovered profile: %d procedures, freq=%d %s=%d %s=%d\n"
                  (List.length m.Profile_io.procs)
                  freq
                  (Event.name m.Profile_io.pic0)
                  m0
                  (Event.name m.Profile_io.pic1)
                  m1
            | None -> print_endline "no profile recovered");
            print_endline
              (if r.Chaos.identical then
                 "recovered profile is byte-identical to the fault-free \
                  reference"
               else "recovered profile DIFFERS from the fault-free reference");
            write_telemetry telemetry;
            if Chaos.degraded r then exit exit_degraded
            else if not r.Chaos.identical then
              exit_err "recovered profile differs from the fault-free \
                        reference")
  in
  let mode =
    Arg.(value & opt mode_conv Instrument.Flow_hw
         & info [ "mode"; "m" ] ~docv:"MODE"
             ~doc:"Path-profiling mode for the shards (flow-freq, flow-hw \
                   or context-flow).")
  in
  let shards =
    Arg.(value & opt int 4
         & info [ "shards" ] ~docv:"K" ~doc:"Shards to profile and merge.")
  in
  let jobs =
    Arg.(value & opt int 2
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Concurrent workers (keep > 1: stall faults are only \
                   killable in forked workers).")
  in
  let retries =
    Arg.(value & opt int 3
         & info [ "retries" ] ~docv:"N"
             ~doc:"Attempt budget per shard.  The plan only faults early \
                   attempts, so 2 or more must converge to full coverage; \
                   1 demonstrates degraded recovery.")
  in
  let timeout =
    Arg.(value & opt float 10.0
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Kill a shard after this long; injected stalls sleep \
                   past it.")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N"
             ~doc:"Fault-plan seed; the whole experiment is a deterministic \
                   function of it.")
  in
  let kind =
    Arg.(value & opt kind_conv Faults.Mixed
         & info [ "kind" ] ~docv:"KIND"
             ~doc:"Fault mix: crash-heavy, corruption-heavy or mixed.")
  in
  let dir =
    Arg.(value & opt string "chaos-shards"
         & info [ "dir" ] ~docv:"DIR"
             ~doc:"Directory for the shard files (created if needed; \
                   existing shard files are removed first).")
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const action $ file $ workload_opt $ budget $ mode $ shards $ jobs
      $ retries $ timeout $ seed $ kind $ dir $ engine_opt $ telemetry_opt)

(* --- pp optimize --- *)

let source_conv = Arg.enum [ ("cct", `Cct); ("flat", `Flat) ]

let optimize_cmd =
  let doc =
    "Profile-guided optimization: profile the program (per-path hardware \
     metrics plus the calling context tree), then apply superblock \
     layout, hot/cold splitting, context-driven inlining, straightening \
     and cache-conscious global data placement; re-measure and report.  \
     --source flat is the ablation baseline: the same pipeline driven by \
     an edge profile only (gprof-style per-callee totals, greedy block \
     order)."
  in
  let action file workload budget source engine out_file json_flag certify
      no_layout no_split no_straighten no_inline no_data inline_budget =
    let engine = parse_engine engine in
    require_positive ~flag:"budget" budget;
    require_positive ~flag:"inline-budget" inline_budget;
    match load ~file ~workload with
    | Error msg -> exit_err msg
    | Ok prog ->
        let profile_session mode =
          let session =
            Driver.prepare ~pruner:Pp_analysis.Feasibility.pruner
              ~max_instructions:budget ~engine ~mode prog
          in
          (match Driver.run session with
          | exception Interp.Trap msg -> exit_err ("trap: " ^ msg)
          | _ -> ());
          session
        in
        let summary =
          match source with
          | `Cct ->
              let flow = profile_session Instrument.Flow_hw in
              let ctx = profile_session Instrument.Context_flow in
              Pp_opt.Summary.of_paths ~cct:(Driver.cct ctx) prog
                (Driver.path_profile flow)
          | `Flat ->
              let edge = profile_session Instrument.Edge_freq in
              let counts =
                List.map
                  (fun (proc, plan, edges) ->
                    (proc, Pp_opt.Summary.block_counts plan edges))
                  (Driver.edge_profile edge)
              in
              Pp_opt.Summary.of_edges prog counts
        in
        let knobs =
          {
            Pp_opt.Pgo.default_knobs with
            Pp_opt.Pgo.layout = not no_layout;
            split_cold = not no_split;
            straighten = not no_straighten;
            inline = not no_inline;
            data = not no_data;
            inline_budget_slots = inline_budget;
          }
        in
        let measure p =
          match Driver.run_baseline ~max_instructions:budget ~engine p with
          | r -> r
          | exception Interp.Trap msg -> exit_err ("trap: " ^ msg)
        in
        let base = measure prog in
        (* The empirical guard for data placement: a candidate placement
           is kept only if the program's behaviour is unchanged (see
           Pgo.optimize). *)
        let validate p =
          match Driver.run_baseline ~max_instructions:budget ~engine p with
          | r -> r.Interp.output = base.Interp.output
          | exception Interp.Trap _ -> false
        in
        let optimized, report =
          Pp_opt.Pgo.optimize ~knobs ~validate ~summary prog
        in
        Option.iter
          (fun path ->
            write_file path (Pp_ir.Ir_text.to_string optimized);
            Printf.eprintf "pp: wrote optimized IR to %s\n" path)
          out_file;
        let opt = measure optimized in
        if opt.Interp.output <> base.Interp.output then
          exit_err "optimized program produced different output";
        let counter e (r : Interp.result) =
          Option.value ~default:0 (List.assoc_opt e r.Interp.counters)
        in
        let dm_b = counter Event.Dcache_misses base
        and dm_o = counter Event.Dcache_misses opt
        and im_b = counter Event.Icache_misses base
        and im_o = counter Event.Icache_misses opt in
        if json_flag then
          Printf.printf
            "{\"source\":\"%s\",\"cycles_before\":%d,\"cycles_after\":%d,\
             \"dcache_misses_before\":%d,\"dcache_misses_after\":%d,\
             \"icache_misses_before\":%d,\"icache_misses_after\":%d,\
             \"inlined_sites\":%d,\"merged_blocks\":%d,\
             \"reordered_procs\":%d,\"moved_globals\":%d,\
             \"data_dropped\":%b,\"size_before_slots\":%d,\
             \"size_after_slots\":%d}\n"
            (match source with `Cct -> "cct" | `Flat -> "flat")
            base.Interp.cycles opt.Interp.cycles dm_b dm_o im_b im_o
            (List.length report.Pp_opt.Pgo.inlined)
            report.Pp_opt.Pgo.merged_blocks report.Pp_opt.Pgo.reordered_procs
            report.Pp_opt.Pgo.moved_globals report.Pp_opt.Pgo.data_dropped
            report.Pp_opt.Pgo.size_before_slots
            report.Pp_opt.Pgo.size_after_slots
        else begin
          Format.printf "%a@." Pp_opt.Pgo.pp_report report;
          Printf.printf "cycles          %12d -> %-12d (%+.2f%%)\n"
            base.Interp.cycles opt.Interp.cycles
            (100.0
            *. float_of_int (opt.Interp.cycles - base.Interp.cycles)
            /. float_of_int (max 1 base.Interp.cycles));
          Printf.printf "D-cache misses  %12d -> %-12d\n" dm_b dm_o;
          Printf.printf "I-cache misses  %12d -> %-12d\n" im_b im_o
        end;
        if certify then begin
          let failures = ref 0 in
          List.iter
            (fun (_, mode) ->
              match Instrument.run ~mode optimized with
              | exception Ball_larus.Unsupported msg ->
                  incr failures;
                  Printf.eprintf "pp: certify %s: cannot instrument: %s\n"
                    (Instrument.mode_name mode)
                    msg
              | instrumented, manifest ->
                  let diags =
                    Pp_analysis.Verifier.verify_program ~original:optimized
                      ~manifest instrumented
                    @ Pp_analysis.Verifier.prove_program ~budget
                        ~original:optimized ~manifest instrumented
                  in
                  if diags <> [] then begin
                    incr failures;
                    Printf.eprintf "pp: certify %s: %d errors\n"
                      (Instrument.mode_name mode)
                      (List.length diags);
                    List.iter
                      (fun d ->
                        Printf.eprintf "  %s\n" (Pp_ir.Diag.to_string d))
                      diags
                  end)
            mode_assoc;
          let outcomes =
            List.map
              (fun (_, mode) ->
                match Predict_run.run ~budget ~engine ~mode optimized with
                | o -> o
                | exception Interp.Trap msg -> exit_err ("trap: " ^ msg))
              mode_assoc
          in
          List.iter
            (fun o ->
              List.iter
                (fun e -> Printf.eprintf "pp: certify predict: %s\n" e)
                (Predict_run.errors o))
            outcomes;
          let predict_exit = Predict_run.exit_code outcomes in
          if !failures > 0 || predict_exit <> 0 then exit 2;
          Printf.printf
            "certified: check, prove and predict pass on the optimized \
             program (all 5 modes)\n"
        end
  in
  let source =
    Arg.(value & opt source_conv `Cct
         & info [ "source" ] ~docv:"SOURCE"
             ~doc:"Profile information driving the optimizer: 'cct' \
                   (context-sensitive: per-path hardware metrics + calling \
                   context tree) or 'flat' (edge profile only — the \
                   ablation baseline).")
  in
  let out_file =
    Arg.(value & opt (some string) None
         & info [ "output"; "o" ] ~docv:"FILE"
             ~doc:"Write the optimized program as textual IR (.ppir), \
                   reloadable by every other subcommand.")
  in
  let json_flag =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Print the report as one JSON object.")
  in
  let certify =
    Arg.(value & flag
         & info [ "certify" ]
             ~doc:"After optimizing, re-certify the transformed program: \
                   instrument it in all five modes and run the full 'pp \
                   check' verifier, the 'pp prove' abstract-interpretation \
                   certifier and the 'pp predict' interval re-validation \
                   on it.  Exits 2 on any failure.")
  in
  let no_layout =
    Arg.(value & flag
         & info [ "no-layout" ] ~doc:"Disable superblock block reordering.")
  in
  let no_split =
    Arg.(value & flag
         & info [ "no-split" ]
             ~doc:"Disable hot/cold splitting (cold blocks stay in place).")
  in
  let no_straighten =
    Arg.(value & flag
         & info [ "no-straighten" ]
             ~doc:"Disable single-predecessor jump-chain merging.")
  in
  let no_inline =
    Arg.(value & flag
         & info [ "no-inline" ] ~doc:"Disable hot call-edge inlining.")
  in
  let no_data =
    Arg.(value & flag
         & info [ "no-data" ] ~doc:"Disable global data placement.")
  in
  let inline_budget =
    Arg.(value & opt int Pp_opt.Pgo.default_knobs.Pp_opt.Pgo.inline_budget_slots
         & info [ "inline-budget" ] ~docv:"SLOTS"
             ~doc:"Total instruction slots inlining may copy, program-wide.")
  in
  Cmd.v (Cmd.info "optimize" ~doc)
    Term.(
      const action $ file $ workload_opt $ budget $ source $ engine_opt
      $ out_file $ json_flag $ certify $ no_layout $ no_split $ no_straighten
      $ no_inline $ no_data $ inline_budget)

(* --- pp workloads --- *)

let workloads_cmd =
  let doc = "List the built-in SPEC95-analogue workloads." in
  let action () =
    List.iter
      (fun (w : Pp_workloads.Workload.t) ->
        Printf.printf "%-15s %-13s %s\n" w.Pp_workloads.Workload.name
          w.Pp_workloads.Workload.spec_name
          w.Pp_workloads.Workload.description)
      Registry.all
  in
  Cmd.v (Cmd.info "workloads" ~doc) Term.(const action $ const ())

let () =
  let doc =
    "flow and context sensitive profiling with (simulated) hardware \
     performance counters"
  in
  let info = Cmd.info "pp" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
                    [ run_cmd; profile_cmd; paths_cmd; cost_cmd; disasm_cmd;
                      check_cmd; prove_cmd; optimize_cmd; bench_cmd;
                      merge_cmd; serve_cmd; trace_cmd; overhead_cmd;
                      predict_cmd; chaos_cmd; workloads_cmd ]))
