(* Memoized measurement of every workload under every configuration.  A
   session's VM is dropped as soon as the artifacts the tables need have
   been extracted, so the harness's memory stays flat. *)

module W = Pp_workloads.Workload
module Registry = Pp_workloads.Registry
module Interp = Pp_vm.Interp
module Runtime = Pp_vm.Runtime
module Event = Pp_machine.Event
module Driver = Pp_instrument.Driver
module Instrument = Pp_instrument.Instrument
module Profile = Pp_core.Profile
module Cct = Pp_core.Cct
module Cct_stats = Pp_core.Cct_stats

let budget = 400_000_000

type config = Base | Flow_hw | Context_hw | Context_flow

let config_name = function
  | Base -> "base"
  | Flow_hw -> "flow+hw"
  | Context_hw -> "context+hw"
  | Context_flow -> "context+flow"

type cct_summary = {
  stats : Cct_stats.t;
  one_path_sites : int;
  prof_bytes : int;
}

type measurement = {
  counters : (Event.t * int) list;
  cycles : int;
  instructions : int;
  profile : Profile.t option;  (* Flow_hw runs *)
  cct_summary : cct_summary option;  (* Context_flow runs *)
}

let cache : (string * config, measurement) Hashtbl.t = Hashtbl.create 128

let progress = ref true

let note fmt =
  Printf.ksprintf
    (fun s ->
      if !progress then begin
        Printf.eprintf "%s\n" s;
        flush stderr
      end)
    fmt

let compile_cache : (string, Pp_ir.Program.t) Hashtbl.t = Hashtbl.create 32

let program_of (w : W.t) =
  match Hashtbl.find_opt compile_cache w.W.name with
  | Some p -> p
  | None ->
      let p = W.compile w in
      Hashtbl.replace compile_cache w.W.name p;
      p

let measure_base (w : W.t) =
  let r = Driver.run_baseline ~max_instructions:budget (program_of w) in
  {
    counters = r.Interp.counters;
    cycles = r.Interp.cycles;
    instructions = r.Interp.instructions;
    profile = None;
    cct_summary = None;
  }

let measure_mode (w : W.t) config =
  let mode, want_profile, want_cct =
    match config with
    | Flow_hw -> (Instrument.Flow_hw, true, false)
    | Context_hw -> (Instrument.Context_hw, false, false)
    | Context_flow -> (Instrument.Context_flow, false, true)
    | Base -> assert false
  in
  let session =
    Driver.prepare ~max_instructions:budget
      ~pics:(Event.Dcache_misses, Event.Instructions)
      ~mode (program_of w)
  in
  let r = Driver.run session in
  let profile = if want_profile then Some (Driver.path_profile session)
    else None
  in
  let cct_summary =
    if want_cct then begin
      let cct = Driver.cct session in
      let stats = Cct_stats.compute ~metrics_per_node:2 cct in
      let site_paths = Driver.site_paths session in
      let one_path_sites =
        Cct_stats.call_sites_one_path ~site_paths cct
      in
      let prof_bytes =
        Runtime.prof_bytes_allocated (Interp.runtime session.Driver.vm)
      in
      Some { stats; one_path_sites; prof_bytes }
    end
    else None
  in
  {
    counters = r.Interp.counters;
    cycles = r.Interp.cycles;
    instructions = r.Interp.instructions;
    profile;
    cct_summary;
  }

let measure (w : W.t) config =
  match config with
  | Base -> measure_base w
  | Flow_hw | Context_hw | Context_flow -> measure_mode w config

let get (w : W.t) config =
  match Hashtbl.find_opt cache (w.W.name, config) with
  | Some m -> m
  | None ->
      note "  running %s / %s ..." w.W.name (config_name config);
      let m = measure w config in
      Hashtbl.replace cache (w.W.name, config) m;
      m

(* Fill the cache through the process pool: [jobs] measurements at a time,
   each in its own forked worker.  A shard that dies is only noted — its
   cell stays empty, and a table that needs it will re-measure serially
   (and hit the same failure in-process, where it is debuggable). *)
let prefetch ~jobs pairs =
  let missing =
    List.filter
      (fun ((w : W.t), config) ->
        not (Hashtbl.mem cache (w.W.name, config)))
      pairs
  in
  if jobs > 1 && missing <> [] then begin
    note "prefetching %d measurements with %d workers ..."
      (List.length missing) jobs;
    let outcomes =
      Pp_run.Pool.map ~jobs (fun (w, config) -> measure w config) missing
    in
    List.iter2
      (fun ((w : W.t), config) outcome ->
        match outcome with
        | Pp_run.Pool.Done m -> Hashtbl.replace cache (w.W.name, config) m
        | o ->
            note "  %s / %s %s" w.W.name (config_name config)
              (Pp_run.Pool.describe o))
      missing outcomes
  end

(* The full Tables-1..5 grid: every workload under every configuration. *)
let full_grid () =
  List.concat_map
    (fun w ->
      List.map
        (fun c -> (w, c))
        [ Base; Flow_hw; Context_hw; Context_flow ])
    Registry.all

let counter m e = List.assoc e m.counters

let cint = Registry.cint
let cfp = Registry.cfp
let all = Registry.all
