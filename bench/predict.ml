(* pp predict certification sweep: every workload under every
   instrumentation mode, measured counters checked against the static
   per-path bounds.  Renders a per-workload verdict table and writes
   BENCH_predict.json for the benchmark archive.  Any refuted row or
   oracle anomaly is a soundness bug, so the target fails loudly. *)

module W = Pp_workloads.Workload
module Registry = Pp_workloads.Registry
module Instrument = Pp_instrument.Instrument
module Predict_run = Pp_run.Predict_run

let budget = 300_000

let modes =
  Instrument.[ Edge_freq; Flow_freq; Flow_hw; Context_hw; Context_flow ]

let run () =
  print_endline
    "== predict: static per-path bounds vs measured counters ==";
  Printf.printf "%-15s %-13s %6s %8s %6s %6s %6s %10s\n" "workload" "mode"
    "paths" "windows" "conf" "vac" "ref" "mean-slack";
  let json = Buffer.create 4096 in
  Buffer.add_string json "[";
  let first = ref true in
  let unsound = ref 0 in
  List.iter
    (fun (w : W.t) ->
      let prog = W.compile w in
      List.iter
        (fun mode ->
          let t0 = Sys.time () in
          let o = Predict_run.run ~budget ~mode prog in
          let seconds = Sys.time () -. t0 in
          if o.refuted > 0 || o.anomalies <> [] then begin
            incr unsound;
            List.iter
              (fun e -> Printf.printf "  !! %s\n" e)
              (Predict_run.errors o)
          end;
          Printf.printf "%-15s %-13s %6d %8d %6d %6d %6d %10.2f\n" w.W.name
            (Instrument.mode_name o.mode)
            (List.length o.rows) o.windows o.confirmed o.vacuous o.refuted
            o.mean_slack;
          if not !first then Buffer.add_string json ",";
          first := false;
          Buffer.add_string json
            (Printf.sprintf
               "\n\
               \  {\"workload\": %S, \"mode\": %S, \"paths\": %d, \
                \"windows\": %d, \"confirmed\": %d, \"vacuous\": %d, \
                \"refuted\": %d, \"anomalies\": %d, \"mean_slack\": %.4f, \
                \"trapped\": %b, \"seconds\": %.3f}"
               w.W.name
               (Instrument.mode_name o.mode)
               (List.length o.rows) o.windows o.confirmed o.vacuous o.refuted
               (List.length o.anomalies) o.mean_slack o.trapped seconds))
        modes)
    Registry.all;
  Buffer.add_string json "\n]\n";
  let oc = open_out "BENCH_predict.json" in
  output_string oc (Buffer.contents json);
  close_out oc;
  Printf.printf "wrote BENCH_predict.json\n";
  if !unsound > 0 then failwith (Printf.sprintf "%d unsound cells" !unsound)
