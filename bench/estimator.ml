(* Estimator accuracy: the static probe-execution estimates (`pp cost`)
   against the exact measured probe counts a dynamic run decodes, across
   the SPEC-like workloads.  The per-procedure error column is the
   headline number: it shows how far the Wu–Larus-style heuristics are
   from reality on loop-heavy versus call-heavy programs. *)

module Registry = Pp_workloads.Registry
module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver
module Profile_io = Pp_core.Profile_io
module Feasibility = Pp_analysis.Feasibility
module Cost = Pp_analysis.Cost

let heading title = Printf.printf "\n==== %s ====\n\n" title

let budget = 400_000_000

let run () =
  heading
    "Estimator accuracy: static probe-cost estimates vs measured (flow-hw)";
  List.iter
    (fun name ->
      let w = Option.get (Registry.find name) in
      let prog = Runs.program_of w in
      let session =
        Driver.prepare ~pruner:Feasibility.pruner ~max_instructions:budget
          ~mode:Instrument.Flow_hw prog
      in
      ignore (Driver.run session);
      let saved =
        Profile_io.of_profile
          ~program_hash:(Profile_io.program_hash prog)
          ~mode:(Instrument.mode_name Instrument.Flow_hw)
          (Driver.path_profile session)
      in
      Printf.printf "  -- %s --\n" name;
      match
        Cost.compute ~mode:Instrument.Flow_hw ~profile:saved prog
      with
      | Ok report ->
          String.split_on_char '\n' (Cost.render report)
          |> List.iter (fun l -> Printf.printf "  %s\n" l)
      | Error d -> Printf.printf "  error: %s\n" (Pp_ir.Diag.to_string d))
    [ "go_like"; "compress_like"; "li_like"; "tomcatv_like" ]
