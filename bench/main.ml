(* The benchmark harness: regenerates every table and figure of PLDI'97
   plus the DESIGN.md ablations.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- list    -- available targets
     dune exec bench/main.exe -- table1 figure4 ...
     dune exec bench/main.exe -- --jobs 8 table1 table3

   --jobs N runs the underlying workload x configuration matrix through the
   process pool first (N forked workers); the tables then render from the
   prefetched cache, so their bytes are identical to a serial run.        *)

let targets : (string * string * (unit -> unit)) list =
  [
    ("figure1", "edge labelling and path sums (Fig. 1)", Figures.figure1);
    ("figure2", "the labelling phase (Fig. 2)", Figures.figure2);
    ("figure3", "metric instrumentation listing (Fig. 3)", Figures.figure3);
    ("figure4", "DCT vs DCG vs CCT (Fig. 4)", Figures.figure4);
    ("figure5", "recursion backedges (Fig. 5)", Figures.figure5);
    ("figure7", "call records in memory (Figs. 6/7)", Figures.figure7);
    ("table1", "profiling overhead (Table 1)", Tables.table1);
    ("table2", "metric perturbation (Table 2)", Tables.table2);
    ("table3", "CCT statistics (Table 3)", Tables.table3);
    ("table4", "D-cache misses by path (Table 4)", Tables.table4);
    ("table5", "D-cache misses by procedure (Table 5)", Tables.table5);
    ("implications", "paths through hot blocks (6.4.3)", Tables.implications);
    ("ablation_hash", "A1: array vs hash counters", Ablations.ablation_hash);
    ("ablation_sites", "A2: call-site discrimination",
     Ablations.ablation_sites);
    ( "ablation_saverestore",
      "A3: save/restore placement",
      Ablations.ablation_saverestore );
    ("ablation_backedge", "A4: backedge reads", Ablations.ablation_backedge);
    ( "ablation_placement",
      "simple vs chord placement",
      Ablations.ablation_placement );
    ( "ablation_edge",
      "edge vs path profiling overhead (BL94)",
      Ablations.ablation_edge );
    ("estimator", "static probe-cost estimates vs measured", Estimator.run);
    ( "overhead",
      "self-measured overhead attribution (writes OVERHEAD.json)",
      Overheads.run );
    ("sampling", "stack sampling vs CCT (7.2)", Sampling.run);
    ("hall", "Hall iterative call-path profiling vs CCT (7.2)", Hall.run);
    ("micro", "bechamel micro-benchmarks", Micro.run);
    ( "engine",
      "interpreted vs compiled engine throughput (writes BENCH_engine.json)",
      Engines.run );
    ( "predict",
      "per-path bound certification sweep (writes BENCH_predict.json)",
      Predict.run );
    ( "serve",
      "sampled accuracy vs overhead frontier (writes BENCH_serve.json)",
      Serve.run );
    ( "pgo",
      "profile-guided optimization payoff, CCT vs flat (writes \
       BENCH_pgo.json)",
      Pgo.run );
  ]

let list_targets () =
  print_endline "targets:";
  List.iter
    (fun (name, doc, _) -> Printf.printf "  %-22s %s\n" name doc)
    targets

(* Strip --jobs N (or --jobs=N) from the argument list. *)
let rec parse_jobs = function
  | [] -> (1, [])
  | "--jobs" :: n :: rest | "-j" :: n :: rest -> (
      match int_of_string_opt n with
      | Some jobs ->
          let _, names = parse_jobs rest in
          (jobs, names)
      | None ->
          Printf.eprintf "--jobs expects a number, got %S\n" n;
          exit 1)
  | [ "--jobs" ] | [ "-j" ] ->
      Printf.eprintf "--jobs expects a number\n";
      exit 1
  | arg :: rest ->
      let jobs, names = parse_jobs rest in
      (jobs, arg :: names)

let () =
  let jobs, args = parse_jobs (List.tl (Array.to_list Sys.argv)) in
  if jobs > 1 then Runs.prefetch ~jobs (Runs.full_grid ());
  match args with
  | [ "list" ] -> list_targets ()
  | [] ->
      print_endline
        "Reproducing the tables and figures of 'Exploiting Hardware \
         Performance Counters with Flow and Context Sensitive Profiling' \
         (PLDI 1997) on the simulated UltraSPARC.";
      List.iter (fun (_, _, f) -> f ()) targets
  | names ->
      List.iter
        (fun name ->
          match List.find_opt (fun (n, _, _) -> n = name) targets with
          | Some (_, _, f) -> f ()
          | None ->
              Printf.eprintf "unknown target %S; try 'list'\n" name;
              exit 1)
        names
