(* The self-telemetry overhead target: Tables 1/2-style overhead and
   perturbation with exact per-category attribution, rendered for a
   representative workload pair and written to OVERHEAD.json for the
   benchmark archive. *)

module W = Pp_workloads.Workload
module Registry = Pp_workloads.Registry
module Overhead = Pp_overhead.Overhead

let budget = 400_000_000
let workloads = [ "li_like"; "compress_like" ]

let run () =
  print_endline "== overhead: self-measured cost of profiling ==";
  let reports =
    List.filter_map
      (fun name ->
        match Registry.find name with
        | None ->
            Printf.printf "unknown workload %s\n" name;
            None
        | Some w ->
            let prog = W.compile w in
            let r = Overhead.compute ~budget ~program:name prog in
            print_string (Overhead.render r);
            print_newline ();
            (match Overhead.check r with
            | Ok () -> ()
            | Error msg -> Printf.printf "ATTRIBUTION MISMATCH: %s\n" msg);
            Some r)
      workloads
  in
  let oc = open_out "OVERHEAD.json" in
  output_string oc "[";
  List.iteri
    (fun i r ->
      if i > 0 then output_string oc ",";
      output_string oc (Overhead.to_json r))
    reports;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote OVERHEAD.json (%d workloads)\n" (List.length reports)
