(* The PGO payoff experiment: compile each workload unoptimized, profile
   it (per-path hardware metrics + calling context tree), recompile with
   the profile-guided optimizer, and re-measure on the same simulated
   machine.  Run twice per workload — once driven by the full
   context-sensitive summary, once by a flat edge profile (the gprof
   ablation) — and write BENCH_pgo.json.

   Floors (CI fails on regression):
   - mean CCT-driven cycle reduction stays positive;
   - no workload's CCT-optimized cycles exceed baseline by > 0.5%;
   - the CCT summary beats the flat one on at least one workload
     (context sensitivity must be worth something);
   - every optimized program reproduces the baseline output exactly. *)

module W = Pp_workloads.Workload
module Registry = Pp_workloads.Registry
module Interp = Pp_vm.Interp
module Driver = Pp_instrument.Driver
module Instrument = Pp_instrument.Instrument
module Event = Pp_machine.Event
module Report = Pp_core.Report
module Summary = Pp_opt.Summary
module Pgo = Pp_opt.Pgo

let budget = 400_000_000

(* A workload may regress by at most this factor before the floor trips:
   layout is heuristic, so tiny I-cache noise is tolerated, real
   regressions are not. *)
let regression_ceiling = 1.005

let counter e (r : Interp.result) =
  Option.value ~default:0 (List.assoc_opt e r.Interp.counters)

let profiled_session ~mode prog =
  let session =
    Driver.prepare ~pruner:Pp_analysis.Feasibility.pruner
      ~max_instructions:budget ~mode prog
  in
  ignore (Driver.run session);
  session

let summarize ~source prog =
  match source with
  | `Cct ->
      let flow = profiled_session ~mode:Instrument.Flow_hw prog in
      let ctx = profiled_session ~mode:Instrument.Context_flow prog in
      Summary.of_paths ~cct:(Driver.cct ctx) prog (Driver.path_profile flow)
  | `Flat ->
      let edge = profiled_session ~mode:Instrument.Edge_freq prog in
      let counts =
        List.map
          (fun (proc, plan, edges) -> (proc, Summary.block_counts plan edges))
          (Driver.edge_profile edge)
      in
      Summary.of_edges prog counts

type row = {
  name : string;
  cycles_base : int;
  cycles_cct : int;
  cycles_flat : int;
  dmiss_base : int;
  dmiss_cct : int;
  inlined_cct : int;
}

let pct base v =
  100.0 *. float_of_int (base - v) /. float_of_int (max 1 base)

let measure_workload (w : W.t) =
  let prog = W.compile w in
  let base = Driver.run_baseline ~max_instructions:budget prog in
  (* Data placement's empirical guard (see Pgo.optimize): a workload
     whose behaviour depends on global addresses keeps its layout. *)
  let validate p =
    match Driver.run_baseline ~max_instructions:budget p with
    | r -> r.Interp.output = base.Interp.output
    | exception Interp.Trap _ -> false
  in
  let optimized source =
    let summary = summarize ~source prog in
    let opt_prog, report = Pgo.optimize ~validate ~summary prog in
    let r = Driver.run_baseline ~max_instructions:budget opt_prog in
    if r.Interp.output <> base.Interp.output then
      failwith
        (Printf.sprintf "pgo: %s (%s) changed program output" w.W.name
           (match source with `Cct -> "cct" | `Flat -> "flat"));
    (r, report)
  in
  let cct, report = optimized `Cct in
  let flat, _ = optimized `Flat in
  {
    name = w.W.name;
    cycles_base = base.Interp.cycles;
    cycles_cct = cct.Interp.cycles;
    cycles_flat = flat.Interp.cycles;
    dmiss_base = counter Event.Dcache_misses base;
    dmiss_cct = counter Event.Dcache_misses cct;
    inlined_cct = List.length report.Pgo.inlined;
  }

let run () =
  print_endline
    "== pgo: profile-guided optimization payoff (cycles, lower is \
     better) ==";
  let rows = List.map measure_workload Registry.all in
  let table =
    List.map
      (fun r ->
        `Row
          [
            r.name;
            string_of_int r.cycles_base;
            string_of_int r.cycles_cct;
            Printf.sprintf "%+.2f%%" (-.pct r.cycles_base r.cycles_cct);
            string_of_int r.cycles_flat;
            Printf.sprintf "%+.2f%%" (-.pct r.cycles_base r.cycles_flat);
            string_of_int r.inlined_cct;
          ])
      rows
  in
  print_string
    (Report.render
       ~columns:
         [
           ("Workload", Report.Left);
           ("Base cyc", Report.Right);
           ("CCT cyc", Report.Right);
           ("CCT", Report.Right);
           ("Flat cyc", Report.Right);
           ("Flat", Report.Right);
           ("Inl", Report.Right);
         ]
       ~rows:table);
  let json = Buffer.create 2048 in
  Buffer.add_string json "[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string json ",";
      Buffer.add_string json
        (Printf.sprintf
           "\n  {\"workload\": %S, \"cycles_base\": %d, \"cycles_cct\": \
            %d, \"cycles_flat\": %d, \"dmiss_base\": %d, \"dmiss_cct\": \
            %d, \"inlined_cct\": %d, \"reduction_cct_pct\": %.4f, \
            \"reduction_flat_pct\": %.4f}"
           r.name r.cycles_base r.cycles_cct r.cycles_flat r.dmiss_base
           r.dmiss_cct r.inlined_cct
           (pct r.cycles_base r.cycles_cct)
           (pct r.cycles_base r.cycles_flat)))
    rows;
  Buffer.add_string json "\n]\n";
  let oc = open_out "BENCH_pgo.json" in
  output_string oc (Buffer.contents json);
  close_out oc;
  let mean =
    List.fold_left (fun a r -> a +. pct r.cycles_base r.cycles_cct) 0.0 rows
    /. float_of_int (List.length rows)
  in
  let wins =
    List.length (List.filter (fun r -> r.cycles_cct < r.cycles_flat) rows)
  in
  Printf.printf
    "wrote BENCH_pgo.json (%d workloads; mean CCT reduction %.2f%%; CCT \
     beats flat on %d)\n"
    (List.length rows) mean wins;
  (* Floors. *)
  if mean <= 0.0 then
    failwith (Printf.sprintf "pgo: mean CCT cycle reduction %.4f%% <= 0" mean);
  List.iter
    (fun r ->
      if
        float_of_int r.cycles_cct
        > float_of_int r.cycles_base *. regression_ceiling
      then
        failwith
          (Printf.sprintf "pgo: %s regressed: %d -> %d cycles" r.name
             r.cycles_base r.cycles_cct))
    rows;
  if wins = 0 then
    failwith "pgo: the CCT summary never beat the flat edge profile"
