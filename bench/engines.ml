(* Engine comparison: simulated instructions per second, interpreted vs
   closure-threaded compiled, per workload on the uninstrumented (base)
   configuration.  Renders a speedup table and writes BENCH_engine.json
   for the benchmark archive.  Wall numbers are CPU time and vary by
   host; the differential suite (test_compile) is what certifies the two
   engines agree bit-for-bit. *)

module W = Pp_workloads.Workload
module Registry = Pp_workloads.Registry
module Interp = Pp_vm.Interp
module Engine = Pp_vm.Engine
module Event = Pp_machine.Event
module Report = Pp_core.Report

let budget = 10_000_000

(* [Sys.time] granularity is coarse next to a single compiled run, so
   each measurement repeats fresh runs (setup untimed) until at least
   this much timed execution has accumulated. *)
let min_seconds = 0.5

type sample = { instructions : int; seconds : float }

let measure ~kind prog =
  let once () =
    let eng = Engine.create ~kind ~max_instructions:budget prog in
    Interp.select_pics (Engine.vm eng) ~pic0:Event.Dcache_misses
      ~pic1:Event.Instructions;
    let t0 = Sys.time () in
    (* A budget trap is a normal way to finish: the counters still hold
       the work done, which is all throughput needs. *)
    (try ignore (Engine.run eng) with Interp.Trap _ -> ());
    let seconds = Sys.time () -. t0 in
    let r = Interp.collect_result (Engine.vm eng) in
    (r.Interp.instructions, seconds)
  in
  let run_insts, s0 = once () in
  let total = ref run_insts and seconds = ref s0 in
  while !seconds < min_seconds do
    let n, s = once () in
    total := !total + n;
    seconds := !seconds +. s
  done;
  (* [instructions] is one run's count (the workload's size); the rate
     uses everything accumulated. *)
  {
    instructions = run_insts;
    seconds = (!seconds *. float_of_int run_insts) /. float_of_int !total;
  }

let ips s =
  if s.seconds <= 0.0 then 0.0 else float_of_int s.instructions /. s.seconds

let run () =
  print_endline
    "== engine: interpreted vs compiled throughput (instructions/sec) ==";
  let rows = ref [] in
  let json = Buffer.create 1024 in
  Buffer.add_string json "[";
  List.iteri
    (fun i (w : W.t) ->
      let prog = W.compile w in
      let si = measure ~kind:Engine.Interpreted prog in
      let sc = measure ~kind:Engine.Compiled prog in
      let ii = ips si and ic = ips sc in
      let speedup = if ii > 0.0 then ic /. ii else 0.0 in
      rows :=
        `Row
          [
            w.W.name;
            string_of_int si.instructions;
            Printf.sprintf "%.2e" ii;
            Printf.sprintf "%.2e" ic;
            Printf.sprintf "%.1fx" speedup;
          ]
        :: !rows;
      if i > 0 then Buffer.add_string json ",";
      Buffer.add_string json
        (Printf.sprintf
           "\n  {\"workload\": %S, \"instructions\": %d, \
            \"interp_ips\": %.0f, \"compiled_ips\": %.0f, \"speedup\": \
            %.2f}"
           w.W.name si.instructions ii ic speedup))
    Registry.all;
  Buffer.add_string json "\n]\n";
  print_string
    (Report.render
       ~columns:
         [
           ("Workload", Report.Left);
           ("Insts", Report.Right);
           ("Interp i/s", Report.Right);
           ("Compiled i/s", Report.Right);
           ("Speedup", Report.Right);
         ]
       ~rows:(List.rev !rows));
  let oc = open_out "BENCH_engine.json" in
  output_string oc (Buffer.contents json);
  close_out oc;
  Printf.printf "wrote BENCH_engine.json (%d workloads)\n"
    (List.length Registry.all)
