(* bench serve: the sampled-profiling accuracy-vs-overhead frontier.

   Every workload runs exhaustively and at a ladder of duty cycles;
   each sampled shard is rescaled by its coverage certificate and
   compared against the exhaustive profile:

     - overhead %: instrumented instruction count over the
       uninstrumented baseline (gated commits skip their simulated
       fetch/load/store charges, so overhead falls with duty);
     - hot-path rank correlation (Spearman, over the exhaustive
       profile's executed paths);
     - relative frequency error of the rescaled profile;
     - aggregator peak residency for the shard ({!Pp_run.Serve.agg}).

   Writes BENCH_serve.json.  Two floors gate the target: duty 1.0 must
   reproduce the exhaustive shard byte-identically (zero error, perfect
   correlation), and duty >= 0.5 must keep rank correlation above 0.5 on
   workloads that ran to completion.  PP_SERVE_WORKLOADS (comma-
   separated names) restricts the sweep — CI uses a subset. *)

module W = Pp_workloads.Workload
module Registry = Pp_workloads.Registry
module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver
module Interp = Pp_vm.Interp
module Sampling = Pp_vm.Sampling
module Profile = Pp_core.Profile
module Profile_io = Pp_core.Profile_io
module Sv = Pp_run.Serve

let budget = 400_000_000
let duties = [ 0.125; 0.25; 0.5; 1.0 ]
let mode = Instrument.Flow_hw
let corr_floor = 0.5

(* Sampled sessions force the zero array threshold; the exhaustive
   reference must use the same options or the comparison confounds
   sampling with commit layout. *)
let zero_opts =
  { Instrument.default_options with Instrument.array_threshold = 0 }

let selected_workloads () =
  match Sys.getenv_opt "PP_SERVE_WORKLOADS" with
  | None | Some "" -> Registry.all
  | Some names ->
      let wanted = String.split_on_char ',' names in
      List.filter (fun (w : W.t) -> List.mem w.W.name wanted) Registry.all

let run_session ?sampling prog =
  let session =
    Driver.prepare ~options:zero_opts ~max_instructions:budget ?sampling
      ~mode prog
  in
  let trapped, instructions =
    match Driver.run session with
    | r -> (false, r.Interp.instructions)
    | exception Interp.Trap _ -> (true, budget)
  in
  let saved =
    Profile_io.of_profile
      ~coverage:(Driver.coverage session)
      ~program_hash:(Profile_io.program_hash prog)
      ~mode:(Instrument.mode_name mode)
      (Driver.path_profile session)
  in
  (saved, instructions, trapped)

let baseline_instructions prog =
  match Driver.run_baseline ~max_instructions:budget prog with
  | r -> r.Interp.instructions
  | exception Interp.Trap _ -> budget

(* Frequencies rescaled by the shard's coverage certificate, keyed by
   (procedure, path sum). *)
let scaled_freqs (s : Profile_io.saved) =
  List.concat_map
    (fun (proc, _, paths) ->
      let scale =
        match List.assoc_opt proc s.Profile_io.coverage with
        | Some (sampled, total) -> Sampling.scale ~sampled ~total
        | None -> 1.0
      in
      List.map
        (fun (sum, (m : Profile.path_metrics)) ->
          ((proc, sum), float_of_int m.Profile.freq *. scale))
        paths)
    s.Profile_io.procs

let freq_at table key = match List.assoc_opt key table with
  | Some v -> v
  | None -> 0.0

(* Spearman rank correlation over the exhaustive profile's keys (absent
   sampled paths rank by zero frequency).  Ties break by key, so the
   statistic is deterministic. *)
let spearman ~keys xs ys =
  let n = List.length keys in
  if n <= 1 then 1.0
  else begin
    let ranks table =
      let sorted =
        List.sort
          (fun ka kb ->
            match compare (freq_at table kb) (freq_at table ka) with
            | 0 -> compare ka kb
            | c -> c)
          keys
      in
      List.mapi (fun i k -> (k, float_of_int i)) sorted
    in
    let rx = ranks xs and ry = ranks ys in
    let d2 =
      List.fold_left
        (fun acc k ->
          let d = List.assoc k rx -. List.assoc k ry in
          acc +. (d *. d))
        0.0 keys
    in
    1.0 -. (6.0 *. d2 /. float_of_int (n * ((n * n) - 1)))
  end

let relative_error ~keys exact approx =
  let num, den =
    List.fold_left
      (fun (num, den) k ->
        let e = freq_at exact k in
        (num +. Float.abs (freq_at approx k -. e), den +. e))
      (0.0, 0.0) keys
  in
  if den = 0.0 then 0.0 else num /. den

let run () =
  print_endline "== serve: sampled accuracy vs overhead frontier ==";
  Printf.printf "%-15s %6s %10s %8s %8s %8s %s\n" "workload" "duty"
    "overhead%" "rankcorr" "relerr" "peak" "";
  let json = Buffer.create 4096 in
  Buffer.add_string json "[";
  let first = ref true in
  let violations = ref [] in
  List.iter
    (fun (w : W.t) ->
      let prog = W.compile w in
      let base = baseline_instructions prog in
      let exact_shard, _, exact_trapped = run_session prog in
      let exact = scaled_freqs exact_shard in
      let keys = List.map fst exact in
      List.iter
        (fun duty ->
          let sampling = Sampling.create ~duty ~seed:42 () in
          let shard, instrs, trapped = run_session ~sampling prog in
          let approx = scaled_freqs shard in
          let overhead =
            if base = 0 then 0.0
            else float_of_int (instrs - base) /. float_of_int base *. 100.0
          in
          let corr = spearman ~keys exact approx in
          let err = relative_error ~keys exact approx in
          let agg = Sv.agg_create () in
          ignore (Sv.agg_add agg shard);
          let peak = agg.Sv.peak in
          let note =
            if trapped || exact_trapped then "(budget trap)" else ""
          in
          Printf.printf "%-15s %6.3f %10.2f %8.4f %8.4f %8d %s\n" w.W.name
            duty overhead corr err peak note;
          (* Floors.  Duty 1.0 gates nothing, so its shard must be
             byte-identical to the exhaustive one — stronger than zero
             error, and it holds even across a budget trap. *)
          if duty = 1.0 then begin
            if
              Profile_io.to_string shard
              <> Profile_io.to_string exact_shard
            then
              violations :=
                Printf.sprintf "%s: duty 1.0 shard differs from exhaustive"
                  w.W.name
                :: !violations
          end
          else if
            duty >= 0.5 && (not trapped) && not exact_trapped
            && corr < corr_floor
          then
            violations :=
              Printf.sprintf
                "%s: rank correlation %.4f below floor %.2f at duty %.3f"
                w.W.name corr corr_floor duty
              :: !violations;
          if not !first then Buffer.add_string json ",";
          first := false;
          Buffer.add_string json
            (Printf.sprintf
               "\n\
               \  {\"workload\": %S, \"duty\": %.3f, \"baseline\": %d, \
                \"instrumented\": %d, \"overhead_pct\": %.4f, \
                \"rank_correlation\": %.4f, \"relative_error\": %.4f, \
                \"peak_records\": %d, \"paths\": %d, \"trapped\": %b}"
               w.W.name duty base instrs overhead corr err peak
               (List.length approx) trapped))
        duties)
    (selected_workloads ());
  Buffer.add_string json "\n]\n";
  let oc = open_out "BENCH_serve.json" in
  output_string oc (Buffer.contents json);
  close_out oc;
  Printf.printf "wrote BENCH_serve.json\n";
  match !violations with
  | [] -> ()
  | vs ->
      List.iter (fun v -> Printf.printf "  !! %s\n" v) vs;
      failwith
        (Printf.sprintf "%d frontier floor violation(s)" (List.length vs))
