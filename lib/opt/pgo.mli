(** The profile-guided optimizer — [pp optimize]'s engine.

    {!optimize} chains the four PGO transforms over a whole program, in
    an order chosen so each pass feeds the next:

    + {b inlining} ({!Inline}) of hot call edges, while the summary's
      call-site numbering still matches the code;
    + {b straightening} ({!Reorder.straighten}), which erases the [Jmp]s
      inlining stitched in along with any single-predecessor chain the
      source program already had;
    + {b superblock layout and hot/cold splitting} ({!Reorder}), placing
      each procedure's hottest Ball–Larus path fall-through and sinking
      never-executed blocks — block weights and hot paths are remapped
      through the two preceding passes;
    + {b data placement} ({!Data_layout}), packing globals hot-first.

    Every pass preserves observable behaviour (output, traps, printed
    values); the result is re-validated, and downstream certification
    ([pp check], [pp prove], [pp predict]) re-runs on the transformed
    program as on any other.  A [Summary.Flat] summary exercises the
    same pipeline on edge-profile information only — greedy block order
    instead of path-based, per-callee totals instead of CCT edges —
    which is the ablation baseline. *)

type knobs = {
  layout : bool;  (** superblock reordering *)
  split_cold : bool;  (** sink never-executed blocks (needs [layout]) *)
  straighten : bool;
  inline : bool;
  data : bool;  (** global data placement *)
  inline_budget_slots : int;
      (** total instruction slots inlining may copy, program-wide *)
  inline_max_callee_slots : int;  (** largest callee considered *)
  inline_min_calls : int;  (** coldest call edge considered *)
}

val default_knobs : knobs

type report = {
  inlined : Inline.decision list;
  merged_blocks : int;  (** blocks erased by straightening *)
  reordered_procs : int;  (** procedures whose block order changed *)
  moved_globals : int;
  data_dropped : bool;
      (** data placement was undone because [validate] rejected it *)
  size_before_slots : int;
  size_after_slots : int;
}

(** [optimize ~summary prog] runs the enabled passes and returns the
    transformed program with a report of what changed.  The result is
    validated ({!Pp_ir.Validate.run}) before being returned.

    The code transforms (inlining, straightening, layout) preserve
    behaviour by construction.  Data placement does too for any program
    whose accesses stay within each global's extent — but the IR cannot
    rule out a computed index straying past a global into its neighbour,
    and a program doing so observes the placement.  [validate], when
    given, is the empirical guard: it receives the program with globals
    reordered and must confirm behaviour is unchanged (e.g. by running
    it and comparing output against the unoptimized baseline).  If it
    returns [false], the placement is dropped — the other passes are
    kept — and the report says so ([data_dropped]).  Without [validate],
    placement is applied unconditionally. *)
val optimize :
  ?knobs:knobs -> ?validate:(Pp_ir.Program.t -> bool) ->
  summary:Summary.t -> Pp_ir.Program.t ->
  Pp_ir.Program.t * report

val pp_report : Format.formatter -> report -> unit
