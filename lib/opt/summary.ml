open Pp_ir
module Profile = Pp_core.Profile
module Ball_larus = Pp_core.Ball_larus
module Cct = Pp_core.Cct
module Edge_profile = Pp_core.Edge_profile

type source = Context_sensitive | Flat

type proc_summary = {
  weights : int array;
  hot_path : Block.label list;
}

type site_calls = {
  caller : string;
  site : Instr.site;
  callee : string;
  calls : int;
}

type t = {
  source : source;
  procs : (string * proc_summary) list;
  sites : site_calls list;
  callee_totals : (string * int) list;
  global_heat : (string * int) list;
}

let find t name = List.assoc_opt name t.procs

(* --- static global-reference tracking --- *)

(* Registers whose only definitions in the whole procedure load the address
   of one particular global: the hoisted-base-pointer case a block-local
   scan would miss. *)
let stable_syms ~is_global (p : Proc.t) =
  let defs = Hashtbl.create 16 in
  (* reg -> Some gname while consistent, None once poisoned *)
  Proc.iter_instrs
    (fun _ instr ->
      let poison r = Hashtbl.replace defs r None in
      match instr with
      | Instr.Iconst_sym (rd, s) when is_global s -> (
          match Hashtbl.find_opt defs rd with
          | None -> Hashtbl.replace defs rd (Some s)
          | Some (Some s') when s' = s -> ()
          | Some _ -> poison rd)
      | instr -> List.iter poison (Instr.idefs instr))
    p;
  let stable = Hashtbl.create 8 in
  Hashtbl.iter
    (fun r v -> match v with Some g -> Hashtbl.replace stable r g | None -> ())
    defs;
  stable

let block_refs (prog : Program.t) (p : Proc.t) =
  let is_global s = Program.find_global prog s <> None in
  let stable = stable_syms ~is_global p in
  Array.map
    (fun (b : Block.t) ->
      let local = Hashtbl.create 8 in
      let refs = Hashtbl.create 8 in
      let lookup r =
        match Hashtbl.find_opt local r with
        | Some v -> v
        | None -> Hashtbl.find_opt stable r
      in
      let set r g = Hashtbl.replace local r (Some g) in
      let clear r = Hashtbl.replace local r None in
      let note r =
        match lookup r with
        | Some g ->
            Hashtbl.replace refs g
              (1 + Option.value ~default:0 (Hashtbl.find_opt refs g))
        | None -> ()
      in
      List.iter
        (fun instr ->
          match instr with
          | Instr.Iconst_sym (rd, s) ->
              if is_global s then set rd s else clear rd
          | Instr.Ibinop ((Instr.Add | Instr.Sub), rd, r1, r2) -> (
              match (lookup r1, lookup r2) with
              | Some g, None | None, Some g -> set rd g
              | _ -> clear rd)
          | Instr.Ibinop_imm ((Instr.Add | Instr.Sub), rd, rs, _) -> (
              match lookup rs with Some g -> set rd g | None -> clear rd)
          | Instr.Load (rd, rs, _) ->
              note rs;
              clear rd
          | Instr.Store (_, rb, _) -> note rb
          | Instr.Fload (_, rs, _) -> note rs
          | Instr.Fstore (_, rb, _) -> note rb
          | instr -> List.iter clear (Instr.idefs instr))
        b.Block.instrs;
      Hashtbl.fold (fun g n acc -> (g, n) :: acc) refs []
      |> List.sort compare)
    p.Proc.blocks

(* --- shared assembly --- *)

let sorted_assoc tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let add tbl k v =
  Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k))

(* Frequency-based heat: every reference in block [b] is charged [w(b)]. *)
let freq_heat prog procs =
  let heat = Hashtbl.create 16 in
  List.iter
    (fun (name, ps) ->
      match Program.find_proc prog name with
      | None -> ()
      | Some p ->
          let refs = block_refs prog p in
          Array.iteri
            (fun l per_g ->
              if l < Array.length ps.weights && ps.weights.(l) > 0 then
                List.iter
                  (fun (g, n) -> add heat g (n * ps.weights.(l)))
                  per_g)
            refs)
    procs;
  heat

let of_paths ~cct (prog : Program.t) (profile : Profile.t) =
  let miss_heat = Hashtbl.create 16 in
  let procs =
    List.filter_map
      (fun (pp : Profile.proc_profile) ->
        match Program.find_proc prog pp.Profile.proc with
        | None -> None
        | Some p ->
            let n = Proc.num_blocks p in
            let w = Array.make n 0 in
            let refs = block_refs prog p in
            let best = ref None in
            List.iter
              (fun (sum, (m : Profile.path_metrics)) ->
                let path = Profile.decode pp sum in
                let blocks = path.Ball_larus.blocks in
                List.iter
                  (fun l -> if l >= 0 && l < n then w.(l) <- w.(l) + m.Profile.freq)
                  blocks;
                (* Apportion the path's D-miss total over the globals its
                   blocks reference (proportional to reference count). *)
                if m.Profile.m0 > 0 then begin
                  let per_g = Hashtbl.create 8 in
                  let total = ref 0 in
                  List.iter
                    (fun l ->
                      if l >= 0 && l < Array.length refs then
                        List.iter
                          (fun (g, c) ->
                            add per_g g c;
                            total := !total + c)
                          refs.(l))
                    blocks;
                  if !total > 0 then
                    Hashtbl.iter
                      (fun g c ->
                        add miss_heat g (m.Profile.m0 * c / !total))
                      per_g
                end;
                match !best with
                | Some (bf, _) when bf >= m.Profile.freq -> ()
                | _ -> best := Some (m.Profile.freq, blocks))
              pp.Profile.paths;
            let hot_path =
              match !best with
              | Some (f, blocks) when f > 0 -> blocks
              | _ -> []
            in
            Some (pp.Profile.proc, { weights = w; hot_path }))
      profile.Profile.procs
    |> List.sort compare
  in
  let site_tbl = Hashtbl.create 64 in
  let totals = Hashtbl.create 16 in
  Cct.iter
    (fun node ->
      let caller = Cct.proc node in
      List.iter
        (fun (e : _ Cct.edge) ->
          let callee = Cct.proc e.Cct.target in
          add site_tbl (caller, e.Cct.site, callee) e.Cct.calls;
          add totals callee e.Cct.calls)
        (Cct.edges node))
    cct;
  let sites =
    sorted_assoc site_tbl
    |> List.map (fun ((caller, site, callee), calls) ->
           { caller; site; callee; calls })
  in
  let global_heat =
    if Hashtbl.length miss_heat > 0 then sorted_assoc miss_heat
    else sorted_assoc (freq_heat prog procs)
  in
  {
    source = Context_sensitive;
    procs;
    sites;
    callee_totals = sorted_assoc totals;
    global_heat;
  }

let block_counts plan edges =
  let cfg = Edge_profile.cfg plan in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ((e : Pp_graph.Digraph.edge), c) ->
      match Cfg.label_of_vertex cfg e.Pp_graph.Digraph.dst with
      | Some l -> add tbl l c
      | None -> ())
    edges;
  sorted_assoc tbl

let of_edges (prog : Program.t) counts =
  let procs =
    List.filter_map
      (fun (name, blocks) ->
        match Program.find_proc prog name with
        | None -> None
        | Some p ->
            let w = Array.make (Proc.num_blocks p) 0 in
            List.iter
              (fun (l, c) ->
                if l >= 0 && l < Array.length w then w.(l) <- w.(l) + c)
              blocks;
            Some (name, { weights = w; hot_path = [] }))
      counts
    |> List.sort compare
  in
  (* Static attribution: a call instruction executes as often as its
     block. *)
  let totals = Hashtbl.create 16 in
  List.iter
    (fun (name, ps) ->
      match Program.find_proc prog name with
      | None -> ()
      | Some p ->
          Array.iteri
            (fun l (b : Block.t) ->
              let w = if l < Array.length ps.weights then ps.weights.(l) else 0 in
              List.iter
                (fun instr ->
                  match instr with
                  | Instr.Call { callee; _ } -> add totals callee w
                  | _ -> ())
                b.Block.instrs)
            p.Proc.blocks)
    procs;
  {
    source = Flat;
    procs;
    sites = [];
    callee_totals = sorted_assoc totals;
    global_heat = sorted_assoc (freq_heat prog procs);
  }
