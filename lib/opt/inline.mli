(** Budgeted inlining of hot call edges.

    On this machine model a call costs one fetched [Call] slot and one
    fetched [Ret] slot (there is no stack-linkage memory traffic), while
    an inlined body pays one [Imov]/[Fmov] per argument and one move for a
    used return value; the [Jmp]s stitching the copied body in are
    normally erased by a following {!Reorder.straighten}.  {!plan}
    therefore only accepts sites whose per-call saving
    [2 - arguments - result] is non-negative — the residual win is
    I-cache density: the hot callee's code becomes contiguous with its
    hot caller.

    A [Summary.Context_sensitive] summary plans from measured CCT edges
    — each (caller, site, callee) triple's own call count — while a
    [Summary.Flat] summary has only per-callee totals, so every site of
    a hot callee looks equally hot: the gprof misattribution, preserved
    deliberately for the ablation. *)

(** One accepted inlining site. *)
type decision = {
  caller : string;
  site : Pp_ir.Instr.site;  (** the call site in the {e original} caller *)
  callee : string;
  calls : int;  (** measured (context-sensitive) or attributed (flat) *)
}

(** [plan ~summary ~max_callee_slots ~min_calls ~budget_slots prog] picks
    sites greedily by descending call count: direct calls only, callee
    distinct from caller, callee no larger than [max_callee_slots], at
    least [min_calls] measured calls, non-negative per-call saving, and
    total copied slots within [budget_slots]. *)
val plan :
  summary:Summary.t ->
  max_callee_slots:int ->
  min_calls:int ->
  budget_slots:int ->
  Pp_ir.Program.t ->
  decision list

(** [apply ?weights prog decisions] splices each decision's callee body
    into its caller: arguments become register moves, the callee's
    registers and labels are renamed into the caller, [Frameaddr] offsets
    shift past the caller's frame, returns become jumps to the
    continuation, and call sites are renumbered densely.  When given,
    [weights] (per-procedure block weights, as mutated state) is extended
    in step so later layout passes see the copied blocks' heat. *)
val apply :
  ?weights:(string, int array) Hashtbl.t ->
  Pp_ir.Program.t ->
  decision list ->
  Pp_ir.Program.t
