open Pp_ir

let permute (p : Proc.t) ~order =
  let n = Proc.num_blocks p in
  if Array.length order <> n then
    invalid_arg
      (Printf.sprintf "Reorder.permute(%s): order has %d entries for %d blocks"
         p.Proc.name (Array.length order) n);
  let inv = Array.make n (-1) in
  Array.iteri
    (fun pos old ->
      if old < 0 || old >= n || inv.(old) <> -1 then
        invalid_arg
          (Printf.sprintf "Reorder.permute(%s): not a permutation" p.Proc.name);
      inv.(old) <- pos)
    order;
  let map_term = function
    | Block.Jmp l -> Block.Jmp inv.(l)
    | Block.Br (r, t, f) -> Block.Br (r, inv.(t), inv.(f))
    | Block.Ret v -> Block.Ret v
  in
  let blocks =
    Array.init n (fun pos ->
        let b = p.Proc.blocks.(order.(pos)) in
        { Block.label = pos; instrs = b.Block.instrs; term = map_term b.Block.term })
  in
  Proc.with_blocks ~entry:inv.(p.Proc.entry) p blocks

let layout_order ~weights ~hot_path ~split_cold (p : Proc.t) =
  let n = Proc.num_blocks p in
  if Array.length weights <> n then
    invalid_arg
      (Printf.sprintf "Reorder.layout_order(%s): %d weights for %d blocks"
         p.Proc.name (Array.length weights) n);
  let placed = Array.make n false in
  let out = ref [] in
  let put l =
    if l >= 0 && l < n && not placed.(l) then begin
      placed.(l) <- true;
      out := l :: !out
    end
  in
  List.iter put hot_path;
  let rest = List.filter (fun l -> not placed.(l)) (List.init n Fun.id) in
  let warm, cold =
    if split_cold then List.partition (fun l -> weights.(l) > 0) rest
    else (rest, [])
  in
  let by_weight =
    List.stable_sort (fun a b -> compare weights.(b) weights.(a)) warm
  in
  List.iter put by_weight;
  List.iter put cold;
  Array.of_list (List.rev !out)

let straighten (p : Proc.t) =
  let n = Proc.num_blocks p in
  let instrs = Array.map (fun (b : Block.t) -> b.Block.instrs) p.Proc.blocks in
  let terms = Array.map (fun (b : Block.t) -> b.Block.term) p.Proc.blocks in
  let preds = Array.make n 0 in
  Array.iter
    (fun (b : Block.t) ->
      List.iter (fun s -> preds.(s) <- preds.(s) + 1) (Block.successors b))
    p.Proc.blocks;
  (* The procedure entry has an implicit predecessor. *)
  preds.(p.Proc.entry) <- preds.(p.Proc.entry) + 1;
  let target = Array.init n Fun.id in
  let rec find l =
    if target.(l) = l then l
    else begin
      let r = find target.(l) in
      target.(l) <- r;
      r
    end
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to n - 1 do
      if find b = b then
        match terms.(b) with
        | Block.Jmp c when c <> b && preds.(c) = 1 && find c = c ->
            (* [c]'s single CFG reference is this Jmp, so absorbing its
               code into [b] removes one fetched terminator per
               traversal. *)
            instrs.(b) <- instrs.(b) @ instrs.(c);
            terms.(b) <- terms.(c);
            target.(c) <- b;
            changed := true
        | _ -> ()
    done
  done;
  let map = Array.make n (-1) in
  let next = ref 0 in
  for l = 0 to n - 1 do
    if find l = l then begin
      map.(l) <- !next;
      incr next
    end
  done;
  for l = 0 to n - 1 do
    if map.(l) = -1 then map.(l) <- map.(find l)
  done;
  let map_term = function
    | Block.Jmp l -> Block.Jmp map.(l)
    | Block.Br (r, t, f) -> Block.Br (r, map.(t), map.(f))
    | Block.Ret v -> Block.Ret v
  in
  let dummy =
    { Block.label = 0; instrs = []; term = Block.Ret Block.Ret_void }
  in
  let blocks = Array.make !next dummy in
  for l = 0 to n - 1 do
    if find l = l then
      blocks.(map.(l)) <-
        { Block.label = map.(l); instrs = instrs.(l); term = map_term terms.(l) }
  done;
  (Proc.with_blocks ~entry:map.(p.Proc.entry) p blocks, map)
