open Pp_ir

type decision = {
  caller : string;
  site : Instr.site;
  callee : string;
  calls : int;
}

module ISet = Set.Make (Int)

(* Must-defined register analysis: can the callee read an integer or float
   register it never wrote (beyond its parameters)?  Such a register is
   zero in a fresh activation but would hold a stale value once inlined,
   so those callees are rejected. *)
let reads_clean (q : Proc.t) =
  let n = Proc.num_blocks q in
  let iparams = List.init q.Proc.iparams Fun.id |> ISet.of_list in
  let fparams = List.init q.Proc.fparams Fun.id |> ISet.of_list in
  let iin = Array.make n None and fin = Array.make n None in
  iin.(q.Proc.entry) <- Some iparams;
  fin.(q.Proc.entry) <- Some fparams;
  let dirty = ref false in
  let changed = ref true in
  let inter a b =
    match (a, b) with
    | None, x | x, None -> x
    | Some a, Some b -> Some (ISet.inter a b)
  in
  while !changed do
    changed := false;
    Array.iter
      (fun (b : Block.t) ->
        match (iin.(b.Block.label), fin.(b.Block.label)) with
        | None, _ | _, None -> ()
        | Some idef, Some fdef ->
            let idef = ref idef and fdef = ref fdef in
            List.iter
              (fun instr ->
                List.iter
                  (fun r -> if not (ISet.mem r !idef) then dirty := true)
                  (Instr.iuses instr);
                List.iter
                  (fun r -> if not (ISet.mem r !fdef) then dirty := true)
                  (Instr.fuses instr);
                List.iter (fun r -> idef := ISet.add r !idef) (Instr.idefs instr);
                List.iter (fun r -> fdef := ISet.add r !fdef) (Instr.fdefs instr))
              b.Block.instrs;
            (match b.Block.term with
            | Block.Br (r, _, _) | Block.Ret (Block.Ret_int r) ->
                if not (ISet.mem r !idef) then dirty := true
            | Block.Ret (Block.Ret_float r) ->
                if not (ISet.mem r !fdef) then dirty := true
            | Block.Jmp _ | Block.Ret Block.Ret_void -> ());
            let eq a b =
              match (a, b) with
              | None, None -> true
              | Some x, Some y -> ISet.equal x y
              | _ -> false
            in
            List.iter
              (fun s ->
                let i' = inter iin.(s) (Some !idef)
                and f' = inter fin.(s) (Some !fdef) in
                if not (eq i' iin.(s) && eq f' fin.(s)) then begin
                  iin.(s) <- i';
                  fin.(s) <- f';
                  changed := true
                end)
              (Block.successors b))
      q.Proc.blocks
  done;
  not !dirty

let has_prof_ops (q : Proc.t) =
  let found = ref false in
  Proc.iter_instrs
    (fun _ i -> match i with Instr.Prof _ -> found := true | _ -> ())
    q;
  !found

(* Static per-site call facts of the whole program. *)
type static_site = {
  s_args : int;  (** integer + float arguments *)
  s_ret_used : bool;
  s_callee : string;
}

let static_sites (prog : Program.t) =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun (p : Proc.t) ->
      Proc.iter_instrs
        (fun _ instr ->
          match instr with
          | Instr.Call { callee; args; fargs; ret; site } ->
              Hashtbl.replace tbl
                (p.Proc.name, site)
                {
                  s_args = List.length args + List.length fargs;
                  s_ret_used = ret <> Instr.Rnone;
                  s_callee = callee;
                }
          | _ -> ())
        p)
    prog.Program.procs;
  tbl

let plan ~(summary : Summary.t) ~max_callee_slots ~min_calls ~budget_slots
    (prog : Program.t) =
  let sites = static_sites prog in
  let candidates =
    match summary.Summary.source with
    | Summary.Context_sensitive ->
        List.filter_map
          (fun (sc : Summary.site_calls) ->
            match Hashtbl.find_opt sites (sc.Summary.caller, sc.Summary.site) with
            | Some st when st.s_callee = sc.Summary.callee ->
                Some
                  {
                    caller = sc.Summary.caller;
                    site = sc.Summary.site;
                    callee = sc.Summary.callee;
                    calls = sc.Summary.calls;
                  }
            | _ -> None)
          summary.Summary.sites
    | Summary.Flat ->
        (* Flat attribution: every site of a callee inherits the callee's
           total call count, however cold the site actually is. *)
        Hashtbl.fold
          (fun (caller, site) st acc ->
            let calls =
              Option.value ~default:0
                (List.assoc_opt st.s_callee summary.Summary.callee_totals)
            in
            { caller; site; callee = st.s_callee; calls } :: acc)
          sites []
  in
  let safe = Hashtbl.create 8 in
  let callee_ok name =
    match Hashtbl.find_opt safe name with
    | Some v -> v
    | None ->
        let v =
          match Program.find_proc prog name with
          | None -> false
          | Some q ->
              Proc.size_slots q <= max_callee_slots
              && (not (has_prof_ops q))
              && reads_clean q
        in
        Hashtbl.replace safe name v;
        v
  in
  let ordered =
    List.sort
      (fun a b ->
        match compare b.calls a.calls with
        | 0 -> compare (a.caller, a.site) (b.caller, b.site)
        | c -> c)
      candidates
  in
  let spent = ref 0 in
  List.filter
    (fun d ->
      d.calls >= min_calls
      && d.caller <> d.callee
      && callee_ok d.callee
      &&
      match Hashtbl.find_opt sites (d.caller, d.site) with
      | None -> false
      | Some st ->
          (* Per-call saving: Call + Ret fetches gone, argument and
             result moves added (the stitching Jmps straighten away). *)
          2 - st.s_args - (if st.s_ret_used then 1 else 0) >= 0
          &&
          let q = Program.proc_exn prog d.callee in
          let growth = Proc.size_slots q + st.s_args + 1 in
          if !spent + growth <= budget_slots then begin
            spent := !spent + growth;
            true
          end
          else false)
    ordered

(* --- applying decisions --- *)

let map_instr ~io ~fo ~frame ~fresh_site instr =
  let i r = r + io and f r = r + fo in
  let dest = function
    | Instr.Rint r -> Instr.Rint (i r)
    | Instr.Rfloat r -> Instr.Rfloat (f r)
    | Instr.Rnone -> Instr.Rnone
  in
  match instr with
  | Instr.Iconst (rd, v) -> Instr.Iconst (i rd, v)
  | Instr.Iconst_sym (rd, s) -> Instr.Iconst_sym (i rd, s)
  | Instr.Fconst (fd, v) -> Instr.Fconst (f fd, v)
  | Instr.Imov (rd, rs) -> Instr.Imov (i rd, i rs)
  | Instr.Fmov (fd, fs) -> Instr.Fmov (f fd, f fs)
  | Instr.Ibinop (op, rd, r1, r2) -> Instr.Ibinop (op, i rd, i r1, i r2)
  | Instr.Ibinop_imm (op, rd, rs, v) -> Instr.Ibinop_imm (op, i rd, i rs, v)
  | Instr.Icmp (c, rd, r1, r2) -> Instr.Icmp (c, i rd, i r1, i r2)
  | Instr.Icmp_imm (c, rd, rs, v) -> Instr.Icmp_imm (c, i rd, i rs, v)
  | Instr.Fbinop (op, fd, f1, f2) -> Instr.Fbinop (op, f fd, f f1, f f2)
  | Instr.Fcmp (c, rd, f1, f2) -> Instr.Fcmp (c, i rd, f f1, f f2)
  | Instr.Itof (fd, rs) -> Instr.Itof (f fd, i rs)
  | Instr.Ftoi (rd, fs) -> Instr.Ftoi (i rd, f fs)
  | Instr.Load (rd, rs, off) -> Instr.Load (i rd, i rs, off)
  | Instr.Store (rs, rb, off) -> Instr.Store (i rs, i rb, off)
  | Instr.Fload (fd, rs, off) -> Instr.Fload (f fd, i rs, off)
  | Instr.Fstore (fs, rb, off) -> Instr.Fstore (f fs, i rb, off)
  | Instr.Call { callee; args; fargs; ret; site = _ } ->
      Instr.Call
        {
          callee;
          args = List.map i args;
          fargs = List.map f fargs;
          ret = dest ret;
          site = fresh_site ();
        }
  | Instr.Callind { target; args; fargs; ret; site = _ } ->
      Instr.Callind
        {
          target = i target;
          args = List.map i args;
          fargs = List.map f fargs;
          ret = dest ret;
          site = fresh_site ();
        }
  | Instr.Hwread (rd, k) -> Instr.Hwread (i rd, k)
  | Instr.Hwzero -> Instr.Hwzero
  | Instr.Hwwrite (rs, k) -> Instr.Hwwrite (i rs, k)
  | Instr.Frameaddr (rd, off) -> Instr.Frameaddr (i rd, off + frame)
  | Instr.Print_int r -> Instr.Print_int (i r)
  | Instr.Print_float fr -> Instr.Print_float (f fr)
  | Instr.Prof _ -> invalid_arg "Inline: profiling pseudo-op in source"

(* Find the block and split point of the call with [site] on [callee]. *)
let find_call blocks ~site ~callee =
  let found = ref None in
  Array.iteri
    (fun bi (b : Block.t) ->
      if !found = None then
        List.iteri
          (fun idx instr ->
            match instr with
            | Instr.Call { site = s; callee = c; _ }
              when s = site && c = callee && !found = None ->
                found := Some (bi, idx)
            | _ -> ())
          b.Block.instrs)
    blocks;
  !found

let rec take k = function
  | [] -> []
  | _ when k = 0 -> []
  | x :: tl -> x :: take (k - 1) tl

let rec drop k = function
  | [] -> []
  | l when k = 0 -> l
  | _ :: tl -> drop (k - 1) tl

let inline_into prog ?weights (p : Proc.t) ds =
  let blocks = ref (Array.copy p.Proc.blocks) in
  let io = p.Proc.niregs and fo = p.Proc.nfregs in
  let frame = p.Proc.frame_words * 8 in
  let extra_frame = ref 0 in
  let next_tmp_site = ref 1_000_000 in
  let fresh_site () =
    let s = !next_tmp_site in
    incr next_tmp_site;
    s
  in
  List.iter
    (fun d ->
      match find_call !blocks ~site:d.site ~callee:d.callee with
      | None -> ()
      | Some (bi, idx) -> (
          match Program.find_proc prog d.callee with
          | None -> ()
          | Some q ->
              let b = !blocks.(bi) in
              let c_args, c_fargs, c_ret =
                match List.nth b.Block.instrs idx with
                | Instr.Call { args; fargs; ret; _ } -> (args, fargs, ret)
                | _ -> assert false
              in
              let prefix = take idx b.Block.instrs in
              let rest = drop (idx + 1) b.Block.instrs in
              let base = Array.length !blocks in
              let cont = base in
              let qlabel l = base + 1 + l in
              let arg_movs =
                List.mapi (fun k a -> Instr.Imov (io + k, a)) c_args
                @ List.mapi
                    (fun k a -> Instr.Fmov (fo + k, a))
                    c_fargs
              in
              let ret_movs = function
                | Block.Ret_void -> []
                | Block.Ret_int r -> (
                    match c_ret with
                    | Instr.Rint rd -> [ Instr.Imov (rd, r + io) ]
                    | Instr.Rfloat _ | Instr.Rnone -> [])
                | Block.Ret_float fr -> (
                    match c_ret with
                    | Instr.Rfloat fd -> [ Instr.Fmov (fd, fr + fo) ]
                    | Instr.Rint _ | Instr.Rnone -> [])
              in
              let copy (qb : Block.t) =
                let instrs =
                  List.map (map_instr ~io ~fo ~frame ~fresh_site) qb.Block.instrs
                in
                let label = qlabel qb.Block.label in
                match qb.Block.term with
                | Block.Jmp l -> { Block.label; instrs; term = Block.Jmp (qlabel l) }
                | Block.Br (r, t, f) ->
                    {
                      Block.label;
                      instrs;
                      term = Block.Br (r + io, qlabel t, qlabel f);
                    }
                | Block.Ret rv ->
                    {
                      Block.label;
                      instrs = instrs @ ret_movs rv;
                      term = Block.Jmp cont;
                    }
              in
              let cont_block =
                { Block.label = cont; instrs = rest; term = b.Block.term }
              in
              let prelude =
                {
                  Block.label = bi;
                  instrs = prefix @ arg_movs;
                  term = Block.Jmp (qlabel q.Proc.entry);
                }
              in
              let copies = Array.map copy q.Proc.blocks in
              let old = !blocks in
              let old_len = Array.length old in
              old.(bi) <- prelude;
              blocks := Array.concat [ old; [| cont_block |]; copies ];
              extra_frame := max !extra_frame q.Proc.frame_words;
              (* Extend the weight vector: the continuation runs as often
                 as the split block; copied blocks inherit the callee's
                 own weights scaled to this site's call count. *)
              Option.iter
                (fun tbl ->
                  let w =
                    match Hashtbl.find_opt tbl p.Proc.name with
                    | Some w when Array.length w = old_len -> w
                    | Some w ->
                        let v = Array.make old_len 0 in
                        Array.blit w 0 v 0 (min (Array.length w) old_len);
                        v
                    | None -> Array.make old_len 0
                  in
                  let wb = w.(bi) in
                  let qw =
                    Option.value
                      ~default:(Array.make (Proc.num_blocks q) 0)
                      (Hashtbl.find_opt tbl d.callee)
                  in
                  let entry_w =
                    if q.Proc.entry < Array.length qw then qw.(q.Proc.entry)
                    else 0
                  in
                  let scale l =
                    if entry_w > 0 && l < Array.length qw then
                      qw.(l) * d.calls / entry_w
                    else d.calls
                  in
                  let copies_w = Array.init (Proc.num_blocks q) scale in
                  Hashtbl.replace tbl p.Proc.name
                    (Array.concat [ w; [| wb |]; copies_w ]))
                weights))
    ds;
  (* Renumber every call site densely; the order is irrelevant to the IR
     invariant (a permutation suffices) but appearance order keeps the
     numbering readable. *)
  let next = ref 0 in
  let renumber instr =
    match instr with
    | Instr.Call { callee; args; fargs; ret; site = _ } ->
        let s = !next in
        incr next;
        Instr.Call { callee; args; fargs; ret; site = s }
    | Instr.Callind { target; args; fargs; ret; site = _ } ->
        let s = !next in
        incr next;
        Instr.Callind { target; args; fargs; ret; site = s }
    | instr -> instr
  in
  let blocks =
    Array.map
      (fun (b : Block.t) ->
        { b with Block.instrs = List.map renumber b.Block.instrs })
      !blocks
  in
  Proc.with_blocks ~entry:p.Proc.entry
    ~frame_words:(p.Proc.frame_words + !extra_frame)
    p blocks

let apply ?weights (prog : Program.t) decisions =
  if decisions = [] then prog
  else
    Program.map_procs
      (fun p ->
        match
          List.filter (fun d -> d.caller = p.Proc.name) decisions
        with
        | [] -> p
        | ds -> inline_into prog ?weights p ds)
      prog
