open Pp_ir

type knobs = {
  layout : bool;
  split_cold : bool;
  straighten : bool;
  inline : bool;
  data : bool;
  inline_budget_slots : int;
  inline_max_callee_slots : int;
  inline_min_calls : int;
}

let default_knobs =
  {
    layout = true;
    split_cold = true;
    straighten = true;
    inline = true;
    data = true;
    inline_budget_slots = 512;
    inline_max_callee_slots = 48;
    inline_min_calls = 8;
  }

type report = {
  inlined : Inline.decision list;
  merged_blocks : int;
  reordered_procs : int;
  moved_globals : int;
  data_dropped : bool;
  size_before_slots : int;
  size_after_slots : int;
}

let rec dedup_consecutive = function
  | a :: (b :: _ as tl) when a = b -> dedup_consecutive tl
  | a :: tl -> a :: dedup_consecutive tl
  | [] -> []

let optimize ?(knobs = default_knobs) ?validate ~(summary : Summary.t) prog =
  let weights = Hashtbl.create 16 in
  let hot = Hashtbl.create 16 in
  List.iter
    (fun (name, (ps : Summary.proc_summary)) ->
      Hashtbl.replace weights name (Array.copy ps.Summary.weights);
      Hashtbl.replace hot name ps.Summary.hot_path)
    summary.Summary.procs;
  let size_before = Program.size_slots prog in
  let inlined, prog =
    if knobs.inline then begin
      let ds =
        Inline.plan ~summary
          ~max_callee_slots:knobs.inline_max_callee_slots
          ~min_calls:knobs.inline_min_calls
          ~budget_slots:knobs.inline_budget_slots prog
      in
      (ds, Inline.apply ~weights prog ds)
    end
    else ([], prog)
  in
  let merged = ref 0 in
  let prog =
    if knobs.straighten then
      Program.map_procs
        (fun p ->
          let p', map = Reorder.straighten p in
          merged := !merged + (Proc.num_blocks p - Proc.num_blocks p');
          (match Hashtbl.find_opt weights p.Proc.name with
          | Some w ->
              let w' = Array.make (Proc.num_blocks p') 0 in
              Array.iteri
                (fun old wv ->
                  if old < Array.length map then begin
                    let nl = map.(old) in
                    if nl >= 0 && nl < Array.length w' then
                      w'.(nl) <- max w'.(nl) wv
                  end)
                w;
              Hashtbl.replace weights p.Proc.name w'
          | None -> ());
          (match Hashtbl.find_opt hot p.Proc.name with
          | Some hp ->
              let hp' =
                List.filter_map
                  (fun l ->
                    if l >= 0 && l < Array.length map then Some map.(l)
                    else None)
                  hp
                |> dedup_consecutive
              in
              Hashtbl.replace hot p.Proc.name hp'
          | None -> ());
          p')
        prog
    else prog
  in
  let reordered = ref 0 in
  let prog =
    if knobs.layout then
      Program.map_procs
        (fun p ->
          match Hashtbl.find_opt weights p.Proc.name with
          | Some w when Array.length w = Proc.num_blocks p ->
              let hp =
                Option.value ~default:[] (Hashtbl.find_opt hot p.Proc.name)
              in
              let order =
                Reorder.layout_order ~weights:w ~hot_path:hp
                  ~split_cold:knobs.split_cold p
              in
              let identity = ref true in
              Array.iteri (fun i l -> if i <> l then identity := false) order;
              if !identity then p
              else begin
                incr reordered;
                Reorder.permute p ~order
              end
          | Some _ | None -> p)
        prog
    else prog
  in
  (* Data placement is the one pass whose safety depends on a program
     property the IR cannot check statically (no access strays past its
     global into a neighbour), so it is guarded by the caller's
     empirical [validate] oracle and dropped when rejected. *)
  let moved_globals, data_dropped, prog =
    if not knobs.data then (0, false, prog)
    else
      let heat = summary.Summary.global_heat in
      let moved = Data_layout.moved ~heat prog in
      if moved = 0 then (0, false, prog)
      else
        let placed = Data_layout.place ~heat prog in
        match validate with
        | Some ok when not (ok placed) -> (0, true, prog)
        | Some _ | None -> (moved, false, placed)
  in
  Validate.run prog;
  ( prog,
    {
      inlined;
      merged_blocks = !merged;
      reordered_procs = !reordered;
      moved_globals;
      data_dropped;
      size_before_slots = size_before;
      size_after_slots = Program.size_slots prog;
    } )

let pp_report ppf r =
  Format.fprintf ppf "@[<v>inlined %d call site%s" (List.length r.inlined)
    (if List.length r.inlined = 1 then "" else "s");
  List.iter
    (fun (d : Inline.decision) ->
      Format.fprintf ppf "@,  %s site %d <- %s (%d calls)" d.Inline.caller
        d.Inline.site d.Inline.callee d.Inline.calls)
    r.inlined;
  Format.fprintf ppf
    "@,straightening merged %d block%s@,reordered blocks in %d procedure%s@,\
     moved %d global%s%s@,code size %d -> %d slots@]"
    r.merged_blocks
    (if r.merged_blocks = 1 then "" else "s")
    r.reordered_procs
    (if r.reordered_procs = 1 then "" else "s")
    r.moved_globals
    (if r.moved_globals = 1 then "" else "s")
    (if r.data_dropped then
       " (placement dropped: program behaviour depends on global addresses)"
     else "")
    r.size_before_slots r.size_after_slots
