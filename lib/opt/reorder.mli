(** Profile-guided basic-block placement.

    Three transforms over a single procedure, all semantics-preserving
    (same outputs, traps and instruction stream up to code addresses):

    - {!permute} relabels blocks under an arbitrary permutation.  Because
      {!Pp_ir.Layout} assigns addresses in label order, a permutation
      {e is} a code layout.
    - {!layout_order} computes the superblock order: the hottest
      Ball–Larus path's blocks first (so the dominant path is
      fall-through and I-cache dense), then the rest by execution weight,
      with never-executed blocks sunk to the end (hot/cold splitting).
      With an empty [hot_path] this degrades to the greedy
      count-descending order a flat edge profile supports — the ablation
      baseline.
    - {!straighten} merges single-predecessor [Jmp] chains, eliminating
      one terminator fetch per traversal — the one transform with an
      unconditional cycle win on this machine model.

    Call-site numbers are untouched: {!Pp_ir.Proc} requires sites to be a
    permutation of [0..nsites-1], not any particular order. *)

(** [permute p ~order] rebuilds [p] with [order.(i)] as the new block [i];
    terminators and the entry label are rewritten accordingly.
    @raise Invalid_argument unless [order] is a permutation of the block
    labels. *)
val permute : Pp_ir.Proc.t -> order:Pp_ir.Block.label array -> Pp_ir.Proc.t

(** [layout_order ~weights ~hot_path ~split_cold p] is the profile-guided
    block order: [hot_path] first (deduplicated), remaining blocks by
    descending [weights] (stable on ties), and — when [split_cold] —
    blocks with zero weight last, in label order.
    @raise Invalid_argument if [weights] has the wrong length. *)
val layout_order :
  weights:int array ->
  hot_path:Pp_ir.Block.label list ->
  split_cold:bool ->
  Pp_ir.Proc.t ->
  Pp_ir.Block.label array

(** [straighten p] merges every block ending in [Jmp c] with its target
    while [c] is not the entry and [b] is [c]'s only predecessor, to a
    fixpoint, then compacts labels.  Returns the rewritten procedure and
    a map from old label to the new label of the block now holding that
    code. *)
val straighten : Pp_ir.Proc.t -> Pp_ir.Proc.t * int array
