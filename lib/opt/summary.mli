(** Profile summaries the PGO passes consume.

    A summary distils one profiling run into exactly the facts the
    optimizer needs: per-block execution weights, the hottest Ball–Larus
    path per procedure, measured call counts per (caller, site, callee)
    triple, flat per-callee call totals, and a heat ranking of the global
    data segment.  Two constructors reflect the ablation the bench
    publishes:

    - {!of_paths} builds the {e context-sensitive} summary from a
      flow+hardware path profile plus the calling context tree — per-path
      D-miss attribution drives data placement, the hottest path drives
      superblock layout, and CCT edges drive inlining.
    - {!of_edges} builds the {e flat} summary from a Ball–Larus '94 edge
      profile alone — block counts but no path identity, no per-context
      call counts and no hardware metrics, which is exactly the
      information a gprof-style profiler would hand a PGO pipeline. *)

(** Which profile family produced the summary. *)
type source =
  | Context_sensitive  (** path profile + CCT ({!of_paths}) *)
  | Flat  (** edge profile only ({!of_edges}) *)

type proc_summary = {
  weights : int array;
      (** execution count per block, indexed by label (length
          [Proc.num_blocks]) *)
  hot_path : Pp_ir.Block.label list;
      (** blocks of the procedure's most frequent Ball–Larus path in
          execution order; [[]] for [Flat] summaries *)
}

(** A measured (caller, call site, callee) call count — one CCT edge
    aggregated over all contexts of the caller. *)
type site_calls = {
  caller : string;
  site : Pp_ir.Instr.site;
  callee : string;
  calls : int;
}

type t = {
  source : source;
  procs : (string * proc_summary) list;  (** sorted by procedure name *)
  sites : site_calls list;
      (** context-sensitive call counts, sorted by (caller, site, callee);
          [[]] for [Flat] summaries *)
  callee_totals : (string * int) list;
      (** calls into each procedure, summed over every caller — the flat
          gprof-style attribution; sorted by name *)
  global_heat : (string * int) list;
      (** heat per global, sorted by name: per-path D-miss attribution for
          [Context_sensitive] summaries (frequency-based when the run
          recorded no misses), reference frequency for [Flat] ones *)
}

val find : t -> string -> proc_summary option

(** [of_paths ~cct prog profile] summarises a flow+hardware profiling run.
    [profile]'s [m0] accumulators are read as D-cache misses (the Table 4
    configuration); [cct] supplies the per-(caller, site, callee) call
    counts.  Procedures absent from the profile get no entry and are left
    untouched by the optimizer. *)
val of_paths :
  cct:'a Pp_core.Cct.t -> Pp_ir.Program.t -> Pp_core.Profile.t -> t

(** [of_edges prog counts] summarises an edge-profiling run from per-block
    execution counts (see {!block_counts}).  Call totals are estimated
    statically — each call instruction contributes its block's count to
    its callee — and global heat is reference frequency, since an edge
    profile carries no hardware metrics. *)
val of_edges :
  Pp_ir.Program.t -> (string * (Pp_ir.Block.label * int) list) list -> t

(** Per-block execution counts from a reconstructed edge profile: each
    block's count is the sum of its in-edge counts. *)
val block_counts :
  Pp_core.Edge_profile.t ->
  (Pp_graph.Digraph.edge * int) list ->
  (Pp_ir.Block.label * int) list

(** The static global-reference table behind the heat attribution: for
    each block of [p], the globals its loads and stores provably address
    (via [Iconst_sym] tracking through address arithmetic) with their
    reference counts. *)
val block_refs :
  Pp_ir.Program.t -> Pp_ir.Proc.t -> (string * int) list array
