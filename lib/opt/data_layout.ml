open Pp_ir

let order ~heat (prog : Program.t) =
  let h g =
    Option.value ~default:0 (List.assoc_opt g.Program.gname heat)
  in
  let globals = Array.to_list prog.Program.globals in
  List.stable_sort (fun a b -> compare (h b) (h a)) globals

let moved ~heat (prog : Program.t) =
  let reordered = order ~heat prog in
  let n = ref 0 in
  List.iteri
    (fun i g ->
      if prog.Program.globals.(i).Program.gname <> g.Program.gname then incr n)
    reordered;
  !n

let place ~heat (prog : Program.t) =
  if moved ~heat prog = 0 then prog
  else
    Program.make
      ~procs:(Array.to_list prog.Program.procs)
      ~globals:(order ~heat prog) ~main:prog.Program.main
