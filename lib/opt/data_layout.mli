(** Cache-conscious placement of the global data segment.

    {!Pp_ir.Layout} assigns globals their simulated addresses in
    declaration order from [data_base], and the modelled L1 D-cache is
    direct-mapped: two globals whose addresses coincide modulo the cache
    size thrash each other's lines.  Reordering the declaration list is
    therefore a data-placement decision.  {!place} packs globals by
    descending measured heat (per-path D-miss attribution, see
    {!Summary}), which makes the hot set contiguous — hot globals can
    then only conflict if the hot set itself outgrows the cache — while
    cold globals keep their relative order at the end.  Pure reordering:
    contents, sizes and initialisers are untouched, so any program that
    addresses globals by name (the only way the IR can) is unaffected. *)

(** [place ~heat prog] reorders [prog]'s globals by descending heat
    (stable: unmeasured or equally hot globals keep declaration order).
    Returns [prog] itself when the order is already optimal. *)
val place : heat:(string * int) list -> Pp_ir.Program.t -> Pp_ir.Program.t

(** The number of globals whose position [place] would change. *)
val moved : heat:(string * int) list -> Pp_ir.Program.t -> int
