(** Natural-loop discovery and loop-nesting depth.

    A natural backedge [v -> w] (where [w] dominates [v]) defines a loop
    headed at [w]; its body is [w] together with every vertex from which
    [v] is reachable backwards without passing through [w].  Backedges
    sharing a header are merged into one loop.  DFS-retreating edges that
    are not natural backedges (irreducible regions) are ignored. *)

type loop = {
  header : Digraph.vertex;
  backedges : Digraph.edge list;  (** natural backedges into [header] *)
  body : Digraph.vertex list;  (** ascending; includes [header] *)
  parent : int option;  (** index of the innermost strictly-enclosing loop *)
  depth : int;  (** nesting depth, [1] = outermost *)
}

type t

val analyze : Digraph.t -> root:Digraph.vertex -> t

(** Loops indexed densely; order follows first backedge discovery. *)
val loops : t -> loop array

val num_loops : t -> int

(** Number of loop bodies containing [v]; [0] outside any loop. *)
val depth : t -> Digraph.vertex -> int

(** Index of the smallest loop containing [v], if any. *)
val innermost : t -> Digraph.vertex -> int option

(** [in_loop t l v] — membership of [v] in the body of loop [l]. *)
val in_loop : t -> int -> Digraph.vertex -> bool

val is_header : t -> Digraph.vertex -> bool
