(** Mutable directed multigraphs with dense integer vertices.

    Vertices are integers [0 .. num_vertices - 1], allocated in order by
    {!add_vertex}.  Parallel edges are permitted — control-flow graphs
    routinely contain two edges between the same pair of blocks (e.g. a
    conditional branch whose arms coincide) — so edges carry a unique [id]
    that client analyses use to key edge attributes.

    Successor and predecessor lists preserve insertion order.  Order is
    semantically relevant to clients: the Ball–Larus labelling assigns edge
    values according to a fixed total order of each vertex's successors. *)

type vertex = int

type edge = private {
  id : int;  (** unique within the graph, dense in [0 .. num_edges - 1] *)
  src : vertex;
  dst : vertex;
}

type t

val create : unit -> t

(** [add_vertex g] allocates and returns the next vertex. *)
val add_vertex : t -> vertex

(** [add_vertices g n] allocates [n] fresh vertices, returning them in
    ascending order. *)
val add_vertices : t -> int -> vertex list

val add_edge : t -> vertex -> vertex -> edge

val num_vertices : t -> int
val num_edges : t -> int

(** [mem_vertex g v] is true iff [v] was allocated by [add_vertex]. *)
val mem_vertex : t -> vertex -> bool

(** [edge g id] retrieves an edge by its id.
    @raise Invalid_argument if [id] is out of range. *)
val edge : t -> int -> edge

(** Out-edges of [v] in insertion order.
    @raise Invalid_argument on an unallocated vertex. *)
val out_edges : t -> vertex -> edge list

(** In-edges of [v] in insertion order. *)
val in_edges : t -> vertex -> edge list

val out_degree : t -> vertex -> int
val in_degree : t -> vertex -> int

val succs : t -> vertex -> vertex list
val preds : t -> vertex -> vertex list

val iter_vertices : (vertex -> unit) -> t -> unit
val fold_vertices : (vertex -> 'a -> 'a) -> t -> 'a -> 'a

(** Iterates edges in increasing id order. *)
val iter_edges : (edge -> unit) -> t -> unit

val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a

(** All edges from [src] to [dst], in insertion order. *)
val find_edges : t -> vertex -> vertex -> edge list

(** [reverse g] is a fresh graph with the same vertices and every edge
    flipped.  Edges are inserted in id order, so a reversed edge keeps the
    id of its original — attributes keyed by edge id transfer across. *)
val reverse : t -> t

(** A deep copy sharing no mutable state with the original. *)
val copy : t -> t

(** Pretty-prints as a vertex/edge listing, for debugging. *)
val pp : Format.formatter -> t -> unit
