(* Cooper, Harvey & Kennedy, "A Simple, Fast Dominance Algorithm":
   iterate intersecting predecessor dominators in reverse postorder. *)

type t = {
  root : Digraph.vertex;
  idom : int array;  (* -1 = unknown/unreachable; root maps to itself *)
  rpo_index : int array;  (* reverse-postorder rank, -1 if unreachable *)
}

let compute g ~root =
  let n = Digraph.num_vertices g in
  let dfs = Dfs.run g ~root in
  let order = Dfs.reverse_postorder dfs in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i v -> rpo_index.(v) <- i) order;
  let idom = Array.make n (-1) in
  idom.(root) <- root;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun v ->
        if v <> root then begin
          let preds =
            List.filter
              (fun p -> rpo_index.(p) >= 0 && idom.(p) >= 0)
              (Digraph.preds g v)
          in
          match preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(v) <> new_idom then begin
                idom.(v) <- new_idom;
                changed := true
              end
        end)
      order
  done;
  { root; idom; rpo_index }

let compute_post g ~exit = compute (Digraph.reverse g) ~root:exit

let idom t v =
  if v = t.root || t.idom.(v) < 0 then None else Some t.idom.(v)

let reachable t v = t.rpo_index.(v) >= 0

let dominates t d v =
  if not (reachable t d && reachable t v) then false
  else begin
    let rec climb v = if v = d then true else v <> t.root && climb t.idom.(v) in
    climb v
  end

let dominator_chain t v =
  if not (reachable t v) then
    invalid_arg "Dominators.dominator_chain: unreachable vertex";
  let rec up v acc =
    if v = t.root then v :: acc else up t.idom.(v) (v :: acc)
  in
  up v []

let natural_backedges t dfs =
  List.filter
    (fun (e : Digraph.edge) -> dominates t e.dst e.src)
    (Dfs.back_edges dfs)

let is_reducible t dfs =
  List.length (natural_backedges t dfs) = List.length (Dfs.back_edges dfs)
