type vertex = int

type edge = { id : int; src : vertex; dst : vertex }

(* Adjacency is stored in growable arrays indexed by vertex; each cell holds
   the vertex's edge lists in reverse insertion order (reversed on read). *)
type t = {
  mutable n_vertices : int;
  mutable out_adj : edge list array;
  mutable in_adj : edge list array;
  mutable edges : edge array;  (* dense by id; only [0..n_edges-1] valid *)
  mutable n_edges : int;
}

let create () =
  {
    n_vertices = 0;
    out_adj = Array.make 8 [];
    in_adj = Array.make 8 [];
    edges = Array.make 8 { id = -1; src = -1; dst = -1 };
    n_edges = 0;
  }

let grow arr len dummy =
  let cap = Array.length arr in
  if len < cap then arr
  else begin
    let arr' = Array.make (max (2 * cap) (len + 1)) dummy in
    Array.blit arr 0 arr' 0 cap;
    arr'
  end

let add_vertex g =
  let v = g.n_vertices in
  g.out_adj <- grow g.out_adj v [];
  g.in_adj <- grow g.in_adj v [];
  g.out_adj.(v) <- [];
  g.in_adj.(v) <- [];
  g.n_vertices <- v + 1;
  v

let add_vertices g n =
  List.init n (fun _ -> add_vertex g)

let num_vertices g = g.n_vertices
let num_edges g = g.n_edges
let mem_vertex g v = v >= 0 && v < g.n_vertices

let check_vertex g v =
  if not (mem_vertex g v) then
    invalid_arg (Printf.sprintf "Digraph: vertex %d not in graph" v)

let add_edge g src dst =
  check_vertex g src;
  check_vertex g dst;
  let e = { id = g.n_edges; src; dst } in
  g.edges <- grow g.edges g.n_edges e;
  g.edges.(g.n_edges) <- e;
  g.n_edges <- g.n_edges + 1;
  g.out_adj.(src) <- e :: g.out_adj.(src);
  g.in_adj.(dst) <- e :: g.in_adj.(dst);
  e

let edge g id =
  if id < 0 || id >= g.n_edges then
    invalid_arg (Printf.sprintf "Digraph.edge: id %d out of range" id);
  g.edges.(id)

let out_edges g v =
  check_vertex g v;
  List.rev g.out_adj.(v)

let in_edges g v =
  check_vertex g v;
  List.rev g.in_adj.(v)

let out_degree g v =
  check_vertex g v;
  List.length g.out_adj.(v)

let in_degree g v =
  check_vertex g v;
  List.length g.in_adj.(v)

let succs g v = List.map (fun e -> e.dst) (out_edges g v)
let preds g v = List.map (fun e -> e.src) (in_edges g v)

let iter_vertices f g =
  for v = 0 to g.n_vertices - 1 do
    f v
  done

let fold_vertices f g init =
  let acc = ref init in
  for v = 0 to g.n_vertices - 1 do
    acc := f v !acc
  done;
  !acc

let iter_edges f g =
  for i = 0 to g.n_edges - 1 do
    f g.edges.(i)
  done

let fold_edges f g init =
  let acc = ref init in
  for i = 0 to g.n_edges - 1 do
    acc := f g.edges.(i) !acc
  done;
  !acc

let find_edges g src dst =
  List.filter (fun e -> e.dst = dst) (out_edges g src)

let reverse g =
  let r = create () in
  for _ = 1 to g.n_vertices do
    ignore (add_vertex r)
  done;
  iter_edges (fun e -> ignore (add_edge r e.dst e.src)) g;
  r

let copy g =
  {
    n_vertices = g.n_vertices;
    out_adj = Array.copy g.out_adj;
    in_adj = Array.copy g.in_adj;
    edges = Array.copy g.edges;
    n_edges = g.n_edges;
  }

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph (%d vertices, %d edges)" g.n_vertices
    g.n_edges;
  iter_vertices
    (fun v ->
      let ss = succs g v in
      if ss <> [] then
        Format.fprintf ppf "@,%d -> %a" v
          Format.(
            pp_print_list ~pp_sep:(fun ppf () -> pp_print_string ppf ", ")
              pp_print_int)
          ss)
    g;
  Format.fprintf ppf "@]"
