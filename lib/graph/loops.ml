(* Natural-loop discovery over the dominator tree.

   A natural backedge v -> w (w dominates v) defines the loop with header w
   whose body is w plus every vertex that reaches v backwards without
   passing through w.  Backedges sharing a header are merged into a single
   loop, as is conventional (Muchnick §7.4). *)

type loop = {
  header : Digraph.vertex;
  backedges : Digraph.edge list;
  body : Digraph.vertex list;  (* ascending; includes [header] *)
  parent : int option;  (* index of the innermost strictly-enclosing loop *)
  depth : int;  (* 1 = outermost *)
}

type t = {
  loops : loop array;
  member : bool array array;  (* member.(l).(v) *)
  vdepth : int array;
  vinner : int array;  (* innermost loop index, -1 if none *)
}

let body_of g ~header backedges n =
  let inb = Array.make n false in
  inb.(header) <- true;
  let stack = ref [] in
  List.iter
    (fun (e : Digraph.edge) ->
      if not inb.(e.src) then begin
        inb.(e.src) <- true;
        stack := e.src :: !stack
      end)
    backedges;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
        stack := rest;
        List.iter
          (fun p ->
            if not inb.(p) then begin
              inb.(p) <- true;
              stack := p :: !stack
            end)
          (Digraph.preds g v)
  done;
  inb

let analyze g ~root =
  let n = Digraph.num_vertices g in
  let dfs = Dfs.run g ~root in
  let dom = Dominators.compute g ~root in
  let backedges = Dominators.natural_backedges dom dfs in
  (* Group backedges by header, preserving first-seen (edge id) order. *)
  let headers = ref [] in
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (e : Digraph.edge) ->
      if not (Hashtbl.mem by_header e.dst) then begin
        Hashtbl.add by_header e.dst [];
        headers := e.dst :: !headers
      end;
      Hashtbl.replace by_header e.dst (e :: Hashtbl.find by_header e.dst))
    backedges;
  let headers = List.rev !headers in
  let member =
    Array.of_list
      (List.map
         (fun h -> body_of g ~header:h (Hashtbl.find by_header h) n)
         headers)
  in
  let nl = List.length headers in
  let body_size = Array.map (fun inb ->
      Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 inb)
      member
  in
  let contains i j =
    (* loop i strictly contains loop j *)
    i <> j
    && body_size.(i) >= body_size.(j)
    && (let ok = ref true in
        Array.iteri (fun v inj -> if inj && not member.(i).(v) then ok := false)
          member.(j);
        !ok)
  in
  let parent = Array.make nl (-1) in
  for j = 0 to nl - 1 do
    for i = 0 to nl - 1 do
      if contains i j
         && (parent.(j) < 0 || body_size.(i) < body_size.(parent.(j)))
      then parent.(j) <- i
    done
  done;
  let depth = Array.make nl 0 in
  let rec depth_of j =
    if depth.(j) > 0 then depth.(j)
    else begin
      let d = if parent.(j) < 0 then 1 else 1 + depth_of parent.(j) in
      depth.(j) <- d;
      d
    end
  in
  for j = 0 to nl - 1 do
    ignore (depth_of j)
  done;
  let vdepth = Array.make n 0 in
  let vinner = Array.make n (-1) in
  for v = 0 to n - 1 do
    for l = 0 to nl - 1 do
      if member.(l).(v) then begin
        vdepth.(v) <- vdepth.(v) + 1;
        if vinner.(v) < 0 || body_size.(l) < body_size.(vinner.(v)) then
          vinner.(v) <- l
      end
    done
  done;
  let loops =
    Array.of_list
      (List.mapi
         (fun l h ->
           let body = ref [] in
           for v = n - 1 downto 0 do
             if member.(l).(v) then body := v :: !body
           done;
           {
             header = h;
             backedges = List.rev (Hashtbl.find by_header h);
             body = !body;
             parent = (if parent.(l) < 0 then None else Some parent.(l));
             depth = depth.(l);
           })
         headers)
  in
  { loops; member; vdepth; vinner }

let loops t = t.loops
let num_loops t = Array.length t.loops
let depth t v = t.vdepth.(v)

let innermost t v = if t.vinner.(v) < 0 then None else Some t.vinner.(v)

let in_loop t l v = t.member.(l).(v)

let is_header t v =
  Array.exists (fun (l : loop) -> l.header = v) t.loops
