(** Dominator analysis (iterative Cooper–Harvey–Kennedy).

    Vertex [d] dominates [v] when every path from the root to [v] passes
    through [d].  Dominators identify {e proper} natural loops: a backedge
    [v -> w] forms one only when [w] dominates [v]; DFS-retreating edges
    that fail this test belong to irreducible regions. *)

type t

(** [compute g ~root] — vertices unreachable from [root] have no
    dominator information. *)
val compute : Digraph.t -> root:Digraph.vertex -> t

(** [compute_post g ~exit] computes post-dominators: the dominator tree of
    the reversed graph rooted at [exit].  [dominates t d v] on the result
    reads as "[d] post-dominates [v]" — every [v]→[exit] path passes
    through [d].  Vertices that cannot reach [exit] have no information. *)
val compute_post : Digraph.t -> exit:Digraph.vertex -> t

(** Immediate dominator; [None] for the root and for unreachable
    vertices. *)
val idom : t -> Digraph.vertex -> Digraph.vertex option

(** [dominates t d v] — true when [d] is on every root→[v] path ([d = v]
    included).  False if either vertex is unreachable. *)
val dominates : t -> Digraph.vertex -> Digraph.vertex -> bool

(** The root-to-[v] dominator chain, root first.
    @raise Invalid_argument on an unreachable vertex. *)
val dominator_chain : t -> Digraph.vertex -> Digraph.vertex list

(** Backedges whose target dominates their source — the loops a reducible
    CFG analysis may treat as natural. *)
val natural_backedges : t -> Dfs.t -> Digraph.edge list

(** A graph is reducible iff every DFS back edge is a natural backedge. *)
val is_reducible : t -> Dfs.t -> bool
