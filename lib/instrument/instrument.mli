(** Whole-program instrumentation — the core of the PP tool.

    The four configurations mirror the paper's measurements:
    - {!Flow_freq}: Ball–Larus path frequencies only (the BL96 baseline);
    - {!Flow_hw}: paths with two hardware metrics ("Flow and HW");
    - {!Context_hw}: CCT with per-record metric deltas ("Context and HW");
    - {!Context_flow}: CCT whose records hold path-frequency tables
      ("Context and Flow" — the flow×context combination of §4.3). *)

module Ball_larus = Pp_core.Ball_larus

type mode =
  | Edge_freq
      (** efficient edge profiling (BL94) — the overhead baseline the paper
          compares path profiling against *)
  | Flow_freq
  | Flow_hw
  | Context_hw
  | Context_flow

type options = {
  optimize_placement : bool;
      (** chord placement over a spanning tree (Fig. 1(d)) instead of one
          increment per labelled edge, weighted by static loop-depth
          frequency estimates ({!Pp_core.Static_weights}) *)
  array_threshold : int;
      (** procedures with at most this many potential paths use an array
          of counters; beyond it, the runtime hash table *)
  backedge_metric_reads : bool;  (** §4.3 reads on loop backedges (A4) *)
  caller_saves : bool;
      (** save/restore PICs at call sites instead of callee entry/exit
          (A3) *)
  spill_threshold : int;
      (** procedures already using at least this many integer registers
          spill the path register to the frame *)
  merge_call_sites : bool;  (** CCT slots merged per §4.1 (A2) *)
  only : string list option;
      (** instrument only these procedures ([None] = all).  Partial
          instrumentation follows the paper's gCSP discipline: an
          instrumented procedure called through uninstrumented frames is
          recorded as a child of its nearest instrumented ancestor.  This
          is what iterative schemes like Hall's call-path profiling (§7.2)
          need. *)
}

val default_options : options

type table =
  | No_table
  | Array_table of { global : string; cells : int }
  | Hash_table of { id : int }
  | Cct_table of { id : int }
  | Edge_table of { global : string; plan : Pp_core.Edge_profile.t }

type proc_info = {
  proc : string;
  numbering : Ball_larus.t option;  (** None when paths are not profiled *)
  table : table;
  num_paths : int;
  spilled : bool;
  path_loc : Path_instr.path_loc option;
      (** where the path register lives, when paths are profiled — the
          anchor the static verifier traces *)
  pruned : Ball_larus.pruned option;
      (** statically pruned numbering from the [?pruner] callback; probe
          constants and path sums are unchanged, but the runtime sizes
          hash/CCT tables by its feasible count *)
}

(** A static path-feasibility analysis, supplied by callers (typically
    [Pp_analysis.Feasibility.pruner] — the dependency points that way, so
    the instrumenter only sees this callback type).  [None] means the
    procedure's path table was too large to certify. *)
type pruner = Pp_ir.Cfg.t -> Ball_larus.t -> Ball_larus.pruned option

(** The counter-array global used by a procedure's edge/path table, if
    any. *)
val table_global_name : string -> string

type manifest = {
  mode : mode;
  options : options;
  infos : proc_info list;
}

(** [run ~mode prog] instruments every procedure, adding counter-array
    globals as needed.  The result still passes {!Pp_ir.Validate}. *)
val run :
  ?options:options -> ?pruner:pruner -> mode:mode -> Pp_ir.Program.t ->
  Pp_ir.Program.t * manifest

val mode_name : mode -> string

(** {2 Instrumentation-state footprint}

    Everything a procedure's probes own, for the abstract-interpretation
    certifier ({!Pp_analysis} [Verifier.prove_proc]): fresh register and
    frame-slot ranges are half-open ([lo, hi)) deltas between the original
    and instrumented procedures — the Editor allocates monotonically from
    the original counts, so the deltas are exact. *)
type state = {
  fresh_iregs : int * int;  (** integer registers the probes introduced *)
  fresh_fregs : int * int;
  fresh_slots : int * int;  (** frame byte offsets owned by the probes *)
  path_home : Path_instr.path_loc option;
  table_globals : string list;  (** counter-array globals, if any *)
}

val state :
  original:Pp_ir.Proc.t ->
  instrumented:Pp_ir.Proc.t ->
  proc_info ->
  state
