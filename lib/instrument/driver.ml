module Event = Pp_machine.Event
module Cct = Pp_core.Cct
module Profile = Pp_core.Profile
module Ball_larus = Pp_core.Ball_larus
module Interp = Pp_vm.Interp
module Runtime = Pp_vm.Runtime
module Program = Pp_ir.Program
module Proc = Pp_ir.Proc
module Trace = Pp_telemetry.Trace

module Engine = Pp_vm.Engine

type session = {
  original : Program.t;
  instrumented : Program.t;
  manifest : Instrument.manifest;
  vm : Interp.t;
  engine : Engine.t;
  trace : Trace.t;
  sampling : Pp_vm.Sampling.t option;
}

let default_pics = (Event.Dcache_misses, Event.Instructions)

(* Sampled sessions force every path table through the runtime-dispatched
   commits (hash / CCT): the inline array-table commit sequences are
   plain loads and stores the controller cannot patch out. *)
let sampled_options options =
  let base = Option.value ~default:Instrument.default_options options in
  { base with Instrument.array_threshold = 0 }

let prepare ?options ?pruner ?config ?max_instructions
    ?(pics = default_pics) ?(telemetry = Trace.null) ?telemetry_interval
    ?engine ?sampling ~mode prog =
  let options =
    match sampling with
    | None -> options
    | Some _ -> Some (sampled_options options)
  in
  let instrumented, manifest =
    Trace.with_span telemetry "instrument" (fun () ->
        Instrument.run ?options ?pruner ~mode prog)
  in
  let vm =
    Trace.with_span telemetry "vm.setup" (fun () ->
        let vm =
          Interp.create ?config ?max_instructions
            ~merge_call_sites:
              manifest.Instrument.options.Instrument.merge_call_sites
            instrumented
        in
        let rt = Interp.runtime vm in
        List.iter
          (fun (info : Instrument.proc_info) ->
            match info.Instrument.table with
            | Instrument.Hash_table { id } ->
                Runtime.register_hash_table rt ~table:id
                  ~proc:info.Instrument.proc
            | Instrument.Cct_table { id } ->
                (* A statically pruned numbering certifies fewer possible
                   sums; per-record tables need only that many cells of
                   simulated footprint. *)
                let npaths =
                  match info.Instrument.pruned with
                  | Some p -> Ball_larus.num_feasible p
                  | None -> info.Instrument.num_paths
                in
                Runtime.register_cct_table rt ~table:id
                  ~proc:info.Instrument.proc ~npaths
            | Instrument.No_table | Instrument.Array_table _
            | Instrument.Edge_table _ ->
                ())
          manifest.Instrument.infos;
        let pic0, pic1 = pics in
        Interp.select_pics vm ~pic0 ~pic1;
        vm)
  in
  (match telemetry_interval with
  | Some interval when Trace.enabled telemetry ->
      Interp.set_telemetry vm ~trace:telemetry ~interval
  | _ -> ());
  Option.iter (Interp.set_sampling vm) sampling;
  {
    original = prog;
    instrumented;
    manifest;
    vm;
    engine = Engine.of_vm ?kind:engine vm;
    trace = telemetry;
    sampling;
  }

let run session =
  Trace.with_span session.trace "execute" (fun () ->
      Engine.run session.engine)

let run_baseline ?config ?max_instructions ?(pics = default_pics) ?engine
    prog =
  let eng = Engine.create ?kind:engine ?config ?max_instructions prog in
  let pic0, pic1 = pics in
  Interp.select_pics (Engine.vm eng) ~pic0 ~pic1;
  Engine.run eng

let cct session = Runtime.cct (Interp.runtime session.vm)

let coverage session =
  match session.sampling with
  | None -> []
  | Some s -> Pp_vm.Sampling.coverage s

let path_profile session =
  Trace.with_span session.trace "extract.profile" @@ fun () ->
  let vm = session.vm in
  let rt = Interp.runtime vm in
  let procs =
    List.filter_map
      (fun (info : Instrument.proc_info) ->
        match info.Instrument.numbering with
        | None -> None
        | Some numbering ->
            let paths =
              match info.Instrument.table with
              | Instrument.No_table | Instrument.Edge_table _ -> []
              | Instrument.Array_table { global; cells } ->
                  let acc = ref [] in
                  for sum = info.Instrument.num_paths - 1 downto 0 do
                    let v =
                      Interp.read_table_cells vm ~global ~index:sum ~cells
                    in
                    if v.(0) > 0 then
                      acc :=
                        ( sum,
                          {
                            Profile.freq = v.(0);
                            m0 = (if cells >= 3 then v.(1) else 0);
                            m1 = (if cells >= 3 then v.(2) else 0);
                          } )
                        :: !acc
                  done;
                  !acc
              | Instrument.Hash_table { id } ->
                  Runtime.hash_table_counts rt ~table:id
                  |> List.map (fun (sum, (c : Runtime.path_cells)) ->
                         ( sum,
                           {
                             Profile.freq = c.Runtime.freq;
                             m0 = c.Runtime.m0;
                             m1 = c.Runtime.m1;
                           } ))
                  |> List.sort compare
              | Instrument.Cct_table _ ->
                  (* Aggregate per-record tables over all contexts. *)
                  let totals = Hashtbl.create 64 in
                  Cct.iter
                    (fun node ->
                      if Cct.proc node = info.Instrument.proc then
                        Hashtbl.iter
                          (fun sum count ->
                            let cur =
                              Option.value ~default:0
                                (Hashtbl.find_opt totals sum)
                            in
                            Hashtbl.replace totals sum (cur + !count))
                          (Cct.data node).Runtime.paths)
                    (Runtime.cct rt);
                  Hashtbl.fold
                    (fun sum freq acc ->
                      (sum, { Profile.freq; m0 = 0; m1 = 0 }) :: acc)
                    totals []
                  |> List.sort compare
            in
            Some { Profile.proc = info.Instrument.proc; numbering; paths })
      session.manifest.Instrument.infos
  in
  let counters = Pp_machine.Machine.counters (Interp.machine vm) in
  let pic0, pic1 = Pp_machine.Counters.selection counters in
  { Profile.pic0; pic1; procs }

let edge_profile session =
  List.filter_map
    (fun (info : Instrument.proc_info) ->
      match info.Instrument.table with
      | Instrument.Edge_table { global; plan } ->
          let n = Pp_core.Edge_profile.num_counters plan in
          let counts =
            Array.init n (fun i ->
                (Interp.read_table_cells session.vm ~global ~index:i
                   ~cells:1).(0))
          in
          Some
            ( info.Instrument.proc,
              plan,
              Pp_core.Edge_profile.reconstruct plan ~counts )
      | Instrument.No_table | Instrument.Array_table _
      | Instrument.Hash_table _ | Instrument.Cct_table _ ->
          None)
    session.manifest.Instrument.infos

let site_paths session =
  (* Map each procedure's call sites to their blocks, lazily. *)
  let site_block = Hashtbl.create 16 in
  let block_of_site proc_name site =
    let key = proc_name in
    let arr =
      match Hashtbl.find_opt site_block key with
      | Some arr -> arr
      | None ->
          let p = Program.proc_exn session.original proc_name in
          let arr = Array.make (max 1 p.Proc.nsites) (-1) in
          Proc.iter_instrs
            (fun label instr ->
              match instr with
              | Pp_ir.Instr.Call { site; _ }
              | Pp_ir.Instr.Callind { site; _ } ->
                  arr.(site) <- label
              | _ -> ())
            p;
          Hashtbl.replace site_block key arr;
          arr
    in
    if site >= 0 && site < Array.length arr then arr.(site) else -1
  in
  let numbering_of =
    let table = Hashtbl.create 16 in
    List.iter
      (fun (info : Instrument.proc_info) ->
        match info.Instrument.numbering with
        | Some bl -> Hashtbl.replace table info.Instrument.proc bl
        | None -> ())
      session.manifest.Instrument.infos;
    fun proc -> Hashtbl.find_opt table proc
  in
  fun node site ->
    let proc = Cct.proc node in
    match numbering_of proc with
    | None -> 0
    | Some bl ->
        let block = block_of_site proc site in
        if block < 0 then 0
        else
          Hashtbl.fold
            (fun sum _count acc ->
              let path = Ball_larus.decode bl sum in
              if List.mem block path.Ball_larus.blocks then acc + 1 else acc)
            (Cct.data node).Runtime.paths 0
