(** End-to-end profiling sessions: instrument → execute → extract.

    This is what the [pp] command-line tool and the benchmark harness build
    on: the equivalent of running PP over a binary and collecting its
    profile files afterwards. *)

module Event = Pp_machine.Event
module Cct = Pp_core.Cct
module Profile = Pp_core.Profile

type session = {
  original : Pp_ir.Program.t;
  instrumented : Pp_ir.Program.t;
  manifest : Instrument.manifest;
  vm : Pp_vm.Interp.t;
  engine : Pp_vm.Engine.t;
      (** the execution engine wrapping [vm]; {!run} dispatches through
          it (default: {!Pp_vm.Engine.default}, the compiled tier) *)
  trace : Pp_telemetry.Trace.t;
      (** the session's telemetry sink; {!Pp_telemetry.Trace.null} unless
          [prepare] was given one *)
  sampling : Pp_vm.Sampling.t option;
      (** the sampled-instrumentation controller, when [prepare] was
          given one (installed on [vm]; its toggles work mid-run) *)
}

(** Instrument for [mode], build a VM, register the runtime tables and
    select the PIC events (default: [Dcache_misses], [Instructions] — the
    Table 4/5 configuration).  [pruner] enables static path-feasibility
    pruning: CCT per-record path tables are sized by the certified
    feasible count instead of the full potential-path count.

    [telemetry] receives [instrument] / [vm.setup] / [execute] /
    [extract.profile] spans from the session's phases; when
    [telemetry_interval] is also given, the VM samples its counters into
    the sink every that many simulated cycles
    ({!Pp_vm.Interp.set_telemetry}).  The default sink is
    {!Pp_telemetry.Trace.null}, under which every telemetry call site is
    a dead branch — results and profiles are byte-identical with
    telemetry off.

    [engine] selects the execution tier for {!run} (default
    {!Pp_vm.Engine.default}); both tiers are certified byte-identical by
    the differential suite, so the choice only affects speed.

    [sampling] installs a {!Pp_vm.Sampling} controller
    ({!Pp_vm.Interp.set_sampling}) and forces [array_threshold] to [0] in
    [options], so every path table uses a runtime-dispatched (and thus
    gateable) hash or CCT commit instead of inline array updates.
    Compare sampled sessions against an exhaustive session prepared with
    the same zero-threshold options. *)
val prepare :
  ?options:Instrument.options ->
  ?pruner:Instrument.pruner ->
  ?config:Pp_machine.Config.t ->
  ?max_instructions:int ->
  ?pics:Event.t * Event.t ->
  ?telemetry:Pp_telemetry.Trace.t ->
  ?telemetry_interval:int ->
  ?engine:Pp_vm.Engine.kind ->
  ?sampling:Pp_vm.Sampling.t ->
  mode:Instrument.mode ->
  Pp_ir.Program.t ->
  session

(** Execute to completion.  @raise Pp_vm.Interp.Trap *)
val run : session -> Pp_vm.Interp.result

(** Execute the {e uninstrumented} program under the same machine model —
    the paper's sampled baseline. *)
val run_baseline :
  ?config:Pp_machine.Config.t ->
  ?max_instructions:int ->
  ?pics:Event.t * Event.t ->
  ?engine:Pp_vm.Engine.kind ->
  Pp_ir.Program.t ->
  Pp_vm.Interp.result

(** The flow-sensitive profile (array, hash and CCT-aggregated tables),
    valid after {!run}.  Procedures without path instrumentation are
    omitted. *)
val path_profile : session -> Profile.t

(** The calling context tree, valid after {!run} in a context mode. *)
val cct : session -> Pp_vm.Runtime.record_data Cct.t

(** The sampling controller's per-procedure [(sampled, total)] commit
    coverage, valid after {!run}; [[]] for unsampled sessions.  Attach to
    saved shards so sampled profiles carry their scaling certificate. *)
val coverage : session -> (string * (int * int)) list

(** Reconstructed per-edge execution counts, valid after {!run} in
    [Edge_freq] mode: for each procedure, the plan and every CFG edge's
    count recovered from the chord counters. *)
val edge_profile :
  session ->
  (string
  * Pp_core.Edge_profile.t
  * (Pp_graph.Digraph.edge * int) list)
  list

(** Executed-path count per call site of a CCT record's procedure: for
    Table 3's "one path" column via {!Pp_core.Cct_stats.call_sites_one_path}.
    Uses the record's own path table and the procedure's numbering to find
    which call sites the executed paths cross. *)
val site_paths :
  session -> Pp_vm.Runtime.record_data Cct.node -> int -> int
