module I = Pp_ir.Instr
module Ball_larus = Pp_core.Ball_larus

type target =
  | Array_target of { global : string; cells : int }
  | Hash_target of { id : int }
  | Cct_target of { id : int }

(* The path register: a real register, or a frame slot when the procedure
   has no free register (EEL's spill case).  Spilled accesses go through
   memory with fresh temporaries, which is exactly the extra perturbation
   the paper describes. *)
type preg = Direct of I.ireg | Spilled of int  (* frame byte offset *)

type path_loc = Path_reg of I.ireg | Path_slot of int

let set_code ed preg value =
  match preg with
  | Direct r -> [ I.Iconst (r, value) ]
  | Spilled off ->
      let a = Editor.new_ireg ed in
      let v = Editor.new_ireg ed in
      [ I.Frameaddr (a, off); I.Iconst (v, value); I.Store (v, a, 0) ]

let add_code ed preg value =
  if value = 0 then []
  else
    match preg with
    | Direct r -> [ I.Ibinop_imm (I.Add, r, r, value) ]
    | Spilled off ->
        let a = Editor.new_ireg ed in
        let v = Editor.new_ireg ed in
        [
          I.Frameaddr (a, off);
          I.Load (v, a, 0);
          I.Ibinop_imm (I.Add, v, v, value);
          I.Store (v, a, 0);
        ]

(* Materialise r + extra into a fresh register. *)
let read_code ed preg extra =
  match preg with
  | Direct r when extra = 0 -> (r, [])
  | Direct r ->
      let v = Editor.new_ireg ed in
      (v, [ I.Ibinop_imm (I.Add, v, r, extra) ])
  | Spilled off ->
      let a = Editor.new_ireg ed in
      let v = Editor.new_ireg ed in
      let load = [ I.Frameaddr (a, off); I.Load (v, a, 0) ] in
      if extra = 0 then (v, load)
      else (v, load @ [ I.Ibinop_imm (I.Add, v, v, extra) ])

(* The commit sequence: count[r + extra]++ plus, with hardware metrics, the
   two PIC accumulators and the re-zeroing read-after-write (§3.1). *)
let commit_code ed ~target ~hw ~restart preg extra =
  let key, key_code = read_code ed preg extra in
  let body =
    match target with
    | Array_target { global; cells } ->
        let rb = Editor.new_ireg ed in
        let ra = Editor.new_ireg ed in
        let addr_code =
          [
            I.Iconst_sym (rb, global);
            I.Ibinop_imm (I.Mul, ra, key, cells * 8);
            I.Ibinop (I.Add, ra, rb, ra);
          ]
        in
        let tf = Editor.new_ireg ed in
        let freq_code =
          [
            I.Load (tf, ra, 0);
            I.Ibinop_imm (I.Add, tf, tf, 1);
            I.Store (tf, ra, 0);
          ]
        in
        if not hw then addr_code @ freq_code
        else begin
          let t0 = Editor.new_ireg ed in
          let t1 = Editor.new_ireg ed in
          let m0 = Editor.new_ireg ed in
          let m1 = Editor.new_ireg ed in
          let tz = Editor.new_ireg ed in
          [ I.Hwread (t0, 0); I.Hwread (t1, 1) ]
          @ addr_code @ freq_code
          @ [
              I.Load (m0, ra, 8);
              I.Ibinop (I.Add, m0, m0, t0);
              I.Store (m0, ra, 8);
              I.Load (m1, ra, 16);
              I.Ibinop (I.Add, m1, m1, t1);
              I.Store (m1, ra, 16);
            ]
          @
          (* Re-arm the counters for the next path; the UltraSPARC needs a
             read after the write to force completion. *)
          if restart then [ I.Hwzero; I.Hwread (tz, 0) ] else []
        end
    | Hash_target { id } ->
        if hw then
          [ I.Prof (I.Path_commit_hash_hw { table = id; path_reg = key }) ]
        else [ I.Prof (I.Path_commit_hash { table = id; path_reg = key }) ]
    | Cct_target { id } ->
        [ I.Prof (I.Path_commit_cct { table = id; path_reg = key }) ]
  in
  key_code @ body

let emit ed ~placement ~hw ~target ~spill ~caller_saves =
  let preg =
    if spill then Spilled (Editor.alloc_spill_slot ed)
    else Direct (Editor.new_ireg ed)
  in
  (* PIC save registers live across the whole body (virtual registers are
     per-frame, hence callee-saved by construction). *)
  let s0 = Editor.new_ireg ed in
  let s1 = Editor.new_ireg ed in
  (* Entry: save + zero the counters, initialise the path register. *)
  let entry_hw =
    if not hw then []
    else if caller_saves then
      (* A3: callers save/restore; the callee only zeroes. *)
      let tz = Editor.new_ireg ed in
      [ I.Hwzero; I.Hwread (tz, 0) ]
    else
      let tz = Editor.new_ireg ed in
      [
        I.Hwread (s0, 0);
        I.Hwread (s1, 1);
        I.Hwzero;
        I.Hwread (tz, 0);
      ]
  in
  Editor.at_entry ed (entry_hw @ set_code ed preg 0);
  (* Edge increments. *)
  List.iter
    (fun (e, v) -> Editor.on_edge ed e (add_code ed preg v))
    placement.Ball_larus.increments;
  (* Backedges: commit with the end value, then restart the path. *)
  List.iter
    (fun (op : Ball_larus.backedge_op) ->
      let code =
        commit_code ed ~target ~hw ~restart:true preg op.Ball_larus.end_add
        @ set_code ed preg op.Ball_larus.reset_to
      in
      Editor.on_edge ed op.Ball_larus.backedge code)
    placement.Ball_larus.backedge_ops;
  (* Returns: final commit, then restore the caller's counters. *)
  let restore =
    if hw && not caller_saves then
      [ I.Hwwrite (s0, 0); I.Hwwrite (s1, 1) ]
    else []
  in
  Editor.before_returns ed
    (commit_code ed ~target ~hw ~restart:false preg 0 @ restore);
  (* A3: the caller-side save/restore around every call site. *)
  if hw && caller_saves then
    Editor.around_calls ed (fun ~site:_ ~indirect:_ ->
        let c0 = Editor.new_ireg ed in
        let c1 = Editor.new_ireg ed in
        ( [ I.Hwread (c0, 0); I.Hwread (c1, 1) ],
          [ I.Hwwrite (c0, 0); I.Hwwrite (c1, 1) ] ));
  match preg with Direct r -> Path_reg r | Spilled off -> Path_slot off
