module Ball_larus = Pp_core.Ball_larus
module Proc = Pp_ir.Proc
module Program = Pp_ir.Program
module Cfg = Pp_ir.Cfg

type mode = Edge_freq | Flow_freq | Flow_hw | Context_hw | Context_flow

type options = {
  optimize_placement : bool;
  array_threshold : int;
  backedge_metric_reads : bool;
  caller_saves : bool;
  spill_threshold : int;
  merge_call_sites : bool;
  only : string list option;
}

let default_options =
  {
    optimize_placement = false;
    array_threshold = 4096;
    backedge_metric_reads = false;
    caller_saves = false;
    spill_threshold = 64;
    merge_call_sites = false;
    only = None;
  }

type table =
  | No_table
  | Array_table of { global : string; cells : int }
  | Hash_table of { id : int }
  | Cct_table of { id : int }
  | Edge_table of { global : string; plan : Pp_core.Edge_profile.t }

type proc_info = {
  proc : string;
  numbering : Ball_larus.t option;
  table : table;
  num_paths : int;
  spilled : bool;
  path_loc : Path_instr.path_loc option;
  pruned : Ball_larus.pruned option;
}

type pruner = Cfg.t -> Ball_larus.t -> Ball_larus.pruned option

type manifest = { mode : mode; options : options; infos : proc_info list }

let mode_name = function
  | Edge_freq -> "edge-freq"
  | Flow_freq -> "flow-freq"
  | Flow_hw -> "flow-hw"
  | Context_hw -> "context-hw"
  | Context_flow -> "context-flow"

let table_global_name proc = "__ptab_" ^ proc

let profiles_paths = function
  | Flow_freq | Flow_hw | Context_flow -> true
  | Edge_freq | Context_hw -> false

let profiles_context = function
  | Context_hw | Context_flow -> true
  | Edge_freq | Flow_freq | Flow_hw -> false

(* BL94 edge profiling: one counter per spanning-tree chord, a 4-instruction
   load/increment/store at a statically known offset. *)
let emit_edge_profiling ed ~global =
  let weights = Pp_core.Static_weights.edge_weight (Editor.cfg ed) in
  let plan = Pp_core.Edge_profile.plan ~weights (Editor.cfg ed) in
  List.iter
    (fun ((e : Pp_graph.Digraph.edge), idx) ->
      let rb = Editor.new_ireg ed in
      let rt = Editor.new_ireg ed in
      let code =
        [
          Pp_ir.Instr.Iconst_sym (rb, global);
          Pp_ir.Instr.Load (rt, rb, idx * 8);
          Pp_ir.Instr.Ibinop_imm (Pp_ir.Instr.Add, rt, rt, 1);
          Pp_ir.Instr.Store (rt, rb, idx * 8);
        ]
      in
      match Pp_ir.Cfg.role (Editor.cfg ed) e with
      | Pp_ir.Cfg.Entry -> Editor.at_entry ed code
      | Pp_ir.Cfg.Jump | Pp_ir.Cfg.Branch_true | Pp_ir.Cfg.Branch_false
      | Pp_ir.Cfg.Return ->
          Editor.on_edge ed e code)
    (Pp_core.Edge_profile.chords plan);
  plan

let instrument_proc ?pruner options mode ~table_id (p : Proc.t) =
  match options.only with
  | Some names when not (List.mem p.Proc.name names) ->
      ( p,
        {
          proc = p.Proc.name;
          numbering = None;
          table = No_table;
          num_paths = 0;
          spilled = false;
          path_loc = None;
          pruned = None;
        } )
  | Some _ | None ->
  let ed = Editor.create p in
  let spilled = p.Proc.niregs >= options.spill_threshold in
  let numbering, table, path_loc, pruned =
    if mode = Edge_freq then begin
      let global = table_global_name p.Proc.name in
      let plan = emit_edge_profiling ed ~global in
      (None, Edge_table { global; plan }, None, None)
    end
    else if profiles_paths mode then begin
      let cfg = Editor.cfg ed in
      let bl = Ball_larus.build cfg in
      (* Static feasibility pruning, when the caller supplies an analysis.
         The numbering (and hence every probe constant) is untouched: the
         pruned view only certifies which sums can occur, letting the
         runtime size hash/CCT tables by the feasible count. *)
      let pruned = match pruner with None -> None | Some f -> f cfg bl in
      let placement =
        if options.optimize_placement then
          (* Static loop-depth frequency estimates keep hot edges on the
             spanning tree, as BL96 intends. *)
          let weights = Pp_core.Static_weights.edge_weight (Editor.cfg ed) in
          Ball_larus.optimized_placement ~weights bl
        else Ball_larus.simple_placement bl
      in
      let num_paths = Ball_larus.num_paths bl in
      let hw = mode = Flow_hw in
      let table =
        match mode with
        | Context_flow -> Cct_table { id = table_id }
        | Flow_freq | Flow_hw ->
            if num_paths <= options.array_threshold then
              Array_table
                {
                  global = table_global_name p.Proc.name;
                  cells = (if hw then 3 else 1);
                }
            else Hash_table { id = table_id }
        | Edge_freq | Context_hw -> assert false
      in
      let target =
        match table with
        | Array_table { global; cells } ->
            Path_instr.Array_target { global; cells }
        | Hash_table { id } -> Path_instr.Hash_target { id }
        | Cct_table { id } -> Path_instr.Cct_target { id }
        | No_table | Edge_table _ -> assert false
      in
      (* Context_flow ordering: the path emitter registers first so that at
         every return the commit (into the *current* call record) executes
         before Cct_exit pops back to the caller.  Entry-code order between
         the two emitters is immaterial: commits only happen at backedges
         and returns, both well after Cct_enter. *)
      let path_loc =
        Path_instr.emit ed ~placement ~hw ~target ~spill:spilled
          ~caller_saves:options.caller_saves
      in
      if profiles_context mode then
        Cct_instr.emit ed ~metrics:false ~backedge_reads:false;
      (Some bl, table, Some path_loc, pruned)
    end
    else begin
      (* Context_hw: CCT construction with metric deltas. *)
      Cct_instr.emit ed ~metrics:true
        ~backedge_reads:options.backedge_metric_reads;
      (None, No_table, None, None)
    end
  in
  let num_paths =
    match numbering with Some bl -> Ball_larus.num_paths bl | None -> 0
  in
  let info =
    {
      proc = p.Proc.name;
      numbering;
      table;
      num_paths;
      spilled;
      path_loc;
      pruned;
    }
  in
  (Editor.finish ed, info)

let run ?(options = default_options) ?pruner ~mode prog =
  let infos = ref [] in
  let table_globals = ref [] in
  let procs =
    Array.to_list prog.Program.procs
    |> List.mapi (fun table_id p ->
           let p', info = instrument_proc ?pruner options mode ~table_id p in
           infos := info :: !infos;
           (match info.table with
           | Array_table { global; cells } ->
               table_globals :=
                 {
                   Program.gname = global;
                   size_words = info.num_paths * cells;
                   init = None;
                 }
                 :: !table_globals
           | Edge_table { global; plan } ->
               table_globals :=
                 {
                   Program.gname = global;
                   size_words =
                     max 1 (Pp_core.Edge_profile.num_counters plan);
                   init = None;
                 }
                 :: !table_globals
           | No_table | Hash_table _ | Cct_table _ -> ());
           p')
  in
  let globals =
    Array.to_list prog.Program.globals @ List.rev !table_globals
  in
  let prog' = Program.make ~procs ~globals ~main:prog.Program.main in
  Pp_ir.Validate.run prog';
  (prog', { mode; options; infos = List.rev !infos })

(* Instrumentation-state footprint, derived by comparing the original and
   instrumented procedures: the Editor allocates fresh registers starting
   at the original counts and fresh spill slots starting at the original
   frame size, so the deltas are exactly the state the probes own. *)
type state = {
  fresh_iregs : int * int;
  fresh_fregs : int * int;
  fresh_slots : int * int;
  path_home : Path_instr.path_loc option;
  table_globals : string list;
}

let state ~(original : Proc.t) ~(instrumented : Proc.t) (info : proc_info) =
  let table_globals =
    match info.table with
    | Array_table { global; _ } | Edge_table { global; _ } -> [ global ]
    | No_table | Hash_table _ | Cct_table _ -> []
  in
  {
    fresh_iregs = (original.Proc.niregs, instrumented.Proc.niregs);
    fresh_fregs = (original.Proc.nfregs, instrumented.Proc.nfregs);
    fresh_slots =
      (original.Proc.frame_words * 8, instrumented.Proc.frame_words * 8);
    path_home = info.path_loc;
    table_globals;
  }
