(** Path-profiling instrumentation (flow-sensitive profiling, §2–§3).

    Given a Ball–Larus numbering and a placement, emits into an {!Editor}:
    - the path register initialisation at entry (with PIC save + zero when
      hardware metrics are collected);
    - [r += c] increments on labelled edges;
    - the combined commit/reset operation on backedges;
    - the final commit (and PIC restore) before every return.

    The commit target is an array global ([count\[r\]++] in straight-line
    code, 13+ instructions with two metric accumulators), a runtime hash
    table (path-rich procedures), or the current CCT call record's table
    (the flow×context combination). *)

type target =
  | Array_target of { global : string; cells : int }
      (** cells per entry: 1 (freq) or 3 (freq + two PIC accumulators) *)
  | Hash_target of { id : int }
  | Cct_target of { id : int }

(** Where the path register ended up: a fresh integer register, or a frame
    slot (byte offset) in the spill case.  Recorded in the instrumentation
    manifest so the static verifier knows what to trace. *)
type path_loc = Path_reg of Pp_ir.Instr.ireg | Path_slot of int

(** [emit ed ~placement ~hw ~target ~spill] adds the flow
    instrumentation and returns the path register's location.  [spill]
    forces the path register into a frame slot (the no-free-register case).
    With [hw], the callee-side PIC save/restore of §3.1 is emitted unless
    [caller_saves] (ablation A3), in which case call sites get the
    save/restore instead. *)
val emit :
  Editor.t ->
  placement:Pp_core.Ball_larus.placement ->
  hw:bool ->
  target:target ->
  spill:bool ->
  caller_saves:bool ->
  path_loc
