(** Structured diagnostics with code locations.

    One diagnostic type is shared by the structural validator
    ({!Validate}) and the static instrumentation verifier
    ({!Pp_analysis.Verifier}), so that every reported defect carries a
    machine-readable location: the procedure, optionally the block, and
    optionally the instruction index within that block (0-based;
    [Terminator] designates the block's terminator). *)

type position = Instr of int | Terminator

type loc = {
  proc : string;
  block : Block.label option;
  position : position option;  (** meaningless without [block] *)
}

type severity = Error | Warning

type t = { severity : severity; loc : loc; message : string }

val proc_loc : string -> loc
val block_loc : string -> Block.label -> loc
val instr_loc : string -> Block.label -> int -> loc
val term_loc : string -> Block.label -> loc

val error : loc -> ('a, Format.formatter, unit, t) format4 -> 'a
val warning : loc -> ('a, Format.formatter, unit, t) format4 -> 'a

(** ["proc/L3/2: message"]-style rendering. *)
val to_string : t -> string

val pp_loc : Format.formatter -> loc -> unit
val pp : Format.formatter -> t -> unit
