type position = Instr of int | Terminator

type loc = {
  proc : string;
  block : Block.label option;
  position : position option;
}

type severity = Error | Warning

type t = { severity : severity; loc : loc; message : string }

let proc_loc proc = { proc; block = None; position = None }
let block_loc proc label = { proc; block = Some label; position = None }

let instr_loc proc label i =
  { proc; block = Some label; position = Some (Instr i) }

let term_loc proc label =
  { proc; block = Some label; position = Some Terminator }

let error loc fmt =
  Format.kasprintf (fun message -> { severity = Error; loc; message }) fmt

let warning loc fmt =
  Format.kasprintf (fun message -> { severity = Warning; loc; message }) fmt

let pp_loc ppf loc =
  Format.pp_print_string ppf loc.proc;
  Option.iter (fun l -> Format.fprintf ppf "/L%d" l) loc.block;
  match (loc.block, loc.position) with
  | Some _, Some (Instr i) -> Format.fprintf ppf "/%d" i
  | Some _, Some Terminator -> Format.fprintf ppf "/term"
  | _ -> ()

let pp ppf t =
  Format.fprintf ppf "%s: %a: %s"
    (match t.severity with Error -> "error" | Warning -> "warning")
    pp_loc t.loc t.message

let to_string t = Format.asprintf "%a" pp t
