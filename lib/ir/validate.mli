(** Structural checking of whole programs, run before loading. *)

exception Invalid of Diag.t
(** The diagnostic's location names the offending procedure and, where the
    violation is attached to code, the block and instruction index. *)

(** [run prog] checks, raising {!Invalid} with a located diagnostic on the
    first violation:
    - every direct call and [Iconst_sym] names an existing procedure or
      global;
    - call argument counts and result destinations match the callee
      signature;
    - [Ret] value kinds match the enclosing procedure's return kind;
    - every block is reachable from the entry and reaches some return
      (the profiler's ENTRY/EXIT requirements);
    - register indices are within the procedure's declared counts. *)
val run : Program.t -> unit

(** [check prog] is [run] packaged as a result. *)
val check : Program.t -> (unit, Diag.t) result

(** [check_message prog] is [check] with the diagnostic rendered to a
    string, for callers that only report. *)
val check_message : Program.t -> (unit, string) result
