exception Invalid of Diag.t

let fail loc fmt =
  Format.kasprintf
    (fun s -> raise (Invalid { Diag.severity = Diag.Error; loc; message = s }))
    fmt

let check_call prog ~loc ~callee ~nargs ~nfargs ~(ret : Instr.ret_dest) =
  match Program.find_proc prog callee with
  | None -> fail loc "call to undefined procedure %S" callee
  | Some p ->
      if p.iparams <> nargs || p.fparams <> nfargs then
        fail loc "call to %s passes (%d,%d) args, expected (%d,%d)" callee
          nargs nfargs p.iparams p.fparams;
      (match (ret, p.returns) with
      | Instr.Rint _, Proc.Returns_int
      | Instr.Rfloat _, Proc.Returns_float
      | Instr.Rnone, (Proc.Returns_int | Proc.Returns_float | Proc.Returns_void)
        ->
          ()
      | Instr.Rint _, (Proc.Returns_float | Proc.Returns_void)
      | Instr.Rfloat _, (Proc.Returns_int | Proc.Returns_void) ->
          fail loc "call to %s binds a result of the wrong kind" callee)

let check_symbol prog ~loc name =
  if Program.find_proc prog name = None
     && Program.find_global prog name = None then
    fail loc "reference to undefined symbol %S" name

let check_instr prog (p : Proc.t) ~loc instr =
  List.iter
    (fun r ->
      if r < 0 || r >= p.niregs then
        fail loc "integer register r%d out of range" r)
    (Instr.idefs instr @ Instr.iuses instr);
  List.iter
    (fun r ->
      if r < 0 || r >= p.nfregs then
        fail loc "float register f%d out of range" r)
    (Instr.fdefs instr @ Instr.fuses instr);
  match instr with
  | Instr.Call { callee; args; fargs; ret; _ } ->
      check_call prog ~loc ~callee ~nargs:(List.length args)
        ~nfargs:(List.length fargs) ~ret
  | Instr.Iconst_sym (_, name) -> check_symbol prog ~loc name
  | Instr.Hwread (_, k) | Instr.Hwwrite (_, k) ->
      if k <> 0 && k <> 1 then fail loc "pic index %d (must be 0/1)" k
  | Instr.Callind _ | Instr.Iconst _ | Instr.Fconst _ | Instr.Imov _
  | Instr.Fmov _ | Instr.Ibinop _ | Instr.Ibinop_imm _ | Instr.Icmp _
  | Instr.Icmp_imm _ | Instr.Fbinop _ | Instr.Fcmp _ | Instr.Itof _
  | Instr.Ftoi _ | Instr.Load _ | Instr.Store _ | Instr.Fload _
  | Instr.Fstore _ | Instr.Hwzero | Instr.Frameaddr _ | Instr.Print_int _
  | Instr.Print_float _ | Instr.Prof _ ->
      ()

let check_ret (p : Proc.t) (b : Block.t) =
  match b.term with
  | Block.Ret rv -> (
      match (rv, p.returns) with
      | Block.Ret_int _, Proc.Returns_int
      | Block.Ret_float _, Proc.Returns_float
      | Block.Ret_void, Proc.Returns_void ->
          ()
      | _ ->
          fail
            (Diag.term_loc p.name b.label)
            "returns a value of the wrong kind")
  | Block.Jmp _ | Block.Br _ -> ()

let check_flow (p : Proc.t) =
  let cfg = Cfg.of_proc p in
  let dfs = Pp_graph.Dfs.run cfg.graph ~root:cfg.entry in
  Array.iter
    (fun (b : Block.t) ->
      if not (Pp_graph.Dfs.reachable dfs b.label) then
        fail (Diag.block_loc p.name b.label) "unreachable from entry")
    p.blocks;
  (* Every vertex must reach EXIT: run a reverse DFS from EXIT by searching
     the reversed graph (walk in-edges). *)
  let g = cfg.graph in
  let n = Pp_graph.Digraph.num_vertices g in
  let reaches = Array.make n false in
  let rec mark v =
    if not reaches.(v) then begin
      reaches.(v) <- true;
      List.iter mark (Pp_graph.Digraph.preds g v)
    end
  in
  mark cfg.exit;
  Array.iter
    (fun (b : Block.t) ->
      if not reaches.(b.label) then
        fail
          (Diag.block_loc p.name b.label)
          "cannot reach a return (infinite loop?)")
    p.blocks

let run prog =
  Array.iter
    (fun (p : Proc.t) ->
      Array.iter
        (fun (b : Block.t) ->
          List.iteri
            (fun i instr ->
              check_instr prog p ~loc:(Diag.instr_loc p.name b.label i) instr)
            b.instrs;
          check_ret p b)
        p.blocks;
      check_flow p)
    prog.Program.procs

let check prog =
  match run prog with () -> Ok () | exception Invalid d -> Error d

let check_message prog = Result.map_error Diag.to_string (check prog)
