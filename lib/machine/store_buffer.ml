(* The FIFO holds each in-flight store's drain-completion cycle.  Drains are
   serialised: a store begins draining only when its predecessor finished,
   and no earlier than its own issue time.  The FIFO is a fixed ring of
   [entries] cells — stores are on the hot path of both engines, so no
   allocation per push. *)
type t = {
  entries : int;
  buf : int array;  (* circular; completion cycles *)
  mutable head : int;  (* index of the oldest entry *)
  mutable len : int;
  mutable last_completion : int;
}

let create ~entries =
  if entries <= 0 then invalid_arg "Store_buffer.create: entries <= 0";
  { entries; buf = Array.make entries 0; head = 0; len = 0; last_completion = 0 }

let[@inline] advance t i = if i + 1 >= t.entries then 0 else i + 1

let drain_completed t ~now =
  (* Drains serialise, so [last_completion] is the newest entry's
     completion cycle: once it has passed, the whole buffer is empty —
     the common case, handled without walking the ring. *)
  if t.last_completion <= now then t.len <- 0
  else
    while t.len > 0 && Array.unsafe_get t.buf t.head <= now do
      t.head <- advance t t.head;
      t.len <- t.len - 1
    done

let push t ~now ~drain =
  if drain <= 0 then invalid_arg "Store_buffer.push: drain <= 0";
  drain_completed t ~now;
  let stall =
    if t.len < t.entries then 0
    else begin
      (* Full: wait for the oldest entry. *)
      let oldest = Array.unsafe_get t.buf t.head in
      t.head <- advance t t.head;
      t.len <- t.len - 1;
      oldest - now
    end
  in
  let issue = now + stall in
  let completion =
    (if issue > t.last_completion then issue else t.last_completion) + drain
  in
  t.last_completion <- completion;
  let tail = t.head + t.len in
  let tail = if tail >= t.entries then tail - t.entries else tail in
  Array.unsafe_set t.buf tail completion;
  t.len <- t.len + 1;
  stall

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.last_completion <- 0

let occupancy t ~now =
  drain_completed t ~now;
  t.len
