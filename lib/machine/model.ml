let is_pow2 n = n > 0 && n land (n - 1) = 0

let num_sets (g : Config.cache_geometry) =
  g.size_bytes / (g.line_bytes * g.associativity)

let line_of (g : Config.cache_geometry) addr = addr / g.line_bytes
let set_of_line g line = line mod num_sets g
let set_of_addr g addr = set_of_line g (line_of g addr)
let same_set g l1 l2 = set_of_line g l1 = set_of_line g l2

let lines_of_range g ~addr ~bytes =
  if bytes <= 0 then []
  else begin
    let first = line_of g addr in
    let last = line_of g (addr + bytes - 1) in
    let rec collect l acc = if l < first then acc else collect (l - 1) (l :: acc) in
    collect last []
  end

let store_stall_bound (c : Config.t) =
  c.store_buffer_entries * c.store_drain_miss_cycles

let fp_stall_bound (c : Config.t) =
  max c.fp_add_latency (max c.fp_mul_latency c.fp_div_latency)

let mispredict_bound (c : Config.t) = c.mispredict_penalty

let cycles (c : Config.t) ~instructions ~icache_misses ~dcache_read_misses
    ~mispredict_stalls ~store_buffer_stalls ~fp_stalls =
  instructions
  + (c.icache_miss_penalty * icache_misses)
  + (c.dcache_miss_penalty * dcache_read_misses)
  + mispredict_stalls + store_buffer_stalls + fp_stalls
