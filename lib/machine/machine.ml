type t = {
  config : Config.t;
  counters : Counters.t;
  totals : int array;
      (* Counters.raw_totals counters, cached for the batched entry
         points below: a bump is then a single in-place array update *)
  dcache : Cache.t;
  icache : Cache.t;
  branch_pred : Branch_pred.t;
  store_buffer : Store_buffer.t;
  fp : Fp_unit.t;
  mutable cycles : int;
  (* Penalty constants copied out of [config] so the hot entry points
     read one scalar field instead of chasing nested config records. *)
  ic_pen : int;
  dc_pen : int;
  mp_pen : int;
  sd_hit : int;
  sd_miss : int;
}

let create config =
  let config = Config.validate config in
  let counters = Counters.create () in
  {
    config;
    counters;
    totals = Counters.raw_totals counters;
    dcache = Cache.create config.Config.dcache;
    icache = Cache.create config.Config.icache;
    branch_pred = Branch_pred.create ~table_size:config.Config.branch_table_size;
    store_buffer =
      Store_buffer.create ~entries:config.Config.store_buffer_entries;
    fp = Fp_unit.create config ~nregs:32;
    cycles = 0;
    ic_pen = config.Config.icache_miss_penalty;
    dc_pen = config.Config.dcache_miss_penalty;
    mp_pen = config.Config.mispredict_penalty;
    sd_hit = config.Config.store_drain_cycles;
    sd_miss = config.Config.store_drain_miss_cycles;
  }

let config t = t.config
let counters t = t.counters
let now t = t.cycles

let spend t event n =
  if n > 0 then begin
    t.cycles <- t.cycles + n;
    Counters.bump t.counters Event.Cycles n;
    Counters.bump t.counters event n
  end

let fetch t ~addr =
  Counters.bump t.counters Event.Instructions 1;
  Counters.bump t.counters Event.Icache_refs 1;
  t.cycles <- t.cycles + 1;
  Counters.bump t.counters Event.Cycles 1;
  if not (Cache.read t.icache addr) then begin
    Counters.bump t.counters Event.Icache_misses 1;
    t.cycles <- t.cycles + t.config.Config.icache_miss_penalty;
    Counters.bump t.counters Event.Cycles t.config.Config.icache_miss_penalty
  end

let load t ~addr =
  Counters.bump t.counters Event.Loads 1;
  Counters.bump t.counters Event.Dcache_reads 1;
  if not (Cache.read t.dcache addr) then begin
    Counters.bump t.counters Event.Dcache_read_misses 1;
    Counters.bump t.counters Event.Dcache_misses 1;
    t.cycles <- t.cycles + t.config.Config.dcache_miss_penalty;
    Counters.bump t.counters Event.Cycles t.config.Config.dcache_miss_penalty
  end

let store t ~addr =
  Counters.bump t.counters Event.Stores 1;
  Counters.bump t.counters Event.Dcache_writes 1;
  let hit = Cache.write t.dcache addr in
  if not hit then begin
    Counters.bump t.counters Event.Dcache_write_misses 1;
    Counters.bump t.counters Event.Dcache_misses 1
  end;
  let drain =
    if hit then t.config.Config.store_drain_cycles
    else t.config.Config.store_drain_miss_cycles
  in
  let stall = Store_buffer.push t.store_buffer ~now:t.cycles ~drain in
  spend t Event.Store_buffer_stalls stall

(* Batched per-block event replay for the compiled engine.

   A fetch run covers consecutive instruction slots with no intervening
   machine event; it is applied as bulk counter bumps plus one icache
   probe per distinct cache line.  Skipped probes are repeats of the line
   just read with no other icache access in between, so they would always
   hit and touch a line that is already most-recent: tags, relative LRU
   order and the miss count are exactly those of per-slot probes.  All
   clock-sensitive events (stores, FP issue/use) stay individual and in
   original program order, so store-buffer and scoreboard stalls see the
   same [now] as the per-instruction interpreter. *)
type block_op =
  | Bfetch of { count : int; leaders : int array }
      (** [count] instruction fetches; [leaders] holds the first address
          of each distinct icache line in the run, in order *)
  | Bload of int  (** data read; operand index into the dynamic buffer *)
  | Bstore of int  (** data write; operand index into the dynamic buffer *)
  | Bfp_issue of { cls : Fp_unit.op_class; dst : int; s1 : int; s2 : int }
  | Bfp_use of int
  | Bfp_define of int

(* Pre-resolved counter indices for the batched entry points below. *)
let ix_cycles = Counters.ix Event.Cycles
let ix_insts = Counters.ix Event.Instructions
let ix_icrefs = Counters.ix Event.Icache_refs
let ix_icmiss = Counters.ix Event.Icache_misses
let ix_loads = Counters.ix Event.Loads
let ix_dcreads = Counters.ix Event.Dcache_reads
let ix_dcreadmiss = Counters.ix Event.Dcache_read_misses
let ix_dcmiss = Counters.ix Event.Dcache_misses
let ix_stores = Counters.ix Event.Stores
let ix_dcwrites = Counters.ix Event.Dcache_writes
let ix_dcwritemiss = Counters.ix Event.Dcache_write_misses
let ix_sbstalls = Counters.ix Event.Store_buffer_stalls
let ix_branches = Counters.ix Event.Branches
let ix_brmiss = Counters.ix Event.Branch_mispredicts
let ix_mpstalls = Counters.ix Event.Mispredict_stalls
let ix_fpops = Counters.ix Event.Fp_ops
let ix_fpstalls = Counters.ix Event.Fp_stalls

(* A bump against the cached totals array; same module, so it inlines to
   one in-place array update. *)
let[@inline always] badd (tot : int array) i n =
  Array.unsafe_set tot i (Array.unsafe_get tot i + n)

(* [fetch]/[load]/[store] with pre-resolved indices and allocation-free
   probes, for the compiled engine's hot paths (the precise tier and
   [block_step]'s ordered replay).  Same observable behaviour. *)
let fetch_hot t ~addr =
  let tot = t.totals in
  badd tot ix_insts 1;
  badd tot ix_icrefs 1;
  if Cache.read_hot t.icache addr then begin
    t.cycles <- t.cycles + 1;
    badd tot ix_cycles 1
  end
  else begin
    badd tot ix_icmiss 1;
    let cy = 1 + t.ic_pen in
    t.cycles <- t.cycles + cy;
    badd tot ix_cycles cy
  end

let load_hot t ~addr =
  let tot = t.totals in
  badd tot ix_loads 1;
  badd tot ix_dcreads 1;
  if not (Cache.read_hot t.dcache addr) then begin
    badd tot ix_dcreadmiss 1;
    badd tot ix_dcmiss 1;
    let p = t.dc_pen in
    t.cycles <- t.cycles + p;
    badd tot ix_cycles p
  end

let store_hot t ~addr =
  let tot = t.totals in
  badd tot ix_stores 1;
  badd tot ix_dcwrites 1;
  let hit = Cache.write_hot t.dcache addr in
  if not hit then begin
    badd tot ix_dcwritemiss 1;
    badd tot ix_dcmiss 1
  end;
  let drain = if hit then t.sd_hit else t.sd_miss in
  let stall = Store_buffer.push t.store_buffer ~now:t.cycles ~drain in
  if stall > 0 then begin
    t.cycles <- t.cycles + stall;
    badd tot ix_cycles stall;
    badd tot ix_sbstalls stall
  end

(* The whole-block fast form, for batched blocks whose events are only
   instruction fetches and data reads: nothing in such a block reads the
   clock, so cycles, counter bumps and the two caches' probes commute —
   totals are applied in bulk and each cache is probed in program order.
   [leaders] holds the first fetch address of each distinct icache line
   touched by the block's body (fetch addresses increase monotonically
   within a block, so each line appears exactly once); [dyn.(0..nloads-1)]
   are the load addresses in program order. *)
let block_bulk t ~fetches ~leaders ~dyn ~nloads =
  let tot = t.totals in
  badd tot ix_insts fetches;
  badd tot ix_icrefs fetches;
  let cycles = ref fetches in
  let im = Cache.read_many t.icache leaders (Array.length leaders) in
  if im > 0 then begin
    badd tot ix_icmiss im;
    cycles := !cycles + (im * t.ic_pen)
  end;
  if nloads > 0 then begin
    badd tot ix_loads nloads;
    badd tot ix_dcreads nloads;
    let dm = Cache.read_many t.dcache dyn nloads in
    if dm > 0 then begin
      badd tot ix_dcreadmiss dm;
      badd tot ix_dcmiss dm;
      cycles := !cycles + (dm * t.dc_pen)
    end
  end;
  t.cycles <- t.cycles + !cycles;
  badd tot ix_cycles !cycles

(* A compiled block's terminator fetch.  [probe:false] elides the icache
   probe when the terminator shares its cache line with the block's last
   body fetch: nothing between them touches the icache (data ops go to
   the dcache, the epilogue only reads counters), so the probe would hit
   a line that is already the most recent in its untouched set — tags,
   misses and relative recency are unchanged by skipping it. *)
let fetch_term t ~addr ~probe =
  let tot = t.totals in
  badd tot ix_insts 1;
  badd tot ix_icrefs 1;
  if probe && not (Cache.read_hot t.icache addr) then begin
    badd tot ix_icmiss 1;
    let cy = 1 + t.ic_pen in
    t.cycles <- t.cycles + cy;
    badd tot ix_cycles cy
  end
  else begin
    t.cycles <- t.cycles + 1;
    badd tot ix_cycles 1
  end

let branch t ~addr ~taken =
  Counters.bump t.counters Event.Branches 1;
  if not (Branch_pred.predict_and_update t.branch_pred ~addr ~taken) then begin
    Counters.bump t.counters Event.Branch_mispredicts 1;
    spend t Event.Mispredict_stalls t.config.Config.mispredict_penalty
  end

(* [branch] with pre-resolved counter indices, for compiled block
   terminators.  Same observable behaviour. *)
let branch_hot t ~addr ~taken =
  let tot = t.totals in
  badd tot ix_branches 1;
  if not (Branch_pred.predict_and_update t.branch_pred ~addr ~taken) then begin
    badd tot ix_brmiss 1;
    let p = t.mp_pen in
    if p > 0 then begin
      t.cycles <- t.cycles + p;
      badd tot ix_cycles p;
      badd tot ix_mpstalls p
    end
  end

let fp_issue t ~cls ~dst ~srcs =
  Counters.bump t.counters Event.Fp_ops 1;
  let stall = Fp_unit.issue t.fp ~now:t.cycles ~cls ~dst ~srcs in
  spend t Event.Fp_stalls stall

let fp_use t ~src =
  let stall = Fp_unit.use t.fp ~now:t.cycles ~src in
  spend t Event.Fp_stalls stall

let fp_define t ~dst = Fp_unit.define t.fp ~now:t.cycles ~dst

(* FP issue/use with pre-resolved indices; [fp_issue_hot] is specialised
   to the two sources every [Fbinop] has.  Same observable behaviour. *)
let fp_issue_hot t ~cls ~dst ~s1 ~s2 =
  let tot = t.totals in
  badd tot ix_fpops 1;
  let stall = Fp_unit.issue2 t.fp ~now:t.cycles ~cls ~dst ~s1 ~s2 in
  if stall > 0 then begin
    t.cycles <- t.cycles + stall;
    badd tot ix_cycles stall;
    badd tot ix_fpstalls stall
  end

let fp_use_hot t ~src =
  let stall = Fp_unit.use t.fp ~now:t.cycles ~src in
  if stall > 0 then begin
    let tot = t.totals in
    t.cycles <- t.cycles + stall;
    badd tot ix_cycles stall;
    badd tot ix_fpstalls stall
  end

let fp_frame t ~nregs =
  Fp_unit.ensure t.fp ~nregs;
  Fp_unit.clear t.fp

(* Static event totals of an ordered block, applied in one call: counters
   are only read at block boundaries (the epilogue's budget check and
   telemetry; PIC reads live in the precise tier), so the fixed per-event
   bumps commute with the ordered probe walk below even though the clock
   does not. *)
let block_static t ~insts ~loads ~stores ~fpops =
  let tot = t.totals in
  badd tot ix_insts insts;
  badd tot ix_icrefs insts;
  if loads > 0 then begin
    badd tot ix_loads loads;
    badd tot ix_dcreads loads
  end;
  if stores > 0 then begin
    badd tot ix_stores stores;
    badd tot ix_dcwrites stores
  end;
  if fpops > 0 then badd tot ix_fpops fpops

(* The ordered walk for batched blocks with clock-reading events: probes,
   stalls and the clock advance in program order.  The static event bumps
   are NOT applied here — the caller pairs this with [block_static]. *)
let block_step t ops ~dyn =
  let tot = t.totals in
  for i = 0 to Array.length ops - 1 do
    match Array.unsafe_get ops i with
    | Bfetch { count; leaders } ->
        let cycles = ref count in
        let penalty = t.ic_pen in
        for j = 0 to Array.length leaders - 1 do
          if not (Cache.read_hot t.icache (Array.unsafe_get leaders j))
          then begin
            badd tot ix_icmiss 1;
            cycles := !cycles + penalty
          end
        done;
        t.cycles <- t.cycles + !cycles;
        badd tot ix_cycles !cycles
    | Bload s ->
        if not (Cache.read_hot t.dcache (Array.unsafe_get dyn s)) then begin
          badd tot ix_dcreadmiss 1;
          badd tot ix_dcmiss 1;
          let p = t.dc_pen in
          t.cycles <- t.cycles + p;
          badd tot ix_cycles p
        end
    | Bstore s ->
        let hit = Cache.write_hot t.dcache (Array.unsafe_get dyn s) in
        if not hit then begin
          badd tot ix_dcwritemiss 1;
          badd tot ix_dcmiss 1
        end;
        let drain = if hit then t.sd_hit else t.sd_miss in
        let stall = Store_buffer.push t.store_buffer ~now:t.cycles ~drain in
        if stall > 0 then begin
          t.cycles <- t.cycles + stall;
          badd tot ix_cycles stall;
          badd tot ix_sbstalls stall
        end
    | Bfp_issue { cls; dst; s1; s2 } ->
        let stall = Fp_unit.issue2 t.fp ~now:t.cycles ~cls ~dst ~s1 ~s2 in
        if stall > 0 then begin
          t.cycles <- t.cycles + stall;
          badd tot ix_cycles stall;
          badd tot ix_fpstalls stall
        end
    | Bfp_use src ->
        let stall = Fp_unit.use t.fp ~now:t.cycles ~src in
        if stall > 0 then begin
          t.cycles <- t.cycles + stall;
          badd tot ix_cycles stall;
          badd tot ix_fpstalls stall
        end
    | Bfp_define dst -> Fp_unit.define t.fp ~now:t.cycles ~dst
  done

let reset t =
  Cache.clear t.dcache;
  Cache.clear t.icache;
  Branch_pred.clear t.branch_pred;
  Store_buffer.clear t.store_buffer;
  Fp_unit.clear t.fp;
  Counters.clear t.counters;
  t.cycles <- 0
