(** Set-associative caches with LRU replacement.

    The model tracks tags only (no data — the VM's memory is always
    coherent); an access classifies as hit or miss and updates recency.
    Write policy is chosen per access: the L1 D-cache is write-through
    non-allocating (a store miss does not fill the line, as on the
    UltraSPARC), so stores use [write] and loads use [read]. *)

type t

val create : Config.cache_geometry -> t

(** [read t addr] touches the line containing [addr]; a miss fills it.
    Returns [true] on hit. *)
val read : t -> int -> bool

(** [write t addr] is a non-allocating write probe: recency is updated on a
    hit, and a miss leaves the cache unchanged.  Returns [true] on hit. *)
val write : t -> int -> bool

(** Allocation-free [read], used on the compiled engine's batched block
    path.  Observable behaviour is identical to {!read}. *)
val read_hot : t -> int -> bool

(** Allocation-free [write]; observable behaviour identical to {!write}. *)
val write_hot : t -> int -> bool

(** [read_many t addrs n] reads [addrs.(0..n-1)] in order and returns the
    number of misses; state evolves exactly as [n] successive {!read}s.
    One call per compiled block instead of one per probe. *)
val read_many : t -> int array -> int -> int

(** [probe t addr] tests for presence without disturbing any state. *)
val probe : t -> int -> bool

val clear : t -> unit

val accesses : t -> int
val misses : t -> int

(** Number of sets (for tests). *)
val sets : t -> int
