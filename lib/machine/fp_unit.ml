type t = {
  config : Config.t;
  mutable ready : int array;  (* per FP register: cycle when ready *)
  mutable hi : int;  (* registers 0..hi-1 may hold non-zero stamps *)
}

type op_class = Fp_add | Fp_mul | Fp_div

let create config ~nregs = { config; ready = Array.make (max nregs 1) 0; hi = 0 }

let ensure t ~nregs =
  if nregs > Array.length t.ready then begin
    let ready = Array.make nregs 0 in
    Array.blit t.ready 0 ready 0 (Array.length t.ready);
    t.ready <- ready
  end

let latency t = function
  | Fp_add -> t.config.Config.fp_add_latency
  | Fp_mul -> t.config.Config.fp_mul_latency
  | Fp_div -> t.config.Config.fp_div_latency

let wait t ~now srcs =
  List.fold_left
    (fun acc s ->
      let d = t.ready.(s) - now in
      if d > acc then d else acc)
    0 srcs

let issue t ~now ~cls ~dst ~srcs =
  let stall = wait t ~now srcs in
  let start = now + stall in
  t.ready.(dst) <- start + latency t cls;
  if dst >= t.hi then t.hi <- dst + 1;
  stall

(* [issue] specialised to two sources — every [Fbinop] has exactly two —
   so the hot path folds no list.  Behaviour identical to
   [issue ~srcs:[s1; s2]]. *)
let issue2 t ~now ~cls ~dst ~s1 ~s2 =
  let r = t.ready in
  let d1 = r.(s1) - now in
  let d2 = r.(s2) - now in
  let d = if d1 > d2 then d1 else d2 in
  let stall = if d > 0 then d else 0 in
  r.(dst) <- now + stall + latency t cls;
  if dst >= t.hi then t.hi <- dst + 1;
  stall

let use t ~now ~src =
  let d = t.ready.(src) - now in
  if d > 0 then d else 0

let define t ~now ~dst =
  t.ready.(dst) <- now;
  if dst >= t.hi then t.hi <- dst + 1

(* Only registers at or above the high-water mark can hold non-zero
   stamps, so the fill stops there — a no-op for integer-only frames. *)
let clear t =
  if t.hi > 0 then begin
    Array.fill t.ready 0 t.hi 0;
    t.hi <- 0
  end
