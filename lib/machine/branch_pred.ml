(* Counter states: 0 strongly-not-taken, 1 weakly-not-taken, 2 weakly-taken,
   3 strongly-taken. *)
type t = { mask : int; counters : int array }

let weakly_taken = 2

let create ~table_size =
  if table_size <= 0 || table_size land (table_size - 1) <> 0 then
    invalid_arg "Branch_pred.create: table size must be a power of two";
  { mask = table_size - 1; counters = Array.make table_size weakly_taken }

let[@inline] predict_and_update t ~addr ~taken =
  (* Instructions are 4 bytes; drop the low bits so consecutive branches use
     different entries. *)
  let idx = (addr lsr 2) land t.mask in
  let c = Array.unsafe_get t.counters idx in
  let predicted_taken = c >= 2 in
  Array.unsafe_set t.counters idx
    (if taken then if c < 3 then c + 1 else 3
     else if c > 0 then c - 1
     else 0);
  predicted_taken = taken

let clear t =
  Array.fill t.counters 0 (Array.length t.counters) weakly_taken
