(** Pure, stateless mirrors of the machine's cost semantics, for static
    analyses ({!Pp_analysis}'s abstract cache interpretation and the
    per-path predictor behind [pp predict]).

    Everything here is a function of a validated {!Config.t} — no mutable
    cache, predictor or buffer state — and each bound is certified against
    the mutable implementations:

    - {!line_of}/{!set_of_line} replicate {!Cache}'s address mapping
      exactly (power-of-two geometry, tag = line index);
    - {!store_stall_bound} bounds {!Store_buffer.push}: a stall waits at
      most until the oldest of [entries] queued drains completes, each
      drain at most [store_drain_miss_cycles], all anchored no later than
      the current clock;
    - {!fp_stall_bound} bounds {!Fp_unit.use}/[issue]: a source's ready
      stamp was set to [issue_time + latency] with [issue_time <= now]
      (accounted stalls advance the clock), so the residual wait is at
      most the largest latency;
    - {!cycles} restates the machine's exact cycle identity: every cycle
      the simulator spends is one instruction fetch, a cache-miss
      penalty, or an accounted stall — there are no other clock sources
      in {!Machine}. *)

val is_pow2 : int -> bool

(** Number of sets of a geometry ([size / (line * associativity)]). *)
val num_sets : Config.cache_geometry -> int

(** Line index of an address ([addr / line_bytes] — the tag the cache
    compares). *)
val line_of : Config.cache_geometry -> int -> int

(** Set a line maps to ([line mod num_sets]). *)
val set_of_line : Config.cache_geometry -> int -> int

val set_of_addr : Config.cache_geometry -> int -> int

(** Whether two lines compete for the same set. *)
val same_set : Config.cache_geometry -> int -> int -> bool

(** Distinct lines touched by the byte range [addr, addr + bytes), in
    ascending order.  [bytes <= 0] touches nothing. *)
val lines_of_range : Config.cache_geometry -> addr:int -> bytes:int -> int list

(** {2 Certified per-event stall bounds} *)

(** Upper bound on the stall of one {!Machine.store}:
    [store_buffer_entries * store_drain_miss_cycles]. *)
val store_stall_bound : Config.t -> int

(** Upper bound on the stall of one FP use or issue: the largest FP
    latency. *)
val fp_stall_bound : Config.t -> int

(** Stall of one mispredicted branch; a predicted branch stalls zero. *)
val mispredict_bound : Config.t -> int

(** {2 The cycle identity}

    [Cycles = Instructions + icache_miss_penalty * Icache_misses
            + dcache_miss_penalty * Dcache_read_misses
            + Mispredict_stalls + Store_buffer_stalls + Fp_stalls].

    Write misses add no penalty cycles (write-through, non-allocating);
    their cost surfaces only through store-buffer drain stalls. *)
val cycles :
  Config.t ->
  instructions:int ->
  icache_misses:int ->
  dcache_read_misses:int ->
  mispredict_stalls:int ->
  store_buffer_stalls:int ->
  fp_stalls:int ->
  int
