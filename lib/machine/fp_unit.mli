(** Floating-point scoreboard.

    Each FP register has a ready time; an FP operation issued before its
    operands are ready stalls until they are — the "FP stalls" of PLDI'97
    Table 2.  Latencies come from {!Config}. *)

type t

val create : Config.t -> nregs:int -> t

(** Grow the register file when a procedure uses more FP registers. *)
val ensure : t -> nregs:int -> unit

type op_class = Fp_add | Fp_mul | Fp_div

(** [issue t ~now ~cls ~dst ~srcs] issues an FP op at cycle [now]; returns
    the stall cycles spent waiting for not-ready sources.  The destination
    becomes ready [latency cls] cycles after actual issue. *)
val issue : t -> now:int -> cls:op_class -> dst:int -> srcs:int list -> int

(** [issue] specialised to exactly two sources (every [Fbinop]); identical
    behaviour to [issue ~srcs:[s1; s2]], no list on the hot path. *)
val issue2 :
  t -> now:int -> cls:op_class -> dst:int -> s1:int -> s2:int -> int

(** [use t ~now ~src] stalls a non-FP consumer (store, compare, conversion)
    on a pending FP result; returns stall cycles. *)
val use : t -> now:int -> src:int -> int

(** [define t ~now ~dst] marks [dst] ready at [now] (loads, constants). *)
val define : t -> now:int -> dst:int -> unit

val clear : t -> unit
