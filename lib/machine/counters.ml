type t = {
  totals : int array;  (* per event *)
  mutable pic0_event : Event.t;
  mutable pic1_event : Event.t;
  mutable pic0_base : int;  (* total at last zeroing *)
  mutable pic1_base : int;
}

let create () =
  {
    totals = Array.make Event.count 0;
    pic0_event = Event.Dcache_read_misses;
    pic1_event = Event.Cycles;
    pic0_base = 0;
    pic1_base = 0;
  }

let total t e = t.totals.(Event.to_int e)

let zero_pics t =
  t.pic0_base <- total t t.pic0_event;
  t.pic1_base <- total t t.pic1_event

let select t ~pic0 ~pic1 =
  t.pic0_event <- pic0;
  t.pic1_event <- pic1;
  zero_pics t

let selection t = (t.pic0_event, t.pic1_event)

let bump t e n = t.totals.(Event.to_int e) <- t.totals.(Event.to_int e) + n

(* Hot-path variant for the compiled engine's batched block application:
   the event index is resolved once at block-compile time, and the add
   skips the bounds checks (indices come from [ix], so they are always in
   range). *)
let ix e = Event.to_int e

let[@inline always] unsafe_add t i n =
  Array.unsafe_set t.totals i (Array.unsafe_get t.totals i + n)

let raw_totals t = t.totals

let totals t = List.map (fun e -> (e, total t e)) Event.all

let mask32 = 0xFFFF_FFFF

let read_pic t = function
  | 0 -> (total t t.pic0_event - t.pic0_base) land mask32
  | 1 -> (total t t.pic1_event - t.pic1_base) land mask32
  | k -> invalid_arg (Printf.sprintf "Counters.read_pic: %d" k)

let write_pic t k v =
  let v = v land mask32 in
  match k with
  | 0 -> t.pic0_base <- total t t.pic0_event - v
  | 1 -> t.pic1_base <- total t t.pic1_event - v
  | k -> invalid_arg (Printf.sprintf "Counters.write_pic: %d" k)

let clear t =
  Array.fill t.totals 0 Event.count 0;
  t.pic0_base <- 0;
  t.pic1_base <- 0
