(** Event counters and the two program-visible PICs.

    Internally every event has a 63-bit total (what an external sampling
    harness reads — the paper's "uninstrumented" baseline measurements).
    The two PICs expose a *32-bit wrapping window* onto two selected events:
    user code zeroes and reads them exactly as PP's instrumentation did on
    the UltraSPARC, and the wrap behaviour motivates measuring along short
    intraprocedural paths (§3.3). *)

type t

val create : unit -> t

(** Select which events the two PICs observe (default:
    [Dcache_read_misses], [Cycles]).  Selection re-zeroes both PICs. *)
val select : t -> pic0:Event.t -> pic1:Event.t -> unit

val selection : t -> Event.t * Event.t

val bump : t -> Event.t -> int -> unit

(** The dense index of an event, for {!unsafe_add}. *)
val ix : Event.t -> int

(** [unsafe_add t i n] is [bump] with the event index pre-resolved via
    {!ix} and bounds checks elided — the compiled engine's batched block
    application resolves indices once at block-compile time.  The index
    must come from {!ix}. *)
val unsafe_add : t -> int -> int -> unit

(** The live totals array itself, indexed by {!ix} — the compiled
    engine's batched block path caches it once and bumps entries in
    place, which is observably identical to {!bump}.  Treat as
    write-only; use {!total} to read. *)
val raw_totals : t -> int array

(** Full 63-bit total since creation (harness view). *)
val total : t -> Event.t -> int

val totals : t -> (Event.t * int) list

(** [read_pic t k] (k = 0 or 1): the selected event's count since the last
    zero, wrapped to 32 bits.  @raise Invalid_argument on other [k]. *)
val read_pic : t -> int -> int

(** Zero both PICs (the [wrpic] instruction). *)
val zero_pics : t -> unit

(** [write_pic t k v] makes a subsequent [read_pic t k] return [v] (plus
    whatever accrues after the write) — the save/restore path of §3.1, where
    a callee restores its caller's counter values before returning. *)
val write_pic : t -> int -> int -> unit

(** Reset every total and the PICs. *)
val clear : t -> unit
