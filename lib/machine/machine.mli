(** The assembled microarchitecture model.

    The VM reports every fetch, load, store, branch and FP operation; the
    machine advances a cycle clock, applies stall penalties and maintains
    the event {!Counters}.  Timing is a one-instruction-per-cycle base plus
    penalty cycles — deliberately simple, but every penalty source the paper
    measures (D/I-cache misses, mispredicts, store-buffer pressure, FP
    latency) is present and is perturbed by instrumentation code exactly as
    on real hardware. *)

type t

val create : Config.t -> t
val config : t -> Config.t
val counters : t -> Counters.t

(** Current cycle count. *)
val now : t -> int

(** Fetch one instruction slot at a code address. *)
val fetch : t -> addr:int -> unit

(** Data read of the word at [addr]. *)
val load : t -> addr:int -> unit

(** Data write of the word at [addr]. *)
val store : t -> addr:int -> unit

(** Conditional branch at code address [addr] resolving to [taken]. *)
val branch : t -> addr:int -> taken:bool -> unit

val fp_issue :
  t -> cls:Fp_unit.op_class -> dst:int -> srcs:int list -> unit

(** A non-FP consumer (store, compare, conversion) waits on FP register
    [src]. *)
val fp_use : t -> src:int -> unit

(** FP register [dst] defined by a non-arithmetic producer. *)
val fp_define : t -> dst:int -> unit

(** Make room for a procedure's FP registers and clear their ready times
    (called on procedure entry; the model does not track FP pipelining
    across calls). *)
val fp_frame : t -> nregs:int -> unit

(** Reset all state: caches, predictor, buffers, counters, clock. *)
val reset : t -> unit

(** {2 Batched per-block events}

    The compiled engine reports a basic block's machine events as one
    pre-compiled op sequence instead of a call per instruction.  The op
    list preserves original program order for every clock-sensitive event
    (stores, FP issue/use), so stalls observe the same cycle clock as
    per-instruction reporting; runs of consecutive fetches are fused into
    bulk counter bumps with one icache probe per distinct line, which is
    state-equivalent because the skipped probes re-touch the line probed
    immediately before.  Counters, cycles and cache/predictor state after
    {!block_static} + {!block_step} are bit-identical to the equivalent
    sequence of {!fetch}/{!load}/{!store}/FP calls. *)

type block_op =
  | Bfetch of { count : int; leaders : int array }
      (** [count] instruction fetches; [leaders] holds the first address
          of each distinct icache line in the run, in order *)
  | Bload of int
      (** data read; the operand is [dyn.(i)] at {!block_step} time *)
  | Bstore of int
      (** data write; the operand is [dyn.(i)] at {!block_step} time *)
  | Bfp_issue of { cls : Fp_unit.op_class; dst : int; s1 : int; s2 : int }
  | Bfp_use of int
  | Bfp_define of int

(** [block_static t ~insts ~loads ~stores ~fpops] applies an ordered
    block's fixed event-count bumps in one call.  Counters are only read
    at block boundaries, so these bumps commute with the probe walk of
    {!block_step} even though the clock does not. *)
val block_static :
  t -> insts:int -> loads:int -> stores:int -> fpops:int -> unit

(** [block_step t ops ~dyn] applies the ops in order; [dyn] carries the
    load/store addresses this execution of the block computed.  The walk
    covers only the dynamic part — cache probes, stalls and the cycle
    clock; pair it with {!block_static} for the fixed event counts. *)
val block_step : t -> block_op array -> dyn:int array -> unit

(** Whole-block fast form for batched blocks whose events are only
    fetches and data reads.  Nothing in such a block reads the cycle
    clock, so totals commute: counter bumps are applied in bulk, the
    icache is probed once per distinct line of the block's body
    ([leaders], in program order) and the dcache once per load
    ([dyn.(0..nloads-1)], in program order).  Resulting counters, cycles
    and cache state are bit-identical to the per-instruction calls. *)
val block_bulk :
  t -> fetches:int -> leaders:int array -> dyn:int array -> nloads:int -> unit

(** A compiled block's terminator fetch.  [probe:false] elides the icache
    probe when the terminator shares its line with the block's last body
    fetch (the skipped probe would hit an untouched, already
    most-recent line — state-equivalent). *)
val fetch_term : t -> addr:int -> probe:bool -> unit

(** {!branch} with counter indices pre-resolved, for compiled block
    terminators; same observable behaviour. *)
val branch_hot : t -> addr:int -> taken:bool -> unit

(** {2 Per-instruction hot variants}

    {!fetch}/{!load}/{!store}/{!fp_issue}/{!fp_use} with counter indices
    pre-resolved and allocation-free cache probes, for the compiled
    engine's precise tier.  Observable behaviour (counters, cycles, cache
    and scoreboard state) is bit-identical to the plain entry points. *)

val fetch_hot : t -> addr:int -> unit
val load_hot : t -> addr:int -> unit
val store_hot : t -> addr:int -> unit

val fp_issue_hot :
  t -> cls:Fp_unit.op_class -> dst:int -> s1:int -> s2:int -> unit

val fp_use_hot : t -> src:int -> unit
