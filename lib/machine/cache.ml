type t = {
  line_shift : int;
  set_mask : int;
  ways : int;
  tags : int array;  (* sets * ways; -1 = invalid *)
  stamp : int array;  (* LRU recency stamps, parallel to tags *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create (g : Config.cache_geometry) =
  let n_sets = g.size_bytes / (g.line_bytes * g.associativity) in
  {
    line_shift = log2 g.line_bytes;
    set_mask = n_sets - 1;
    ways = g.associativity;
    tags = Array.make (n_sets * g.associativity) (-1);
    stamp = Array.make (n_sets * g.associativity) 0;
    clock = 0;
    accesses = 0;
    misses = 0;
  }

let sets t = (t.set_mask + 1 : int)

let find t addr =
  let line = addr lsr t.line_shift in
  let set = line land t.set_mask in
  let base = set * t.ways in
  let rec scan i =
    if i >= t.ways then None
    else if t.tags.(base + i) = line then Some (base + i)
    else scan (i + 1)
  in
  (base, line, scan 0)

let touch t slot =
  t.clock <- t.clock + 1;
  t.stamp.(slot) <- t.clock

let victim t base =
  (* Least-recently-used way in the set; empty ways are oldest of all since
     their stamp is 0 and the clock starts at 1. *)
  let best = ref base in
  for i = 1 to t.ways - 1 do
    if t.stamp.(base + i) < t.stamp.(!best) then best := base + i
  done;
  !best

let read t addr =
  t.accesses <- t.accesses + 1;
  let base, line, hit = find t addr in
  match hit with
  | Some slot ->
      touch t slot;
      true
  | None ->
      t.misses <- t.misses + 1;
      let slot = victim t base in
      t.tags.(slot) <- line;
      touch t slot;
      false

let write t addr =
  t.accesses <- t.accesses + 1;
  let _base, _line, hit = find t addr in
  match hit with
  | Some slot ->
      touch t slot;
      true
  | None ->
      t.misses <- t.misses + 1;
      false

(* Allocation-free variants of [read]/[write] for the compiled engine's
   batched block application.  Same observable behaviour — accesses,
   misses, tags, stamps and clock advance exactly as in [read]/[write] —
   but the way scan is inlined so no option or tuple is boxed per
   probe. *)

let read_hot t addr =
  t.accesses <- t.accesses + 1;
  let line = addr lsr t.line_shift in
  let ways = t.ways in
  if ways = 1 then begin
    (* Direct-mapped: the set's one slot is both hit candidate and
       victim, and a read always stamps it. *)
    let set = line land t.set_mask in
    let clock = t.clock + 1 in
    t.clock <- clock;
    Array.unsafe_set t.stamp set clock;
    if Array.unsafe_get t.tags set = line then true
    else begin
      t.misses <- t.misses + 1;
      Array.unsafe_set t.tags set line;
      false
    end
  end
  else if ways = 2 then begin
    let base = (line land t.set_mask) * 2 in
    let tags = t.tags and stamp = t.stamp in
    let clock = t.clock + 1 in
    t.clock <- clock;
    if Array.unsafe_get tags base = line then begin
      Array.unsafe_set stamp base clock;
      true
    end
    else if Array.unsafe_get tags (base + 1) = line then begin
      Array.unsafe_set stamp (base + 1) clock;
      true
    end
    else begin
      t.misses <- t.misses + 1;
      (* LRU victim; ties pick the first way, as [victim] does. *)
      let v =
        if Array.unsafe_get stamp (base + 1) < Array.unsafe_get stamp base
        then base + 1
        else base
      in
      Array.unsafe_set tags v line;
      Array.unsafe_set stamp v clock;
      false
    end
  end
  else begin
    let base = (line land t.set_mask) * ways in
    let tags = t.tags in
    let rec scan i =
      if i >= ways then begin
        t.misses <- t.misses + 1;
        let slot = victim t base in
        Array.unsafe_set tags slot line;
        touch t slot;
        false
      end
      else if Array.unsafe_get tags (base + i) = line then begin
        touch t (base + i);
        true
      end
      else scan (i + 1)
    in
    scan 0
  end

let write_hot t addr =
  t.accesses <- t.accesses + 1;
  let line = addr lsr t.line_shift in
  let ways = t.ways in
  if ways = 1 then begin
    (* A write only stamps (and advances the clock) on a hit. *)
    let set = line land t.set_mask in
    if Array.unsafe_get t.tags set = line then begin
      let clock = t.clock + 1 in
      t.clock <- clock;
      Array.unsafe_set t.stamp set clock;
      true
    end
    else begin
      t.misses <- t.misses + 1;
      false
    end
  end
  else if ways = 2 then begin
    let base = (line land t.set_mask) * 2 in
    let tags = t.tags in
    if Array.unsafe_get tags base = line then begin
      let clock = t.clock + 1 in
      t.clock <- clock;
      Array.unsafe_set t.stamp base clock;
      true
    end
    else if Array.unsafe_get tags (base + 1) = line then begin
      let clock = t.clock + 1 in
      t.clock <- clock;
      Array.unsafe_set t.stamp (base + 1) clock;
      true
    end
    else begin
      t.misses <- t.misses + 1;
      false
    end
  end
  else begin
    let base = (line land t.set_mask) * ways in
    let tags = t.tags in
    let rec scan i =
      if i >= ways then begin
        t.misses <- t.misses + 1;
        false
      end
      else if Array.unsafe_get tags (base + i) = line then begin
        touch t (base + i);
        true
      end
      else scan (i + 1)
    in
    scan 0
  end

(* One call per block instead of one per probe: [read_many t addrs n]
   reads the first [n] addresses of [addrs] in order and returns how many
   missed.  State evolves exactly as [n] successive [read]s; the common
   geometries (direct-mapped, 2-way) get tight specialised loops. *)

let read_many_direct t addrs n =
  let tags = t.tags and stamp = t.stamp in
  let shift = t.line_shift and mask = t.set_mask in
  let clock = ref t.clock and misses = ref 0 in
  for i = 0 to n - 1 do
    let line = Array.unsafe_get addrs i lsr shift in
    let set = line land mask in
    if Array.unsafe_get tags set <> line then begin
      incr misses;
      Array.unsafe_set tags set line
    end;
    incr clock;
    Array.unsafe_set stamp set !clock
  done;
  t.clock <- !clock;
  t.accesses <- t.accesses + n;
  t.misses <- t.misses + !misses;
  !misses

let read_many_2way t addrs n =
  let tags = t.tags and stamp = t.stamp in
  let shift = t.line_shift and mask = t.set_mask in
  let clock = ref t.clock and misses = ref 0 in
  for i = 0 to n - 1 do
    let line = Array.unsafe_get addrs i lsr shift in
    let base = (line land mask) * 2 in
    let slot =
      if Array.unsafe_get tags base = line then base
      else if Array.unsafe_get tags (base + 1) = line then base + 1
      else begin
        incr misses;
        (* LRU victim; ties pick the first way, as [victim] does. *)
        let v =
          if Array.unsafe_get stamp (base + 1) < Array.unsafe_get stamp base
          then base + 1
          else base
        in
        Array.unsafe_set tags v line;
        v
      end
    in
    incr clock;
    Array.unsafe_set stamp slot !clock
  done;
  t.clock <- !clock;
  t.accesses <- t.accesses + n;
  t.misses <- t.misses + !misses;
  !misses

let read_many t addrs n =
  if t.ways = 1 then read_many_direct t addrs n
  else if t.ways = 2 then read_many_2way t addrs n
  else begin
    let misses0 = t.misses in
    for i = 0 to n - 1 do
      ignore (read_hot t (Array.unsafe_get addrs i))
    done;
    t.misses - misses0
  end

let probe t addr =
  let _, _, hit = find t addr in
  hit <> None

let clear t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamp 0 (Array.length t.stamp) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.misses <- 0

let accesses t = t.accesses
let misses t = t.misses
