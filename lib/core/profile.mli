(** Flow-sensitive profiles: per-procedure path tables with a frequency and
    two hardware-metric accumulators per executed path (the PICs' events,
    recorded in [pic0]/[pic1]). *)

module Event = Pp_machine.Event

type path_metrics = { freq : int; m0 : int; m1 : int }

type proc_profile = {
  proc : string;
  numbering : Ball_larus.t;
  paths : (int * path_metrics) list;  (** executed paths, by path sum *)
}

type t = {
  pic0 : Event.t;
  pic1 : Event.t;
  procs : proc_profile list;
}

val total_freq : t -> int
val total_m0 : t -> int
val total_m1 : t -> int

val find_proc : t -> string -> proc_profile option

(** The identity of {!merge}: no procedures, no paths. *)
val empty : pic0:Event.t -> pic1:Event.t -> t

(** [merge a b] sums the two profiles: the union of their procedures, each
    path's frequency and metric accumulators added per path sum.  The result
    is canonical — procedures sorted by name, paths by path sum — so merge is
    commutative and associative up to that order, with {!empty} as identity.
    Numbering is taken from the first operand that profiles the procedure.
    @raise Invalid_argument if the PIC selections differ, or if a procedure
    is numbered with a different path count in the two profiles (the shards
    came from different programs). *)
val merge : t -> t -> t

(** Decode a path sum of a profiled procedure. *)
val decode : proc_profile -> int -> Ball_larus.path

(** Executed paths the predicate rejects — the empty list is exactly the
    soundness condition a static feasibility pruner must satisfy against
    every dynamic profile. *)
val observed_infeasible :
  proc_profile -> feasible:(int -> bool) -> (int * path_metrics) list

(** Executed paths of one procedure sorted by decreasing [m0]. *)
val ranked_paths : proc_profile -> (int * path_metrics) list

(** Pretty-print the top [n] paths of every procedure. *)
val pp_top : n:int -> Format.formatter -> t -> unit
