(** The binary shard wire format of the streaming aggregator ([pp serve]).

    A saved profile ({!Profile_io.saved}) streams as a sequence of
    self-delimiting binary frames — not as the line-text v2 file — so an
    aggregator can merge each procedure the moment it arrives and a torn
    or damaged connection degrades to a cleanly decodable frame prefix,
    the same salvage discipline the v2 text format has per line.

    {2 Frames}

    {v
    +------+-------------+-------------+------------------+
    | kind | len: u32 LE | crc: u32 LE | payload (len B)  |
    +------+-------------+-------------+------------------+
    v}

    [kind] is ['H'] (hello: stream header), ['P'] (one procedure's
    records: paths plus optional feasible / coverage annotations) or
    ['E'] (end: whole-shard totals, used to verify the stream arrived in
    full).  [crc] is the {!Crc32} digest of the payload — the same
    polynomial the v2 text shards carry per line.  Payload integers are
    zigzag LEB128 varints; strings are length-prefixed.

    A well-formed stream is [Hello, Proc*, End].  Streams decoded from a
    prefix (no [End], or a {!reader} reporting [`Corrupt]) are salvaged
    partials: every complete frame before the damage is trustworthy. *)

module Event = Pp_machine.Event

(** Wire format version inside the hello frame (currently 1). *)
val version : int

(** Frames advertising a payload longer than this (16 MiB) are rejected
    as corrupt before any allocation. *)
val max_payload : int

type header = {
  program_hash : string;
  mode : string;
  pic0 : Event.t;
  pic1 : Event.t;
}

type proc_frame = {
  name : string;
  npaths : int;  (** potential paths; 0 for pure annotation carriers *)
  feasible : int option;
  coverage : (int * int) option;  (** (sampled, total) commit window *)
  paths : (int * Profile.path_metrics) list;
}

type summary = {
  nprocs : int;  (** [Proc] frames the stream carried *)
  freq : int;  (** whole-shard totals, as {!Profile_io.totals} *)
  m0 : int;
  m1 : int;
}

type frame = Hello of header | Proc of proc_frame | End of summary

(** {2 Encoding} *)

(** One framed binary string. *)
val encode_frame : frame -> string

(** The canonical frame sequence of a shard: hello, one proc frame per
    procedure (annotation-only procedures included), end. *)
val frames_of_saved : Profile_io.saved -> frame list

(** {!frames_of_saved} concatenated — the full byte stream a client
    writes. *)
val encode_saved : Profile_io.saved -> string

(** Reassemble a decoded stream; inverse of {!frames_of_saved} on
    canonical shards ([saved_of_frames h ps] with a prefix of the proc
    frames yields the salvaged partial). *)
val saved_of_frames : header -> proc_frame list -> Profile_io.saved

(** {2 Incremental decoding}

    Feed bytes as they arrive off a socket; pull complete frames out.
    Corruption is sticky: once a frame fails its checksum or parse, the
    reader refuses everything after it (the stream's framing can no
    longer be trusted), and the frames already returned form the valid
    prefix. *)

type reader

val reader : unit -> reader

(** Append raw bytes. *)
val feed : reader -> string -> unit

(** [`Frame f] — one complete frame consumed; call again.  [`Need_more]
    — the buffer holds no complete frame.  [`Corrupt msg] — damage
    detected (bad kind byte, oversized length, checksum mismatch,
    malformed payload); sticky. *)
val next : reader -> [ `Frame of frame | `Need_more | `Corrupt of string ]

(** Unconsumed buffered bytes (diagnostic). *)
val leftover : reader -> int
