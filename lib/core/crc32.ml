(* CRC-32 (IEEE 802.3), table-driven, reflected, init/xorout 0xffffffff —
   identical to zlib's crc32().  Masked to 32 bits so the value is a small
   non-negative int on 64-bit OCaml. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let digest s =
  let table = Lazy.force table in
  let crc = ref 0xffffffff in
  String.iter
    (fun ch ->
      crc := table.((!crc lxor Char.code ch) land 0xff) lxor (!crc lsr 8))
    s;
  !crc lxor 0xffffffff

let tag line =
  if String.contains line '\n' then invalid_arg "Crc32.tag: embedded newline";
  Printf.sprintf "%s %08x" line (digest line)

let untag line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some i ->
      let content = String.sub line 0 i in
      let token = String.sub line (i + 1) (String.length line - i - 1) in
      (* Exactly the 8 lowercase hex digits %08x emits: int_of_string
         would also accept "0X", underscores and uppercase, which would
         let some single-character damage in the token itself pass. *)
      let canonical =
        String.length token = 8
        && String.for_all
             (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
             token
      in
      if canonical && int_of_string ("0x" ^ token) = digest content then
        Some content
      else None
