module Digraph = Pp_graph.Digraph
module Spanning_tree = Pp_graph.Spanning_tree
module Cfg = Pp_ir.Cfg

type t = {
  cfg : Cfg.t;
  helper : Digraph.t;  (* cfg graph + fictional EXIT->ENTRY edge *)
  fictional : Digraph.edge;
  tree_ids : (int, unit) Hashtbl.t;  (* helper edge ids in the tree *)
  chords : (Digraph.edge * int) list;  (* real cfg edges, counter index *)
}

let plan ?(weights = fun (_ : Digraph.edge) -> 1) (cfg : Cfg.t) =
  let helper = Digraph.copy cfg.Cfg.graph in
  let fictional = Digraph.add_edge helper cfg.Cfg.exit cfg.Cfg.entry in
  let weight (e : Digraph.edge) =
    if e.id = fictional.id then max_int else weights e
  in
  let tree = Spanning_tree.maximum helper ~weight in
  let tree_ids = Hashtbl.create 16 in
  List.iter (fun (e : Digraph.edge) -> Hashtbl.replace tree_ids e.id ()) tree;
  assert (Hashtbl.mem tree_ids fictional.id);
  let chords =
    Digraph.fold_edges
      (fun e acc ->
        if Hashtbl.mem tree_ids e.id || e.id = fictional.id then acc
        else e :: acc)
      helper []
    |> List.rev
    |> List.mapi (fun i e -> (Digraph.edge cfg.Cfg.graph e.Digraph.id, i))
  in
  { cfg; helper; fictional; tree_ids; chords }

let cfg t = t.cfg
let chords t = t.chords
let num_counters t = List.length t.chords

let merge_counts t a b =
  let n = num_counters t in
  if Array.length a <> n || Array.length b <> n then
    invalid_arg
      (Printf.sprintf
         "Edge_profile.merge_counts: expected %d counters, got %d and %d" n
         (Array.length a) (Array.length b));
  Array.init n (fun i -> a.(i) + b.(i))

let reconstruct t ~counts =
  if Array.length counts <> num_counters t then
    invalid_arg "Edge_profile.reconstruct: wrong counter count";
  let g = t.helper in
  let n_edges = Digraph.num_edges g in
  let known = Array.make n_edges None in
  List.iter
    (fun ((e : Digraph.edge), i) -> known.(e.id) <- Some counts.(i))
    t.chords;
  (* Flow conservation at every vertex (ENTRY and EXIT balance through the
     fictional edge).  Repeatedly resolve vertices with exactly one unknown
     incident edge — over a tree this always terminates. *)
  let unknown_at v =
    let collect es = List.filter (fun (e : Digraph.edge) -> known.(e.id) = None) es in
    (collect (Digraph.in_edges g v), collect (Digraph.out_edges g v))
  in
  let resolve v =
    match unknown_at v with
    | [ e ], [] | [], [ e ] ->
        let sum dir =
          List.fold_left
            (fun acc (e' : Digraph.edge) ->
              if e'.id = e.id then acc
              else
                match known.(e'.id) with
                | Some c -> acc + c
                | None -> acc)
            0 dir
        in
        let inflow = sum (Digraph.in_edges g v) in
        let outflow = sum (Digraph.out_edges g v) in
        let value =
          if List.exists (fun (x : Digraph.edge) -> x.id = e.id)
               (Digraph.in_edges g v)
          then outflow - inflow
          else inflow - outflow
        in
        known.(e.id) <- Some value;
        true
    | [], [] -> false
    | _ -> false
  in
  let progress = ref true in
  while !progress do
    progress := false;
    Digraph.iter_vertices
      (fun v -> if resolve v then progress := true)
      g
  done;
  Digraph.fold_edges
    (fun e acc ->
      if e.id = t.fictional.id then acc
      else
        match known.(e.id) with
        | Some c -> (Digraph.edge t.cfg.Cfg.graph e.id, c) :: acc
        | None ->
            invalid_arg
              "Edge_profile.reconstruct: underdetermined system (graph not \
               connected through the tree?)")
    t.helper []
  |> List.rev

let block_counts t ~counts =
  let edges = reconstruct t ~counts in
  let table = Hashtbl.create 16 in
  List.iter
    (fun ((e : Digraph.edge), c) ->
      match Cfg.label_of_vertex t.cfg e.dst with
      | Some l ->
          Hashtbl.replace table l
            (c + Option.value ~default:0 (Hashtbl.find_opt table l))
      | None -> ())
    edges;
  Hashtbl.fold (fun l c acc -> (l, c) :: acc) table [] |> List.sort compare
