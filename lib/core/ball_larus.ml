module Digraph = Pp_graph.Digraph
module Dfs = Pp_graph.Dfs
module Topo = Pp_graph.Topo
module Spanning_tree = Pp_graph.Spanning_tree
module Cfg = Pp_ir.Cfg

exception Unsupported of string

(* What a DAG edge stands for in the original CFG. *)
type dag_edge_kind =
  | Real of Digraph.edge  (* the original (non-backedge) edge *)
  | Pseudo_start of Digraph.edge  (* ENTRY -> w for backedge v -> w *)
  | Pseudo_end of Digraph.edge  (* v -> EXIT for backedge v -> w *)

type t = {
  cfg : Cfg.t;
  dag : Digraph.t;
  np : int array;  (* per DAG vertex *)
  vals : int array;  (* per DAG edge id *)
  kinds : dag_edge_kind array;  (* per DAG edge id *)
  dag_edge_of_cfg : int array;  (* cfg edge id -> dag edge id, -1 = backedge *)
  pseudo_start_of : int array;  (* cfg backedge id -> dag edge id, else -1 *)
  pseudo_end_of : int array;
  backedges : Digraph.edge list;
  is_backedge : bool array;  (* per cfg edge id *)
}

let unsupported fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

(* NP values can explode combinatorially; detect 63-bit overflow. *)
let checked_add name a b =
  let s = a + b in
  if s < 0 then unsupported "%s: path count overflow" name;
  s

let build (cfg : Cfg.t) =
  let g = cfg.graph in
  let name = cfg.proc.Pp_ir.Proc.name in
  let dfs = Dfs.run g ~root:cfg.entry in
  Digraph.iter_vertices
    (fun v ->
      if not (Dfs.reachable dfs v) then
        unsupported "%s: vertex %s unreachable from ENTRY" name
          (Cfg.vertex_name cfg v))
    g;
  let backedges = Dfs.back_edges dfs in
  let is_backedge = Array.make (Digraph.num_edges g) false in
  List.iter (fun (e : Digraph.edge) -> is_backedge.(e.id) <- true) backedges;
  (* Build the transformed acyclic graph over the same vertex set. *)
  let dag = Digraph.create () in
  ignore (Digraph.add_vertices dag (Digraph.num_vertices g));
  let kinds = ref [] in
  let dag_edge_of_cfg = Array.make (Digraph.num_edges g) (-1) in
  let pseudo_start_of = Array.make (Digraph.num_edges g) (-1) in
  let pseudo_end_of = Array.make (Digraph.num_edges g) (-1) in
  Digraph.iter_edges
    (fun e ->
      if not is_backedge.(e.id) then begin
        let de = Digraph.add_edge dag e.src e.dst in
        dag_edge_of_cfg.(e.id) <- de.id;
        kinds := Real e :: !kinds
      end)
    g;
  List.iter
    (fun (b : Digraph.edge) ->
      let ps = Digraph.add_edge dag cfg.entry b.dst in
      pseudo_start_of.(b.id) <- ps.id;
      kinds := Pseudo_start b :: !kinds;
      let pe = Digraph.add_edge dag b.src cfg.exit in
      pseudo_end_of.(b.id) <- pe.id;
      kinds := Pseudo_end b :: !kinds)
    backedges;
  let kinds = Array.of_list (List.rev !kinds) in
  (* First pass: NP by reverse topological order (successors first). *)
  let order =
    match Topo.reverse_sort dag with
    | order -> order
    | exception Topo.Cycle v ->
        unsupported
          "%s: transformed graph still cyclic at %s (irreducible loop not \
           broken by DFS backedges?)"
          name (Cfg.vertex_name cfg v)
  in
  let np = Array.make (Digraph.num_vertices dag) 0 in
  np.(cfg.exit) <- 1;
  List.iter
    (fun v ->
      if v <> cfg.exit then
        np.(v) <-
          List.fold_left
            (fun acc (e : Digraph.edge) ->
              checked_add name acc np.(e.dst))
            0
            (Digraph.out_edges dag v))
    order;
  if np.(cfg.entry) = 0 then
    unsupported "%s: ENTRY cannot reach EXIT" name;
  Digraph.iter_vertices
    (fun v ->
      if np.(v) = 0 then
        unsupported "%s: vertex %s cannot reach EXIT" name
          (Cfg.vertex_name cfg v))
    dag;
  (* Second pass: Val(e_i) = sum of NP over earlier successors. *)
  let vals = Array.make (Digraph.num_edges dag) 0 in
  Digraph.iter_vertices
    (fun v ->
      let acc = ref 0 in
      List.iter
        (fun (e : Digraph.edge) ->
          vals.(e.id) <- !acc;
          acc := !acc + np.(e.dst))
        (Digraph.out_edges dag v))
    dag;
  {
    cfg;
    dag;
    np;
    vals;
    kinds;
    dag_edge_of_cfg;
    pseudo_start_of;
    pseudo_end_of;
    backedges;
    is_backedge;
  }

let cfg t = t.cfg
let num_paths t = t.np.(t.cfg.entry)
let np t v = t.np.(v)
let backedges t = t.backedges

let is_backedge t (e : Digraph.edge) =
  e.id < Array.length t.is_backedge && t.is_backedge.(e.id)

let backedge_between t ~src ~dst =
  List.find_opt
    (fun (e : Digraph.edge) -> e.src = src && e.dst = dst)
    t.backedges

let edge_val t (e : Digraph.edge) =
  if e.id >= Array.length t.is_backedge || t.dag_edge_of_cfg.(e.id) < 0 then
    invalid_arg "Ball_larus.edge_val: backedge or foreign edge";
  t.vals.(t.dag_edge_of_cfg.(e.id))

let backedge_pseudo_vals t (e : Digraph.edge) =
  if e.id >= Array.length t.is_backedge || not t.is_backedge.(e.id) then
    invalid_arg "Ball_larus.backedge_pseudo_vals: not a backedge";
  (t.vals.(t.pseudo_start_of.(e.id)), t.vals.(t.pseudo_end_of.(e.id)))

(* {2 Paths} *)

type source = From_entry | After_backedge of Digraph.edge
type sink = To_exit | Into_backedge of Digraph.edge

type path = {
  source : source;
  blocks : Pp_ir.Block.label list;
  sink : sink;
}

(* The DAG edge sequence of a path sum, ENTRY to EXIT. *)
let walk_edges t sum =
  if sum < 0 || sum >= num_paths t then
    invalid_arg
      (Printf.sprintf "Ball_larus.decode: sum %d not in [0, %d)" sum
         (num_paths t));
  let rec walk v rem acc_edges =
    if v = t.cfg.exit then begin
      assert (rem = 0);
      List.rev acc_edges
    end
    else begin
      (* Successor intervals [Val(e), Val(e) + NP(dst)) partition
         [0, NP(v)); find the containing one. *)
      let chosen =
        List.find_opt
          (fun (e : Digraph.edge) ->
            t.vals.(e.id) <= rem && rem < t.vals.(e.id) + t.np.(e.dst))
          (Digraph.out_edges t.dag v)
      in
      match chosen with
      | None -> assert false
      | Some e -> walk e.dst (rem - t.vals.(e.id)) (e :: acc_edges)
    end
  in
  walk t.cfg.entry sum []

let path_of_edges t edges =
  let source =
    match edges with
    | first :: _ -> (
        match t.kinds.(first.Digraph.id) with
        | Pseudo_start b -> After_backedge b
        | Real _ -> From_entry
        | Pseudo_end _ -> assert false)
    | [] -> assert false
  in
  let sink =
    match List.rev edges with
    | last :: _ -> (
        match t.kinds.(last.Digraph.id) with
        | Pseudo_end b -> Into_backedge b
        | Real _ -> To_exit
        | Pseudo_start _ -> assert false)
    | [] -> assert false
  in
  let blocks =
    List.filter_map
      (fun (e : Digraph.edge) -> Cfg.label_of_vertex t.cfg e.dst)
      edges
  in
  { source; blocks; sink }

let decode t sum = path_of_edges t (walk_edges t sum)

(* {2 Traversals} *)

type traversal = {
  sum : int;
  path : path;
  real_edges : Digraph.edge list;
}

let traverse t sum =
  let edges = walk_edges t sum in
  let real_edges =
    List.filter_map
      (fun (e : Digraph.edge) ->
        match t.kinds.(e.id) with
        | Real cfg_e -> Some cfg_e
        | Pseudo_start _ | Pseudo_end _ -> None)
      edges
  in
  { sum; path = path_of_edges t edges; real_edges }

(* {2 Pruned numberings} *)

type pruned = {
  numbering : t;
  sums : int array;  (* feasible path sums, strictly ascending *)
}

let prune t ~feasible =
  let keep = ref [] in
  for sum = num_paths t - 1 downto 0 do
    if feasible sum then keep := sum :: !keep
  done;
  { numbering = t; sums = Array.of_list !keep }

let num_feasible p = Array.length p.sums
let feasible_sums p = Array.copy p.sums
let sum_of_index p i = p.sums.(i)

let index_of_sum p sum =
  let lo = ref 0 and hi = ref (Array.length p.sums - 1) in
  let found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if p.sums.(mid) = sum then found := Some mid
    else if p.sums.(mid) < sum then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let encode t path =
  let fail fmt =
    Format.kasprintf (fun s -> invalid_arg ("Ball_larus.encode: " ^ s)) fmt
  in
  if path.blocks = [] then fail "empty path";
  let first_block = List.hd path.blocks in
  (* The first DAG step out of ENTRY: the real entry edge, or the pseudo
     start edge of the backedge named by the source. *)
  let first_edge =
    let wanted (k : dag_edge_kind) =
      match (path.source, k) with
      | From_entry, Real _ -> true
      | After_backedge b, Pseudo_start b' -> b.Digraph.id = b'.Digraph.id
      | _ -> false
    in
    match
      List.find_opt
        (fun (e : Digraph.edge) ->
          e.dst = first_block && wanted t.kinds.(e.id))
        (Digraph.out_edges t.dag t.cfg.entry)
    with
    | Some e -> e
    | None -> fail "no matching entry step to L%d" first_block
  in
  let step_between u w =
    match
      List.find_opt
        (fun (e : Digraph.edge) ->
          e.dst = w
          && match t.kinds.(e.id) with Real _ -> true | _ -> false)
        (Digraph.out_edges t.dag u)
    with
    | Some e -> e
    | None -> fail "no CFG edge L%d -> L%d" u w
  in
  let rec interior acc = function
    | [] | [ _ ] -> List.rev acc
    | u :: (w :: _ as rest) -> interior (step_between u w :: acc) rest
  in
  let last_block =
    List.fold_left (fun _ b -> b) first_block path.blocks
  in
  let last_edge =
    match path.sink with
    | To_exit -> (
        match
          List.find_opt
            (fun (e : Digraph.edge) ->
              e.dst = t.cfg.exit
              && match t.kinds.(e.id) with Real _ -> true | _ -> false)
            (Digraph.out_edges t.dag last_block)
        with
        | Some e -> e
        | None -> fail "L%d does not return" last_block)
    | Into_backedge b ->
        if b.Digraph.src <> last_block then
          fail "backedge source L%d does not end the path" b.Digraph.src;
        Digraph.edge t.dag t.pseudo_end_of.(b.Digraph.id)
  in
  let edges = (first_edge :: interior [] path.blocks) @ [ last_edge ] in
  List.fold_left (fun acc (e : Digraph.edge) -> acc + t.vals.(e.id)) 0 edges

let pp_path ppf path =
  let pp_blocks ppf blocks =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
      (fun ppf l -> Format.fprintf ppf "L%d" l)
      ppf blocks
  in
  (match path.source with
  | From_entry -> Format.pp_print_string ppf "ENTRY -> "
  | After_backedge b ->
      Format.fprintf ppf "(after backedge L%d -> L%d) " b.Digraph.src
        b.Digraph.dst);
  pp_blocks ppf path.blocks;
  match path.sink with
  | To_exit -> Format.pp_print_string ppf " -> EXIT"
  | Into_backedge b ->
      Format.fprintf ppf " (takes backedge L%d -> L%d)" b.Digraph.src
        b.Digraph.dst

(* {2 Instrumentation placement} *)

type backedge_op = {
  backedge : Digraph.edge;
  end_add : int;
  reset_to : int;
}

type placement = {
  init_needed : bool;
  increments : (Digraph.edge * int) list;
  backedge_ops : backedge_op list;
}

let simple_placement t =
  let increments =
    Digraph.fold_edges
      (fun e acc ->
        if t.is_backedge.(e.id) then acc
        else
          let v = t.vals.(t.dag_edge_of_cfg.(e.id)) in
          if v = 0 then acc else (e, v) :: acc)
      t.cfg.graph []
    |> List.rev
  in
  let backedge_ops =
    List.map
      (fun b ->
        let start_val, end_val = backedge_pseudo_vals t b in
        { backedge = b; end_add = end_val; reset_to = start_val })
      t.backedges
  in
  { init_needed = true; increments; backedge_ops }

let optimized_placement ?(weights = fun (_ : Digraph.edge) -> 1) t =
  (* Work on a copy of the DAG extended with a fictional EXIT -> ENTRY edge
     that is forced into the spanning tree (it cannot carry code). *)
  let helper = Digraph.copy t.dag in
  let fictional = Digraph.add_edge helper t.cfg.exit t.cfg.entry in
  let dag_val (e : Digraph.edge) =
    if e.id = fictional.id then 0 else t.vals.(e.id)
  in
  (* Pseudo edges execute as often as their backedge; real edges use the
     caller's estimate. *)
  let weight (e : Digraph.edge) =
    if e.id = fictional.id then max_int
    else
      match t.kinds.(e.id) with
      | Real cfg_e -> weights cfg_e
      | Pseudo_start b | Pseudo_end b -> weights b
  in
  let tree = Spanning_tree.maximum helper ~weight in
  assert (List.exists (fun (e : Digraph.edge) -> e.id = fictional.id) tree);
  (* Tree potentials: theta(ENTRY) = 0 and theta(dst) - theta(src) = Val(e)
     along every tree edge; then each chord's increment is
     Inc(c) = Val(c) + theta(src c) - theta(dst c), and the chord increments
     along any complete path sum to the path's Val sum. *)
  let n = Digraph.num_vertices helper in
  let theta = Array.make n 0 in
  let visited = Array.make n false in
  visited.(t.cfg.entry) <- true;
  let adj = Array.make n [] in
  List.iter
    (fun (e : Digraph.edge) ->
      adj.(e.src) <- (e, true) :: adj.(e.src);
      adj.(e.dst) <- (e, false) :: adj.(e.dst))
    tree;
  let queue = Queue.create () in
  Queue.add t.cfg.entry queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun ((e : Digraph.edge), forward) ->
        let w = if forward then e.dst else e.src in
        if not visited.(w) then begin
          visited.(w) <- true;
          theta.(w) <-
            (if forward then theta.(v) + dag_val e
             else theta.(v) - dag_val e);
          Queue.add w queue
        end)
      adj.(v)
  done;
  let in_tree = Array.make (Digraph.num_edges helper) false in
  List.iter (fun (e : Digraph.edge) -> in_tree.(e.id) <- true) tree;
  let inc (e : Digraph.edge) =
    if in_tree.(e.id) then 0 else dag_val e + theta.(e.src) - theta.(e.dst)
  in
  let increments = ref [] in
  Digraph.iter_edges
    (fun e ->
      if e.id <> fictional.id then
        match t.kinds.(e.id) with
        | Real cfg_e ->
            let v = inc e in
            if v <> 0 then increments := (cfg_e, v) :: !increments
        | Pseudo_start _ | Pseudo_end _ -> ())
    helper;
  let backedge_ops =
    List.map
      (fun (b : Digraph.edge) ->
        let ps = Digraph.edge helper t.pseudo_start_of.(b.id) in
        let pe = Digraph.edge helper t.pseudo_end_of.(b.id) in
        { backedge = b; end_add = inc pe; reset_to = inc ps })
      t.backedges
  in
  {
    init_needed = true;
    increments = List.rev !increments;
    backedge_ops;
  }
