type call_kind = Direct | Indirect

type 'a node = {
  node_proc : string;
  node_nsites : int;
  node_parent : 'a node option;
  node_depth : int;
  node_id : int;
  node_data : 'a;
  mutable slots : 'a edge list array;
      (* per call site, most recently used first (the paper's move-to-front
         on indirect-call lists) *)
}

and 'a edge = {
  site : int;
  target : 'a node;
  is_backedge : bool;
  kind : call_kind;
  mutable calls : int;
}

type 'a t = {
  merge_call_sites : bool;
  make_data : proc:string -> nsites:int -> 'a;
  root_node : 'a node;
  mutable stack : 'a node list;  (* activation stack; head = current *)
  mutable nodes_rev : 'a node list;  (* allocation order, reversed *)
  mutable n_nodes : int;
}

let root_name = "<root>"

let create ?(merge_call_sites = false) ~make_data () =
  let root_node =
    {
      node_proc = root_name;
      node_nsites = 1;
      node_parent = None;
      node_depth = 0;
      node_id = 0;
      node_data = make_data ~proc:root_name ~nsites:1;
      slots = Array.make 1 [];
    }
  in
  {
    merge_call_sites;
    make_data;
    root_node;
    stack = [ root_node ];
    nodes_rev = [ root_node ];
    n_nodes = 1;
  }

let root t = t.root_node

let current t =
  match t.stack with
  | node :: _ -> node
  | [] -> assert false

let depth t = List.length t.stack - 1

let slot_index t (cr : 'a node) site =
  let idx = if t.merge_call_sites then 0 else site in
  if idx < 0 || idx >= Array.length cr.slots then
    invalid_arg
      (Printf.sprintf "Cct.enter: call site %d out of range for %s" site
         cr.node_proc);
  idx

let rec find_ancestor (node : 'a node option) proc =
  match node with
  | None -> None
  | Some n -> if n.node_proc = proc then node else find_ancestor n.node_parent proc

let enter t ~proc ~nsites ~site ~kind =
  let cr = current t in
  let idx = slot_index t cr site in
  let existing =
    List.find_opt (fun e -> e.target.node_proc = proc) cr.slots.(idx)
  in
  let edge =
    match existing with
    | Some e ->
        (* Move to the front of the slot list, as the paper's construction
           does for indirect-call lists. *)
        cr.slots.(idx) <-
          e :: List.filter (fun e' -> e' != e) cr.slots.(idx);
        e
    | None ->
        let target, is_backedge =
          match find_ancestor (Some cr) proc with
          | Some ancestor -> (ancestor, true)
          | None ->
              let node =
                {
                  node_proc = proc;
                  node_nsites = nsites;
                  node_parent = Some cr;
                  node_depth = cr.node_depth + 1;
                  node_id = t.n_nodes;
                  node_data = t.make_data ~proc ~nsites;
                  slots =
                    Array.make
                      (if t.merge_call_sites then 1 else max 1 nsites)
                      [];
                }
              in
              t.nodes_rev <- node :: t.nodes_rev;
              t.n_nodes <- t.n_nodes + 1;
              (node, false)
        in
        let e = { site; target; is_backedge; kind; calls = 0 } in
        cr.slots.(idx) <- e :: cr.slots.(idx);
        e
  in
  if edge.target.node_nsites <> nsites then
    invalid_arg
      (Printf.sprintf "Cct.enter: %s has %d sites, previously %d" proc nsites
         edge.target.node_nsites);
  edge.calls <- edge.calls + 1;
  t.stack <- edge.target :: t.stack;
  edge.target

let has_edge t ~proc ~site =
  let cr = current t in
  let idx = slot_index t cr site in
  List.exists (fun e -> e.target.node_proc = proc) cr.slots.(idx)

let exit t =
  match t.stack with
  | [ _ ] | [] -> invalid_arg "Cct.exit: only the root is active"
  | _ :: rest -> t.stack <- rest

let unwind_to_depth t d =
  let cur = depth t in
  if d > cur || d < 0 then
    invalid_arg
      (Printf.sprintf "Cct.unwind_to_depth: %d not in [0, %d]" d cur);
  for _ = 1 to cur - d do
    exit t
  done

let proc n = n.node_proc
let data n = n.node_data
let parent n = n.node_parent
let node_depth n = n.node_depth
let nsites n = n.node_nsites
let id n = n.node_id

let edges n =
  (* Slots in order; within a slot, first-use order (the list is
     most-recently-used-first, so restore insertion order by reversing). *)
  Array.to_list n.slots
  |> List.concat_map (fun slot -> List.rev slot)

let children n =
  List.filter_map
    (fun e -> if e.is_backedge then None else Some e.target)
    (edges n)

let iter f t = List.iter f (List.rev t.nodes_rev)

let fold f init t =
  List.fold_left f init (List.rev t.nodes_rev)

let num_nodes t = t.n_nodes

let context n =
  match n.node_parent with
  | None -> []
  | Some _ ->
      let rec up acc = function
        | None -> acc
        | Some p ->
            if p.node_parent = None then acc
            else up (p.node_proc :: acc) p.node_parent
      in
      up [ n.node_proc ] n.node_parent

let find_context t ctx =
  let rec down node = function
    | [] -> Some node
    | proc :: rest -> (
        match
          List.find_opt
            (fun e -> (not e.is_backedge) && e.target.node_proc = proc)
            (edges node)
        with
        | Some e -> down e.target rest
        | None -> None)
  in
  down t.root_node ctx

let merged t = t.merge_call_sites

let graft_node t ~parent ~proc ~nsites ~data =
  let node =
    {
      node_proc = proc;
      node_nsites = nsites;
      node_parent = Some parent;
      node_depth = parent.node_depth + 1;
      node_id = t.n_nodes;
      node_data = data;
      slots =
        Array.make (if t.merge_call_sites then 1 else max 1 nsites) [];
    }
  in
  t.nodes_rev <- node :: t.nodes_rev;
  t.n_nodes <- t.n_nodes + 1;
  node

let graft_edge t ~from_ ~site ~target ~is_backedge ~kind ~calls =
  (* Cons, as live construction does: slot lists are most-recent-first and
     {!edges} reverses them, so grafting in first-use order round-trips.
     (Appending here would reverse multi-edge slots — indirect-call lists
     and merged-call-site slots — on every reload.) *)
  let idx = slot_index t from_ site in
  from_.slots.(idx) <- { site; target; is_backedge; kind; calls } :: from_.slots.(idx)

let merge ~merge_data ta tb =
  if ta.merge_call_sites <> tb.merge_call_sites then
    invalid_arg "Cct.merge: one tree merges call sites, the other does not";
  let root =
    {
      node_proc = root_name;
      node_nsites = 1;
      node_parent = None;
      node_depth = 0;
      node_id = 0;
      node_data =
        merge_data (Some ta.root_node.node_data) (Some tb.root_node.node_data);
      slots = Array.make 1 [];
    }
  in
  let t =
    {
      merge_call_sites = ta.merge_call_sites;
      make_data = ta.make_data;
      root_node = root;
      stack = [ root ];
      nodes_rev = [ root ];
      n_nodes = 1;
    }
  in
  (* Walk the two trees in lockstep.  Within each callee slot, edges are
     keyed by the callee's procedure (exactly the lookup {!enter} performs);
     the union lists [ta]'s edges in first-use order followed by edges only
     [tb] has, which reproduces a serial run's first-use order when the
     shards partition a serial event stream. *)
  let rec go (na : 'a node option) (nb : 'a node option) (rn : 'a node) =
    let slot_of n idx =
      match n with
      | Some n when idx < Array.length n.slots -> List.rev n.slots.(idx)
      | _ -> []
    in
    for idx = 0 to Array.length rn.slots - 1 do
      let ea = slot_of na idx and eb = slot_of nb idx in
      let find es proc =
        List.find_opt (fun e -> e.target.node_proc = proc) es
      in
      let union =
        List.map (fun e -> e.target.node_proc) ea
        @ List.filter_map
            (fun e ->
              let p = e.target.node_proc in
              if find ea p <> None then None else Some p)
            eb
      in
      List.iter
        (fun pname ->
          let fa = find ea pname and fb = find eb pname in
          let calls =
            (match fa with Some e -> e.calls | None -> 0)
            + (match fb with Some e -> e.calls | None -> 0)
          in
          let site, kind =
            match (fa, fb) with
            | Some e, _ -> (e.site, e.kind)
            | None, Some e -> (e.site, e.kind)
            | None, None -> assert false
          in
          (match (fa, fb) with
          | Some a, Some b when a.is_backedge <> b.is_backedge ->
              invalid_arg
                (Printf.sprintf
                   "Cct.merge: %s -> %s is a backedge in one tree and a \
                    tree edge in the other"
                   rn.node_proc pname)
          | _ -> ());
          let is_backedge =
            (match fa with Some e -> e.is_backedge | None -> false)
            || match fb with Some e -> e.is_backedge | None -> false
          in
          if is_backedge then begin
            (* The target is the (unique) ancestor running [pname]; it was
               already created, since ancestors precede descendants. *)
            match find_ancestor (Some rn) pname with
            | Some target ->
                rn.slots.(idx) <-
                  { site; target; is_backedge = true; kind; calls }
                  :: rn.slots.(idx)
            | None ->
                invalid_arg
                  (Printf.sprintf
                     "Cct.merge: backedge %s -> %s has no ancestor target"
                     rn.node_proc pname)
          end
          else begin
            let ca = Option.map (fun e -> e.target) fa
            and cb = Option.map (fun e -> e.target) fb in
            let nsites =
              match (ca, cb) with
              | Some a, Some b ->
                  if a.node_nsites <> b.node_nsites then
                    invalid_arg
                      (Printf.sprintf
                         "Cct.merge: %s has %d sites in one tree, %d in the \
                          other"
                         pname a.node_nsites b.node_nsites);
                  a.node_nsites
              | Some a, None -> a.node_nsites
              | None, Some b -> b.node_nsites
              | None, None -> assert false
            in
            let child =
              {
                node_proc = pname;
                node_nsites = nsites;
                node_parent = Some rn;
                node_depth = rn.node_depth + 1;
                node_id = t.n_nodes;
                node_data =
                  merge_data
                    (Option.map (fun n -> n.node_data) ca)
                    (Option.map (fun n -> n.node_data) cb);
                slots =
                  Array.make
                    (if t.merge_call_sites then 1 else max 1 nsites)
                    [];
              }
            in
            t.nodes_rev <- child :: t.nodes_rev;
            t.n_nodes <- t.n_nodes + 1;
            rn.slots.(idx) <-
              { site; target = child; is_backedge = false; kind; calls }
              :: rn.slots.(idx);
            go ca cb child
          end)
        union
    done
  in
  go (Some ta.root_node) (Some tb.root_node) root;
  t

let check_invariants t =
  let fail fmt = Format.kasprintf invalid_arg fmt in
  iter
    (fun n ->
      (* Every procedure occurs at most once on the root-to-node path. *)
      let rec collect acc = function
        | None -> acc
        | Some p -> collect (p.node_proc :: acc) p.node_parent
      in
      let chain = collect [] (Some n) in
      let sorted = List.sort compare chain in
      let rec dup = function
        | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
        | [ _ ] | [] -> None
      in
      (match dup sorted with
      | Some p -> fail "procedure %s repeats on the path to %s" p n.node_proc
      | None -> ());
      List.iter
        (fun e ->
          if e.is_backedge then begin
            (* Target must be an ancestor of n (or n itself). *)
            let rec is_anc = function
              | None -> false
              | Some a -> a == e.target || is_anc a.node_parent
            in
            if not (is_anc (Some n)) then
              fail "backedge %s -> %s does not target an ancestor"
                n.node_proc e.target.node_proc
          end
          else if
            match e.target.node_parent with
            | Some p -> p != n
            | None -> true
          then
            fail "tree edge %s -> %s but parent differs" n.node_proc
              e.target.node_proc)
        (edges n))
    t
