module Event = Pp_machine.Event

type path_metrics = { freq : int; m0 : int; m1 : int }

type proc_profile = {
  proc : string;
  numbering : Ball_larus.t;
  paths : (int * path_metrics) list;
}

type t = { pic0 : Event.t; pic1 : Event.t; procs : proc_profile list }

let sum_over f t =
  List.fold_left
    (fun acc p ->
      List.fold_left (fun acc (_, m) -> acc + f m) acc p.paths)
    0 t.procs

let total_freq = sum_over (fun m -> m.freq)
let total_m0 = sum_over (fun m -> m.m0)
let total_m1 = sum_over (fun m -> m.m1)

let find_proc t name = List.find_opt (fun p -> p.proc = name) t.procs

let empty ~pic0 ~pic1 = { pic0; pic1; procs = [] }

let add_metrics (a : path_metrics) (b : path_metrics) =
  { freq = a.freq + b.freq; m0 = a.m0 + b.m0; m1 = a.m1 + b.m1 }

(* Sum two path tables of the same procedure; output sorted by path sum. *)
let merge_paths pa pb =
  let table = Hashtbl.create 16 in
  let feed =
    List.iter (fun (sum, m) ->
        let cur =
          Option.value ~default:{ freq = 0; m0 = 0; m1 = 0 }
            (Hashtbl.find_opt table sum)
        in
        Hashtbl.replace table sum (add_metrics cur m))
  in
  feed pa;
  feed pb;
  Hashtbl.fold (fun sum m acc -> (sum, m) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge_proc (a : proc_profile) (b : proc_profile) =
  if Ball_larus.num_paths a.numbering <> Ball_larus.num_paths b.numbering
  then
    invalid_arg
      (Printf.sprintf
         "Profile.merge: %s numbered with %d paths in one shard, %d in the \
          other"
         a.proc
         (Ball_larus.num_paths a.numbering)
         (Ball_larus.num_paths b.numbering));
  { a with paths = merge_paths a.paths b.paths }

let merge a b =
  if a.pic0 <> b.pic0 || a.pic1 <> b.pic1 then
    invalid_arg
      (Printf.sprintf "Profile.merge: PIC selections differ (%s/%s vs %s/%s)"
         (Event.name a.pic0) (Event.name a.pic1) (Event.name b.pic0)
         (Event.name b.pic1));
  let procs =
    List.map
      (fun (pa : proc_profile) ->
        match List.find_opt (fun pb -> pb.proc = pa.proc) b.procs with
        | Some pb -> merge_proc pa pb
        | None -> { pa with paths = merge_paths pa.paths [] })
      a.procs
    @ List.filter_map
        (fun (pb : proc_profile) ->
          if List.exists (fun pa -> pa.proc = pb.proc) a.procs then None
          else Some { pb with paths = merge_paths pb.paths [] })
        b.procs
    |> List.sort (fun pa pb -> compare pa.proc pb.proc)
  in
  { pic0 = a.pic0; pic1 = a.pic1; procs }

let decode p sum = Ball_larus.decode p.numbering sum

let observed_infeasible p ~feasible =
  List.filter (fun (sum, _) -> not (feasible sum)) p.paths

let ranked_paths p =
  List.sort (fun (_, a) (_, b) -> compare b.m0 a.m0) p.paths

let pp_top ~n ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun p ->
      if p.paths <> [] then begin
        Format.fprintf ppf "%s (%d executed paths):@," p.proc
          (List.length p.paths);
        List.iteri
          (fun i (sum, m) ->
            if i < n then
              Format.fprintf ppf "  path %d: freq=%d %a=%d %a=%d  [%a]@," sum
                m.freq Event.pp t.pic0 m.m0 Event.pp t.pic1 m.m1
                Ball_larus.pp_path (decode p sum))
          (ranked_paths p)
      end)
    t.procs;
  Format.fprintf ppf "@]"
