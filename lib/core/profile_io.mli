(** Persistent, mergeable path profiles.

    A sharded run matrix — the same program profiled in many processes, as
    D'Elia & Demetrescu's multi-iteration Ball–Larus profiler and
    counter-based PGO pipelines do — writes one profile file per shard and
    sums them afterwards.  This module is that on-disk layer: a saved
    profile carries the program's digest and the instrumentation mode, and
    {!merge} refuses to sum shards that disagree on either, reporting the
    mismatch as a structured {!Pp_ir.Diag.t} rather than silently producing
    a chimera.

    The format, line-oriented like {!Cct_io}'s:
    {v
    profile 1 <program-hash> <mode> <pic0> <pic1>
    feasible <name-escaped> <num-feasible-paths>
    proc <name-escaped> <num-potential-paths>
    path <sum> <freq> <m0> <m1>
    v}

    [feasible] records (optional, one per statically pruned procedure)
    carry the feasible-path count the static analyzer certified when the
    run was instrumented; {!merge} refuses shards whose annotations
    disagree, so a pruned run never silently sums with an unpruned one's
    claims. *)

module Event = Pp_machine.Event

type saved = {
  program_hash : string;
  mode : string;  (** {!Pp_instrument.Instrument.mode_name} of the run *)
  pic0 : Event.t;
  pic1 : Event.t;
  procs : (string * int * (int * Profile.path_metrics) list) list;
      (** procedure, potential-path count, executed paths by path sum *)
  feasible : (string * int) list;
      (** statically feasible path count per pruned procedure *)
}

(** Digest of a program's structure; shards of the same binary agree. *)
val program_hash : Pp_ir.Program.t -> string

(** Strip the numbering from an in-memory profile (path sums alone suffice
    to merge; decoding needs the program anyway).  [feasible] attaches the
    static analyzer's per-procedure feasible-path counts. *)
val of_profile :
  ?feasible:(string * int) list ->
  program_hash:string ->
  mode:string ->
  Profile.t ->
  saved

(** Canonical form: procedures sorted by name, paths by path sum.  All
    functions below return canonical values; [merge] is commutative and
    associative on them. *)
val canonical : saved -> saved

(** Total frequency and metric accumulators over all paths. *)
val totals : saved -> int * int * int

(** Sum two shards.  [Error d] (with [d] located at the offending procedure
    or at ["<header>"]) if the program hashes, modes, PIC selections, a
    procedure's potential-path counts or its feasible-path annotations
    disagree. *)
val merge : saved -> saved -> (saved, Pp_ir.Diag.t) result

(** Fold {!merge} over a non-empty list. *)
val merge_all : saved list -> (saved, Pp_ir.Diag.t) result

val to_string : saved -> string
val to_file : string -> saved -> unit

exception Parse_error of int * string
(** Line number and message. *)

(** @raise Parse_error *)
val of_string : string -> saved

val of_file : string -> saved
