(** Persistent, mergeable path profiles.

    A sharded run matrix — the same program profiled in many processes, as
    D'Elia & Demetrescu's multi-iteration Ball–Larus profiler and
    counter-based PGO pipelines do — writes one profile file per shard and
    sums them afterwards.  This module is that on-disk layer: a saved
    profile carries the program's digest and the instrumentation mode, and
    {!merge} refuses to sum shards that disagree on either, reporting the
    mismatch as a structured {!Pp_ir.Diag.t} rather than silently producing
    a chimera.

    The format, line-oriented like {!Cct_io}'s:
    {v
    profile 1 <program-hash> <mode> <pic0> <pic1>
    proc <name-escaped> <num-potential-paths>
    path <sum> <freq> <m0> <m1>
    v} *)

module Event = Pp_machine.Event

type saved = {
  program_hash : string;
  mode : string;  (** {!Pp_instrument.Instrument.mode_name} of the run *)
  pic0 : Event.t;
  pic1 : Event.t;
  procs : (string * int * (int * Profile.path_metrics) list) list;
      (** procedure, potential-path count, executed paths by path sum *)
}

(** Digest of a program's structure; shards of the same binary agree. *)
val program_hash : Pp_ir.Program.t -> string

(** Strip the numbering from an in-memory profile (path sums alone suffice
    to merge; decoding needs the program anyway). *)
val of_profile : program_hash:string -> mode:string -> Profile.t -> saved

(** Canonical form: procedures sorted by name, paths by path sum.  All
    functions below return canonical values; [merge] is commutative and
    associative on them. *)
val canonical : saved -> saved

(** Total frequency and metric accumulators over all paths. *)
val totals : saved -> int * int * int

(** Sum two shards.  [Error d] (with [d] located at the offending procedure
    or at ["<header>"]) if the program hashes, modes, PIC selections or a
    procedure's potential-path counts disagree. *)
val merge : saved -> saved -> (saved, Pp_ir.Diag.t) result

(** Fold {!merge} over a non-empty list. *)
val merge_all : saved list -> (saved, Pp_ir.Diag.t) result

val to_string : saved -> string
val to_file : string -> saved -> unit

exception Parse_error of int * string
(** Line number and message. *)

(** @raise Parse_error *)
val of_string : string -> saved

val of_file : string -> saved
