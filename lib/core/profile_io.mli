(** Persistent, mergeable, corruption-hardened path profiles.

    A sharded run matrix — the same program profiled in many processes, as
    D'Elia & Demetrescu's multi-iteration Ball–Larus profiler and
    counter-based PGO pipelines do — writes one profile file per shard and
    sums them afterwards.  This module is that on-disk layer: a saved
    profile carries the program's digest and the instrumentation mode, and
    {!merge} refuses to sum shards that disagree on either, reporting the
    mismatch as a structured {!Pp_ir.Diag.t} rather than silently producing
    a chimera.

    {2 The format}

    Line-oriented like {!Cct_io}'s.  Version 2 (what {!to_string} writes)
    appends a {!Crc32} token to every line and carries the body record
    count in the header, so any truncation or bit flip is detected and the
    undamaged record prefix stays recoverable:
    {v
    profile 2 <program-hash> <mode> <pic0> <pic1> <nrecords> <crc>
    feasible <name-escaped> <num-feasible-paths> <crc>
    coverage <name-escaped> <sampled-commits> <total-commits> <crc>
    proc <name-escaped> <num-potential-paths> <crc>
    path <sum> <freq> <m0> <m1> <crc>
    v}
    Version 1 (the pre-checksum format, still read) is the same without
    the CRC tokens or the header count.

    [feasible] records (optional, one per statically pruned procedure)
    carry the feasible-path count the static analyzer certified when the
    run was instrumented; {!merge} refuses shards whose annotations
    disagree, so a pruned run never silently sums with an unpruned one's
    claims.

    {2 Fault tolerance}

    {!to_file} writes to a [.tmp] sibling and atomically renames it into
    place, so a writer killed mid-shard leaves the destination untouched
    (a previous complete version survives; a fresh shard is simply
    absent) — never a torn file.  {!salvage_file} reads a shard that was
    damaged {e after} a successful write (disk corruption, a non-atomic
    copy): it recovers the valid record prefix and reports exactly how
    many records were dropped.  Chaos runs inject {!write_fault}s here to
    prove both properties end to end ([pp chaos]). *)

module Event = Pp_machine.Event

type saved = {
  program_hash : string;
  mode : string;  (** {!Pp_instrument.Instrument.mode_name} of the run *)
  pic0 : Event.t;
  pic1 : Event.t;
  procs : (string * int * (int * Profile.path_metrics) list) list;
      (** procedure, potential-path count, executed paths by path sum *)
  feasible : (string * int) list;
      (** statically feasible path count per pruned procedure *)
  coverage : (string * (int * int)) list;
      (** per-procedure [(sampled, total)] path-commit windows — the
          scaling certificate of a sampled run
          ([Pp_vm.Sampling.coverage]).  Consumers scale the procedure's
          sampled frequencies by [total/sampled].  {!canonical} drops
          exhaustive windows ([sampled = total]), so unsampled shards
          carry no coverage records and a duty-1.0 sampled shard is
          byte-identical to an exhaustive one; {!merge} sums windows,
          defaulting a shard's missing window to its recorded commit
          count (exhaustive), so sampled and unsampled shards compose. *)
}

(** Digest of a program's structure; shards of the same binary agree. *)
val program_hash : Pp_ir.Program.t -> string

(** Strip the numbering from an in-memory profile (path sums alone suffice
    to merge; decoding needs the program anyway).  [feasible] attaches the
    static analyzer's per-procedure feasible-path counts; [coverage]
    attaches a sampled run's per-procedure commit windows. *)
val of_profile :
  ?feasible:(string * int) list ->
  ?coverage:(string * (int * int)) list ->
  program_hash:string ->
  mode:string ->
  Profile.t ->
  saved

(** Canonical form: procedures sorted by name, paths by path sum.  All
    functions below return canonical values; [merge] is commutative and
    associative on them. *)
val canonical : saved -> saved

(** Total frequency and metric accumulators over all paths. *)
val totals : saved -> int * int * int

(** Sum two shards.  [Error d] (with [d] located at the offending procedure
    or at ["<header>"]) if the program hashes, modes, PIC selections, a
    procedure's potential-path counts or its feasible-path annotations
    disagree. *)
val merge : saved -> saved -> (saved, Pp_ir.Diag.t) result

(** Fold {!merge} over a non-empty list. *)
val merge_all : saved list -> (saved, Pp_ir.Diag.t) result

(** Serialize in the checksummed version-2 format (canonicalizes first,
    so equal profiles serialize byte-identically). *)
val to_string : saved -> string

exception Parse_error of int * string
(** Line number and message.  On a damaged version-2 shard the message
    says how many records are intact; use {!salvage_string} to recover
    them. *)

(** Strict reader: accepts version 1 and version 2; verifies every CRC
    and the record count on version 2.
    @raise Parse_error on malformed input or any detected damage. *)
val of_string : string -> saved

(** {2 Salvage: recovering damaged shards} *)

type salvage_report = {
  total : int;  (** records the (intact) header promised *)
  recovered : int;  (** records in the valid prefix *)
  first_bad_line : int;
      (** 1-based line where damage was detected (for clean truncation at
          a record boundary, the line the first missing record would have
          occupied) *)
}

(** Best-effort reader for a damaged version-2 shard: CRC-checks records
    front to back and stops at the first damaged or structurally invalid
    line.  [Ok (s, None)] — the shard is intact.  [Ok (s, Some report)]
    — [s] is the valid record prefix and [report] says exactly what was
    dropped.  [Error d] — the header itself is unusable (or the input is
    an unchecksummed version-1 file that does not parse), so nothing can
    be recovered. *)
val salvage_string : string -> (saved * salvage_report option, Pp_ir.Diag.t) result

(** {!salvage_string} on a file; unreadable files are [Error]. *)
val salvage_file : string -> (saved * salvage_report option, Pp_ir.Diag.t) result

(** Render a report as a structured diagnostic at the pseudo-procedure
    ["<shard>"] (the convention {!merge} uses for ["<header>"]). *)
val salvage_diag : file:string -> salvage_report -> Pp_ir.Diag.t

(** {2 Files: atomic writes with injectable faults} *)

(** Faults a chaos run can inject into {!to_file}, each deterministic:

    - [Die_mid_write]: the writer dies after a partial {e temp} write —
      the destination is untouched (atomicity holds); raises
      {!Killed_mid_write}.
    - [Torn_write]: a partial write lands at the {e destination} itself —
      the failure mode temp+rename prevents, injected to exercise the
      salvage reader; raises {!Killed_mid_write}.
    - [Flip_bit k]: the write completes, then bit [k] (mod file size) of
      the destination flips — post-write disk corruption.
    - [Truncate_at k]: the write completes, then the destination is cut
      to [k] bytes (mod file size). *)
type write_fault =
  | Die_mid_write
  | Torn_write
  | Flip_bit of int
  | Truncate_at of int

exception Killed_mid_write
(** Raised by [Die_mid_write] / [Torn_write] at the point the simulated
    SIGKILL lands, so a pool worker dies exactly as a real one would. *)

(** Write-to-temp then atomic rename ([path ^ ".tmp"], same directory,
    {!Sys.rename}).  With [fault], inject the given failure instead of /
    after the clean write. *)
val to_file : ?fault:write_fault -> string -> saved -> unit

(** Strict file reader ({!of_string} semantics).
    @raise Parse_error on damage; [Sys_error] on unreadable files. *)
val of_file : string -> saved
