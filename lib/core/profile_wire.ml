(* The binary shard wire format `pp serve` speaks: a profile streams as a
   sequence of self-delimiting CRC-framed binary frames instead of one
   line-text file, so an aggregator can merge each procedure as it
   arrives and a torn connection leaves a cleanly decodable prefix.

   Frame layout (integers little-endian):

     +------+-------------+--------------+-----------------+
     | kind | len: u32 LE | crc: u32 LE  | payload (len B) |
     +------+-------------+--------------+-----------------+

   kind is 'H' (hello: stream header), 'P' (one procedure's records) or
   'E' (end: whole-shard totals, the stream's integrity summary).  crc is
   the Crc32 digest of the payload, the same polynomial the v2 text
   shards use per line.  Payload integers are zigzag LEB128 varints;
   strings are a varint length plus bytes. *)

module Event = Pp_machine.Event

let version = 1
let max_payload = 1 lsl 24

type header = {
  program_hash : string;
  mode : string;
  pic0 : Event.t;
  pic1 : Event.t;
}

type proc_frame = {
  name : string;
  npaths : int;
  feasible : int option;
  coverage : (int * int) option;
  paths : (int * Profile.path_metrics) list;
}

type summary = { nprocs : int; freq : int; m0 : int; m1 : int }

type frame = Hello of header | Proc of proc_frame | End of summary

(* --- varints --- *)

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag n = (n lsr 1) lxor (-(n land 1))

let put_varint buf n =
  let n = ref (zigzag n) in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let put_string buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

exception Malformed of string

let mal fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

(* Cursor-based payload reader. *)
type cursor = { data : string; mutable pos : int }

let get_varint c =
  let shift = ref 0 and acc = ref 0 and continue = ref true in
  while !continue do
    if c.pos >= String.length c.data then mal "truncated varint";
    if !shift > 62 then mal "varint overflow";
    let b = Char.code c.data.[c.pos] in
    c.pos <- c.pos + 1;
    acc := !acc lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  unzigzag !acc

let get_string c =
  let n = get_varint c in
  if n < 0 || c.pos + n > String.length c.data then mal "truncated string";
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let get_event c =
  let s = get_string c in
  match Event.of_name s with
  | Some e -> e
  | None -> mal "unknown event %S" s

(* --- payload codecs --- *)

let hello_payload (h : header) =
  let buf = Buffer.create 64 in
  put_varint buf version;
  put_string buf h.program_hash;
  put_string buf h.mode;
  put_string buf (Event.name h.pic0);
  put_string buf (Event.name h.pic1);
  Buffer.contents buf

let parse_hello c =
  let v = get_varint c in
  if v <> version then mal "unsupported wire version %d" v;
  let program_hash = get_string c in
  let mode = get_string c in
  let pic0 = get_event c in
  let pic1 = get_event c in
  { program_hash; mode; pic0; pic1 }

let put_opt buf put = function
  | None -> put_varint buf 0
  | Some v ->
      put_varint buf 1;
      put v

let get_opt c get =
  match get_varint c with
  | 0 -> None
  | 1 -> Some (get ())
  | k -> mal "bad option tag %d" k

let proc_payload (p : proc_frame) =
  let buf = Buffer.create 256 in
  put_string buf p.name;
  put_varint buf p.npaths;
  put_opt buf (put_varint buf) p.feasible;
  put_opt buf
    (fun (sampled, total) ->
      put_varint buf sampled;
      put_varint buf total)
    p.coverage;
  put_varint buf (List.length p.paths);
  List.iter
    (fun (sum, (m : Profile.path_metrics)) ->
      put_varint buf sum;
      put_varint buf m.Profile.freq;
      put_varint buf m.Profile.m0;
      put_varint buf m.Profile.m1)
    p.paths;
  Buffer.contents buf

let parse_proc c =
  let name = get_string c in
  let npaths = get_varint c in
  let feasible = get_opt c (fun () -> get_varint c) in
  let coverage =
    get_opt c (fun () ->
        let sampled = get_varint c in
        let total = get_varint c in
        (sampled, total))
  in
  let n = get_varint c in
  if n < 0 then mal "negative path count";
  let paths =
    List.init n (fun _ ->
        let sum = get_varint c in
        let freq = get_varint c in
        let m0 = get_varint c in
        let m1 = get_varint c in
        (sum, { Profile.freq; m0; m1 }))
  in
  { name; npaths; feasible; coverage; paths }

let end_payload (s : summary) =
  let buf = Buffer.create 32 in
  put_varint buf s.nprocs;
  put_varint buf s.freq;
  put_varint buf s.m0;
  put_varint buf s.m1;
  Buffer.contents buf

let parse_end c =
  let nprocs = get_varint c in
  let freq = get_varint c in
  let m0 = get_varint c in
  let m1 = get_varint c in
  { nprocs; freq; m0; m1 }

(* --- framing --- *)

let put_u32 buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

let frame_string kind payload =
  let buf = Buffer.create (String.length payload + 9) in
  Buffer.add_char buf kind;
  put_u32 buf (String.length payload);
  put_u32 buf (Crc32.digest payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let encode_frame = function
  | Hello h -> frame_string 'H' (hello_payload h)
  | Proc p -> frame_string 'P' (proc_payload p)
  | End s -> frame_string 'E' (end_payload s)

(* --- shard <-> frame sequence --- *)

let frames_of_saved (s : Profile_io.saved) =
  let s = Profile_io.canonical s in
  let header =
    Hello
      {
        program_hash = s.Profile_io.program_hash;
        mode = s.Profile_io.mode;
        pic0 = s.Profile_io.pic0;
        pic1 = s.Profile_io.pic1;
      }
  in
  let procs =
    List.map
      (fun (name, npaths, paths) ->
        Proc
          {
            name;
            npaths;
            feasible = List.assoc_opt name s.Profile_io.feasible;
            coverage = List.assoc_opt name s.Profile_io.coverage;
            paths;
          })
      s.Profile_io.procs
  in
  (* Feasible/coverage annotations for procedures without a proc record
     (e.g. a fully gated-off procedure) still need a carrier frame. *)
  let proc_names = List.map (fun (n, _, _) -> n) s.Profile_io.procs in
  let orphan name = not (List.mem name proc_names) in
  let orphans =
    List.sort_uniq compare
      (List.filter orphan (List.map fst s.Profile_io.feasible)
      @ List.filter orphan (List.map fst s.Profile_io.coverage))
  in
  let orphan_frames =
    List.map
      (fun name ->
        Proc
          {
            name;
            npaths = 0;
            feasible = List.assoc_opt name s.Profile_io.feasible;
            coverage = List.assoc_opt name s.Profile_io.coverage;
            paths = [];
          })
      orphans
  in
  let freq, m0, m1 = Profile_io.totals s in
  (header :: procs)
  @ orphan_frames
  @ [
      End
        {
          nprocs = List.length procs + List.length orphan_frames;
          freq;
          m0;
          m1;
        };
    ]

let encode_saved s =
  String.concat "" (List.map encode_frame (frames_of_saved s))

(* Reassemble a decoded frame sequence.  Proc frames with [npaths = 0]
   and no paths are annotation carriers: they contribute feasible /
   coverage entries but no procs row. *)
let saved_of_frames (h : header) (procs : proc_frame list) =
  Profile_io.canonical
    {
      Profile_io.program_hash = h.program_hash;
      mode = h.mode;
      pic0 = h.pic0;
      pic1 = h.pic1;
      procs =
        List.filter_map
          (fun (p : proc_frame) ->
            if p.npaths = 0 && p.paths = [] then None
            else Some (p.name, p.npaths, p.paths))
          procs;
      feasible =
        List.filter_map
          (fun (p : proc_frame) ->
            Option.map (fun k -> (p.name, k)) p.feasible)
          procs;
      coverage =
        List.filter_map
          (fun (p : proc_frame) ->
            Option.map (fun w -> (p.name, w)) p.coverage)
          procs;
    }

(* --- incremental reader --- *)

type reader = {
  mutable buf : Bytes.t;
  mutable len : int;  (* bytes buffered *)
  mutable pos : int;  (* consumed prefix *)
  mutable corrupt : string option;  (* sticky *)
}

let reader () =
  { buf = Bytes.create 4096; len = 0; pos = 0; corrupt = None }

let feed r s =
  let n = String.length s in
  if r.len + n > Bytes.length r.buf then begin
    (* Compact the consumed prefix, then grow if still needed. *)
    if r.pos > 0 then begin
      Bytes.blit r.buf r.pos r.buf 0 (r.len - r.pos);
      r.len <- r.len - r.pos;
      r.pos <- 0
    end;
    if r.len + n > Bytes.length r.buf then begin
      let cap = ref (max 4096 (2 * Bytes.length r.buf)) in
      while r.len + n > !cap do
        cap := !cap * 2
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit r.buf 0 bigger 0 r.len;
      r.buf <- bigger
    end
  end;
  Bytes.blit_string s 0 r.buf r.len n;
  r.len <- r.len + n

let u32_at b i =
  Char.code (Bytes.get b i)
  lor (Char.code (Bytes.get b (i + 1)) lsl 8)
  lor (Char.code (Bytes.get b (i + 2)) lsl 16)
  lor (Char.code (Bytes.get b (i + 3)) lsl 24)

let pending r = r.len - r.pos

let next r =
  match r.corrupt with
  | Some msg -> `Corrupt msg
  | None ->
      if pending r < 9 then `Need_more
      else begin
        let kind = Bytes.get r.buf r.pos in
        let len = u32_at r.buf (r.pos + 1) in
        let crc = u32_at r.buf (r.pos + 5) in
        if kind <> 'H' && kind <> 'P' && kind <> 'E' then begin
          r.corrupt <- Some (Printf.sprintf "bad frame kind 0x%02x"
                               (Char.code kind));
          `Corrupt (Option.get r.corrupt)
        end
        else if len < 0 || len > max_payload then begin
          r.corrupt <- Some (Printf.sprintf "frame length %d out of range" len);
          `Corrupt (Option.get r.corrupt)
        end
        else if pending r < 9 + len then `Need_more
        else begin
          let payload = Bytes.sub_string r.buf (r.pos + 9) len in
          if Crc32.digest payload <> crc then begin
            r.corrupt <- Some "frame checksum mismatch";
            `Corrupt (Option.get r.corrupt)
          end
          else begin
            r.pos <- r.pos + 9 + len;
            let c = { data = payload; pos = 0 } in
            match
              match kind with
              | 'H' -> Hello (parse_hello c)
              | 'P' -> Proc (parse_proc c)
              | _ -> End (parse_end c)
            with
            | frame -> `Frame frame
            | exception Malformed msg ->
                r.corrupt <- Some msg;
                `Corrupt msg
          end
        end
      end

let leftover r = pending r
