(** Efficient path profiling (Ball–Larus, MICRO'96), as summarised in §2 of
    the PLDI'97 paper.

    Given a procedure's CFG, the algorithm
    - turns a cyclic CFG into an acyclic one by replacing every backedge
      [v -> w] with two pseudo edges [ENTRY -> w] and [v -> EXIT];
    - labels every vertex with [NP(v)], the number of paths from [v] to
      EXIT, and every edge with [Val(e)] so that path sums are a bijection
      between ENTRY→EXIT paths and [0 .. NP(ENTRY) - 1];
    - derives instrumentation: increments of a path register along edges,
      and a combined commit/reset operation on each backedge.

    Profiled paths fall in the paper's four categories: backedge-free
    ENTRY→EXIT paths, and paths that begin after and/or end with the
    execution of a backedge. *)

module Digraph = Pp_graph.Digraph

type t

exception Unsupported of string
(** Raised when the CFG violates the algorithm's requirements (some vertex
    unreachable from ENTRY or not reaching EXIT). *)

val build : Pp_ir.Cfg.t -> t

val cfg : t -> Pp_ir.Cfg.t

(** [NP(ENTRY)]: the number of potential paths. *)
val num_paths : t -> int

(** [NP(v)] in the transformed acyclic graph; [v] is a vertex of the
    original CFG. *)
val np : t -> Digraph.vertex -> int

(** The backedges of the original CFG (identified by a depth-first search
    from ENTRY), in edge-id order. *)
val backedges : t -> Digraph.edge list

(** Whether [e] is one of the backedges of {!backedges}. *)
val is_backedge : t -> Digraph.edge -> bool

(** The backedge from [src] to [dst], if the CFG has one — how runtime
    observers (the [pp predict] measurement oracle) recognise that a
    block-to-block transition closed a path. *)
val backedge_between :
  t -> src:Digraph.vertex -> dst:Digraph.vertex -> Digraph.edge option

(** [Val] of a non-backedge CFG edge.
    @raise Invalid_argument if [e] is a backedge. *)
val edge_val : t -> Digraph.edge -> int

(** [Val] of the pseudo edges standing for backedge [v -> w], as a
    [(start, end)] pair: [start] is [Val(ENTRY -> w)] and [end] is
    [Val(v -> EXIT)].
    @raise Invalid_argument if [e] is not a backedge. *)
val backedge_pseudo_vals : t -> Digraph.edge -> int * int

(** {2 Paths} *)

type source =
  | From_entry
  | After_backedge of Digraph.edge
      (** the path begins at the backedge's target *)

type sink =
  | To_exit
  | Into_backedge of Digraph.edge
      (** the path ends by taking this backedge *)

type path = {
  source : source;
  blocks : Pp_ir.Block.label list;  (** non-empty, in execution order *)
  sink : sink;
}

(** [decode t sum] regenerates the path with the given path sum.
    @raise Invalid_argument unless [0 <= sum < num_paths t]. *)
val decode : t -> int -> path

(** [encode t path] is the path sum; inverse of {!decode}.
    @raise Invalid_argument if the path does not exist in the CFG. *)
val encode : t -> path -> int

val pp_path : Format.formatter -> path -> unit

(** {2 Traversals}

    A decoded path together with the original CFG edges it crosses, for
    clients that reason about edge attributes (feasibility, probe
    placement).  [real_edges] lists the non-backedge CFG edges of the
    traversal in execution order; the source/sink backedges themselves are
    named by [path.source] / [path.sink]. *)

type traversal = {
  sum : int;
  path : path;
  real_edges : Digraph.edge list;
}

val traverse : t -> int -> traversal

(** {2 Pruned numberings}

    A pruned numbering keeps the original Ball–Larus path sums (so probes
    and decode/encode are untouched) but fixes the set of sums a static
    analysis proved feasible, with a dense re-indexing [0 .. n-1] over that
    set.  The VM sizes path tables by the dense count, and profiles carry
    the feasible count so that shards only merge when they agree. *)

type pruned = private {
  numbering : t;
  sums : int array;  (** feasible path sums, strictly ascending *)
}

(** [prune t ~feasible] enumerates all [num_paths t] sums and keeps those
    accepted by [feasible].  Callers bound the enumeration themselves
    (see {!Pp_analysis.Feasibility}). *)
val prune : t -> feasible:(int -> bool) -> pruned

val num_feasible : pruned -> int

(** A fresh copy of the kept sums, ascending. *)
val feasible_sums : pruned -> int array

(** Dense index of a feasible sum, [None] when the sum was pruned. *)
val index_of_sum : pruned -> int -> int option

(** Inverse of {!index_of_sum}.
    @raise Invalid_argument when the index is out of range. *)
val sum_of_index : pruned -> int -> int

(** {2 Instrumentation placement}

    Placements are abstract: they name original CFG edges and the constants
    to add.  {!Pp_instrument} turns them into IR edits. *)

type backedge_op = {
  backedge : Digraph.edge;
  end_add : int;  (** commit [count\[r + end_add\]++] when taking the edge *)
  reset_to : int;  (** then set [r <- reset_to] *)
}

type placement = {
  init_needed : bool;  (** whether [r <- 0] at ENTRY is required *)
  increments : (Digraph.edge * int) list;
      (** non-backedge CFG edges with a non-zero constant to add *)
  backedge_ops : backedge_op list;  (** one per backedge, in edge-id order *)
}

(** One increment per labelled edge: [r += Val(e)] (zero-valued increments
    omitted). *)
val simple_placement : t -> placement

(** The event-counting optimization (Ball '94; Figure 1(d)): increments only
    on the chords of a maximum-weight spanning tree of the transformed graph
    plus a fictional EXIT→ENTRY edge.  [weights] estimates edge execution
    frequency (default: all 1); heavier edges are kept increment-free.
    Chord increments may be negative; every complete path still commits the
    same sum as {!simple_placement}. *)
val optimized_placement :
  ?weights:(Digraph.edge -> int) -> t -> placement
