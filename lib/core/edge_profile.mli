(** Efficient edge profiling — the Ball–Larus 1994 baseline the paper
    compares against ("roughly twice that of efficient edge profiling").

    Counters go only on the {e chords} of a spanning tree of the CFG
    extended with a fictional EXIT→ENTRY edge (Knuth's classic result);
    tree-edge counts are recovered afterwards by flow conservation. *)

module Digraph = Pp_graph.Digraph

type t

(** [plan cfg] chooses the spanning tree ([weights] estimates execution
    frequency, default uniform) and numbers the chords. *)
val plan : ?weights:(Digraph.edge -> int) -> Pp_ir.Cfg.t -> t

val cfg : t -> Pp_ir.Cfg.t

(** Instrumented edges with their counter indices, in index order.  All are
    real CFG edges (the fictional edge is always a tree edge). *)
val chords : t -> (Digraph.edge * int) list

val num_counters : t -> int

(** [merge_counts t a b] sums two shards' chord-counter vectors.  Since
    {!reconstruct} solves a linear system, reconstructing the merged
    counters equals summing the per-shard reconstructions edge by edge.
    @raise Invalid_argument on a length mismatch. *)
val merge_counts : t -> int array -> int array -> int array

(** [reconstruct t ~counts] recovers every CFG edge's execution count from
    the chord counters by solving the flow-conservation equations over the
    tree.  [counts.(i)] is chord [i]'s counter.
    @raise Invalid_argument if [counts] has the wrong length. *)
val reconstruct : t -> counts:int array -> (Digraph.edge * int) list

(** Derived per-block execution counts (sum of in-edge counts). *)
val block_counts : t -> counts:int array -> (Pp_ir.Block.label * int) list
