(** CCT persistence and rendering.

    PP's instrumentation wrote the CCT heap to a file at program exit "from
    which the CCT can be reconstructed" (§4.2); this module provides that
    round trip in a line-oriented text format, plus Graphviz rendering for
    inspection.

    The format, one record per line after a header:
    {v
    cct 1 <nodes> <merged:0|1>
    node <id> <parent-id|-1> <depth> <nsites> <proc-name-escaped> <data...>
    edge <from-id> <site> <to-id> <backedge:0|1> <indirect:0|1> <calls>
    v}
    Client data is encoded by the caller-supplied codec. *)

type 'a codec = {
  encode : 'a -> string;  (** must not contain newlines *)
  decode : string -> 'a;
}

(** A codec for the common [int array] metric payload
    (space-separated decimals). *)
val metrics_codec : int array codec

(** Whitespace/percent escaping for names embedded in space-separated
    records (shared with {!Profile_io}'s format). *)
val escape : string -> string

val unescape : string -> string

(** Unit payload (encodes to the empty string). *)
val unit_codec : unit codec

val write : codec:'a codec -> Buffer.t -> 'a Cct.t -> unit
val to_string : codec:'a codec -> 'a Cct.t -> string
val to_file : codec:'a codec -> string -> 'a Cct.t -> unit

exception Parse_error of int * string
(** Line number and message. *)

(** Rebuild a CCT (its activation stack is just the root).  Edge call
    counts, node ids, depths and client data are restored exactly;
    {!Cct.check_invariants} holds on the result.
    @raise Parse_error *)
val of_string : codec:'a codec -> string -> 'a Cct.t

val of_file : codec:'a codec -> string -> 'a Cct.t

(** Graphviz rendering; [label] decorates each record (default: the
    procedure name). *)
val to_dot : ?label:('a Cct.node -> string) -> 'a Cct.t -> string
