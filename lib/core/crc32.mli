(** CRC-32 (IEEE 802.3, the zlib polynomial) over strings, and the
    checked-line convention built on it.

    Fault-tolerant shard formats ({!Profile_io} version 2, the run
    checkpoints in [Pp_run.Checkpoint]) append one CRC token to every
    record line so a damaged file degrades to a detectable, salvageable
    prefix instead of silently parsing into wrong numbers.  CRC-32
    detects every single-bit flip and every burst error up to 32 bits —
    exactly the corruption classes a torn write or a flipped disk bit
    produces. *)

(** [digest s] is the CRC-32 of [s], as a non-negative [int]
    (fits in 32 bits). *)
val digest : string -> int

(** [tag line] appends the CRC token: ["content"] becomes
    ["content <8-hex-digit-crc>"].  [line] must not contain a
    newline. *)
val tag : string -> string

(** [untag line] verifies and strips the CRC token: [Some content] when
    the last space-separated token of [line] is the CRC-32 of everything
    before the separating space, [None] on a missing or mismatching
    token (the line was damaged). *)
val untag : string -> string option
