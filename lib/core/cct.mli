(** The calling context tree (PLDI'97 §4).

    A CCT vertex (a {e call record}) stands for the equivalence class of all
    dynamic-call-tree activations that share a calling context; with the
    recursion clause of the paper's second equivalence relation, every
    procedure occurs at most once on any root-to-leaf path, so the tree's
    depth is bounded by the number of procedures and its breadth by the
    number of call sites.  Recursive calls introduce {e backedges} — edges
    to an ancestor record — which are the only non-tree edges: a CCT never
    contains cross or forward edges.

    Construction follows the paper's algorithm: the caller passes its
    callee-slot identity down (the [site] argument of {!enter}); the callee
    reuses the slot's existing record, or searches its ancestors for a
    record of the same procedure (recursion), or allocates a fresh record.
    An explicit activation stack (the run-time lCRP/saved-gCSP chain) makes
    {!exit} and non-local {!unwind_to_depth} exact even under recursion.

    The structure is polymorphic in the per-record client data (metric
    counters, path tables, …), created on demand by [make_data]. *)

type 'a t
type 'a node

(** How the call reached the callee; indirect calls make the callee slot a
    list (Figure 7) and are accounted differently by {!Cct_stats}. *)
type call_kind = Direct | Indirect

(** [create ~make_data ()] makes a CCT holding only the root record (the
    paper's ⊤ vertex, named ["<root>"], with one callee slot for the
    program's entry point).

    [merge_call_sites] collapses all of a procedure's call sites into one
    slot — the space/precision trade-off of §4.1 (default [false]:
    call sites are distinguished, as PP does). *)
val create :
  ?merge_call_sites:bool ->
  make_data:(proc:string -> nsites:int -> 'a) ->
  unit ->
  'a t

val root : 'a t -> 'a node

(** The record of the procedure currently executing. *)
val current : 'a t -> 'a node

(** Activation-stack depth (root = 0, so [depth t >= 1] after one enter). *)
val depth : 'a t -> int

(** [enter t ~proc ~nsites ~site ~kind] records a call to [proc] (which has
    [nsites] call sites of its own) through call site [site] of the current
    record, returning the callee's record.
    @raise Invalid_argument if [site] is out of range for the current
    record, or if an existing record for [proc] disagrees on [nsites]. *)
val enter :
  'a t -> proc:string -> nsites:int -> site:int -> kind:call_kind -> 'a node

(** Does the current record's slot for [site] already hold a record of
    [proc]?  (True from the second call on — the construction algorithm's
    fast path, which skips the ancestor search.) *)
val has_edge : 'a t -> proc:string -> site:int -> bool

(** Return from the current activation.
    @raise Invalid_argument when only the root is active. *)
val exit : 'a t -> unit

(** Non-local return (longjmp / exception): pop activations until [depth]
    remains.  @raise Invalid_argument if deeper than the current depth. *)
val unwind_to_depth : 'a t -> int -> unit

(** {2 Node accessors} *)

val proc : _ node -> string
val data : 'a node -> 'a

(** Tree parent ([None] for the root). *)
val parent : 'a node -> 'a node option

(** Depth of the record in the tree (root = 0). *)
val node_depth : _ node -> int

val nsites : _ node -> int

(** Dense id, allocation order; root = 0. *)
val id : _ node -> int

type 'a edge = {
  site : int;
  target : 'a node;
  is_backedge : bool;  (** recursion: target is an ancestor *)
  kind : call_kind;
  mutable calls : int;  (** times this edge was traversed *)
}

(** Out-edges of a record, ordered by slot then first-use. *)
val edges : 'a node -> 'a edge list

(** Tree children only (non-backedge targets). *)
val children : 'a node -> 'a node list

(** {2 Whole-tree queries} *)

(** All records in allocation order (root first). *)
val iter : ('a node -> unit) -> 'a t -> unit

val fold : ('acc -> 'a node -> 'acc) -> 'acc -> 'a t -> 'acc

(** Number of records, root included. *)
val num_nodes : _ t -> int

(** The calling context of a record: procedure names from the root's child
    down to the record itself. *)
val context : 'a node -> string list

(** [find_context t ctx] finds the record reached by following tree edges
    through the named procedures. *)
val find_context : 'a t -> string list -> 'a node option

(** {2 Reconstruction (used by {!Cct_io})} *)

(** Are call sites merged into one slot? *)
val merged : _ t -> bool

(** Graft a fresh record under [parent] without recording a call.  Ids are
    assigned in graft order. *)
val graft_node :
  'a t -> parent:'a node -> proc:string -> nsites:int -> data:'a -> 'a node

(** Graft an edge with an explicit traversal count. *)
val graft_edge :
  'a t ->
  from_:'a node ->
  site:int ->
  target:'a node ->
  is_backedge:bool ->
  kind:call_kind ->
  calls:int ->
  unit

(** {2 Merging}

    Shards of a run — separate processes profiling the same program — each
    build their own CCT; [merge] combines two into the tree a single serial
    run over the concatenated event streams would have built. *)

(** [merge ~merge_data a b] is the structural union of the two trees: call
    records are identified by their calling context (per callee slot, edges
    are keyed by the callee procedure, exactly as {!enter} looks them up —
    so merged-call-site trees unify on the single collapsed slot), edge
    traversal counts are summed, and a recursion backedge in either input
    becomes a backedge to the corresponding ancestor of the result.  Client
    data is combined by [merge_data], called with the data of whichever
    input trees have the record ([None] when only one shard reached that
    context); it must copy mutable payloads, since the result must not alias
    the inputs.  Edge order within a slot is [a]'s first-use order followed
    by records only [b] has, so merging shards that partition one serial
    event stream reproduces the serial first-use order.
    @raise Invalid_argument if the trees disagree on [merge_call_sites], on
    a procedure's site count, or on an edge's backedge-ness (the shards
    came from different programs). *)
val merge :
  merge_data:('a option -> 'a option -> 'a) -> 'a t -> 'a t -> 'a t

(** Structural invariants, checked by the test suite:
    no procedure repeats along any root-to-leaf tree path; every backedge
    targets an ancestor; every non-root record is its parent's child.
    @raise Invalid_argument on violation. *)
val check_invariants : 'a t -> unit
