module Event = Pp_machine.Event
module Diag = Pp_ir.Diag

type saved = {
  program_hash : string;
  mode : string;
  pic0 : Event.t;
  pic1 : Event.t;
  procs : (string * int * (int * Profile.path_metrics) list) list;
  feasible : (string * int) list;
      (* per procedure: statically feasible path count, when the run was
         instrumented under a pruned numbering *)
  coverage : (string * (int * int)) list;
      (* per procedure: (sampled, total) path commits — the scaling
         certificate of a sampled run.  Exhaustive procedures (sampled =
         total) are dropped by [canonical], so unsampled shards carry no
         coverage records and a duty-1.0 sampled shard serializes
         byte-identically to an exhaustive one. *)
}

let program_hash prog = Digest.to_hex (Digest.string (Marshal.to_string prog []))

let sort_paths paths = List.sort (fun (a, _) (b, _) -> compare a b) paths

let canonical s =
  {
    s with
    procs =
      List.map (fun (p, n, paths) -> (p, n, sort_paths paths)) s.procs
      |> List.sort (fun (a, _, _) (b, _, _) -> compare a b);
    feasible = List.sort compare s.feasible;
    coverage =
      List.filter (fun (_, (sampled, total)) -> sampled <> total) s.coverage
      |> List.sort compare;
  }

let of_profile ?(feasible = []) ?(coverage = []) ~program_hash ~mode
    (p : Profile.t) =
  canonical
    {
      program_hash;
      mode;
      pic0 = p.Profile.pic0;
      pic1 = p.Profile.pic1;
      procs =
        List.map
          (fun (pp : Profile.proc_profile) ->
            ( pp.Profile.proc,
              Ball_larus.num_paths pp.Profile.numbering,
              pp.Profile.paths ))
          p.Profile.procs;
      feasible;
      coverage;
    }

let totals s =
  List.fold_left
    (fun acc (_, _, paths) ->
      List.fold_left
        (fun (f, a, b) (_, (m : Profile.path_metrics)) ->
          (f + m.Profile.freq, a + m.Profile.m0, b + m.Profile.m1))
        acc paths)
    (0, 0, 0) s.procs

(* The merge operations below report shard mismatches as structured
   diagnostics (the same Diag type `pp check` emits), located at the
   offending procedure — or the pseudo-procedure "<header>" for
   whole-profile disagreements. *)

let header_error fmt = Diag.error (Diag.proc_loc "<header>") fmt

let merge a b =
  if a.program_hash <> b.program_hash then
    Error
      (header_error "program hash mismatch: %s vs %s (shards of different \
                     binaries cannot be summed)"
         a.program_hash b.program_hash)
  else if a.mode <> b.mode then
    Error
      (header_error "instrumentation mode mismatch: %s vs %s" a.mode b.mode)
  else if a.pic0 <> b.pic0 || a.pic1 <> b.pic1 then
    Error
      (header_error "PIC selection mismatch: %s/%s vs %s/%s"
         (Event.name a.pic0) (Event.name a.pic1) (Event.name b.pic0)
         (Event.name b.pic1))
  else begin
    let conflict = ref None in
    let add_paths table =
      List.iter (fun (sum, (m : Profile.path_metrics)) ->
          let cur =
            Option.value
              ~default:{ Profile.freq = 0; m0 = 0; m1 = 0 }
              (Hashtbl.find_opt table sum)
          in
          Hashtbl.replace table sum
            {
              Profile.freq = cur.Profile.freq + m.Profile.freq;
              m0 = cur.Profile.m0 + m.Profile.m0;
              m1 = cur.Profile.m1 + m.Profile.m1;
            })
    in
    let merged_proc (name, na, pa) =
      match List.find_opt (fun (n, _, _) -> n = name) b.procs with
      | Some (_, nb, _) when na <> nb ->
          conflict :=
            Some
              (Diag.error (Diag.proc_loc name)
                 "numbered with %d potential paths in one shard, %d in the \
                  other"
                 na nb);
          (name, na, pa)
      | Some (_, _, pb) ->
          let table = Hashtbl.create 32 in
          add_paths table pa;
          add_paths table pb;
          ( name,
            na,
            Hashtbl.fold (fun sum m acc -> (sum, m) :: acc) table []
            |> sort_paths )
      | None -> (name, na, pa)
    in
    let a_names = List.map (fun (n, _, _) -> n) a.procs in
    let procs =
      List.map merged_proc a.procs
      @ List.filter (fun (n, _, _) -> not (List.mem n a_names)) b.procs
    in
    (* Feasible-path annotations must agree wherever both shards carry
       one; otherwise take the union. *)
    let feasible =
      List.map
        (fun (name, ka) ->
          (match List.assoc_opt name b.feasible with
          | Some kb when ka <> kb ->
              if !conflict = None then
                conflict :=
                  Some
                    (Diag.error (Diag.proc_loc name)
                       "feasible-path count mismatch: %d vs %d" ka kb)
          | _ -> ());
          (name, ka))
        a.feasible
      @ List.filter
          (fun (name, _) -> not (List.mem_assoc name a.feasible))
          b.feasible
    in
    (* Coverage windows sum pairwise.  A shard without a coverage entry
       for a procedure ran it exhaustively: its window defaults to
       (f, f) where f is the shard's recorded commit count (= frequency
       sum), so sampled and exhaustive shards compose exactly.  Procs
       covered by neither shard would default to a trivial window that
       [canonical] drops, so only procs named by at least one entry need
       merging. *)
    let freq_sum s name =
      match List.find_opt (fun (n, _, _) -> n = name) s.procs with
      | Some (_, _, paths) ->
          List.fold_left
            (fun acc (_, (m : Profile.path_metrics)) -> acc + m.Profile.freq)
            0 paths
      | None -> 0
    in
    let window s name =
      match List.assoc_opt name s.coverage with
      | Some w -> w
      | None ->
          let f = freq_sum s name in
          (f, f)
    in
    let covered =
      List.sort_uniq compare
        (List.map fst a.coverage @ List.map fst b.coverage)
    in
    let coverage =
      List.map
        (fun name ->
          let sa, ta = window a name and sb, tb = window b name in
          (name, (sa + sb, ta + tb)))
        covered
    in
    match !conflict with
    | Some d -> Error d
    | None -> Ok (canonical { a with procs; feasible; coverage })
  end

let merge_all = function
  | [] -> Error (header_error "no profiles to merge")
  | s :: rest ->
      List.fold_left
        (fun acc next ->
          match acc with Error _ -> acc | Ok s -> merge s next)
        (Ok (canonical s)) rest

(* --- serialization ---

   Version 2 (what to_string writes): every line carries a trailing
   CRC-32 token, and the header carries the body record count, so a
   damaged file degrades to a detectable valid prefix:

   profile 2 <hash> <mode> <pic0> <pic1> <nrecords> <crc>
   feasible <name-escaped> <num-feasible-paths> <crc>
   coverage <name-escaped> <sampled-commits> <total-commits> <crc>
   proc <name-escaped> <num-potential-paths> <crc>
   path <sum> <freq> <m0> <m1> <crc>

   Version 1 (still read): the same records without CRC tokens or the
   header count (and never a coverage record — sampled runs postdate the
   format).  A proc record opens a section; its path records follow.
   The optional feasible/coverage records sit between the header and the
   first proc. *)

let body_lines s =
  let buf = ref [] in
  let add l = buf := l :: !buf in
  List.iter
    (fun (name, k) ->
      add (Printf.sprintf "feasible %s %d" (Cct_io.escape name) k))
    s.feasible;
  List.iter
    (fun (name, (sampled, total)) ->
      add
        (Printf.sprintf "coverage %s %d %d" (Cct_io.escape name) sampled
           total))
    s.coverage;
  List.iter
    (fun (name, npaths, paths) ->
      add (Printf.sprintf "proc %s %d" (Cct_io.escape name) npaths);
      List.iter
        (fun (sum, (m : Profile.path_metrics)) ->
          add
            (Printf.sprintf "path %d %d %d %d" sum m.Profile.freq m.Profile.m0
               m.Profile.m1))
        paths)
    s.procs;
  List.rev !buf

let to_string s =
  let s = canonical s in
  let body = body_lines s in
  let header =
    Printf.sprintf "profile 2 %s %s %s %s %d" s.program_hash
      (Cct_io.escape s.mode)
      (Cct_io.escape (Event.name s.pic0))
      (Cct_io.escape (Event.name s.pic1))
      (List.length body)
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun line ->
      Buffer.add_string buf (Crc32.tag line);
      Buffer.add_char buf '\n')
    (header :: body);
  Buffer.contents buf

exception Parse_error of int * string

let fail line fmt =
  Format.kasprintf (fun s -> raise (Parse_error (line, s))) fmt

(* Record dispatch shared by both format versions: [tokens] is one
   record line split on spaces, CRC already stripped for v2. *)
type pstate = {
  mutable procs : (string * int * (int * Profile.path_metrics) list ref) list;
      (* reversed *)
  mutable feasible : (string * int) list;  (* reversed *)
  mutable coverage : (string * (int * int)) list;  (* reversed *)
}

let dispatch_record lineno st = function
  | [ "feasible"; name; k ] ->
      let k =
        try int_of_string k
        with Failure _ -> fail lineno "bad feasible count %S" k
      in
      st.feasible <- (Cct_io.unescape name, k) :: st.feasible
  | [ "coverage"; name; sampled; total ] ->
      let num s =
        try int_of_string s
        with Failure _ -> fail lineno "bad coverage count %S" s
      in
      st.coverage <-
        (Cct_io.unescape name, (num sampled, num total)) :: st.coverage
  | [ "proc"; name; npaths ] ->
      let npaths =
        try int_of_string npaths
        with Failure _ -> fail lineno "bad path count %S" npaths
      in
      st.procs <- (Cct_io.unescape name, npaths, ref []) :: st.procs
  | [ "path"; sum; freq; m0; m1 ] -> (
      let num s =
        try int_of_string s with Failure _ -> fail lineno "bad int %S" s
      in
      match st.procs with
      | [] -> fail lineno "path before proc"
      | (_, _, paths) :: _ ->
          paths :=
            (num sum, { Profile.freq = num freq; m0 = num m0; m1 = num m1 })
            :: !paths)
  | word :: _ -> fail lineno "unknown record %S" word
  | [] -> ()

let finish_state ~header st =
  let program_hash, mode, pic0, pic1 = header in
  canonical
    {
      program_hash;
      mode;
      pic0;
      pic1;
      procs =
        List.rev_map
          (fun (name, npaths, paths) -> (name, npaths, List.rev !paths))
          st.procs;
      feasible = List.rev st.feasible;
      coverage = List.rev st.coverage;
    }

let parse_event lineno s =
  match Event.of_name (Cct_io.unescape s) with
  | Some e -> e
  | None -> fail lineno "unknown event %S" s

(* --- version 1 reader (no CRCs; trusted) --- *)

let of_string_v1 lines =
  let header = ref None in
  let st = { procs = []; feasible = []; coverage = [] } in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line <> "" then
        match String.split_on_char ' ' line with
        | [ "profile"; "1"; hash; mode; pic0; pic1 ] ->
            if !header <> None then fail lineno "duplicate header";
            header :=
              Some
                ( hash,
                  Cct_io.unescape mode,
                  parse_event lineno pic0,
                  parse_event lineno pic1 )
        | tokens ->
            if !header = None then
              fail lineno "%s before header"
                (match tokens with w :: _ -> w | [] -> "record");
            dispatch_record lineno st tokens)
    lines;
  match !header with
  | None -> raise (Parse_error (0, "empty or headerless input"))
  | Some header -> finish_state ~header st

(* --- version 2 reader and salvage --- *)

type salvage_report = { total : int; recovered : int; first_bad_line : int }

(* Scan a version-2 shard front to back, CRC-checking every line, and
   stop at the first damaged or structurally invalid record.  Returns
   the parsed valid prefix plus a report when anything was dropped;
   [Error (lineno, msg)] when even the header is unusable. *)
let scan_v2 text =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  if Array.length lines = 0 then Error (0, "empty input")
  else
    match Crc32.untag lines.(0) with
    | None -> Error (1, "damaged or missing header checksum")
    | Some content -> (
        match String.split_on_char ' ' content with
        | [ "profile"; "2"; hash; mode; pic0; pic1; total ] -> (
            match
              let total =
                match int_of_string_opt total with
                | Some n when n >= 0 -> n
                | _ -> fail 1 "bad record count %S" total
              in
              ( ( hash,
                  Cct_io.unescape mode,
                  parse_event 1 pic0,
                  parse_event 1 pic1 ),
                total )
            with
            | exception Parse_error (ln, msg) -> Error (ln, msg)
            | header, total ->
                let st = { procs = []; feasible = []; coverage = [] } in
                let recovered = ref 0 in
                let bad = ref None in
                let i = ref 1 in
                while !bad = None && !i < Array.length lines do
                  let lineno = !i + 1 in
                  let line = lines.(!i) in
                  if line = "" then
                    (* The writer never emits blank lines: this is the
                       trailing element after the final newline (end of
                       file) or a damaged line.  Either way, stop. *)
                    i := Array.length lines
                  else if !recovered >= total then
                    (* More records than the header promised: the tail
                       was spliced or duplicated.  The promised prefix
                       is intact; everything beyond it is suspect. *)
                    bad := Some lineno
                  else begin
                    (match Crc32.untag line with
                    | None -> bad := Some lineno
                    | Some content -> (
                        match
                          dispatch_record lineno st
                            (String.split_on_char ' ' content)
                        with
                        | () -> incr recovered
                        | exception Parse_error _ -> bad := Some lineno));
                    incr i
                  end
                done;
                let saved = finish_state ~header st in
                if !bad = None && !recovered = total then Ok (saved, None)
                else
                  Ok
                    ( saved,
                      Some
                        {
                          total;
                          recovered = !recovered;
                          first_bad_line =
                            (match !bad with
                            | Some ln -> ln
                            | None -> !recovered + 2);
                        } ))
        | _ -> Error (1, "malformed version-2 header"))

let is_v2 text =
  let rec first = function
    | [] -> None
    | l :: rest ->
        let l = String.trim l in
        if l = "" then first rest else Some l
  in
  match first (String.split_on_char '\n' text) with
  | Some l -> String.length l >= 10 && String.sub l 0 10 = "profile 2 "
  | None -> false

let of_string text =
  if is_v2 text then
    match scan_v2 text with
    | Error (ln, msg) -> raise (Parse_error (ln, msg))
    | Ok (s, None) -> s
    | Ok (_, Some rep) ->
        raise
          (Parse_error
             ( rep.first_bad_line,
               Printf.sprintf
                 "damaged shard: only %d of %d records are intact (salvage \
                  readers can recover the valid prefix)"
                 rep.recovered rep.total ))
  else of_string_v1 (String.split_on_char '\n' text)

(* The pseudo-procedure "<shard>" locates whole-file damage, the same
   way merge mismatches sit at "<header>". *)
let salvage_diag ~file rep =
  Diag.error (Diag.proc_loc "<shard>")
    "%s:%d: salvaged %d of %d records; dropped %d damaged or missing \
     record%s"
    file rep.first_bad_line rep.recovered rep.total (rep.total - rep.recovered)
    (if rep.total - rep.recovered = 1 then "" else "s")

let salvage_string text =
  if is_v2 text then
    match scan_v2 text with
    | Ok result -> Ok result
    | Error (ln, msg) ->
        Error
          (Diag.error (Diag.proc_loc "<shard>") "line %d: %s (header \
                                                 unrecoverable)" ln msg)
  else
    (* Version 1 carries no checksums: either it parses in full or
       nothing can be trusted. *)
    match of_string_v1 (String.split_on_char '\n' text) with
    | s -> Ok (s, None)
    | exception Parse_error (ln, msg) ->
        Error
          (Diag.error (Diag.proc_loc "<shard>")
             "line %d: %s (not a checksummed shard; cannot salvage)" ln msg)

let read_all path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let salvage_file path =
  match read_all path with
  | text -> salvage_string text
  | exception Sys_error msg ->
      Error (Diag.error (Diag.proc_loc "<shard>") "%s" msg)

(* --- writing: atomic rename, with injectable faults for chaos runs --- *)

type write_fault =
  | Die_mid_write
  | Torn_write
  | Flip_bit of int
  | Truncate_at of int

exception Killed_mid_write

let write_raw path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let corrupt_file path f =
  let text = read_all path in
  write_raw path (f text)

let flip_bit text k =
  let bits = 8 * String.length text in
  if bits = 0 then text
  else
    let k = ((k mod bits) + bits) mod bits in
    let b = Bytes.of_string text in
    Bytes.set b (k / 8)
      (Char.chr (Char.code (Bytes.get b (k / 8)) lxor (1 lsl (k mod 8))));
    Bytes.to_string b

let truncate_at text k =
  let n = String.length text in
  if n = 0 then text
  else
    let k = ((k mod n) + n) mod n in
    String.sub text 0 k

let half text = String.sub text 0 (String.length text / 2)

let temp_path path = path ^ ".tmp"

let to_file ?fault path s =
  let payload = to_string s in
  match fault with
  | Some Die_mid_write ->
      (* The writer dies between opening the temp file and renaming it:
         the destination is untouched (the previous version, if any,
         survives intact), only a .tmp carcass is left behind. *)
      write_raw (temp_path path) (half payload);
      raise Killed_mid_write
  | Some Torn_write ->
      (* What a non-atomic writer leaves when killed: a partial file at
         the destination itself.  This is the failure mode the
         temp+rename discipline exists to prevent; injecting it
         exercises the salvage reader. *)
      write_raw path (half payload);
      raise Killed_mid_write
  | None | Some (Flip_bit _) | Some (Truncate_at _) -> (
      write_raw (temp_path path) payload;
      Sys.rename (temp_path path) path;
      match fault with
      | Some (Flip_bit k) -> corrupt_file path (fun t -> flip_bit t k)
      | Some (Truncate_at k) -> corrupt_file path (fun t -> truncate_at t k)
      | _ -> ())

let of_file path = of_string (read_all path)
