module Event = Pp_machine.Event
module Diag = Pp_ir.Diag

type saved = {
  program_hash : string;
  mode : string;
  pic0 : Event.t;
  pic1 : Event.t;
  procs : (string * int * (int * Profile.path_metrics) list) list;
  feasible : (string * int) list;
      (* per procedure: statically feasible path count, when the run was
         instrumented under a pruned numbering *)
}

let program_hash prog = Digest.to_hex (Digest.string (Marshal.to_string prog []))

let sort_paths paths = List.sort (fun (a, _) (b, _) -> compare a b) paths

let canonical s =
  {
    s with
    procs =
      List.map (fun (p, n, paths) -> (p, n, sort_paths paths)) s.procs
      |> List.sort (fun (a, _, _) (b, _, _) -> compare a b);
    feasible = List.sort compare s.feasible;
  }

let of_profile ?(feasible = []) ~program_hash ~mode (p : Profile.t) =
  canonical
    {
      program_hash;
      mode;
      pic0 = p.Profile.pic0;
      pic1 = p.Profile.pic1;
      procs =
        List.map
          (fun (pp : Profile.proc_profile) ->
            ( pp.Profile.proc,
              Ball_larus.num_paths pp.Profile.numbering,
              pp.Profile.paths ))
          p.Profile.procs;
      feasible;
    }

let totals s =
  List.fold_left
    (fun acc (_, _, paths) ->
      List.fold_left
        (fun (f, a, b) (_, (m : Profile.path_metrics)) ->
          (f + m.Profile.freq, a + m.Profile.m0, b + m.Profile.m1))
        acc paths)
    (0, 0, 0) s.procs

(* The merge operations below report shard mismatches as structured
   diagnostics (the same Diag type `pp check` emits), located at the
   offending procedure — or the pseudo-procedure "<header>" for
   whole-profile disagreements. *)

let header_error fmt = Diag.error (Diag.proc_loc "<header>") fmt

let merge a b =
  if a.program_hash <> b.program_hash then
    Error
      (header_error "program hash mismatch: %s vs %s (shards of different \
                     binaries cannot be summed)"
         a.program_hash b.program_hash)
  else if a.mode <> b.mode then
    Error
      (header_error "instrumentation mode mismatch: %s vs %s" a.mode b.mode)
  else if a.pic0 <> b.pic0 || a.pic1 <> b.pic1 then
    Error
      (header_error "PIC selection mismatch: %s/%s vs %s/%s"
         (Event.name a.pic0) (Event.name a.pic1) (Event.name b.pic0)
         (Event.name b.pic1))
  else begin
    let conflict = ref None in
    let add_paths table =
      List.iter (fun (sum, (m : Profile.path_metrics)) ->
          let cur =
            Option.value
              ~default:{ Profile.freq = 0; m0 = 0; m1 = 0 }
              (Hashtbl.find_opt table sum)
          in
          Hashtbl.replace table sum
            {
              Profile.freq = cur.Profile.freq + m.Profile.freq;
              m0 = cur.Profile.m0 + m.Profile.m0;
              m1 = cur.Profile.m1 + m.Profile.m1;
            })
    in
    let merged_proc (name, na, pa) =
      match List.find_opt (fun (n, _, _) -> n = name) b.procs with
      | Some (_, nb, _) when na <> nb ->
          conflict :=
            Some
              (Diag.error (Diag.proc_loc name)
                 "numbered with %d potential paths in one shard, %d in the \
                  other"
                 na nb);
          (name, na, pa)
      | Some (_, _, pb) ->
          let table = Hashtbl.create 32 in
          add_paths table pa;
          add_paths table pb;
          ( name,
            na,
            Hashtbl.fold (fun sum m acc -> (sum, m) :: acc) table []
            |> sort_paths )
      | None -> (name, na, pa)
    in
    let a_names = List.map (fun (n, _, _) -> n) a.procs in
    let procs =
      List.map merged_proc a.procs
      @ List.filter (fun (n, _, _) -> not (List.mem n a_names)) b.procs
    in
    (* Feasible-path annotations must agree wherever both shards carry
       one; otherwise take the union. *)
    let feasible =
      List.map
        (fun (name, ka) ->
          (match List.assoc_opt name b.feasible with
          | Some kb when ka <> kb ->
              if !conflict = None then
                conflict :=
                  Some
                    (Diag.error (Diag.proc_loc name)
                       "feasible-path count mismatch: %d vs %d" ka kb)
          | _ -> ());
          (name, ka))
        a.feasible
      @ List.filter
          (fun (name, _) -> not (List.mem_assoc name a.feasible))
          b.feasible
    in
    match !conflict with
    | Some d -> Error d
    | None -> Ok (canonical { a with procs; feasible })
  end

let merge_all = function
  | [] -> Error (header_error "no profiles to merge")
  | s :: rest ->
      List.fold_left
        (fun acc next ->
          match acc with Error _ -> acc | Ok s -> merge s next)
        (Ok (canonical s)) rest

(* --- serialization ---

   profile 1 <hash> <mode> <pic0> <pic1>
   feasible <name-escaped> <num-feasible-paths>
   proc <name-escaped> <num-potential-paths>
   path <sum> <freq> <m0> <m1>

   A proc record opens a section; its path records follow.  The optional
   feasible records (one per statically pruned procedure) sit between the
   header and the first proc. *)

let to_string s =
  let s = canonical s in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "profile 1 %s %s %s %s\n" s.program_hash
       (Cct_io.escape s.mode)
       (Cct_io.escape (Event.name s.pic0))
       (Cct_io.escape (Event.name s.pic1)));
  List.iter
    (fun (name, k) ->
      Buffer.add_string buf
        (Printf.sprintf "feasible %s %d\n" (Cct_io.escape name) k))
    s.feasible;
  List.iter
    (fun (name, npaths, paths) ->
      Buffer.add_string buf
        (Printf.sprintf "proc %s %d\n" (Cct_io.escape name) npaths);
      List.iter
        (fun (sum, (m : Profile.path_metrics)) ->
          Buffer.add_string buf
            (Printf.sprintf "path %d %d %d %d\n" sum m.Profile.freq
               m.Profile.m0 m.Profile.m1))
        paths)
    s.procs;
  Buffer.contents buf

exception Parse_error of int * string

let fail line fmt =
  Format.kasprintf (fun s -> raise (Parse_error (line, s))) fmt

let of_string text =
  let header = ref None in
  let procs = ref [] in  (* (name, npaths, paths_rev) list, reversed *)
  let feasible = ref [] in
  let event lineno s =
    match Event.of_name (Cct_io.unescape s) with
    | Some e -> e
    | None -> fail lineno "unknown event %S" s
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line <> "" then
        match String.split_on_char ' ' line with
        | [ "profile"; "1"; hash; mode; pic0; pic1 ] ->
            if !header <> None then fail lineno "duplicate header";
            header :=
              Some
                ( hash,
                  Cct_io.unescape mode,
                  event lineno pic0,
                  event lineno pic1 )
        | [ "feasible"; name; k ] ->
            if !header = None then fail lineno "feasible before header";
            let k =
              try int_of_string k
              with Failure _ -> fail lineno "bad feasible count %S" k
            in
            feasible := (Cct_io.unescape name, k) :: !feasible
        | [ "proc"; name; npaths ] ->
            if !header = None then fail lineno "proc before header";
            let npaths =
              try int_of_string npaths
              with Failure _ -> fail lineno "bad path count %S" npaths
            in
            procs := (Cct_io.unescape name, npaths, ref []) :: !procs
        | [ "path"; sum; freq; m0; m1 ] -> (
            let num s =
              try int_of_string s with Failure _ -> fail lineno "bad int %S" s
            in
            match !procs with
            | [] -> fail lineno "path before proc"
            | (_, _, paths) :: _ ->
                paths :=
                  ( num sum,
                    { Profile.freq = num freq; m0 = num m0; m1 = num m1 } )
                  :: !paths)
        | word :: _ -> fail lineno "unknown record %S" word
        | [] -> ())
    (String.split_on_char '\n' text);
  match !header with
  | None -> raise (Parse_error (0, "empty or headerless input"))
  | Some (program_hash, mode, pic0, pic1) ->
      canonical
        {
          program_hash;
          mode;
          pic0;
          pic1;
          procs =
            List.rev_map
              (fun (name, npaths, paths) -> (name, npaths, List.rev !paths))
              !procs;
          feasible = List.rev !feasible;
        }

let to_file path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string s))

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
