(** The closure-threaded compilation tier.

    {!create} translates every procedure of the program behind an
    {!Interp.t} into one pre-compiled closure per basic block: operands
    resolved to register-array slots at compile time, direct-threaded
    successor dispatch (a block's terminator tail-calls the next block's
    closure), and machine-model events batched per block through
    {!Pp_machine.Machine.block_step}.  Blocks containing calls,
    profiling pseudo-ops or PIC access run on a precise per-instruction
    tier, and a trapping batched block replays the machine events of its
    completed prefix before re-raising — so counters, cycles, output,
    profiles and {!Interp.Trap} behaviour are bit-identical to
    {!Interp.run} over the same state.

    The compiled code executes against the interpreter's own state:
    hooks installed on the {!Interp.t} (telemetry, sampling, block
    trace, block probe) fire identically under either engine. *)

type t

(** Compile every procedure.  The program was already validated and laid
    out by {!Interp.create}. *)
val create : Interp.t -> t

(** Execute [main] to completion, like {!Interp.run}.
    @raise Interp.Trap *)
val run : t -> Interp.result
