(* The sampled-instrumentation controller (Metz & Lencevicius style):
   instead of recording every path commit, whole bursts of consecutive
   commits are enabled or disabled by a seed-deterministic draw against a
   per-procedure duty cycle.  The VM consults [decide] once per gateable
   probe; a disabled probe skips its runtime dispatch entirely, so the
   machine model never charges its fetches, loads or stores — the saved
   work is exactly the measured overhead reduction.

   Determinism contract: the decision for the [n]-th commit of procedure
   [p] is a pure function of (seed, p, n / burst, duty p).  Tick streams
   are per procedure, so interleavings — different engines, different
   shard orders, different [--jobs] — cannot perturb the schedule. *)

(* splitmix-style mixing, kept local: lib/vm sits below lib/run, so the
   identical Faults.mix cannot be reused without inverting the
   dependency.  Same constants, same 62-bit masking. *)
let mask = (1 lsl 62) - 1

let mix xs =
  let golden = 0x1e3779b97f4a7c15 land mask in
  let z =
    List.fold_left (fun acc x -> (acc + (x land mask) + golden) land mask) 0 xs
  in
  let z = z lxor (z lsr 30) in
  let z = z * 0x3f58476d1ce4e5b9 land mask in
  let z = z lxor (z lsr 27) in
  let z = z * 0x14d049bb133111eb land mask in
  z lxor (z lsr 31)

let unit_float h = float_of_int (h land 0xfffffff) /. float_of_int 0x10000000

type window = { mutable sampled : int; mutable total : int }

type t = {
  seed : int;
  burst : int;
  mutable duty : float;
  per_proc : (string, float) Hashtbl.t;
  mutable enabled : bool;
  ticks : (string, int ref) Hashtbl.t;
  coverage : (string, window) Hashtbl.t;
}

let default_burst = 64

let create ?(burst = default_burst) ?(duty = 1.0) ~seed () =
  if burst <= 0 then invalid_arg "Sampling.create: burst <= 0";
  if duty < 0.0 || duty > 1.0 then
    invalid_arg "Sampling.create: duty outside [0, 1]";
  {
    seed;
    burst;
    duty;
    per_proc = Hashtbl.create 8;
    enabled = true;
    ticks = Hashtbl.create 32;
    coverage = Hashtbl.create 32;
  }

let set_duty t ?proc duty =
  if duty < 0.0 || duty > 1.0 then
    invalid_arg "Sampling.set_duty: duty outside [0, 1]";
  match proc with
  | None -> t.duty <- duty
  | Some p -> Hashtbl.replace t.per_proc p duty

let duty_of t proc =
  match Hashtbl.find_opt t.per_proc proc with
  | Some d -> d
  | None -> t.duty

let set_enabled t on = t.enabled <- on
let enabled t = t.enabled
let seed t = t.seed
let burst t = t.burst

let window_of t proc =
  match Hashtbl.find_opt t.coverage proc with
  | Some w -> w
  | None ->
      let w = { sampled = 0; total = 0 } in
      Hashtbl.replace t.coverage proc w;
      w

(* One probe decision: consumes the procedure's next tick and records it
   in the coverage window.  The draw is per burst window, so consecutive
   commits stay enabled (or disabled) together — countdown bursts rather
   than per-commit coin flips. *)
let decide t ~proc =
  let tick =
    match Hashtbl.find_opt t.ticks proc with
    | Some r ->
        incr r;
        !r - 1
    | None ->
        Hashtbl.replace t.ticks proc (ref 1);
        0
  in
  let on =
    (not t.enabled)
    ||
    let duty = duty_of t proc in
    if duty >= 1.0 then true
    else if duty <= 0.0 then false
    else
      unit_float (mix [ t.seed; Hashtbl.hash proc; tick / t.burst ]) < duty
  in
  let w = window_of t proc in
  w.total <- w.total + 1;
  if on then w.sampled <- w.sampled + 1;
  on

let coverage t =
  Hashtbl.fold (fun p w acc -> (p, (w.sampled, w.total)) :: acc) t.coverage []
  |> List.sort compare

let scale ~sampled ~total =
  if sampled <= 0 || total <= sampled then 1.0
  else float_of_int total /. float_of_int sampled
