(* The closure-threaded compilation tier.

   Each validated CFG is translated once, ahead of execution, into one
   OCaml closure per basic block: operands are resolved to register-array
   slots at compile time, the per-instruction opcode dispatch disappears,
   and a block's successor transfer is a direct tail call into the next
   block's closure.  Machine-model events are batched per block — the
   semantic closures run first, recording load/store addresses into a
   per-block buffer, then one {!Pp_machine.Machine.block_step} call
   replays the block's event sequence in original order (fetch runs
   fused, clock-sensitive events individual).

   Blocks that can observe or perturb mid-block machine state — calls,
   profiling pseudo-ops, PIC reads/writes — are compiled on a precise
   tier instead: per-instruction closures that report events inline,
   exactly like the interpreter.  A batched block that traps (division by
   zero, memory fault, float conversion, unresolved symbol) replays the
   machine events of the completed prefix plus the faulting instruction's
   pre-trap events before re-raising, so counters, cycles and [Trap]
   messages stay bit-identical to {!Interp.run}.

   The compiler executes against the interpreter's own state ([Interp.t]
   images, memory, machine, runtime, hooks), which is what makes the two
   engines differentially testable: same program, same initial state,
   byte-comparable results. *)

module I = Pp_ir.Instr
module Block = Pp_ir.Block
module Proc = Pp_ir.Proc
module Layout = Pp_ir.Layout
module Machine = Pp_machine.Machine
module Counters = Pp_machine.Counters

type frame = {
  iregs : int array;
  fregs : float array;
  fp : int;
  mutable trap_ix : int;
      (* index of the instruction whose semantic closure is mid-flight;
         maintained only by closures that can trap, read only when one
         does (to drive the event replay of the completed prefix) *)
}

type ret_value = Vint of int | Vfloat of float | Vvoid

type cproc = {
  image : Interp.image;
  mutable blocks : (frame -> ret_value) array;
}

type t = { st : Interp.t; cprocs : cproc array }

(* One procedure activation: allocate registers and the frame, run the
   entry block (control then threads itself through tail calls).  Mirrors
   [Interp.exec_proc] — including not restoring [sp] or the call stack
   when a trap propagates. *)
let call_proc st (cp : cproc) ~iargs ~fargs =
  let p = cp.image.Interp.proc in
  let iregs = Array.make (max p.Proc.niregs 1) 0 in
  let fregs = Array.make (max p.Proc.nfregs 1) 0.0 in
  List.iteri (fun i v -> iregs.(i) <- v) iargs;
  List.iteri (fun i v -> fregs.(i) <- v) fargs;
  let saved_sp = Interp.stack_pointer st in
  let fp = saved_sp - cp.image.Interp.frame_bytes in
  if fp < Layout.stack_limit then
    Interp.trap "stack overflow in %s" p.Proc.name;
  Interp.set_stack_pointer st fp;
  Interp.push_activation st p.Proc.name;
  Machine.fp_frame (Interp.machine st) ~nregs:(max p.Proc.nfregs 1);
  let v = cp.blocks.(p.Proc.entry) { iregs; fregs; fp; trap_ix = 0 } in
  Interp.set_stack_pointer st saved_sp;
  Interp.pop_activation st;
  v

(* [call_proc] with the arguments copied straight from the caller's
   register arrays via compile-time index vectors — no per-call argument
   lists.  Reading the argument registers after the [fp_use] stalls is
   equivalent: stalls never change register contents. *)
let call_proc_from st (cp : cproc) ~(caller : frame) ~(args_a : int array)
    ~(fas_a : int array) =
  let p = cp.image.Interp.proc in
  let iregs = Array.make (max p.Proc.niregs 1) 0 in
  let fregs = Array.make (max p.Proc.nfregs 1) 0.0 in
  for i = 0 to Array.length args_a - 1 do
    iregs.(i) <- caller.iregs.(args_a.(i))
  done;
  for i = 0 to Array.length fas_a - 1 do
    fregs.(i) <- caller.fregs.(fas_a.(i))
  done;
  let saved_sp = Interp.stack_pointer st in
  let fp = saved_sp - cp.image.Interp.frame_bytes in
  if fp < Layout.stack_limit then
    Interp.trap "stack overflow in %s" p.Proc.name;
  Interp.set_stack_pointer st fp;
  Interp.push_activation st p.Proc.name;
  Machine.fp_frame (Interp.machine st) ~nregs:(max p.Proc.nfregs 1);
  let v = cp.blocks.(p.Proc.entry) { iregs; fregs; fp; trap_ix = 0 } in
  Interp.set_stack_pointer st saved_sp;
  Interp.pop_activation st;
  v

let do_call st (cprocs : cproc array) ~callee_idx ~(fr : frame) ~args_a
    ~fas_a ~ret =
  let mach = Interp.machine st in
  for i = 0 to Array.length fas_a - 1 do
    Machine.fp_use_hot mach ~src:(Array.unsafe_get fas_a i)
  done;
  let v = call_proc_from st cprocs.(callee_idx) ~caller:fr ~args_a ~fas_a in
  match (ret, v) with
  | I.Rnone, _ -> ()
  | I.Rint rd, Vint n -> fr.iregs.(rd) <- n
  | I.Rfloat fd, Vfloat x ->
      fr.fregs.(fd) <- x;
      Machine.fp_define mach ~dst:fd
  | I.Rint _, (Vfloat _ | Vvoid) | I.Rfloat _, (Vint _ | Vvoid) ->
      Interp.trap "call return kind mismatch"

(* An instruction forces the precise tier when its execution can observe
   or perturb machine state mid-block: calls (the callee fetches, loads
   and stalls between this block's events), profiling pseudo-ops (the
   runtime interleaves its own charged fetches/loads/stores and reads the
   PICs), and direct PIC access. *)
let needs_precise = function
  | I.Call _ | I.Callind _ | I.Prof _ | I.Hwread _ | I.Hwzero | I.Hwwrite _
    ->
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Precise tier: one closure per instruction, events reported inline —
   the interpreter's [exec_instr], pre-dispatched.                     *)

let precise_step st cprocs ~pname ~addr (instr : I.t) : frame -> unit =
  let mach = Interp.machine st in
  let mem = Interp.memory st in
  let counters = Machine.counters mach in
  let layout = Interp.layout st in
  match instr with
  | I.Iconst (rd, n) ->
      fun fr ->
        Machine.fetch_hot mach ~addr;
        fr.iregs.(rd) <- n
  | I.Iconst_sym (rd, sym) -> (
      match Layout.resolve layout sym with
      | a ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- a
      | exception Not_found ->
          fun _ ->
            Machine.fetch_hot mach ~addr;
            Interp.trap "unresolved symbol %s" sym)
  | I.Fconst (fd, x) ->
      fun fr ->
        Machine.fetch_hot mach ~addr;
        fr.fregs.(fd) <- x;
        Machine.fp_define mach ~dst:fd
  | I.Imov (rd, rs) ->
      fun fr ->
        Machine.fetch_hot mach ~addr;
        fr.iregs.(rd) <- fr.iregs.(rs)
  | I.Fmov (fd, fs) ->
      fun fr ->
        Machine.fetch_hot mach ~addr;
        Machine.fp_use_hot mach ~src:fs;
        fr.fregs.(fd) <- fr.fregs.(fs);
        Machine.fp_define mach ~dst:fd
  (* Arithmetic is expanded per operator so each closure runs its one
     primitive instead of re-matching [op] (and calling cross-module
     [exec_ibinop]) on every execution.  Trap messages stay byte-exact. *)
  | I.Ibinop (op, rd, rs1, rs2) -> (
      match op with
      | I.Add ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- fr.iregs.(rs1) + fr.iregs.(rs2)
      | I.Sub ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- fr.iregs.(rs1) - fr.iregs.(rs2)
      | I.Mul ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- fr.iregs.(rs1) * fr.iregs.(rs2)
      | I.Div ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            let b = fr.iregs.(rs2) in
            if b = 0 then Interp.trap "integer division by zero";
            fr.iregs.(rd) <- fr.iregs.(rs1) / b
      | I.Rem ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            let b = fr.iregs.(rs2) in
            if b = 0 then Interp.trap "integer remainder by zero";
            fr.iregs.(rd) <- fr.iregs.(rs1) mod b
      | I.And ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- fr.iregs.(rs1) land fr.iregs.(rs2)
      | I.Or ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- fr.iregs.(rs1) lor fr.iregs.(rs2)
      | I.Xor ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- fr.iregs.(rs1) lxor fr.iregs.(rs2)
      | I.Shl ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- fr.iregs.(rs1) lsl (fr.iregs.(rs2) land 63)
      | I.Shr ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- fr.iregs.(rs1) asr (fr.iregs.(rs2) land 63))
  | I.Ibinop_imm (op, rd, rs, imm) -> (
      match op with
      | I.Add ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- fr.iregs.(rs) + imm
      | I.Sub ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- fr.iregs.(rs) - imm
      | I.Mul ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- fr.iregs.(rs) * imm
      | I.Div ->
          if imm = 0 then fun _ ->
            Machine.fetch_hot mach ~addr;
            Interp.trap "integer division by zero"
          else fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- fr.iregs.(rs) / imm
      | I.Rem ->
          if imm = 0 then fun _ ->
            Machine.fetch_hot mach ~addr;
            Interp.trap "integer remainder by zero"
          else fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- fr.iregs.(rs) mod imm
      | I.And ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- fr.iregs.(rs) land imm
      | I.Or ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- fr.iregs.(rs) lor imm
      | I.Xor ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- fr.iregs.(rs) lxor imm
      | I.Shl ->
          let sh = imm land 63 in
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- fr.iregs.(rs) lsl sh
      | I.Shr ->
          let sh = imm land 63 in
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- fr.iregs.(rs) asr sh)
  (* Comparisons are expanded per predicate: a curried comparator
     closure would go through [caml_apply2] on every execution. *)
  | I.Icmp (c, rd, rs1, rs2) -> (
      match c with
      | I.Eq ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- Bool.to_int (fr.iregs.(rs1) = fr.iregs.(rs2))
      | I.Ne ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- Bool.to_int (fr.iregs.(rs1) <> fr.iregs.(rs2))
      | I.Lt ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- Bool.to_int (fr.iregs.(rs1) < fr.iregs.(rs2))
      | I.Le ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- Bool.to_int (fr.iregs.(rs1) <= fr.iregs.(rs2))
      | I.Gt ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- Bool.to_int (fr.iregs.(rs1) > fr.iregs.(rs2))
      | I.Ge ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- Bool.to_int (fr.iregs.(rs1) >= fr.iregs.(rs2)))
  | I.Icmp_imm (c, rd, rs, imm) -> (
      match c with
      | I.Eq ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- Bool.to_int (fr.iregs.(rs) = imm)
      | I.Ne ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- Bool.to_int (fr.iregs.(rs) <> imm)
      | I.Lt ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- Bool.to_int (fr.iregs.(rs) < imm)
      | I.Le ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- Bool.to_int (fr.iregs.(rs) <= imm)
      | I.Gt ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- Bool.to_int (fr.iregs.(rs) > imm)
      | I.Ge ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            fr.iregs.(rd) <- Bool.to_int (fr.iregs.(rs) >= imm))
  | I.Fbinop (op, fd, fs1, fs2) ->
      let cls = Interp.fp_class op in
      fun fr ->
        Machine.fetch_hot mach ~addr;
        Machine.fp_issue_hot mach ~cls ~dst:fd ~s1:fs1 ~s2:fs2;
        fr.fregs.(fd) <- Interp.exec_fbinop op fr.fregs.(fs1) fr.fregs.(fs2)
  | I.Fcmp (c, rd, fs1, fs2) -> (
      match c with
      | I.Eq ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            Machine.fp_use_hot mach ~src:fs1;
            Machine.fp_use_hot mach ~src:fs2;
            fr.iregs.(rd) <- Bool.to_int (fr.fregs.(fs1) = fr.fregs.(fs2))
      | I.Ne ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            Machine.fp_use_hot mach ~src:fs1;
            Machine.fp_use_hot mach ~src:fs2;
            fr.iregs.(rd) <- Bool.to_int (fr.fregs.(fs1) <> fr.fregs.(fs2))
      | I.Lt ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            Machine.fp_use_hot mach ~src:fs1;
            Machine.fp_use_hot mach ~src:fs2;
            fr.iregs.(rd) <- Bool.to_int (fr.fregs.(fs1) < fr.fregs.(fs2))
      | I.Le ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            Machine.fp_use_hot mach ~src:fs1;
            Machine.fp_use_hot mach ~src:fs2;
            fr.iregs.(rd) <- Bool.to_int (fr.fregs.(fs1) <= fr.fregs.(fs2))
      | I.Gt ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            Machine.fp_use_hot mach ~src:fs1;
            Machine.fp_use_hot mach ~src:fs2;
            fr.iregs.(rd) <- Bool.to_int (fr.fregs.(fs1) > fr.fregs.(fs2))
      | I.Ge ->
          fun fr ->
            Machine.fetch_hot mach ~addr;
            Machine.fp_use_hot mach ~src:fs1;
            Machine.fp_use_hot mach ~src:fs2;
            fr.iregs.(rd) <- Bool.to_int (fr.fregs.(fs1) >= fr.fregs.(fs2)))
  | I.Itof (fd, rs) ->
      fun fr ->
        Machine.fetch_hot mach ~addr;
        fr.fregs.(fd) <- float_of_int fr.iregs.(rs);
        Machine.fp_define mach ~dst:fd
  | I.Ftoi (rd, fs) ->
      fun fr ->
        Machine.fetch_hot mach ~addr;
        Machine.fp_use_hot mach ~src:fs;
        let x = fr.fregs.(fs) in
        if Float.is_nan x || Float.abs x >= 4.6e18 then
          Interp.trap "float-to-int out of range (%g)" x;
        fr.iregs.(rd) <- int_of_float x
  | I.Load (rd, rb, off) ->
      fun fr ->
        Machine.fetch_hot mach ~addr;
        let a = fr.iregs.(rb) + off in
        Machine.load_hot mach ~addr:a;
        (try fr.iregs.(rd) <- Memory.read_int mem a
         with Memory.Fault m -> Interp.trap "load: %s" m)
  | I.Store (rs, rb, off) ->
      fun fr ->
        Machine.fetch_hot mach ~addr;
        let a = fr.iregs.(rb) + off in
        Machine.store_hot mach ~addr:a;
        (try Memory.write_int mem a fr.iregs.(rs)
         with Memory.Fault m -> Interp.trap "store: %s" m)
  | I.Fload (fd, rb, off) ->
      fun fr ->
        Machine.fetch_hot mach ~addr;
        let a = fr.iregs.(rb) + off in
        Machine.load_hot mach ~addr:a;
        (try Memory.read_float_into mem a fr.fregs fd
         with Memory.Fault m -> Interp.trap "load: %s" m);
        Machine.fp_define mach ~dst:fd
  | I.Fstore (fs, rb, off) ->
      fun fr ->
        Machine.fetch_hot mach ~addr;
        Machine.fp_use_hot mach ~src:fs;
        let a = fr.iregs.(rb) + off in
        Machine.store_hot mach ~addr:a;
        (try Memory.write_float_from mem a fr.fregs fs
         with Memory.Fault m -> Interp.trap "store: %s" m)
  | I.Call { callee; args; fargs = fas; ret; _ } -> (
      match Interp.proc_index st callee with
      | None ->
          fun _ ->
            Machine.fetch_hot mach ~addr;
            Interp.trap "call to unknown procedure %s" callee
      | Some callee_idx ->
          let args_a = Array.of_list args and fas_a = Array.of_list fas in
          fun fr ->
            Machine.fetch_hot mach ~addr;
            do_call st cprocs ~callee_idx ~fr ~args_a ~fas_a ~ret)
  | I.Callind { target; args; fargs = fas; ret; _ } ->
      let args_a = Array.of_list args and fas_a = Array.of_list fas in
      let nargs = Array.length args_a and nfas = Array.length fas_a in
      fun fr ->
        Machine.fetch_hot mach ~addr;
        let a = fr.iregs.(target) in
        let callee_idx =
          match Interp.proc_index_of_addr st a with
          | Some i -> i
          | None -> Interp.trap "indirect call to non-procedure address 0x%x" a
        in
        let callee = cprocs.(callee_idx).image.Interp.proc in
        if
          callee.Proc.iparams <> nargs
          || callee.Proc.fparams <> nfas
          || callee.Proc.returns <> Proc.Returns_int
        then Interp.trap "indirect call signature mismatch on %s" callee.Proc.name;
        do_call st cprocs ~callee_idx ~fr ~args_a ~fas_a ~ret
  | I.Hwread (rd, k) ->
      fun fr ->
        Machine.fetch_hot mach ~addr;
        fr.iregs.(rd) <- Counters.read_pic counters k
  | I.Hwzero ->
      fun _ ->
        Machine.fetch_hot mach ~addr;
        Counters.zero_pics counters
  | I.Hwwrite (rs, k) ->
      fun fr ->
        Machine.fetch_hot mach ~addr;
        Counters.write_pic counters k fr.iregs.(rs)
  | I.Frameaddr (rd, off) ->
      let disp = Interp.linkage_bytes + off in
      fun fr ->
        Machine.fetch_hot mach ~addr;
        fr.iregs.(rd) <- fr.fp + disp
  | I.Print_int r ->
      fun fr ->
        Machine.fetch_hot mach ~addr;
        Interp.push_output st (Interp.Oint fr.iregs.(r))
  | I.Print_float f ->
      fun fr ->
        Machine.fetch_hot mach ~addr;
        Machine.fp_use_hot mach ~src:f;
        Interp.push_output st (Interp.Ofloat fr.fregs.(f))
  | I.Prof op ->
      fun fr ->
        Machine.fetch_hot mach ~addr;
        Interp.dispatch_prof st ~proc:pname ~op_addr:addr ~fp:fr.fp
          ~iregs:fr.iregs op

(* ------------------------------------------------------------------ *)
(* Batched tier.                                                       *)

(* Register accesses in batched semantic closures skip the bounds check:
   {!compile_block} only takes this tier when every operand index was
   verified in range at compile time (out-of-range blocks fall back to
   the bounds-checked precise tier), and [dyn] slots are in range by
   construction. *)
let[@inline always] uget (a : int array) i = Array.unsafe_get a i
let[@inline always] uset (a : int array) i v = Array.unsafe_set a i v
let[@inline always] fget (a : float array) i = Array.unsafe_get a i
let[@inline always] fset (a : float array) i v = Array.unsafe_set a i v

(* Semantic closure of one batchable instruction: pure register/memory
   work, no machine events (those are replayed by [block_step] from the
   pre-compiled op list).  [dyn]/[slot] carry runtime load/store
   addresses to the batch; trappable closures stamp [fr.trap_ix] so a
   trap can replay the machine events of the completed prefix. *)
let batch_sem st ~k ~slot ~(dyn : int array) (instr : I.t) : frame -> unit =
  let mem = Interp.memory st in
  let layout = Interp.layout st in
  match instr with
  | I.Iconst (rd, n) -> fun fr -> uset fr.iregs rd n
  | I.Iconst_sym (rd, sym) -> (
      match Layout.resolve layout sym with
      | a -> fun fr -> uset fr.iregs rd a
      | exception Not_found ->
          fun fr ->
            fr.trap_ix <- k;
            Interp.trap "unresolved symbol %s" sym)
  | I.Fconst (fd, x) -> fun fr -> fset fr.fregs fd x
  | I.Imov (rd, rs) -> fun fr -> uset fr.iregs rd (uget fr.iregs rs)
  | I.Fmov (fd, fs) -> fun fr -> fset fr.fregs fd (fget fr.fregs fs)
  | I.Ibinop (op, rd, rs1, rs2) -> (
      match op with
      | I.Add ->
          fun fr -> uset fr.iregs rd (uget fr.iregs rs1 + uget fr.iregs rs2)
      | I.Sub ->
          fun fr -> uset fr.iregs rd (uget fr.iregs rs1 - uget fr.iregs rs2)
      | I.Mul ->
          fun fr -> uset fr.iregs rd (uget fr.iregs rs1 * uget fr.iregs rs2)
      | I.And ->
          fun fr ->
            uset fr.iregs rd (uget fr.iregs rs1 land uget fr.iregs rs2)
      | I.Or ->
          fun fr ->
            uset fr.iregs rd (uget fr.iregs rs1 lor uget fr.iregs rs2)
      | I.Xor ->
          fun fr ->
            uset fr.iregs rd (uget fr.iregs rs1 lxor uget fr.iregs rs2)
      | I.Shl ->
          fun fr ->
            uset fr.iregs rd
              (uget fr.iregs rs1 lsl (uget fr.iregs rs2 land 63))
      | I.Shr ->
          fun fr ->
            uset fr.iregs rd
              (uget fr.iregs rs1 asr (uget fr.iregs rs2 land 63))
      | I.Div ->
          fun fr ->
            fr.trap_ix <- k;
            let b = uget fr.iregs rs2 in
            if b = 0 then Interp.trap "integer division by zero";
            uset fr.iregs rd (uget fr.iregs rs1 / b)
      | I.Rem ->
          fun fr ->
            fr.trap_ix <- k;
            let b = uget fr.iregs rs2 in
            if b = 0 then Interp.trap "integer remainder by zero";
            uset fr.iregs rd (uget fr.iregs rs1 mod b))
  | I.Ibinop_imm (op, rd, rs, imm) -> (
      match op with
      | I.Add -> fun fr -> uset fr.iregs rd (uget fr.iregs rs + imm)
      | I.Sub -> fun fr -> uset fr.iregs rd (uget fr.iregs rs - imm)
      | I.Mul -> fun fr -> uset fr.iregs rd (uget fr.iregs rs * imm)
      | I.And -> fun fr -> uset fr.iregs rd (uget fr.iregs rs land imm)
      | I.Or -> fun fr -> uset fr.iregs rd (uget fr.iregs rs lor imm)
      | I.Xor -> fun fr -> uset fr.iregs rd (uget fr.iregs rs lxor imm)
      | I.Shl ->
          let sh = imm land 63 in
          fun fr -> uset fr.iregs rd (uget fr.iregs rs lsl sh)
      | I.Shr ->
          let sh = imm land 63 in
          fun fr -> uset fr.iregs rd (uget fr.iregs rs asr sh)
      | I.Div ->
          if imm = 0 then fun fr ->
            fr.trap_ix <- k;
            Interp.trap "integer division by zero"
          else fun fr -> uset fr.iregs rd (uget fr.iregs rs / imm)
      | I.Rem ->
          if imm = 0 then fun fr ->
            fr.trap_ix <- k;
            Interp.trap "integer remainder by zero"
          else fun fr -> uset fr.iregs rd (uget fr.iregs rs mod imm))
  | I.Icmp (c, rd, rs1, rs2) -> (
      (* Specialised per comparison: a two-argument comparator closure
         would go through [caml_apply2] on every execution. *)
      match c with
      | I.Eq ->
          fun fr ->
            uset fr.iregs rd
              (Bool.to_int (uget fr.iregs rs1 = uget fr.iregs rs2))
      | I.Ne ->
          fun fr ->
            uset fr.iregs rd
              (Bool.to_int (uget fr.iregs rs1 <> uget fr.iregs rs2))
      | I.Lt ->
          fun fr ->
            uset fr.iregs rd
              (Bool.to_int (uget fr.iregs rs1 < uget fr.iregs rs2))
      | I.Le ->
          fun fr ->
            uset fr.iregs rd
              (Bool.to_int (uget fr.iregs rs1 <= uget fr.iregs rs2))
      | I.Gt ->
          fun fr ->
            uset fr.iregs rd
              (Bool.to_int (uget fr.iregs rs1 > uget fr.iregs rs2))
      | I.Ge ->
          fun fr ->
            uset fr.iregs rd
              (Bool.to_int (uget fr.iregs rs1 >= uget fr.iregs rs2)))
  | I.Icmp_imm (c, rd, rs, imm) -> (
      match c with
      | I.Eq ->
          fun fr -> uset fr.iregs rd (Bool.to_int (uget fr.iregs rs = imm))
      | I.Ne ->
          fun fr -> uset fr.iregs rd (Bool.to_int (uget fr.iregs rs <> imm))
      | I.Lt ->
          fun fr -> uset fr.iregs rd (Bool.to_int (uget fr.iregs rs < imm))
      | I.Le ->
          fun fr -> uset fr.iregs rd (Bool.to_int (uget fr.iregs rs <= imm))
      | I.Gt ->
          fun fr -> uset fr.iregs rd (Bool.to_int (uget fr.iregs rs > imm))
      | I.Ge ->
          fun fr -> uset fr.iregs rd (Bool.to_int (uget fr.iregs rs >= imm)))
  | I.Fbinop (op, fd, fs1, fs2) -> (
      match op with
      | I.Fadd ->
          fun fr -> fset fr.fregs fd (fget fr.fregs fs1 +. fget fr.fregs fs2)
      | I.Fsub ->
          fun fr -> fset fr.fregs fd (fget fr.fregs fs1 -. fget fr.fregs fs2)
      | I.Fmul ->
          fun fr -> fset fr.fregs fd (fget fr.fregs fs1 *. fget fr.fregs fs2)
      | I.Fdiv ->
          fun fr -> fset fr.fregs fd (fget fr.fregs fs1 /. fget fr.fregs fs2))
  | I.Fcmp (c, rd, fs1, fs2) -> (
      match c with
      | I.Eq ->
          fun fr ->
            uset fr.iregs rd
              (Bool.to_int (fget fr.fregs fs1 = fget fr.fregs fs2))
      | I.Ne ->
          fun fr ->
            uset fr.iregs rd
              (Bool.to_int (fget fr.fregs fs1 <> fget fr.fregs fs2))
      | I.Lt ->
          fun fr ->
            uset fr.iregs rd
              (Bool.to_int (fget fr.fregs fs1 < fget fr.fregs fs2))
      | I.Le ->
          fun fr ->
            uset fr.iregs rd
              (Bool.to_int (fget fr.fregs fs1 <= fget fr.fregs fs2))
      | I.Gt ->
          fun fr ->
            uset fr.iregs rd
              (Bool.to_int (fget fr.fregs fs1 > fget fr.fregs fs2))
      | I.Ge ->
          fun fr ->
            uset fr.iregs rd
              (Bool.to_int (fget fr.fregs fs1 >= fget fr.fregs fs2)))
  | I.Itof (fd, rs) ->
      fun fr -> fset fr.fregs fd (float_of_int (uget fr.iregs rs))
  | I.Ftoi (rd, fs) ->
      fun fr ->
        fr.trap_ix <- k;
        let x = fget fr.fregs fs in
        if Float.is_nan x || Float.abs x >= 4.6e18 then
          Interp.trap "float-to-int out of range (%g)" x;
        uset fr.iregs rd (int_of_float x)
  | I.Load (rd, rb, off) ->
      fun fr ->
        fr.trap_ix <- k;
        let a = uget fr.iregs rb + off in
        uset dyn slot a;
        (try uset fr.iregs rd (Memory.read_int mem a)
         with Memory.Fault m -> Interp.trap "load: %s" m)
  | I.Store (rs, rb, off) ->
      fun fr ->
        fr.trap_ix <- k;
        let a = uget fr.iregs rb + off in
        uset dyn slot a;
        (try Memory.write_int mem a (uget fr.iregs rs)
         with Memory.Fault m -> Interp.trap "store: %s" m)
  | I.Fload (fd, rb, off) ->
      fun fr ->
        fr.trap_ix <- k;
        let a = uget fr.iregs rb + off in
        uset dyn slot a;
        (try Memory.read_float_into mem a fr.fregs fd
         with Memory.Fault m -> Interp.trap "load: %s" m)
  | I.Fstore (fs, rb, off) ->
      fun fr ->
        fr.trap_ix <- k;
        let a = uget fr.iregs rb + off in
        uset dyn slot a;
        (try Memory.write_float_from mem a fr.fregs fs
         with Memory.Fault m -> Interp.trap "store: %s" m)
  | I.Frameaddr (rd, off) ->
      let disp = Interp.linkage_bytes + off in
      fun fr -> uset fr.iregs rd (fr.fp + disp)
  | I.Print_int r ->
      fun fr -> Interp.push_output st (Interp.Oint (uget fr.iregs r))
  | I.Print_float f ->
      fun fr -> Interp.push_output st (Interp.Ofloat (fget fr.fregs f))
  | I.Call _ | I.Callind _ | I.Prof _ | I.Hwread _ | I.Hwzero | I.Hwwrite _
    ->
      assert false (* precise tier *)

(* Machine events of instruction [j], replayed individually after a trap
   in a batched block.  [faulting] truncates at the instruction's trap
   point (only [Fload] differs: its [fp_define] follows the memory read,
   so a faulted load never reaches it).  Every other trappable
   instruction emits all its events before the trap, exactly as the
   interpreter does. *)
let replay_instr mach ~dyn ~(slots : int array) ~faulting j (instr : I.t) =
  match instr with
  | I.Fconst (fd, _) | I.Itof (fd, _) -> Machine.fp_define mach ~dst:fd
  | I.Fmov (fd, fs) ->
      Machine.fp_use mach ~src:fs;
      Machine.fp_define mach ~dst:fd
  | I.Fbinop (op, fd, fs1, fs2) ->
      Machine.fp_issue mach ~cls:(Interp.fp_class op) ~dst:fd
        ~srcs:[ fs1; fs2 ]
  | I.Fcmp (_, _, fs1, fs2) ->
      Machine.fp_use mach ~src:fs1;
      Machine.fp_use mach ~src:fs2
  | I.Ftoi (_, fs) -> Machine.fp_use mach ~src:fs
  | I.Load _ -> Machine.load mach ~addr:dyn.(slots.(j))
  | I.Fload (fd, _, _) ->
      Machine.load mach ~addr:dyn.(slots.(j));
      if not faulting then Machine.fp_define mach ~dst:fd
  | I.Store _ -> Machine.store mach ~addr:dyn.(slots.(j))
  | I.Fstore (fs, _, _) ->
      Machine.fp_use mach ~src:fs;
      Machine.store mach ~addr:dyn.(slots.(j))
  | I.Print_float f -> Machine.fp_use mach ~src:f
  | _ -> ()

(* Compose a block's per-instruction closures into one: chunks of four
   are unrolled, so executing the body costs one indirect call per
   instruction without the dispatch loop's bookkeeping. *)
let fuse (fs : (frame -> unit) array) : frame -> unit =
  let rec chain lo =
    match Array.length fs - lo with
    | 0 -> fun (_ : frame) -> ()
    | 1 -> fs.(lo)
    | 2 ->
        let f0 = fs.(lo) and f1 = fs.(lo + 1) in
        fun fr ->
          f0 fr;
          f1 fr
    | 3 ->
        let f0 = fs.(lo) and f1 = fs.(lo + 1) and f2 = fs.(lo + 2) in
        fun fr ->
          f0 fr;
          f1 fr;
          f2 fr
    | 4 ->
        let f0 = fs.(lo)
        and f1 = fs.(lo + 1)
        and f2 = fs.(lo + 2)
        and f3 = fs.(lo + 3) in
        fun fr ->
          f0 fr;
          f1 fr;
          f2 fr;
          f3 fr
    | _ ->
        let f0 = fs.(lo)
        and f1 = fs.(lo + 1)
        and f2 = fs.(lo + 2)
        and f3 = fs.(lo + 3)
        and rest = chain (lo + 4) in
        fun fr ->
          f0 fr;
          f1 fr;
          f2 fr;
          f3 fr;
          rest fr
  in
  chain 0

(* ------------------------------------------------------------------ *)
(* Block compilation.                                                  *)

let compile_block st (cprocs : cproc array) (cp : cproc) label =
  let image = cp.image in
  let p = image.Interp.proc in
  let pname = p.Proc.name in
  let code = image.Interp.code.(label) in
  let addrs = image.Interp.addrs.(label) in
  let taddr = image.Interp.term_addr.(label) in
  let term = (Proc.block p label).Block.term in
  let mach = Interp.machine st in
  let blocks = cp.blocks in
  let n = Array.length code in
  (* Per-block fixed costs, pre-resolved: the hook flag is polled as a
     captured-record field read, and the budget check is one array read
     against the live totals ([Counters.clear] fills in place, so the
     array stays valid across {!Machine.reset}).  When a hook is active
     or the budget is exhausted, [Interp.block_epilogue] runs in full —
     including the trap with the interpreter's exact message. *)
  let h = Interp.hot st in
  let tot = Counters.raw_totals (Machine.counters mach) in
  let ix_insts = Counters.ix Pp_machine.Event.Instructions in
  let maxi = Interp.max_instructions st in
  let term_step : frame -> ret_value =
    match term with
    | Block.Jmp l -> fun fr -> (Array.unsafe_get blocks l) fr
    | Block.Br (r, tl, fl) ->
        fun fr ->
          let taken = fr.iregs.(r) <> 0 in
          Machine.branch_hot mach ~addr:taddr ~taken;
          if taken then (Array.unsafe_get blocks tl) fr
          else (Array.unsafe_get blocks fl) fr
    | Block.Ret Block.Ret_void -> fun _ -> Vvoid
    | Block.Ret (Block.Ret_int r) -> fun fr -> Vint fr.iregs.(r)
    | Block.Ret (Block.Ret_float f) ->
        fun fr ->
          Machine.fp_use_hot mach ~src:f;
          Vfloat fr.fregs.(f)
  in
  (* Batched sems access registers unchecked, so the batch tier also
     requires every operand index verified in range here; a block of an
     invalid (unvalidated) program falls back to the bounds-checked
     precise tier, which fails exactly like the interpreter. *)
  let regs_ok =
    Array.for_all
      (fun i ->
        List.for_all
          (fun r -> r >= 0 && r < p.Proc.niregs)
          (I.idefs i @ I.iuses i)
        && List.for_all
             (fun r -> r >= 0 && r < p.Proc.nfregs)
             (I.fdefs i @ I.fuses i))
      code
  in
  if Array.exists needs_precise code || not regs_ok then begin
    let steps =
      Array.mapi
        (fun k instr -> precise_step st cprocs ~pname ~addr:addrs.(k) instr)
        code
    in
    let body = fuse steps in
    fun fr ->
      if h.Interp.hooks then
        Interp.block_entered st ~proc:pname ~label ~fp:fr.fp ~iregs:fr.iregs;
      body fr;
      if h.Interp.hooks || Array.unsafe_get tot ix_insts > maxi then
        Interp.block_epilogue st;
      Machine.fetch_hot mach ~addr:taddr;
      term_step fr
  end
  else begin
    let nmem =
      Array.fold_left
        (fun acc i ->
          match i with
          | I.Load _ | I.Store _ | I.Fload _ | I.Fstore _ -> acc + 1
          | _ -> acc)
        0 code
    in
    let dyn = Array.make (max nmem 1) 0 in
    let slots = Array.make (max n 1) (-1) in
    let line_bytes =
      (Machine.config mach).Pp_machine.Config.icache
        .Pp_machine.Config.line_bytes
    in
    let ops_rev = ref [] in
    let pend_count = ref 0 in
    let pend_leaders_rev = ref [] in
    (* [last_line] persists across fetch runs: only fetches touch the
       icache, so a line probed by an earlier run of this block is still
       the most recent in its set when a later run re-fetches it — each
       distinct line is probed exactly once per block execution. *)
    let last_line = ref min_int in
    let push_fetch addr =
      let line = addr / line_bytes in
      if line <> !last_line then
        pend_leaders_rev := addr :: !pend_leaders_rev;
      last_line := line;
      incr pend_count
    in
    let flush_fetches () =
      if !pend_count > 0 then begin
        ops_rev :=
          Machine.Bfetch
            {
              count = !pend_count;
              leaders = Array.of_list (List.rev !pend_leaders_rev);
            }
          :: !ops_rev;
        pend_count := 0;
        pend_leaders_rev := []
      end
    in
    let emit op =
      flush_fetches ();
      ops_rev := op :: !ops_rev
    in
    let next_slot = ref 0 in
    let sems =
      Array.mapi
        (fun k instr ->
          push_fetch addrs.(k);
          let slot =
            match instr with
            | I.Load _ | I.Store _ | I.Fload _ | I.Fstore _ ->
                let s = !next_slot in
                incr next_slot;
                slots.(k) <- s;
                s
            | _ -> -1
          in
          (* Event ops of this instruction, in the interpreter's order. *)
          (match instr with
          | I.Fconst (fd, _) | I.Itof (fd, _) -> emit (Machine.Bfp_define fd)
          | I.Fmov (fd, fs) ->
              emit (Machine.Bfp_use fs);
              emit (Machine.Bfp_define fd)
          | I.Fbinop (op, fd, fs1, fs2) ->
              emit
                (Machine.Bfp_issue
                   { cls = Interp.fp_class op; dst = fd; s1 = fs1; s2 = fs2 })
          | I.Fcmp (_, _, fs1, fs2) ->
              emit (Machine.Bfp_use fs1);
              emit (Machine.Bfp_use fs2)
          | I.Ftoi (_, fs) -> emit (Machine.Bfp_use fs)
          | I.Load _ -> emit (Machine.Bload slot)
          | I.Fload (fd, _, _) ->
              emit (Machine.Bload slot);
              emit (Machine.Bfp_define fd)
          | I.Store _ -> emit (Machine.Bstore slot)
          | I.Fstore (fs, _, _) ->
              emit (Machine.Bfp_use fs);
              emit (Machine.Bstore slot)
          | I.Print_float f -> emit (Machine.Bfp_use f)
          | _ -> ());
          batch_sem st ~k ~slot ~dyn instr)
        code
    in
    flush_fetches ();
    let body = fuse sems in
    let ops = Array.of_list (List.rev !ops_rev) in
    let replay upto =
      for j = 0 to upto do
        Machine.fetch mach ~addr:addrs.(j);
        replay_instr mach ~dyn ~slots ~faulting:(j = upto) j code.(j)
      done
    in
    (* The terminator's icache probe is elided when it shares a line with
       the last body fetch (nothing in between touches the icache). *)
    let term_probe = n = 0 || addrs.(n - 1) / line_bytes <> taddr / line_bytes in
    (* Blocks whose events are only fetches and integer loads take the
       whole-block bulk form: one [Machine.block_bulk] call instead of an
       op-list walk.  ([Fload] emits an FP define, so any block on this
       path has [dyn] slots 0..nmem-1 holding plain loads in order.) *)
    let bulk_ok =
      Array.for_all
        (function Machine.Bfetch _ | Machine.Bload _ -> true | _ -> false)
        ops
    in
    if bulk_ok then begin
      let leaders =
        Array.concat
          (List.filter_map
             (function
               | Machine.Bfetch { leaders; _ } -> Some leaders | _ -> None)
             (Array.to_list ops))
      in
      let nloads = nmem in
      if n = 0 then fun fr ->
        if h.Interp.hooks then
          Interp.block_entered st ~proc:pname ~label ~fp:fr.fp ~iregs:fr.iregs;
        if h.Interp.hooks || Array.unsafe_get tot ix_insts > maxi then
          Interp.block_epilogue st;
        Machine.fetch_term mach ~addr:taddr ~probe:term_probe;
        term_step fr
      else fun fr ->
        if h.Interp.hooks then
          Interp.block_entered st ~proc:pname ~label ~fp:fr.fp ~iregs:fr.iregs;
        (try body fr
         with e ->
           replay fr.trap_ix;
           raise e);
        Machine.block_bulk mach ~fetches:n ~leaders ~dyn ~nloads;
        if h.Interp.hooks || Array.unsafe_get tot ix_insts > maxi then
          Interp.block_epilogue st;
        Machine.fetch_term mach ~addr:taddr ~probe:term_probe;
        term_step fr
    end
    else begin
      (* Fixed event counts of the block, applied in one [block_static]
         call; the op walk then covers only probes, stalls and the clock. *)
      let n_loads = ref 0 and n_stores = ref 0 and n_fpops = ref 0 in
      Array.iter
        (function
          | Machine.Bload _ -> incr n_loads
          | Machine.Bstore _ -> incr n_stores
          | Machine.Bfp_issue _ -> incr n_fpops
          | _ -> ())
        ops;
      let n_loads = !n_loads and n_stores = !n_stores and n_fpops = !n_fpops in
      fun fr ->
      if h.Interp.hooks then
        Interp.block_entered st ~proc:pname ~label ~fp:fr.fp ~iregs:fr.iregs;
      (try body fr
       with e ->
         replay fr.trap_ix;
         raise e);
      Machine.block_static mach ~insts:n ~loads:n_loads ~stores:n_stores
        ~fpops:n_fpops;
      Machine.block_step mach ops ~dyn;
      if h.Interp.hooks || Array.unsafe_get tot ix_insts > maxi then
        Interp.block_epilogue st;
      Machine.fetch_term mach ~addr:taddr ~probe:term_probe;
      term_step fr
    end
  end

let compile_proc st cprocs (cp : cproc) =
  let nb = Array.length cp.image.Interp.code in
  cp.blocks <-
    Array.make (max nb 1) (fun _ ->
        Interp.trap "compiled block invoked before compilation");
  for label = 0 to nb - 1 do
    cp.blocks.(label) <- compile_block st cprocs cp label
  done

let create st =
  let cprocs =
    Array.map
      (fun image -> { image; blocks = [||] })
      (Interp.images st)
  in
  Array.iter (fun cp -> compile_proc st cprocs cp) cprocs;
  { st; cprocs }

let run t =
  let st = t.st in
  let v = call_proc st t.cprocs.(Interp.main_index st) ~iargs:[] ~fargs:[] in
  (match v with
  | Vvoid -> ()
  | Vint _ | Vfloat _ -> Interp.trap "main returned a value");
  Interp.collect_result st
