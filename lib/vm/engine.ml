type kind = Interpreted | Compiled

let default = Compiled
let kinds = [ Interpreted; Compiled ]
let kind_name = function Interpreted -> "interp" | Compiled -> "compiled"

let kind_of_string = function
  | "interp" -> Some Interpreted
  | "compiled" -> Some Compiled
  | _ -> None

type t = {
  vm : Interp.t;
  kind : kind;
  mutable compiled : Compile.t option;  (* translated on first run *)
}

let of_vm ?(kind = default) vm = { vm; kind; compiled = None }

let create ?(kind = default) ?config ?max_instructions ?merge_call_sites
    prog =
  of_vm ~kind (Interp.create ?config ?max_instructions ?merge_call_sites prog)

let vm t = t.vm
let kind t = t.kind

let run t =
  match t.kind with
  | Interpreted -> Interp.run t.vm
  | Compiled ->
      let c =
        match t.compiled with
        | Some c -> c
        | None ->
            let c = Compile.create t.vm in
            t.compiled <- Some c;
            c
      in
      Compile.run c
