(** Execution-engine selection: the per-instruction {!Interp}reter or
    the closure-threaded {!Compile}d tier.

    Both engines run over the same {!Interp.t} state and are certified
    byte-identical by the differential suite ([test_compile]), so the
    choice is a pure speed knob; the compiled tier is the default.  An
    engine wraps the VM it runs — hooks ({!Interp.set_telemetry},
    {!Interp.set_block_probe}, tracing, sampling) are installed on
    {!vm} and fire under either engine. *)

type kind = Interpreted | Compiled

(** The default engine: {!Compiled}. *)
val default : kind

(** Both kinds, in [--engine] listing order. *)
val kinds : kind list

(** CLI name: ["interp"] or ["compiled"]. *)
val kind_name : kind -> string

val kind_of_string : string -> kind option

type t

(** Wrap an existing VM.  Compilation (for {!Compiled}) happens lazily on
    the first {!run}. *)
val of_vm : ?kind:kind -> Interp.t -> t

(** {!Interp.create} plus engine selection. *)
val create :
  ?kind:kind ->
  ?config:Pp_machine.Config.t ->
  ?max_instructions:int ->
  ?merge_call_sites:bool ->
  Pp_ir.Program.t ->
  t

(** The underlying shared VM state. *)
val vm : t -> Interp.t

val kind : t -> kind

(** Execute [main] to completion on the selected engine.
    @raise Interp.Trap *)
val run : t -> Interp.result
