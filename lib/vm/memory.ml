exception Fault of string

type segment = { name : string; base : int; bytes : Bytes.t }

type t = {
  segments : segment array;
  mutable last : segment;
      (* the most recently accessed segment: accesses cluster (stack
         frames, a hot table), so the common case skips the scan *)
}

let no_segment = { name = "<none>"; base = min_int; bytes = Bytes.empty }

let create specs =
  List.iter
    (fun (name, base, size) ->
      if base land 7 <> 0 || size land 7 <> 0 then
        raise
          (Fault (Printf.sprintf "segment %s not 8-byte aligned" name));
      if size <= 0 then
        raise (Fault (Printf.sprintf "segment %s has size %d" name size)))
    specs;
  let sorted =
    List.sort (fun (_, a, _) (_, b, _) -> compare a b) specs
  in
  let rec check_disjoint = function
    | (n1, b1, s1) :: ((n2, b2, _) :: _ as rest) ->
        if b1 + s1 > b2 then
          raise
            (Fault (Printf.sprintf "segments %s and %s overlap" n1 n2));
        check_disjoint rest
    | [ _ ] | [] -> ()
  in
  check_disjoint sorted;
  let segments =
    Array.of_list
      (List.map
         (fun (name, base, size) ->
           { name; base; bytes = Bytes.make size '\000' })
         sorted)
  in
  {
    segments;
    last = (if Array.length segments > 0 then segments.(0) else no_segment);
  }

let find t addr =
  (* Few segments: a linear scan beats building an interval tree. *)
  let n = Array.length t.segments in
  let rec scan i =
    if i >= n then
      raise (Fault (Printf.sprintf "unmapped address 0x%x" addr))
    else
      let s = t.segments.(i) in
      if addr >= s.base && addr < s.base + Bytes.length s.bytes then s
      else scan (i + 1)
  in
  scan 0

let check_aligned addr =
  if addr land 7 <> 0 then
    raise (Fault (Printf.sprintf "misaligned word access at 0x%x" addr))

(* The segment holding [addr], preferring the cached one (no scan). *)
let[@inline] locate t addr =
  let s = t.last in
  if addr >= s.base && addr - s.base < Bytes.length s.bytes then s
  else begin
    let s = find t addr in
    t.last <- s;
    s
  end

let read_int t addr =
  check_aligned addr;
  let s = locate t addr in
  Int64.to_int (Bytes.get_int64_le s.bytes (addr - s.base))

let write_int t addr v =
  check_aligned addr;
  let s = locate t addr in
  Bytes.set_int64_le s.bytes (addr - s.base) (Int64.of_int v)

let read_float t addr =
  check_aligned addr;
  let s = locate t addr in
  Int64.float_of_bits (Bytes.get_int64_le s.bytes (addr - s.base))

let write_float t addr v =
  check_aligned addr;
  let s = locate t addr in
  Bytes.set_int64_le s.bytes (addr - s.base) (Int64.bits_of_float v)

(* Float transfers with the register array passed in, so the value moves
   bytes->array (or back) inside one function and is never boxed — a
   float returned or taken across a module boundary would be. *)
let read_float_into t addr (dst : float array) i =
  check_aligned addr;
  let s = locate t addr in
  dst.(i) <- Int64.float_of_bits (Bytes.get_int64_le s.bytes (addr - s.base))

let write_float_from t addr (src : float array) i =
  check_aligned addr;
  let s = locate t addr in
  Bytes.set_int64_le s.bytes (addr - s.base) (Int64.bits_of_float src.(i))

let valid t addr =
  addr land 7 = 0
  && Array.exists
       (fun s -> addr >= s.base && addr < s.base + Bytes.length s.bytes)
       t.segments

let clear_segment t name =
  match Array.find_opt (fun s -> s.name = name) t.segments with
  | Some s -> Bytes.fill s.bytes 0 (Bytes.length s.bytes) '\000'
  | None -> raise (Fault (Printf.sprintf "no segment named %s" name))
