module I = Pp_ir.Instr
module Block = Pp_ir.Block
module Proc = Pp_ir.Proc
module Program = Pp_ir.Program
module Layout = Pp_ir.Layout
module Machine = Pp_machine.Machine
module Counters = Pp_machine.Counters
module Event = Pp_machine.Event
module Fp_unit = Pp_machine.Fp_unit

exception Trap of string

let trap fmt = Format.kasprintf (fun s -> raise (Trap s)) fmt

type output_item = Oint of int | Ofloat of float

type result = {
  counters : (Event.t * int) list;
  output : output_item list;
  cycles : int;
  instructions : int;
}

(* Per-procedure execution image: instruction arrays (lists are too slow to
   index), instruction addresses per slot, and the terminator address. *)
type image = {
  proc : Proc.t;
  code : I.t array array;  (* per block *)
  addrs : int array array;  (* per block, per instruction index *)
  term_addr : int array;  (* per block *)
  frame_bytes : int;  (* linkage area + local arrays *)
}

(* State the compiled tier polls once per block: one flag covering every
   per-block hook (trace ring, block probe, stack sampling, telemetry).
   Compiled closures capture this record and skip the hook calls while it
   is false; every hook setter refreshes it. *)
type hot = { mutable hooks : bool }

type t = {
  prog : Program.t;
  layout : Layout.t;
  machine : Machine.t;
  memory : Memory.t;
  runtime : Runtime.t;
  images : image array;
  index_of : (string, int) Hashtbl.t;
  index_of_addr : (int, int) Hashtbl.t;
  main_index : int;
  max_instructions : int;
  mutable sp : int;
  mutable output_rev : output_item list;
  (* Stack sampling (7.2 comparison): outermost-last while running. *)
  mutable call_stack : string list;
  mutable sample_interval : int;  (* 0 = off *)
  mutable next_sample : int;
  samples : (string list, int ref) Hashtbl.t;
  (* Block-entry ring buffer for post-mortem diagnostics. *)
  mutable trace : (string * int) array;  (* empty = off *)
  mutable trace_next : int;
  mutable trace_filled : bool;
  (* Self-telemetry: periodic counter samples into a trace sink. *)
  mutable telemetry : Pp_telemetry.Trace.t;
  mutable tl_interval : int;  (* simulated cycles; 0 = off *)
  mutable tl_next : int;
  (* Block-entry probe for the abstract-interpretation soundness oracle. *)
  mutable block_probe :
    (proc:string -> label:int -> frame:int -> iregs:int array -> unit)
    option;
  (* Sampled instrumentation: gates the path-commit pseudo-ops in
     [exec_prof], which both engines dispatch through. *)
  mutable sampling : Sampling.t option;
  hot : hot;
}

let linkage_bytes = 32

let build_image layout (p : Proc.t) =
  let nb = Proc.num_blocks p in
  let code = Array.make nb [||] in
  let addrs = Array.make nb [||] in
  let term_addr = Array.make nb 0 in
  Array.iter
    (fun (b : Block.t) ->
      let instrs = Array.of_list b.instrs in
      code.(b.label) <- instrs;
      let n = Array.length instrs in
      addrs.(b.label) <-
        Array.init n (fun i ->
            Layout.instr_addr layout ~proc:p.name ~label:b.label ~index:i);
      term_addr.(b.label) <-
        Layout.instr_addr layout ~proc:p.name ~label:b.label ~index:n)
    p.blocks;
  {
    proc = p;
    code;
    addrs;
    term_addr;
    frame_bytes = linkage_bytes + (p.frame_words * 8);
  }

let create ?(config = Pp_machine.Config.default)
    ?(max_instructions = 2_000_000_000) ?(merge_call_sites = false) prog =
  let layout = Layout.build prog in
  let machine = Machine.create config in
  (* Data segment covers the globals (table arrays included) with slack. *)
  let data_size =
    let need = Layout.data_end layout - Layout.data_base in
    (need + 4096 + 7) land lnot 7
  in
  let memory =
    Memory.create
      [
        ("data", Layout.data_base, data_size);
        ("stack", Layout.stack_limit, Layout.stack_base - Layout.stack_limit);
      ]
  in
  (* Initialise globals. *)
  Array.iter
    (fun (g : Program.global) ->
      let base = Layout.global_addr layout g.gname in
      match g.init with
      | None -> ()
      | Some (Program.Init_ints a) ->
          Array.iteri (fun i v -> Memory.write_int memory (base + (8 * i)) v) a
      | Some (Program.Init_floats a) ->
          Array.iteri
            (fun i v -> Memory.write_float memory (base + (8 * i)) v)
            a)
    prog.globals;
  let runtime =
    Runtime.create ~merge_call_sites ~machine ~memory
      ~prof_base:Layout.prof_base ()
  in
  let images = Array.map (build_image layout) prog.procs in
  let index_of = Hashtbl.create 32 in
  let index_of_addr = Hashtbl.create 32 in
  Array.iteri
    (fun i (p : Proc.t) ->
      Hashtbl.replace index_of p.name i;
      Hashtbl.replace index_of_addr (Layout.proc_addr layout p.name) i)
    prog.procs;
  let main_index =
    match Hashtbl.find_opt index_of prog.main with
    | Some i -> i
    | None -> invalid_arg "Interp.create: no main"
  in
  {
    prog;
    layout;
    machine;
    memory;
    runtime;
    images;
    index_of;
    index_of_addr;
    main_index;
    max_instructions;
    sp = Layout.stack_base;
    output_rev = [];
    call_stack = [];
    sample_interval = 0;
    next_sample = 0;
    samples = Hashtbl.create 64;
    trace = [||];
    trace_next = 0;
    trace_filled = false;
    telemetry = Pp_telemetry.Trace.null;
    tl_interval = 0;
    tl_next = 0;
    block_probe = None;
    sampling = None;
    hot = { hooks = false };
  }

let refresh_hot t =
  t.hot.hooks <-
    Array.length t.trace > 0
    || (match t.block_probe with Some _ -> true | None -> false)
    || t.sample_interval > 0 || t.tl_interval > 0

let set_block_probe t probe =
  t.block_probe <- Some probe;
  refresh_hot t

(* No [refresh_hot]: the gate sits inside [exec_prof], not in the
   per-block hooks, so the compiled tier needs no extra polling. *)
let set_sampling t s = t.sampling <- Some s
let sampling t = t.sampling

let enable_block_trace t ~capacity =
  if capacity <= 0 then invalid_arg "Interp.enable_block_trace: capacity";
  t.trace <- Array.make capacity ("", -1);
  t.trace_next <- 0;
  t.trace_filled <- false;
  refresh_hot t

let recent_blocks t =
  let cap = Array.length t.trace in
  if cap = 0 then []
  else begin
    let count = if t.trace_filled then cap else t.trace_next in
    List.init count (fun i ->
        t.trace.((t.trace_next - 1 - i + (2 * cap)) mod cap))
  end

let record_block t proc label =
  let cap = Array.length t.trace in
  if cap > 0 then begin
    t.trace.(t.trace_next) <- (proc, label);
    t.trace_next <- t.trace_next + 1;
    if t.trace_next >= cap then begin
      t.trace_next <- 0;
      t.trace_filled <- true
    end
  end

let enable_sampling t ~interval =
  if interval <= 0 then invalid_arg "Interp.enable_sampling: interval <= 0";
  t.sample_interval <- interval;
  t.next_sample <- Machine.now t.machine + interval;
  refresh_hot t

let samples t =
  Hashtbl.fold (fun k v acc -> (List.rev k, !v) :: acc) t.samples []
  |> List.sort compare

let take_samples t =
  while t.sample_interval > 0 && Machine.now t.machine >= t.next_sample do
    (match Hashtbl.find_opt t.samples t.call_stack with
    | Some r -> incr r
    | None -> Hashtbl.replace t.samples t.call_stack (ref 1));
    t.next_sample <- t.next_sample + t.sample_interval
  done

let set_telemetry t ~trace ~interval =
  if interval <= 0 then invalid_arg "Interp.set_telemetry: interval <= 0";
  t.telemetry <- trace;
  t.tl_interval <- interval;
  t.tl_next <- Machine.now t.machine + interval;
  refresh_hot t

let take_telemetry t =
  let now = Machine.now t.machine in
  if now >= t.tl_next then begin
    let counters = Machine.counters t.machine in
    let pic0, pic1 = Counters.selection counters in
    Pp_telemetry.Trace.counter t.telemetry "vm"
      [
        ("cycles", now);
        ("instructions", Counters.total counters Event.Instructions);
        (Event.name pic0, Counters.total counters pic0);
        (Event.name pic1, Counters.total counters pic1);
      ];
    t.tl_next <- now + t.tl_interval
  end

let select_pics t ~pic0 ~pic1 =
  Counters.select (Machine.counters t.machine) ~pic0 ~pic1

let machine t = t.machine
let memory t = t.memory
let runtime t = t.runtime
let layout t = t.layout
let program t = t.prog

type ret_value = Vint of int | Vfloat of float | Vvoid

let shift_mask = 63

let exec_ibinop op a b =
  match op with
  | I.Add -> a + b
  | I.Sub -> a - b
  | I.Mul -> a * b
  | I.Div -> if b = 0 then trap "integer division by zero" else a / b
  | I.Rem -> if b = 0 then trap "integer remainder by zero" else a mod b
  | I.And -> a land b
  | I.Or -> a lor b
  | I.Xor -> a lxor b
  | I.Shl -> a lsl (b land shift_mask)
  | I.Shr -> a asr (b land shift_mask)

let exec_icmp c a b =
  let r =
    match c with
    | I.Eq -> a = b
    | I.Ne -> a <> b
    | I.Lt -> a < b
    | I.Le -> a <= b
    | I.Gt -> a > b
    | I.Ge -> a >= b
  in
  if r then 1 else 0

let exec_fcmp c (a : float) (b : float) =
  let r =
    match c with
    | I.Eq -> a = b
    | I.Ne -> a <> b
    | I.Lt -> a < b
    | I.Le -> a <= b
    | I.Gt -> a > b
    | I.Ge -> a >= b
  in
  if r then 1 else 0

let fp_class = function
  | I.Fadd | I.Fsub -> Fp_unit.Fp_add
  | I.Fmul -> Fp_unit.Fp_mul
  | I.Fdiv -> Fp_unit.Fp_div

let exec_fbinop op (a : float) (b : float) =
  match op with
  | I.Fadd -> a +. b
  | I.Fsub -> a -. b
  | I.Fmul -> a *. b
  | I.Fdiv -> a /. b

let check_budget t =
  if
    Counters.total (Machine.counters t.machine) Event.Instructions
    > t.max_instructions
  then trap "instruction budget exhausted (%d)" t.max_instructions

(* Execute one procedure activation; returns its value. *)
let rec exec_proc t image ~iargs ~fargs =
  let p = image.proc in
  let niregs = p.Proc.niregs and nfregs = p.Proc.nfregs in
  let iregs = Array.make (max niregs 1) 0 in
  let fregs = Array.make (max nfregs 1) 0.0 in
  List.iteri (fun i v -> iregs.(i) <- v) iargs;
  List.iteri (fun i v -> fregs.(i) <- v) fargs;
  let fp = t.sp - image.frame_bytes in
  if fp < Layout.stack_limit then trap "stack overflow in %s" p.Proc.name;
  let saved_sp = t.sp in
  t.sp <- fp;
  t.call_stack <- p.Proc.name :: t.call_stack;
  Machine.fp_frame t.machine ~nregs:(max nfregs 1);
  let mach = t.machine in
  let rec run_block label =
    if Array.length t.trace > 0 then record_block t p.Proc.name label;
    (match t.block_probe with
    | None -> ()
    | Some probe ->
        probe ~proc:p.Proc.name ~label ~frame:(fp + linkage_bytes) ~iregs);
    let code = image.code.(label) in
    let addrs = image.addrs.(label) in
    let n = Array.length code in
    for idx = 0 to n - 1 do
      let addr = addrs.(idx) in
      Machine.fetch mach ~addr;
      exec_instr t image iregs fregs fp addr code.(idx)
    done;
    check_budget t;
    if t.sample_interval > 0 then take_samples t;
    if t.tl_interval > 0 then take_telemetry t;
    let taddr = image.term_addr.(label) in
    Machine.fetch mach ~addr:taddr;
    match (Proc.block p label).term with
    | Block.Jmp l -> run_block l
    | Block.Br (r, tl, fl) ->
        let taken = iregs.(r) <> 0 in
        Machine.branch mach ~addr:taddr ~taken;
        run_block (if taken then tl else fl)
    | Block.Ret Block.Ret_void -> Vvoid
    | Block.Ret (Block.Ret_int r) -> Vint iregs.(r)
    | Block.Ret (Block.Ret_float f) ->
        Machine.fp_use mach ~src:f;
        Vfloat fregs.(f)
  in
  let v = run_block p.Proc.entry in
  t.sp <- saved_sp;
  (match t.call_stack with
  | _ :: rest -> t.call_stack <- rest
  | [] -> ());
  v

and exec_instr t image iregs fregs fp addr instr =
  let mach = t.machine in
  let counters = Machine.counters mach in
  match instr with
  | I.Iconst (rd, n) -> iregs.(rd) <- n
  | I.Iconst_sym (rd, sym) -> (
      match Layout.resolve t.layout sym with
      | a -> iregs.(rd) <- a
      | exception Not_found -> trap "unresolved symbol %s" sym)
  | I.Fconst (fd, x) ->
      fregs.(fd) <- x;
      Machine.fp_define mach ~dst:fd
  | I.Imov (rd, rs) -> iregs.(rd) <- iregs.(rs)
  | I.Fmov (fd, fs) ->
      Machine.fp_use mach ~src:fs;
      fregs.(fd) <- fregs.(fs);
      Machine.fp_define mach ~dst:fd
  | I.Ibinop (op, rd, rs1, rs2) ->
      iregs.(rd) <- exec_ibinop op iregs.(rs1) iregs.(rs2)
  | I.Ibinop_imm (op, rd, rs, imm) ->
      iregs.(rd) <- exec_ibinop op iregs.(rs) imm
  | I.Icmp (c, rd, rs1, rs2) ->
      iregs.(rd) <- exec_icmp c iregs.(rs1) iregs.(rs2)
  | I.Icmp_imm (c, rd, rs, imm) ->
      iregs.(rd) <- exec_icmp c iregs.(rs) imm
  | I.Fbinop (op, fd, fs1, fs2) ->
      Machine.fp_issue mach ~cls:(fp_class op) ~dst:fd ~srcs:[ fs1; fs2 ];
      fregs.(fd) <- exec_fbinop op fregs.(fs1) fregs.(fs2)
  | I.Fcmp (c, rd, fs1, fs2) ->
      Machine.fp_use mach ~src:fs1;
      Machine.fp_use mach ~src:fs2;
      iregs.(rd) <- exec_fcmp c fregs.(fs1) fregs.(fs2)
  | I.Itof (fd, rs) ->
      fregs.(fd) <- float_of_int iregs.(rs);
      Machine.fp_define mach ~dst:fd
  | I.Ftoi (rd, fs) ->
      Machine.fp_use mach ~src:fs;
      let x = fregs.(fs) in
      if Float.is_nan x || Float.abs x >= 4.6e18 then
        trap "float-to-int out of range (%g)" x;
      iregs.(rd) <- int_of_float x
  | I.Load (rd, rb, off) ->
      let a = iregs.(rb) + off in
      Machine.load mach ~addr:a;
      (try iregs.(rd) <- Memory.read_int t.memory a
       with Memory.Fault m -> trap "load: %s" m)
  | I.Store (rs, rb, off) ->
      let a = iregs.(rb) + off in
      Machine.store mach ~addr:a;
      (try Memory.write_int t.memory a iregs.(rs)
       with Memory.Fault m -> trap "store: %s" m)
  | I.Fload (fd, rb, off) ->
      let a = iregs.(rb) + off in
      Machine.load mach ~addr:a;
      (try fregs.(fd) <- Memory.read_float t.memory a
       with Memory.Fault m -> trap "load: %s" m);
      Machine.fp_define mach ~dst:fd
  | I.Fstore (fs, rb, off) ->
      Machine.fp_use mach ~src:fs;
      let a = iregs.(rb) + off in
      Machine.store mach ~addr:a;
      (try Memory.write_float t.memory a fregs.(fs)
       with Memory.Fault m -> trap "store: %s" m)
  | I.Call { callee; args; fargs = fas; ret; _ } ->
      let callee_idx =
        match Hashtbl.find_opt t.index_of callee with
        | Some i -> i
        | None -> trap "call to unknown procedure %s" callee
      in
      do_call t image iregs fregs ~callee_idx ~args ~fas ~ret
  | I.Callind { target; args; fargs = fas; ret; _ } ->
      let a = iregs.(target) in
      let callee_idx =
        match Hashtbl.find_opt t.index_of_addr a with
        | Some i -> i
        | None -> trap "indirect call to non-procedure address 0x%x" a
      in
      let callee = t.images.(callee_idx).proc in
      if
        callee.Proc.iparams <> List.length args
        || callee.Proc.fparams <> List.length fas
        || callee.Proc.returns <> Proc.Returns_int
      then
        trap "indirect call signature mismatch on %s" callee.Proc.name;
      do_call t image iregs fregs ~callee_idx ~args ~fas ~ret
  | I.Hwread (rd, k) -> iregs.(rd) <- Counters.read_pic counters k
  | I.Hwzero -> Counters.zero_pics counters
  | I.Hwwrite (rs, k) -> Counters.write_pic counters k iregs.(rs)
  | I.Frameaddr (rd, off) -> iregs.(rd) <- fp + linkage_bytes + off
  | I.Print_int r -> t.output_rev <- Oint iregs.(r) :: t.output_rev
  | I.Print_float f ->
      Machine.fp_use mach ~src:f;
      t.output_rev <- Ofloat fregs.(f) :: t.output_rev
  | I.Prof op ->
      exec_prof t ~proc_name:image.proc.Proc.name ~op_addr:addr ~fp iregs op

and do_call t _image iregs fregs ~callee_idx ~args ~fas ~ret =
  let callee_image = t.images.(callee_idx) in
  let iargs = List.map (fun r -> iregs.(r)) args in
  let fargs = List.map (fun f -> fregs.(f)) fas in
  (* The callee clears the FP scoreboard; waiting on in-flight FP arguments
     happens here. *)
  List.iter (fun f -> Machine.fp_use t.machine ~src:f) fas;
  let v = exec_proc t callee_image ~iargs ~fargs in
  match (ret, v) with
  | I.Rnone, _ -> ()
  | I.Rint rd, Vint n -> iregs.(rd) <- n
  | I.Rfloat fd, Vfloat x ->
      fregs.(fd) <- x;
      Machine.fp_define t.machine ~dst:fd
  | I.Rint _, (Vfloat _ | Vvoid) | I.Rfloat _, (Vint _ | Vvoid) ->
      trap "call return kind mismatch"

and exec_prof t ~proc_name ~op_addr ~fp iregs op =
  let rt = t.runtime in
  let gated =
    match t.sampling with
    | None -> false
    | Some s -> (
        (* Only table commits gate.  The CCT protocol ops must stay
           paired (enter/exit maintain the shadow stack and the gCSP
           save/restore discipline), so they never gate. *)
        match op with
        | I.Path_commit_hash _ | I.Path_commit_hash_hw _
        | I.Path_commit_cct _ ->
            not (Sampling.decide s ~proc:proc_name)
        | I.Cct_enter _ | I.Cct_exit | I.Cct_call _ | I.Cct_metric_enter
        | I.Cct_metric_exit | I.Cct_metric_backedge ->
            false)
  in
  if gated then (
    match op with
    | I.Path_commit_hash_hw _ ->
        (* A skipped hardware commit still re-anchors the PICs (the real
           patched-out probe would, and it costs no machine events), so
           the counter deltas every later commit reads are identical to
           an exhaustive run's. *)
        Counters.zero_pics (Machine.counters t.machine)
    | _ -> ())
  else
  match op with
  | I.Cct_enter { nsites; _ } ->
      Runtime.cct_enter rt ~proc_name ~nsites ~op_addr ~fp
  | I.Cct_exit -> Runtime.cct_exit rt ~op_addr ~fp
  | I.Cct_call { site; indirect } ->
      Runtime.cct_call rt ~site ~indirect ~op_addr
  | I.Cct_metric_enter -> Runtime.cct_metric_enter rt ~op_addr ~fp
  | I.Cct_metric_exit -> Runtime.cct_metric_exit rt ~op_addr ~fp
  | I.Cct_metric_backedge -> Runtime.cct_metric_backedge rt ~op_addr ~fp
  | I.Path_commit_hash { table; path_reg } ->
      Runtime.path_commit_hash rt ~table ~key:iregs.(path_reg) ~hw:false
        ~op_addr
  | I.Path_commit_hash_hw { table; path_reg } ->
      Runtime.path_commit_hash rt ~table ~key:iregs.(path_reg) ~hw:true
        ~op_addr
  | I.Path_commit_cct { table; path_reg } ->
      Runtime.path_commit_cct rt ~table ~key:iregs.(path_reg) ~op_addr

let collect_result t =
  let counters = Counters.totals (Machine.counters t.machine) in
  {
    counters;
    output = List.rev t.output_rev;
    cycles = Counters.total (Machine.counters t.machine) Event.Cycles;
    instructions =
      Counters.total (Machine.counters t.machine) Event.Instructions;
  }

let run t =
  let v = exec_proc t t.images.(t.main_index) ~iargs:[] ~fargs:[] in
  (match v with
  | Vvoid -> ()
  | Vint _ | Vfloat _ -> trap "main returned a value");
  collect_result t

(* ------------------------------------------------------------------ *)
(* Engine internals: the shared-state surface Compile executes against.
   Both engines run over the same [t] — same layout, memory, machine,
   runtime, hooks — so a compiled run perturbs and observes exactly what
   an interpreted run does.                                            *)

let images t = t.images
let main_index t = t.main_index
let proc_index t name = Hashtbl.find_opt t.index_of name
let proc_index_of_addr t addr = Hashtbl.find_opt t.index_of_addr addr
let max_instructions t = t.max_instructions
let stack_pointer t = t.sp
let set_stack_pointer t sp = t.sp <- sp
let push_output t item = t.output_rev <- item :: t.output_rev
let push_activation t name = t.call_stack <- name :: t.call_stack

let pop_activation t =
  match t.call_stack with
  | _ :: rest -> t.call_stack <- rest
  | [] -> ()

let hot t = t.hot

let block_entered t ~proc ~label ~fp ~iregs =
  if Array.length t.trace > 0 then record_block t proc label;
  match t.block_probe with
  | None -> ()
  | Some probe -> probe ~proc ~label ~frame:(fp + linkage_bytes) ~iregs

let block_epilogue t =
  check_budget t;
  if t.sample_interval > 0 then take_samples t;
  if t.tl_interval > 0 then take_telemetry t

let dispatch_prof t ~proc ~op_addr ~fp ~iregs op =
  exec_prof t ~proc_name:proc ~op_addr ~fp iregs op

let read_table_cells t ~global ~index ~cells =
  let base = Layout.global_addr t.layout global in
  Array.init cells (fun i ->
      Memory.read_int t.memory (base + (8 * ((index * cells) + i))))

let pp_output ppf items =
  List.iter
    (fun item ->
      match item with
      | Oint n -> Format.fprintf ppf "%d@," n
      | Ofloat x -> Format.fprintf ppf "%.6g@," x)
    items
