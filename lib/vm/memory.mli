(** The simulated data memory: a handful of byte-addressed segments (data,
    heap, profiling, stack) storing 8-byte words.

    Floats are stored exactly (IEEE bits); integers are stored as 64-bit
    two's-complement and read back as OCaml ints (workloads stay well inside
    63 bits).  Code addresses are never mapped here — instruction fetch only
    meets the I-cache model. *)

exception Fault of string
(** Unmapped address, misalignment, or a read/write crossing a segment. *)

type t

(** [create segments] with [(name, base, size_bytes)] triples; segments must
    be 8-byte aligned and disjoint. *)
val create : (string * int * int) list -> t

val read_int : t -> int -> int
val write_int : t -> int -> int -> unit
val read_float : t -> int -> float
val write_float : t -> int -> float -> unit

(** [read_float_into t addr dst i] is [dst.(i) <- read_float t addr] and
    [write_float_from t addr src i] is [write_float t addr src.(i)],
    with the value transferred inside one function so it is never boxed
    (a [float] crossing a module boundary would be). *)
val read_float_into : t -> int -> float array -> int -> unit

val write_float_from : t -> int -> float array -> int -> unit

(** Is the address mapped and aligned? *)
val valid : t -> int -> bool

(** Zero-fill a whole segment (fresh segments are already zeroed). *)
val clear_segment : t -> string -> unit
