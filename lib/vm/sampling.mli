(** Sampled instrumentation: a runtime-togglable controller that gates
    the path-commit probes (Metz & Lencevicius, "Efficient
    Instrumentation for Performance Profiling").

    Installed on a VM with {!Interp.set_sampling}, the controller decides
    — per procedure, per burst of consecutive commits — whether each
    path-commit probe records or is skipped.  A skipped probe never
    reaches {!Runtime}, so the machine model charges none of its fetches,
    loads or stores: lowering the duty cycle buys back real (simulated)
    overhead, which is what the accuracy-vs-overhead frontier in
    [bench serve] measures.

    Only the table-commit probes gate ([Path_commit_hash],
    [Path_commit_hash_hw], [Path_commit_cct]).  The CCT protocol ops
    (enter/exit/call, metric save/restore) never gate — skipping them
    would unbalance the shadow call stack — and a gated-off hardware
    commit still re-anchors the PICs, so the counter state every later
    commit observes is identical to an exhaustive run's.

    {2 Determinism}

    The decision for the [n]-th commit of procedure [p] is a pure
    function of [(seed, p, n / burst, duty p)].  Tick streams are kept
    per procedure, so the schedule is independent of engine choice,
    shard interleaving and [--jobs]: the same seed and duty yield
    byte-identical sampled profiles anywhere, and duty [1.0] is
    byte-identical to an exhaustive run of the same instrumentation.

    {2 Coverage}

    The controller counts every decision: {!coverage} returns the exact
    [(sampled, total)] commit window per procedure — the scaling
    certificate a sampled shard carries (see
    {!Pp_core.Profile_io.saved}), from which consumers scale sampled
    frequencies by [total/sampled]. *)

type t

(** The burst length {!create} defaults to (64). *)
val default_burst : int

(** [create ~seed ()] — [duty] (default [1.0]) is the global duty cycle
    in [\[0, 1\]]; [burst] (default 64) is the number of consecutive
    commits sharing one decision.
    @raise Invalid_argument on a duty outside [\[0, 1\]] or [burst <= 0]. *)
val create : ?burst:int -> ?duty:float -> seed:int -> unit -> t

(** Change the global duty cycle, or (with [?proc]) override one
    procedure's.  Takes effect at the next burst boundary — callable
    mid-run. *)
val set_duty : t -> ?proc:string -> float -> unit

(** The duty cycle [decide] uses for [proc]. *)
val duty_of : t -> string -> float

(** Master toggle: while [false] every probe records (the controller is
    bypassed but coverage is still counted), so profiling can be forced
    exhaustive mid-run without uninstalling the controller. *)
val set_enabled : t -> bool -> unit

val enabled : t -> bool
val seed : t -> int
val burst : t -> int

(** Consume procedure [proc]'s next commit tick: [true] = record the
    commit, [false] = skip it.  Called by the VM once per gateable
    probe on both engines. *)
val decide : t -> proc:string -> bool

(** Exact enabled-window coverage, per procedure, sorted:
    [(proc, (sampled, total))] — [sampled] commits recorded out of
    [total] executed. *)
val coverage : t -> (string * (int * int)) list

(** The frequency scale factor a [(sampled, total)] window certifies:
    [total/sampled], or [1.0] for empty or exhaustive windows. *)
val scale : sampled:int -> total:int -> float
