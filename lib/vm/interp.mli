(** The virtual machine: executes a validated IR program against the
    simulated microarchitecture.

    Every instruction fetch, load, store, taken/not-taken branch and FP
    operation is reported to {!Pp_machine.Machine}, so the event counters
    describe the run exactly as UltraSPARC counters described a SPEC95 run —
    including the perturbation caused by any instrumentation code present in
    the program.  Profiling pseudo-ops dispatch to {!Runtime}. *)

exception Trap of string
(** Division by zero, unmapped or misaligned access, bad indirect-call
    target or arity, stack overflow, or the instruction budget running
    out. *)

type output_item = Oint of int | Ofloat of float

type result = {
  counters : (Pp_machine.Event.t * int) list;
  output : output_item list;  (** in emission order *)
  cycles : int;
  instructions : int;
}

type t

(** [create prog] lays the program out, allocates memory segments and
    initialises globals.  [max_instructions] bounds the run (default 2e9).
    The program is expected to be {!Pp_ir.Validate}-clean. *)
val create :
  ?config:Pp_machine.Config.t ->
  ?max_instructions:int ->
  ?merge_call_sites:bool ->
  Pp_ir.Program.t ->
  t

(** Select the events observed by the two PICs before running. *)
val select_pics : t -> pic0:Pp_machine.Event.t -> pic1:Pp_machine.Event.t -> unit

(** Execute [main] to completion.  @raise Trap *)
val run : t -> result

val machine : t -> Pp_machine.Machine.t
val memory : t -> Memory.t
val runtime : t -> Runtime.t
val layout : t -> Pp_ir.Layout.t
val program : t -> Pp_ir.Program.t

(** {2 Execution tracing}

    A bounded ring of recently entered (procedure, block) pairs — cheap
    enough to leave on, and the first thing to consult when a workload
    traps. *)

(** Record the last [capacity] block entries.
    @raise Invalid_argument if [capacity <= 0]. *)
val enable_block_trace : t -> capacity:int -> unit

(** Most recent first; empty when tracing is off. *)
val recent_blocks : t -> (string * Pp_ir.Block.label) list

(** {2 Self-telemetry}

    Periodic counter samples ([ph:"C"] events named ["vm"]: cycles,
    instructions and both selected PIC totals) into a
    {!Pp_telemetry.Trace} sink, taken on block boundaries every
    [interval] simulated cycles.  Off by default — the sink starts as
    {!Pp_telemetry.Trace.null} and the sampling branch is guarded by the
    interval, so an un-telemetered run does no extra work and its
    results are byte-identical. *)

(** Enable before {!run}.  @raise Invalid_argument if [interval <= 0]. *)
val set_telemetry : t -> trace:Pp_telemetry.Trace.t -> interval:int -> unit

(** {2 Stack sampling}

    The Goldberg–Hall style comparison profiler of the paper's §7.2: every
    [interval] simulated cycles the VM records the current call stack.
    Sampling is approximate by construction (samples land on block
    boundaries) and its data is unbounded (one bucket per distinct stack) —
    the two drawbacks the paper holds against it. *)

(** Enable before {!run}.  @raise Invalid_argument if [interval <= 0]. *)
val enable_sampling : t -> interval:int -> unit

(** Distinct sampled call stacks (outermost procedure first, [main]
    included) with their hit counts; valid after {!run}. *)
val samples : t -> (string list * int) list

(** {2 Block-entry probe}

    Invoked on every block entry with the executing procedure, block
    label, the activation's frame base ([fp] plus linkage, i.e. the
    address [Frameaddr r, 0] would produce) and the {e live} integer
    register array (do not mutate).  The abstract-interpretation
    soundness oracle uses it to check VM-observed register values against
    derived intervals.  Off by default: an un-probed run takes one [None]
    branch per block and is otherwise unchanged. *)
val set_block_probe :
  t ->
  (proc:string -> label:Pp_ir.Block.label -> frame:int -> iregs:int array ->
   unit) ->
  unit

(** Read back a path-counter global (the array-mode tables the instrumenter
    plants in the data segment): [read_table_cells t ~global ~index ~cells]
    returns the [cells] consecutive words at entry [index]. *)
val read_table_cells : t -> global:string -> index:int -> cells:int -> int array

val pp_output : Format.formatter -> output_item list -> unit
