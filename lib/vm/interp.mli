(** The virtual machine: executes a validated IR program against the
    simulated microarchitecture.

    Every instruction fetch, load, store, taken/not-taken branch and FP
    operation is reported to {!Pp_machine.Machine}, so the event counters
    describe the run exactly as UltraSPARC counters described a SPEC95 run —
    including the perturbation caused by any instrumentation code present in
    the program.  Profiling pseudo-ops dispatch to {!Runtime}. *)

exception Trap of string
(** Division by zero, unmapped or misaligned access, bad indirect-call
    target or arity, stack overflow, or the instruction budget running
    out. *)

type output_item = Oint of int | Ofloat of float

type result = {
  counters : (Pp_machine.Event.t * int) list;
  output : output_item list;  (** in emission order *)
  cycles : int;
  instructions : int;
}

type t

(** [create prog] lays the program out, allocates memory segments and
    initialises globals.  [max_instructions] bounds the run (default 2e9).
    The program is expected to be {!Pp_ir.Validate}-clean. *)
val create :
  ?config:Pp_machine.Config.t ->
  ?max_instructions:int ->
  ?merge_call_sites:bool ->
  Pp_ir.Program.t ->
  t

(** Select the events observed by the two PICs before running. *)
val select_pics : t -> pic0:Pp_machine.Event.t -> pic1:Pp_machine.Event.t -> unit

(** Execute [main] to completion.  @raise Trap *)
val run : t -> result

val machine : t -> Pp_machine.Machine.t
val memory : t -> Memory.t
val runtime : t -> Runtime.t
val layout : t -> Pp_ir.Layout.t
val program : t -> Pp_ir.Program.t

(** {2 Execution tracing}

    A bounded ring of recently entered (procedure, block) pairs — cheap
    enough to leave on, and the first thing to consult when a workload
    traps. *)

(** Record the last [capacity] block entries.
    @raise Invalid_argument if [capacity <= 0]. *)
val enable_block_trace : t -> capacity:int -> unit

(** Most recent first; empty when tracing is off. *)
val recent_blocks : t -> (string * Pp_ir.Block.label) list

(** {2 Self-telemetry}

    Periodic counter samples ([ph:"C"] events named ["vm"]: cycles,
    instructions and both selected PIC totals) into a
    {!Pp_telemetry.Trace} sink, taken on block boundaries every
    [interval] simulated cycles.  Off by default — the sink starts as
    {!Pp_telemetry.Trace.null} and the sampling branch is guarded by the
    interval, so an un-telemetered run does no extra work and its
    results are byte-identical. *)

(** Enable before {!run}.  @raise Invalid_argument if [interval <= 0]. *)
val set_telemetry : t -> trace:Pp_telemetry.Trace.t -> interval:int -> unit

(** {2 Stack sampling}

    The Goldberg–Hall style comparison profiler of the paper's §7.2: every
    [interval] simulated cycles the VM records the current call stack.
    Sampling is approximate by construction (samples land on block
    boundaries) and its data is unbounded (one bucket per distinct stack) —
    the two drawbacks the paper holds against it. *)

(** Enable before {!run}.  @raise Invalid_argument if [interval <= 0]. *)
val enable_sampling : t -> interval:int -> unit

(** Distinct sampled call stacks (outermost procedure first, [main]
    included) with their hit counts; valid after {!run}. *)
val samples : t -> (string list * int) list

(** {2 Sampled instrumentation}

    A {!Sampling} controller gates the path-commit pseudo-ops: a gated-off
    commit skips its {!Runtime} dispatch entirely (no machine charges, no
    table write), except that a skipped hardware commit still re-anchors
    the PICs so counter state stays identical to an exhaustive run.  The
    gate sits in the shared prof dispatch, so it covers both engines.
    Install before {!run}; the controller's toggles ({!Sampling.set_duty},
    {!Sampling.set_enabled}) take effect mid-run. *)

val set_sampling : t -> Sampling.t -> unit

(** The installed controller, if any. *)
val sampling : t -> Sampling.t option

(** {2 Block-entry probe}

    Invoked on every block entry with the executing procedure, block
    label, the activation's frame base ([fp] plus linkage, i.e. the
    address [Frameaddr r, 0] would produce) and the {e live} integer
    register array (do not mutate).  The abstract-interpretation
    soundness oracle uses it to check VM-observed register values against
    derived intervals.  Off by default: an un-probed run takes one [None]
    branch per block and is otherwise unchanged. *)
val set_block_probe :
  t ->
  (proc:string -> label:Pp_ir.Block.label -> frame:int -> iregs:int array ->
   unit) ->
  unit

(** Read back a path-counter global (the array-mode tables the instrumenter
    plants in the data segment): [read_table_cells t ~global ~index ~cells]
    returns the [cells] consecutive words at entry [index]. *)
val read_table_cells : t -> global:string -> index:int -> cells:int -> int array

val pp_output : Format.formatter -> output_item list -> unit

(** {2 Engine internals}

    The shared-state surface the closure-threaded {!Compile} engine
    executes against.  Both engines run over the same [t] — one layout,
    memory image, machine model, runtime and hook set — which is what
    makes their results bit-comparable.  Not intended for general use. *)

(** Per-procedure execution image: per-block instruction arrays, the
    laid-out address of every instruction slot, the terminator address,
    and the activation frame size. *)
type image = {
  proc : Pp_ir.Proc.t;
  code : Pp_ir.Instr.t array array;  (** per block *)
  addrs : int array array;  (** per block, per instruction index *)
  term_addr : int array;  (** per block *)
  frame_bytes : int;  (** linkage area + local arrays *)
}

(** The images, indexed like [Program.procs]. *)
val images : t -> image array

(** Index of [main] in {!images}. *)
val main_index : t -> int

(** Procedure index by name, as {!run} resolves direct calls. *)
val proc_index : t -> string -> int option

(** Procedure index by code address, as {!run} resolves indirect calls. *)
val proc_index_of_addr : t -> int -> int option

(** Bytes between a frame pointer and the frame's addressable area (the
    [Frameaddr] base). *)
val linkage_bytes : int

(** The run's instruction budget. *)
val max_instructions : t -> int

val stack_pointer : t -> int
val set_stack_pointer : t -> int -> unit

(** Append one item to the program output. *)
val push_output : t -> output_item -> unit

(** Push/pop the sampled call stack on procedure entry/exit. *)
val push_activation : t -> string -> unit

val pop_activation : t -> unit

(** A single flag covering every per-block hook (trace ring, block probe,
    stack sampling, telemetry); maintained by the hook setters.  Compiled
    blocks capture the record once and poll the field — while it is
    [false], {!block_entered} is a no-op and {!block_epilogue} reduces to
    the budget check, so both calls can be elided. *)
type hot = private { mutable hooks : bool }

val hot : t -> hot

(** Block-entry bookkeeping: the trace ring and the block probe, in the
    interpreter's order.  [fp] is the raw frame pointer (the probe sees
    [fp + linkage_bytes]). *)
val block_entered :
  t -> proc:string -> label:Pp_ir.Block.label -> fp:int -> iregs:int array ->
  unit

(** Block-end bookkeeping: budget check, stack sampling, telemetry —
    exactly what the interpreter runs between a block's last instruction
    and its terminator fetch.  @raise Trap when the budget is exhausted. *)
val block_epilogue : t -> unit

(** Execute one profiling pseudo-op against the runtime. *)
val dispatch_prof :
  t -> proc:string -> op_addr:int -> fp:int -> iregs:int array ->
  Pp_ir.Instr.prof_op -> unit

(** Snapshot counters and output into a {!result} (what {!run} returns
    after [main] completes). *)
val collect_result : t -> result

(** Raise {!Trap} with a formatted message. *)
val trap : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Scalar instruction semantics, shared verbatim by both engines.
    @raise Trap on division/remainder by zero. *)
val exec_ibinop : Pp_ir.Instr.ibinop -> int -> int -> int

val exec_icmp : Pp_ir.Instr.cmp -> int -> int -> int
val exec_fcmp : Pp_ir.Instr.cmp -> float -> float -> int
val exec_fbinop : Pp_ir.Instr.fbinop -> float -> float -> float

(** FP unit op class of an FP arithmetic instruction. *)
val fp_class : Pp_ir.Instr.fbinop -> Pp_machine.Fp_unit.op_class
