(** The [pp predict] certification harness: run a workload with the
    measurement oracle attached, then check every measured per-path
    counter delta against the static bounds of {!Pp_analysis.Predict}.

    {b The oracle.}  A block probe ({!Pp_vm.Interp.set_block_probe})
    fires at every instrumented-block entry, before any of the block's
    fetches, carrying the probing frame base.  The oracle keeps a stack
    of {e activations} keyed by frame and attributes the counter delta
    since the previous probe to the open window of the topmost
    activation.  Structure is recovered exactly, without any help from
    the instrumentation:

    - a probe with a frame {e larger} than the top's pops activations
      (returns), closing their windows with sink [To_exit];
    - a probe matching the top's frame continues that activation iff the
      instrumented CFG has an edge from its last probed block to the
      probed one — the last probed block of a finished activation is its
      [Ret] block, which has no out-edges, so an equal-frame sibling
      call can never be mistaken for a transition;
    - within an activation, a transition between original blocks that is
      a Ball–Larus backedge closes the window ([Into_backedge]) and
      opens the next ([After_backedge]), mirroring where the
      instrumenter commits path sums.

    A window's path is re-encoded with {!Pp_core.Ball_larus.encode};
    any failure to encode is an {e anomaly} (a soundness bug), reported
    and reflected in the exit code.  A trapped run discards open
    windows and keeps the closed ones.

    {b Verdicts.}  For a path measured [freq] times with summed delta
    [m] on a metric, the certified interval is
    [freq*lo <= m <= freq*hi + min(freq, entries)*once + freq*tail],
    where [entries] counts entries of the loop the path's persistence
    bound is charged against, and [tail] is the callee-tail bound for
    [To_exit] paths.  [REFUTED] (measurement outside the interval)
    makes {!exit_code} 2; [VACUOUS] means unbounded, or looser than
    [vacuous_slack] cycles/events of slack per window even against a
    zero measurement ([hi - lo > vacuous_slack * max freq measured]);
    otherwise [CONFIRMED]. *)

module Config = Pp_machine.Config
module Instrument = Pp_instrument.Instrument
module Engine = Pp_vm.Engine
module Predict = Pp_analysis.Predict

type verdict = Confirmed | Refuted | Vacuous

val verdict_name : verdict -> string

(** One metric of one path: measurement vs certified total bounds. *)
type mstat = {
  metric : string;  (** ["cycles"], ["dmiss"], ["imiss"] or ["stalls"] *)
  measured : int;
  lo : int;
  hi : int option;  (** [None] = unbounded *)
  mverdict : verdict;
}

type row = {
  proc : string;
  sum : int;  (** Ball–Larus path sum *)
  freq : int;  (** closed measurement windows *)
  path_desc : string;
  stats : mstat list;  (** the four metrics, fixed order *)
  rverdict : verdict;  (** worst of [stats] *)
}

type outcome = {
  mode : Instrument.mode;
  engine : Engine.kind;
  injected : string option;
  rows : row list;  (** procedure-major, then by path sum *)
  windows : int;  (** total closed windows *)
  anomalies : string list;  (** oracle inconsistencies — must be empty *)
  trapped : bool;
  confirmed : int;
  refuted : int;
  vacuous : int;
  mean_slack : float;
      (** mean of [(hi - lo) / max freq measured] over bounded stats:
          the tightness figure of merit *)
}

(** {2 Fault injection}

    [pp predict --inject] executes on a deliberately mutated geometry
    while the analysis keeps modelling the configured one, proving the
    oracle actually catches a wrong model (the gate expects exit 2). *)

type inject =
  | Dcache_size  (** halve the D-cache size *)
  | Icache_line  (** halve the I-cache line size *)

val injects : inject list
val inject_name : inject -> string
val inject_of_string : string -> inject option
val apply_inject : inject -> Config.t -> Config.t

(** Instrument for [mode], execute (on the [inject]-mutated geometry if
    any) with the oracle attached, and certify.  [config] is the
    modelled machine (default {!Config.default}); [budget] bounds
    executed instructions; [vacuous_slack] (default 8.0) is the
    looseness threshold above which a bounded verdict degrades to
    [Vacuous]. *)
val run :
  ?options:Instrument.options ->
  ?config:Config.t ->
  ?inject:inject ->
  ?engine:Engine.kind ->
  ?budget:int ->
  ?vacuous_slack:float ->
  mode:Instrument.mode ->
  Pp_ir.Program.t ->
  outcome

(** 2 when any outcome has a refuted row or an anomaly, else 0. *)
val exit_code : outcome list -> int

(** Located one-line diagnostics for every refuted stat and anomaly. *)
val errors : outcome -> string list

val render_table : Format.formatter -> outcome -> unit

(** All outcomes as one JSON document. *)
val render_json : Format.formatter -> outcome list -> unit
