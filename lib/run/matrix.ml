module W = Pp_workloads.Workload
module Registry = Pp_workloads.Registry
module Instrument = Pp_instrument.Instrument
module Driver = Pp_instrument.Driver
module Interp = Pp_vm.Interp
module Event = Pp_machine.Event
module Profile = Pp_core.Profile
module Profile_io = Pp_core.Profile_io
module Cct = Pp_core.Cct
module Report = Pp_core.Report

type config = Base | Mode of Instrument.mode

let config_name = function
  | Base -> "base"
  | Mode m -> Instrument.mode_name m

let all_configs =
  [
    Base;
    Mode Instrument.Edge_freq;
    Mode Instrument.Flow_freq;
    Mode Instrument.Flow_hw;
    Mode Instrument.Context_hw;
    Mode Instrument.Context_flow;
  ]

type task = { workload : string; config : config }

type cell = {
  instructions : int;
  cycles : int;
  pic0 : int;
  pic1 : int;
  detail : string;  (** per-mode headline: paths/records/traversals *)
  saved : Profile_io.saved option;
      (** the shard's path profile, when the mode collects one *)
}

let tasks ?workloads ?(configs = all_configs) () =
  let workloads =
    match workloads with
    | Some names -> names
    | None -> List.map (fun (w : W.t) -> w.W.name) Registry.all
  in
  List.concat_map
    (fun workload -> List.map (fun config -> { workload; config }) configs)
    workloads

let default_budget = 400_000_000

let counter counters e = try List.assoc e counters with Not_found -> 0

(* Worker-side metrics: recorded into [Metrics.default] so the pool
   ships them back to the parent.  Deterministic values only (simulated
   cycles/instructions), never wall clock — the dump must be
   byte-identical at any --jobs. *)
let record_metrics task (c : cell) =
  let m = Pp_telemetry.Metrics.default in
  Pp_telemetry.Metrics.incr m "matrix.cells" 1;
  Pp_telemetry.Metrics.incr m
    (Printf.sprintf "matrix.%s.instructions" (config_name task.config))
    c.instructions;
  Pp_telemetry.Metrics.observe m "matrix.cycles" c.cycles

let measure_cell ?(budget = default_budget) ?engine task =
  let w =
    match Registry.find task.workload with
    | Some w -> w
    | None -> failwith (Printf.sprintf "unknown workload %S" task.workload)
  in
  let prog = W.compile w in
  let pics = (Event.Dcache_misses, Event.Instructions) in
  match task.config with
  | Base ->
      let r = Driver.run_baseline ~max_instructions:budget ~pics ?engine prog in
      {
        instructions = r.Interp.instructions;
        cycles = r.Interp.cycles;
        pic0 = counter r.Interp.counters Event.Dcache_misses;
        pic1 = counter r.Interp.counters Event.Instructions;
        detail = "";
        saved = None;
      }
  | Mode mode ->
      let session =
        Driver.prepare ~max_instructions:budget ~pics ?engine ~mode prog
      in
      let r = Driver.run session in
      let detail, saved =
        match mode with
        | Instrument.Flow_freq | Instrument.Flow_hw
        | Instrument.Context_flow ->
            let profile = Driver.path_profile session in
            let paths =
              List.fold_left
                (fun acc (p : Profile.proc_profile) ->
                  acc + List.length p.Profile.paths)
                0 profile.Profile.procs
            in
            ( Printf.sprintf "%d executed paths" paths,
              Some
                (Profile_io.of_profile
                   ~program_hash:(Profile_io.program_hash prog)
                   ~mode:(Instrument.mode_name mode) profile) )
        | Instrument.Edge_freq ->
            let traversals =
              List.fold_left
                (fun acc (_, _, edges) ->
                  List.fold_left (fun acc (_, c) -> acc + c) acc edges)
                0
                (Driver.edge_profile session)
            in
            (Printf.sprintf "%d edge traversals" traversals, None)
        | Instrument.Context_hw ->
            ( Printf.sprintf "%d call records"
                (Cct.num_nodes (Driver.cct session) - 1),
              None )
      in
      let detail =
        match mode with
        | Instrument.Context_flow ->
            Printf.sprintf "%s, %d call records" detail
              (Cct.num_nodes (Driver.cct session) - 1)
        | _ -> detail
      in
      {
        instructions = r.Interp.instructions;
        cycles = r.Interp.cycles;
        pic0 = counter r.Interp.counters Event.Dcache_misses;
        pic1 = counter r.Interp.counters Event.Instructions;
        detail;
        saved;
      }

let measure ?budget ?engine task =
  let cell = measure_cell ?budget ?engine task in
  record_metrics task cell;
  cell

let run_stats ?jobs ?timeout ?budget ?engine tasks =
  let outcomes, stats =
    Pool.map_stats ?jobs ?timeout (measure ?budget ?engine) tasks
  in
  (List.map2 (fun t o -> (t, o)) tasks outcomes, stats)

let run ?jobs ?timeout ?budget ?engine tasks =
  fst (run_stats ?jobs ?timeout ?budget ?engine tasks)

(* The report is a pure function of the outcome list, which the pool returns
   in task order: byte-identical output at any --jobs. *)
let report results =
  let rows =
    List.concat_map
      (fun (t, outcome) ->
        let row =
          match outcome with
          | Pool.Done c ->
              `Row
                [
                  t.workload;
                  config_name t.config;
                  string_of_int c.instructions;
                  string_of_int c.cycles;
                  string_of_int c.pic0;
                  string_of_int c.pic1;
                  c.detail;
                ]
          | (Pool.Crashed _ | Pool.Timed_out _) as o ->
              `Row
                [ t.workload; config_name t.config; "-"; "-"; "-"; "-";
                  Pool.describe o ]
        in
        let sep =
          (* Rule between workloads, matching the task grouping. *)
          match t.config with
          | Mode Instrument.Context_flow -> [ `Sep ]
          | _ -> []
        in
        (row :: sep))
      results
  in
  Report.render
    ~columns:
      [
        ("Workload", Report.Left);
        ("Config", Report.Left);
        ("Insts", Report.Right);
        ("Cycles", Report.Right);
        ("DC misses", Report.Right);
        ("Insts(PIC)", Report.Right);
        ("Profile", Report.Left);
      ]
    ~rows

let failures results =
  List.filter_map
    (fun (t, o) ->
      match o with
      | Pool.Done _ -> None
      | o ->
          Some
            (Printf.sprintf "%s/%s %s" t.workload (config_name t.config)
               (Pool.describe o)))
    results
