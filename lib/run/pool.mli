(** A process pool for the run matrix.

    Each task runs in a forked child; the child marshals its result back
    over a pipe and exits.  A crashing or diverging workload therefore takes
    down only its own shard: the parent reports the loss and the rest of the
    matrix completes.  Results come back in task order regardless of
    completion order, which is what makes parallel reports byte-identical to
    serial ones. *)

type 'a outcome =
  | Done of 'a
  | Crashed of string
      (** the task raised (rendered exception), exited nonzero, or died on a
          signal *)
  | Timed_out of float  (** killed after running this many seconds *)

(** [map ~jobs ~timeout f xs] evaluates [f] over [xs] with at most [jobs]
    concurrent workers, returning outcomes in input order.

    With [jobs <= 1] — or on platforms without [Unix.fork] — tasks run
    in-process (exceptions still isolate as [Crashed], but [timeout] is not
    enforced: there is no process to kill).  Results must be marshalable
    (no closures); a torn or unreadable result is reported as [Crashed],
    never silently dropped. *)
val map : ?jobs:int -> ?timeout:float -> ('a -> 'b) -> 'a list -> 'b outcome list

(** [Some v] for [Done v]. *)
val outcome_ok : 'a outcome -> 'a option

(** Human-readable status, e.g. ["crashed: Stack_overflow"]. *)
val describe : _ outcome -> string
