(** A process pool for the run matrix.

    Each task runs in a forked child; the child marshals its result back
    over a pipe and exits.  A crashing or diverging workload therefore takes
    down only its own shard: the parent reports the loss and the rest of the
    matrix completes.  Results come back in task order regardless of
    completion order, which is what makes parallel reports byte-identical to
    serial ones.

    Workers also ship their {!Pp_telemetry.Metrics} delta (what they
    recorded into [Metrics.default] since the fork) alongside the result;
    the parent absorbs it, so metrics aggregate identically at any
    [jobs]. *)

type 'a outcome =
  | Done of 'a
  | Crashed of string
      (** the task raised (rendered exception), exited nonzero, or died on a
          signal *)
  | Timed_out of float  (** killed after running this many seconds *)

type task_stat = {
  task : int;  (** input-order index *)
  wall : float;  (** seconds the worker ran *)
  status : string;  (** {!describe} of its outcome *)
}

type stats = {
  jobs : int;
  tasks : int;
  ok : int;
  crashed : int;
  timed_out : int;
  total_wall : float;  (** seconds from first spawn to last reap *)
  task_stats : task_stat list;  (** in task order *)
}

(** [map ~jobs ~timeout f xs] evaluates [f] over [xs] with at most [jobs]
    concurrent workers, returning outcomes in input order.

    With [jobs <= 1] — or on platforms without [Unix.fork] — tasks run
    in-process (exceptions still isolate as [Crashed], but [timeout] is not
    enforced: there is no process to kill).  Results must be marshalable
    (no closures); a torn or unreadable result is reported as [Crashed],
    never silently dropped.  Result pipes are drained with a loop — a
    payload larger than the pipe capacity arrives as many partial reads,
    never torn. *)
val map : ?jobs:int -> ?timeout:float -> ('a -> 'b) -> 'a list -> 'b outcome list

(** {!map} plus per-task wall times and outcome counts for the summary
    footer.  Also bumps the [pool.tasks] / [pool.ok] / [pool.crashed] /
    [pool.timed_out] counters in [Metrics.default] (jobs-independent, so
    metric dumps stay byte-identical at any [--jobs]). *)
val map_stats :
  ?jobs:int ->
  ?timeout:float ->
  ('a -> 'b) ->
  'a list ->
  'b outcome list * stats

(** Human-readable multi-line summary: task/job counts, elapsed time, the
    slowest task, and one line per crashed or timed-out task.  Wall-clock
    dependent — print to stderr, never into golden stdout. *)
val footer : stats -> string

(** [Some v] for [Done v]. *)
val outcome_ok : 'a outcome -> 'a option

(** Human-readable status, e.g. ["crashed: Stack_overflow"]. *)
val describe : _ outcome -> string
