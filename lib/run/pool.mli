(** A process pool for the run matrix.

    Each task runs in a forked child; the child marshals its result back
    over a pipe and exits.  A crashing or diverging workload therefore takes
    down only its own shard: the parent reports the loss and the rest of the
    matrix completes.  Results come back in task order regardless of
    completion order, which is what makes parallel reports byte-identical to
    serial ones.

    Workers also ship their {!Pp_telemetry.Metrics} delta (what they
    recorded into [Metrics.default] since the fork) alongside the result;
    the parent absorbs it, so metrics aggregate identically at any
    [jobs]. *)

type 'a outcome =
  | Done of 'a
  | Crashed of string
      (** the task raised (rendered exception), exited nonzero, or died on a
          signal *)
  | Timed_out of float  (** killed after running this many seconds *)

type task_stat = {
  task : int;  (** input-order index *)
  wall : float;  (** seconds the worker ran, summed over its attempts *)
  status : string;  (** {!describe} of its final outcome *)
  attempts : int;  (** how many times the task ran (1 = no retry) *)
}

type stats = {
  jobs : int;
  tasks : int;
  ok : int;
  crashed : int;
  timed_out : int;
  retried : int;  (** tasks that needed more than one attempt *)
  quarantined : int;
      (** tasks that exhausted their attempt budget and stayed failed *)
  attempts : int;  (** total attempts across all tasks *)
  total_wall : float;  (** seconds from first spawn to last reap *)
  task_stats : task_stat list;  (** in task order *)
}

(** Exponential-backoff schedule for {!map_retry}.  Before attempt
    [a+1] of a task that failed attempt [a], the pool waits
    [min max_delay (base *. factor ** (a-1))] seconds, scaled by a
    deterministic jitter in [1 ± jitter] drawn from
    [Faults.mix [seed; task; a]] — so a seeded chaos run's retry
    schedule replays exactly.  Failed tasks of a round are retried
    together after a single sleep (the longest delay any of them asks
    for). *)
type backoff = {
  base : float;  (** first-retry delay, seconds *)
  factor : float;  (** multiplier per additional attempt *)
  max_delay : float;  (** cap on the un-jittered delay *)
  jitter : float;  (** relative jitter amplitude in [0, 1] *)
  seed : int;  (** jitter seed *)
}

(** 50ms base, doubling, capped at 1s, ±50% jitter, seed 0. *)
val default_backoff : backoff

(** [map ~jobs ~timeout f xs] evaluates [f] over [xs] with at most [jobs]
    concurrent workers, returning outcomes in input order.

    With [jobs <= 1] — or on platforms without [Unix.fork] — tasks run
    in-process (exceptions still isolate as [Crashed], but [timeout] is not
    enforced: there is no process to kill).  Results must be marshalable
    (no closures); a torn or unreadable result is reported as [Crashed],
    never silently dropped.  Result pipes are drained with a loop — a
    payload larger than the pipe capacity arrives as many partial reads,
    never torn.

    Worker stderr is serialized through the parent: each worker writes
    to a private capture, replayed in one atomic write when the worker
    is reaped, so concurrent workers' diagnostics (and the parent's
    {!footer}) never interleave mid-line. *)
val map : ?jobs:int -> ?timeout:float -> ('a -> 'b) -> 'a list -> 'b outcome list

(** {!map} plus per-task wall times and outcome counts for the summary
    footer.  Also bumps the [pool.*] counters in [Metrics.default]
    (jobs-independent, so metric dumps stay byte-identical at any
    [--jobs]).  Equivalent to {!map_retry} with a budget of one
    attempt. *)
val map_stats :
  ?jobs:int ->
  ?timeout:float ->
  ('a -> 'b) ->
  'a list ->
  'b outcome list * stats

(** [map_retry ~retries f xs] is {!map_stats} with a per-task attempt
    budget: a task whose outcome is [Crashed] or [Timed_out] is rerun —
    after the {!backoff} delay — up to [retries] times total (default 1,
    i.e. no retry; values [< 1] are clamped to 1).  A task that exhausts
    the budget is {e quarantined}: its last failure stands in the
    outcome list and [stats.quarantined] counts it.

    [f] receives the 1-based attempt number, so a task can (and chaos
    runs do) behave differently across attempts.

    [verify], when given, runs {e in the parent} over each [Done] result
    before it is accepted; [Error msg] demotes the outcome to
    [Crashed msg] and the task is retried like any other failure.  This
    is how a runner catches damage a worker cannot see itself — e.g. a
    shard file that was corrupted on disk after the worker wrote it.

    [sleep] (default [Unix.sleepf]) performs the backoff waits;
    inject a recording stub to test the schedule without real delays.

    Like {!map_stats}, bumps the [pool.*] counters, including
    [pool.attempts] / [pool.retried] / [pool.quarantined]. *)
val map_retry :
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?backoff:backoff ->
  ?sleep:(float -> unit) ->
  ?verify:('a -> 'b -> (unit, string) result) ->
  (attempt:int -> 'a -> 'b) ->
  'a list ->
  'b outcome list * stats

(** Human-readable multi-line summary: task/job counts, elapsed time, the
    slowest task, and one line per crashed or timed-out task.  Wall-clock
    dependent — print to stderr, never into golden stdout. *)
val footer : stats -> string

(** [Some v] for [Done v]. *)
val outcome_ok : 'a outcome -> 'a option

(** Human-readable status, e.g. ["crashed: Stack_overflow"]. *)
val describe : _ outcome -> string
