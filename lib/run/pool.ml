module Metrics = Pp_telemetry.Metrics

type 'a outcome =
  | Done of 'a
  | Crashed of string
  | Timed_out of float

type task_stat = { task : int; wall : float; status : string; attempts : int }

type stats = {
  jobs : int;
  tasks : int;
  ok : int;
  crashed : int;
  timed_out : int;
  retried : int;
  quarantined : int;
  attempts : int;
  total_wall : float;
  task_stats : task_stat list;
}

type backoff = {
  base : float;
  factor : float;
  max_delay : float;
  jitter : float;
  seed : int;
}

let default_backoff =
  { base = 0.05; factor = 2.0; max_delay = 1.0; jitter = 0.5; seed = 0 }

(* Jittered exponential delay before retrying [task] after failed attempt
   [attempt].  Deterministic: the jitter draw is a pure function of
   (seed, task, attempt), so a chaos run's retry schedule replays
   exactly. *)
let delay_for b ~task ~attempt =
  let raw =
    Float.min b.max_delay (b.base *. (b.factor ** float_of_int (attempt - 1)))
  in
  let u = Faults.unit_float (Faults.mix [ b.seed; task; attempt ]) in
  Float.max 0.0 (raw *. (1.0 +. (b.jitter *. ((2.0 *. u) -. 1.0))))

type job = {
  index : int;
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  deadline : float option;
  err : string;  (* temp file capturing the worker's stderr *)
}

let chunk = Bytes.create 65536

(* One worker: fork, evaluate, marshal the result (or the exception's
   rendering) back over a pipe together with the worker's metrics delta,
   and exit without running at_exit handlers.  The delta is against the
   registry as inherited at fork, so parent-recorded values never
   double-count when absorbed back. *)
let spawn ~index ~deadline f x =
  let rd, wr = Unix.pipe ~cloexec:false () in
  let err = Filename.temp_file "pp-pool" ".stderr" in
  (* Flush before forking so the child never inherits half-written
     parent output it could replay through the redirected channel. *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close rd;
      (* Concurrent workers sharing the parent's stderr tear each
         other's (and the parent footer's) lines mid-write.  Each worker
         writes to a private capture file instead; the parent replays it
         in one atomic write at reap time. *)
      (try
         let efd = Unix.openfile err [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
         Unix.dup2 efd Unix.stderr;
         Unix.close efd
       with Unix.Unix_error _ -> ());
      let at_fork = Metrics.snapshot Metrics.default in
      let payload =
        match f x with
        | v -> Ok v
        | exception e -> Error (Printexc.to_string e)
      in
      let delta = Metrics.diff (Metrics.snapshot Metrics.default) at_fork in
      let bytes = Marshal.to_bytes (payload, delta) [] in
      let oc = Unix.out_channel_of_descr wr in
      output_bytes oc bytes;
      flush oc;
      flush Stdlib.stderr;
      (* _exit semantics: skip at_exit/flushing of inherited channels, which
         would duplicate the parent's buffered output. *)
      Unix._exit 0
  | pid ->
      Unix.close wr;
      (* Nonblocking so the parent can drain a readable pipe to EAGAIN
         without wedging on the last partial chunk. *)
      Unix.set_nonblock rd;
      { index; pid; fd = rd; buf = Buffer.create 1024; deadline; err }

(* Drain everything currently buffered in the pipe.  A single [read]
   returns an arbitrary prefix of the worker's payload — results larger
   than the pipe capacity arrive in many pieces — so loop until the pipe
   reports empty ([`More]) or closed ([`Eof]). *)
let drain job =
  let rec go () =
    match Unix.read job.fd chunk 0 (Bytes.length chunk) with
    | 0 -> `Eof
    | k ->
        Buffer.add_subbytes job.buf chunk 0 k;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        `More
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* Replay a reaped worker's captured stderr through the parent in a
   single write, then drop the capture file.  Serializing through the
   parent is what keeps concurrent workers' diagnostics line-atomic. *)
let relay_stderr job =
  (match
     let ic = open_in_bin job.err in
     let n = in_channel_length ic in
     let s = really_input_string ic n in
     close_in ic;
     s
   with
  | "" -> ()
  | s ->
      flush stderr;
      prerr_string s;
      flush stderr
  | exception Sys_error _ -> ());
  try Sys.remove job.err with Sys_error _ -> ()

let finish job results status =
  Unix.close job.fd;
  relay_stderr job;
  (match status with
  | Unix.WEXITED 0 when Buffer.length job.buf > 0 -> (
      match Marshal.from_bytes (Buffer.to_bytes job.buf) 0 with
      | Ok v, delta ->
          Metrics.absorb Metrics.default delta;
          results.(job.index) <- Some (Done v)
      | Error msg, delta ->
          Metrics.absorb Metrics.default delta;
          results.(job.index) <- Some (Crashed msg)
      | exception _ ->
          results.(job.index) <- Some (Crashed "worker sent a torn result"))
  | Unix.WEXITED 0 ->
      results.(job.index) <- Some (Crashed "worker exited without a result")
  | Unix.WEXITED n ->
      results.(job.index) <- Some (Crashed (Printf.sprintf "exit code %d" n))
  | Unix.WSIGNALED s ->
      results.(job.index) <- Some (Crashed (Printf.sprintf "killed by signal %d" s))
  | Unix.WSTOPPED s ->
      results.(job.index) <- Some (Crashed (Printf.sprintf "stopped by signal %d" s)))

let kill_and_reap job results elapsed =
  (try Unix.kill job.pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] job.pid);
  Unix.close job.fd;
  relay_stderr job;
  results.(job.index) <- Some (Timed_out elapsed)

let map_forked ~jobs ~timeout f xs =
  let tasks = Array.of_list xs in
  let n = Array.length tasks in
  let results = Array.make n None in
  let next = ref 0 in
  let live = ref [] in
  let now () = Unix.gettimeofday () in
  let start = Array.make n 0.0 in
  let wall = Array.make n 0.0 in
  while !next < n || !live <> [] do
    (* Fill free slots. *)
    while !next < n && List.length !live < jobs do
      let i = !next in
      incr next;
      start.(i) <- now ();
      let deadline = Option.map (fun t -> start.(i) +. t) timeout in
      live := spawn ~index:i ~deadline f tasks.(i) :: !live
    done;
    (* Wait for output or the earliest deadline. *)
    let select_timeout =
      List.fold_left
        (fun acc job ->
          match job.deadline with
          | None -> acc
          | Some d ->
              let remaining = Float.max 0.0 (d -. now ()) in
              if acc < 0.0 then remaining else Float.min acc remaining)
        (-1.0) !live
    in
    let fds = List.map (fun j -> j.fd) !live in
    let readable, _, _ =
      try Unix.select fds [] [] select_timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    let still_live = ref [] in
    List.iter
      (fun job ->
        if List.mem job.fd readable then begin
          match drain job with
          | `More -> still_live := job :: !still_live
          | `Eof ->
              (* Worker finished (or died); reap it. *)
              let _, status = Unix.waitpid [] job.pid in
              wall.(job.index) <- now () -. start.(job.index);
              finish job results status
        end
        else
          match job.deadline with
          | Some d when now () >= d ->
              let elapsed = now () -. start.(job.index) in
              wall.(job.index) <- elapsed;
              kill_and_reap job results elapsed
          | _ -> still_live := job :: !still_live)
      !live;
    live := List.rev !still_live
  done;
  (Array.to_list (Array.map Option.get results), Array.to_list wall)

let map_inline f xs =
  List.map
    (fun x ->
      let t0 = Unix.gettimeofday () in
      let outcome =
        match f x with
        | v -> Done v
        | exception e -> Crashed (Printexc.to_string e)
      in
      (outcome, Unix.gettimeofday () -. t0))
    xs
  |> List.split

let can_fork =
  (* Unix.fork is unavailable on Windows; degrade to in-process there. *)
  not Sys.win32

let describe = function
  | Done _ -> "ok"
  | Crashed msg -> "crashed: " ^ msg
  | Timed_out t -> Printf.sprintf "timed out after %.1fs" t

let map_retry ?(jobs = 1) ?timeout ?(retries = 1) ?(backoff = default_backoff)
    ?(sleep = Unix.sleepf) ?verify f xs =
  let t0 = Unix.gettimeofday () in
  let jobs = if can_fork then max 1 jobs else 1 in
  let retries = max 1 retries in
  let tasks = Array.of_list xs in
  let n = Array.length tasks in
  let results = Array.make n (Crashed "never ran") in
  let walls = Array.make n 0.0 in
  let attempts = Array.make n 0 in
  let pending = ref (List.init n Fun.id) in
  let round = ref 0 in
  while !pending <> [] && !round < retries do
    incr round;
    let a = !round in
    if a > 1 then begin
      (* One parent-side sleep per retry round: the longest jittered delay
         any retried task asks for.  Failed tasks within a round then rerun
         concurrently, which keeps the schedule deterministic and the
         wall-clock bounded by the slowest backoff, not their sum. *)
      let d =
        List.fold_left
          (fun acc i -> Float.max acc (delay_for backoff ~task:i ~attempt:(a - 1)))
          0.0 !pending
      in
      if d > 0.0 then sleep d
    end;
    let idxs = !pending in
    let g x = f ~attempt:a x in
    let sub = List.map (fun i -> tasks.(i)) idxs in
    let outs, ws =
      if jobs <= 1 then map_inline g sub else map_forked ~jobs ~timeout g sub
    in
    let failed = ref [] in
    List.iter2
      (fun i (o, w) ->
        attempts.(i) <- a;
        walls.(i) <- walls.(i) +. w;
        let o =
          match (o, verify) with
          | Done v, Some check -> (
              match check tasks.(i) v with
              | Ok () -> Done v
              | Error msg -> Crashed msg)
          | o, _ -> o
        in
        results.(i) <- o;
        match o with Done _ -> () | _ -> failed := i :: !failed)
      idxs
      (List.combine outs ws);
    pending := List.rev !failed
  done;
  let outcomes = Array.to_list results in
  let count p = List.length (List.filter p outcomes) in
  let ok = count (function Done _ -> true | _ -> false) in
  let crashed = count (function Crashed _ -> true | _ -> false) in
  let timed_out = count (function Timed_out _ -> true | _ -> false) in
  let retried =
    Array.fold_left (fun acc a -> if a > 1 then acc + 1 else acc) 0 attempts
  in
  let total_attempts = Array.fold_left ( + ) 0 attempts in
  let quarantined = List.length !pending in
  let task_stats =
    List.mapi
      (fun i o ->
        {
          task = i;
          wall = walls.(i);
          status = describe o;
          attempts = attempts.(i);
        })
      outcomes
  in
  let m = Metrics.default in
  Metrics.incr m "pool.tasks" n;
  Metrics.incr m "pool.ok" ok;
  Metrics.incr m "pool.crashed" crashed;
  Metrics.incr m "pool.timed_out" timed_out;
  Metrics.incr m "pool.attempts" total_attempts;
  Metrics.incr m "pool.retried" retried;
  Metrics.incr m "pool.quarantined" quarantined;
  ( outcomes,
    {
      jobs;
      tasks = n;
      ok;
      crashed;
      timed_out;
      retried;
      quarantined;
      attempts = total_attempts;
      total_wall = Unix.gettimeofday () -. t0;
      task_stats;
    } )

let map_stats ?jobs ?timeout f xs =
  map_retry ?jobs ?timeout ~retries:1 (fun ~attempt:_ x -> f x) xs

let map ?jobs ?timeout f xs = fst (map_stats ?jobs ?timeout f xs)

let outcome_ok = function Done v -> Some v | Crashed _ | Timed_out _ -> None

let footer s =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "pool: %d task%s over %d job%s in %.2fs (%d ok"
    s.tasks
    (if s.tasks = 1 then "" else "s")
    s.jobs
    (if s.jobs = 1 then "" else "s")
    s.total_wall s.ok;
  if s.crashed > 0 then Printf.bprintf buf ", %d crashed" s.crashed;
  if s.timed_out > 0 then Printf.bprintf buf ", %d timed out" s.timed_out;
  if s.retried > 0 then Printf.bprintf buf ", %d retried" s.retried;
  if s.quarantined > 0 then
    Printf.bprintf buf ", %d quarantined" s.quarantined;
  Buffer.add_string buf ")\n";
  if s.attempts > s.tasks then
    Printf.bprintf buf "  attempts: %d over %d tasks\n" s.attempts s.tasks;
  (match
     List.fold_left
       (fun acc t -> match acc with
         | Some best when best.wall >= t.wall -> acc
         | _ -> Some t)
       None s.task_stats
   with
  | Some slowest when s.tasks > 1 ->
      Printf.bprintf buf "  slowest task %d: %.2fs\n" slowest.task
        slowest.wall
  | _ -> ());
  List.iter
    (fun t ->
      if t.status <> "ok" then
        Printf.bprintf buf "  task %d: %s (%.2fs, %d attempt%s)\n" t.task
          t.status t.wall t.attempts
          (if t.attempts = 1 then "" else "s"))
    s.task_stats;
  Buffer.contents buf
