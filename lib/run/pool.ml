type 'a outcome =
  | Done of 'a
  | Crashed of string
  | Timed_out of float

type job = {
  index : int;
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  deadline : float option;
}

let chunk = Bytes.create 65536

(* One worker: fork, evaluate, marshal the result (or the exception's
   rendering) back over a pipe, exit without running at_exit handlers. *)
let spawn ~index ~deadline f x =
  let rd, wr = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
      Unix.close rd;
      let payload =
        match f x with
        | v -> Ok v
        | exception e -> Error (Printexc.to_string e)
      in
      let bytes = Marshal.to_bytes payload [] in
      let oc = Unix.out_channel_of_descr wr in
      output_bytes oc bytes;
      flush oc;
      (* _exit semantics: skip at_exit/flushing of inherited channels, which
         would duplicate the parent's buffered output. *)
      Unix._exit 0
  | pid ->
      Unix.close wr;
      { index; pid; fd = rd; buf = Buffer.create 1024; deadline }

let finish job results status =
  Unix.close job.fd;
  (match status with
  | Unix.WEXITED 0 when Buffer.length job.buf > 0 -> (
      match Marshal.from_bytes (Buffer.to_bytes job.buf) 0 with
      | Ok v -> results.(job.index) <- Some (Done v)
      | Error msg -> results.(job.index) <- Some (Crashed msg)
      | exception _ ->
          results.(job.index) <- Some (Crashed "worker sent a torn result"))
  | Unix.WEXITED 0 ->
      results.(job.index) <- Some (Crashed "worker exited without a result")
  | Unix.WEXITED n ->
      results.(job.index) <- Some (Crashed (Printf.sprintf "exit code %d" n))
  | Unix.WSIGNALED s ->
      results.(job.index) <- Some (Crashed (Printf.sprintf "killed by signal %d" s))
  | Unix.WSTOPPED s ->
      results.(job.index) <- Some (Crashed (Printf.sprintf "stopped by signal %d" s)))

let kill_and_reap job results elapsed =
  (try Unix.kill job.pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] job.pid);
  Unix.close job.fd;
  results.(job.index) <- Some (Timed_out elapsed)

let map_forked ~jobs ~timeout f xs =
  let tasks = Array.of_list xs in
  let n = Array.length tasks in
  let results = Array.make n None in
  let next = ref 0 in
  let live = ref [] in
  let now () = Unix.gettimeofday () in
  let start = Array.make n 0.0 in
  while !next < n || !live <> [] do
    (* Fill free slots. *)
    while !next < n && List.length !live < jobs do
      let i = !next in
      incr next;
      start.(i) <- now ();
      let deadline = Option.map (fun t -> start.(i) +. t) timeout in
      live := spawn ~index:i ~deadline f tasks.(i) :: !live
    done;
    (* Wait for output or the earliest deadline. *)
    let select_timeout =
      List.fold_left
        (fun acc job ->
          match job.deadline with
          | None -> acc
          | Some d ->
              let remaining = Float.max 0.0 (d -. now ()) in
              if acc < 0.0 then remaining else Float.min acc remaining)
        (-1.0) !live
    in
    let fds = List.map (fun j -> j.fd) !live in
    let readable, _, _ =
      try Unix.select fds [] [] select_timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    let still_live = ref [] in
    List.iter
      (fun job ->
        if List.mem job.fd readable then begin
          let k = Unix.read job.fd chunk 0 (Bytes.length chunk) in
          if k > 0 then begin
            Buffer.add_subbytes job.buf chunk 0 k;
            still_live := job :: !still_live
          end
          else begin
            (* EOF: worker finished (or died); reap it. *)
            let _, status = Unix.waitpid [] job.pid in
            finish job results status
          end
        end
        else
          match job.deadline with
          | Some d when now () >= d ->
              kill_and_reap job results (now () -. start.(job.index))
          | _ -> still_live := job :: !still_live)
      !live;
    live := List.rev !still_live
  done;
  Array.to_list (Array.map Option.get results)

let map_inline f xs =
  List.map
    (fun x ->
      match f x with
      | v -> Done v
      | exception e -> Crashed (Printexc.to_string e))
    xs

let can_fork =
  (* Unix.fork is unavailable on Windows; degrade to in-process there. *)
  not Sys.win32

let map ?(jobs = 1) ?timeout f xs =
  if jobs <= 1 || not can_fork then map_inline f xs
  else map_forked ~jobs ~timeout f xs

let outcome_ok = function Done v -> Some v | Crashed _ | Timed_out _ -> None

let describe = function
  | Done _ -> "ok"
  | Crashed msg -> "crashed: " ^ msg
  | Timed_out t -> Printf.sprintf "timed out after %.1fs" t
