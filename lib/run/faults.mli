(** Deterministic, seed-driven fault plans for chaos runs.

    A fault plan decides, as a pure function of [(seed, task, attempt)],
    whether a pool task fails and how: the worker crashes before doing any
    work, stalls past its timeout, dies mid-shard-write, or completes a
    write that is then corrupted on disk.  Because the plan is
    deterministic, a chaos run ([pp chaos], {!Chaos}) is exactly
    reproducible from its seed — the same shards fail the same way in the
    same attempts, so CI can assert byte-identical recovery.

    Plans only inject on attempts [<= max_attempt] (default 1), so any
    retry budget of [max_attempt + 1] or more is guaranteed to converge:
    the fault fires, the retry runs clean. *)

(** One injected failure.  [Crash] and [Stall] fire before the task does
    any work; the write faults are forwarded to
    {!Pp_core.Profile_io.to_file} when the task writes its shard. *)
type fault =
  | Crash  (** the worker dies before computing anything *)
  | Stall of float  (** the worker sleeps this long — outlive the timeout *)
  | Die_mid_write  (** killed between temp write and rename (atomicity holds) *)
  | Torn_write  (** a non-atomic partial write lands at the destination *)
  | Flip_bit of int  (** one bit of the written shard flips afterwards *)
  | Truncate of int  (** the written shard is cut to this many bytes (mod size) *)

(** The fault mix a seeded plan draws from. *)
type kind =
  | Crash_heavy  (** crashes, stalls, mid-write kills — process failures *)
  | Corruption_heavy  (** torn writes, bit flips, truncations — data damage *)
  | Mixed

val kind_name : kind -> string

(** Parse ["crash-heavy"] / ["corruption-heavy"] / ["mixed"]. *)
val kind_of_name : string -> kind option

type plan

(** The empty plan: injects nothing. *)
val none : plan

(** [seeded kind ~seed ~tasks] draws a deterministic plan over task
    indices [0 .. tasks-1]: roughly two thirds of the tasks get one fault
    each, of the [kind]'s mix.  [stall] is the sleep used for [Stall]
    faults (choose it longer than the pool timeout; default 30s).
    [max_attempt] bounds the attempts faults fire on (default 1).
    @raise Invalid_argument if [tasks < 0]. *)
val seeded : ?stall:float -> ?max_attempt:int -> kind -> seed:int -> tasks:int -> plan

(** The fault to inject for this task on this attempt (attempts are
    1-based), or [None] to run clean. *)
val fault_for : plan -> task:int -> attempt:int -> fault option

(** Number of tasks the plan faults at all. *)
val count : plan -> int

(** Deterministic one-line plan summary, e.g.
    ["crash-heavy seed 7: 4 of 6 tasks faulted"]. *)
val summary : plan -> string

(** Per-task fault descriptions in task order, e.g.
    [["shard 0: crash"; "shard 3: bit flip"]]. *)
val describe_plan : plan -> string list

val describe : fault -> string

(** The on-disk half of a fault, for the shard writer; [None] for
    [Crash] / [Stall]. *)
val write_fault : fault -> Pp_core.Profile_io.write_fault option

(** {2 Deterministic mixing}

    The hash the plans (and the pool's backoff jitter) are built on:
    SplitMix64-style avalanche of a list of ints.  Exposed so other
    deterministic choices can share the discipline. *)

val mix : int list -> int

(** [unit_float h] maps a hash to [0.0 <= x < 1.0]. *)
val unit_float : int -> float
